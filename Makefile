.PHONY: all build test check bench

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + a --jobs 2 smoke test of the parallel sweep path.
check:
	sh scripts/check.sh

bench:
	dune exec bench/main.exe -- --skip-micro
