.PHONY: all build test check bench fuzz

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + a --jobs 2 smoke test of the parallel sweep path.
check:
	sh scripts/check.sh

bench:
	dune exec bench/main.exe -- --skip-micro

# Differential fuzz: every policy under the invariant validator vs the
# naive reference engine, plus the OPT_R lemma oracles. Deterministic
# for a fixed seed, whatever --jobs.
fuzz:
	dune exec bin/main.exe -- fuzz --n 500 --seed 1 --jobs 2
