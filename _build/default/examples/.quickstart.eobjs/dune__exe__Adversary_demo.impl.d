examples/adversary_demo.ml: Adversary Dbp_analysis Dbp_baselines Dbp_core Dbp_workloads List Printf Ratio
