examples/binary_strings_demo.ml: Array Binary_strings Dbp_analysis Dbp_core Dbp_instance Dbp_sim Dbp_util Dbp_workloads Engine Ints List Printf String
