examples/binary_strings_demo.mli:
