examples/cloud_gaming.ml: Cloud_traces Dbp_baselines Dbp_core Dbp_instance Dbp_offline Dbp_sim Dbp_workloads Printf
