examples/cloud_gaming.mli:
