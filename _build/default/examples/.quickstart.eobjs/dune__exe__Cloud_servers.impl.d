examples/cloud_servers.ml: Dbp_analysis Dbp_baselines Dbp_core Dbp_instance Dbp_report Dbp_workloads General_random List Printf Ratio
