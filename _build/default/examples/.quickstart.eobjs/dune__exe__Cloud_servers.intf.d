examples/cloud_servers.mli:
