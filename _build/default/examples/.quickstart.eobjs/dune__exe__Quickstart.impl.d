examples/quickstart.ml: Dbp_core Dbp_instance Dbp_offline Dbp_report Dbp_sim Dbp_util Engine Instance Item List Printf
