examples/quickstart.mli:
