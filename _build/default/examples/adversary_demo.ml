(* The Theorem 4.3 lower bound, live: an adaptive adversary watches how
   many bins your algorithm has open and feeds it just enough
   geometrically-sized items to keep sqrt(log mu) bins busy forever,
   while an offline optimum could consolidate almost everything.

   Run with: dune exec examples/adversary_demo.exe *)

open Dbp_workloads
open Dbp_analysis

let attack name factory mu =
  let outcome = Adversary.run ~mu factory in
  let m = Ratio.of_run outcome.result outcome.instance in
  Printf.printf
    "%-12s mu=%-6d target=%d bins  released=%-6d  cost=%-8d OPT_R=%-8d ratio=%.2f\n"
    name mu outcome.target_bins outcome.items_released outcome.result.cost m.opt
    m.ratio

let () =
  Printf.printf
    "The adversary releases a prefix of sigma*_t = items of length 1,2,4,...,mu\n\
     (load 1/ceil(sqrt(log mu)) each) at every tick, stopping each burst as soon\n\
     as the algorithm holds ceil(sqrt(log mu)) open bins.\n\n";
  List.iter
    (fun mu ->
      attack "HA" (Dbp_core.Ha.policy ()) mu;
      attack "FirstFit" Dbp_baselines.Any_fit.first_fit mu;
      attack "ClassifyDur" (Dbp_baselines.Classify_duration.policy ()) mu;
      print_newline ())
    [ 256; 4096; 65536 ];
  Printf.printf
    "No online algorithm escapes: the ratio grows with sqrt(log mu) (in steps,\n\
     since the bin target is the integer ceil(sqrt(log2 mu))). Against the\n\
     *paper's* bound, note even HA — optimal up to constants — is caught.\n"
