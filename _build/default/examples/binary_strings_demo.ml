(* The binary-string heart of Section 5: CDFF's open-bin count on the
   binary input sigma_mu literally equals the longest run of zeros in the
   clock's binary representation, plus one (Corollary 5.8). This demo
   packs sigma_16 and prints the identity tick by tick.

   Run with: dune exec examples/binary_strings_demo.exe *)

open Dbp_util
open Dbp_sim
open Dbp_analysis

let bits_string ~bits t =
  String.init bits (fun i -> if (t lsr (bits - 1 - i)) land 1 = 1 then '1' else '0')

let () =
  let mu = 16 in
  let n = Ints.floor_log2 mu in
  let inst = Dbp_workloads.Binary_input.generate ~mu in
  let res = Engine.run (Dbp_core.Cdff.policy ()) inst in
  Printf.printf "sigma_%d: %d items; CDFF opened %d bins for a cost of %d bin-ticks\n\n"
    mu (Dbp_instance.Instance.length inst) res.bins_opened res.cost;
  Printf.printf "t   binary(t)  max_0  open bins (= max_0 + 1)\n";
  Array.iter
    (fun (t, open_bins) ->
      if t >= 0 && t < mu then
        Printf.printf "%-3d %s       %d      %d%s\n" t (bits_string ~bits:n t)
          (Binary_strings.max0 ~bits:n t)
          open_bins
          (if open_bins = Binary_strings.max0 ~bits:n t + 1 then "" else "   MISMATCH"))
    res.series;
  Printf.printf "\nLemma 5.9: E[max_0] of n random bits vs the 2 log2 n bound:\n";
  List.iter
    (fun bits ->
      Printf.printf "  n=%-3d E[max_0] = %5.3f   2 log2 n = %5.2f\n" bits
        (Binary_strings.expectation ~bits)
        (Dbp_core.Theory.max0_expectation_bound bits))
    [ 4; 8; 16; 24 ];
  Printf.printf
    "\nCost check: CDFF(sigma_mu) = sum over t of (max_0(binary t) + 1)\n\
    \  = %d + %d = %d  (measured: %d)\n"
    mu
    (Binary_strings.sum_over_range ~bits:n)
    (mu + Binary_strings.sum_over_range ~bits:n)
    res.cost
