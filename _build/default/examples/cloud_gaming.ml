(* Cloud gaming dispatch: the clairvoyant application of Section 1. Play
   requests arrive with a predictable session length (Li et al. [8]);
   each running game server costs money per minute it is up. This example
   simulates three days of diurnal traffic and compares a clairvoyant
   dispatcher (HA) with the duration-oblivious incumbent (First-Fit),
   pricing the difference.

   Run with: dune exec examples/cloud_gaming.exe *)

open Dbp_workloads

let dollars_per_server_hour = 0.35

let () =
  let instance = Cloud_traces.generate ~seed:7 () in
  Printf.printf "trace: %d sessions over 3 days (1 tick = 1 minute), mu = %.0f\n\n"
    (Dbp_instance.Instance.length instance)
    (Dbp_instance.Instance.mu instance);
  let run name factory =
    let r = Dbp_sim.Engine.run factory instance in
    let hours = float_of_int r.cost /. 60.0 in
    Printf.printf "%-22s %8d server-minutes  = %7.1f server-hours  = $%8.2f\n" name
      r.cost hours
      (hours *. dollars_per_server_hour);
    r.cost
  in
  let ha = run "HA (clairvoyant)" (Dbp_core.Ha.policy ()) in
  let sg = run "SpanGreedy (clairv.)" Dbp_baselines.Span_greedy.policy in
  let ff = run "FirstFit (oblivious)" Dbp_baselines.Any_fit.first_fit in
  let lower = (Dbp_offline.Bounds.compute instance).lower in
  Printf.printf "%-22s %8d server-minutes (no schedule can do better)\n\n"
    "lower bound" lower;
  let vs a b = 100.0 *. (1.0 -. (float_of_int a /. float_of_int b)) in
  Printf.printf
    "Using the predicted session lengths, SpanGreedy saves %.1f%% of server\n\
     time vs duration-oblivious FirstFit (%.1f%% above the absolute floor).\n"
    (vs sg ff)
    (100.0 *. (float_of_int sg /. float_of_int lower -. 1.0));
  Printf.printf
    "Worst-case-optimal HA costs %.1f%% more than FirstFit here: benign diurnal\n\
     traffic never triggers the pinning pathologies HA insures against (run\n\
     `dbp experiment nonclairvoyant` to see FirstFit pay ~mu/2 when they do).\n"
    (-.vs ha ff)
