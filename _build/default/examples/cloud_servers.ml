(* Cloud server allocation: the MinUsageTime story from the paper's
   introduction. Users request a slice of server bandwidth for a known
   period; every open server accrues cost while it has at least one
   tenant. We compare all the online algorithms on a bursty random
   workload and report how much server time each would buy.

   Run with: dune exec examples/cloud_servers.exe *)

open Dbp_workloads
open Dbp_analysis

let () =
  let config =
    {
      General_random.default with
      horizon = 512;
      arrival_rate = 1.2;
      max_duration = 128;
      dist = General_random.Pareto 1.5;
      min_size = 0.05;
      max_size = 0.5;
    }
  in
  let instance = General_random.generate ~config ~seed:2024 () in
  Printf.printf "workload: %d requests over %d ticks, mu = %.0f\n\n"
    (Dbp_instance.Instance.length instance)
    config.horizon
    (Dbp_instance.Instance.mu instance);
  let algorithms =
    [
      ("HA (paper)", Dbp_core.Ha.policy ());
      ("CDFF (paper)", Dbp_core.Cdff.policy ());
      ("FirstFit", Dbp_baselines.Any_fit.first_fit);
      ("BestFit", Dbp_baselines.Any_fit.best_fit);
      ("ClassifyByDur", Dbp_baselines.Classify_duration.policy ());
      ("RenTang", Dbp_baselines.Rt_classify.auto ~mu_hint:128.0);
      ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
    ]
  in
  let measurements = Ratio.compare_algorithms algorithms instance in
  let table =
    Dbp_report.Table.create
      ~columns:[ "algorithm"; "server-time"; "vs optimal"; "servers used"; "peak" ]
  in
  List.iter
    (fun (m : Ratio.measurement) ->
      Dbp_report.Table.add_row table
        [
          m.algorithm;
          Dbp_report.Table.cell_int m.cost;
          Dbp_report.Table.cell_ratio m.ratio;
          Dbp_report.Table.cell_int m.bins_opened;
          Dbp_report.Table.cell_int m.max_open;
        ])
    measurements;
  print_string (Dbp_report.Table.render table);
  match measurements with
  | first :: _ ->
      Printf.printf
        "\n(optimal repacking cost: %d bin-ticks; 'vs optimal' is the measured\n\
         competitive ratio on this instance)\n"
        first.opt
  | [] -> ()
