(* Quickstart: build a small clairvoyant instance by hand, pack it with
   the paper's Hybrid Algorithm, and compare against the exact repacking
   optimum.

   Run with: dune exec examples/quickstart.exe *)

open Dbp_instance
open Dbp_sim

let () =
  (* Five requests: (arrival, departure, size). Departure times are known
     at arrival — that's the clairvoyant setting. *)
  let specs = [ (0, 8, 0.5); (0, 2, 0.4); (1, 3, 0.3); (4, 8, 0.5); (5, 7, 0.25) ] in
  let items =
    List.mapi
      (fun id (arrival, departure, size) ->
        Item.make ~id ~arrival ~departure ~size:(Dbp_util.Load.of_float size))
      specs
  in
  let instance = Instance.of_items items in
  Printf.printf "instance: %d items, span %d, demand %.2f bin-ticks, mu = %.0f\n\n"
    (Instance.length instance) (Instance.span instance) (Instance.demand instance)
    (Instance.mu instance);

  (* Run the Hybrid Algorithm (Theorem 3.2: O(sqrt(log mu))-competitive). *)
  let result = Engine.run (Dbp_core.Ha.policy ()) instance in
  Printf.printf "HA cost: %d bin-ticks using %d bins (max %d open at once)\n"
    result.cost result.bins_opened result.max_open;

  (* How good is that? Compare with the exact repacking optimum. *)
  let opt = Dbp_offline.Opt_repack.exact instance in
  Printf.printf "OPT_R:   %d bin-ticks (exact = %b)\n" opt.cost opt.exact;
  Printf.printf "ratio:   %.3f\n\n" (float_of_int result.cost /. float_of_int opt.cost);

  (* Visualize who went where. *)
  print_string (Dbp_report.Gantt.packing_chart instance result.store)
