lib/analysis/binary_strings.ml: Array String
