lib/analysis/binary_strings.mli:
