lib/analysis/fit.ml: Array Dbp_util Float Format List Stats
