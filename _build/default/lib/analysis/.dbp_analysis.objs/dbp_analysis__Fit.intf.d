lib/analysis/fit.mli: Format
