lib/analysis/momentary.ml: Array Dbp_binpack Dbp_offline Dbp_sim Engine List Opt_repack
