lib/analysis/momentary.mli: Dbp_binpack Dbp_instance Dbp_sim Engine Instance
