lib/analysis/ratio.ml: Bounds Dbp_binpack Dbp_instance Dbp_offline Dbp_sim Engine Format Instance List Opt_repack
