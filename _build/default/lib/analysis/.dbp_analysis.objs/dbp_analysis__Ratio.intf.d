lib/analysis/ratio.mli: Dbp_binpack Dbp_instance Dbp_sim Engine Format Instance Policy
