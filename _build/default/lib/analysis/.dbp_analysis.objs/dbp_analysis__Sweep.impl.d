lib/analysis/sweep.ml: Array Dbp_binpack Dbp_util Dbp_workloads Fit List Ratio Stats
