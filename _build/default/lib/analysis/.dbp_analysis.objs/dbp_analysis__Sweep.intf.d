lib/analysis/sweep.mli: Dbp_instance Dbp_sim Dbp_util Fit Instance Policy
