let max0 ~bits t =
  if bits < 0 || bits > 62 then invalid_arg "Binary_strings.max0: bits out of [0, 62]";
  if t < 0 then invalid_arg "Binary_strings.max0: negative value";
  let best = ref 0 and run = ref 0 in
  for k = 0 to bits - 1 do
    if (t lsr k) land 1 = 0 then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 0
  done;
  !best

let max0_string s =
  let best = ref 0 and run = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '0' ->
          incr run;
          if !run > !best then best := !run
      | '1' -> run := 0
      | _ -> invalid_arg "Binary_strings.max0_string: not a bitstring")
    s;
  !best

(* Strings of length n avoiding any zero-run longer than k decompose as
   blocks "0^j 1" with j <= k, plus a trailing block of <= k zeros:
   f(n) = sum_(j=0..k) f(n - 1 - j), f(m) = 1 for m <= 0 handled by
   seeding. Counts fit in an int for bits <= 62 since f(n) <= 2^n. *)
let count_with_max0_at_most ~bits k =
  if bits < 0 || bits > 62 then
    invalid_arg "Binary_strings.count_with_max0_at_most: bits out of [0, 62]";
  if k < 0 then 0
  else if k >= bits then 1 lsl bits
  else begin
    let f = Array.make (bits + 1) 0 in
    (* f.(m) = number of length-m strings with all zero-runs <= k,
       *assuming the string is followed by a virtual 1* — equivalently,
       no run of more than k zeros anywhere. Base: empty string. *)
    f.(0) <- 1;
    for m = 1 to bits do
      (* The string either is all zeros (allowed iff m <= k) or starts
         with j <= min(k, m-1) zeros followed by a 1. *)
      let acc = ref (if m <= k then 1 else 0) in
      for j = 0 to min k (m - 1) do
        acc := !acc + f.(m - 1 - j)
      done;
      f.(m) <- !acc
    done;
    f.(bits)
  end

let histogram ~bits =
  let total = float_of_int (1 lsl bits) in
  Array.init (bits + 1) (fun k ->
      let le_k = count_with_max0_at_most ~bits k in
      let le_km1 = count_with_max0_at_most ~bits (k - 1) in
      float_of_int (le_k - le_km1) /. total)

let expectation ~bits =
  let h = histogram ~bits in
  let e = ref 0.0 in
  Array.iteri (fun k p -> e := !e +. (float_of_int k *. p)) h;
  !e

let sum_over_range ~bits =
  (* sum max0 = sum_(k>=1) #{strings with max0 >= k}
             = sum_(k>=1) (2^bits - count(<= k-1)). *)
  let total = 1 lsl bits in
  let acc = ref 0 in
  for k = 1 to bits do
    acc := !acc + (total - count_with_max0_at_most ~bits (k - 1))
  done;
  !acc
