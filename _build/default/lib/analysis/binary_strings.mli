(** Longest-zero-run combinatorics of binary strings (Section 5.1).

    CDFF's open-bin count on the binary input is
    [max_0(binary t) + 1] (Corollary 5.8), so the algorithm's cost is
    governed by the expected longest run of zeros in a random bitstring:
    [E[max_0] <= 2 log2 n] (Lemma 5.9) and
    [sum_(t < mu) max_0(binary t) <= 2 mu log log mu] (Corollary
    5.10). This module computes those quantities exactly. *)

val max0 : bits:int -> int -> int
(** Longest run of zero bits in the [bits]-wide representation of a
    non-negative int (leading zeros count, as in the paper where
    [binary t] is [log mu] bits wide). [bits] in [0, 62]. *)

val max0_string : string -> int
(** Longest run of ['0'] characters in a literal bitstring (helper for
    tests and tables). *)

val count_with_max0_at_most : bits:int -> int -> int
(** Number of [bits]-wide strings whose longest zero-run is <= k,
    via the (k+1)-step linear recurrence. [count ~bits k = 2^bits] for
    [k >= bits]. *)

val expectation : bits:int -> float
(** Exact [E[max_0]] over uniformly random [bits]-wide strings, from the
    run-length distribution — the quantity Lemma 5.9 bounds by
    [2 log2 bits]. *)

val sum_over_range : bits:int -> int
(** [sum over t in [0, 2^bits) of max0 ~bits t] — exactly
    [2^bits * expectation ~bits], computed without enumeration; the
    left-hand side of Corollary 5.10. *)

val histogram : bits:int -> float array
(** [P(max_0 = k)] for k in [0, bits]. Sums to 1. *)
