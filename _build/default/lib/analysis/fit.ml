open Dbp_util

type model = Sqrt_log | Log_log | Log | Linear_mu | Constant

let name = function
  | Sqrt_log -> "sqrt(log mu)"
  | Log_log -> "log log mu"
  | Log -> "log mu"
  | Linear_mu -> "mu"
  | Constant -> "constant"

let log2c x = Float.max 0.0 (Float.log2 x)

let transform model mu =
  if mu < 1.0 then invalid_arg "Fit.transform: mu < 1";
  match model with
  | Sqrt_log -> sqrt (log2c mu)
  | Log_log -> log2c (Float.max 1.0 (log2c mu))
  | Log -> log2c mu
  | Linear_mu -> mu
  | Constant -> 1.0

type fitted = { model : model; slope : float; intercept : float; r2 : float }

let fit model ~mus ~ys =
  if Array.length mus <> Array.length ys then invalid_arg "Fit.fit: length mismatch";
  match model with
  | Constant ->
      let mean = Stats.mean ys in
      let ss_tot =
        Array.fold_left (fun acc y -> acc +. ((y -. mean) *. (y -. mean))) 0.0 ys
      in
      let r2 = if ss_tot = 0.0 then 1.0 else 0.0 in
      { model; slope = 0.0; intercept = mean; r2 }
  | _ ->
      let x = Array.map (transform model) mus in
      let f = Stats.linear_fit ~x ~y:ys in
      { model; slope = f.slope; intercept = f.intercept; r2 = f.r2 }

let best ?(candidates = [ Sqrt_log; Log_log; Log; Linear_mu; Constant ]) ~mus ~ys () =
  match candidates with
  | [] -> invalid_arg "Fit.best: no candidates"
  | first :: rest ->
      List.fold_left
        (fun acc model ->
          let f = fit model ~mus ~ys in
          if f.r2 > acc.r2 then f else acc)
        (fit first ~mus ~ys) rest

let pp ppf f =
  Format.fprintf ppf "%.3f * %s %s %.3f (R^2 = %.4f)" f.slope (name f.model)
    (if f.intercept >= 0.0 then "+" else "-")
    (Float.abs f.intercept) f.r2
