(** Growth-model fitting for [mu]-sweeps.

    The paper predicts how each algorithm's competitive ratio scales
    with [mu]: HA like [sqrt(log mu)], CDFF on aligned inputs like
    [log log mu], non-clairvoyant First-Fit like [mu]. Fitting
    [ratio ~ a * g(mu) + b] for each candidate [g] and comparing R^2
    turns "the shape holds" into a number the experiment tables can
    report. *)

type model =
  | Sqrt_log  (** g(mu) = sqrt(log2 mu) — Theorems 3.2/4.3 *)
  | Log_log  (** g(mu) = log2(log2 mu) — Theorem 5.1 *)
  | Log  (** g(mu) = log2 mu — pure classify-by-duration *)
  | Linear_mu  (** g(mu) = mu — non-clairvoyant First-Fit *)
  | Constant  (** g(mu) = 1 — no growth *)

val name : model -> string
val transform : model -> float -> float
(** [g(mu)]; requires mu >= 1. *)

type fitted = {
  model : model;
  slope : float;
  intercept : float;
  r2 : float;
}

val fit : model -> mus:float array -> ys:float array -> fitted
(** Least squares of [ys] against [transform model mu]. [Constant] fits
    slope 0 at the mean with R^2 measured accordingly. *)

val best : ?candidates:model list -> mus:float array -> ys:float array -> unit -> fitted
(** The candidate with the highest R^2 (default: all five models). *)

val pp : Format.formatter -> fitted -> unit
