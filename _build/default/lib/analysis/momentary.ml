open Dbp_sim
open Dbp_offline

type t = { usage_ratio : float; momentary_ratio : float; max_bins_ratio : float }

(* ON's open-bin count is piecewise constant between event ticks, and
   OPT's segments break exactly at event ticks, so on each OPT segment
   the ON count is the last series sample at or before the segment
   start. *)
let on_count_at series =
  let n = Array.length series in
  fun t ->
    let rec bsearch lo hi acc =
      if lo > hi then acc
      else begin
        let mid = (lo + hi) / 2 in
        let tick, count = series.(mid) in
        if tick <= t then bsearch (mid + 1) hi count else bsearch lo (mid - 1) acc
      end
    in
    bsearch 0 (n - 1) 0

let measure ?solver (res : Engine.result) inst =
  let solver =
    match solver with Some s -> s | None -> Dbp_binpack.Solver.create ()
  in
  let opt_segments = Opt_repack.series ~solver inst in
  let opt_cost =
    List.fold_left (fun acc (t0, t1, bins) -> acc + (bins * (t1 - t0))) 0 opt_segments
  in
  let lookup = on_count_at res.series in
  let momentary = ref 0.0 and opt_peak = ref 0 in
  List.iter
    (fun (t0, _, opt_bins) ->
      if opt_bins > 0 then begin
        let r = float_of_int (lookup t0) /. float_of_int opt_bins in
        if r > !momentary then momentary := r;
        if opt_bins > !opt_peak then opt_peak := opt_bins
      end)
    opt_segments;
  {
    usage_ratio =
      (if opt_cost = 0 then 1.0 else float_of_int res.cost /. float_of_int opt_cost);
    momentary_ratio = !momentary;
    max_bins_ratio =
      (if !opt_peak = 0 then 1.0
       else float_of_int res.max_open /. float_of_int !opt_peak);
  }
