open Dbp_util

type point = {
  mu : float;
  ratios : Stats.summary;
  costs : Stats.summary;
  opt_exact_fraction : float;
}

type curve = { algorithm : string; points : point list }

let point_of_measurements ~mu measurements =
  let arr = Array.of_list measurements in
  let ratios = Stats.summarize (Array.map (fun (m : Ratio.measurement) -> m.ratio) arr) in
  let costs =
    Stats.summarize (Array.map (fun (m : Ratio.measurement) -> float_of_int m.cost) arr)
  in
  let exact =
    Array.fold_left
      (fun acc (m : Ratio.measurement) ->
        acc + match m.opt_kind with Ratio.Opt_r_exact -> 1 | _ -> 0)
      0 arr
  in
  {
    mu;
    ratios;
    costs;
    opt_exact_fraction = float_of_int exact /. float_of_int (Array.length arr);
  }

let run ~algorithms ~workload ~mus ~seeds () =
  let solver = Dbp_binpack.Solver.create () in
  let curves =
    List.map
      (fun (name, _) -> (name, ref []))
      algorithms
  in
  List.iter
    (fun mu ->
      let per_seed =
        List.map
          (fun seed ->
            let inst = workload ~mu ~seed in
            Ratio.compare_algorithms ~solver algorithms inst)
          seeds
      in
      List.iter
        (fun (name, acc) ->
          let ms =
            List.concat_map
              (List.filter (fun (m : Ratio.measurement) -> m.algorithm = name))
              per_seed
          in
          acc := point_of_measurements ~mu:(float_of_int mu) ms :: !acc)
        curves)
    mus;
  List.map (fun (name, acc) -> { algorithm = name; points = List.rev !acc }) curves

let fit_curve ?candidates curve =
  let mus = Array.of_list (List.map (fun p -> p.mu) curve.points) in
  let ys = Array.of_list (List.map (fun p -> p.ratios.Stats.mean) curve.points) in
  Fit.best ?candidates ~mus ~ys ()

let adversarial ~algorithms ~mus () =
  let solver = Dbp_binpack.Solver.create () in
  List.map
    (fun (name, factory) ->
      let points =
        List.map
          (fun mu ->
            let outcome = Dbp_workloads.Adversary.run ~mu factory in
            let m = Ratio.of_run ~solver outcome.result outcome.instance in
            point_of_measurements ~mu:(float_of_int mu) [ { m with algorithm = name } ])
          mus
      in
      { algorithm = name; points })
    algorithms
