(** [mu]-sweep driver: measure algorithms across a range of [mu] values
    and several seeds, producing the points the experiment tables and
    fits consume. *)

open Dbp_instance
open Dbp_sim

type point = {
  mu : float;  (** nominal mu of the sweep point *)
  ratios : Dbp_util.Stats.summary;  (** over seeds *)
  costs : Dbp_util.Stats.summary;
  opt_exact_fraction : float;  (** how many seeds had exact OPT_R *)
}

type curve = {
  algorithm : string;
  points : point list;
}

val run :
  algorithms:(string * Policy.factory) list ->
  workload:(mu:int -> seed:int -> Instance.t) ->
  mus:int list ->
  seeds:int list ->
  unit ->
  curve list
(** One shared bin-packing solver cache per sweep. Instances are built
    once per (mu, seed) and shared by all algorithms. *)

val fit_curve : ?candidates:Fit.model list -> curve -> Fit.fitted
(** Fit the curve's mean ratios against its mu values. *)

val adversarial :
  algorithms:(string * Policy.factory) list ->
  mus:int list ->
  unit ->
  curve list
(** Like {!run} but each algorithm faces the Theorem 4.3 adaptive
    adversary (which generates a different instance per algorithm), so
    instances are per-algorithm and there is a single deterministic
    "seed". *)
