lib/baselines/any_fit.ml: Dbp_binpack Dbp_sim Fit_group Option Policy
