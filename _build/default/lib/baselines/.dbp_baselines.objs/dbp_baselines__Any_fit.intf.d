lib/baselines/any_fit.mli: Dbp_binpack Dbp_sim Policy
