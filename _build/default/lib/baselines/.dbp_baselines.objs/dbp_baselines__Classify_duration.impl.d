lib/baselines/classify_duration.ml: Bin_store Dbp_binpack Dbp_instance Dbp_sim Fit_group Hashtbl Item Policy Printf
