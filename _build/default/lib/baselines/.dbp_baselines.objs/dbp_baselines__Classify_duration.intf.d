lib/baselines/classify_duration.mli: Dbp_binpack Dbp_sim Policy
