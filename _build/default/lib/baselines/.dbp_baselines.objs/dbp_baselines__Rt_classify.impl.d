lib/baselines/rt_classify.ml: Bin_store Dbp_binpack Dbp_instance Dbp_sim Fit_group Float Hashtbl Item Policy Printf
