lib/baselines/rt_classify.mli: Dbp_binpack Dbp_sim Policy
