lib/baselines/span_greedy.ml: Bin_store Dbp_instance Dbp_sim Dbp_util Hashtbl Item List Load Policy
