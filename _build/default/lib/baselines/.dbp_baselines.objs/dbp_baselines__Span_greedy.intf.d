lib/baselines/span_greedy.mli: Dbp_sim Policy
