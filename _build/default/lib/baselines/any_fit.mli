(** Any-Fit online baselines: one shared pool of bins, no duration
    classification.

    First-Fit is the canonical non-clairvoyant baseline of the paper's
    Table 1 row 3: [mu + 4]-competitive and no deterministic algorithm
    beats [mu] in the non-clairvoyant setting ([7], [13]). These policies
    ignore departure times entirely, so they behave identically in the
    clairvoyant and non-clairvoyant settings. *)

open Dbp_sim

val policy : ?name:string -> Dbp_binpack.Heuristics.rule -> Policy.factory
(** Pack every arrival by the given rule over all open bins. *)

val first_fit : Policy.factory
val best_fit : Policy.factory
val worst_fit : Policy.factory
val next_fit : Policy.factory
