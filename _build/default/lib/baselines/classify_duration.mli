(** Pure Classify-by-Duration: a separate First-Fit bin family per
    duration class [(2^(i-1), 2^i]].

    One of the two natural strategies the paper's Techniques section
    discusses: it is [Omega(log mu)]-competitive in the worst case (one
    item per class forces [log mu] bins against OPT's one — workload E17)
    but performs well when load within each class is high. HA's CD bins
    are this strategy applied selectively. *)

open Dbp_sim

val policy : ?rule:Dbp_binpack.Heuristics.rule -> unit -> Policy.factory
