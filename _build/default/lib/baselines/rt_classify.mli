(** Geometric duration classifier in the style of Ren & Tang [10] — the
    prior state of the art the paper improves on.

    Ren & Tang's clairvoyant algorithm achieves
    [min_(n>=1) mu^(1/n) + n + 3 = O(log mu / log log mu)] by grouping
    durations into [n] geometric classes of ratio [mu^(1/n)] and packing
    each class separately. Their paper is not available in this sealed
    environment; this module reconstructs the stated scheme (documented
    as a substitution in DESIGN.md): duration class
    [j = floor(n * log_mu(duration / d_min))], First-Fit within a class.
    With [n = 1] it degenerates to plain First-Fit; with
    [n = log2 mu] it approaches pure Classify-by-Duration. *)

open Dbp_sim

val policy :
  ?rule:Dbp_binpack.Heuristics.rule ->
  classes:int ->
  mu_hint:float ->
  ?min_duration:int ->
  unit ->
  Policy.factory
(** [classes] is [n >= 1]; [mu_hint] the assumed max/min duration ratio
    (durations beyond it are clamped into the last class);
    [min_duration] defaults to 1 tick. *)

val optimal_classes : mu:float -> int
(** The [n] minimizing the reconstructed bound [mu^(1/n) + n + 3] —
    approximately [log mu / log log mu]. *)

val auto : mu_hint:float -> Policy.factory
(** {!policy} with [classes = optimal_classes ~mu:mu_hint]. *)
