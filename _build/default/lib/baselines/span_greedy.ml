open Dbp_util
open Dbp_instance
open Dbp_sim

let policy store =
  (* latest departure among a bin's current items; monotone per bin
     because capacity admits an item now iff it admits it at every
     future moment (members only depart). *)
  let horizon : (Bin_store.bin_id, int) Hashtbl.t = Hashtbl.create 64 in
  let on_arrival ~now (r : Item.t) =
    let best = ref None in
    List.iter
      (fun bin ->
        if Load.fits r.size ~into:(Bin_store.load store bin) then begin
          let h = Hashtbl.find horizon bin in
          let extension = max 0 (r.departure - h) in
          match !best with
          | Some (_, e) when e <= extension -> ()
          | _ -> best := Some (bin, extension)
        end)
      (Bin_store.open_bins store);
    match !best with
    | Some (bin, extension) when extension < Item.duration r ->
        Bin_store.insert store bin r;
        let h = Hashtbl.find horizon bin in
        if r.departure > h then Hashtbl.replace horizon bin r.departure;
        bin
    | _ ->
        let bin = Bin_store.open_bin store ~now ~label:"SG" in
        Bin_store.insert store bin r;
        Hashtbl.replace horizon bin r.departure;
        bin
  in
  let on_departure ~now:_ _ ~bin ~closed = if closed then Hashtbl.remove horizon bin in
  { Policy.name = "SpanGreedy"; on_arrival; on_departure }
