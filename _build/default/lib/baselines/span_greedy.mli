(** Span-aware greedy: a clairvoyant Any-Fit variant that picks the open
    bin whose usage-time extension is smallest.

    Placing an item departing at [f] into a bin whose latest current
    departure is [g] extends that bin's usage by [max 0 (f - g)]; opening
    a new bin costs the item's full duration. The greedy chooses the
    cheapest option (ties: earliest bin). This is the natural
    cost-myopic clairvoyant heuristic; {!Dbp_offline.Dual_coloring} uses
    it as the stand-in for Ren & Tang's offline 4-approximation when
    bounding the non-repacking optimum from above. *)

open Dbp_sim

val policy : Policy.factory
