lib/binpack/exact.ml: Array Dbp_util Hashtbl Heuristics Int Ints Load Lower_bounds Vec
