lib/binpack/exact.mli: Dbp_util Load
