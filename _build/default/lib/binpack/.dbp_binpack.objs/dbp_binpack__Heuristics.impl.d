lib/binpack/heuristics.ml: Array Dbp_util Load Vec
