lib/binpack/heuristics.mli: Dbp_util Load
