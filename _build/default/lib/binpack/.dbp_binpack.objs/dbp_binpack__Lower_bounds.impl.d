lib/binpack/lower_bounds.ml: Array Dbp_util Int Ints List Load
