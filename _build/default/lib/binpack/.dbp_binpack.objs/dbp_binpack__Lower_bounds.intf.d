lib/binpack/lower_bounds.mli: Dbp_util Load
