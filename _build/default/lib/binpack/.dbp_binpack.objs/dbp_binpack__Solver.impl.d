lib/binpack/solver.ml: Array Dbp_util Exact Hashtbl Int Load
