lib/binpack/solver.mli: Dbp_util Exact Load
