open Dbp_util

type result = { bins : int; exact : bool; nodes : int }

exception Node_budget

(* All-equal item sets (the adversary workloads produce these in bulk)
   have a closed form: floor(C/s) items per bin. *)
let all_equal units =
  Array.length units > 0 && Array.for_all (fun s -> s = units.(0)) units

let min_bins ?(node_limit = 200_000) sizes =
  Array.iter
    (fun s ->
      if Load.to_units s > Load.capacity then
        invalid_arg "Exact.min_bins: item larger than a bin")
    sizes;
  let n = Array.length sizes in
  if n = 0 then { bins = 0; exact = true; nodes = 0 }
  else begin
    let units = Array.map Load.to_units sizes in
    Array.sort (fun a b -> Int.compare b a) units;
    let c = Load.capacity in
    if all_equal units then begin
      let per_bin = c / units.(0) in
      if per_bin = 0 then { bins = n; exact = true; nodes = 0 }
      else { bins = Ints.ceil_div n per_bin; exact = true; nodes = 0 }
    end
    else begin
      let lower = Lower_bounds.best sizes in
      let best = ref (Heuristics.ffd sizes) in
      if !best = lower then { bins = !best; exact = true; nodes = 0 }
      else begin
        (* suffix_sum.(i) = total units of items i..n-1, for the volume
           completion bound. *)
        let suffix_sum = Array.make (n + 1) 0 in
        for i = n - 1 downto 0 do
          suffix_sum.(i) <- suffix_sum.(i + 1) + units.(i)
        done;
        let nodes = ref 0 in
        let residuals = Vec.create () in
        let exception Optimal_found in
        let rec place i =
          incr nodes;
          if !nodes > node_limit then raise Node_budget;
          if i = n then begin
            best := min !best (Vec.length residuals);
            if !best <= lower then raise Optimal_found
          end
          else begin
            let used = Vec.length residuals in
            let free = Vec.fold_left ( + ) 0 residuals in
            let need =
              if suffix_sum.(i) > free then Ints.ceil_div (suffix_sum.(i) - free) c
              else 0
            in
            if used + need < !best then begin
              let s = units.(i) in
              (* Perfect fit dominates every other placement. *)
              match Vec.find_index (fun r -> r = s) residuals with
              | Some j ->
                  Vec.set residuals j 0;
                  place (i + 1);
                  Vec.set residuals j s
              | None ->
                  let tried = Hashtbl.create 8 in
                  for j = 0 to used - 1 do
                    let r = Vec.get residuals j in
                    if r >= s && not (Hashtbl.mem tried r) then begin
                      Hashtbl.add tried r ();
                      Vec.set residuals j (r - s);
                      place (i + 1);
                      Vec.set residuals j r
                    end
                  done;
                  (* New bin: only worthwhile if it can still beat the
                     incumbent. *)
                  if used + 1 < !best then begin
                    Vec.push residuals (c - s);
                    place (i + 1);
                    ignore (Vec.pop residuals)
                  end
            end
          end
        in
        let exact =
          try
            place 0;
            true
          with
          | Optimal_found -> true
          | Node_budget -> !best = lower
        in
        { bins = !best; exact; nodes = !nodes }
      end
    end
  end
