(** Exact bin packing by branch-and-bound (Martello-Toth style).

    Items are placed in non-increasing size order; branches try existing
    bins with distinct residuals, then a fresh bin; subtrees are cut with
    the {!Lower_bounds} volume completion bound and a perfect-fit
    dominance rule. A node budget keeps worst cases bounded: when it is
    exhausted the best feasible solution found so far (at worst FFD) is
    returned and flagged as inexact. *)

open Dbp_util

type result = {
  bins : int;  (** bin count of the best packing found. *)
  exact : bool;  (** [true] iff [bins] is provably optimal. *)
  nodes : int;  (** search nodes explored. *)
}

val min_bins : ?node_limit:int -> Load.t array -> result
(** [min_bins sizes] packs all items. Default [node_limit] is 200_000.
    Raises [Invalid_argument] if a size exceeds one bin. *)
