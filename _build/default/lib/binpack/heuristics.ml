open Dbp_util

type rule = First_fit | Best_fit | Worst_fit | Next_fit

(* All rules differ only in which open bin they try; [select] returns the
   index of the chosen bin among those that fit, or None to open a new
   one. Loads are plain ints here (Vec of accumulated units). *)
let select rule (bins : Load.t Vec.t) (size : Load.t) =
  let fits i = Load.fits size ~into:(Vec.get bins i) in
  let n = Vec.length bins in
  match rule with
  | First_fit ->
      let rec loop i = if i >= n then None else if fits i then Some i else loop (i + 1) in
      loop 0
  | Next_fit -> if n > 0 && fits (n - 1) then Some (n - 1) else None
  | Best_fit ->
      let best = ref None in
      for i = 0 to n - 1 do
        if fits i then
          match !best with
          | Some j when Load.(Vec.get bins i <= Vec.get bins j) -> ()
          | _ -> best := Some i
      done;
      !best
  | Worst_fit ->
      let best = ref None in
      for i = 0 to n - 1 do
        if fits i then
          match !best with
          | Some j when Load.(Vec.get bins j <= Vec.get bins i) -> ()
          | _ -> best := Some i
      done;
      !best

let pack rule sizes =
  Array.iter
    (fun s ->
      if not (Load.fits s ~into:Load.zero) then
        invalid_arg "Heuristics.pack: item larger than a bin")
    sizes;
  let bins = Vec.create () in
  Array.map
    (fun size ->
      match select rule bins size with
      | Some i ->
          Vec.set bins i (Load.add (Vec.get bins i) size);
          i
      | None ->
          Vec.push bins size;
          Vec.length bins - 1)
    sizes

let count rule sizes =
  let assignment = pack rule sizes in
  Array.fold_left (fun acc b -> max acc (b + 1)) 0 assignment

let count_decreasing rule sizes =
  let sorted = Array.copy sizes in
  Array.sort (fun a b -> Load.compare b a) sorted;
  count rule sorted

let ffd sizes = count_decreasing First_fit sizes
