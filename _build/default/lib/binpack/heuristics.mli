(** Classical one-dimensional bin packing heuristics on a static item set.

    Sizes are fixed-point loads (see {!Dbp_util.Load}); every size must be
    at most one bin. These are the momentary packers used by the offline
    repacking optimum and as upper bounds inside the exact solver. *)

open Dbp_util

type rule =
  | First_fit  (** earliest-opened bin that fits *)
  | Best_fit  (** fullest bin that fits *)
  | Worst_fit  (** emptiest bin that fits *)
  | Next_fit  (** only the most recently opened bin *)

val pack : rule -> Load.t array -> int array
(** [pack rule sizes] processes items in array order and returns the bin
    index (0-based, in bin-opening order) assigned to each item. Raises
    [Invalid_argument] if any size exceeds [Load.one]. *)

val count : rule -> Load.t array -> int
(** Number of bins [pack] opens. *)

val count_decreasing : rule -> Load.t array -> int
(** Like {!count} after sorting sizes in non-increasing order (FFD, BFD,
    ...). *)

val ffd : Load.t array -> int
(** First-fit decreasing: the standard upper bound, within 11/9 OPT + 1. *)
