(** Lower bounds on the optimal number of bins for a static item set.

    [l1] is the volume bound; [l2] is Martello & Toth's bound, which
    dominates [l1]. Used to prune the exact branch-and-bound solver and to
    certify heuristic solutions as optimal. *)

open Dbp_util

val l1 : Load.t array -> int
(** ceil of total size. 0 for an empty set. *)

val l2 : Load.t array -> int
(** Martello-Toth L2 bound: maximizes over thresholds [k <= capacity/2]
    the count of large items plus the volume of medium items that cannot
    share bins with them. Always [>= l1]. *)

val best : Load.t array -> int
(** [max (l1 sizes) (l2 sizes)]. *)
