lib/core/cdff.ml: Bin_store Dbp_binpack Dbp_instance Dbp_sim Dbp_util Fit_group Hashtbl Ints Item List Policy Printf
