lib/core/cdff.mli: Dbp_binpack Dbp_sim Policy
