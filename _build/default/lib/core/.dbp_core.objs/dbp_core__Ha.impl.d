lib/core/ha.ml: Bin_store Dbp_binpack Dbp_instance Dbp_sim Dbp_util Fit_group Hashtbl Item Load Option Policy Printf
