lib/core/ha.mli: Dbp_binpack Dbp_sim Policy
