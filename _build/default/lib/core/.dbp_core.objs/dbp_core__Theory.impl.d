lib/core/theory.ml: Float
