lib/core/theory.mli:
