(** CDFF — Classify-by-Duration-First-Fit (Algorithm 2):
    [O(log log mu)]-competitive on aligned inputs (Theorem 5.1).

    Aligned inputs (Definition 2.1) release items of duration class [i]
    (duration in [(2^(i-1), 2^i]]) only at multiples of [2^i]. CDFF keeps
    *rows* of bins. At time [t], let [m_t] be the largest class that may
    legally arrive ([m_t = ntz(t - segment_start)], or the top class at a
    segment start); an arriving item of class [i] is packed First-Fit
    into row [m_t - i]. Longer-lived items therefore sit in lower rows,
    and the row occupancy over a binary input follows the longest run of
    zeros in [binary(t)] (Lemma 5.5, Corollary 5.8) — which is how the
    [O(log log mu)] bound emerges.

    The implementation performs the paper's online segment partition: a
    new segment starts whenever an item arrives at or after the current
    segment's horizon [segment_start + 2^n], with [n] re-learned from the
    arrivals at the segment's first tick (so [mu] need not be known in
    advance). Bins are opened lazily (an empty bin costs nothing, so this
    matches the paper's cost model exactly).

    Fed a non-aligned input CDFF still packs validly — out-of-range rows
    are clamped to row 0 — but the competitive guarantee is void; callers
    can check {!Dbp_instance.Instance.is_aligned} first. *)

open Dbp_sim

val policy : ?rule:Dbp_binpack.Heuristics.rule -> unit -> Policy.factory
(** [rule] is the Any-Fit rule within each row; default (paper) is
    First-Fit. *)

type gauge = {
  mutable rows_active : int;  (** rows currently holding open bins *)
  mutable max_row_bins : int;  (** high-water of open bins in one row *)
  mutable segments : int;  (** segments the partition produced *)
}

val instrumented : ?rule:Dbp_binpack.Heuristics.rule -> unit -> Policy.factory * gauge
