(** Closed-form quantities from the paper, for plotting measured curves
    against predicted ones and for asserting invariants in tests.

    All take [mu] (the max/min duration ratio) as a float > = 1; logs are
    base 2 as in the paper. *)

val log2 : float -> float
(** Base-2 log clamped below at 0 (so [mu = 1] inputs yield 0, not
    -inf). *)

val sqrt_log_mu : float -> float
(** [sqrt (log2 mu)] — the general-input upper/lower bound scale
    (Theorems 3.2 and 4.3). *)

val log_log_mu : float -> float
(** [log2 (log2 mu)] clamped below at 0 — the aligned-input scale
    (Theorem 5.1). *)

val gn_bound : float -> float
(** Lemma 3.3: at any time HA keeps at most [2 + 4 sqrt(log2 mu)] GN bins
    open. *)

val cdff_binary_bound : float -> float
(** Proposition 5.3: [CDFF(sigma_mu) <= (2 log log mu + 1) OPT_R], and
    [OPT_R(sigma_mu) = mu], so this is also the per-tick average open-bin
    bound. *)

val max0_expectation_bound : int -> float
(** Lemma 5.9: for [n] i.i.d. fair bits, [E[max_0] <= 2 log2 n]. *)

val lemma31_upper : demand:float -> span:float -> float
(** Lemma 3.1(2): [OPT_R <= 2 d(sigma) + 2 span(sigma)]. *)

val reduction_span_factor : float
(** Observation 1: [span(sigma') <= 4 span(sigma)]. *)

val reduction_demand_factor : float
(** Observation 2: [d(sigma') <= 4 d(sigma)]. *)

val adversary_bins : float -> int
(** The bin target [ceil (sqrt (log2 mu))] the Theorem 4.3 adversary
    forces at every time step. *)
