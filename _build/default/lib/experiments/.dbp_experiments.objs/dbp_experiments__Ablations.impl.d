lib/experiments/ablations.ml: Common Dbp_analysis Dbp_baselines Dbp_binpack Dbp_core List String Sweep Workload_defs
