lib/experiments/ablations.mli:
