lib/experiments/binary_exps.ml: Array Binary_strings Common Dbp_analysis Dbp_core Dbp_report Dbp_sim Dbp_util Engine Ints List Table Workload_defs
