lib/experiments/binary_exps.mli:
