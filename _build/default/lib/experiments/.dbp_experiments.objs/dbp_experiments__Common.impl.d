lib/experiments/common.ml: Dbp_analysis Dbp_baselines Dbp_core Dbp_report Dbp_sim Fit Format List Policy Printf String Sweep
