lib/experiments/common.mli: Dbp_analysis Dbp_sim Policy
