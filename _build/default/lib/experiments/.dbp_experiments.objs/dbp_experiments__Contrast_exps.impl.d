lib/experiments/contrast_exps.ml: Array Common Dbp_analysis Dbp_baselines Dbp_binpack Dbp_core Dbp_offline Dbp_report Dbp_util Dbp_workloads List Ratio String Sweep Table Workload_defs
