lib/experiments/contrast_exps.mli:
