lib/experiments/figures.ml: Array Common Dbp_core Dbp_report Dbp_sim Engine Gantt Printf Workload_defs
