lib/experiments/figures.mli:
