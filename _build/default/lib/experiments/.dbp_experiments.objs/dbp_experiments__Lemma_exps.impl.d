lib/experiments/lemma_exps.ml: Bounds Common Dbp_binpack Dbp_core Dbp_offline Dbp_report Dbp_sim Dbp_util Dbp_workloads Float Ints List Opt_repack Table Workload_defs
