lib/experiments/lemma_exps.mli:
