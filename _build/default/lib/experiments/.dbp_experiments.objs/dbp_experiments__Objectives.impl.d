lib/experiments/objectives.ml: Common Dbp_analysis Dbp_baselines Dbp_binpack Dbp_core Dbp_report Dbp_sim List Momentary Printf Table Workload_defs
