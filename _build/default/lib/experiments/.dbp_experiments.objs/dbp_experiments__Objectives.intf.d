lib/experiments/objectives.mli:
