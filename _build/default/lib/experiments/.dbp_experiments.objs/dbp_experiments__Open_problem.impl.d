lib/experiments/open_problem.ml: Common Dbp_analysis Dbp_binpack Dbp_report Dbp_workloads List Ratio String Sweep Table
