lib/experiments/open_problem.mli:
