lib/experiments/registry.ml: Ablations Binary_exps Contrast_exps Figures Lemma_exps List Objectives Open_problem String Table1 Theorem_exps
