lib/experiments/registry.mli:
