lib/experiments/table1.ml: Array Common Dbp_analysis Dbp_baselines Dbp_core Dbp_report Dbp_util Fit Float Format List Printf Sweep Table Workload_defs
