lib/experiments/theorem_exps.ml: Common Dbp_analysis Dbp_baselines Dbp_core Dbp_report List String Sweep Workload_defs
