lib/experiments/theorem_exps.mli:
