lib/experiments/workload_defs.ml: Aligned_random Binary_input Cd_killer Dbp_util Dbp_workloads General_random Pinning
