lib/experiments/workload_defs.mli: Dbp_instance Instance
