open Dbp_analysis

let ha_threshold ~quick =
  let mus = if quick then [ 16; 64; 256 ] else [ 16; 64; 256; 1024; 4096 ] in
  let algorithms =
    [
      ("1/(2 sqrt i)", Dbp_core.Ha.policy ());
      ("flat 1/2", Dbp_core.Ha.policy ~threshold:(fun _ -> 0.5) ());
      ("1/(2 i)", Dbp_core.Ha.policy ~threshold:(fun i -> 0.5 /. float_of_int i) ());
      ( "1/2^i",
        Dbp_core.Ha.policy ~threshold:(fun i -> 1.0 /. float_of_int (1 lsl min i 30)) ()
      );
    ]
  in
  let random =
    Sweep.run ~algorithms ~workload:Workload_defs.general ~mus
      ~seeds:(Common.seeds ~quick) ()
  in
  let adversarial = Sweep.adversarial ~algorithms ~mus () in
  Common.section "E14 / ablation: HA's GN admission threshold"
    ("General random inputs:\n" ^ Common.curve_table random
    ^ "\nAdaptive adversary:\n"
    ^ Common.curve_table adversarial
    ^ "\nMeasured finding (honest): at laptop-scale mu the flat 1/2 threshold is\n\
       at least as good as the paper's 1/(2 sqrt i) on both input families —\n\
       it routes almost everything to the shared GN pool, behaving like\n\
       First-Fit, which these workloads don't punish. The sqrt profile's value\n\
       is the *worst-case guarantee*: a flat threshold admits up to ~log(mu)/2\n\
       of GN load, so Lemma 3.3's O(sqrt(log mu)) GN-bin bound — and with it\n\
       the Theorem 3.2 proof — fails for it; the gap would only materialize\n\
       once the number of simultaneously active duration classes is large\n\
       (mu >> 2^16). Steeper profiles (1/(2i), 1/2^i) are strictly worse both\n\
       in theory and in these measurements: they open CD bins for types that\n\
       never accumulate enough load to justify them.\n")

let cdff_rows ~quick =
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let algorithms =
    [
      ("CDFF (dynamic rows)", Dbp_core.Cdff.policy ());
      ("static rows (=CD)", Dbp_baselines.Classify_duration.policy ());
    ]
  in
  let binary = Sweep.run ~algorithms ~workload:Workload_defs.binary ~mus ~seeds:[ 0 ] () in
  let aligned =
    Sweep.run ~algorithms ~workload:Workload_defs.aligned ~mus
      ~seeds:(Common.seeds ~quick) ()
  in
  let fits =
    List.map
      (fun (c : Sweep.curve) -> Common.fit_line c.algorithm (Sweep.fit_curve c))
      binary
  in
  Common.section "E15 / ablation: CDFF's dynamic row remapping vs static rows"
    ("Binary input sigma_mu:\n" ^ Common.curve_table binary
    ^ "\nBest-fit growth models (binary input):\n"
    ^ String.concat "\n" fits ^ "\n\nAligned random inputs:\n"
    ^ Common.curve_table aligned
    ^ "\nExpected shape: static rows cost ~log mu on sigma_mu (every class keeps a\n\
       bin open at all times); dynamic remapping collapses that to ~log log mu —\n\
       the exponential gap the paper claims.\n")

let any_fit_rule ~quick =
  let mus = if quick then [ 16; 64; 256 ] else [ 16; 64; 256; 1024 ] in
  let open Dbp_binpack.Heuristics in
  let algorithms =
    [
      ("HA/FirstFit", Dbp_core.Ha.policy ~rule:First_fit ());
      ("HA/BestFit", Dbp_core.Ha.policy ~rule:Best_fit ());
      ("HA/WorstFit", Dbp_core.Ha.policy ~rule:Worst_fit ());
      ("HA/NextFit", Dbp_core.Ha.policy ~rule:Next_fit ());
    ]
  in
  let curves =
    Sweep.run ~algorithms ~workload:Workload_defs.general ~mus
      ~seeds:(Common.seeds ~quick) ()
  in
  Common.section "E16 / ablation: the Any-Fit rule inside HA (paper footnote 1)"
    (Common.curve_table curves
    ^ "\nExpected shape: First/Best/Worst-Fit are interchangeable (the paper's\n\
       footnote 1); Next-Fit is an Any-Fit rule only in a loose sense and may\n\
       trail slightly.\n")
