(** Experiments E14-E16: ablations of the paper's design choices.

    - E14: HA's GN-admission threshold [1/(2 sqrt i)] against flat and
      steeper alternatives — the sqrt profile is what balances GN volume
      (Lemma 3.3) against CD bin count (Lemma 3.5).
    - E15: CDFF's dynamic row remapping against static
      one-row-per-class (= pure Classify-by-Duration) — the paper
      credits the remapping for the exponential improvement.
    - E16: the Any-Fit rule inside HA (footnote 1: any of them works). *)

val ha_threshold : quick:bool -> string
val cdff_rows : quick:bool -> string
val any_fit_rule : quick:bool -> string
