open Dbp_util
open Dbp_sim
open Dbp_analysis
open Dbp_report

let corollary58 ~quick =
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let table =
    Table.create ~columns:[ "mu"; "ticks checked"; "mismatches"; "max open bins" ]
  in
  List.iter
    (fun mu ->
      let n = Ints.floor_log2 mu in
      let res = Engine.run (Dbp_core.Cdff.policy ()) (Workload_defs.binary ~mu ~seed:0) in
      let checked = ref 0 and mismatches = ref 0 and max_open = ref 0 in
      Array.iter
        (fun (t, open_bins) ->
          if t >= 0 && t < mu then begin
            incr checked;
            max_open := max !max_open open_bins;
            if open_bins <> Binary_strings.max0 ~bits:n t + 1 then incr mismatches
          end)
        res.series;
      Table.add_row table
        [
          Table.cell_int mu;
          Table.cell_int !checked;
          Table.cell_int !mismatches;
          Table.cell_int !max_open;
        ])
    mus;
  Common.section
    "E9 / Corollary 5.8: CDFF open bins at t+ = max_0(binary t) + 1 on sigma_mu"
    (Table.render table ^ "\n(0 mismatches = the identity holds exactly)\n")

let lemma59 ~quick =
  let top = if quick then 16 else 24 in
  let table =
    Table.create
      ~columns:[ "n (bits)"; "E[max_0] exact"; "bound 2 log2 n"; "sum over 2^n strings" ]
  in
  let ns = List.filter (fun n -> n <= top) [ 2; 4; 8; 12; 16; 20; 24 ] in
  List.iter
    (fun n ->
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float (Binary_strings.expectation ~bits:n);
          Table.cell_float (Dbp_core.Theory.max0_expectation_bound n);
          Table.cell_int (Binary_strings.sum_over_range ~bits:n);
        ])
    ns;
  Common.section "E10 / Lemma 5.9 + Corollary 5.10: longest zero-run expectation"
    (Table.render table)

let prop53 ~quick =
  let mus = if quick then [ 4; 16; 64; 256; 1024 ] else [ 4; 16; 64; 256; 1024; 4096; 16384; 65536 ] in
  let table =
    Table.create
      ~columns:[ "mu"; "CDFF cost"; "cost / mu"; "bound 2 log log mu + 1"; "within" ]
  in
  List.iter
    (fun mu ->
      let res = Engine.run (Dbp_core.Cdff.policy ()) (Workload_defs.binary ~mu ~seed:0) in
      let per_tick = float_of_int res.cost /. float_of_int mu in
      let bound = Dbp_core.Theory.cdff_binary_bound (float_of_int mu) in
      Table.add_row table
        [
          Table.cell_int mu;
          Table.cell_int res.cost;
          Table.cell_float per_tick;
          Table.cell_float bound;
          (if per_tick <= bound then "yes" else "NO");
        ])
    mus;
  Common.section
    "E11 / Proposition 5.3: CDFF(sigma_mu) <= (2 log log mu + 1) mu (OPT_R >= mu)"
    (Table.render table)
