(** Experiments E9-E11: the binary-string backbone of Section 5.

    - E9 (Corollary 5.8): on [sigma_mu], CDFF's open-bin count at [t^+]
      equals [max_0(binary t) + 1] for *every* tick — checked exactly.
    - E10 (Lemma 5.9 / Corollary 5.10): exact [E[max_0]] versus the
      [2 log2 n] bound.
    - E11 (Proposition 5.3): [CDFF(sigma_mu) / mu] versus
      [2 log log mu + 1]. *)

val corollary58 : quick:bool -> string
val lemma59 : quick:bool -> string
val prop53 : quick:bool -> string
