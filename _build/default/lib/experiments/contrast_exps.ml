open Dbp_analysis
open Dbp_report

let nonclairvoyant ~quick =
  (* k = mu capped at 256 keeps the construction faithful (see
     Workload_defs.pinning); larger mu would plateau the ratio. *)
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 8; 16; 32; 64; 128; 256 ] in
  let algorithms =
    [
      ("FF", Dbp_baselines.Any_fit.first_fit);
      ("HA", Dbp_core.Ha.policy ());
      ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
    ]
  in
  let curves =
    Sweep.run ~algorithms ~workload:Workload_defs.pinning ~mus ~seeds:[ 0 ] ()
  in
  let fits =
    List.map (fun c -> Common.fit_line c.Sweep.algorithm (Sweep.fit_curve c)) curves
  in
  (* Theorem 4.2 analogue: the non-repacking offline stand-in stays
     within a small constant of OPT_R. *)
  let solver = Dbp_binpack.Solver.create () in
  let dc_table = Table.create ~columns:[ "mu"; "DC-substitute / OPT_R"; "< 4" ] in
  List.iter
    (fun mu ->
      let inst = Workload_defs.pinning ~mu ~seed:0 in
      let ratio = Dbp_offline.Dual_coloring.ratio_to_opt_r ~solver inst in
      Table.add_row dc_table
        [
          Table.cell_int mu;
          Table.cell_float ratio;
          (if ratio < 4.0 then "yes" else "NO");
        ])
    mus;
  Common.section
    "E13 / Table 1 row 3: the pinning family (non-clairvoyant FF vs clairvoyant)"
    (Common.curve_table curves ^ "\nBest-fit growth models:\n"
    ^ String.concat "\n" fits
    ^ "\n\nExpected shape: FF's ratio grows linearly in mu while HA stays flat.\n\
       Note SpanGreedy is caught too — extending a bin by zero ticks looks free\n\
       to a myopic cost rule, so it co-locates the pins with the fillers exactly\n\
       like FF; escaping the trap takes duration classification, not just\n\
       clairvoyance.\n\n"
    ^ "Dual-Coloring stand-in vs OPT_R (Theorem 4.2 says DC <= 4 OPT_R):\n"
    ^ Table.render dc_table)

let cd_killer ~quick =
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let algorithms = Common.core_roster ~mu_hint:1024.0 in
  let curves =
    Sweep.run ~algorithms ~workload:Workload_defs.cd_killer ~mus ~seeds:[ 0 ] ()
  in
  let fits =
    List.map (fun c -> Common.fit_line c.Sweep.algorithm (Sweep.fit_curve c)) curves
  in
  Common.section
    "E17: one thin item per duration class (the Omega(log mu) trap for pure CD)"
    (Common.curve_table curves ^ "\nBest-fit growth models:\n"
    ^ String.concat "\n" fits
    ^ "\n\nExpected shape: CD's ratio grows ~log mu; HA routes these low-volume types\n\
       to its GN bins and stays O(1); FF is also fine here.\n")

let cloud ~quick =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let table =
    Table.create ~columns:[ "algorithm"; "mean ratio"; "min"; "max"; "mean cost" ]
  in
  let algorithms = Common.clairvoyant_roster ~mu_hint:96.0 in
  let measurements =
    List.map
      (fun seed ->
        let inst = Dbp_workloads.Cloud_traces.generate ~seed () in
        Ratio.compare_algorithms algorithms inst)
      seeds
  in
  List.iter
    (fun (name, _) ->
      let rs =
        List.concat_map
          (List.filter (fun (m : Ratio.measurement) -> m.algorithm = name))
          measurements
      in
      let ratios = Array.of_list (List.map (fun (m : Ratio.measurement) -> m.ratio) rs) in
      let costs =
        Array.of_list (List.map (fun (m : Ratio.measurement) -> float_of_int m.cost) rs)
      in
      let s = Dbp_util.Stats.summarize ratios in
      Table.add_row table
        [
          name;
          Table.cell_float s.mean;
          Table.cell_float s.min;
          Table.cell_float s.max;
          Table.cell_float ~decimals:0 (Dbp_util.Stats.mean costs);
        ])
    algorithms;
  Common.section
    "E18: synthetic cloud-gaming trace (diurnal arrivals, log-normal sessions)"
    (Table.render table
    ^ "\n(ratios are vs the exact repacking optimum OPT_R; 1 tick = 1 minute)\n")
