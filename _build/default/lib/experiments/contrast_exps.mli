(** Experiments E13, E17, E18: the contrast workloads.

    - E13: on the pinning family, duration-oblivious First-Fit pays
      [Theta(mu)] while clairvoyant algorithms stay polylogarithmic
      (Table 1, row 3); also measures the Dual-Coloring stand-in's
      distance from [OPT_R] (Theorem 4.2's factor 4).
    - E17: the one-thin-item-per-class family where pure
      Classify-by-Duration pays [Theta(log mu)] and HA's GN bins shine.
    - E18: the synthetic cloud-gaming trace — the paper's motivating
      scenario. *)

val nonclairvoyant : quick:bool -> string
val cd_killer : quick:bool -> string
val cloud : quick:bool -> string
