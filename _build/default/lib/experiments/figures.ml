open Dbp_sim
open Dbp_report

let figure1 ~quick:_ =
  (* An aligned random run dense enough that several rows hold multiple
     bins, snapshotted at an interesting moment (highest open-bin
     count). *)
  let inst = Workload_defs.aligned ~mu:64 ~seed:7 in
  let res = Engine.run (Dbp_core.Cdff.policy ()) inst in
  let at, _ =
    Array.fold_left
      (fun (bt, bc) (t, c) -> if c > bc then (t, c) else (bt, bc))
      (0, -1) res.series
  in
  Common.section "Figure 1: CDFF's bins, one row of bins per duration class"
    (Gantt.snapshot inst res.store ~at)

let figure2 ~quick:_ =
  let inst = Workload_defs.binary ~mu:8 ~seed:0 in
  Common.section "Figure 2: the binary input sigma_8 (one segment per item)"
    (Gantt.items_chart inst)

let figure3 ~quick:_ =
  let inst = Workload_defs.binary ~mu:8 ~seed:0 in
  let res = Engine.run (Dbp_core.Cdff.policy ()) inst in
  Common.section "Figure 3: CDFF's packing of sigma_8 (one row per bin)"
    (Gantt.packing_chart inst res.store
    ^ Printf.sprintf "\ncost = %d bin-ticks over [0, 8); bins opened = %d\n" res.cost
        res.bins_opened)
