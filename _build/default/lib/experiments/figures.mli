(** Experiments E2-E4: the paper's figures as terminal charts.

    - Figure 1: CDFF's rows of bins at a moment in time (snapshot of an
      aligned random run).
    - Figure 2: the binary input [sigma_8], one row per item.
    - Figure 3: how CDFF packs [sigma_8], one row per bin. *)

val figure1 : quick:bool -> string
val figure2 : quick:bool -> string
val figure3 : quick:bool -> string
