open Dbp_util
open Dbp_offline
open Dbp_report

let lemma31 ~quick =
  let seeds = if quick then List.init 10 succ else List.init 40 succ in
  let solver = Dbp_binpack.Solver.create () in
  let table =
    Table.create
      ~columns:
        [ "workload"; "instances"; "max OPT_R/lower"; "max OPT_R/2ceil-int"; "holds" ]
  in
  let families =
    [
      ("general mu=64", fun seed -> Workload_defs.general ~mu:64 ~seed);
      ("general mu=256", fun seed -> Workload_defs.general ~mu:256 ~seed);
      ("aligned mu=64", fun seed -> Workload_defs.aligned ~mu:64 ~seed);
      ("uniform mu=64", fun seed -> Workload_defs.general_uniform ~mu:64 ~seed);
    ]
  in
  List.iter
    (fun (name, make) ->
      let worst_lb = ref 0.0 and worst_ub = ref 0.0 and ok = ref true in
      List.iter
        (fun seed ->
          let inst = make seed in
          let b = Bounds.compute inst in
          let opt = (Opt_repack.exact ~solver inst).cost in
          if opt < b.lower || opt > b.lemma31_upper then ok := false;
          worst_lb := Float.max !worst_lb (float_of_int opt /. float_of_int b.lower);
          worst_ub :=
            Float.max !worst_ub (float_of_int opt /. float_of_int b.lemma31_upper))
        seeds;
      Table.add_row table
        [
          name;
          Table.cell_int (List.length seeds);
          Table.cell_float !worst_lb;
          Table.cell_float !worst_ub;
          (if !ok then "yes" else "NO");
        ])
    families;
  Common.section
    "E5 / Lemma 3.1: lower <= OPT_R <= 2 * ceil-integral, measured"
    (Table.render table
    ^ "\n(both ratio columns must lie in [*, 1]: OPT_R/lower >= 1, OPT_R/upper <= 1)\n")

let lemma33 ~quick =
  let mus = if quick then [ 16; 64; 256 ] else [ 16; 64; 256; 1024; 4096 ] in
  let seeds = Common.seeds ~quick in
  let table =
    Table.create
      ~columns:[ "mu"; "max GN bins seen"; "bound 2+4sqrt(log mu)"; "holds" ]
  in
  List.iter
    (fun mu ->
      let worst = ref 0 in
      List.iter
        (fun seed ->
          let factory, gauge = Dbp_core.Ha.instrumented () in
          ignore (Dbp_sim.Engine.run factory (Workload_defs.general ~mu ~seed));
          worst := max !worst gauge.max_gn;
          let factory, gauge = Dbp_core.Ha.instrumented () in
          let outcome =
            (* the adversary stresses GN too *)
            Dbp_workloads.Adversary.run ~mu:(max 2 (Ints.pow2 (Ints.ceil_log2 mu))) factory
          in
          ignore outcome;
          worst := max !worst gauge.max_gn)
        seeds;
      let bound = Dbp_core.Theory.gn_bound (float_of_int mu) in
      Table.add_row table
        [
          Table.cell_int mu;
          Table.cell_int !worst;
          Table.cell_float bound;
          (if float_of_int !worst <= bound then "yes" else "NO");
        ])
    mus;
  Common.section "E6 / Lemma 3.3: HA's general bins stay below 2 + 4 sqrt(log mu)"
    (Table.render table)
