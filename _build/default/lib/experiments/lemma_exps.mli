(** Experiments E5-E6: the structural lemmas of Section 3.

    - E5 (Lemma 3.1): the repacking optimum is sandwiched —
      [lower <= OPT_R <= int 2 ceil(S_t) dt <= 2 d + 2 span] — measured
      on random instances.
    - E6 (Lemma 3.3): HA never holds more than [2 + 4 sqrt(log mu)] GN
      bins open, measured across workloads. *)

val lemma31 : quick:bool -> string
val lemma33 : quick:bool -> string
