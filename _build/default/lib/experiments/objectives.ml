open Dbp_analysis
open Dbp_report

let run ~quick =
  let mu = if quick then 64 else 256 in
  let solver = Dbp_binpack.Solver.create () in
  let table =
    Table.create
      ~columns:
        [ "workload"; "algorithm"; "usage-time"; "momentary"; "max-bins" ]
  in
  let families =
    [
      ("pinning", Workload_defs.pinning ~mu ~seed:0);
      ("general", Workload_defs.general ~mu ~seed:1);
      ("binary", Workload_defs.binary ~mu ~seed:0);
    ]
  in
  let algorithms =
    [
      ("FF", Dbp_baselines.Any_fit.first_fit);
      ("HA", Dbp_core.Ha.policy ());
      ("CDFF", Dbp_core.Cdff.policy ());
    ]
  in
  List.iter
    (fun (wname, inst) ->
      List.iter
        (fun (aname, factory) ->
          let res = Dbp_sim.Engine.run factory inst in
          let m = Momentary.measure ~solver res inst in
          Table.add_row table
            [
              wname;
              aname;
              Table.cell_ratio m.usage_ratio;
              Table.cell_ratio m.momentary_ratio;
              Table.cell_ratio m.max_bins_ratio;
            ])
        algorithms)
    families;
  Common.section
    (Printf.sprintf
       "E20 / goal functions compared (mu = %d): usage-time vs momentary vs max-bins"
       mu)
    (Table.render table
    ^ "\nThe introduction's point, quantified. The max-bins objective scores FF on\n\
       the pinning family at 1.00x — it never opens more bins than OPT's peak —\n\
       while FF actually wastes ~mu/2 of all server time; only the usage-time\n\
       objective sees the accumulated waste. Conversely, the momentary objective\n\
       over-penalizes harmless transients: CDFF's t=0 burst on the binary input\n\
       scores log mu + 1 momentarily although its total usage is within\n\
       2 log log mu + 1 of optimal.\n")
