(** Experiment E20: MinUsageTime versus the older goal functions.

    The paper's introduction motivates MinUsageTime by noting that both
    the max-bins objective and the momentary objective "fail to
    distinguish between the case where the online algorithm's cost is
    high throughout the entire process and the case where it is only
    momentarily high". This experiment measures all three objectives for
    the same runs: on the pinning family First-Fit looks acceptable under
    the momentary/max-bins objectives while its usage-time ratio explodes
    — exactly the phenomenon the paper's objective is designed to
    expose. *)

val run : quick:bool -> string
