open Dbp_analysis
open Dbp_report

let run ~quick =
  let mus = if quick then [ 16; 256; 4096 ] else [ 16; 64; 256; 1024; 4096; 65536 ] in
  let algorithms = Common.core_roster ~mu_hint:4096.0 in
  let solver = Dbp_binpack.Solver.create () in
  (* Part A: who suffers on the binary input? *)
  let binary_curves =
    Sweep.run ~algorithms
      ~workload:(fun ~mu ~seed:_ -> Dbp_workloads.Binary_input.generate ~mu)
      ~mus:(List.filter (fun m -> m <= 4096) mus)
      ~seeds:[ 0 ] ()
  in
  (* Part B: the aligned-restricted adversary. *)
  let aligned_adv = Table.create ~columns:("mu" :: List.map fst algorithms) in
  List.iter
    (fun mu ->
      let row =
        Table.cell_int mu
        :: List.map
             (fun (_, factory) ->
               let o = Dbp_workloads.Adversary.run_aligned ~mu factory in
               let m = Ratio.of_run ~solver o.result o.instance in
               Table.cell_ratio m.ratio)
             algorithms
      in
      Table.add_row aligned_adv row)
    mus;
  let fits =
    List.map
      (fun (c : Sweep.curve) -> Common.fit_line c.algorithm (Sweep.fit_curve c))
      binary_curves
  in
  Common.section
    "E19 / open problem: how hard are aligned inputs really?"
    ("A. All algorithms on the binary input sigma_mu (OPT_R = mu exactly):\n"
    ^ Common.curve_table binary_curves
    ^ "\nBest-fit growth models on sigma_mu:\n"
    ^ String.concat "\n" fits
    ^ "\n\nsigma_mu forces CDFF to ~2 log log mu + 1 (its analysis is tight *for\n\
       CDFF*) — but First-Fit packs sigma_mu optimally, since the active load\n\
       never exceeds one bin. So sigma_mu separates algorithms without lower-\n\
       bounding all of them.\n\n"
    ^ "B. The Theorem 4.3 adversary restricted to aligned releases:\n"
    ^ Table.render aligned_adv
    ^ "\nEmpirical finding: at these scales the aligned restriction barely weakens\n\
       the adversary — the forced ratios are essentially the unaligned ones\n\
       (compare E8). This does NOT contradict Theorem 5.1: the forced values\n\
       stay within CDFF's 2 log log mu + 1 envelope (3.6 <= ... at mu = 4096),\n\
       and separating sqrt(log mu) from log log mu growth observationally\n\
       would need mu far beyond laptop scale (the two differ by less than 2x\n\
       until mu ~ 2^64). The open problem is genuinely open: aligned inputs\n\
       admit nontrivial adversarial pressure, just not provably more than\n\
       Omega(1) with this technique.\n")
