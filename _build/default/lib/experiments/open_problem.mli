(** Experiment E19: the paper's open problem, probed empirically.

    For aligned inputs the paper leaves a gap: CDFF is
    [O(log log mu)]-competitive but the best known lower bound is
    constant. Two measurements bear on it:

    - the binary input [sigma_mu] *does* force CDFF itself to
      [Theta(log log mu)] (its analysis is tight for CDFF) — but plain
      First-Fit handles [sigma_mu] optimally, so [sigma_mu] is not a
      lower bound against every algorithm;
    - the Theorem 4.3 adversary restricted to aligned release times
      loses most of its power: at odd ticks it can only release
      duration-1 items, and the measured ratios flatten out.

    Together these illustrate why the aligned case resists the paper's
    lower-bound technique. *)

val run : quick:bool -> string
