(** The experiment registry: stable ids (DESIGN.md's experiment index)
    mapped to runners. Used by both the bench harness (run everything)
    and the CLI (run one by id). *)

type entry = {
  id : string;  (** e.g. "table1", "theorem43" *)
  experiment : string;  (** DESIGN.md id, e.g. "E1" *)
  title : string;
  run : quick:bool -> string;
}

val all : entry list
(** In presentation order. *)

val find : string -> entry option
(** Look up by [id] or [experiment] (case-insensitive). *)
