open Dbp_analysis
open Dbp_report

let last_ratio (c : Sweep.curve) =
  match List.rev c.points with
  | [] -> nan
  | p :: _ -> p.ratios.mean

let fitted_of c model =
  let mus = Array.of_list (List.map (fun (p : Sweep.point) -> p.mu) c.Sweep.points) in
  let ys =
    Array.of_list
      (List.map (fun (p : Sweep.point) -> p.ratios.Dbp_util.Stats.mean) c.Sweep.points)
  in
  Fit.fit model ~mus ~ys

(* For O(.) rows: the smallest c such that ratio <= c * (1 + g(mu)) at
   every sweep point — an empirical envelope constant. *)
let envelope_of c g =
  List.fold_left
    (fun acc (p : Sweep.point) ->
      Float.max acc (p.ratios.Dbp_util.Stats.mean /. (1.0 +. g p.mu)))
    0.0 c.Sweep.points

let run ~quick =
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  (* The pinning family needs k = mu items of size 1/mu per group; past
     mu = 256 the generator caps k and the Theta(mu) law plateaus, so
     sweep it only where the construction is faithful. *)
  let pinning_mus = List.filter (fun mu -> mu <= 256) mus in
  let seeds = Common.seeds ~quick in
  let ha = [ ("HA", Dbp_core.Ha.policy ()) ] in
  let cdff = [ ("CDFF", Dbp_core.Cdff.policy ()) ] in
  let ff = [ ("FF", Dbp_baselines.Any_fit.first_fit) ] in
  let general_ha =
    List.hd (Sweep.run ~algorithms:ha ~workload:Workload_defs.general ~mus ~seeds ())
  in
  let adversary_ha = List.hd (Sweep.adversarial ~algorithms:ha ~mus ()) in
  let aligned_cdff =
    List.hd (Sweep.run ~algorithms:cdff ~workload:Workload_defs.aligned ~mus ~seeds ())
  in
  let pinning_ff =
    List.hd
      (Sweep.run ~algorithms:ff ~workload:Workload_defs.pinning ~mus:pinning_mus
         ~seeds:[ 0 ] ())
  in
  let mu_top = List.nth mus (List.length mus - 1) in
  let table =
    Table.create
      ~columns:
        [
          "setting";
          "inputs";
          "paper bound";
          "measured";
          Printf.sprintf "ratio @ mu=%d" mu_top;
          "agreement with paper model";
        ]
  in
  let fit_row ~setting ~inputs ~bound ~label curve model =
    let f = fitted_of curve model in
    Table.add_row table
      [
        setting; inputs; bound; label;
        Table.cell_ratio (last_ratio curve);
        Format.asprintf "grows as %a" Fit.pp f;
      ]
  in
  let envelope_row ~setting ~inputs ~bound ~label curve g gname =
    Table.add_row table
      [
        setting; inputs; bound; label;
        Table.cell_ratio (last_ratio curve);
        Printf.sprintf "ratio <= %.2f (1 + %s) at every mu" (envelope_of curve g) gname;
      ]
  in
  envelope_row ~setting:"Clairvoyant" ~inputs:"general"
    ~bound:"O(sqrt(log mu)) [Thm 3.2]" ~label:"HA, random" general_ha
    Dbp_core.Theory.sqrt_log_mu "sqrt(log mu)";
  fit_row ~setting:"Clairvoyant" ~inputs:"general"
    ~bound:"Omega(sqrt(log mu)) [Thm 4.3]" ~label:"HA, adversary" adversary_ha
    Fit.Sqrt_log;
  envelope_row ~setting:"Clairvoyant" ~inputs:"aligned"
    ~bound:"O(log log mu) [Thm 5.1]" ~label:"CDFF, aligned" aligned_cdff
    Dbp_core.Theory.log_log_mu "log log mu";
  fit_row ~setting:"Non-clairvoyant" ~inputs:"general" ~bound:"Theta(mu) [7][13]"
    ~label:
      (Printf.sprintf "FF, pinning (mu <= %d)"
         (List.fold_left max 0 pinning_mus))
    pinning_ff Fit.Linear_mu;
  Common.section "E1 / Table 1: the bounds table, measured"
    (Table.render table
    ^ "\nUpper-bound rows (O(.)) report the empirical envelope constant: the\n\
       smallest c with ratio <= c (1 + model) across the sweep — random inputs\n\
       do not *realize* worst-case bounds, they must only stay under them.\n\
       Lower-bound rows (Omega/Theta) report the least-squares growth fit on\n\
       the family that realizes the bound (R^2 near 1 = the paper's shape).\n")
