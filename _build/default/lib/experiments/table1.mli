(** Experiment E1: the paper's Table 1, regenerated empirically.

    For each cell of the bounds table the harness measures the relevant
    algorithm on the relevant input family across a [mu] sweep, reports
    the measured ratio at the largest [mu], and fits the growth model the
    paper predicts. *)

val run : quick:bool -> string
