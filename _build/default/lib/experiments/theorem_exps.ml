open Dbp_analysis

let theorem32 ~quick =
  let mus = if quick then Common.quick_mus else Common.full_mus in
  let curves =
    Sweep.run
      ~algorithms:(Common.core_roster ~mu_hint:1024.0)
      ~workload:Workload_defs.general ~mus ~seeds:(Common.seeds ~quick) ()
  in
  let fits =
    List.map (fun c -> Common.fit_line c.Sweep.algorithm (Sweep.fit_curve c)) curves
  in
  Common.section
    "E7 / Theorem 3.2: competitive ratios on general random inputs (mean over seeds)"
    (Common.curve_table curves ^ "\nBest-fit growth models:\n"
    ^ String.concat "\n" fits
    ^ "\n\nExpected shape: random inputs are benign — every clairvoyant algorithm's\n\
       ratio stays small and far below the worst-case sqrt(log mu) envelope\n\
       (Theorem 3.2 is an upper bound, realized only adversarially; see E8).\n\
       First-Fit looks good here precisely because its Theta(mu) failures need\n\
       pinning-style inputs (E13).\n")

let theorem43 ~quick =
  let mus =
    if quick then [ 16; 256; 4096 ] else [ 16; 64; 256; 1024; 4096; 16384; 65536 ]
  in
  let algorithms =
    Common.core_roster ~mu_hint:1024.0
    @ [ ("SpanGreedy", Dbp_baselines.Span_greedy.policy) ]
  in
  let curves = Sweep.adversarial ~algorithms ~mus () in
  let fits =
    List.map (fun c -> Common.fit_line c.Sweep.algorithm (Sweep.fit_curve c)) curves
  in
  let lower_bound_row (p : Sweep.point) =
    Dbp_report.Table.cell_float (Dbp_core.Theory.sqrt_log_mu p.mu /. 8.0)
  in
  Common.section
    "E8 / Theorem 4.3: ratios forced by the adaptive adversary (vs exact OPT_R)"
    (Common.curve_table ~extra:[ ("sqrt(log mu)/8", lower_bound_row) ] curves
    ^ "\nBest-fit growth models:\n"
    ^ String.concat "\n" fits
    ^ "\n\nExpected shape: EVERY algorithm's ratio grows without bound, at least like\n\
       c * sqrt(log mu) — the lower bound applies to any deterministic online\n\
       algorithm, including HA.\n")

let theorem51 ~quick =
  let mus = if quick then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let curves =
    Sweep.run
      ~algorithms:(Common.core_roster ~mu_hint:1024.0)
      ~workload:Workload_defs.aligned ~mus ~seeds:(Common.seeds ~quick) ()
  in
  let fits =
    List.map (fun c -> Common.fit_line c.Sweep.algorithm (Sweep.fit_curve c)) curves
  in
  Common.section
    "E12 / Theorem 5.1: competitive ratios on aligned random inputs"
    (Common.curve_table curves ^ "\nBest-fit growth models:\n"
    ^ String.concat "\n" fits
    ^ "\n\nExpected shape: CDFF grows ~log log mu (nearly flat) and tracks or beats\n\
       HA as mu grows.\n")
