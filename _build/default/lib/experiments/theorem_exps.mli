(** Experiments E7, E8, E12: the paper's three headline bounds.

    - E7 (Theorem 3.2): HA's measured competitive ratio on general
      inputs grows like [sqrt(log mu)].
    - E8 (Theorem 4.3): the adaptive adversary forces every implemented
      online algorithm to [Omega(sqrt(log mu))].
    - E12 (Theorem 5.1): CDFF's ratio on aligned inputs grows like
      [log log mu] and beats HA there. *)

val theorem32 : quick:bool -> string
val theorem43 : quick:bool -> string
val theorem51 : quick:bool -> string
