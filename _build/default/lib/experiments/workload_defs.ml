open Dbp_workloads

let horizon_for mu = max 64 (min (4 * mu) 2048)

let general ~mu ~seed =
  General_random.generate
    ~config:
      {
        General_random.default with
        horizon = horizon_for mu;
        max_duration = mu;
        dist = Dyadic_uniform;
      }
    ~seed ()

let general_uniform ~mu ~seed =
  General_random.generate
    ~config:
      {
        General_random.default with
        horizon = horizon_for mu;
        max_duration = mu;
        dist = Uniform;
      }
    ~seed ()

let aligned ~mu ~seed =
  Aligned_random.generate
    ~config:
      {
        Aligned_random.default with
        top_class = Dbp_util.Ints.ceil_log2 mu;
        horizon = horizon_for mu;
      }
    ~seed ()

let binary ~mu ~seed:_ = Binary_input.generate ~mu

let pinning ~mu ~seed:_ =
  let k = min mu 256 in
  Pinning.generate ~groups:k ~k ~mu ()

let cd_killer ~mu ~seed:_ = Cd_killer.generate ~mu ()
