lib/instance/instance.ml: Array Dbp_util Float Format Hashtbl Item List Load
