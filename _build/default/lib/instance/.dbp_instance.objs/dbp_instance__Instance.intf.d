lib/instance/instance.mli: Format Item
