lib/instance/io.ml: Array Buffer Dbp_util Fun Instance Item List Load Printf String
