lib/instance/io.mli: Instance
