lib/instance/item.ml: Dbp_util Format Int Ints Load
