lib/instance/item.mli: Dbp_util Format Load
