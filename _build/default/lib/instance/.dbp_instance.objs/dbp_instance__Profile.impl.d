lib/instance/profile.ml: Array Dbp_util Hashtbl Instance Int Ints Item List Load Option
