lib/instance/profile.mli: Instance
