lib/instance/reduction.ml: Array Dbp_util Instance Ints Item List
