lib/instance/reduction.mli: Instance Item
