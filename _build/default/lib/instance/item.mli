(** Items (requests) of the dynamic bin packing problem.

    An item occupies [size] of a bin during the half-open tick interval
    [[arrival, departure)). The paper's closed intervals [[t_r, f_r]] have
    the same measure; half-open intervals make "departures happen before
    arrivals at the same instant" (the paper's [t^-]/[t^+] convention)
    unambiguous. *)

open Dbp_util

type t = private { id : int; arrival : int; departure : int; size : Load.t }

val make : id:int -> arrival:int -> departure:int -> size:Load.t -> t
(** Requires [0 <= arrival < departure] and [size <= Load.one]. *)

val duration : t -> int
(** [departure - arrival], always >= 1. *)

val is_active : t -> at:int -> bool
(** Whether [at] lies in [[arrival, departure)). *)

val length_class : t -> int
(** The index [i >= 0] with [duration] in [(2^(i-1), 2^i]]; class 0 is
    duration 1. This is the classification CDFF and aligned inputs use. *)

val ha_class : t -> int
(** [max 1 (length_class r)]: the paper's HA assumes classes start at 1
    (so the [1/(2 sqrt i)] threshold is defined); duration-1 items join
    class 1. *)

val arrival_block : t -> int
(** The index [c >= 0] with [arrival] in [((c-1)*2^i, c*2^i]] for
    [i = ha_class]; [arrival = 0] gives [c = 0]. *)

val ha_type : t -> int * int
(** The HA type [(i, c)] = [(ha_class, arrival_block)]. *)

val is_aligned : t -> bool
(** Whether the item respects Definition 2.1: arrival is a multiple of
    [2^length_class]. *)

val compare : t -> t -> int
(** Orders by [(arrival, id)] — the order the online algorithm must
    process simultaneous arrivals in. *)

val pp : Format.formatter -> t -> unit
