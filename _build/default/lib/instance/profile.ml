open Dbp_util

type segment = { start : int; stop : int; load_units : int; count : int }
type t = { segs : segment array }

(* Sweep the +size / -size deltas at each event tick. *)
let of_instance inst =
  let deltas = Hashtbl.create 64 in
  let add t du dc =
    let u, c = Option.value (Hashtbl.find_opt deltas t) ~default:(0, 0) in
    Hashtbl.replace deltas t (u + du, c + dc)
  in
  Array.iter
    (fun (r : Item.t) ->
      add r.arrival (Load.to_units r.size) 1;
      add r.departure (-Load.to_units r.size) (-1))
    (Instance.items inst);
  let ticks = Hashtbl.fold (fun t _ acc -> t :: acc) deltas [] |> List.sort Int.compare in
  let segs = ref [] in
  let load = ref 0 and count = ref 0 in
  let rec walk = function
    | [] | [ _ ] -> ()
    | t0 :: (t1 :: _ as rest) ->
        let du, dc = Hashtbl.find deltas t0 in
        load := !load + du;
        count := !count + dc;
        if !count > 0 then
          segs := { start = t0; stop = t1; load_units = !load; count = !count } :: !segs;
        walk rest
  in
  walk ticks;
  { segs = Array.of_list (List.rev !segs) }

let segments t = Array.to_list t.segs
let max_load_units t = Array.fold_left (fun acc s -> max acc s.load_units) 0 t.segs
let max_count t = Array.fold_left (fun acc s -> max acc s.count) 0 t.segs

let demand_units t =
  Array.fold_left (fun acc s -> acc + (s.load_units * (s.stop - s.start))) 0 t.segs

let ceil_integral t =
  Array.fold_left
    (fun acc s -> acc + (Ints.ceil_div s.load_units Load.capacity * (s.stop - s.start)))
    0 t.segs

let span t = Array.fold_left (fun acc s -> acc + (s.stop - s.start)) 0 t.segs

let load_at t at =
  match Array.find_opt (fun s -> s.start <= at && at < s.stop) t.segs with
  | Some s -> s.load_units
  | None -> 0
