(** The load profile [S_t]: total active load as a step function of time.

    The paper's bounds are integrals over this function:
    [d(sigma) = int S_t dt] (the time-space bound) and
    [int ceil(S_t) dt], the fractional-rounding lower bound on
    [OPT_R]. Segments are maximal half-open intervals on which the active
    item set is constant. *)

type segment = {
  start : int;
  stop : int;  (** half-open: the segment covers [[start, stop)). *)
  load_units : int;  (** total active load, in {!Load.capacity} units. *)
  count : int;  (** number of active items. *)
}

type t

val of_instance : Instance.t -> t

val segments : t -> segment list
(** Only segments with at least one active item, in time order. *)

val max_load_units : t -> int
val max_count : t -> int

val demand_units : t -> int
(** [int S_t dt] in load-units x ticks; equals
    {!Instance.demand_units}. *)

val ceil_integral : t -> int
(** [int ceil(S_t) dt] in bin x ticks — a lower bound on any packing's
    usage time, repacking or not. *)

val span : t -> int
(** Total tick measure with at least one active item. *)

val load_at : t -> int -> int
(** [S_t] in load units at a tick (0 outside every segment). *)
