(** The departure-rounding reduction of Section 3.

    [sigma'] extends each item's departure to the end of the arrival
    block of its HA type: an item of type [(i, c)] departs at
    [(c+1) * 2^i]. Consequences used by the paper's analysis, all
    property-tested here:

    - intersecting items of equal type depart together in [sigma'];
    - each duration grows by a factor < 4 (Observations 1 and 2:
      [span(sigma') <= 4 span(sigma)], [d(sigma') <= 4 d(sigma)]);
    - for aligned inputs the reduction rounds the departure up to the
      next multiple of [2^i]. *)

val apply : Instance.t -> Instance.t
(** The reduced instance [sigma']; item ids and arrivals are
    preserved. *)

val reduced_departure : Item.t -> int
(** [(c + 1) * 2^i] for the item's HA type [(i, c)]. Always at least the
    item's own departure. *)
