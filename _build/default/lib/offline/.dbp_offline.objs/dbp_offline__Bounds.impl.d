lib/offline/bounds.ml: Dbp_instance Dbp_util Ints Load Profile
