lib/offline/bounds.mli: Dbp_instance
