lib/offline/dual_coloring.ml: Dbp_baselines Dbp_sim Offline_ffd Opt_repack
