lib/offline/dual_coloring.mli: Dbp_binpack Dbp_instance
