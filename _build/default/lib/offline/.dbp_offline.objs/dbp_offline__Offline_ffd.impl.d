lib/offline/offline_ffd.ml: Array Dbp_instance Dbp_util Instance Int Item List Load Timeline Vec
