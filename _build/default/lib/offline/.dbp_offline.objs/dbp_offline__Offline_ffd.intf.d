lib/offline/offline_ffd.mli: Dbp_instance
