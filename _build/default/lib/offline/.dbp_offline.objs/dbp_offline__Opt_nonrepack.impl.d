lib/offline/opt_nonrepack.ml: Array Bounds Dbp_baselines Dbp_instance Dbp_sim Dbp_util Instance Item List Load Vec
