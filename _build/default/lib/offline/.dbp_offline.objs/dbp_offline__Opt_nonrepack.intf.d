lib/offline/opt_nonrepack.mli: Dbp_instance
