lib/offline/opt_repack.ml: Array Dbp_binpack Dbp_instance Dbp_util Hashtbl Heuristics Instance Int Item List Load Solver
