lib/offline/opt_repack.mli: Dbp_binpack Dbp_instance Solver
