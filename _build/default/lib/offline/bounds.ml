open Dbp_util
open Dbp_instance

type t = {
  demand_units : int;
  span : int;
  ceil_integral : int;
  lower : int;
  lemma31_upper : int;
}

let compute inst =
  let profile = Profile.of_instance inst in
  let demand_units = Profile.demand_units profile in
  let span = Profile.span profile in
  let ceil_integral = Profile.ceil_integral profile in
  { demand_units; span; ceil_integral; lower = ceil_integral; lemma31_upper = 2 * ceil_integral }

let demand_ceil t = Ints.ceil_div t.demand_units Load.capacity
