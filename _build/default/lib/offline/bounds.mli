(** The paper's offline bounds on the MinUsageTime optimum (Section 3).

    All costs are in bin x ticks. For every instance:
    [lower <= OPT_R <= OPT_NR] and [OPT_R <= lemma31_upper]. *)

type t = {
  demand_units : int;  (** d(sigma), in load-units x ticks *)
  span : int;  (** span(sigma) *)
  ceil_integral : int;  (** int ceil(S_t) dt *)
  lower : int;
      (** best provable lower bound on OPT_R (and hence on every
          algorithm): the ceil integral, which dominates both the
          time-space bound [d] and the span bound. *)
  lemma31_upper : int;
      (** Lemma 3.1(1): [OPT_R <= int 2 ceil(S_t) dt]. Also at most
          [2 d + 2 span] (Lemma 3.1(2)), which it dominates. *)
}

val compute : Dbp_instance.Instance.t -> t

val demand_ceil : t -> int
(** [ceil (d sigma)] in bin x ticks — the time-space bound. *)
