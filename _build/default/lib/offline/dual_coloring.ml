(* The substitute combines two feasible non-repacking packings and takes
   the cheaper: Offline_ffd covers the pinning-style traps (long items
   first, so nothing pins a bin), Span_greedy covers workloads where
   arrival-order consolidation wins. Either alone is a valid OPT_NR
   upper bound; the minimum is a tighter one. *)

let cost inst =
  min
    (Offline_ffd.pack inst).cost
    (Dbp_sim.Engine.run Dbp_baselines.Span_greedy.policy inst).cost

let ratio_to_opt_r ?solver inst =
  let opt = Opt_repack.exact ?solver inst in
  if opt.cost = 0 then 1.0 else float_of_int (cost inst) /. float_of_int opt.cost
