(** Stand-in for Ren & Tang's Dual Coloring offline 4-approximation.

    The paper uses DC [10] only to bridge the repacking and non-repacking
    optima in the lower-bound proof (Theorem 4.2: [DC <= 4 OPT_R], and DC
    never repacks, so [OPT_NR <= 4 OPT_R]). The DC paper is not available
    in this environment; per DESIGN.md we substitute the cheaper of two
    feasible non-repacking packings — {!Offline_ffd}
    (longest-duration-first, immune to the pinning trap) and the online
    span-greedy — and *measure* the ratio to the exact [OPT_R] instead
    of inheriting a proof. The experiment harness (E13) checks the
    measured ratio stays below 4 on every evaluated family;
    {!ratio_to_opt_r} exposes the measurement. *)

val cost : Dbp_instance.Instance.t -> int
(** Cost of the substitute non-repacking offline packing. *)

val ratio_to_opt_r : ?solver:Dbp_binpack.Solver.t -> Dbp_instance.Instance.t -> float
(** [cost / OPT_R] — the empirical analogue of Theorem 4.2's factor 4. *)
