open Dbp_util
open Dbp_instance

type result = { cost : int; bins : int }

type bin = {
  mutable members : Item.t list;
  profile : Timeline.t;  (** the bin's load over time *)
}

let pack_bins inst =
  let items = Array.copy (Instance.items inst) in
  (* Longest first; ties by arrival then id for determinism. *)
  Array.sort
    (fun (a : Item.t) (b : Item.t) ->
      match Int.compare (Item.duration b) (Item.duration a) with
      | 0 -> Item.compare a b
      | c -> c)
    items;
  let bins = Vec.create () in
  let placed = Array.map (fun (r : Item.t) -> (r.id, -1)) items in
  Array.iteri
    (fun i (r : Item.t) ->
      let fits b =
        Timeline.max_on b.profile ~lo:r.arrival ~hi:r.departure + Load.to_units r.size
        <= Load.capacity
      in
      let target =
        match Vec.find_index fits bins with
        | Some j -> j
        | None ->
            Vec.push bins { members = []; profile = Timeline.create () };
            Vec.length bins - 1
      in
      let b = Vec.get bins target in
      b.members <- r :: b.members;
      Timeline.add b.profile ~lo:r.arrival ~hi:r.departure
        ~units:(Load.to_units r.size);
      placed.(i) <- (r.id, target))
    items;
  (bins, placed)

(* A bin's usage is the measure of the union of its member intervals,
   not the bounding box: long gaps between tenancies are not billed (the
   bin closes when empty; a new bin would be opened instead — costing
   the same — so this matches the online accounting). *)
let bin_usage b =
  let sorted =
    List.sort (fun (a : Item.t) (b : Item.t) -> Int.compare a.arrival b.arrival) b.members
  in
  let total = ref 0 and frontier = ref min_int in
  List.iter
    (fun (m : Item.t) ->
      if m.arrival > !frontier then frontier := m.arrival;
      if m.departure > !frontier then begin
        total := !total + (m.departure - !frontier);
        frontier := m.departure
      end)
    sorted;
  !total

let pack inst =
  let bins, _ = pack_bins inst in
  {
    cost = Vec.fold_left (fun acc b -> acc + bin_usage b) 0 bins;
    bins = Vec.length bins;
  }

let assignment inst =
  let _, placed = pack_bins inst in
  Array.to_list placed
