(** Offline First-Fit Decreasing by duration — a non-repacking offline
    packer in the spirit of the busy-time 4-approximations (Flammini et
    al.; Ren & Tang's Dual Coloring plays this role in the paper).

    Items are processed longest-duration first (offline: the whole input
    is visible) and placed into the first bin that can hold them for
    their entire interval; long items therefore share bins with other
    long items instead of being pinned under short ones, which is exactly
    the failure mode that makes *online* First-Fit [Theta(mu)]. The
    result is a feasible non-repacking packing, i.e. an upper bound on
    [OPT_NR]. *)

type result = {
  cost : int;  (** total usage time, bin x ticks *)
  bins : int;
}

val pack : Dbp_instance.Instance.t -> result

val assignment : Dbp_instance.Instance.t -> (int * int) list
(** [(item_id, bin_index)] of the packing, for inspection and tests. *)
