open Dbp_util
open Dbp_instance

type result = { cost : int; exact : bool; nodes : int }

(* Bin state during the search. Items are placed in arrival order, so a
   bin's load at a candidate's arrival accounts for every member that
   can ever overlap it: members only depart afterwards, hence "fits at
   arrival" = "fits forever". *)
type bin = {
  mutable members : Item.t list;
  mutable span : int;  (** measure of the union of member intervals *)
  mutable frontier : int;  (** latest departure seen *)
}

exception Node_budget

let upper_bound inst =
  let candidates =
    [ Dbp_baselines.Any_fit.first_fit; Dbp_baselines.Span_greedy.policy ]
  in
  List.fold_left
    (fun acc policy -> min acc (Dbp_sim.Engine.run policy inst).cost)
    max_int candidates

let exact ?(node_limit = 2_000_000) inst =
  let n = Instance.length inst in
  if n > 24 then None
  else if n = 0 then Some { cost = 0; exact = true; nodes = 0 }
  else begin
    let items = Instance.items inst in
    let lower = (Bounds.compute inst).lower in
    let best = ref max_int in
    let bins = Vec.create () in
    let nodes = ref 0 in
    let exception Optimal in
    let load_at (b : bin) t =
      List.fold_left
        (fun acc (m : Item.t) -> if m.departure > t then acc + Load.to_units m.size else acc)
        0 b.members
    in
    let total_span () = Vec.fold_left (fun acc b -> acc + b.span) 0 bins in
    let rec place i =
      incr nodes;
      if !nodes > node_limit then raise Node_budget;
      if i = n then begin
        let c = total_span () in
        if c < !best then best := c;
        if !best <= lower then raise Optimal
      end
      else begin
        let r = items.(i) in
        let used = Vec.length bins in
        let try_bin b =
          (* add r, recurse, undo *)
          let old_span = b.span and old_frontier = b.frontier in
          let gap_start = max b.frontier r.arrival in
          b.span <- b.span + max 0 (r.departure - gap_start);
          b.frontier <- max b.frontier r.departure;
          b.members <- r :: b.members;
          place (i + 1);
          b.members <- List.tl b.members;
          b.span <- old_span;
          b.frontier <- old_frontier
        in
        if total_span () < !best then begin
          for j = 0 to used - 1 do
            let b = Vec.get bins j in
            if load_at b r.arrival + Load.to_units r.size <= Load.capacity then try_bin b
          done;
          (* One fresh bin; further empties are symmetric. *)
          let b = { members = []; span = 0; frontier = r.arrival } in
          Vec.push bins b;
          try_bin b;
          ignore (Vec.pop bins)
        end
      end
    in
    let exact =
      try
        place 0;
        true
      with
      | Optimal -> true
      | Node_budget -> false
    in
    let cost = if !best = max_int then upper_bound inst else !best in
    Some { cost; exact; nodes = !nodes }
  end
