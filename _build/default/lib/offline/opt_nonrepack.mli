(** The non-repacking optimum [OPT_NR]: the cheapest assignment of items
    to bins that is never allowed to move an item.

    [OPT_R <= OPT_NR <= ON] for every valid online algorithm [ON]. The
    exact value is found by branch-and-bound over assignments and is
    practical only for small instances; larger instances get a sandwich
    [OPT_R <= OPT_NR <= upper_bound] from the exact repacking optimum and
    the best feasible non-repacking packing we can construct. *)

type result = {
  cost : int;  (** bin x ticks *)
  exact : bool;  (** proven optimal *)
  nodes : int;
}

val exact : ?node_limit:int -> Dbp_instance.Instance.t -> result option
(** [None] when the instance exceeds 24 items (the search is factorial);
    otherwise branch-and-bound with symmetry breaking. On node-budget
    exhaustion returns the incumbent with [exact = false]. Default
    [node_limit] is 2_000_000. *)

val upper_bound : Dbp_instance.Instance.t -> int
(** Cost of the best feasible non-repacking packing among the
    constructive offline/clairvoyant heuristics (First-Fit, span-greedy);
    an upper bound on [OPT_NR] usable at any scale. *)
