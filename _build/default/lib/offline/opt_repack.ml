open Dbp_util
open Dbp_instance
open Dbp_binpack

type result = { cost : int; exact : bool; segments : int; max_active : int }

(* Sweep the event timeline keeping the multiset of active sizes;
   [solve] maps the multiset to a bin count (and whether it is exact). *)
let sweep inst ~solve =
  let events =
    Array.to_list (Instance.items inst)
    |> List.concat_map (fun (r : Item.t) ->
           [ (r.arrival, `Arrive r); (r.departure, `Depart r) ])
    |> List.sort (fun (t1, e1) (t2, e2) ->
           match Int.compare t1 t2 with
           | 0 -> (
               (* departures first, matching the online convention *)
               match (e1, e2) with
               | `Depart _, `Arrive _ -> -1
               | `Arrive _, `Depart _ -> 1
               | _ -> 0)
           | c -> c)
  in
  let active : (int, Load.t) Hashtbl.t = Hashtbl.create 64 in
  let cost = ref 0 and all_exact = ref true in
  let segments = ref 0 and max_active = ref 0 in
  let series = ref [] in
  let flush t0 t1 =
    if t1 > t0 && Hashtbl.length active > 0 then begin
      let sizes = Array.of_seq (Hashtbl.to_seq_values active) in
      let bins, exact = solve sizes in
      if not exact then all_exact := false;
      cost := !cost + (bins * (t1 - t0));
      incr segments;
      max_active := max !max_active (Array.length sizes);
      series := (t0, t1, bins) :: !series
    end
  in
  let rec walk prev = function
    | [] -> ()
    | (t, ev) :: rest ->
        (match prev with Some p when t > p -> flush p t | _ -> ());
        (match ev with
        | `Arrive (r : Item.t) -> Hashtbl.replace active r.id r.size
        | `Depart (r : Item.t) -> Hashtbl.remove active r.id);
        walk (Some t) rest
  in
  walk None events;
  ( { cost = !cost; exact = !all_exact; segments = !segments; max_active = !max_active },
    List.rev !series )

let exact ?solver inst =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let solve sizes =
    let r = Solver.min_bins solver sizes in
    (r.bins, r.exact)
  in
  fst (sweep inst ~solve)

let ffd_proxy inst = fst (sweep inst ~solve:(fun sizes -> (Heuristics.ffd sizes, false)))

let series ?solver inst =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let solve sizes =
    let r = Solver.min_bins solver sizes in
    (r.bins, r.exact)
  in
  snd (sweep inst ~solve)
