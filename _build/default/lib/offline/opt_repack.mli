(** The repacking optimum [OPT_R].

    An optimal algorithm allowed to repack at any moment packs, at every
    instant, the currently active items optimally; hence
    [OPT_R(sigma) = int BP(active(t)) dt] where [BP] is the optimal
    static bin packing number. Time is partitioned at item events and
    each constant-active-set segment is solved with the exact
    branch-and-bound packer (cached by size multiset).

    If a segment exhausts the solver's node budget, that segment's value
    is the best feasible packing found (an upper bound) and the result is
    flagged inexact — competitive ratios measured against it are then
    conservative (under-estimates). *)

open Dbp_binpack

type result = {
  cost : int;  (** OPT_R in bin x ticks *)
  exact : bool;  (** every segment solved to optimality *)
  segments : int;
  max_active : int;  (** peak number of simultaneously active items *)
}

val exact : ?solver:Solver.t -> Dbp_instance.Instance.t -> result
(** The repacking optimum. The solver (and its cache) may be shared
    across calls of a sweep. *)

val ffd_proxy : Dbp_instance.Instance.t -> result
(** Upper-bound proxy: FFD instead of exact packing per segment
    ([exact = false]). By the FFD structure this is at most
    [int 2 ceil(S_t) dt], i.e. within 2x of OPT_R (Lemma 3.1); it is fast
    enough for instances whose segments are too wide for the exact
    solver. *)

val series :
  ?solver:Solver.t -> Dbp_instance.Instance.t -> (int * int * int) list
(** [(start, stop, bins)] per segment: OPT_R's momentary bin count, for
    figures and for the momentary-ratio experiments. *)
