lib/report/csv.mli:
