lib/report/gantt.ml: Array Bin_store Buffer Bytes Char Dbp_instance Dbp_sim Dbp_util Instance Int Ints Item List Load Printf String
