lib/report/gantt.mli: Bin_store Dbp_instance Dbp_sim Instance
