lib/report/series.ml: Array Buffer Bytes Float List Printf String
