lib/report/series.mli:
