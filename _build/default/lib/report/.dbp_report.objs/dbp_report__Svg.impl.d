lib/report/svg.ml: Array Buffer Float Fun List Printf String
