lib/report/svg.mli:
