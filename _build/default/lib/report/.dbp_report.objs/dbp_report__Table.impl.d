lib/report/table.ml: Array Buffer Dbp_util List Printf String Vec
