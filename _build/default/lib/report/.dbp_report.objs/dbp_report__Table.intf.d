lib/report/table.mli:
