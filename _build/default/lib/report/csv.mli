(** Minimal CSV output (RFC-4180 quoting) for exporting experiment data
    to external plotting tools. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val line : string list -> string
(** One CSV record, no trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Header plus rows, newline-terminated. *)

val write_file : path:string -> header:string list -> string list list -> unit
