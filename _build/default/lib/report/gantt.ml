open Dbp_util
open Dbp_instance
open Dbp_sim

let horizon inst = if Instance.is_empty inst then 1 else Instance.end_time inst

(* Columns-per-tick scaling: one column per [scale] ticks. *)
let scale_for ~width ~ticks = max 1 (Ints.ceil_div ticks (max 1 width))

let item_letter (r : Item.t) = Char.chr (Char.code 'a' + (r.id mod 26))

let items_chart ?(width = 72) inst =
  let ticks = horizon inst in
  let scale = scale_for ~width ~ticks in
  let cols = Ints.ceil_div ticks scale in
  let buf = Buffer.create 1024 in
  let items = Array.to_list (Instance.items inst) in
  let classes =
    List.map Item.length_class items |> List.sort_uniq Int.compare |> List.rev
  in
  List.iter
    (fun cls ->
      Buffer.add_string buf (Printf.sprintf "class %d (len in (%d, %d]):\n" cls
         (Ints.pow2 cls / 2) (Ints.pow2 cls));
      List.iter
        (fun (r : Item.t) ->
          if Item.length_class r = cls then begin
            let row = Bytes.make cols ' ' in
            for c = 0 to cols - 1 do
              let t0 = c * scale in
              if r.arrival < (c + 1) * scale && r.departure > t0 then
                Bytes.set row c (item_letter r)
            done;
            Buffer.add_string buf
              (Printf.sprintf "  %-12s |%s|\n"
                 (Printf.sprintf "#%d[%d,%d)" r.id r.arrival r.departure)
                 (Bytes.to_string row))
          end)
        items)
    classes;
  Buffer.contents buf

let packing_chart ?(width = 72) inst store =
  let ticks = horizon inst in
  let scale = scale_for ~width ~ticks in
  let cols = Ints.ceil_div ticks scale in
  let buf = Buffer.create 1024 in
  let items = Instance.items inst in
  for bin = 0 to Bin_store.bins_opened store - 1 do
    let row = Bytes.make cols ' ' in
    Array.iter
      (fun (r : Item.t) ->
        if Bin_store.bin_of_item store r.id = bin then
          for c = 0 to cols - 1 do
            let t0 = c * scale in
            if r.arrival < (c + 1) * scale && r.departure > t0 then begin
              (* Later-drawn overlaps become '*' so collisions are
                 visible rather than silently overwritten. *)
              if Bytes.get row c = ' ' then Bytes.set row c (item_letter r)
              else Bytes.set row c '*'
            end
          done)
      items;
    Buffer.add_string buf
      (Printf.sprintf "%-14s |%s|\n"
         (Printf.sprintf "b%d %s" bin (Bin_store.label store bin))
         (Bytes.to_string row))
  done;
  Buffer.contents buf

let snapshot inst store ~at =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "open bins at t=%d:\n" at);
  for bin = 0 to Bin_store.bins_opened store - 1 do
    let open_now =
      Bin_store.opened_at store bin <= at
      && match Bin_store.closed_at store bin with None -> true | Some c -> c > at
    in
    if open_now then begin
      let members =
        Array.to_list (Instance.items inst)
        |> List.filter (fun (r : Item.t) ->
               Bin_store.bin_of_item store r.id = bin && Item.is_active r ~at)
      in
      let load =
        List.fold_left (fun acc (r : Item.t) -> acc + Load.to_units r.size) 0 members
      in
      let tenths = load * 10 / Load.capacity in
      Buffer.add_string buf
        (Printf.sprintf "  b%-3d %-8s [%-10s] %.2f  (%d items)\n" bin
           (Bin_store.label store bin)
           (String.make (min 10 tenths) '#')
           (float_of_int load /. float_of_int Load.capacity)
           (List.length members))
    end
  done;
  Buffer.contents buf
