(** ASCII Gantt renderings of instances and packings — the paper's
    Figures 1, 2 and 3 as terminal output.

    All charts use one text column per [scale] ticks; items shorter than
    a column still occupy one cell. *)

open Dbp_instance
open Dbp_sim

val items_chart : ?width:int -> Instance.t -> string
(** Figure 2 style: one row per item, grouped by duration class (longest
    class first), each item drawn over its active interval. [width] is
    the maximum chart width in columns (default 72). *)

val packing_chart : ?width:int -> Instance.t -> Bin_store.t -> string
(** Figure 3 style: one row per bin (in opening order, with its label);
    each item of the instance is drawn as a run of its own letter inside
    the bin that packed it. Requires the store of a completed run on
    exactly this instance. *)

val snapshot : Instance.t -> Bin_store.t -> at:int -> string
(** Figure 1 style: the bins open at tick [at], one row each, with a
    load bar ([#] = 1/10 bin) and the count of items they hold. *)
