type t = { label : string; points : (float * float) array }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let plot ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y") series =
  let all = List.concat_map (fun s -> Array.to_list s.points) series in
  if all = [] then invalid_arg "Series.plot: no points";
  let xs = List.map fst all and ys = List.map snd all in
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = Float.min 0.0 (List.fold_left Float.min infinity ys) in
  let y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  List.iteri
    (fun i s ->
      let marker = markers.(i mod Array.length markers) in
      Array.iter
        (fun (x, y) ->
          let col =
            int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
          in
          let row =
            int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
          in
          let row = height - 1 - row in
          if row >= 0 && row < height && col >= 0 && col < width then
            Bytes.set grid.(row) col marker)
        s.points)
    series;
  let buf = Buffer.create (width * height * 2) in
  Buffer.add_string buf (Printf.sprintf "%s (%.3g .. %.3g)\n" y_label y_min y_max);
  Array.iteri
    (fun i row ->
      let y = y_max -. (float_of_int i /. float_of_int (height - 1) *. y_span) in
      Buffer.add_string buf (Printf.sprintf "%8.2f |%s|\n" y (Bytes.to_string row)))
    grid;
  Buffer.add_string buf
    (Printf.sprintf "         %s\n" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "         %s: %.3g .. %.3g\n" x_label x_min x_max);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "         %c = %s\n" markers.(i mod Array.length markers) s.label))
    series;
  Buffer.contents buf
