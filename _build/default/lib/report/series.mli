(** ASCII scatter/line plots for sweep curves (terminal "figures"). *)

type t = {
  label : string;
  points : (float * float) array;  (** (x, y) *)
}

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  t list ->
  string
(** Render one or more series in a shared frame; each series uses its
    own marker character (first letter of its label, or a cycling
    default). Default 64 x 16 characters of plotting area. Raises
    [Invalid_argument] when there are no points at all. *)
