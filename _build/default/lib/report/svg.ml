type element = string

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rect ~x ~y ~w ~h ?(fill = "none") ?(stroke = "black") () =
  Printf.sprintf
    {|<rect x="%g" y="%g" width="%g" height="%g" fill="%s" stroke="%s"/>|} x y w h fill
    stroke

let line ~x1 ~y1 ~x2 ~y2 ?(stroke = "black") ?(width = 1.0) () =
  Printf.sprintf
    {|<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="%g"/>|} x1 y1 x2
    y2 stroke width

let text ~x ~y ?(size = 12.0) ?(fill = "black") s =
  Printf.sprintf {|<text x="%g" y="%g" font-size="%g" fill="%s">%s</text>|} x y size
    fill (esc s)

let polyline ~points ?(stroke = "black") ?(width = 1.5) () =
  let pts =
    points |> List.map (fun (x, y) -> Printf.sprintf "%g,%g" x y) |> String.concat " "
  in
  Printf.sprintf {|<polyline points="%s" fill="none" stroke="%s" stroke-width="%g"/>|}
    pts stroke width

let circle ~cx ~cy ~r ?(fill = "black") () =
  Printf.sprintf {|<circle cx="%g" cy="%g" r="%g" fill="%s"/>|} cx cy r fill

let to_string ~width ~height elements =
  Printf.sprintf
    {|<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">
%s
</svg>
|}
    width height width height
    (String.concat "\n" elements)

let write_file ~path ~width ~height elements =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~width ~height elements))

let palette = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let line_chart ~width ~height ~series ?(x_label = "x") ?(y_label = "y") () =
  let margin = 45.0 in
  let px0 = margin and py0 = height -. margin in
  let px1 = width -. 15.0 and py1 = 15.0 in
  let all = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
  if all = [] then invalid_arg "Svg.line_chart: no points";
  let xs = List.map fst all and ys = List.map snd all in
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = Float.min 0.0 (List.fold_left Float.min infinity ys) in
  let y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let sx x = px0 +. ((x -. x_min) /. x_span *. (px1 -. px0)) in
  let sy y = py0 +. ((y -. y_min) /. y_span *. (py1 -. py0)) in
  let frame =
    [
      line ~x1:px0 ~y1:py0 ~x2:px1 ~y2:py0 ();
      line ~x1:px0 ~y1:py0 ~x2:px0 ~y2:py1 ();
      text ~x:(px1 -. 30.0) ~y:(py0 +. 30.0) x_label;
      text ~x:5.0 ~y:py1 y_label;
      text ~x:px0 ~y:(py0 +. 15.0) (Printf.sprintf "%.3g" x_min);
      text ~x:(px1 -. 30.0) ~y:(py0 +. 15.0) (Printf.sprintf "%.3g" x_max);
      text ~x:5.0 ~y:(py0 +. 4.0) (Printf.sprintf "%.3g" y_min);
      text ~x:5.0 ~y:(py1 +. 16.0) (Printf.sprintf "%.3g" y_max);
    ]
  in
  let curves =
    List.mapi
      (fun i (label, pts) ->
        let colour = palette.(i mod Array.length palette) in
        let scaled = Array.to_list pts |> List.map (fun (x, y) -> (sx x, sy y)) in
        [
          polyline ~points:scaled ~stroke:colour ();
          text
            ~x:(px1 -. 110.0)
            ~y:(py1 +. 16.0 +. (16.0 *. float_of_int i))
            ~fill:colour label;
        ]
        @ List.map (fun (x, y) -> circle ~cx:x ~cy:y ~r:2.5 ~fill:colour ()) scaled)
      series
    |> List.concat
  in
  frame @ curves
