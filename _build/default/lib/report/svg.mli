(** Minimal SVG writer — enough to export figures without external
    dependencies. Coordinates are in user units; the generated files
    open in any browser. *)

type element

val rect :
  x:float -> y:float -> w:float -> h:float -> ?fill:string -> ?stroke:string ->
  unit -> element

val line :
  x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string -> ?width:float ->
  unit -> element

val text :
  x:float -> y:float -> ?size:float -> ?fill:string -> string -> element

val polyline : points:(float * float) list -> ?stroke:string -> ?width:float ->
  unit -> element

val circle : cx:float -> cy:float -> r:float -> ?fill:string -> unit -> element

val to_string : width:float -> height:float -> element list -> string
(** A complete standalone SVG document. *)

val write_file : path:string -> width:float -> height:float -> element list -> unit

val line_chart :
  width:float ->
  height:float ->
  series:(string * (float * float) array) list ->
  ?x_label:string ->
  ?y_label:string ->
  unit ->
  element list
(** Axis frame, scaled polylines (one colour per series from a fixed
    palette), and a legend. Compose with extra elements before
    writing. *)
