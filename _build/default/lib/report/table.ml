open Dbp_util

type t = { columns : string list; rows : string list Vec.t }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = Vec.create () }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  Vec.push t.rows row

let widths t =
  let w = Array.of_list (List.map String.length t.columns) in
  Vec.iter (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell))) t.rows;
  w

let pad width s = s ^ String.make (width - String.length s) ' '

let render t =
  let w = widths t in
  let line cells sep =
    List.mapi (fun i c -> pad w.(i) c) cells |> String.concat sep
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.columns "  ");
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w)));
  Buffer.add_char buf '\n';
  Vec.iter
    (fun row ->
      Buffer.add_string buf (line row "  ");
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let render_markdown t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
  in
  row t.columns;
  row (List.map (fun _ -> "---") t.columns);
  Vec.iter row t.rows;
  Buffer.contents buf

let cell_int = string_of_int
let cell_float ?(decimals = 3) f = Printf.sprintf "%.*f" decimals f
let cell_ratio f = Printf.sprintf "%.2fx" f
