(** Aligned text tables for experiment output.

    A table is a header plus string rows; rendering pads every column to
    its widest cell. Numeric helpers keep formatting consistent across
    the experiment harness. *)

type t

val create : columns:string list -> t
(** Column headers; every row must match their count. *)

val add_row : t -> string list -> unit

val render : t -> string
(** ASCII rendering with a separator under the header. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown (for EXPERIMENTS.md). *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
(** Default 3 decimals. *)

val cell_ratio : float -> string
(** Fixed 2 decimals with an 'x' suffix, e.g. "3.21x". *)
