lib/sim/bin_store.ml: Dbp_instance Dbp_util Hashtbl Item List Load Vec
