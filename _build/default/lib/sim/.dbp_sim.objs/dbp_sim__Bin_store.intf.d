lib/sim/bin_store.mli: Dbp_instance Dbp_util Item Load
