lib/sim/engine.ml: Array Bin_store Dbp_instance Dbp_util Heap Instance Int Item Policy Vec
