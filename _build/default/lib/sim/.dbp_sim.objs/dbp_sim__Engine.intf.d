lib/sim/engine.mli: Bin_store Dbp_instance Instance Item Policy
