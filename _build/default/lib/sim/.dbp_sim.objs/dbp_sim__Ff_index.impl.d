lib/sim/ff_index.ml: Array
