lib/sim/ff_index.mli:
