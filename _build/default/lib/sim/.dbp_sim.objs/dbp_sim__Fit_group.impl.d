lib/sim/fit_group.ml: Bin_store Dbp_binpack Dbp_instance Dbp_util Ff_index Hashtbl Item List Load Vec
