lib/sim/fit_group.mli: Bin_store Dbp_binpack Dbp_instance Item
