lib/sim/policy.ml: Bin_store Dbp_instance Item
