lib/sim/policy.mli: Bin_store Dbp_instance Item
