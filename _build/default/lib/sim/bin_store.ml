open Dbp_util
open Dbp_instance

type bin_id = int

type bin = {
  id : bin_id;
  mutable blabel : string;
  bopened_at : int;
  mutable bclosed_at : int option;
  mutable bload : Load.t;
  mutable items : Item.t list;  (** reverse insertion order *)
}

type t = {
  bins : bin Vec.t;
  mutable live : bin_id list;  (** open bins, reverse opening order *)
  current : (int, bin_id) Hashtbl.t;  (** active item id -> bin *)
  history : (int * bin_id) Vec.t;
  ever : (int, bin_id) Hashtbl.t;
  mutable n_open : int;
  mutable hw_open : int;
  mutable done_usage : int;
}

let create () =
  {
    bins = Vec.create ();
    live = [];
    current = Hashtbl.create 64;
    history = Vec.create ();
    ever = Hashtbl.create 64;
    n_open = 0;
    hw_open = 0;
    done_usage = 0;
  }

let bin t id =
  if id < 0 || id >= Vec.length t.bins then invalid_arg "Bin_store: unknown bin id";
  Vec.get t.bins id

let open_bin t ~now ~label =
  let id = Vec.length t.bins in
  Vec.push t.bins
    { id; blabel = label; bopened_at = now; bclosed_at = None; bload = Load.zero; items = [] };
  t.live <- id :: t.live;
  t.n_open <- t.n_open + 1;
  if t.n_open > t.hw_open then t.hw_open <- t.n_open;
  id

let insert t id (r : Item.t) =
  let b = bin t id in
  if b.bclosed_at <> None then invalid_arg "Bin_store.insert: bin is closed";
  if Hashtbl.mem t.current r.id then invalid_arg "Bin_store.insert: item already packed";
  if not (Load.fits r.size ~into:b.bload) then invalid_arg "Bin_store.insert: does not fit";
  b.bload <- Load.add b.bload r.size;
  b.items <- r :: b.items;
  Hashtbl.replace t.current r.id id;
  Hashtbl.replace t.ever r.id id;
  Vec.push t.history (r.id, id)

let remove t ~now ~item_id =
  match Hashtbl.find_opt t.current item_id with
  | None -> raise Not_found
  | Some id ->
      Hashtbl.remove t.current item_id;
      let b = bin t id in
      let r =
        match List.find_opt (fun (r : Item.t) -> r.id = item_id) b.items with
        | Some r -> r
        | None -> assert false
      in
      b.items <- List.filter (fun (x : Item.t) -> x.id <> item_id) b.items;
      b.bload <- Load.sub b.bload r.size;
      let closed = b.items = [] in
      if closed then begin
        b.bclosed_at <- Some now;
        t.live <- List.filter (fun i -> i <> id) t.live;
        t.n_open <- t.n_open - 1;
        t.done_usage <- t.done_usage + (now - b.bopened_at)
      end;
      (id, closed)

let load t id = (bin t id).bload
let residual t id = Load.residual (bin t id).bload
let is_open t id = (bin t id).bclosed_at = None
let label t id = (bin t id).blabel
let relabel t id label = (bin t id).blabel <- label
let opened_at t id = (bin t id).bopened_at
let closed_at t id = (bin t id).bclosed_at
let contents t id = List.rev (bin t id).items
let open_bins t = List.rev t.live
let open_count t = t.n_open
let bins_opened t = Vec.length t.bins
let max_open t = t.hw_open

let usage t ~now =
  List.fold_left (fun acc id -> acc + (now - (bin t id).bopened_at)) t.done_usage t.live

let closed_usage t = t.done_usage
let assignment t = Vec.to_list t.history

let bin_of_item t item_id =
  match Hashtbl.find_opt t.ever item_id with Some id -> id | None -> raise Not_found
