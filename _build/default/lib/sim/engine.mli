(** Discrete-event execution of an online algorithm.

    Two entry points: {!run} replays a fixed {!Dbp_instance.Instance.t};
    the {!Interactive} interface lets an *adaptive adversary* release
    items one at a time while observing the algorithm's open-bin count
    (Theorem 4.3's lower-bound construction needs this). Both share the
    event core: at each tick, all due departures are processed before any
    arrival. *)

open Dbp_instance

type result = {
  name : string;  (** algorithm name *)
  cost : int;  (** MinUsageTime objective, in bin x ticks *)
  bins_opened : int;
  max_open : int;  (** peak simultaneously-open bins *)
  series : (int * int) array;
      (** (tick, open bins after all events of that tick), at every event
          tick, in time order *)
  store : Bin_store.t;  (** post-run store, for traces and figures *)
}

val run : Policy.factory -> Instance.t -> result
(** Simulate the full instance. Raises whatever the policy raises;
    [Invalid_argument] if the policy returns a bin the item was not
    inserted into. *)

module Interactive : sig
  type t

  val start : Policy.factory -> t

  val arrive : t -> Item.t -> Bin_store.bin_id
  (** Release one item. Its arrival must be >= the latest event time so
      far; due departures are processed first. *)

  val advance_to : t -> int -> unit
  (** Process all departures due at ticks <= the given tick (the [t^-]
      state) without releasing anything. Adversaries must call this
      before observing {!open_count} at a new tick — otherwise they see
      stale bins that have already emptied. *)

  val open_count : t -> int
  (** The adversary's observable: currently open bins. *)

  val now : t -> int
  (** Latest event tick processed. *)

  val finish : t -> result * Instance.t
  (** Drain the remaining departures; returns the run result and the
      instance that was released (for offline OPT evaluation). *)
end
