type t = {
  mutable cap : int;  (** leaf count, a power of two *)
  mutable tree : int array;  (** 1-based heap layout; tree.(1) is the root *)
  mutable n : int;
}

let inactive = -1

let create () = { cap = 8; tree = Array.make 16 inactive; n = 0 }

let rec update_path t i =
  if i >= 1 then begin
    let l = 2 * i and r = (2 * i) + 1 in
    if l < 2 * t.cap then begin
      let v = max t.tree.(l) (if r < 2 * t.cap then t.tree.(r) else inactive) in
      if t.tree.(i) <> v then begin
        t.tree.(i) <- v;
        update_path t (i / 2)
      end
    end
  end

let grow t =
  let cap' = 2 * t.cap in
  let tree' = Array.make (2 * cap') inactive in
  (* Copy leaves, then rebuild internal nodes bottom-up. *)
  Array.blit t.tree t.cap tree' cap' t.cap;
  for i = cap' - 1 downto 1 do
    tree'.(i) <- max tree'.(2 * i) tree'.((2 * i) + 1)
  done;
  t.cap <- cap';
  t.tree <- tree'

let set_leaf t slot v =
  let i = t.cap + slot in
  t.tree.(i) <- v;
  update_path t (i / 2)

let push t ~residual =
  if t.n = t.cap then grow t;
  let slot = t.n in
  t.n <- t.n + 1;
  set_leaf t slot residual;
  slot

let check t slot op =
  if slot < 0 || slot >= t.n then invalid_arg ("Ff_index." ^ op ^ ": bad slot")

let set t slot residual =
  check t slot "set";
  set_leaf t slot residual

let deactivate t slot =
  check t slot "deactivate";
  set_leaf t slot inactive

let residual t slot =
  check t slot "residual";
  t.tree.(t.cap + slot)

let length t = t.n

let first_fit t need =
  if need < 0 then invalid_arg "Ff_index.first_fit: negative need";
  if t.tree.(1) < need then None
  else begin
    (* Descend left-first towards the leftmost adequate leaf. *)
    let rec descend i =
      if i >= t.cap then Some (i - t.cap)
      else if t.tree.(2 * i) >= need then descend (2 * i)
      else descend ((2 * i) + 1)
    in
    match descend 1 with
    | Some slot when slot < t.n -> Some slot
    | _ -> None
  end

let active t =
  let rec loop slot acc =
    if slot < 0 then acc
    else loop (slot - 1) (if t.tree.(t.cap + slot) >= 0 then slot :: acc else acc)
  in
  loop (t.n - 1) []
