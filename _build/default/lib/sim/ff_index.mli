(** Leftmost-fit index: a max segment tree over bin residuals.

    First-Fit must find the *earliest-opened* bin whose residual capacity
    admits an item. A linear scan is O(open bins) per placement; this
    index answers the query in O(log n) by storing, per tree node, the
    maximum residual in its span and descending left-first. Slots are
    assigned in bin-opening order, so "leftmost slot" = "earliest bin". *)

type t

val create : unit -> t

val push : t -> residual:int -> int
(** Append a slot with the given residual; returns the slot index. *)

val set : t -> int -> int -> unit
(** [set t slot residual] updates a slot (e.g. after an insertion). *)

val deactivate : t -> int -> unit
(** Mark a slot unusable (its bin closed). Equivalent to residual -1. *)

val residual : t -> int -> int
(** Current residual of a slot (-1 when deactivated). *)

val length : t -> int
(** Number of slots ever pushed. *)

val first_fit : t -> int -> int option
(** [first_fit t need] is the smallest slot index with residual >=
    [need], if any. [need] must be non-negative. *)

val active : t -> int list
(** Active slots in increasing order (linear; used by non-FF rules and
    tests). *)
