(** The online-algorithm interface.

    A policy reacts to arrivals and departures; the engine owns the clock
    and the event order (departures strictly before arrivals at the same
    tick — the paper's [t^-] convention). Policies must pack each arrival
    immediately and may never repack: the only mutation available is
    placing the arriving item into a {!Bin_store} bin. *)

open Dbp_instance

type t = {
  name : string;
  on_arrival : now:int -> Item.t -> Bin_store.bin_id;
      (** Pack the item (clairvoyantly: the item carries its departure
          time) and return the chosen bin. *)
  on_departure : now:int -> Item.t -> bin:Bin_store.bin_id -> closed:bool -> unit;
      (** Called after the store removed the item. [closed] reports
          whether the bin emptied (algorithms drop it from their own
          structures). *)
}

type factory = Bin_store.t -> t
(** Algorithms are created per-run around the engine's store. *)

val non_clairvoyant : factory -> factory
(** Wrap a policy so it sees every arriving item with a masked departure
    time (set to [arrival + 1]). Duration-oblivious baselines (plain
    First-Fit in the non-clairvoyant setting) are expressed this way; the
    engine still departs items at their true times. *)
