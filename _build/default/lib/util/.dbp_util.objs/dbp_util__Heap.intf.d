lib/util/heap.mli:
