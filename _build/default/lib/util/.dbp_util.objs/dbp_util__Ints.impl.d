lib/util/ints.ml:
