lib/util/ints.mli:
