lib/util/load.ml: Float Format Int
