lib/util/load.mli: Format
