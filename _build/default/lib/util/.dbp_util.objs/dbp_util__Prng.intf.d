lib/util/prng.mli:
