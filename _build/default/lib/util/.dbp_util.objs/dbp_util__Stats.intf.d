lib/util/stats.mli:
