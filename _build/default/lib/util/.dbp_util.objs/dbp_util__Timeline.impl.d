lib/util/timeline.ml: Int Map Seq
