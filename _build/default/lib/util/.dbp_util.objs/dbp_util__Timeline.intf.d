lib/util/timeline.mli:
