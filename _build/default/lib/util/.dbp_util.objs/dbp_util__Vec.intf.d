lib/util/vec.mli:
