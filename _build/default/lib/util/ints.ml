let is_pow2 n =
  if n <= 0 then invalid_arg "Ints.is_pow2: non-positive argument";
  n land (n - 1) = 0

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Ints.pow2: exponent out of [0, 61]";
  1 lsl k

let floor_log2 n =
  if n <= 0 then invalid_arg "Ints.floor_log2: non-positive argument";
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Ints.ceil_log2: non-positive argument";
  let k = floor_log2 n in
  if n = 1 lsl k then k else k + 1

let ntz n =
  if n <= 0 then invalid_arg "Ints.ntz: non-positive argument";
  floor_log2 (n land (-n))

let popcount n =
  if n < 0 then invalid_arg "Ints.popcount: negative argument";
  let rec loop acc n = if n = 0 then acc else loop (acc + (n land 1)) (n lsr 1) in
  loop 0 n

let ceil_div a b =
  if a < 0 then invalid_arg "Ints.ceil_div: negative numerator";
  if b <= 0 then invalid_arg "Ints.ceil_div: non-positive denominator";
  (a + b - 1) / b

let ceil_to_multiple a b = ceil_div a b * b
