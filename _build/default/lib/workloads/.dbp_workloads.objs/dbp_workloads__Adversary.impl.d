lib/workloads/adversary.ml: Dbp_instance Dbp_sim Dbp_util Engine Instance Ints Item List Load
