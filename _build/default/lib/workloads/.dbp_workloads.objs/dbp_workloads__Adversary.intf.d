lib/workloads/adversary.mli: Dbp_instance Dbp_sim Engine Policy
