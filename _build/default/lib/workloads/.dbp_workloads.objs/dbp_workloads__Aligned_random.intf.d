lib/workloads/aligned_random.mli: Dbp_instance
