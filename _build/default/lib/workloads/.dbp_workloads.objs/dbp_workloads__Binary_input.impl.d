lib/workloads/binary_input.ml: Dbp_instance Dbp_util Instance Ints Item Load
