lib/workloads/binary_input.mli: Dbp_instance
