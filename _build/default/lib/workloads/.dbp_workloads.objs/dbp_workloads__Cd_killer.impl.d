lib/workloads/cd_killer.ml: Dbp_instance Dbp_util Instance Ints Item Load
