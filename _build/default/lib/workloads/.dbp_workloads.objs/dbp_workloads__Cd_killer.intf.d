lib/workloads/cd_killer.mli: Dbp_instance
