lib/workloads/cloud_traces.ml: Array Dbp_instance Dbp_util Float Instance Item Load Prng
