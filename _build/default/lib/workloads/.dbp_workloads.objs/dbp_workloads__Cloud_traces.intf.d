lib/workloads/cloud_traces.mli: Dbp_instance
