lib/workloads/general_random.ml: Dbp_instance Dbp_util Instance Ints Item Load Prng
