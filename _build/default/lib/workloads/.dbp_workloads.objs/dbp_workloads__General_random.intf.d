lib/workloads/general_random.mli: Dbp_instance
