lib/workloads/pinning.ml: Dbp_instance Dbp_util Instance Item Load Option
