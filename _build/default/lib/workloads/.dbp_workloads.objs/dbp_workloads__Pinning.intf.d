lib/workloads/pinning.mli: Dbp_instance
