open Dbp_util
open Dbp_instance
open Dbp_sim

type outcome = {
  result : Engine.result;
  instance : Instance.t;
  target_bins : int;
  items_released : int;
}

let check_mu mu =
  if mu < 2 || not (Ints.is_pow2 mu) then
    invalid_arg "Adversary: mu must be a power of two >= 2";
  Ints.floor_log2 mu

let target ~n = max 1 (int_of_float (ceil (sqrt (float_of_int n))))

let burst_item ~mu ~t ~k ~size =
  let n = Ints.floor_log2 mu in
  Item.make ~id:((t * (n + 1)) + k) ~arrival:t ~departure:(t + Ints.pow2 k) ~size

let sigma_star ~mu ~t =
  let n = check_mu mu in
  let size = Load.of_fraction ~num:1 ~den:(target ~n) in
  Instance.of_items (List.init (n + 1) (fun k -> burst_item ~mu ~t ~k ~size))

let run ~mu policy =
  let n = check_mu mu in
  let tgt = target ~n in
  let size = Load.of_fraction ~num:1 ~den:tgt in
  let sim = Engine.Interactive.start policy in
  let released = ref 0 in
  for t = 0 to mu - 1 do
    (* Process the departures due by t so the open-bin observation is
       the true t^- state, then release sigma*_t shortest-first and stop
       as soon as the algorithm holds the target number of open bins
       (possibly immediately, if earlier bursts' bins are still open). *)
    Engine.Interactive.advance_to sim t;
    let k = ref 0 in
    while !k <= n && Engine.Interactive.open_count sim < tgt do
      ignore (Engine.Interactive.arrive sim (burst_item ~mu ~t ~k:!k ~size));
      incr released;
      incr k
    done
  done;
  let result, instance = Engine.Interactive.finish sim in
  { result; instance; target_bins = tgt; items_released = !released }

let run_aligned ?target:tgt_opt ~mu policy =
  let n = check_mu mu in
  let tgt = match tgt_opt with Some t -> max 1 t | None -> target ~n in
  let size = Load.of_fraction ~num:1 ~den:tgt in
  let sim = Engine.Interactive.start policy in
  let released = ref 0 in
  for t = 0 to mu - 1 do
    Engine.Interactive.advance_to sim t;
    (* Only classes whose dyadic grid contains t may be released. *)
    let top = if t = 0 then n else min n (Ints.ntz t) in
    let k = ref 0 in
    while !k <= top && Engine.Interactive.open_count sim < tgt do
      ignore (Engine.Interactive.arrive sim (burst_item ~mu ~t ~k:!k ~size));
      incr released;
      incr k
    done
  done;
  let result, instance = Engine.Interactive.finish sim in
  { result; instance; target_bins = tgt; items_released = !released }
