(** The Theorem 4.3 adaptive adversary: forces *any* deterministic
    clairvoyant online algorithm to competitive ratio
    [Omega(sqrt(log mu))].

    At every integer time [t_i] in [[0, mu)], the adversary releases a
    prefix of [sigma*_(t_i)] — one item per duration [1, 2, 4, ..., mu],
    shortest first, each of load [1 / ceil(sqrt(log mu))] — and stops the
    burst as soon as it observes the algorithm holding
    [ceil(sqrt(log mu))] open bins. The algorithm therefore keeps
    [~sqrt(log mu)] bins open for the entire horizon (cost
    [>= mu sqrt(log mu)]) while the released volume stays small enough
    that [OPT_R = O(mu)]. *)

open Dbp_sim

type outcome = {
  result : Engine.result;
  instance : Dbp_instance.Instance.t;  (** what was actually released *)
  target_bins : int;  (** [ceil (sqrt (log2 mu))] *)
  items_released : int;
}

val run : mu:int -> Policy.factory -> outcome
(** [mu] must be a power of two >= 2. Deterministic given the policy. *)

val run_aligned : ?target:int -> mu:int -> Policy.factory -> outcome
(** The same adversary restricted to *aligned* releases (Definition 2.1):
    at tick [t] it may only release items of duration [2^k] with [2^k]
    dividing [t]. This is the empirical probe of the paper's open
    problem — whether the aligned lower bound can be pushed above
    [Omega(1)]. Weaker than {!run} by construction: at odd ticks it can
    release only duration-1 items. [target] overrides the forced
    open-bin count (default [ceil (sqrt (log2 mu))]). *)

val sigma_star : mu:int -> t:int -> Dbp_instance.Instance.t
(** The full burst [sigma*_t] of Definition 4.1 (ids are
    [t * (log mu + 1) + k] so bursts at different times can be
    combined). *)
