open Dbp_util
open Dbp_instance

type config = {
  top_class : int;
  horizon : int;
  rate : float;
  min_size : float;
  max_size : float;
  seed_anchor : bool;
}

let default =
  {
    top_class = 8;
    horizon = 256;
    rate = 0.4;
    min_size = 0.05;
    max_size = 0.4;
    seed_anchor = true;
  }

let generate ?(config = default) ~seed () =
  if config.top_class < 0 then invalid_arg "Aligned_random: negative top_class";
  if config.horizon < 1 then invalid_arg "Aligned_random: empty horizon";
  if config.min_size <= 0.0 || config.max_size > 1.0 || config.min_size > config.max_size
  then invalid_arg "Aligned_random: bad size range";
  let rng = Prng.create ~seed in
  let items = ref [] in
  let id = ref 0 in
  let size () =
    Load.of_float
      (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))
  in
  let add ~arrival ~cls =
    (* duration in (2^(cls-1), 2^cls]: the dyadic range of the class *)
    let hi = Ints.pow2 cls in
    let lo = (hi / 2) + 1 in
    let duration = Prng.int_in_range rng ~lo ~hi in
    items :=
      Item.make ~id:!id ~arrival ~departure:(arrival + duration) ~size:(size ())
      :: !items;
    incr id
  in
  if config.seed_anchor then add ~arrival:0 ~cls:config.top_class;
  for cls = 0 to config.top_class do
    let step = Ints.pow2 cls in
    let slot = ref 0 in
    while !slot * step < config.horizon do
      let k = Prng.poisson rng ~lambda:config.rate in
      for _ = 1 to k do
        add ~arrival:(!slot * step) ~cls
      done;
      incr slot
    done
  done;
  Instance.of_items !items
