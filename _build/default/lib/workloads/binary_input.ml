open Dbp_util
open Dbp_instance

let generate ~mu =
  if mu < 2 || not (Ints.is_pow2 mu) then
    invalid_arg "Binary_input.generate: mu must be a power of two >= 2";
  let n = Ints.floor_log2 mu in
  (* Definition 5.2 says load 1/log mu, but exactly log mu + 1 items
     (one per class 0..log mu) are active at every moment, so 1/log mu
     would exceed bin capacity at full occupancy and break Lemma 5.5's
     claim that no row bin ever fills. We use 1/(log mu + 1) — the value
     the paper's analysis implicitly assumes (DESIGN.md, Errata). *)
  let size = Load.of_fraction ~num:1 ~den:(n + 1) in
  let items = ref [] in
  let id = ref 0 in
  for i = 0 to n do
    let len = Ints.pow2 i in
    let k = ref 0 in
    while !k * len < mu do
      items :=
        Item.make ~id:!id ~arrival:(!k * len) ~departure:((!k + 1) * len) ~size :: !items;
      incr id;
      incr k
    done
  done;
  Instance.of_items !items

let item_count ~mu =
  if mu < 2 || not (Ints.is_pow2 mu) then
    invalid_arg "Binary_input.item_count: mu must be a power of two >= 2";
  (2 * mu) - 1
