(** The binary input [sigma_mu] (Definition 5.2) — the structured worst
    case driving CDFF's analysis, and the instance of Figures 2 and 3.

    For every class [i] in [0 .. log mu], items of duration [2^i] arrive
    back-to-back at times [0, 2^i, 2 * 2^i, ...] until [mu]; every item
    has load [1 / (log mu + 1)] (the paper says [1 / log mu] — an
    off-by-one, see DESIGN.md Errata). Exactly one item of each class is
    active at every moment, so CDFF's open-bin count at [t^+] equals
    [max_0(binary t) + 1] (Corollary 5.8). *)

val generate : mu:int -> Dbp_instance.Instance.t
(** [mu] must be a power of two, at least 2. The instance has [2 mu - 1]
    items and spans [[0, mu)]. *)

val item_count : mu:int -> int
(** [2 mu - 1], without materializing the instance. *)
