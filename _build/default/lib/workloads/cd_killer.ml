open Dbp_util
open Dbp_instance

let generate ?size ~mu () =
  if mu < 2 || not (Ints.is_pow2 mu) then
    invalid_arg "Cd_killer.generate: mu must be a power of two >= 2";
  let n = Ints.floor_log2 mu in
  let size =
    match size with
    | Some s -> Load.of_float s
    | None -> Load.of_fraction ~num:1 ~den:(2 * (n + 1))
  in
  let items = ref [] in
  let id = ref 0 in
  for i = 0 to n do
    let len = Ints.pow2 i in
    let k = ref 0 in
    while !k * len < mu do
      items :=
        Item.make ~id:!id ~arrival:(!k * len) ~departure:((!k + 1) * len) ~size :: !items;
      incr id;
      incr k
    done
  done;
  Instance.of_items !items
