(** The [Omega(log mu)] workload for pure Classify-by-Duration (E17).

    The binary input's arrival pattern with tiny loads: one item of each
    duration class is active at every moment, so CD keeps [log mu + 1]
    bins open for the whole horizon while everything fits into a single
    bin ([OPT_R ~ mu]). This is the failure mode HA's GN bins exist to
    avoid: HA routes these low-volume types to its shared general bins
    and stays O(1) here. *)

val generate : ?size:float -> mu:int -> unit -> Dbp_instance.Instance.t
(** [mu] a power of two >= 2. [size] defaults to [1 / (2 (log2 mu + 1))]
    so that all simultaneously active items fit one bin with room to
    spare. *)
