open Dbp_util
open Dbp_instance

type duration_dist = Uniform | Dyadic_uniform | Pareto of float | Bimodal of float

type config = {
  horizon : int;
  arrival_rate : float;
  max_duration : int;
  dist : duration_dist;
  min_size : float;
  max_size : float;
  anchor_mu : bool;
}

let default =
  {
    horizon = 256;
    arrival_rate = 0.8;
    max_duration = 64;
    dist = Dyadic_uniform;
    min_size = 0.05;
    max_size = 0.4;
    anchor_mu = true;
  }

let sample_duration rng config =
  let d =
    match config.dist with
    | Uniform -> Prng.int_in_range rng ~lo:1 ~hi:config.max_duration
    | Dyadic_uniform ->
        let top = Ints.ceil_log2 config.max_duration in
        let cls = Prng.int_below rng (top + 1) in
        let hi = Ints.pow2 cls in
        let lo = (hi / 2) + 1 in
        Prng.int_in_range rng ~lo ~hi
    | Pareto alpha -> int_of_float (Prng.pareto rng ~alpha ~x_min:1.0)
    | Bimodal p_short ->
        if Prng.bernoulli rng ~p:p_short then 1
        else config.max_duration - Prng.int_below rng (max 1 (config.max_duration / 8))
  in
  max 1 (min config.max_duration d)

let generate ?(config = default) ~seed () =
  if config.horizon < 1 then invalid_arg "General_random: empty horizon";
  if config.max_duration < 1 then invalid_arg "General_random: max_duration < 1";
  if config.min_size <= 0.0 || config.max_size > 1.0 || config.min_size > config.max_size
  then invalid_arg "General_random: bad size range";
  let rng = Prng.create ~seed in
  let items = ref [] in
  let id = ref 0 in
  let size () =
    Load.of_float
      (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))
  in
  let add ~arrival ~duration =
    items :=
      Item.make ~id:!id ~arrival ~departure:(arrival + duration) ~size:(size ())
      :: !items;
    incr id
  in
  if config.anchor_mu then begin
    add ~arrival:0 ~duration:config.max_duration;
    add ~arrival:0 ~duration:1
  end;
  for t = 0 to config.horizon - 1 do
    let k = Prng.poisson rng ~lambda:config.arrival_rate in
    for _ = 1 to k do
      add ~arrival:t ~duration:(sample_duration rng config)
    done
  done;
  Instance.of_items !items
