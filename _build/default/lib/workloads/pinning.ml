open Dbp_util
open Dbp_instance

let generate ?groups ?k ~mu () =
  if mu < 2 then invalid_arg "Pinning.generate: mu < 2";
  let k = Option.value k ~default:(min mu 30_000) in
  if k < 2 || k > 30_000 then invalid_arg "Pinning.generate: k out of [2, 30000]";
  let groups = Option.value groups ~default:k in
  if groups < 1 then invalid_arg "Pinning.generate: groups < 1";
  let size = Load.of_fraction ~num:1 ~den:k in
  let items = ref [] in
  for g = 0 to groups - 1 do
    for j = 0 to k - 1 do
      (* First item of each group is the pin; ids follow arrival order so
         FF fills bin g with exactly this group. *)
      let departure = if j = 0 then mu else 1 in
      items := Item.make ~id:((g * k) + j) ~arrival:0 ~departure ~size :: !items
    done
  done;
  Instance.of_items !items

let ff_cost_closed_form ~groups ~mu = groups * mu
