(** The First-Fit "pinning" workload: the non-clairvoyant [Omega(mu)]
    regime of Table 1, row 3.

    At [t = 0], [groups * k] items of size [1/k] arrive; First-Fit fills
    bin [j] with items [jk .. (j+1)k - 1]. Exactly one item per group
    lives for [mu] ticks, the rest depart at [t = 1] — so every FF bin
    stays pinned open for the whole horizon by a nearly empty load:
    [FF = groups * mu], while the repacking optimum consolidates the
    pins: [OPT_R = groups + (mu - 1) * ceil(groups / k)]. With
    [groups = k = mu] the ratio is [mu^2 * ... ~ mu / 2 = Omega(mu)].

    A duration-aware (clairvoyant) algorithm such as HA avoids the trap
    by segregating the long items — the contrast experiment E13. *)

val generate : ?groups:int -> ?k:int -> mu:int -> unit -> Dbp_instance.Instance.t
(** [mu >= 2] is the long items' duration. [k] (default [mu], max 30000)
    items of size [1/k] per group; [groups] defaults to [k]. *)

val ff_cost_closed_form : groups:int -> mu:int -> int
(** [groups * mu] — what First-Fit provably pays on this instance. *)
