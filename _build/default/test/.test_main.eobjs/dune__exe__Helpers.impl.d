test/helpers.ml: Alcotest Dbp_instance Dbp_util Instance Ints Item List Load Prng QCheck2 QCheck_alcotest
