test/test_analysis.ml: Alcotest Array Binary_strings Dbp_analysis Dbp_baselines Dbp_core Dbp_instance Dbp_util Fit Helpers List Printf QCheck2 Ratio Sweep
