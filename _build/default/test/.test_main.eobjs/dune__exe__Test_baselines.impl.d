test/test_baselines.ml: Alcotest Any_fit Bin_store Classify_duration Dbp_baselines Dbp_instance Dbp_sim Dbp_util Dbp_workloads Engine Helpers List Policy Prng Profile QCheck2 Rt_classify Span_greedy
