test/test_bin_store.ml: Alcotest Bin_store Dbp_sim Dbp_util Helpers List Load
