test/test_binpack.ml: Alcotest Array Dbp_binpack Dbp_util Exact Hashtbl Helpers Heuristics List Load Lower_bounds Option QCheck2 Solver
