test/test_cdff.ml: Alcotest Array Bin_store Cdff Dbp_core Dbp_instance Dbp_sim Dbp_util Engine Helpers Instance Ints Item Load Printf Prng Profile QCheck2 Theory
