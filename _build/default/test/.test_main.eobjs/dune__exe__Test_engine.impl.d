test/test_engine.ml: Alcotest Array Bin_store Dbp_instance Dbp_sim Dbp_util Engine Fit_group Helpers Instance Policy Profile QCheck2
