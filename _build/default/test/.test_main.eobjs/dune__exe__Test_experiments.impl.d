test/test_experiments.ml: Alcotest Common Dbp_experiments Dbp_instance Helpers Instance List Printf Registry String
