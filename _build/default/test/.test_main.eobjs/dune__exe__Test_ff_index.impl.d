test/test_ff_index.ml: Alcotest Array Dbp_sim Ff_index Helpers List QCheck2
