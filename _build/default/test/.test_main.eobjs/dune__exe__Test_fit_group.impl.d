test/test_fit_group.ml: Alcotest Bin_store Dbp_binpack Dbp_instance Dbp_sim Dbp_util Fit_group Helpers Item List Load Prng QCheck2
