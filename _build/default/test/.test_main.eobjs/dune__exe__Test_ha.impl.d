test/test_ha.ml: Alcotest Bin_store Dbp_binpack Dbp_core Dbp_instance Dbp_sim Dbp_util Engine Ha Helpers Instance Int List Profile QCheck2
