test/test_heap.ml: Alcotest Dbp_util Heap Helpers Int List QCheck2
