test/test_instance.ml: Alcotest Array Dbp_instance Dbp_util Helpers Instance List Prng Profile QCheck2
