test/test_ints.ml: Dbp_util Helpers Ints List QCheck2
