test/test_io.ml: Alcotest Array Dbp_instance Dbp_util Filename Fun Helpers Instance Io Item Load Prng QCheck2 Sys
