test/test_item.ml: Alcotest Dbp_instance Dbp_util Helpers Item QCheck2
