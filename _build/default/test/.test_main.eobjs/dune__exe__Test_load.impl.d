test/test_load.ml: Dbp_util Helpers Load Printf QCheck2
