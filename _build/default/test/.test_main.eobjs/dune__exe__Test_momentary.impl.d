test/test_momentary.ml: Dbp_analysis Dbp_baselines Dbp_core Dbp_instance Dbp_sim Dbp_util Dbp_workloads Engine Helpers Momentary QCheck2
