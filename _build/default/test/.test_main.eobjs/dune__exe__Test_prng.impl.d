test/test_prng.ml: Alcotest Array Dbp_util Helpers Int Int64 Prng Stats
