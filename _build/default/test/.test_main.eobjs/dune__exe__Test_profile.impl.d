test/test_profile.ml: Alcotest Dbp_instance Dbp_util Helpers Instance Ints Item List Load Prng Profile QCheck2
