test/test_reduction.ml: Array Dbp_instance Dbp_util Helpers Instance Item QCheck2 Reduction
