test/test_reference.ml: Alcotest Bin_store Dbp_core Dbp_instance Dbp_sim Dbp_util Dbp_workloads Engine Hashtbl Helpers Ints Item List Load Option Policy Prng QCheck2
