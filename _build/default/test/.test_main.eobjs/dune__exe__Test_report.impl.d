test/test_report.ml: Alcotest Csv Dbp_baselines Dbp_report Dbp_sim Engine Filename Fun Gantt Helpers List Series String Svg Sys Table
