test/test_stats.ml: Array Dbp_util Float Helpers List Prng QCheck2 Stats
