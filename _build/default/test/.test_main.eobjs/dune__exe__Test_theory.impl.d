test/test_theory.ml: Dbp_core Helpers QCheck2 Theory
