test/test_timeline.ml: Array Dbp_util Helpers List QCheck2 Timeline
