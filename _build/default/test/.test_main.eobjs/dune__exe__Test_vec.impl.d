test/test_vec.ml: Alcotest Array Dbp_util Helpers QCheck2 Vec
