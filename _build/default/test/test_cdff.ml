open Dbp_util
open Dbp_instance
open Dbp_sim
open Dbp_core
open Helpers

let run ?rule inst = Engine.run (Cdff.policy ?rule ()) inst

let test_single_item () =
  let res = run (instance [ (0, 4, 0.5) ]) in
  check_int "cost" 4 res.cost;
  check_int "bins" 1 res.bins_opened

(* Corollary 5.8: on the binary input sigma_mu the number of open bins
   at t^+ equals max_0(binary(t)) + 1 — for every t. This is the sharp,
   implementation-revealing identity of the paper. *)
let check_corollary58 mu () =
  let n = Ints.floor_log2 mu in
  let res = run (binary_input mu) in
  Array.iter
    (fun (t, open_bins) ->
      if t >= 0 && t < mu then begin
        let expected = max0_bits ~bits:n t + 1 in
        if open_bins <> expected then
          Alcotest.failf "mu=%d t=%d: %d open bins, expected %d" mu t open_bins expected
      end)
    res.series

(* Proposition 5.3: CDFF(sigma_mu) <= (2 log log mu + 1) * mu, and
   OPT_R(sigma_mu) = mu. *)
let check_prop53 mu () =
  let res = run (binary_input mu) in
  let bound = Theory.cdff_binary_bound (float_of_int mu) *. float_of_int mu in
  if float_of_int res.cost > bound then
    Alcotest.failf "mu=%d: cost %d above bound %.1f" mu res.cost bound

let test_figure3_sigma8 () =
  (* Figure 3: at t=0, sigma_8's four items occupy four rows: length 8 in
     row 0, 4 in row 1, 2 in row 2, 1 in row 3. *)
  let res = run (binary_input 8) in
  let label id = Bin_store.label res.store (Bin_store.bin_of_item res.store id) in
  let inst = binary_input 8 in
  Array.iter
    (fun (r : Item.t) ->
      if r.arrival = 0 then begin
        let expected = Printf.sprintf "row%d" (3 - Item.length_class r) in
        Alcotest.(check string)
          (Printf.sprintf "item of length %d" (Item.duration r))
          expected (label r.id)
      end)
    (Instance.items inst)

let test_rows_follow_m_t () =
  (* sigma_8 at t=2 (binary 010): m_t = ntz(2) = 1; the arriving length-2
     item goes to row 0, the length-1 item to row 1. *)
  let res = run (binary_input 8) in
  let inst = binary_input 8 in
  Array.iter
    (fun (r : Item.t) ->
      if r.arrival = 2 then begin
        let expected = Printf.sprintf "row%d" (1 - Item.length_class r) in
        Alcotest.(check string)
          (Printf.sprintf "t=2 length %d" (Item.duration r))
          expected
          (Bin_store.label res.store (Bin_store.bin_of_item res.store r.id))
      end)
    (Instance.items inst)

let test_adaptive_top_growth () =
  (* Items arriving at t=0 in increasing-length order force CDFF to
     re-anchor its rows (it cannot know mu in advance): the length-1 item
     placed first must end up in the same row as a length-1 item placed
     after the length-8 item revealed the true top class. *)
  let items =
    [
      item ~id:0 ~a:0 ~d:1 ~s:0.1;
      item ~id:1 ~a:0 ~d:8 ~s:0.1;
      item ~id:2 ~a:0 ~d:1 ~s:0.1;
    ]
  in
  let res = run (Instance.of_items items) in
  let bin id = Bin_store.bin_of_item res.store id in
  check_int "both length-1 items share a bin" (bin 0) (bin 2);
  Alcotest.(check string) "length-8 in row 0" "row0" (Bin_store.label res.store (bin 1));
  Alcotest.(check string) "length-1 row relabeled" "row3"
    (Bin_store.label res.store (bin 0))

let test_segment_partition () =
  let factory, gauge = Cdff.instrumented () in
  (* Two disjoint aligned bursts: [0,4) and [8,12). *)
  let inst =
    Instance.of_items
      [
        item ~id:0 ~a:0 ~d:4 ~s:0.5;
        item ~id:1 ~a:0 ~d:2 ~s:0.5;
        item ~id:2 ~a:8 ~d:12 ~s:0.5;
        item ~id:3 ~a:8 ~d:10 ~s:0.5;
      ]
  in
  let res = Engine.run factory inst in
  check_int "two segments" 2 gauge.segments;
  check_int "cost" 12 res.cost

let test_non_aligned_safe () =
  (* Guarantees are void but the packing must stay valid. *)
  let rng = Prng.create ~seed:99 in
  let inst = random_instance rng ~n:80 ~max_time:60 ~max_duration:40 in
  let res = run inst in
  check_bool "cost at least LB" true
    (res.cost >= Profile.ceil_integral (Profile.of_instance inst))

let prop_aligned_random_valid =
  qcase ~count:60 ~name:"aligned random inputs: packed, costed, above LB"
    (fun seed ->
      let rng = Prng.create ~seed in
      (* Build an aligned instance: pick class, then an aligned arrival. *)
      let items = ref [] in
      for id = 0 to 59 do
        let cls = Prng.int_below rng 5 in
        let width = Ints.pow2 cls in
        let arrival = width * Prng.int_below rng 8 in
        let dur = max 1 (width / 2) + Prng.int_below rng (max 1 (width / 2)) in
        let dur = min dur width in
        let size = Load.of_fraction ~num:(1 + Prng.int_below rng 10) ~den:10 in
        items := Item.make ~id ~arrival ~departure:(arrival + dur) ~size :: !items
      done;
      let inst = Instance.of_items !items in
      if not (Instance.is_aligned inst) then false
      else begin
        let res = run inst in
        res.cost >= Profile.ceil_integral (Profile.of_instance inst)
      end)
    QCheck2.Gen.(int_range 0 1_000_000)

let suite =
  [
    case "single item" test_single_item;
    case "corollary 5.8 (mu=4)" (check_corollary58 4);
    case "corollary 5.8 (mu=8)" (check_corollary58 8);
    case "corollary 5.8 (mu=16)" (check_corollary58 16);
    case "corollary 5.8 (mu=64)" (check_corollary58 64);
    slow_case "corollary 5.8 (mu=256)" (check_corollary58 256);
    case "proposition 5.3 (mu=16)" (check_prop53 16);
    case "proposition 5.3 (mu=256)" (check_prop53 256);
    case "figure 3 rows" test_figure3_sigma8;
    case "rows follow m_t" test_rows_follow_m_t;
    case "adaptive top growth" test_adaptive_top_growth;
    case "segment partition" test_segment_partition;
    case "non-aligned inputs safe" test_non_aligned_safe;
    prop_aligned_random_valid;
  ]
