open Dbp_sim
open Helpers

let test_push_query () =
  let t = Ff_index.create () in
  let s0 = Ff_index.push t ~residual:10 in
  let _s1 = Ff_index.push t ~residual:50 in
  let _s2 = Ff_index.push t ~residual:30 in
  check_int "slot ids" 0 s0;
  check_int "length" 3 (Ff_index.length t);
  Alcotest.(check (option int)) "need 5 -> leftmost" (Some 0) (Ff_index.first_fit t 5);
  Alcotest.(check (option int)) "need 20 -> slot 1" (Some 1) (Ff_index.first_fit t 20);
  Alcotest.(check (option int)) "need 40 -> slot 1" (Some 1) (Ff_index.first_fit t 40);
  Alcotest.(check (option int)) "need 60 -> none" None (Ff_index.first_fit t 60)

let test_set_deactivate () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:10);
  ignore (Ff_index.push t ~residual:20);
  Ff_index.set t 0 3;
  Alcotest.(check (option int)) "after set" (Some 1) (Ff_index.first_fit t 5);
  Ff_index.deactivate t 1;
  Alcotest.(check (option int)) "after deactivate" (Some 0) (Ff_index.first_fit t 3);
  Alcotest.(check (option int)) "nothing fits" None (Ff_index.first_fit t 5);
  check_int "residual reads -1" (-1) (Ff_index.residual t 1);
  Alcotest.(check (list int)) "active" [ 0 ] (Ff_index.active t)

let test_need_zero () =
  let t = Ff_index.create () in
  ignore (Ff_index.push t ~residual:0);
  Alcotest.(check (option int)) "zero-residual satisfies zero need" (Some 0)
    (Ff_index.first_fit t 0);
  Ff_index.deactivate t 0;
  Alcotest.(check (option int)) "deactivated slot never matches" None
    (Ff_index.first_fit t 0)

let test_growth () =
  let t = Ff_index.create () in
  for i = 0 to 99 do
    ignore (Ff_index.push t ~residual:i)
  done;
  check_int "length" 100 (Ff_index.length t);
  Alcotest.(check (option int)) "query across growth" (Some 99) (Ff_index.first_fit t 99);
  Alcotest.(check (option int)) "leftmost across growth" (Some 50) (Ff_index.first_fit t 50)

let test_bad_slot () =
  let t = Ff_index.create () in
  check_raises_invalid "set" (fun () -> Ff_index.set t 0 1);
  check_raises_invalid "negative need" (fun () -> Ff_index.first_fit t (-1))

(* Randomized differential test against a naive array model. *)
let prop_vs_naive =
  qcase ~count:100 ~name:"matches naive model under random ops"
    (fun ops ->
      let t = Ff_index.create () in
      let model = ref [||] in
      let ok = ref true in
      List.iter
        (fun (op, arg) ->
          let n = Array.length !model in
          match op mod 4 with
          | 0 ->
              ignore (Ff_index.push t ~residual:arg);
              model := Array.append !model [| arg |]
          | 1 when n > 0 ->
              let slot = arg mod n in
              Ff_index.set t slot (arg * 7 mod 1000);
              !model.(slot) <- arg * 7 mod 1000
          | 2 when n > 0 ->
              let slot = arg mod n in
              Ff_index.deactivate t slot;
              !model.(slot) <- -1
          | _ ->
              let need = arg mod 1000 in
              let naive = ref None in
              Array.iteri
                (fun i r -> if !naive = None && r >= need && r >= 0 then naive := Some i)
                !model;
              if Ff_index.first_fit t need <> !naive then ok := false)
        ops;
      !ok)
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 3) (int_range 0 10_000)))

let suite =
  [
    case "push/query" test_push_query;
    case "set/deactivate" test_set_deactivate;
    case "need zero" test_need_zero;
    case "growth" test_growth;
    case "bad slot" test_bad_slot;
    prop_vs_naive;
  ]
