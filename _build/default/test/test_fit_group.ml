open Dbp_util
open Dbp_instance
open Dbp_sim
open Helpers

let setup () = (Bin_store.create (), Fit_group.create ~label:"g" ())

let test_first_fit_order () =
  let store, g = setup () in
  let b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:9 ~s:0.6) in
  let b1 = Fit_group.place g store ~now:0 (item ~id:2 ~a:0 ~d:9 ~s:0.6) in
  check_bool "two bins" true (b0 <> b1);
  (* 0.3 fits in the earliest bin *)
  let b = Fit_group.place g store ~now:0 (item ~id:3 ~a:0 ~d:9 ~s:0.3) in
  check_int "earliest bin" b0 b;
  check_int "open_count" 2 (Fit_group.open_count g);
  Alcotest.(check (list int)) "open order" [ b0; b1 ] (Fit_group.open_bins g)

let test_place_new_forces () =
  let store, g = setup () in
  let b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:9 ~s:0.1) in
  let b1 = Fit_group.place_new g store ~now:0 (item ~id:2 ~a:0 ~d:9 ~s:0.1) in
  check_bool "fresh bin despite space" true (b0 <> b1)

let test_note_close () =
  let store, g = setup () in
  let b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:2 ~s:0.5) in
  ignore (Bin_store.remove store ~now:2 ~item_id:1);
  Fit_group.note_close g b0;
  check_int "open_count" 0 (Fit_group.open_count g);
  check_bool "no longer owned" false (Fit_group.owns g b0);
  (* A later item opens a new bin, never reusing the closed one. *)
  let b1 = Fit_group.place g store ~now:2 (item ~id:2 ~a:2 ~d:4 ~s:0.5) in
  check_bool "new bin" true (b0 <> b1);
  check_raises_invalid "double close" (fun () -> Fit_group.note_close g b0)

let test_best_fit_rule () =
  let store = Bin_store.create () in
  let g = Fit_group.create ~rule:Dbp_binpack.Heuristics.Best_fit ~label:"bf" () in
  let b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:9 ~s:0.7) in
  let _b1 = Fit_group.place g store ~now:0 (item ~id:2 ~a:0 ~d:9 ~s:0.5) in
  let b = Fit_group.place g store ~now:0 (item ~id:3 ~a:0 ~d:9 ~s:0.3) in
  check_int "tightest bin" b0 b

let test_worst_fit_rule () =
  let store = Bin_store.create () in
  let g = Fit_group.create ~rule:Dbp_binpack.Heuristics.Worst_fit ~label:"wf" () in
  let _b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:9 ~s:0.7) in
  let b1 = Fit_group.place g store ~now:0 (item ~id:2 ~a:0 ~d:9 ~s:0.5) in
  let b = Fit_group.place g store ~now:0 (item ~id:3 ~a:0 ~d:9 ~s:0.3) in
  check_int "emptiest bin" b1 b

let test_next_fit_rule () =
  let store = Bin_store.create () in
  let g = Fit_group.create ~rule:Dbp_binpack.Heuristics.Next_fit ~label:"nf" () in
  let b0 = Fit_group.place g store ~now:0 (item ~id:1 ~a:0 ~d:9 ~s:0.4) in
  let b1 = Fit_group.place g store ~now:0 (item ~id:2 ~a:0 ~d:9 ~s:0.7) in
  check_bool "second bin" true (b0 <> b1);
  (* 0.5 would fit b0, but Next-Fit only considers the latest bin. *)
  let b2 = Fit_group.place g store ~now:0 (item ~id:3 ~a:0 ~d:9 ~s:0.5) in
  check_bool "third bin" true (b2 <> b0 && b2 <> b1)

let prop_group_never_overflows =
  qcase ~count:100 ~name:"random place/close keeps bins within capacity"
    (fun (seed, n) ->
      let rng = Prng.create ~seed in
      let store, g = setup () in
      let active = ref [] in
      let ok = ref true in
      for id = 0 to n - 1 do
        if Prng.bernoulli rng ~p:0.3 && !active <> [] then begin
          (* depart a random active item *)
          let victim = List.nth !active (Prng.int_below rng (List.length !active)) in
          active := List.filter (fun x -> x <> victim) !active;
          let bin, closed = Bin_store.remove store ~now:1 ~item_id:victim in
          if closed then Fit_group.note_close g bin
        end
        else begin
          let size = Load.of_units (1 + Prng.int_below rng Load.capacity) in
          let r = Item.make ~id ~arrival:1 ~departure:2 ~size in
          let bin = Fit_group.place g store ~now:1 r in
          if Load.to_units (Bin_store.load store bin) > Load.capacity then ok := false;
          active := id :: !active
        end
      done;
      !ok)
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 100))

let suite =
  [
    case "first fit order" test_first_fit_order;
    case "place_new forces" test_place_new_forces;
    case "note_close" test_note_close;
    case "best fit rule" test_best_fit_rule;
    case "worst fit rule" test_worst_fit_rule;
    case "next fit rule" test_next_fit_rule;
    prop_group_never_overflows;
  ]
