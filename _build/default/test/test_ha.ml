open Dbp_instance
open Dbp_sim
open Dbp_core
open Helpers

let run ?rule ?threshold inst = Engine.run (Ha.policy ?rule ?threshold ()) inst

let test_single_item () =
  let res = run (instance [ (0, 4, 0.3) ]) in
  check_int "cost" 4 res.cost;
  check_int "bins" 1 res.bins_opened

let test_under_threshold_goes_gn () =
  (* duration 2 -> class 1, threshold 1/2: a 0.4 item stays general. *)
  let res = run (instance [ (0, 2, 0.4) ]) in
  let bin = Bin_store.bin_of_item res.store 0 in
  Alcotest.(check string) "GN bin" "GN" (Bin_store.label res.store bin)

let test_over_threshold_opens_cd () =
  (* 0.6 > 1/2: HA opens a CD bin for type (1, 0). *)
  let res = run (instance [ (0, 2, 0.6) ]) in
  let bin = Bin_store.bin_of_item res.store 0 in
  Alcotest.(check string) "CD bin" "CD(1,0)" (Bin_store.label res.store bin)

let test_cd_attracts_same_type () =
  (* Once a CD bin for the type exists, later same-type items join it
     even when their own load is tiny (Algorithm 1, line 4). *)
  let res = run (instance [ (0, 2, 0.6); (0, 2, 0.05) ]) in
  let b0 = Bin_store.bin_of_item res.store 0 in
  let b1 = Bin_store.bin_of_item res.store 1 in
  check_int "same CD bin" b0 b1;
  check_int "one bin total" 1 res.bins_opened

let test_cumulative_load_crosses_threshold () =
  (* Three 0.2 items of type (1,0): the third brings the type load to
     0.6 > 1/2, so it opens a CD bin; the first two stay in GN. *)
  let res = run (instance [ (0, 2, 0.2); (0, 2, 0.2); (0, 2, 0.2) ]) in
  let label i = Bin_store.label res.store (Bin_store.bin_of_item res.store i) in
  Alcotest.(check string) "first GN" "GN" (label 0);
  Alcotest.(check string) "second GN" "GN" (label 1);
  Alcotest.(check string) "third CD" "CD(1,0)" (label 2)

let test_type_load_resets_after_departures () =
  (* After the type's items depart and its CD bin closes, a fresh small
     item of a fresh block goes back to GN. *)
  let res = run (instance [ (0, 2, 0.9); (4, 6, 0.1) ]) in
  let label i = Bin_store.label res.store (Bin_store.bin_of_item res.store i) in
  Alcotest.(check string) "first CD" "CD(1,0)" (label 0);
  Alcotest.(check string) "later GN" "GN" (label 1)

let test_custom_threshold () =
  (* A threshold above the total type load sends everything to GN. *)
  let res = run ~threshold:(fun _ -> 2.0) (instance [ (0, 2, 0.9); (0, 2, 0.9) ]) in
  let label i = Bin_store.label res.store (Bin_store.bin_of_item res.store i) in
  Alcotest.(check string) "all GN" "GN" (label 0);
  Alcotest.(check string) "all GN" "GN" (label 1)

let test_any_fit_rules_valid () =
  let inst =
    instance
      [ (0, 2, 0.4); (0, 4, 0.3); (1, 3, 0.6); (2, 8, 0.2); (4, 5, 0.9); (5, 9, 0.5) ]
  in
  List.iter
    (fun rule ->
      let res = run ~rule inst in
      check_bool "cost at least LB" true
        (res.cost >= Profile.ceil_integral (Profile.of_instance inst)))
    Dbp_binpack.Heuristics.[ First_fit; Best_fit; Worst_fit; Next_fit ]

let gauge_run inst =
  let factory, gauge = Ha.instrumented () in
  let res = Engine.run factory inst in
  (res, gauge)

let prop_lemma33_gn_bound =
  qcase ~count:100 ~name:"Lemma 3.3: GN_t <= 2 + 4 sqrt(#classes)"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:120 ~max_time:64 ~max_duration:64
      in
      let _, gauge = gauge_run inst in
      float_of_int gauge.max_gn
      <= 2.0 +. (4.0 *. sqrt (float_of_int (max 1 gauge.max_classes))) +. 1e-9)
    QCheck2.Gen.(int_range 0 1_000_000)

let prop_cost_above_lb =
  qcase ~count:100 ~name:"HA cost >= ceil-integral lower bound"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:60 ~max_time:100 ~max_duration:40
      in
      let res = run inst in
      res.cost >= Profile.ceil_integral (Profile.of_instance inst))
    QCheck2.Gen.(int_range 0 1_000_000)

let prop_all_items_packed =
  qcase ~count:60 ~name:"every item is packed exactly once"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:80 ~max_time:80 ~max_duration:50
      in
      let res = run inst in
      let packed = List.map fst (Bin_store.assignment res.store) in
      List.sort_uniq Int.compare packed = List.init (Instance.length inst) (fun i -> i))
    QCheck2.Gen.(int_range 0 1_000_000)

let test_gauge_counts () =
  let inst = instance [ (0, 2, 0.6); (0, 2, 0.1) ] in
  let res, gauge = gauge_run inst in
  check_int "cd bins opened" 1 res.bins_opened;
  check_int "max gn" 0 gauge.max_gn;
  check_int "classes" 1 gauge.max_classes

let suite =
  [
    case "single item" test_single_item;
    case "under threshold -> GN" test_under_threshold_goes_gn;
    case "over threshold -> CD" test_over_threshold_opens_cd;
    case "CD attracts same type" test_cd_attracts_same_type;
    case "cumulative threshold" test_cumulative_load_crosses_threshold;
    case "type load resets" test_type_load_resets_after_departures;
    case "custom threshold" test_custom_threshold;
    case "any-fit rules" test_any_fit_rules_valid;
    case "gauge counts" test_gauge_counts;
    prop_lemma33_gn_bound;
    prop_cost_above_lb;
    prop_all_items_packed;
  ]
