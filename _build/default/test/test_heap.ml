open Dbp_util
open Helpers

let int_heap l = Heap.of_list ~cmp:Int.compare l

let test_basic () =
  let h = int_heap [ 5; 1; 4; 2; 3 ] in
  check_int "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  check_int "pop" 1 (Heap.pop_exn h);
  check_int "pop" 2 (Heap.pop_exn h);
  Heap.add h 0;
  check_int "pop new min" 0 (Heap.pop_exn h);
  Alcotest.(check (list int)) "drain" [ 3; 4; 5 ] (Heap.drain h);
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  check_raises_invalid "pop_exn empty" (fun () -> Heap.pop_exn h)

let test_max_heap () =
  let h = Heap.of_list ~cmp:(fun a b -> Int.compare b a) [ 1; 9; 5 ] in
  check_int "max first" 9 (Heap.pop_exn h);
  check_int "then" 5 (Heap.pop_exn h)

let test_duplicates () =
  let h = int_heap [ 2; 2; 1; 1; 3 ] in
  Alcotest.(check (list int)) "drain with dups" [ 1; 1; 2; 2; 3 ] (Heap.drain h)

let prop_drain_sorted =
  qcase ~name:"drain returns a sorted permutation"
    (fun l ->
      let drained = Heap.drain (int_heap l) in
      drained = List.sort Int.compare l)
    QCheck2.Gen.(list int)

let prop_interleaved =
  qcase ~name:"interleaved add/pop never violates heap order"
    (fun ops ->
      let h = Heap.create ~cmp:Int.compare in
      let ok = ref true in
      let last_popped = ref None in
      List.iter
        (fun op ->
          if op >= 0 then begin
            Heap.add h op;
            last_popped := None (* adds may introduce smaller keys *)
          end
          else
            match Heap.pop h with
            | None -> ()
            | Some x ->
                (match !last_popped with
                | Some prev when prev > x -> ok := false
                | _ -> ());
                last_popped := Some x)
        ops;
      !ok)
    QCheck2.Gen.(list (int_range (-1) 1000))

let suite =
  [
    case "basic order" test_basic;
    case "custom comparison" test_max_heap;
    case "duplicates" test_duplicates;
    prop_drain_sorted;
    prop_interleaved;
  ]
