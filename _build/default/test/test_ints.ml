open Dbp_util
open Helpers

let test_is_pow2 () =
  List.iter (fun n -> check_bool (string_of_int n) true (Ints.is_pow2 n)) [ 1; 2; 4; 1024 ];
  List.iter (fun n -> check_bool (string_of_int n) false (Ints.is_pow2 n)) [ 3; 5; 6; 7; 1000 ];
  check_raises_invalid "zero" (fun () -> Ints.is_pow2 0)

let test_pow2 () =
  check_int "2^0" 1 (Ints.pow2 0);
  check_int "2^10" 1024 (Ints.pow2 10);
  check_int "2^61" (1 lsl 61) (Ints.pow2 61);
  check_raises_invalid "negative" (fun () -> Ints.pow2 (-1));
  check_raises_invalid "too big" (fun () -> Ints.pow2 62)

let test_floor_log2 () =
  check_int "1" 0 (Ints.floor_log2 1);
  check_int "2" 1 (Ints.floor_log2 2);
  check_int "3" 1 (Ints.floor_log2 3);
  check_int "4" 2 (Ints.floor_log2 4);
  check_int "1023" 9 (Ints.floor_log2 1023);
  check_int "1024" 10 (Ints.floor_log2 1024);
  check_raises_invalid "zero" (fun () -> Ints.floor_log2 0)

let test_ceil_log2 () =
  check_int "1" 0 (Ints.ceil_log2 1);
  check_int "2" 1 (Ints.ceil_log2 2);
  check_int "3" 2 (Ints.ceil_log2 3);
  check_int "4" 2 (Ints.ceil_log2 4);
  check_int "5" 3 (Ints.ceil_log2 5);
  check_int "1025" 11 (Ints.ceil_log2 1025)

let test_ntz () =
  check_int "1" 0 (Ints.ntz 1);
  check_int "2" 1 (Ints.ntz 2);
  check_int "12" 2 (Ints.ntz 12);
  check_int "96" 5 (Ints.ntz 96);
  check_int "2^40" 40 (Ints.ntz (1 lsl 40));
  check_raises_invalid "zero" (fun () -> Ints.ntz 0)

let test_popcount () =
  check_int "0" 0 (Ints.popcount 0);
  check_int "1" 1 (Ints.popcount 1);
  check_int "255" 8 (Ints.popcount 255);
  check_int "0b1010101" 4 (Ints.popcount 0b1010101)

let test_ceil_div () =
  check_int "7/2" 4 (Ints.ceil_div 7 2);
  check_int "8/2" 4 (Ints.ceil_div 8 2);
  check_int "0/5" 0 (Ints.ceil_div 0 5);
  check_int "1/5" 1 (Ints.ceil_div 1 5);
  check_raises_invalid "zero den" (fun () -> Ints.ceil_div 1 0)

let test_ceil_to_multiple () =
  check_int "7->8" 8 (Ints.ceil_to_multiple 7 4);
  check_int "8->8" 8 (Ints.ceil_to_multiple 8 4);
  check_int "0->0" 0 (Ints.ceil_to_multiple 0 4)

let prop_log2_bracket =
  qcase ~name:"2^floor_log2 n <= n < 2^(floor_log2 n + 1)"
    (fun n ->
      let k = Ints.floor_log2 n in
      Ints.pow2 k <= n && n < Ints.pow2 (k + 1))
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ceil_log2 =
  qcase ~name:"n <= 2^ceil_log2 n < 2n"
    (fun n ->
      let k = Ints.ceil_log2 n in
      n <= Ints.pow2 k && (n = 1 || Ints.pow2 k < 2 * n))
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ntz_divides =
  qcase ~name:"2^ntz n divides n, 2^(ntz n + 1) does not"
    (fun n ->
      let k = Ints.ntz n in
      n mod Ints.pow2 k = 0 && n mod (2 * Ints.pow2 k) <> 0)
    QCheck2.Gen.(int_range 1 (1 lsl 40))

let prop_ceil_div =
  qcase ~name:"ceil_div a b = ceil(a/b)"
    (fun (a, b) ->
      let expected = int_of_float (ceil (float_of_int a /. float_of_int b)) in
      Ints.ceil_div a b = expected)
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 1000))

let suite =
  [
    case "is_pow2" test_is_pow2;
    case "pow2" test_pow2;
    case "floor_log2" test_floor_log2;
    case "ceil_log2" test_ceil_log2;
    case "ntz" test_ntz;
    case "popcount" test_popcount;
    case "ceil_div" test_ceil_div;
    case "ceil_to_multiple" test_ceil_to_multiple;
    prop_log2_bracket;
    prop_ceil_log2;
    prop_ntz_divides;
    prop_ceil_div;
  ]
