open Dbp_instance
open Helpers

let test_make_validation () =
  check_raises_invalid "negative arrival" (fun () -> item ~id:0 ~a:(-1) ~d:1 ~s:0.5);
  check_raises_invalid "zero duration" (fun () -> item ~id:0 ~a:3 ~d:3 ~s:0.5);
  check_raises_invalid "inverted" (fun () -> item ~id:0 ~a:3 ~d:2 ~s:0.5)

let test_duration_active () =
  let r = item ~id:1 ~a:2 ~d:7 ~s:0.5 in
  check_int "duration" 5 (Item.duration r);
  check_bool "active at arrival" true (Item.is_active r ~at:2);
  check_bool "active mid" true (Item.is_active r ~at:6);
  check_bool "inactive at departure" false (Item.is_active r ~at:7);
  check_bool "inactive before" false (Item.is_active r ~at:1)

let test_length_class () =
  (* class i covers durations in (2^(i-1), 2^i] *)
  let cls d = Item.length_class (item ~id:0 ~a:0 ~d ~s:0.1) in
  check_int "duration 1 -> 0" 0 (cls 1);
  check_int "duration 2 -> 1" 1 (cls 2);
  check_int "duration 3 -> 2" 2 (cls 3);
  check_int "duration 4 -> 2" 2 (cls 4);
  check_int "duration 5 -> 3" 3 (cls 5);
  check_int "duration 8 -> 3" 3 (cls 8);
  check_int "duration 9 -> 4" 4 (cls 9)

let test_ha_class () =
  let cls d = Item.ha_class (item ~id:0 ~a:0 ~d ~s:0.1) in
  check_int "duration 1 -> 1 (clamped)" 1 (cls 1);
  check_int "duration 2 -> 1" 1 (cls 2);
  check_int "duration 3 -> 2" 2 (cls 3)

let test_arrival_block () =
  (* i = ha_class; block c has arrival in ((c-1) 2^i, c 2^i]. *)
  let blk ~a ~dur = Item.arrival_block (item ~id:0 ~a ~d:(a + dur) ~s:0.1) in
  check_int "arrival 0" 0 (blk ~a:0 ~dur:4);
  (* duration 4 -> i = 2; arrivals 1..4 are block 1, 5..8 block 2 *)
  check_int "arrival 1" 1 (blk ~a:1 ~dur:4);
  check_int "arrival 4" 1 (blk ~a:4 ~dur:4);
  check_int "arrival 5" 2 (blk ~a:5 ~dur:4);
  check_int "arrival 8" 2 (blk ~a:8 ~dur:4)

let test_ha_type () =
  let r = item ~id:0 ~a:5 ~d:8 ~s:0.1 in
  (* duration 3 -> class 2; arrival 5 in (4, 8] -> block 2 *)
  Alcotest.(check (pair int int)) "type" (2, 2) (Item.ha_type r)

let test_is_aligned () =
  let al ~a ~dur = Item.is_aligned (item ~id:0 ~a ~d:(a + dur) ~s:0.1) in
  check_bool "len 1 anywhere" true (al ~a:3 ~dur:1);
  check_bool "len 2 at 4" true (al ~a:4 ~dur:2);
  check_bool "len 2 at 3" false (al ~a:3 ~dur:2);
  check_bool "len 3 (class 2) at 4" true (al ~a:4 ~dur:3);
  check_bool "len 3 (class 2) at 2" false (al ~a:2 ~dur:3);
  check_bool "len 8 at 0" true (al ~a:0 ~dur:8)

let test_compare () =
  let a = item ~id:2 ~a:1 ~d:2 ~s:0.1 in
  let b = item ~id:1 ~a:1 ~d:9 ~s:0.1 in
  let c = item ~id:0 ~a:5 ~d:6 ~s:0.1 in
  check_bool "same tick: id order" true (Item.compare b a < 0);
  check_bool "arrival dominates id" true (Item.compare a c < 0)

let prop_class_bracket =
  qcase ~name:"duration in (2^(i-1), 2^i] for i = length_class"
    (fun d ->
      let i = Item.length_class (item ~id:0 ~a:0 ~d ~s:0.1) in
      let upper = Dbp_util.Ints.pow2 i in
      d <= upper && (i = 0 || d > upper / 2))
    QCheck2.Gen.(int_range 1 (1 lsl 30))

let prop_block_bracket =
  qcase ~name:"arrival in ((c-1) 2^i, c 2^i] for c = arrival_block"
    (fun (a, dur) ->
      let r = item ~id:0 ~a ~d:(a + dur) ~s:0.1 in
      let i, c = Item.ha_type r in
      let w = Dbp_util.Ints.pow2 i in
      a <= c * w && a > (c - 1) * w || (a = 0 && c = 0))
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 10000))

let suite =
  [
    case "validation" test_make_validation;
    case "duration/active" test_duration_active;
    case "length_class" test_length_class;
    case "ha_class" test_ha_class;
    case "arrival_block" test_arrival_block;
    case "ha_type" test_ha_type;
    case "is_aligned" test_is_aligned;
    case "compare" test_compare;
    prop_class_bracket;
    prop_block_bracket;
  ]
