(* Structural tests for the paper's two amortization lemmas — the load
   arguments at the heart of Theorems 3.2 and 5.1. Both are checked on
   executed runs by reconstructing bin/row membership from the store. *)

open Dbp_util
open Dbp_instance
open Dbp_sim
open Helpers

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Open bins with a label prefix at tick t (post-run reconstruction). *)
let open_bins_with store ~prefix ~at =
  let n = Bin_store.bins_opened store in
  let rec loop b acc =
    if b >= n then acc
    else begin
      let open_now =
        Bin_store.opened_at store b <= at
        && (match Bin_store.closed_at store b with None -> true | Some c -> c > at)
      in
      let acc =
        if open_now && starts_with ~prefix (Bin_store.label store b) then b :: acc
        else acc
      in
      loop (b + 1) acc
    end
  in
  loop 0 []

let event_ticks inst =
  Array.to_list (Instance.items inst)
  |> List.concat_map (fun (r : Item.t) -> [ r.arrival; r.departure - 1 ])
  |> List.sort_uniq Int.compare

(* ---- Lemma 3.5 ----
   After the departure-rounding reduction, at every moment
   OPT_R^t(sigma') >= max(1, k_t / (4 sqrt(log mu))) where k_t is HA's
   open CD-bin count. *)
let check_lemma35 inst =
  if not (Instance.is_empty inst) then begin
    let res = Engine.run (Dbp_core.Ha.policy ()) inst in
    let reduced = Reduction.apply inst in
    let opt_series = Dbp_offline.Opt_repack.series reduced in
    let opt_at t =
      match List.find_opt (fun (t0, t1, _) -> t0 <= t && t < t1) opt_series with
      | Some (_, _, bins) -> bins
      | None -> 0
    in
    (* The paper normalizes the shortest duration to 1, so its "log mu"
       is the number of duration classes — log2 of the max duration in
       ticks (every duration is >= 1 tick here). *)
    let log_mu =
      Float.max 1.0 (Float.log2 (float_of_int (Instance.max_duration inst)))
    in
    List.iter
      (fun t ->
        let k_t = List.length (open_bins_with res.store ~prefix:"CD" ~at:t) in
        if k_t > 0 then begin
          let lower = Float.max 1.0 (float_of_int k_t /. (4.0 *. sqrt log_mu)) in
          let opt = float_of_int (opt_at t) in
          if opt +. 1e-9 < lower then
            Alcotest.failf "Lemma 3.5 violated at t=%d: k_t=%d OPT'=%g lower=%g" t
              k_t opt lower
        end)
      (event_ticks inst)
  end

let prop_lemma35_random =
  qcase ~count:40 ~name:"Lemma 3.5 on random inputs"
    (fun seed ->
      check_lemma35
        (random_instance (Prng.create ~seed) ~n:60 ~max_time:64 ~max_duration:32);
      true)
    QCheck2.Gen.(int_range 0 1_000_000)

let test_lemma35_structured () =
  List.iter check_lemma35
    [
      Dbp_workloads.Binary_input.generate ~mu:64;
      Dbp_workloads.Pinning.generate ~mu:16 ();
      Dbp_workloads.Cd_killer.generate ~mu:64 ();
      (Dbp_workloads.Adversary.run ~mu:256 (Dbp_core.Ha.policy ())).instance;
    ]

(* ---- Lemma 5.12 ----
   For aligned inputs: if CDFF has k open bins in row r at t^+, the items
   ever packed into row r that are sigma'-active at t carry total load
   >= (k - 1) / 2. *)
let check_lemma512 inst =
  if Instance.is_aligned inst && not (Instance.is_empty inst) then begin
    let res = Engine.run (Dbp_core.Cdff.policy ()) inst in
    let items = Instance.items inst in
    let rows_of_bins at =
      (* row label -> open bin count at t *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun b ->
          let label = Bin_store.label res.store b in
          Hashtbl.replace tbl label
            (1 + Option.value (Hashtbl.find_opt tbl label) ~default:0))
        (open_bins_with res.store ~prefix:"row" ~at);
      tbl
    in
    List.iter
      (fun t ->
        let per_row = rows_of_bins t in
        Hashtbl.iter
          (fun row_label k ->
            if k >= 2 then begin
              (* load of items ever packed into this row, sigma'-active
                 at t *)
              let load =
                Array.fold_left
                  (fun acc (r : Item.t) ->
                    let bin = Bin_store.bin_of_item res.store r.id in
                    if
                      Bin_store.label res.store bin = row_label
                      && r.arrival <= t
                      && t < Reduction.reduced_departure r
                    then acc + Load.to_units r.size
                    else acc)
                  0 items
              in
              let needed = (k - 1) * Load.capacity / 2 in
              if load < needed then
                Alcotest.failf "Lemma 5.12 violated at t=%d %s: k=%d load=%d < %d" t
                  row_label k load needed
            end)
          per_row)
      (event_ticks inst)
  end

let prop_lemma512_aligned =
  qcase ~count:40 ~name:"Lemma 5.12 on aligned random inputs"
    (fun seed ->
      check_lemma512
        (Dbp_workloads.Aligned_random.generate
           ~config:
             {
               Dbp_workloads.Aligned_random.default with
               top_class = 5;
               horizon = 96;
               rate = 0.9;
               max_size = 0.6;
             }
           ~seed ());
      true)
    QCheck2.Gen.(int_range 0 1_000_000)

let test_lemma512_binary () =
  List.iter
    (fun mu -> check_lemma512 (Dbp_workloads.Binary_input.generate ~mu))
    [ 16; 64; 256 ]

let suite =
  [
    prop_lemma35_random;
    case "lemma 3.5 on structured inputs" test_lemma35_structured;
    prop_lemma512_aligned;
    case "lemma 5.12 on binary inputs" test_lemma512_binary;
  ]
