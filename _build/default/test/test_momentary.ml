open Dbp_sim
open Dbp_analysis
open Helpers

let measure factory inst =
  let res = Engine.run factory inst in
  Momentary.measure res inst

let test_all_ones_when_optimal () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let m = measure Dbp_baselines.Any_fit.first_fit inst in
  check_float ~eps:1e-9 "usage" 1.0 m.usage_ratio;
  check_float ~eps:1e-9 "momentary" 1.0 m.momentary_ratio;
  check_float ~eps:1e-9 "max bins" 1.0 m.max_bins_ratio

let test_pinning_dissociates_objectives () =
  (* FF on pinning: peak bins are optimal (max-bins 1.0) but the pins
     keep mu bins open against a momentary optimum of 1 afterwards. *)
  let mu = 8 in
  let inst = Dbp_workloads.Pinning.generate ~mu () in
  let m = measure Dbp_baselines.Any_fit.first_fit inst in
  check_float ~eps:1e-9 "max bins blind to waste" 1.0 m.max_bins_ratio;
  check_float ~eps:1e-9 "momentary sees the tail" (float_of_int mu) m.momentary_ratio;
  check_bool "usage in between" true
    (m.usage_ratio > 2.0 && m.usage_ratio < float_of_int mu)

let test_momentary_spike () =
  (* CDFF's t=0 burst on sigma_mu opens log mu + 1 bins against OPT's
     one. *)
  let inst = Dbp_workloads.Binary_input.generate ~mu:16 in
  let m = measure (Dbp_core.Cdff.policy ()) inst in
  check_float ~eps:1e-9 "spike = log mu + 1" 5.0 m.momentary_ratio;
  check_bool "usage much lower" true (m.usage_ratio < 3.0)

let test_empty_instance () =
  let inst = Dbp_instance.Instance.of_items [] in
  let m = measure Dbp_baselines.Any_fit.first_fit inst in
  check_float ~eps:1e-9 "usage" 1.0 m.usage_ratio;
  check_float ~eps:1e-9 "max bins" 1.0 m.max_bins_ratio

let prop_momentary_at_least_max_bins_consistent =
  qcase ~count:60 ~name:"usage ratio >= 1 and momentary >= max-bins-normalized"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:40 ~max_time:50
          ~max_duration:20
      in
      let m = measure Dbp_baselines.Any_fit.first_fit inst in
      m.usage_ratio >= 1.0 -. 1e-9 && m.momentary_ratio >= 1.0 -. 1e-9)
    QCheck2.Gen.(int_range 0 1_000_000)

let suite =
  [
    case "optimal run scores 1 everywhere" test_all_ones_when_optimal;
    case "pinning dissociates objectives" test_pinning_dissociates_objectives;
    case "momentary spike on binary input" test_momentary_spike;
    case "empty instance" test_empty_instance;
    prop_momentary_at_least_max_bins_consistent;
  ]
