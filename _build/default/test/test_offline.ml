open Dbp_util
open Dbp_instance
open Dbp_offline
open Helpers

let gen_small =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    return (random_instance (Prng.create ~seed) ~n ~max_time:20 ~max_duration:10))

let gen_medium =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    return (random_instance (Prng.create ~seed) ~n:40 ~max_time:60 ~max_duration:30))

let test_bounds_example () =
  (* one item 0.5 x [0,4), one 1.0 x [2,6): S = .5,.5+1(!overflow
     impossible: sizes <= 1 each, two bins needed on [2,4)). *)
  let inst = instance [ (0, 4, 0.5); (2, 6, 1.0) ] in
  let b = Bounds.compute inst in
  check_int "span" 6 b.span;
  check_int "demand units" (6 * Load.capacity) b.demand_units;
  check_int "demand ceil" 6 (Bounds.demand_ceil b);
  (* ceil(S): [0,2) -> 1, [2,4) -> 2, [4,6) -> 1 : total 8 *)
  check_int "ceil integral" 8 b.ceil_integral;
  check_int "lower" 8 b.lower;
  check_int "lemma31 upper" 16 b.lemma31_upper

let test_opt_repack_example () =
  (* Two half items overlapping: one bin suffices with repacking. *)
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.5) ] in
  let r = Opt_repack.exact inst in
  check_bool "exact" true r.exact;
  check_int "cost = span" 6 r.cost;
  check_int "segments" 3 r.segments;
  check_int "max active" 2 r.max_active

let test_opt_repack_two_bins () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let r = Opt_repack.exact inst in
  check_int "cost" 8 r.cost

let test_opt_repack_series () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  Alcotest.(check (list (triple int int int)))
    "series" [ (0, 2, 1); (2, 4, 2); (4, 6, 1) ]
    (Opt_repack.series inst)

let test_opt_nonrepack_exact_small () =
  (* With repacking 1 bin almost always; without repacking placing both
     0.6 items forces 2 bins at the overlap. *)
  let inst = instance [ (0, 4, 0.6); (2, 6, 0.6) ] in
  match Opt_nonrepack.exact inst with
  | Some r ->
      check_bool "exact" true r.exact;
      check_int "cost" 8 r.cost
  | None -> Alcotest.fail "expected a result"

let test_opt_nonrepack_single_bin () =
  let inst = instance [ (0, 4, 0.3); (2, 6, 0.3) ] in
  match Opt_nonrepack.exact inst with
  | Some r -> check_int "one bin" 6 r.cost
  | None -> Alcotest.fail "expected a result"

let test_opt_nonrepack_too_big () =
  let rng = Prng.create ~seed:4 in
  let inst = random_instance rng ~n:30 ~max_time:10 ~max_duration:5 in
  check_bool "declines" true (Opt_nonrepack.exact inst = None)

let test_offline_ffd_pinning () =
  (* FFD-by-duration is immune to pinning: pins share one bin. *)
  let mu = 32 in
  let inst = Dbp_workloads.Pinning.generate ~mu () in
  let r = Offline_ffd.pack inst in
  let opt = Opt_repack.exact inst in
  check_bool "near optimal" true (r.cost <= opt.cost + mu);
  let online_ff = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
  check_bool "far below online FF" true (r.cost * 4 < online_ff.cost)

let test_offline_ffd_assignment_valid () =
  let rng = Prng.create ~seed:9 in
  let inst = random_instance rng ~n:50 ~max_time:40 ~max_duration:20 in
  let asg = Offline_ffd.assignment inst in
  check_int "all placed" (Instance.length inst) (List.length asg);
  (* No bin may ever exceed capacity: rebuild timelines and check. *)
  let profiles = Hashtbl.create 8 in
  List.iter
    (fun (item_id, bin) ->
      let r = Instance.find inst item_id in
      let tl =
        match Hashtbl.find_opt profiles bin with
        | Some tl -> tl
        | None ->
            let tl = Timeline.create () in
            Hashtbl.replace profiles bin tl;
            tl
      in
      Timeline.add tl ~lo:r.arrival ~hi:r.departure ~units:(Load.to_units r.size))
    asg;
  Hashtbl.iter
    (fun _ tl ->
      check_bool "within capacity" true
        (Timeline.max_on tl ~lo:0 ~hi:(Instance.end_time inst) <= Load.capacity))
    profiles

let prop_sandwich =
  qcase ~count:60 ~name:"lower <= OPT_R <= OPT_NR <= DC-substitute"
    (fun inst ->
      let b = Bounds.compute inst in
      let opt_r = Opt_repack.exact inst in
      let dc = Dual_coloring.cost inst in
      let ok = b.lower <= opt_r.cost && opt_r.cost <= dc in
      match Opt_nonrepack.exact inst with
      | Some nr -> ok && opt_r.cost <= nr.cost && (not nr.exact || nr.cost <= dc)
      | None -> ok)
    gen_small

let prop_lemma31 =
  qcase ~count:40 ~name:"Lemma 3.1: OPT_R <= 2 * ceil integral"
    (fun inst ->
      let b = Bounds.compute inst in
      (Opt_repack.exact inst).cost <= b.lemma31_upper)
    gen_medium

let prop_ffd_proxy_upper =
  qcase ~count:40 ~name:"exact OPT_R <= FFD proxy <= 2 * OPT_R"
    (fun inst ->
      let ex = (Opt_repack.exact inst).cost in
      let proxy = (Opt_repack.ffd_proxy inst).cost in
      ex <= proxy && proxy <= 2 * ex)
    gen_medium

let prop_offline_ffd_feasible_above_opt =
  qcase ~count:40 ~name:"Offline FFD cost between OPT_R and online FF-decent bound"
    (fun inst ->
      let opt = (Opt_repack.exact inst).cost in
      let ffd = (Offline_ffd.pack inst).cost in
      ffd >= opt)
    gen_medium

let suite =
  [
    case "bounds example" test_bounds_example;
    case "opt_repack example" test_opt_repack_example;
    case "opt_repack two bins" test_opt_repack_two_bins;
    case "opt_repack series" test_opt_repack_series;
    case "opt_nonrepack small" test_opt_nonrepack_exact_small;
    case "opt_nonrepack single bin" test_opt_nonrepack_single_bin;
    case "opt_nonrepack declines big" test_opt_nonrepack_too_big;
    case "offline ffd vs pinning" test_offline_ffd_pinning;
    case "offline ffd assignment valid" test_offline_ffd_assignment_valid;
    prop_sandwich;
    prop_lemma31;
    prop_ffd_proxy_upper;
    prop_offline_ffd_feasible_above_opt;
  ]
