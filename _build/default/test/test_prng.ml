open Dbp_util
open Helpers

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independent () =
  let parent = Prng.create ~seed:7 in
  let child = Prng.split parent in
  let x = Prng.bits64 parent and y = Prng.bits64 child in
  check_bool "parent and child differ" true (not (Int64.equal x y))

let test_int_below_range () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.int_below t 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done;
  check_raises_invalid "zero bound" (fun () -> Prng.int_below t 0)

let test_int_below_uniform () =
  let t = Prng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Prng.int_below t 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expected)
    buckets

let test_int_in_range () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.int_in_range t ~lo:(-3) ~hi:3 in
    check_bool "in range" true (x >= -3 && x <= 3)
  done;
  check_int "degenerate" 9 (Prng.int_in_range t ~lo:9 ~hi:9);
  check_raises_invalid "inverted" (fun () -> Prng.int_in_range t ~lo:1 ~hi:0)

let test_float_unit () =
  let t = Prng.create ~seed:13 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Prng.float_unit t in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0);
    sum := !sum +. x
  done;
  check_float ~eps:0.01 "mean near 1/2" 0.5 (!sum /. float_of_int n)

let test_exponential () =
  let t = Prng.create ~seed:17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential t ~mean:4.0 in
    check_bool "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  check_float ~eps:0.15 "mean" 4.0 (!sum /. float_of_int n);
  check_raises_invalid "bad mean" (fun () -> Prng.exponential t ~mean:0.0)

let test_normal () =
  let t = Prng.create ~seed:19 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.normal t ~mu:2.0 ~sigma:3.0) in
  check_float ~eps:0.1 "mean" 2.0 (Stats.mean xs);
  check_float ~eps:0.1 "stddev" 3.0 (Stats.stddev xs)

let test_pareto () =
  let t = Prng.create ~seed:23 in
  for _ = 1 to 1000 do
    check_bool "above x_min" true (Prng.pareto t ~alpha:2.0 ~x_min:1.5 >= 1.5)
  done;
  check_raises_invalid "bad alpha" (fun () -> Prng.pareto t ~alpha:0.0 ~x_min:1.0)

let check_poisson_mean seed lambda =
  let t = Prng.create ~seed in
  let n = 30_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.poisson t ~lambda
  done;
  check_float ~eps:(0.05 *. (lambda +. 1.0)) "poisson mean" lambda
    (float_of_int !sum /. float_of_int n)

let test_poisson () =
  check_poisson_mean 29 0.5;
  check_poisson_mean 31 5.0;
  check_poisson_mean 37 80.0;
  let t = Prng.create ~seed:41 in
  check_int "lambda 0" 0 (Prng.poisson t ~lambda:0.0);
  check_raises_invalid "negative" (fun () -> Prng.poisson t ~lambda:(-1.0))

let test_bernoulli () =
  let t = Prng.create ~seed:43 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.3 then incr hits
  done;
  check_float ~eps:0.02 "frequency" 0.3 (float_of_int !hits /. float_of_int n)

let test_shuffle_permutation () =
  let t = Prng.create ~seed:47 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_choice () =
  let t = Prng.create ~seed:53 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Prng.choice t a) a)
  done;
  check_raises_invalid "empty" (fun () -> Prng.choice t [||])

let suite =
  [
    case "determinism" test_determinism;
    case "seeds differ" test_seeds_differ;
    case "copy" test_copy;
    case "split independence" test_split_independent;
    case "int_below range" test_int_below_range;
    slow_case "int_below uniformity" test_int_below_uniform;
    case "int_in_range" test_int_in_range;
    case "float_unit" test_float_unit;
    case "exponential" test_exponential;
    case "normal" test_normal;
    case "pareto" test_pareto;
    case "poisson" test_poisson;
    case "bernoulli" test_bernoulli;
    case "shuffle" test_shuffle_permutation;
    case "choice" test_choice;
  ]
