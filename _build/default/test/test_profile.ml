open Dbp_util
open Dbp_instance
open Helpers

let test_segments () =
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.25) ] in
  let p = Profile.of_instance inst in
  match Profile.segments p with
  | [ s1; s2; s3 ] ->
      check_int "s1 start" 0 s1.start;
      check_int "s1 stop" 2 s1.stop;
      check_int "s1 load" (Load.capacity / 2) s1.load_units;
      check_int "s1 count" 1 s1.count;
      check_int "s2 load" (Load.capacity * 3 / 4) s2.load_units;
      check_int "s2 count" 2 s2.count;
      check_int "s3 start" 4 s3.start;
      check_int "s3 stop" 6 s3.stop;
      check_int "s3 count" 1 s3.count
  | segs -> Alcotest.failf "expected 3 segments, got %d" (List.length segs)

let test_gap_segments () =
  let inst = instance [ (0, 2, 0.5); (5, 7, 0.5) ] in
  let p = Profile.of_instance inst in
  check_int "two segments" 2 (List.length (Profile.segments p));
  check_int "span skips gap" 4 (Profile.span p);
  check_int "load in gap" 0 (Profile.load_at p 3)

let test_ceil_integral () =
  (* load 1.5 for 2 ticks (ceil 2), load 0.5 for 2 ticks (ceil 1):
     integral = 2*2 + 1*2 = 6 *)
  let inst = instance [ (0, 4, 0.5); (0, 2, 1.0) ] in
  let p = Profile.of_instance inst in
  check_int "ceil integral" 6 (Profile.ceil_integral p);
  check_int "max load" (Load.capacity * 3 / 2) (Profile.max_load_units p);
  check_int "max count" 2 (Profile.max_count p)

let test_empty () =
  let p = Profile.of_instance (Instance.of_items []) in
  check_int "no segments" 0 (List.length (Profile.segments p));
  check_int "span" 0 (Profile.span p);
  check_int "demand" 0 (Profile.demand_units p)

let gen_inst =
  QCheck2.Gen.(
    let* n = int_range 1 50 in
    let* seed = int_range 0 1_000_000 in
    return (random_instance (Prng.create ~seed) ~n ~max_time:200 ~max_duration:60))

let prop_demand_consistent =
  qcase ~name:"profile demand = instance demand"
    (fun inst ->
      Profile.demand_units (Profile.of_instance inst) = Instance.demand_units inst)
    gen_inst

let prop_span_consistent =
  qcase ~name:"profile span = instance span"
    (fun inst -> Profile.span (Profile.of_instance inst) = Instance.span inst)
    gen_inst

let prop_ceil_integral_bracket =
  qcase ~name:"max(demand, span) <= ceil integral <= demand + span"
    (fun inst ->
      let p = Profile.of_instance inst in
      let ci = Profile.ceil_integral p in
      let d = Ints.ceil_div (Profile.demand_units p) Load.capacity in
      ci >= d
      && ci >= Profile.span p
      && ci * Load.capacity <= Profile.demand_units p + (Profile.span p * Load.capacity))
    gen_inst

let prop_load_at_matches_active =
  qcase ~name:"load_at t = sum of active sizes"
    (fun inst ->
      let p = Profile.of_instance inst in
      let ok = ref true in
      for t = 0 to Instance.end_time inst + 1 do
        let expected =
          List.fold_left
            (fun acc (r : Item.t) -> acc + Load.to_units r.size)
            0 (Instance.active_at inst t)
        in
        if Profile.load_at p t <> expected then ok := false
      done;
      !ok)
    gen_inst

let suite =
  [
    case "segments" test_segments;
    case "gap" test_gap_segments;
    case "ceil integral" test_ceil_integral;
    case "empty" test_empty;
    prop_demand_consistent;
    prop_span_consistent;
    prop_ceil_integral_bracket;
    prop_load_at_matches_active;
  ]
