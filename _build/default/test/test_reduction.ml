open Dbp_instance
open Helpers

let gen_inst =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let* seed = int_range 0 1_000_000 in
    return
      (random_instance (Dbp_util.Prng.create ~seed) ~n ~max_time:128 ~max_duration:64))

let test_example () =
  (* duration 3 -> class 2; arrival 5 in block (4,8] -> c = 2;
     reduced departure = 3 * 4 = 12. *)
  let r = item ~id:0 ~a:5 ~d:8 ~s:0.5 in
  check_int "reduced departure" 12 (Reduction.reduced_departure r)

let test_arrival_zero () =
  (* arrival 0 -> c = 0 -> departure 2^i. duration 4 -> i = 2 -> 4. *)
  let r = item ~id:0 ~a:0 ~d:4 ~s:0.5 in
  check_int "departure 2^i" 4 (Reduction.reduced_departure r)

let test_aligned_rounding () =
  (* For aligned items the reduction rounds the departure up to the next
     multiple of 2^i (strictly next when already there? c = arrival/2^i,
     so departure' = arrival + 2^i >= departure). duration 3 at 4:
     i = 2, c = 1, departure' = 8. *)
  let r = item ~id:0 ~a:4 ~d:7 ~s:0.5 in
  check_int "rounded" 8 (Reduction.reduced_departure r)

let prop_extends =
  qcase ~name:"reduction never shortens an item"
    (fun inst ->
      Array.for_all2
        (fun (r : Item.t) (r' : Item.t) ->
          r'.arrival = r.arrival && r'.departure >= r.departure)
        (Instance.items inst)
        (Instance.items (Reduction.apply inst)))
    gen_inst

let prop_duration_factor =
  qcase ~name:"duration grows by a factor < 4"
    (fun inst ->
      Array.for_all
        (fun (r : Item.t) ->
          let d' = Reduction.reduced_departure r - r.arrival in
          d' < 4 * Item.duration r)
        (Instance.items inst))
    gen_inst

let prop_observation1 =
  qcase ~name:"Observation 1: span(sigma') <= 4 span(sigma)"
    (fun inst -> Instance.span (Reduction.apply inst) <= 4 * Instance.span inst)
    gen_inst

let prop_observation2 =
  qcase ~name:"Observation 2: d(sigma') <= 4 d(sigma)"
    (fun inst ->
      Instance.demand_units (Reduction.apply inst) <= 4 * Instance.demand_units inst)
    gen_inst

let prop_same_type_departs_together =
  qcase ~name:"same-type items depart together in sigma'"
    (fun inst ->
      let reduced = Instance.items (Reduction.apply inst) in
      let original = Instance.items inst in
      let ok = ref true in
      Array.iteri
        (fun i (a : Item.t) ->
          Array.iteri
            (fun j (b : Item.t) ->
              if i < j && Item.ha_type original.(i) = Item.ha_type original.(j) then
                if a.departure <> b.departure then ok := false)
            reduced)
        reduced;
      !ok)
    gen_inst

let prop_preserves_class =
  qcase ~name:"reduction keeps items within at most 2 duration classes"
    (fun inst ->
      (* The reduced duration lies in (2^(i-1), 2^(i+1)]: class grows by
         at most one. *)
      Array.for_all2
        (fun (r : Item.t) (r' : Item.t) -> Item.ha_class r' <= Item.ha_class r + 1)
        (Instance.items inst)
        (Instance.items (Reduction.apply inst)))
    gen_inst

let suite =
  [
    case "example" test_example;
    case "arrival zero" test_arrival_zero;
    case "aligned rounding" test_aligned_rounding;
    prop_extends;
    prop_duration_factor;
    prop_observation1;
    prop_observation2;
    prop_same_type_departs_together;
    prop_preserves_class;
  ]
