open Dbp_core
open Helpers

let test_log2 () =
  check_float ~eps:1e-9 "log2 8" 3.0 (Theory.log2 8.0);
  check_float ~eps:1e-9 "clamped below" 0.0 (Theory.log2 0.5)

let test_scales () =
  check_float ~eps:1e-9 "sqrt log 16" 2.0 (Theory.sqrt_log_mu 16.0);
  check_float ~eps:1e-9 "loglog 16" 2.0 (Theory.log_log_mu 16.0);
  check_float ~eps:1e-9 "loglog 2 clamps" 0.0 (Theory.log_log_mu 2.0);
  check_float ~eps:1e-9 "loglog 1 clamps" 0.0 (Theory.log_log_mu 1.0)

let test_bounds () =
  check_float ~eps:1e-9 "gn bound 16" 10.0 (Theory.gn_bound 16.0);
  check_float ~eps:1e-9 "cdff binary bound 16" 5.0 (Theory.cdff_binary_bound 16.0);
  check_float ~eps:1e-9 "lemma31" 14.0 (Theory.lemma31_upper ~demand:3.0 ~span:4.0);
  check_float ~eps:1e-9 "max0 bound" 8.0 (Theory.max0_expectation_bound 16);
  check_float ~eps:1e-9 "span factor" 4.0 Theory.reduction_span_factor;
  check_float ~eps:1e-9 "demand factor" 4.0 Theory.reduction_demand_factor

let test_adversary_bins () =
  check_int "mu 16 -> ceil(2)" 2 (Theory.adversary_bins 16.0);
  check_int "mu 256 -> ceil(2.83)" 3 (Theory.adversary_bins 256.0);
  check_int "mu 65536 -> 4" 4 (Theory.adversary_bins 65536.0);
  check_int "mu 1 -> at least 1" 1 (Theory.adversary_bins 1.0)

let prop_monotone =
  qcase ~name:"all bound curves are monotone in mu"
    (fun (a, b) ->
      let lo = float_of_int (min a b) and hi = float_of_int (max a b) in
      Theory.sqrt_log_mu lo <= Theory.sqrt_log_mu hi
      && Theory.log_log_mu lo <= Theory.log_log_mu hi
      && Theory.gn_bound lo <= Theory.gn_bound hi
      && Theory.cdff_binary_bound lo <= Theory.cdff_binary_bound hi)
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))

let suite =
  [
    case "log2" test_log2;
    case "scales" test_scales;
    case "bounds" test_bounds;
    case "adversary bins" test_adversary_bins;
    prop_monotone;
  ]
