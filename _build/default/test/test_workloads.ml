open Dbp_util
open Dbp_instance
open Dbp_workloads
open Helpers

(* --- binary input --- *)

let test_binary_matches_reference () =
  List.iter
    (fun mu ->
      let a = Binary_input.generate ~mu in
      let b = binary_input mu in
      check_int "same count" (Instance.length b) (Instance.length a);
      check_int "claimed count" (Binary_input.item_count ~mu) (Instance.length a);
      Array.iter2
        (fun (x : Item.t) (y : Item.t) ->
          check_int "arrival" y.arrival x.arrival;
          check_int "departure" y.departure x.departure;
          check_int "size" (Load.to_units y.size) (Load.to_units x.size))
        (Instance.items a) (Instance.items b))
    [ 2; 8; 64 ]

let test_binary_structure () =
  let mu = 16 in
  let inst = Binary_input.generate ~mu in
  check_bool "aligned" true (Instance.is_aligned inst);
  check_int "span" mu (Instance.span inst);
  (* exactly one item of every class active at every tick *)
  for t = 0 to mu - 1 do
    let active = Instance.active_at inst t in
    check_int (Printf.sprintf "actives at %d" t) 5 (List.length active);
    let classes = List.map Item.length_class active |> List.sort_uniq Int.compare in
    check_int "distinct classes" 5 (List.length classes)
  done;
  check_raises_invalid "mu not a power of two" (fun () -> Binary_input.generate ~mu:12)

let test_binary_loads_fill_bin () =
  (* The erratum fix: all simultaneously active items together fit one
     bin exactly. *)
  let inst = Binary_input.generate ~mu:16 in
  let p = Profile.of_instance inst in
  check_bool "S_t <= 1" true (Profile.max_load_units p <= Load.capacity);
  check_bool "S_t nearly 1" true
    (Profile.max_load_units p > Load.capacity - 10)

(* --- aligned random --- *)

let prop_aligned_random_is_aligned =
  qcase ~count:50 ~name:"aligned generator output satisfies Definition 2.1"
    (fun seed -> Instance.is_aligned (Aligned_random.generate ~seed ()))
    QCheck2.Gen.(int_range 0 1_000_000)

let test_aligned_anchor () =
  let inst =
    Aligned_random.generate
      ~config:{ Aligned_random.default with top_class = 5; horizon = 64 }
      ~seed:3 ()
  in
  let top = Instance.max_duration inst in
  check_bool "anchor realizes the top class" true (top > 16 && top <= 32);
  check_int "starts at zero" 0 (Instance.start_time inst)

let test_aligned_determinism () =
  let a = Aligned_random.generate ~seed:42 () in
  let b = Aligned_random.generate ~seed:42 () in
  check_int "same size" (Instance.length a) (Instance.length b);
  check_int "same demand" (Instance.demand_units a) (Instance.demand_units b)

(* --- general random --- *)

let test_general_anchors_mu () =
  let inst = Dbp_experiments.Workload_defs.general ~mu:64 ~seed:1 in
  check_int "min duration" 1 (Instance.min_duration inst);
  check_int "max duration" 64 (Instance.max_duration inst)

let test_general_dists () =
  List.iter
    (fun dist ->
      let config =
        { General_random.default with dist; horizon = 64; max_duration = 32 }
      in
      let inst = General_random.generate ~config ~seed:5 () in
      check_bool "nonempty" true (Instance.length inst > 0);
      check_bool "durations bounded" true (Instance.max_duration inst <= 32))
    [
      General_random.Uniform;
      General_random.Dyadic_uniform;
      General_random.Pareto 1.5;
      General_random.Bimodal 0.7;
    ]

(* --- adversary --- *)

let test_sigma_star () =
  let inst = Adversary.sigma_star ~mu:16 ~t:3 in
  check_int "log mu + 1 items" 5 (Instance.length inst);
  Array.iter
    (fun (r : Item.t) -> check_int "arrival" 3 r.arrival)
    (Instance.items inst);
  let durations =
    Array.to_list (Instance.items inst) |> List.map Item.duration |> List.sort compare
  in
  Alcotest.(check (list int)) "geometric durations" [ 1; 2; 4; 8; 16 ] durations

let test_adversary_forces_bins () =
  let outcome = Adversary.run ~mu:64 (Dbp_core.Ha.policy ()) in
  check_int "target" 3 outcome.target_bins;
  (* the algorithm held >= target bins open at every tick in [0, mu) *)
  let by_tick = Hashtbl.create 64 in
  Array.iter (fun (t, c) -> Hashtbl.replace by_tick t c) outcome.result.series;
  (* series records samples at event ticks; between events the count is
     the last sample. Walk ticks and carry the last value. *)
  let last = ref 0 in
  for t = 0 to 63 do
    (match Hashtbl.find_opt by_tick t with Some c -> last := c | None -> ());
    if t > 0 then
      check_bool (Printf.sprintf "bins at %d" t) true (!last >= outcome.target_bins)
  done

let test_adversary_deterministic () =
  let a = Adversary.run ~mu:32 Dbp_baselines.Any_fit.first_fit in
  let b = Adversary.run ~mu:32 Dbp_baselines.Any_fit.first_fit in
  check_int "same items" a.items_released b.items_released;
  check_int "same cost" a.result.cost b.result.cost

let prop_adversary_ratio_exceeds_one =
  qcase ~count:8 ~name:"adversary hurts every algorithm"
    (fun mu_exp ->
      let mu = 1 lsl mu_exp in
      List.for_all
        (fun (_, p) ->
          let outcome = Adversary.run ~mu p in
          let m = Dbp_analysis.Ratio.of_run outcome.result outcome.instance in
          m.ratio >= 1.2)
        [
          ("HA", Dbp_core.Ha.policy ());
          ("FF", Dbp_baselines.Any_fit.first_fit);
          ("CD", Dbp_baselines.Classify_duration.policy ());
        ])
    QCheck2.Gen.(int_range 4 10)

let test_aligned_adversary () =
  let outcome = Adversary.run_aligned ~mu:64 (Dbp_core.Cdff.policy ()) in
  check_bool "instance is aligned" true (Instance.is_aligned outcome.instance);
  check_int "default target" 3 outcome.target_bins;
  let m = Dbp_analysis.Ratio.of_run outcome.result outcome.instance in
  check_bool "still hurts" true (m.ratio > 1.0)

let test_aligned_adversary_target_override () =
  let outcome =
    Adversary.run_aligned ~target:2 ~mu:64 Dbp_baselines.Any_fit.first_fit
  in
  check_int "target override" 2 outcome.target_bins

(* --- pinning --- *)

let test_pinning_shape () =
  let mu = 16 in
  let inst = Pinning.generate ~mu () in
  check_int "mu k^2 items" (mu * mu) (Instance.length inst);
  check_int "span" mu (Instance.span inst);
  let ff = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
  check_int "closed form" (Pinning.ff_cost_closed_form ~groups:mu ~mu) ff.cost;
  check_int "ff bins" mu ff.bins_opened

(* --- cd killer --- *)

let test_cd_killer_fits_one_bin () =
  let inst = Cd_killer.generate ~mu:64 () in
  let p = Profile.of_instance inst in
  check_bool "everything fits one bin" true (Profile.max_load_units p <= Load.capacity)

(* --- cloud traces --- *)

let test_cloud_trace_shape () =
  let inst = Cloud_traces.generate ~seed:1 () in
  check_bool "has sessions" true (Instance.length inst > 1000);
  check_bool "durations truncated" true
    (Instance.min_duration inst >= 5 && Instance.max_duration inst <= 480);
  (* diurnal shape: the busiest hour has more arrivals than the quietest *)
  let per_hour = Array.make 24 0 in
  Array.iter
    (fun (r : Item.t) ->
      let h = r.arrival mod 1440 / 60 in
      per_hour.(h) <- per_hour.(h) + 1)
    (Instance.items inst);
  let hi = Array.fold_left max 0 per_hour in
  let lo = Array.fold_left min max_int per_hour in
  check_bool "diurnal swing" true (hi > 2 * lo)

let test_cloud_trace_determinism () =
  let a = Cloud_traces.generate ~seed:9 () in
  let b = Cloud_traces.generate ~seed:9 () in
  check_int "deterministic" (Instance.demand_units a) (Instance.demand_units b)

let suite =
  [
    case "binary matches reference" test_binary_matches_reference;
    case "binary structure" test_binary_structure;
    case "binary loads fill bin" test_binary_loads_fill_bin;
    prop_aligned_random_is_aligned;
    case "aligned anchor" test_aligned_anchor;
    case "aligned determinism" test_aligned_determinism;
    case "general anchors mu" test_general_anchors_mu;
    case "general dists" test_general_dists;
    case "sigma star" test_sigma_star;
    case "adversary forces bins" test_adversary_forces_bins;
    case "adversary deterministic" test_adversary_deterministic;
    prop_adversary_ratio_exceeds_one;
    case "aligned adversary" test_aligned_adversary;
    case "aligned adversary target" test_aligned_adversary_target_override;
    case "pinning shape" test_pinning_shape;
    case "cd killer fits one bin" test_cd_killer_fits_one_bin;
    slow_case "cloud trace shape" test_cloud_trace_shape;
    slow_case "cloud trace determinism" test_cloud_trace_determinism;
  ]
