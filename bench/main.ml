(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (experiments
   E1-E18 from DESIGN.md) and prints them; pass --full for the larger
   parameter sets, --only ID to run a single experiment, --skip-exps to
   jump to the microbenchmarks. --jobs N (or DBP_JOBS=N) fans the
   experiments and their sweep grids out over N worker domains; output
   is bit-identical to --jobs 1.

   Part 1.5 reports the incremental OPT_R solver's resolution counters
   (bracket / cache / warm-started search) on the E5 and E7 reference
   families, next to a from-scratch sweep's branch-and-bound node count;
   --skip-optr skips it.

   Part 1.75 measures end-to-end streaming throughput (items/s) of
   Engine.Stream over a ~100k-item cloud trace for every policy, under
   the same GC profile `dbp stream` defaults to; --skip-stream skips
   it. These are wall-clock measurements, not OLS fits — the regression
   gate lives in scripts/check.sh on the pinned 1M-item trace.

   Part 2 runs bechamel microbenchmarks of the hot paths: one Test.make
   per packing algorithm (per table row of E1), plus the substrate
   operations (first-fit index, exact packer, PRNG, binary strings).
   --json FILE also records the counters and the microbenchmarks
   machine-readably, so the perf trajectory can be tracked across
   commits (BENCH_*.json). *)

open Bechamel
open Toolkit

let usage =
  "bench [--full] [--only ID] [--skip-exps] [--skip-optr] [--skip-stream] \
   [--skip-micro] [--jobs N] [--json FILE] [--metrics] [--metrics-json FILE] \
   [--trace FILE]"
let full = ref false
let only = ref None
let skip_exps = ref false
let skip_optr = ref false
let skip_stream = ref false
let skip_micro = ref false
let json_path = ref None
let metrics_table = ref false
let metrics_json_path = ref None
let trace_path = ref None

let parse_args () =
  let spec =
    [
      ("--full", Arg.Set full, " use the full (slow) experiment parameters");
      ("--only", Arg.String (fun s -> only := Some s), "ID run a single experiment");
      ("--skip-exps", Arg.Set skip_exps, " skip the paper experiments");
      ("--skip-optr", Arg.Set skip_optr, " skip the incremental OPT_R counter report");
      ("--skip-stream", Arg.Set skip_stream, " skip the streaming-throughput report");
      ("--skip-micro", Arg.Set skip_micro, " skip the microbenchmarks");
      ( "--jobs",
        Arg.Int
          (fun n ->
            if n = 0 then
              Dbp_util.Pool.set_default_jobs (Dbp_util.Pool.recommended_jobs ())
            else if n < 0 then
              raise (Arg.Bad "--jobs expects a positive integer (0 = one per core)")
            else Dbp_util.Pool.set_default_jobs n),
        "N worker domains for the experiments; 0 = one per core (default: \
         DBP_JOBS or 1)" );
      ( "--json",
        Arg.String (fun s -> json_path := Some s),
        "FILE write OPT_R counters and microbenchmark results as JSON" );
      ( "--metrics",
        Arg.Set metrics_table,
        " print the metrics registry as a table on exit" );
      ( "--metrics-json",
        Arg.String (fun s -> metrics_json_path := Some s),
        "FILE write the metrics registry as JSON on exit" );
      ( "--trace",
        Arg.String
          (fun s ->
            trace_path := Some s;
            Dbp_util.Trace.set_enabled true),
        "FILE record spans and write a Chrome trace-event JSON file" );
    ]
  in
  Arg.parse (Arg.align spec) (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage

(* ---- Part 1: the paper's tables and figures ---- *)

let run_experiments () =
  let quick = not !full in
  let entries =
    match !only with
    | None -> Dbp_experiments.Registry.all
    | Some id -> (
        match Dbp_experiments.Registry.find id with
        | Some e -> [ e ]
        | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            exit 2)
  in
  List.iter
    (fun ((e : Dbp_experiments.Registry.entry), report, seconds) ->
      print_string report;
      Printf.printf "[%s finished in %.1fs]\n\n" e.experiment seconds;
      flush stdout)
    (Dbp_experiments.Registry.run_entries ~quick entries)

(* ---- Part 1.5: incremental OPT_R counters ----

   Reference sweeps (the E5 and E7 instance families) through the
   incremental solver, reporting how its segments were resolved —
   cache, perturbation bracket, warm-started branch-and-bound — plus
   the total B&B nodes of a cold from-scratch sweep of the same
   instances for comparison. scripts/check.sh asserts the incremental
   node total never regresses past the recorded seed baseline. *)

let optr_families =
  [
    ( "OPT_R/E5 general mu=64 seeds 1-10",
      fun () ->
        List.init 10 (fun i -> Dbp_experiments.Workload_defs.general ~mu:64 ~seed:(i + 1)) );
    ( "OPT_R/E7 general mu=256 seeds 1-3",
      fun () ->
        List.init 3 (fun i -> Dbp_experiments.Workload_defs.general ~mu:256 ~seed:(i + 1)) );
  ]

let run_optr () =
  print_endline "Incremental OPT_R counters (per reference family):";
  List.map
    (fun (name, make) ->
      let insts = make () in
      let solver = Dbp_binpack.Solver.create () in
      List.iter (fun inst -> ignore (Dbp_offline.Opt_repack.exact ~solver inst)) insts;
      let c = Dbp_binpack.Solver.counters solver in
      let reference_nodes =
        List.fold_left
          (fun acc inst ->
            let _, _, nodes =
              Dbp_offline.Opt_repack.reference
                ~node_limit:(Dbp_binpack.Solver.node_limit solver) inst
            in
            acc + nodes)
          0 insts
      in
      let no_search = c.segments - c.bb_searches in
      Printf.printf
        "  %-36s segments=%d no-search=%d (%.1f%%: bracket=%d cache=%d) warm=%d \
         bb_nodes=%d (from-scratch %d)\n"
        name c.segments no_search
        (100.0 *. float_of_int no_search /. float_of_int (max 1 c.segments))
        c.bracket_resolved c.cache_hits c.warm_starts c.bb_nodes reference_nodes;
      flush stdout;
      ( name,
        [
          ("segments", c.segments);
          ("no_search", no_search);
          ("bracket_resolved", c.bracket_resolved);
          ("warm_starts", c.warm_starts);
          ("bb_searches", c.bb_searches);
          ("bb_nodes", c.bb_nodes);
          ("cache_hits", c.cache_hits);
          ("cache_misses", c.cache_misses);
          ("reference_nodes", reference_nodes);
        ] ))
    optr_families

(* ---- Part 1.75: streaming throughput ----

   Every policy over the same ~100k-item cloud trace through
   Engine.Stream (retire mode, 512-sample series — the `dbp stream`
   defaults), reporting end-to-end items/s. One wall-clock run each:
   these are trajectory numbers for BENCH_*.json, not a gate — the
   noise-robust best-of-3 regression gate on the pinned 1M-item trace
   is in scripts/check.sh. *)

let stream_policies ~mu_hint =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("BF", Dbp_baselines.Any_fit.best_fit);
    ("WF", Dbp_baselines.Any_fit.worst_fit);
    ("NF", Dbp_baselines.Any_fit.next_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
    ("RT", Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
  ]

let run_stream () =
  let open Dbp_workloads in
  let config = { Cloud_traces.default with days = 6; base_rate = 20.0 } in
  let mu_hint =
    float_of_int config.max_duration /. float_of_int config.min_duration
  in
  let saved = Gc.get () in
  Fun.protect
    ~finally:(fun () -> Gc.set saved)
    (fun () ->
      Dbp_util.Gc_tune.apply Dbp_util.Gc_tune.stream_default;
      (* Source boundary alone, no policy: the native chunked emitter
         against the Seq shim it replaced. The gap is what batching
         buys before any packing work happens. *)
      print_endline
        "Source drain (cloud days=6 rate=20 seed=1, ~100k items, no policy):";
      let drain name pull =
        ignore (pull () : int);  (* warm-up: pages, branch predictors *)
        let items = ref 0 and best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          items := pull ();
          let wall = Unix.gettimeofday () -. t0 in
          if wall < !best then best := wall
        done;
        let ips = float_of_int !items /. Float.max !best 1e-9 in
        Printf.printf "  %-10s %7d items  %9.0f items/s  (best of 3)\n" name
          !items ips;
        flush stdout;
        (Printf.sprintf "drain/%s cloud 100k" name, !items, ips)
      in
      let drain_chunk name chunk_of =
        drain name (fun () ->
            let block = Dbp_instance.Item_block.create () in
            let slots = Array.make Dbp_sim.Engine.Stream.default_chunk_size (-1) in
            let emitter = chunk_of () in
            let total = ref 0 in
            let rec loop () =
              let n = Dbp_instance.Event_source.Chunk.next_chunk emitter block slots in
              if n > 0 then begin
                total := !total + n;
                for i = 0 to n - 1 do
                  Dbp_instance.Item_block.free block slots.(i)
                done;
                loop ()
              end
            in
            loop ();
            !total)
      in
      let d_chunked =
        drain_chunk "chunked" (fun () -> Cloud_traces.chunks ~config ~seed:1 ())
      in
      let d_seq =
        drain_chunk "seq" (fun () ->
            Dbp_instance.Event_source.Chunk.of_seq
              (Cloud_traces.stream ~config ~seed:1 ()))
      in
      let drains = [ d_chunked; d_seq ] in
      print_endline
        "Streaming throughput (cloud days=6 rate=20 seed=1, ~100k items):";
      let measure ?track_items name factory config =
        let emitter = Cloud_traces.chunks ~config ~seed:1 () in
        let t0 = Unix.gettimeofday () in
        let s =
          Dbp_sim.Engine.Stream.run_chunks ?track_items ~max_series:512 factory
            emitter
        in
        let wall = Unix.gettimeofday () -. t0 in
        let ips = float_of_int s.items /. Float.max wall 1e-9 in
        Printf.printf "  %-10s %7d items  %9.0f items/s  cost=%d\n" name
          s.items ips s.result.cost;
        flush stdout;
        (s.items, ips)
      in
      let per_policy =
        List.map
          (fun (name, factory) ->
            let items, ips = measure name factory config in
            (Printf.sprintf "stream/%s cloud 100k" name, items, ips))
          (stream_policies ~mu_hint)
      in
      (* Recourse overhead on the same trace: FF wrapped at k=2
         (close-emptiest, per-event). Item tracking must be on to
         resolve move sources, so the delta vs stream/FF bundles the
         per-item map with the repacking work itself. *)
      print_endline "Recourse overhead (same trace, FF vs FF+r2):";
      let r_items, r_ips =
        measure ~track_items:true "FF+r2"
          (Dbp_sim.Recourse.wrap ~k:2 Dbp_baselines.Any_fit.first_fit)
          config
      in
      let recourse_row = [ ("stream/FF+r2 cloud 100k", r_items, r_ips) ] in
      (* The acceptance trace of the batched-pipeline work: the pinned
         1M-item FF stream scripts/check.sh gates at >= 1.6M items/s
         (best of 3). *)
      print_endline "Pinned trace (cloud days=60 rate=20 seed=1, ~1M items):";
      let items, ips =
        measure "FF" Dbp_baselines.Any_fit.first_fit
          { config with Cloud_traces.days = 60 }
      in
      drains @ per_policy @ recourse_row
      @ [ ("stream/FF cloud 1M pinned", items, ips) ])

(* ---- Part 2: microbenchmarks ---- *)

let instance_of workload mu seed =
  match workload with
  | `General -> Dbp_experiments.Workload_defs.general ~mu ~seed
  | `Binary -> Dbp_experiments.Workload_defs.binary ~mu ~seed
  | `Aligned -> Dbp_experiments.Workload_defs.aligned ~mu ~seed

let pack_test name factory workload mu =
  let inst = instance_of workload mu 1 in
  Test.make ~name (Staged.stage (fun () -> Dbp_sim.Engine.run factory inst))

let micro_tests () =
  let open Dbp_util in
  [
    (* One packing benchmark per Table 1 row / algorithm family. *)
    pack_test "HA/general mu=256" (Dbp_core.Ha.policy ()) `General 256;
    pack_test "CDFF/binary mu=1024" (Dbp_core.Cdff.policy ()) `Binary 1024;
    pack_test "CDFF/aligned mu=256" (Dbp_core.Cdff.policy ()) `Aligned 256;
    pack_test "FF/general mu=256" Dbp_baselines.Any_fit.first_fit `General 256;
    pack_test "CD/general mu=256" (Dbp_baselines.Classify_duration.policy ()) `General 256;
    pack_test "SpanGreedy/general mu=256" Dbp_baselines.Span_greedy.policy `General 256;
    (* Offline optimum (the denominator of every ratio). *)
    (let inst = instance_of `General 64 1 in
     Test.make ~name:"OPT_R exact/general mu=64"
       (Staged.stage (fun () -> Dbp_offline.Opt_repack.exact inst)));
    (* Substrate: first-fit segment-tree index. *)
    Test.make ~name:"Ff_index push+query x1000"
      (Staged.stage (fun () ->
           let t = Dbp_sim.Ff_index.create () in
           for i = 0 to 999 do
             ignore (Dbp_sim.Ff_index.push t ~residual:(i * 7919 mod 1_000_000))
           done;
           for i = 0 to 999 do
             ignore (Dbp_sim.Ff_index.first_fit t (i * 104729 mod 1_000_000))
           done));
    (* Substrate: exact static bin packing. *)
    (let rng = Prng.create ~seed:42 in
     let sizes =
       Array.init 40 (fun _ -> Load.of_units (1 + Prng.int_below rng Load.capacity))
     in
     Test.make ~name:"Exact.min_bins 40 items"
       (Staged.stage (fun () -> Dbp_binpack.Exact.min_bins sizes)));
    (* Substrate: id -> item lookup, hash index vs the old linear scan. *)
    (let inst = instance_of `General 256 1 in
     let items = Dbp_instance.Instance.items inst in
     let n = Array.length items in
     let ids = Array.init 1000 (fun i -> items.(i * 7919 mod n).id) in
     Test.make_grouped ~name:"Instance.find x1000"
       [
         Test.make ~name:"hash"
           (Staged.stage (fun () ->
                Array.iter (fun id -> ignore (Dbp_instance.Instance.find inst id)) ids));
         Test.make ~name:"linear"
           (Staged.stage (fun () ->
                Array.iter
                  (fun id ->
                    match
                      Array.find_opt (fun (r : Dbp_instance.Item.t) -> r.id = id) items
                    with
                    | Some _ -> ()
                    | None -> raise Not_found)
                  ids));
       ]);
    (* Substrate: PRNG. *)
    (let rng = Prng.create ~seed:1 in
     Test.make ~name:"Prng.int_below x1000"
       (Staged.stage (fun () ->
            for _ = 1 to 1000 do
              ignore (Prng.int_below rng 12345)
            done)));
    (* Substrate: binary-string combinatorics. *)
    Test.make ~name:"Binary_strings.expectation n=24"
      (Staged.stage (fun () -> Dbp_analysis.Binary_strings.expectation ~bits:24));
    (* Substrate: bottom-up heapify. *)
    (let xs = List.init 1000 (fun i -> i * 7919 mod 65536) in
     Test.make ~name:"Heap.of_list 1000"
       (Staged.stage (fun () -> Heap.of_list ~cmp:Int.compare xs)));
    (* Substrate: the departure queue — the calendar queue the engine
       drains through, against the packed slot heap and the boxed
       generic heap over (departure, id) tuples it successively
       replaced. Departure density ~1 item/tick, the streaming regime
       the calendar is shaped for (its pop cost is one bucket probe,
       plus one compare per empty tick scanned). *)
    (let n = 1000 in
     let rng = Prng.create ~seed:7 in
     let block = Dbp_instance.Item_block.create () in
     let slots =
       Array.init n (fun i ->
           Dbp_instance.Item_block.alloc block
             (Dbp_instance.Item.make ~id:i ~arrival:0
                ~departure:(1 + Prng.int_below rng n)
                ~size:(Load.of_units 1)))
     in
     let keys =
       Array.map
         (fun s ->
           ( Dbp_instance.Item_block.departure block s,
             Dbp_instance.Item_block.id block s ))
         slots
     in
     let cmp (d1, i1) (d2, i2) =
       if d1 <> d2 then Int.compare d1 d2 else Int.compare i1 i2
     in
     Test.make_grouped ~name:"Departure heap add+pop x1000"
       [
         Test.make ~name:"calendar"
           (Staged.stage (fun () ->
                let q = Dbp_sim.Depart_queue.create () in
                Array.iter
                  (fun s ->
                    Dbp_sim.Depart_queue.add q
                      ~dep:(Dbp_instance.Item_block.departure block s)
                      ~id:(Dbp_instance.Item_block.id block s)
                      s)
                  slots;
                while Dbp_sim.Depart_queue.pop_due q ~upto:max_int >= 0 do
                  ()
                done));
         Test.make ~name:"slot"
           (Staged.stage (fun () ->
                let h = Dbp_instance.Item_block.Heap.create () in
                Array.iter (fun s -> Dbp_instance.Item_block.Heap.add block h s) slots;
                while Dbp_instance.Item_block.Heap.length h > 0 do
                  ignore (Dbp_instance.Item_block.Heap.pop h)
                done));
         Test.make ~name:"boxed"
           (Staged.stage (fun () ->
                let h = Heap.create ~cmp in
                Array.iter (fun k -> Heap.add h k) keys;
                while not (Heap.is_empty h) do
                  ignore (Heap.pop_exn h)
                done));
       ]);
  ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

(* The registry dump as one more record in the --json array, alongside
   the hand-formatted counter and microbenchmark records. *)
let metrics_record () =
  let open Dbp_util in
  match Metrics.to_json () with
  | Json.Obj fields -> Json.to_string (Json.Obj (("name", Json.String "metrics") :: fields))
  | j -> Json.to_string j

let write_json path ~optr ~stream ~micro =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let records =
        List.map
          (fun (name, fields) ->
            Printf.sprintf "{\"name\": \"%s\", %s}" (json_escape name)
              (String.concat ", "
                 (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) fields)))
          optr
        @ List.map
            (fun (name, items, ips) ->
              Printf.sprintf
                "{\"name\": \"%s\", \"items\": %d, \"items_per_sec\": %s}"
                (json_escape name) items (json_number ips))
            stream
        @ List.map
            (fun (name, ns, r2) ->
              Printf.sprintf "{\"name\": \"%s\", \"ns_per_run\": %s, \"r2\": %s}"
                (json_escape name) (json_number ns)
                (match r2 with Some r -> json_number r | None -> "null"))
            micro
        @ [ metrics_record () ]
      in
      output_string oc "[\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "  %s%s\n" r
            (if i = List.length records - 1 then "" else ","))
        records;
      output_string oc "]\n");
  Printf.printf "wrote %s\n" path

let run_micro () =
  let tests = micro_tests () in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  print_endline "Microbenchmarks (time per run):";
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          let pretty =
            if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
            else Printf.sprintf "%8.1f ns" ns
          in
          Printf.printf "  %-32s %s\n" (Test.Elt.name elt) pretty;
          flush stdout;
          (Test.Elt.name elt, ns, Analyze.OLS.r_square est))
        (Test.elements test))
    tests

let () =
  parse_args ();
  if not !skip_exps then run_experiments ();
  let optr = if not !skip_optr then run_optr () else [] in
  let stream = if not !skip_stream then run_stream () else [] in
  let micro = if not !skip_micro then run_micro () else [] in
  (match !json_path with
  | None -> ()
  | Some path -> write_json path ~optr ~stream ~micro);
  if !metrics_table then print_string (Dbp_util.Metrics.to_table ());
  (match !metrics_json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Dbp_util.Json.to_string_hum (Dbp_util.Metrics.to_json ()));
          output_char oc '\n');
      Printf.printf "wrote %s\n" path);
  match !trace_path with
  | None -> ()
  | Some path ->
      Dbp_util.Trace.write ~path;
      Printf.printf "wrote %s\n" path
