(* dbp — command-line driver for the clairvoyant dynamic bin packing
   reproduction: run algorithms on workloads, sweep mu, reproduce the
   paper's tables and figures by experiment id. *)

open Cmdliner
open Dbp_experiments

let algorithm_names = [ "HA"; "CDFF"; "FF"; "BF"; "WF"; "NF"; "CD"; "RT"; "SpanGreedy" ]

let algorithm_of_name ~mu_hint name =
  match String.uppercase_ascii name with
  | "HA" -> Some (Dbp_core.Ha.policy ())
  | "CDFF" -> Some (Dbp_core.Cdff.policy ())
  | "FF" -> Some Dbp_baselines.Any_fit.first_fit
  | "BF" -> Some Dbp_baselines.Any_fit.best_fit
  | "WF" -> Some Dbp_baselines.Any_fit.worst_fit
  | "NF" -> Some Dbp_baselines.Any_fit.next_fit
  | "CD" -> Some (Dbp_baselines.Classify_duration.policy ())
  | "RT" -> Some (Dbp_baselines.Rt_classify.auto ~mu_hint)
  | "SPANGREEDY" | "SG" -> Some Dbp_baselines.Span_greedy.policy
  | _ -> None

let workload_names = [ "general"; "uniform"; "aligned"; "binary"; "pinning"; "cdkiller"; "cloud" ]

(* The deterministic constructions are scalar by design; only the
   random generators know how to draw extra resource dimensions. *)
let workload_of_name name ~resource ~mu ~seed =
  let scalar_only = resource.Dbp_workloads.Resource_shape.dims = 1 in
  match String.lowercase_ascii name with
  | "general" -> Some (Workload_defs.general_vec ~resource ~mu ~seed)
  | "uniform" -> Some (Workload_defs.general_uniform_vec ~resource ~mu ~seed)
  | "aligned" -> Some (Workload_defs.aligned_vec ~resource ~mu ~seed)
  | "binary" when scalar_only -> Some (Workload_defs.binary ~mu ~seed)
  | "pinning" when scalar_only -> Some (Workload_defs.pinning ~mu ~seed)
  | "cdkiller" when scalar_only -> Some (Workload_defs.cd_killer ~mu ~seed)
  | "cloud" ->
      Some
        (Dbp_workloads.Cloud_traces.generate
           ~config:{ Dbp_workloads.Cloud_traces.default with resource }
           ~seed ())
  | _ -> None

(* ---- common args ---- *)

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the full (slow) parameter sets.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some 0 -> Ok (Dbp_util.Pool.recommended_jobs ())
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid jobs count %S: expected a positive integer, or 0 for \
                one worker per core"
               s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for experiment and sweep grids; 0 means one per \
           core (default: $(b,DBP_JOBS), else 1 = inline). Output is \
           bit-identical for any N.")

let set_jobs jobs = Option.iter Dbp_util.Pool.set_default_jobs jobs

(* ---- observability ---- *)

type obs = {
  metrics : bool;
  metrics_json : string option;
  trace : string option;
}

let obs_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Print the metrics registry as a table on exit.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as JSON to $(docv). The $(b,metrics) \
             section is bit-identical for any $(b,--jobs); the \
             $(b,scheduling) section is not.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans and write a Chrome trace-event JSON file to $(docv) \
             (load it in Perfetto or chrome://tracing).")
  in
  Term.(
    const (fun metrics metrics_json trace -> { metrics; metrics_json; trace })
    $ metrics $ metrics_json $ trace)

(* Enable tracing before the work when requested, run it, then emit
   every requested export. Exports run after the parallel section has
   joined, which is the only time the registry may be read. *)
let with_obs obs k =
  if obs.trace <> None then Dbp_util.Trace.set_enabled true;
  let r = k () in
  if obs.metrics then print_string (Dbp_util.Metrics.to_table ());
  (match obs.metrics_json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Dbp_util.Json.to_string_hum (Dbp_util.Metrics.to_json ()));
          output_char oc '\n'));
  (match obs.trace with None -> () | Some path -> Dbp_util.Trace.write ~path);
  r

let mu_arg =
  Arg.(value & opt int 256 & info [ "mu" ] ~docv:"MU" ~doc:"Max/min duration ratio.")

(* ---- vector (d-dimensional) loads ---- *)

let dims_arg =
  Arg.(
    value & opt int 1
    & info [ "dims" ] ~docv:"D"
        ~doc:
          "Resource dimensions per item (>= 1). 1 (default) is the classic \
           scalar engine; higher values generate and pack d-dimensional \
           vector items (an item fits a bin only if it fits in every \
           dimension).")

let shape_conv =
  let parse s =
    match Dbp_workloads.Resource_shape.shape_of_string s with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid resource shape %S: expected independent, \
                correlated[:RHO] or adversarial"
               s))
  in
  Arg.conv
    ( parse,
      fun fmt t ->
        Format.pp_print_string fmt (Dbp_workloads.Resource_shape.shape_to_string t) )

let shape_arg =
  Arg.(
    value
    & opt shape_conv Dbp_workloads.Resource_shape.Independent
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "With $(b,--dims) > 1, how extra dimensions relate to dimension 0: \
           $(b,independent) (fresh uniform draws), $(b,correlated)[:RHO] \
           (blend of dimension 0 and a fresh draw, default RHO 0.8), or \
           $(b,adversarial) (mirror: 1 - size).")

let dim_mu_arg =
  Arg.(
    value
    & opt (list float) []
    & info [ "dim-mu" ] ~docv:"MUS"
        ~doc:
          "Per-extra-dimension mean scale in (0, 1], comma-separated, one \
           entry per extra dimension (default: all 1).")

let resource_of ~dims ~shape ~dim_mu =
  let spec =
    { Dbp_workloads.Resource_shape.dims; shape; dim_mu = Array.of_list dim_mu }
  in
  match Dbp_workloads.Resource_shape.validate spec with
  | () -> Ok spec
  | exception Invalid_argument m -> Error m

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* ---- bounded recourse ---- *)

let recourse_arg =
  Arg.(
    value & opt int 0
    & info [ "recourse" ] ~docv:"K"
        ~doc:
          "Migration budget: wrap the policy in bounded-recourse repacking \
           with up to $(docv) item moves per event (0, the default, runs \
           the policy unwrapped and bit-identically).")

let recourse_mode_arg =
  Arg.(
    value
    & opt string "close-emptiest"
    & info [ "recourse-mode" ] ~docv:"STRAT"
        ~doc:
          "Repacking strategy: $(b,close-emptiest), $(b,consolidate), or \
           $(b,waste)[:F] (evacuate only while open bins exceed F times \
           the ceil(S_t) lower bound; default F 1.5).")

let amortized_arg =
  Arg.(
    value & flag
    & info [ "amortized" ]
        ~doc:
          "Amortized recourse budget: each arrival grants K move credits \
           that accumulate, instead of resetting the budget every event.")

let recourse_wrap ~k ~strategy ~amortized factory =
  if k < 0 then Error "--recourse must be >= 0"
  else
    match Dbp_sim.Recourse.strategy_of_string strategy with
    | None ->
        Error
          (Printf.sprintf
             "unknown --recourse-mode %S: expected close-emptiest, \
              consolidate, or waste[:F]"
             strategy)
    | Some strategy ->
        let mode =
          if amortized then Dbp_sim.Recourse.Amortized
          else Dbp_sim.Recourse.Per_event
        in
        Ok (Dbp_sim.Recourse.wrap ~k ~mode ~strategy factory)

let workload_arg =
  Arg.(
    value
    & opt string "general"
    & info [ "workload"; "w" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Workload: %s." (String.concat ", " workload_names)))

let algorithms_arg =
  Arg.(
    value
    & opt (list string) [ "HA"; "CDFF"; "FF"; "CD" ]
    & info [ "algorithms"; "a" ] ~docv:"NAMES"
        ~doc:(Printf.sprintf "Comma-separated algorithms: %s." (String.concat ", " algorithm_names)))

let fail fmt = Printf.ksprintf (fun msg -> `Error (false, msg)) fmt

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "%-5s %-16s %s\n" e.experiment e.id e.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible experiments.")
    Term.(const run $ const ())

(* ---- experiment ---- *)

let experiment_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (e.g. table1, E8, corollary58).")
  in
  let run id full jobs obs =
    set_jobs jobs;
    match Registry.find id with
    | Some e ->
        with_obs obs (fun () -> print_string (e.run ~quick:(not full)));
        `Ok ()
    | None -> fail "unknown experiment %S; try `dbp list'" id
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one table/figure/theorem by id.")
    Term.(ret (const run $ id $ full_flag $ jobs_arg $ obs_term))

(* ---- all ---- *)

let all_cmd =
  let run full jobs obs =
    set_jobs jobs;
    with_obs obs (fun () ->
        List.iter
          (fun (_, report, _) ->
            print_string report;
            print_newline ())
          (Registry.run_entries ~quick:(not full) Registry.all))
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment in order.")
    Term.(const run $ full_flag $ jobs_arg $ obs_term)

(* ---- run ---- *)

let run_cmd =
  let algorithm =
    Arg.(
      value & opt string "HA"
      & info [ "algorithm"; "a" ] ~docv:"NAME" ~doc:"Algorithm to run.")
  in
  let chart = Arg.(value & flag & info [ "chart" ] ~doc:"Print the packing chart.") in
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "input"; "i" ] ~docv:"CSV"
          ~doc:"Pack an instance from a CSV file (id,arrival,departure,size) instead of a generated workload.")
  in
  let run algorithm workload mu seed dims shape dim_mu chart input recourse
      recourse_mode amortized obs =
    match resource_of ~dims ~shape ~dim_mu with
    | Error m -> fail "--dims/--shape/--dim-mu: %s" m
    | Ok resource -> (
    let instance =
      match input with
      | Some path -> (
          match Dbp_instance.Io.of_file ~path with
          | inst -> Some inst
          | exception Failure msg ->
              prerr_endline msg;
              None)
      | None -> workload_of_name workload ~resource ~mu ~seed
    in
    match instance with
    | None ->
        fail
          "no instance (unknown workload %S, unreadable input, or --dims > 1 \
           on a deterministic workload)"
          workload
    | Some inst -> (
        match algorithm_of_name ~mu_hint:(float_of_int mu) algorithm with
        | None -> fail "unknown algorithm %S" algorithm
        | Some factory -> (
            match
              recourse_wrap ~k:recourse ~strategy:recourse_mode ~amortized factory
            with
            | Error m -> fail "%s" m
            | Ok factory ->
            with_obs obs (fun () ->
                let solver = Dbp_binpack.Solver.create () in
                let name =
                  if recourse > 0 then
                    Printf.sprintf "%s+r%d" algorithm recourse
                  else algorithm
                in
                let m = Dbp_analysis.Ratio.measure ~solver ~name factory inst in
                Format.printf "%a@." Dbp_analysis.Ratio.pp m;
                Printf.printf "items=%d span=%d demand=%.1f mu=%.0f\n"
                  (Dbp_instance.Instance.length inst)
                  (Dbp_instance.Instance.span inst)
                  (Dbp_instance.Instance.demand inst)
                  m.mu;
                let c = Dbp_binpack.Solver.counters solver in
                Printf.printf
                  "opt_r: segments=%d bracket=%d warm=%d bb_nodes=%d cache=%d/%d\n"
                  c.segments c.bracket_resolved c.warm_starts c.bb_nodes
                  c.cache_hits
                  (c.cache_hits + c.cache_misses);
                if chart then begin
                  let res = Dbp_sim.Engine.run factory inst in
                  print_string (Dbp_report.Gantt.packing_chart inst res.store)
                end);
            `Ok ())))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one algorithm on one workload instance.")
    Term.(
      ret
        (const run $ algorithm $ workload_arg $ mu_arg $ seed_arg $ dims_arg
       $ shape_arg $ dim_mu_arg $ chart $ input $ recourse_arg
       $ recourse_mode_arg $ amortized_arg $ obs_term))

(* ---- export ---- *)

let export_cmd =
  let dir =
    Arg.(
      value & opt string "figures"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory (created if missing).")
  in
  let run dir mu =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name contents =
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents);
      Printf.printf "wrote %s\n" path
    in
    (* Text figures. *)
    List.iter
      (fun id ->
        match Registry.find id with
        | Some e -> write (id ^ ".txt") (e.run ~quick:true)
        | None -> ())
      [ "figure1"; "figure2"; "figure3" ];
    (* The binary instance itself, for external tools. *)
    let mu_pow2 = Dbp_util.Ints.pow2 (Dbp_util.Ints.ceil_log2 (max 2 mu)) in
    write
      (Printf.sprintf "sigma_%d.csv" mu_pow2)
      (Dbp_instance.Io.to_string (Dbp_workloads.Binary_input.generate ~mu:mu_pow2));
    (* Ratio curves as SVG, one per family. *)
    let svg_sweep name workload mus =
      let curves =
        Dbp_analysis.Sweep.run
          ~algorithms:(Common.core_roster ~mu_hint:(float_of_int (List.fold_left max 2 mus)))
          ~workload ~mus ~seeds:[ 1; 2; 3 ] ()
      in
      let series =
        List.map
          (fun (c : Dbp_analysis.Sweep.curve) ->
            ( c.algorithm,
              Array.of_list
                (List.map
                   (fun (p : Dbp_analysis.Sweep.point) ->
                     (Float.log2 p.mu, p.ratios.mean))
                   c.points) ))
          curves
      in
      let path = Filename.concat dir (name ^ ".svg") in
      Dbp_report.Svg.write_file ~path ~width:640.0 ~height:400.0
        (Dbp_report.Svg.line_chart ~width:640.0 ~height:400.0 ~series
           ~x_label:"log2 mu" ~y_label:"ratio" ());
      Printf.printf "wrote %s\n" path
    in
    svg_sweep "ratios_general" Workload_defs.general [ 4; 16; 64; 256 ];
    svg_sweep "ratios_aligned" Workload_defs.aligned [ 4; 16; 64; 256 ];
    `Ok ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write figures (txt/SVG) and instances (CSV) to a directory.")
    Term.(ret (const run $ dir $ mu_arg))

(* ---- sweep ---- *)

let sweep_cmd =
  let mus =
    Arg.(
      value
      & opt (list int) [ 4; 16; 64; 256 ]
      & info [ "mus" ] ~docv:"LIST" ~doc:"Comma-separated mu values.")
  in
  let seeds =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3 ]
      & info [ "seeds" ] ~docv:"LIST" ~doc:"Comma-separated seeds.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"PATH" ~doc:"Also write an SVG chart of the curves.")
  in
  let recourse_ks =
    Arg.(
      value
      & opt (list int) []
      & info [ "recourse" ] ~docv:"KS"
          ~doc:
            "Frontier mode: comma-separated migration budgets (e.g. \
             $(i,0,1,2,4)). Instead of sweeping mu ratios, chart each \
             algorithm's cost-vs-migration frontier across these budgets, \
             one table per mu.")
  in
  let run workload algorithms mus seeds svg recourse_ks recourse_mode amortized
      jobs obs =
    set_jobs jobs;
    let mu_hint = float_of_int (List.fold_left max 2 mus) in
    let resolve name =
      match algorithm_of_name ~mu_hint name with
      | Some f -> Ok (name, f)
      | None -> Error name
    in
    let resolved = List.map resolve algorithms in
    match List.find_opt Result.is_error resolved with
    | Some (Error name) -> fail "unknown algorithm %S" name
    | _ -> (
        let algorithms = List.filter_map Result.to_option resolved in
        let workload_fn ~mu ~seed =
          match
            workload_of_name workload ~resource:Dbp_workloads.Resource_shape.scalar
              ~mu ~seed
          with
          | Some inst -> inst
          | None -> invalid_arg ("unknown workload " ^ workload)
        in
        match
          workload_of_name workload ~resource:Dbp_workloads.Resource_shape.scalar
            ~mu:4 ~seed:1
        with
        | None -> fail "unknown workload %S" workload
        | Some _ when recourse_ks <> [] -> (
            if List.exists (fun k -> k < 0) recourse_ks then
              fail "--recourse budgets must be >= 0"
            else
              match Dbp_sim.Recourse.strategy_of_string recourse_mode with
              | None ->
                  fail
                    "unknown --recourse-mode %S: expected close-emptiest, \
                     consolidate, or waste[:F]"
                    recourse_mode
              | Some strategy ->
                  let mode =
                    if amortized then Dbp_sim.Recourse.Amortized
                    else Dbp_sim.Recourse.Per_event
                  in
                  with_obs obs (fun () ->
                      List.iter
                        (fun mu ->
                          let f =
                            Dbp_analysis.Frontier.run ~mode ~strategy
                              ~algorithms
                              ~workload:(fun ~seed -> workload_fn ~mu ~seed)
                              ~ks:recourse_ks ~seeds ()
                          in
                          Printf.printf "mu=%d\n%s\n" mu
                            (Common.frontier_table f))
                        mus);
                  `Ok ())
        | Some _ ->
            let curves =
              with_obs obs (fun () ->
                  Dbp_analysis.Sweep.run ~algorithms ~workload:workload_fn ~mus
                    ~seeds ())
            in
            print_string (Common.curve_table curves);
            List.iter
              (fun (c : Dbp_analysis.Sweep.curve) ->
                print_endline
                  (Common.fit_line c.algorithm (Dbp_analysis.Sweep.fit_curve c)))
              curves;
            (match svg with
            | None -> ()
            | Some path ->
                let series =
                  List.map
                    (fun (c : Dbp_analysis.Sweep.curve) ->
                      ( c.algorithm,
                        Array.of_list
                          (List.map
                             (fun (p : Dbp_analysis.Sweep.point) ->
                               (Float.log2 p.mu, p.ratios.mean))
                             c.points) ))
                    curves
                in
                Dbp_report.Svg.write_file ~path ~width:640.0 ~height:400.0
                  (Dbp_report.Svg.line_chart ~width:640.0 ~height:400.0 ~series
                     ~x_label:"log2 mu" ~y_label:"ratio" ());
                Printf.printf "wrote %s\n" path);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep mu and measure competitive ratios.")
    Term.(
      ret
        (const run $ workload_arg $ algorithms_arg $ mus $ seeds $ svg
       $ recourse_ks $ recourse_mode_arg $ amortized_arg $ jobs_arg $ obs_term))

(* ---- stream ---- *)

let stream_cmd =
  let workloads = [ "cloud"; "general"; "aligned" ] in
  let workload =
    Arg.(
      value & opt string "cloud"
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Streaming workload: %s." (String.concat ", " workloads)))
  in
  let days =
    Arg.(
      value & opt int 3
      & info [ "days" ] ~docv:"N" ~doc:"Horizon in simulated days (1440 ticks each).")
  in
  let rate =
    Arg.(
      value & opt float 2.0
      & info [ "rate" ] ~docv:"R" ~doc:"Arrival rate (mean items per tick at peak).")
  in
  let policy =
    Arg.(
      value & opt string "FF"
      & info [ "policy"; "p" ] ~docv:"NAME" ~doc:"Online policy to stream through.")
  in
  let max_series =
    Arg.(
      value & opt int 512
      & info [ "max-series" ] ~docv:"K"
          ~doc:
            "Cap on retained open-bins series samples (LTTB decimation; >= 3). \
             0 disables the cap (exact, unbounded series).")
  in
  let retain =
    Arg.(
      value & flag
      & info [ "retain" ]
          ~doc:
            "Keep full per-bin history (disable the Bin_store retire/compact \
             mode). Memory grows with bins ever opened — the pre-streaming \
             behavior, for reports and validators.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Also materialize the source and replay it through Engine.run, \
             asserting cost, bins_opened and max_open are bit-identical to the \
             streamed run. Costs O(items) memory; exits 1 on mismatch.")
  in
  let gc_spec =
    Arg.(
      value
      & opt string ""
      & info [ "gc" ] ~docv:"SPEC" ~env:(Cmd.Env.info "DBP_GC")
          ~doc:
            "GC tuning spec applied before the run, e.g. \
             $(i,minor=2M,space=200) (minor heap in words with K/M \
             suffixes, space_overhead in percent). Defaults to the \
             measured streaming profile; $(i,stock) leaves the runtime \
             untouched. Also read from $(env).")
  in
  let chunk =
    Arg.(
      value
      & opt int Dbp_sim.Engine.Stream.default_chunk_size
      & info [ "chunk" ] ~docv:"N" ~env:(Cmd.Env.info "DBP_CHUNK")
          ~doc:
            "Items per batch pulled from the workload emitter (>= 1). The \
             emitter deposits whole batches into the engine's item arena, so \
             the source boundary is crossed once per $(docv) items; results \
             are bit-identical for any value. Also read from $(env).")
  in
  let run workload days rate seed dims shape dim_mu policy max_series retain
      verify gc_spec chunk recourse recourse_mode amortized obs =
    if days < 1 then fail "--days must be >= 1"
    else if rate <= 0.0 then fail "--rate must be positive"
    else if max_series < 0 || (max_series > 0 && max_series < 3) then
      fail "--max-series must be 0 (uncapped) or >= 3"
    else if chunk < 1 then fail "--chunk must be >= 1"
    else begin
      match resource_of ~dims ~shape ~dim_mu with
      | Error m -> fail "--dims/--shape/--dim-mu: %s" m
      | Ok resource ->
      let open Dbp_workloads in
      (* The chunked emitter is the run path (single-pass, built fresh);
         the Seq source exists only so --verify can materialize the same
         items for the reference replay. Both advance one PRNG through
         the identical schedule and emit bit-identical items. *)
      let sources, mu_hint =
        match String.lowercase_ascii workload with
        | "cloud" ->
            let config =
              { Cloud_traces.default with days; base_rate = rate; resource }
            in
            ( Some
                ( Cloud_traces.chunks ~config ~seed (),
                  fun () -> Cloud_traces.stream ~config ~seed () ),
              float_of_int config.max_duration /. float_of_int config.min_duration )
        | "general" ->
            let config =
              {
                General_random.default with
                horizon = days * 1440;
                arrival_rate = rate;
                resource;
              }
            in
            ( Some
                ( General_random.chunks ~config ~seed (),
                  fun () -> General_random.stream ~config ~seed () ),
              float_of_int config.max_duration )
        | "aligned" ->
            let config =
              { Aligned_random.default with horizon = days * 1440; rate; resource }
            in
            ( Some
                ( Aligned_random.chunks ~config ~seed (),
                  fun () -> Aligned_random.stream ~config ~seed () ),
              float_of_int (Dbp_util.Ints.pow2 config.top_class) )
        | _ -> (None, 0.0)
      in
      match sources with
      | None -> fail "unknown streaming workload %S (try %s)" workload (String.concat ", " workloads)
      | Some (chunk_source, seq_source) -> (
          match algorithm_of_name ~mu_hint policy with
          | None -> fail "unknown algorithm %S" policy
          | Some factory -> (
              match
                recourse_wrap ~k:recourse ~strategy:recourse_mode ~amortized
                  factory
              with
              | Error m -> fail "%s" m
              | Ok factory -> (
              let gc_applied =
                match gc_spec with
                | "stock" -> Ok ()
                | "" -> Ok (Dbp_util.Gc_tune.apply Dbp_util.Gc_tune.stream_default)
                | spec -> (
                    try Ok (Dbp_util.Gc_tune.apply spec)
                    with Invalid_argument m -> Error m)
              in
              match gc_applied with
              | Error m -> fail "--gc: %s" m
              | Ok () ->
              with_obs obs (fun () ->
                  let max_series = if max_series = 0 then None else Some max_series in
                  let t0 = Unix.gettimeofday () in
                  let s =
                    (* Recourse needs the store's per-item map to resolve
                       move sources; without it streaming stays map-free. *)
                    Dbp_sim.Engine.Stream.run_chunks ~retire:(not retain)
                      ~track_items:(recourse > 0 || retain) ?max_series
                      ~chunk_size:chunk
                      ~dims factory chunk_source
                  in
                  let wall = Unix.gettimeofday () -. t0 in
                  Printf.printf
                    "stream: workload=%s days=%d rate=%g seed=%d dims=%d policy=%s%s\n"
                    (String.lowercase_ascii workload)
                    days rate seed dims s.result.name
                    (if retain then " (full retention)" else "");
                  Printf.printf
                    "items=%d cost=%d bins_opened=%d max_open=%d series_samples=%d\n"
                    s.items s.result.cost s.result.bins_opened s.result.max_open
                    (Array.length s.result.series);
                  if recourse > 0 then
                    Printf.printf "recourse: k=%d moves=%d moved_units=%d\n"
                      recourse s.result.moves s.result.moved_units;
                  Printf.printf "peak_live_items=%d peak_retained_items=%d\n"
                    s.peak_live_items s.peak_retained_items;
                  Printf.printf "throughput=%.0f items/s (wall=%.2fs)\n"
                    (float_of_int s.items /. Float.max wall 1e-9)
                    wall;
                  if verify then begin
                    let inst =
                      Dbp_instance.Event_source.to_instance (seq_source ())
                    in
                    let r = Dbp_sim.Engine.run factory inst in
                    if
                      r.cost = s.result.cost
                      && r.bins_opened = s.result.bins_opened
                      && r.max_open = s.result.max_open
                      && Dbp_instance.Instance.length inst = s.items
                    then
                      Printf.printf
                        "verify: OK — streamed run bit-identical to Engine.run \
                         (cost=%d bins_opened=%d max_open=%d)\n"
                        r.cost r.bins_opened r.max_open
                    else begin
                      Printf.printf
                        "verify: MISMATCH — materialized cost=%d bins_opened=%d \
                         max_open=%d items=%d\n"
                        r.cost r.bins_opened r.max_open
                        (Dbp_instance.Instance.length inst);
                      exit 1
                    end
                  end);
              `Ok ())))
    end
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream a lazy workload through an online policy in O(max concurrent \
          items) memory: no released-item log, closed bins retired into \
          aggregates, series bounded by LTTB decimation. Built for \
          multi-million-item traces the materializing `run' command cannot \
          hold.")
    Term.(
      ret
        (const run $ workload $ days $ rate $ seed_arg $ dims_arg $ shape_arg
       $ dim_mu_arg $ policy $ max_series $ retain $ verify $ gc_spec $ chunk
       $ recourse_arg $ recourse_mode_arg $ amortized_arg $ obs_term))

(* ---- adversary ---- *)

let adversary_cmd =
  let algorithm =
    Arg.(
      value & opt string "HA"
      & info [ "algorithm"; "a" ] ~docv:"NAME" ~doc:"Algorithm to attack.")
  in
  let run algorithm mu obs =
    match algorithm_of_name ~mu_hint:(float_of_int mu) algorithm with
    | None -> fail "unknown algorithm %S" algorithm
    | Some factory ->
        with_obs obs (fun () ->
            let outcome = Dbp_workloads.Adversary.run ~mu factory in
            let m = Dbp_analysis.Ratio.of_run outcome.result outcome.instance in
            Printf.printf
              "adversary vs %s at mu=%d: released %d items, target %d bins\n"
              algorithm mu outcome.items_released outcome.target_bins;
            Format.printf "%a@." Dbp_analysis.Ratio.pp m;
            Printf.printf "sqrt(log2 mu) = %.2f\n"
              (Dbp_core.Theory.sqrt_log_mu (float_of_int mu)));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Run the Theorem 4.3 adaptive adversary.")
    Term.(ret (const run $ algorithm $ mu_arg $ obs_term))

(* ---- fuzz ---- *)

let fuzz_cmd =
  let n =
    Arg.(
      value & opt int 100
      & info [ "num"; "n" ] ~docv:"N" ~doc:"Number of fuzzed instances.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write each finding's shrunk repro as a CSV instance into $(docv) \
             (created if missing), named repro_case<K>_<COMPONENT>.csv.")
  in
  let run n seed jobs out obs =
    set_jobs jobs;
    match
      match Sys.getenv_opt "DBP_CHECK_INJECT" with
      | None | Some "" -> Ok None
      | Some "cost" -> Ok (Some Dbp_check.Fuzz.Cost_off_by_one)
      | Some "moves" -> Ok (Some Dbp_check.Fuzz.Move_over_budget)
      | Some other -> Error other
    with
    | Error other ->
        fail "DBP_CHECK_INJECT=%S: expected \"cost\" or \"moves\" (or unset)"
          other
    | Ok inject ->
        let report =
          with_obs obs (fun () -> Dbp_check.Fuzz.run ?inject ~n ~seed ())
        in
        print_string (Dbp_check.Fuzz.summary report);
        (match out with
        | None -> ()
        | Some dir ->
            if report.findings <> [] && not (Sys.file_exists dir) then
              Sys.mkdir dir 0o755;
            List.iter
              (fun (f : Dbp_check.Fuzz.finding) ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "repro_case%d_%s.csv" f.case f.component)
                in
                Dbp_instance.Io.to_file ~path f.repro;
                Printf.printf "wrote %s\n" path)
              report.findings);
        if report.findings <> [] then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run every policy under the invariant \
          validator on generated and mutated instances, cross-check against \
          the naive reference engine and the from-scratch OPT_R, and shrink \
          any violation to a minimal repro. Deterministic in --seed; output \
          is bit-identical for any --jobs. Exits 1 if a violation was found.")
    Term.(ret (const run $ n $ seed_arg $ jobs_arg $ out $ obs_term))

(* ---- serve ---- *)

(* The daemon's transport adapters: Serve itself is fd-agnostic, so the
   unix dependency (raw reads, select, sockets) stays here. *)
let conn_of_fds ~in_fd ~out_fd =
  let oc = Unix.out_channel_of_descr out_fd in
  {
    Dbp_sim.Serve.recv = (fun b pos len -> Unix.read in_fd b pos len);
    ready =
      (fun () ->
        match Unix.select [ in_fd ] [] [] 0.0 with
        | readable, _, _ -> readable <> []);
    send =
      (fun s ->
        output_string oc s;
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let serve_policies = [ "FF"; "BF"; "WF"; "NF" ]

let serve_cmd =
  let policy =
    Arg.(
      value & opt string "FF"
      & info [ "policy"; "p" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Placement policy: %s (the any-fit rules with exact snapshot \
                codecs)."
               (String.concat ", " serve_policies)))
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Independent placement shards; item ids route by a salted hash \
             that is sticky across restarts.")
  in
  let batch =
    Arg.(
      value & opt int 512
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Max commands executed per batch. Batching is unobservable: \
             responses are identical for any value.")
  in
  let restore =
    Arg.(
      value
      & opt (some file) None
      & info [ "restore" ] ~docv:"SNAPSHOT"
          ~doc:
            "Resume from a snapshot file written by the `snapshot' command. \
             The snapshot's policy, shard count and dimensions override the \
             flags: subsequent placements are bit-identical to a daemon that \
             never stopped.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) and serve one \
             connection to completion (default: stdin/stdout).")
  in
  let run policy shards dims seed batch restore socket jobs obs =
    set_jobs jobs;
    if shards < 1 then fail "--shards must be >= 1"
    else if batch < 1 then fail "--batch must be >= 1"
    else
      match Dbp_sim.Fit_group.rule_of_code (String.uppercase_ascii policy) with
      | None ->
          fail "serve packs with %s (got %S)"
            (String.concat ", " serve_policies)
            policy
      | Some rule -> (
          let daemon =
            match restore with
            | Some path -> (
                match Dbp_sim.Serve.restore_from_file ~max_batch:batch path with
                | t -> Ok t
                | exception Failure m -> Error m
                | exception Sys_error m -> Error m)
            | None ->
                Ok (Dbp_sim.Serve.create ~shards ~dims ~seed ~max_batch:batch rule)
          in
          match daemon with
          | Error m -> fail "--restore: %s" m
          | Ok t ->
              (* A client that vanishes mid-write must surface as an
                 exception, not kill the process silently. *)
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              with_obs obs (fun () ->
                  match socket with
                  | None ->
                      Dbp_sim.Serve.run t
                        (conn_of_fds ~in_fd:Unix.stdin ~out_fd:Unix.stdout)
                  | Some path ->
                      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                      if Sys.file_exists path then Sys.remove path;
                      Unix.bind fd (Unix.ADDR_UNIX path);
                      Unix.listen fd 1;
                      Fun.protect
                        ~finally:(fun () ->
                          Unix.close fd;
                          if Sys.file_exists path then Sys.remove path)
                        (fun () ->
                          let client, _ = Unix.accept fd in
                          Fun.protect
                            ~finally:(fun () -> Unix.close client)
                            (fun () ->
                              Dbp_sim.Serve.run t
                                (conn_of_fds ~in_fd:client ~out_fd:client))));
              `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived placement daemon: line-oriented place/depart/\
          stats/snapshot/quit protocol on stdin or a Unix socket, tenants \
          sharded across domains, snapshot/restore with bit-identical \
          continuation.")
    Term.(
      ret
        (const run $ policy $ shards $ dims_arg $ seed_arg $ batch $ restore
       $ socket $ jobs_arg $ obs_term))

(* ---- drive ---- *)

let drive_cmd =
  let workloads = [ "cloud"; "general"; "aligned" ] in
  let workload =
    Arg.(
      value & opt string "cloud"
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Streaming workload to replay: %s."
               (String.concat ", " workloads)))
  in
  let days =
    Arg.(
      value & opt int 1
      & info [ "days" ] ~docv:"N" ~doc:"Horizon in simulated days (1440 ticks each).")
  in
  let rate =
    Arg.(
      value & opt float 2.0
      & info [ "rate" ] ~docv:"R" ~doc:"Arrival rate (mean items per tick at peak).")
  in
  let policy =
    Arg.(
      value & opt string "FF"
      & info [ "policy"; "p" ] ~docv:"NAME"
          ~doc:"Daemon policy (FF, BF, WF, NF).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N" ~doc:"Shard count for the spawned daemon.")
  in
  let skip =
    Arg.(
      value & opt int 0
      & info [ "skip" ] ~docv:"N"
          ~doc:
            "Skip the first $(docv) arrivals (they were already placed by the \
             daemon being resumed via --restore).")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop after sending $(docv) arrivals (counted from the start of \
             the trace) instead of finishing it.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:"Ask the daemon to snapshot to $(docv) after the last arrival.")
  in
  let restore =
    Arg.(
      value
      & opt (some file) None
      & info [ "restore" ] ~docv:"SNAPSHOT"
          ~doc:"Spawn the daemon resuming from this snapshot (pair with --skip).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After the full trace, compare the daemon's cost, bins opened and \
             peak open bins against an in-process Engine.run of the same \
             items; exits 1 on any difference. Requires --shards 1 and a \
             trace driven to completion.")
  in
  let batch =
    Arg.(
      value & opt int 512
      & info [ "batch" ] ~docv:"N"
          ~doc:"Arrivals per lockstep write/read exchange with the daemon.")
  in
  let run workload days rate seed policy shards skip stop_after snapshot restore
      verify batch obs =
    if days < 1 then fail "--days must be >= 1"
    else if rate <= 0.0 then fail "--rate must be positive"
    else if shards < 1 then fail "--shards must be >= 1"
    else if batch < 1 then fail "--batch must be >= 1"
    else if skip < 0 then fail "--skip must be >= 0"
    else if
      Dbp_sim.Fit_group.rule_of_code (String.uppercase_ascii policy) = None
    then
      fail "drive targets the serve policies %s (got %S)"
        (String.concat ", " serve_policies)
        policy
    else begin
      let open Dbp_workloads in
      let resource = Resource_shape.scalar in
      let source =
        match String.lowercase_ascii workload with
        | "cloud" ->
            Some
              (Cloud_traces.stream
                 ~config:{ Cloud_traces.default with days; base_rate = rate; resource }
                 ~seed ())
        | "general" ->
            Some
              (General_random.stream
                 ~config:
                   {
                     General_random.default with
                     horizon = days * 1440;
                     arrival_rate = rate;
                     resource;
                   }
                 ~seed ())
        | "aligned" ->
            Some
              (Aligned_random.stream
                 ~config:
                   { Aligned_random.default with horizon = days * 1440; rate; resource }
                 ~seed ())
        | _ -> None
      in
      match source with
      | None ->
          fail "unknown workload %S (try %s)" workload (String.concat ", " workloads)
      | Some source ->
          let inst = Dbp_instance.Event_source.to_instance source in
          let items = Dbp_instance.Instance.items inst in
          let n = Array.length items in
          let hi = match stop_after with Some m -> min m n | None -> n in
          if skip > hi then fail "--skip %d exceeds the %d arrivals to send" skip hi
          else if verify && (shards <> 1 || hi < n) then
            fail "--verify needs --shards 1 and a trace driven to completion"
          else begin
            with_obs obs (fun () ->
                let prog = Sys.executable_name in
                let argv =
                  Array.of_list
                    ([
                       prog; "serve";
                       "--policy"; String.uppercase_ascii policy;
                       "--shards"; string_of_int shards;
                       "--batch"; string_of_int batch;
                     ]
                    @ match restore with
                      | Some p -> [ "--restore"; p ]
                      | None -> [])
                in
                let from_daemon, to_daemon = Unix.open_process_args prog argv in
                let expect_ok what line =
                  if not (String.length line >= 2 && String.sub line 0 2 = "ok")
                  then begin
                    Printf.printf "drive: daemon rejected %s: %s\n" what line;
                    exit 1
                  end
                in
                (* Lockstep exchange: write up to --batch place lines, then
                   read exactly that many responses. The daemon answers a
                   batch at a time, so neither side can fill a pipe buffer
                   while the other waits. *)
                let k = ref skip in
                while !k < hi do
                  let upto = min hi (!k + batch) in
                  for i = !k to upto - 1 do
                    let r = items.(i) in
                    Printf.fprintf to_daemon "place %d %d %d %.9f\n" r.id
                      r.arrival r.departure
                      (Dbp_util.Load.to_float r.size)
                  done;
                  flush to_daemon;
                  for i = !k to upto - 1 do
                    expect_ok
                      (Printf.sprintf "arrival %d" items.(i).id)
                      (input_line from_daemon)
                  done;
                  k := upto
                done;
                (match snapshot with
                | None -> ()
                | Some path ->
                    Printf.fprintf to_daemon "snapshot %s\n" path;
                    flush to_daemon;
                    expect_ok "snapshot" (input_line from_daemon);
                    Printf.printf "drive: snapshot written to %s\n" path);
                let horizon =
                  1 + Array.fold_left (fun acc (r : Dbp_instance.Item.t) ->
                          max acc r.departure) 0 items
                in
                let stats =
                  if hi = n then begin
                    Printf.fprintf to_daemon "depart %d\nstats\n" horizon;
                    flush to_daemon;
                    expect_ok "depart" (input_line from_daemon);
                    let line = input_line from_daemon in
                    expect_ok "stats" line;
                    Some line
                  end
                  else begin
                    Printf.fprintf to_daemon "stats\n";
                    flush to_daemon;
                    let line = input_line from_daemon in
                    expect_ok "stats" line;
                    Some line
                  end
                in
                output_string to_daemon "quit\n";
                flush to_daemon;
                expect_ok "quit" (input_line from_daemon);
                (match Unix.close_process (from_daemon, to_daemon) with
                | Unix.WEXITED 0 -> ()
                | status ->
                    let what =
                      match status with
                      | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
                    in
                    Printf.printf "drive: daemon did not exit cleanly (%s)\n" what;
                    exit 1);
                match stats with
                | None -> ()
                | Some line ->
                    Printf.printf "drive: sent %d arrivals (of %d); daemon %s\n"
                      (hi - skip) n line;
                    if verify then begin
                      let cost, opened, max_open, got_items =
                        try
                          Scanf.sscanf line
                            "ok cost=%d open=%d opened=%d max=%d items=%d"
                            (fun c _ o m i -> (c, o, m, i))
                        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                          Printf.printf "drive: unparseable stats %S\n" line;
                          exit 1
                      in
                      let factory =
                        Dbp_baselines.Any_fit.policy
                          (Option.get
                             (Dbp_sim.Fit_group.rule_of_code
                                (String.uppercase_ascii policy)))
                      in
                      let r = Dbp_sim.Engine.run factory inst in
                      if
                        cost = r.cost && opened = r.bins_opened
                        && max_open = r.max_open && got_items = n
                      then
                        Printf.printf
                          "verify: OK — daemon bit-identical to Engine.run \
                           (cost=%d bins_opened=%d max_open=%d items=%d)\n"
                          cost opened max_open n
                      else begin
                        Printf.printf
                          "verify: MISMATCH — offline cost=%d bins_opened=%d \
                           max_open=%d items=%d\n"
                          r.cost r.bins_opened r.max_open n;
                        exit 1
                      end
                    end);
            `Ok ()
          end
    end
  in
  Cmd.v
    (Cmd.info "drive"
       ~doc:
         "Load-drive a `dbp serve' daemon (spawned as a child on pipes) with \
          a generated workload, in lockstep batches; optionally snapshot \
          mid-trace, resume from a snapshot, and verify the daemon's final \
          cost against an in-process Engine.run of the same items.")
    Term.(
      ret
        (const run $ workload $ days $ rate $ seed_arg $ policy $ shards $ skip
       $ stop_after $ snapshot $ restore $ verify $ batch $ obs_term))

let main =
  Cmd.group
    (Cmd.info "dbp" ~version:"1.0.0"
       ~doc:"Clairvoyant dynamic bin packing (Azar & Vainstein, SPAA 2017) — simulator and experiment harness.")
    [ list_cmd; experiment_cmd; all_cmd; run_cmd; stream_cmd; sweep_cmd; adversary_cmd; export_cmd; fuzz_cmd; serve_cmd; drive_cmd ]

let () = exit (Cmd.eval main)
