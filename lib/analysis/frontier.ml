open Dbp_util
open Dbp_sim

type point = {
  k : int;
  costs : Stats.summary;
  ratios : Stats.summary;
  moves : Stats.summary;
  moved_units : Stats.summary;
}

type curve = { algorithm : string; points : point list; monotone : bool }

type t = {
  mode : Recourse.mode;
  strategy : Recourse.strategy;
  opt : Stats.summary;
  opt_exact_fraction : float;
  curves : curve list;
}

let m_cells = Metrics.counter "frontier.cells"

(* Means of integer costs; a strict increase needs a full unit somewhere
   in the seed pool, so half a unit of slack absorbs float rounding
   without masking one. *)
let monotone_means means =
  let ok = ref true in
  List.iteri
    (fun i v ->
      if i > 0 && v > List.nth means (i - 1) +. 0.5 then ok := false)
    means;
  !ok

let run ?jobs ?(mode = Recourse.Per_event) ?(strategy = Recourse.Close_emptiest)
    ~algorithms ~workload ~ks ~seeds () =
  let ks = List.sort_uniq compare ks in
  if List.exists (fun k -> k < 0) ks then invalid_arg "Frontier.run: k < 0";
  Pool.with_default ?jobs @@ fun pool ->
  let bank = Pool.Bank.create (fun () -> Dbp_binpack.Solver.create ()) in
  (* One task per seed: the instance and its OPT_R estimate are computed
     once and shared by every (algorithm, k) run on that seed. Tasks are
     submitted and merged in seed order, so the frontier is bit-identical
     for any worker count. *)
  let per_seed =
    Pool.map pool
      (fun seed ->
        Metrics.incr m_cells;
        Trace.with_span "frontier.cell" ~args:[ ("seed", string_of_int seed) ]
        @@ fun () ->
        let inst = workload ~seed in
        let opt, kind = Pool.Bank.use bank (fun solver -> Ratio.opt_estimate ~solver inst) in
        let rows =
          List.map
            (fun (name, factory) ->
              List.map
                (fun k ->
                  let res =
                    Engine.run (Recourse.wrap ~k ~mode ~strategy factory) inst
                  in
                  (name, k, res.Engine.cost, res.Engine.moves, res.Engine.moved_units))
                ks)
            algorithms
        in
        (opt, kind, List.concat rows))
      seeds
  in
  let opts = Array.of_list (List.map (fun (o, _, _) -> float_of_int o) per_seed) in
  let exact =
    List.fold_left
      (fun acc (_, kind, _) ->
        acc + match kind with Ratio.Opt_r_exact -> 1 | _ -> 0)
      0 per_seed
  in
  let curves =
    List.map
      (fun (name, _) ->
        let points =
          List.map
            (fun k ->
              let cells =
                List.concat_map
                  (fun (opt, _, rows) ->
                    List.filter_map
                      (fun (n, k', cost, moves, units) ->
                        if n = name && k' = k then Some (opt, cost, moves, units)
                        else None)
                      rows)
                  per_seed
              in
              let arr = Array.of_list cells in
              let costs =
                Stats.summarize (Array.map (fun (_, c, _, _) -> float_of_int c) arr)
              in
              let ratios =
                Stats.summarize
                  (Array.map
                     (fun (opt, c, _, _) ->
                       if opt = 0 then 1.0 else float_of_int c /. float_of_int opt)
                     arr)
              in
              let moves =
                Stats.summarize (Array.map (fun (_, _, m, _) -> float_of_int m) arr)
              in
              let moved_units =
                Stats.summarize (Array.map (fun (_, _, _, u) -> float_of_int u) arr)
              in
              { k; costs; ratios; moves; moved_units })
            ks
        in
        let monotone =
          monotone_means (List.map (fun p -> p.costs.Stats.mean) points)
        in
        { algorithm = name; points; monotone })
      algorithms
  in
  {
    mode;
    strategy;
    opt = Stats.summarize opts;
    opt_exact_fraction =
      (if per_seed = [] then 1.0
       else float_of_int exact /. float_of_int (List.length per_seed));
    curves;
  }
