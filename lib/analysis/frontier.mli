(** The cost-vs-migration frontier: sweep the recourse budget [k] and
    chart how each algorithm's usage cost descends from its zero-recourse
    value toward the infinite-recourse optimum [OPT_R].

    One task per seed ({!Dbp_util.Pool}): the instance and its OPT_R
    estimate ({!Ratio.opt_estimate}) are computed once and shared across
    every (algorithm, k) run on that seed, and tasks merge in seed order
    — the frontier is bit-identical for any worker count. *)

open Dbp_instance
open Dbp_sim

type point = {
  k : int;  (** recourse budget *)
  costs : Dbp_util.Stats.summary;  (** over seeds *)
  ratios : Dbp_util.Stats.summary;  (** cost / OPT_R estimate, per seed *)
  moves : Dbp_util.Stats.summary;  (** migrations actually executed *)
  moved_units : Dbp_util.Stats.summary;  (** dim-0 size moved *)
}

type curve = {
  algorithm : string;
  points : point list;  (** ascending [k]; first point is [k = 0] when swept *)
  monotone : bool;
      (** mean cost non-increasing along the [k] axis (half-unit slack
          for float rounding of integer-cost means) *)
}

type t = {
  mode : Recourse.mode;
  strategy : Recourse.strategy;
  opt : Dbp_util.Stats.summary;  (** OPT_R estimate over seeds *)
  opt_exact_fraction : float;
  curves : curve list;
}

val run :
  ?jobs:int ->
  ?mode:Recourse.mode ->
  ?strategy:Recourse.strategy ->
  algorithms:(string * Policy.factory) list ->
  workload:(seed:int -> Instance.t) ->
  ks:int list ->
  seeds:int list ->
  unit ->
  t
(** Sweep [ks] (sorted and deduplicated; negative budgets raise) for
    every algorithm, wrapping each factory in
    {!Dbp_sim.Recourse.wrap}[ ~k ~mode ~strategy]. [k = 0] runs the
    factory unwrapped — the zero-recourse baseline endpoint of the
    frontier. *)
