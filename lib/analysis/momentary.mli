(** The alternative goal functions discussed in the paper's introduction,
    for comparing against MinUsageTime (experiment E20).

    The *momentary* goal function is the worst instantaneous ratio
    between the online algorithm's open bins and the momentary optimum;
    the *max-bins* goal function compares the peaks. The introduction
    argues both fail to distinguish "briefly bad" from "always bad"
    schedules — these measurements make that concrete. *)

open Dbp_instance
open Dbp_sim

type t = {
  usage_ratio : float;  (** MinUsageTime: ON(sigma) / OPT_R(sigma) *)
  momentary_ratio : float;
      (** max over t of ON_t / OPT_t (OPT_t = momentary optimal packing
          number; ticks where nothing is active are skipped) *)
  max_bins_ratio : float;  (** peak ON bins / peak OPT_t *)
}

val measure :
  ?solver:Dbp_binpack.Solver.t -> Engine.result -> Instance.t -> t
(** Requires the result of a completed run on exactly this instance.
    As with {!Ratio}, [?solver] must be private to the calling domain;
    the measurement itself is deterministic regardless of cache
    contents. *)
