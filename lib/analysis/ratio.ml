open Dbp_instance
open Dbp_sim
open Dbp_offline

type opt_kind = Opt_r_exact | Opt_r_proxy | Lower_bound_only

type measurement = {
  algorithm : string;
  cost : int;
  opt : int;
  opt_kind : opt_kind;
  ratio : float;
  bins_opened : int;
  max_open : int;
  moves : int;
  mu : float;
}

let opt_estimate ?solver inst =
  if Instance.is_empty inst then (0, Opt_r_exact)
  else begin
    let r = Opt_repack.exact ?solver inst in
    if r.exact then (r.cost, Opt_r_exact)
    else begin
      (* Budget blown somewhere: the computed value is only an upper
         bound; keep it but clamp with the provable lower bound and flag
         the row. *)
      let lb = (Bounds.compute inst).lower in
      if r.cost > 2 * lb then (lb, Lower_bound_only) else (r.cost, Opt_r_proxy)
    end
  end

let of_result ~mu (res : Engine.result) opt opt_kind =
  {
    algorithm = res.name;
    cost = res.cost;
    opt;
    opt_kind;
    ratio = (if opt = 0 then 1.0 else float_of_int res.cost /. float_of_int opt);
    bins_opened = res.bins_opened;
    max_open = res.max_open;
    moves = res.moves;
    mu;
  }

let of_run ?solver res inst =
  let opt, kind = opt_estimate ?solver inst in
  let mu = if Instance.is_empty inst then 1.0 else Instance.mu inst in
  of_result ~mu res opt kind

let measure ?solver ~name factory inst =
  let res = Engine.run factory inst in
  let m = of_run ?solver res inst in
  { m with algorithm = name }

let compare_algorithms ?solver algorithms inst =
  let solver = match solver with Some s -> s | None -> Dbp_binpack.Solver.create () in
  let opt, kind = opt_estimate ~solver inst in
  let mu = if Instance.is_empty inst then 1.0 else Instance.mu inst in
  List.map
    (fun (name, factory) ->
      let res = Engine.run factory inst in
      { (of_result ~mu res opt kind) with algorithm = name })
    algorithms

let pp ppf m =
  let kind =
    match m.opt_kind with
    | Opt_r_exact -> "exact"
    | Opt_r_proxy -> "proxy"
    | Lower_bound_only -> "LB"
  in
  Format.fprintf ppf "%s: cost=%d opt=%d(%s) ratio=%.3f" m.algorithm m.cost m.opt kind
    m.ratio;
  if m.moves > 0 then Format.fprintf ppf " moves=%d" m.moves
