(** Competitive-ratio measurement: run an algorithm and divide by the
    best optimum estimate available for the instance.

    The denominator is, in order of preference: the exact repacking
    optimum [OPT_R] (when every segment solves within budget), else the
    FFD-repack proxy clamped from below by the provable lower bound. The
    [opt_kind] field records which one was used so experiment tables can
    flag conservative rows.

    Every function here is pure up to the [?solver] cache it is handed,
    and a given instance always yields the same measurement whether or
    not the solve hit the cache — but the cache itself is a plain
    hashtable and must not be shared between concurrently running
    domains. Parallel callers ({!Sweep}) borrow a private solver per
    task from a {!Dbp_util.Pool.Bank}. *)

open Dbp_instance
open Dbp_sim

type opt_kind = Opt_r_exact | Opt_r_proxy | Lower_bound_only

type measurement = {
  algorithm : string;
  cost : int;
  opt : int;
  opt_kind : opt_kind;
  ratio : float;
  bins_opened : int;
  max_open : int;
  moves : int;  (** recourse migrations executed (0 without {!Dbp_sim.Recourse}) *)
  mu : float;
}

val opt_estimate : ?solver:Dbp_binpack.Solver.t -> Instance.t -> int * opt_kind
(** Best available estimate of [OPT_R] (bin x ticks). *)

val measure :
  ?solver:Dbp_binpack.Solver.t ->
  name:string ->
  Policy.factory ->
  Instance.t ->
  measurement
(** Run the policy on the instance and relate its cost to
    {!opt_estimate}. An empty instance yields ratio 1. *)

val of_run :
  ?solver:Dbp_binpack.Solver.t -> Engine.result -> Instance.t -> measurement
(** Like {!measure} for an already-executed run (used with the adaptive
    adversary, where the instance exists only after the run). *)

val compare_algorithms :
  ?solver:Dbp_binpack.Solver.t ->
  (string * Policy.factory) list ->
  Instance.t ->
  measurement list
(** Measure several algorithms on one instance, sharing the OPT
    computation. *)

val pp : Format.formatter -> measurement -> unit
