open Dbp_util

type point = {
  mu : float;
  ratios : Stats.summary;
  costs : Stats.summary;
  opt_exact_fraction : float;
}

type curve = { algorithm : string; points : point list }

let point_of_measurements ~mu measurements =
  let arr = Array.of_list measurements in
  let ratios = Stats.summarize (Array.map (fun (m : Ratio.measurement) -> m.ratio) arr) in
  let costs =
    Stats.summarize (Array.map (fun (m : Ratio.measurement) -> float_of_int m.cost) arr)
  in
  let exact =
    Array.fold_left
      (fun acc (m : Ratio.measurement) ->
        acc + match m.opt_kind with Ratio.Opt_r_exact -> 1 | _ -> 0)
      0 arr
  in
  {
    mu;
    ratios;
    costs;
    opt_exact_fraction = float_of_int exact /. float_of_int (Array.length arr);
  }

let m_cells = Metrics.counter "sweep.cells"
let m_adv_cells = Metrics.counter "sweep.adversarial_cells"

let solver_bank () = Pool.Bank.create (fun () -> Dbp_binpack.Solver.create ())

let record_stats solver_stats bank =
  match solver_stats with
  | None -> ()
  | Some r -> r := Dbp_binpack.Solver.merged_stats (Pool.Bank.all bank)

let run ?jobs ?solver_stats ~algorithms ~workload ~mus ~seeds () =
  Pool.with_default ?jobs @@ fun pool ->
  let bank = solver_bank () in
  (* One task per grid cell, in grid order: the instance is built once
     inside the task and every algorithm (plus the OPT_R estimate) is
     evaluated there, against a solver cache borrowed for the task's
     duration. [Pool.map] merges in submission order, so the curves are
     bit-identical whatever the worker count. *)
  let cells = List.concat_map (fun mu -> List.map (fun seed -> (mu, seed)) seeds) mus in
  let per_cell =
    Pool.map pool
      (fun (mu, seed) ->
        Metrics.incr m_cells;
        Trace.with_span "sweep.cell"
          ~args:[ ("mu", string_of_int mu); ("seed", string_of_int seed) ]
        @@ fun () ->
        let inst = workload ~mu ~seed in
        Pool.Bank.use bank (fun solver -> Ratio.compare_algorithms ~solver algorithms inst))
      cells
  in
  record_stats solver_stats bank;
  let n_seeds = List.length seeds in
  let arr = Array.of_list per_cell in
  List.map
    (fun (name, _) ->
      let points =
        List.mapi
          (fun i mu ->
            let ms =
              List.concat
                (List.init n_seeds (fun j ->
                     List.filter
                       (fun (m : Ratio.measurement) -> m.algorithm = name)
                       arr.((i * n_seeds) + j)))
            in
            point_of_measurements ~mu:(float_of_int mu) ms)
          mus
      in
      { algorithm = name; points })
    algorithms

let fit_curve ?candidates curve =
  let mus = Array.of_list (List.map (fun p -> p.mu) curve.points) in
  let ys = Array.of_list (List.map (fun p -> p.ratios.Stats.mean) curve.points) in
  Fit.best ?candidates ~mus ~ys ()

let adversarial ?jobs ?solver_stats ~algorithms ~mus () =
  Pool.with_default ?jobs @@ fun pool ->
  let bank = solver_bank () in
  let cells =
    List.concat_map
      (fun (name, factory) -> List.map (fun mu -> (name, factory, mu)) mus)
      algorithms
  in
  let points =
    Pool.map pool
      (fun (name, factory, mu) ->
        Metrics.incr m_adv_cells;
        Trace.with_span "sweep.adversarial.cell"
          ~args:[ ("algorithm", name); ("mu", string_of_int mu) ]
        @@ fun () ->
        let outcome = Dbp_workloads.Adversary.run ~mu factory in
        Pool.Bank.use bank (fun solver ->
            let m = Ratio.of_run ~solver outcome.result outcome.instance in
            point_of_measurements ~mu:(float_of_int mu) [ { m with algorithm = name } ]))
      cells
  in
  record_stats solver_stats bank;
  let n_mus = List.length mus in
  let arr = Array.of_list points in
  List.mapi
    (fun k (name, _) ->
      { algorithm = name; points = List.init n_mus (fun i -> arr.((k * n_mus) + i)) })
    algorithms
