(** [mu]-sweep driver: measure algorithms across a range of [mu] values
    and several seeds, producing the points the experiment tables and
    fits consume.

    Both drivers fan their grid out on a {!Dbp_util.Pool}: one task per
    grid cell, submitted and merged in grid order. Output is
    bit-identical for any worker count — each task builds its own
    instance from [(mu, seed)], shares no PRNG or accumulator with any
    other task, and borrows a private bin-packing solver cache from a
    bank (caching can never change a solver result, only its cost).
    [?jobs] forces a dedicated pool of that size; omitted, the shared
    pool sized by [DBP_JOBS] / {!Dbp_util.Pool.set_default_jobs} is
    used (default 1 = inline, no domains). *)

open Dbp_instance
open Dbp_sim

type point = {
  mu : float;  (** nominal mu of the sweep point *)
  ratios : Dbp_util.Stats.summary;  (** over seeds *)
  costs : Dbp_util.Stats.summary;
  opt_exact_fraction : float;  (** how many seeds had exact OPT_R *)
}

type curve = {
  algorithm : string;
  points : point list;
}

val run :
  ?jobs:int ->
  ?solver_stats:(int * int) ref ->
  algorithms:(string * Policy.factory) list ->
  workload:(mu:int -> seed:int -> Instance.t) ->
  mus:int list ->
  seeds:int list ->
  unit ->
  curve list
(** One task per [(mu, seed)] cell: the instance is built once and
    shared by all algorithms, which also share that cell's OPT_R
    computation. [?solver_stats] receives the summed (hits, misses) of
    the per-worker solver caches once the grid has joined. *)

val fit_curve : ?candidates:Fit.model list -> curve -> Fit.fitted
(** Fit the curve's mean ratios against its mu values. *)

val adversarial :
  ?jobs:int ->
  ?solver_stats:(int * int) ref ->
  algorithms:(string * Policy.factory) list ->
  mus:int list ->
  unit ->
  curve list
(** Like {!run} but each algorithm faces the Theorem 4.3 adaptive
    adversary (which generates a different instance per algorithm), so
    the grid is [(algorithm, mu)] and there is a single deterministic
    "seed". *)
