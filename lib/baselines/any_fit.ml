open Dbp_sim
module H = Dbp_binpack.Heuristics

let rule_name = function
  | H.First_fit -> "FF"
  | H.Best_fit -> "BF"
  | H.Worst_fit -> "WF"
  | H.Next_fit -> "NF"

let policy ?name rule store =
  let name = Option.value name ~default:(rule_name rule) in
  let group = Fit_group.create ~rule ~label:name () in
  {
    Policy.name;
    on_arrival = (fun ~now r -> Fit_group.place group store ~now r);
    on_departure =
      (fun ~now:_ _ ~bin ~closed -> Fit_group.note_depart group store bin ~closed);
    (* Every bin belongs to the one group, so a relocation is a
       departure-side resync at the source plus an insert-side one at
       the destination. *)
    on_move =
      Some
        (fun ~now:_ _ ~src ~dst ~closed ->
          Fit_group.note_depart group store src ~closed;
          Fit_group.note_insert group store dst);
  }

let first_fit store = policy H.First_fit store
let best_fit store = policy H.Best_fit store
let worst_fit store = policy H.Worst_fit store
let next_fit store = policy H.Next_fit store
