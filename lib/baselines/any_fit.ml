open Dbp_sim
module H = Dbp_binpack.Heuristics


(* One group over the whole store; the wiring lives with the group
   (Fit_group.policy) so the serve daemon can reuse it without a
   dependency on this library. *)
let policy ?name rule store = Fit_group.policy ?name rule store
let first_fit store = policy H.First_fit store
let best_fit store = policy H.Best_fit store
let worst_fit store = policy H.Worst_fit store
let next_fit store = policy H.Next_fit store
