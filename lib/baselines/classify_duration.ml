open Dbp_instance
open Dbp_sim

let policy ?(rule = Dbp_binpack.Heuristics.First_fit) () store =
  let classes : (int, Fit_group.t) Hashtbl.t = Hashtbl.create 16 in
  let owner : (Bin_store.bin_id, Fit_group.t) Hashtbl.t = Hashtbl.create 64 in
  let group_of cls =
    match Hashtbl.find_opt classes cls with
    | Some g -> g
    | None ->
        let g = Fit_group.create ~rule ~label:(Printf.sprintf "class%d" cls) () in
        Hashtbl.replace classes cls g;
        g
  in
  {
    Policy.name = "CD";
    on_arrival =
      (fun ~now r ->
        let g = group_of (Item.length_class r) in
        let bin = Fit_group.place g store ~now r in
        Hashtbl.replace owner bin g;
        bin);
    on_departure =
      (fun ~now:_ _ ~bin ~closed ->
        (match Hashtbl.find_opt owner bin with
        | Some g -> Fit_group.note_depart g store bin ~closed
        | None -> invalid_arg "Classify_duration: unowned bin");
        if closed then Hashtbl.remove owner bin);
    on_move =
      Some
        (fun ~now:_ _ ~src ~dst ~closed ->
          (match Hashtbl.find_opt owner src with
          | Some g -> Fit_group.note_depart g store src ~closed
          | None -> invalid_arg "Classify_duration: unowned bin");
          if closed then Hashtbl.remove owner src;
          match Hashtbl.find_opt owner dst with
          | Some g -> Fit_group.note_insert g store dst
          | None -> invalid_arg "Classify_duration: unowned bin");
  }
