open Dbp_instance
open Dbp_sim

let class_of ~classes ~mu_hint ~min_duration duration =
  if classes = 1 || mu_hint <= 1.0 then 0
  else begin
    let ratio = float_of_int duration /. float_of_int min_duration in
    let j = int_of_float (float_of_int classes *. log ratio /. log mu_hint) in
    max 0 (min (classes - 1) j)
  end

let policy ?(rule = Dbp_binpack.Heuristics.First_fit) ~classes ~mu_hint
    ?(min_duration = 1) () store =
  if classes < 1 then invalid_arg "Rt_classify.policy: classes < 1";
  if min_duration < 1 then invalid_arg "Rt_classify.policy: min_duration < 1";
  let groups : (int, Fit_group.t) Hashtbl.t = Hashtbl.create 16 in
  let owner : (Bin_store.bin_id, Fit_group.t) Hashtbl.t = Hashtbl.create 64 in
  let group_of cls =
    match Hashtbl.find_opt groups cls with
    | Some g -> g
    | None ->
        let g = Fit_group.create ~rule ~label:(Printf.sprintf "rt%d" cls) () in
        Hashtbl.replace groups cls g;
        g
  in
  {
    Policy.name = Printf.sprintf "RT(%d)" classes;
    on_arrival =
      (fun ~now r ->
        let cls = class_of ~classes ~mu_hint ~min_duration (Item.duration r) in
        let g = group_of cls in
        let bin = Fit_group.place g store ~now r in
        Hashtbl.replace owner bin g;
        bin);
    on_departure =
      (fun ~now:_ _ ~bin ~closed ->
        (match Hashtbl.find_opt owner bin with
        | Some g -> Fit_group.note_depart g store bin ~closed
        | None -> invalid_arg "Rt_classify: unowned bin");
        if closed then Hashtbl.remove owner bin);
    on_move =
      Some
        (fun ~now:_ _ ~src ~dst ~closed ->
          (match Hashtbl.find_opt owner src with
          | Some g -> Fit_group.note_depart g store src ~closed
          | None -> invalid_arg "Rt_classify: unowned bin");
          if closed then Hashtbl.remove owner src;
          match Hashtbl.find_opt owner dst with
          | Some g -> Fit_group.note_insert g store dst
          | None -> invalid_arg "Rt_classify: unowned bin");
  }

let optimal_classes ~mu =
  if mu <= 2.0 then 1
  else begin
    let bound n = (mu ** (1.0 /. float_of_int n)) +. float_of_int n +. 3.0 in
    let limit = max 1 (int_of_float (Float.log2 mu)) + 2 in
    let best = ref 1 in
    for n = 2 to limit do
      if bound n < bound !best then best := n
    done;
    !best
  end

let auto ~mu_hint store =
  policy ~classes:(optimal_classes ~mu:mu_hint) ~mu_hint () store
