open Dbp_util
open Dbp_instance
open Dbp_sim

(* SpanGreedy picks, among open bins that fit the item, the first bin
   minimizing the span extension max(0, departure - horizon), where a
   bin's horizon is the latest departure ever inserted into it
   (monotone: members only depart, so fitting now implies fitting
   forever). It inserts only when the minimal extension is strictly
   below the item's duration, else opens a new bin.

   The old implementation scanned every open bin per arrival. The scan
   decomposes into two Fit_tree descents over (residual, score=horizon)
   leaves:
   - a bin with horizon >= departure has extension 0, the global
     minimum; the scan would keep the first such bin, which is exactly
     [first_fit_by ~need ~min_score:departure] (extension 0 is always
     < duration, so this is an unconditional insert);
   - otherwise every fitting bin has extension departure - horizon > 0,
     minimized by the maximum horizon, first-attained on ties — exactly
     [best_score_idx ~need]. *)
let policy store =
  let index = Fit_tree.create () in
  let bin_of_slot : Bin_store.bin_id Vec.t = Vec.create () in
  let slot_of_bin = Imap.create ~capacity:16 () in
  let resid bin = Load.to_units (Bin_store.residual store bin) in
  let on_arrival ~now (r : Item.t) =
    let need = Load.to_units r.size in
    let insert_at slot ~horizon =
      let bin = Vec.get bin_of_slot slot in
      Bin_store.insert store bin r;
      Fit_tree.set index slot ~residual:(resid bin) ~score:horizon;
      bin
    in
    let open_fresh () =
      let bin = Bin_store.open_bin store ~now ~label:"SG" in
      Bin_store.insert store bin r;
      let slot = Fit_tree.push index ~residual:(resid bin) ~score:r.departure in
      Vec.push bin_of_slot bin;
      Imap.set slot_of_bin bin slot;
      bin
    in
    if Bin_store.dims store = 1 then begin
      match Fit_tree.first_fit_by index ~need ~min_score:r.departure with
      | slot when slot >= 0 ->
          (* Extension 0: the horizon already covers the item. *)
          insert_at slot ~horizon:(Fit_tree.score index slot)
      | _ -> (
          match Fit_tree.best_score_idx index ~need with
          | slot
            when slot >= 0 && r.departure - Fit_tree.score index slot < Item.duration r
            ->
              insert_at slot ~horizon:r.departure
          | _ -> open_fresh ())
    end
    else begin
      (* Vector mode: one linear pass computes both descents' answers
         over the bins that fit in {e every} dimension — the first
         extension-0 slot (horizon >= departure) and the first
         max-horizon slot. Same selection as the scalar branch, with
         the all-dimension fit predicate. *)
      let e0, bs, bsc =
        Fit_tree.fold_active index ~init:(-1, -1, min_int)
          ~f:(fun ((e0, bs, bsc) as acc) slot res score ->
            if
              e0 >= 0 || res < need
              || not (Bin_store.fits_extra store (Vec.get bin_of_slot slot) r.extra)
            then acc
            else if score >= r.departure then (slot, bs, bsc)
            else if score > bsc then (e0, slot, score)
            else acc)
      in
      if e0 >= 0 then insert_at e0 ~horizon:(Fit_tree.score index e0)
      else if bs >= 0 && r.departure - bsc < Item.duration r then
        insert_at bs ~horizon:r.departure
      else open_fresh ()
    end
  in
  let on_departure ~now:_ _ ~bin ~closed =
    let slot = Imap.find slot_of_bin bin in
    if closed then begin
      Fit_tree.deactivate index slot;
      Imap.remove slot_of_bin bin
    end
    else
      (* Departures free capacity the placement index must see; the
         horizon is a high-water mark and survives them. *)
      Fit_tree.set index slot ~residual:(resid bin)
        ~score:(Fit_tree.score index slot)
  in
  (* A relocation frees capacity at the source (or closes it) and
     consumes capacity at the destination; the destination's horizon is
     a high-water mark, so it only ever grows — to the moved item's
     departure if that exceeds it. *)
  let on_move ~now:_ (r : Item.t) ~src ~dst ~closed =
    let slot = Imap.find slot_of_bin src in
    if closed then begin
      Fit_tree.deactivate index slot;
      Imap.remove slot_of_bin src
    end
    else
      Fit_tree.set index slot ~residual:(resid src)
        ~score:(Fit_tree.score index slot);
    let dslot = Imap.find slot_of_bin dst in
    Fit_tree.set index dslot ~residual:(resid dst)
      ~score:(max (Fit_tree.score index dslot) r.departure)
  in
  { Policy.name = "SpanGreedy"; on_arrival; on_departure; on_move = Some on_move }
