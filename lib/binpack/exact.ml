open Dbp_util

type result = { bins : int; exact : bool; nodes : int }
type packing = int array array

exception Node_budget

(* All-equal item sets (the adversary workloads produce these in bulk)
   have a closed form: floor(C/s) items per bin. *)
let all_equal units =
  Array.length units > 0 && Array.for_all (fun s -> s = units.(0)) units

let check_desc units =
  let n = Array.length units in
  for i = 0 to n - 1 do
    if units.(i) > Load.capacity then
      invalid_arg "Exact.solve_desc: item larger than a bin";
    if units.(i) < 0 then invalid_arg "Exact.solve_desc: negative size";
    if i > 0 && units.(i - 1) < units.(i) then
      invalid_arg "Exact.solve_desc: units not sorted non-increasing"
  done

(* First-fit in array order; on a non-increasing array this is FFD.
   Returns the bin count and, when asked, the per-bin contents. *)
let first_fit_desc ~want_packing units =
  let c = Load.capacity in
  let residuals = Vec.create () in
  let contents : int list Vec.t = Vec.create () in
  Array.iter
    (fun u ->
      match Vec.find_index (fun r -> r >= u) residuals with
      | Some j ->
          Vec.set residuals j (Vec.get residuals j - u);
          if want_packing then Vec.set contents j (u :: Vec.get contents j)
      | None ->
          Vec.push residuals (c - u);
          if want_packing then Vec.push contents [ u ])
    units;
  let count = Vec.length residuals in
  let packing =
    if want_packing then Some (Array.map Array.of_list (Vec.to_array contents))
    else None
  in
  (count, packing)

let trivial_packing ~want_packing ~bins ~per_bin units =
  if not want_packing then None
  else begin
    let n = Array.length units in
    Some
      (Array.init bins (fun b ->
           let lo = b * per_bin in
           Array.sub units lo (min per_bin (n - lo))))
  end

let solve_desc ?(node_limit = 200_000) ?lower ?incumbent ?(want_packing = false)
    units =
  check_desc units;
  let n = Array.length units in
  let c = Load.capacity in
  if n = 0 then
    ({ bins = 0; exact = true; nodes = 0 }, if want_packing then Some [||] else None)
  else if all_equal units then begin
    let per_bin = if units.(0) = 0 then n else c / units.(0) in
    let bins = if per_bin = 0 then n else Ints.ceil_div n per_bin in
    let per_bin = if per_bin = 0 then 1 else per_bin in
    ({ bins; exact = true; nodes = 0 },
     trivial_packing ~want_packing ~bins ~per_bin units)
  end
  else begin
    let lower =
      match lower with Some lb -> lb | None -> Lower_bounds.best_desc units
    in
    let start_best, start_packing =
      match incumbent with
      | Some ub -> (ub, None)
      | None -> first_fit_desc ~want_packing units
    in
    if start_best <= lower then
      ({ bins = start_best; exact = true; nodes = 0 }, start_packing)
    else begin
      (* suffix_sum.(i) = total units of items i..n-1, for the volume
         completion bound. *)
      let suffix_sum = Array.make (n + 1) 0 in
      for i = n - 1 downto 0 do
        suffix_sum.(i) <- suffix_sum.(i + 1) + units.(i)
      done;
      let nodes = ref 0 in
      let residuals = Vec.create () in
      (* Free capacity across open bins, kept as a running counter
         updated on place/unplace instead of a fold at every node. *)
      let free = ref 0 in
      let assign = Array.make n (-1) in
      let best = ref start_best in
      let best_assign = ref None in
      let record used =
        if used < !best then begin
          best := used;
          if want_packing then best_assign := Some (Array.copy assign)
        end
      in
      let exception Optimal_found in
      let rec place i =
        incr nodes;
        if !nodes > node_limit then raise Node_budget;
        if i = n then begin
          record (Vec.length residuals);
          if !best <= lower then raise Optimal_found
        end
        else begin
          let used = Vec.length residuals in
          let need =
            if suffix_sum.(i) > !free then
              Ints.ceil_div (suffix_sum.(i) - !free) c
            else 0
          in
          if used + need < !best then begin
            let s = units.(i) in
            (* Perfect fit dominates every other placement. *)
            match Vec.find_index (fun r -> r = s) residuals with
            | Some j ->
                Vec.set residuals j 0;
                free := !free - s;
                assign.(i) <- j;
                place (i + 1);
                Vec.set residuals j s;
                free := !free + s
            | None ->
                let tried = Hashtbl.create 8 in
                for j = 0 to used - 1 do
                  let r = Vec.get residuals j in
                  if r >= s && not (Hashtbl.mem tried r) then begin
                    Hashtbl.add tried r ();
                    Vec.set residuals j (r - s);
                    free := !free - s;
                    assign.(i) <- j;
                    place (i + 1);
                    Vec.set residuals j r;
                    free := !free + s
                  end
                done;
                (* New bin: only worthwhile if it can still beat the
                   incumbent. *)
                if used + 1 < !best then begin
                  Vec.push residuals (c - s);
                  free := !free + (c - s);
                  assign.(i) <- used;
                  place (i + 1);
                  ignore (Vec.pop residuals);
                  free := !free - (c - s)
                end
          end
        end
      in
      let exact =
        try
          place 0;
          true
        with
        | Optimal_found -> true
        | Node_budget -> !best = lower
      in
      let packing =
        if not want_packing then None
        else
          match !best_assign with
          | Some a ->
              let bins = Array.make !best [] in
              for i = n - 1 downto 0 do
                bins.(a.(i)) <- units.(i) :: bins.(a.(i))
              done;
              Some (Array.map Array.of_list bins)
          | None -> start_packing
      in
      ({ bins = !best; exact; nodes = !nodes }, packing)
    end
  end

let min_bins ?node_limit sizes =
  Array.iter
    (fun s ->
      if Load.to_units s > Load.capacity then
        invalid_arg "Exact.min_bins: item larger than a bin")
    sizes;
  let units = Array.map Load.to_units sizes in
  Array.sort (fun a b -> Int.compare b a) units;
  fst (solve_desc ?node_limit units)
