(** Exact bin packing by branch-and-bound (Martello-Toth style).

    Items are placed in non-increasing size order; branches try existing
    bins with distinct residuals, then a fresh bin; subtrees are cut with
    the {!Lower_bounds} volume completion bound and a perfect-fit
    dominance rule. The free capacity across open bins is a running
    counter updated on place/unplace, not a per-node fold. A node budget
    keeps worst cases bounded: when it is exhausted the best feasible
    solution found so far (at worst the starting incumbent) is returned
    and flagged as inexact. *)

open Dbp_util

type result = {
  bins : int;  (** bin count of the best packing found. *)
  exact : bool;  (** [true] iff [bins] is provably optimal. *)
  nodes : int;  (** search nodes explored. *)
}

type packing = int array array
(** Size units per bin, one inner array per bin. *)

val min_bins : ?node_limit:int -> Load.t array -> result
(** [min_bins sizes] packs all items. Default [node_limit] is 200_000.
    Raises [Invalid_argument] if a size exceeds one bin. *)

val solve_desc :
  ?node_limit:int ->
  ?lower:int ->
  ?incumbent:int ->
  ?want_packing:bool ->
  int array ->
  result * packing option
(** [solve_desc units] packs size units already sorted non-increasing —
    the multiset is sorted once by the caller and never copied or
    re-sorted here (raises [Invalid_argument] otherwise, or if a unit is
    negative or exceeds one bin).

    [?lower] supplies an externally computed lower bound and replaces
    the internal {!Lower_bounds.best_desc} computation; it MUST be a
    valid lower bound for the multiset or the result is undefined. A
    lower bound stronger than the internal one (e.g. the perturbation
    bound [BP(S) - #departures] of an incremental sweep) only prunes
    more and certifies earlier: it can never change an [exact] value.

    [?incumbent] warm-starts the search from a known feasible bin count
    (e.g. the previous segment's packing patched by the delta items)
    instead of running a cold FFD. A warm incumbent is an upper bound on
    the optimum, so it too never changes an [exact] value — only the
    node count and, if the budget runs out first, the inexact fallback.

    The returned packing (requested with [~want_packing:true]) realizes
    [result.bins] bins, except that [None] is returned when the search
    never improved on a caller-supplied [?incumbent] — the caller
    already holds such a packing. *)
