open Dbp_util

let l1_total total = Ints.ceil_div total Load.capacity

let l1 sizes =
  l1_total (Array.fold_left (fun acc s -> acc + Load.to_units s) 0 sizes)

(* Martello & Toth's L2. For a threshold k in [0, C/2]:
     N1 = items with size > C - k        (each needs a private bin)
     N2 = items with size in (C/2, C-k]  (pairwise incompatible)
     N3 = items with size in [k, C/2]
   L2(k) = |N1| + |N2| + max(0, ceil((sum N3 - (|N2|*C - sum N2)) / C)).
   Only thresholds equal to some item size (or 0) can change the value, so
   we iterate over distinct sizes <= C/2. [units] must be sorted
   non-increasing; the value of L2 only depends on the multiset. *)
let l2_desc units =
  let c = Load.capacity in
  let n = Array.length units in
  let thresholds =
    let acc = ref [ 0 ] in
    Array.iter (fun s -> if s <= c / 2 then acc := s :: !acc) units;
    List.sort_uniq Int.compare !acc
  in
  let value_at k =
    let n1 = ref 0 and n2 = ref 0 and sum2 = ref 0 and sum3 = ref 0 in
    for i = 0 to n - 1 do
      let s = units.(i) in
      if s > c - k then incr n1
      else if s > c / 2 then begin
        incr n2;
        sum2 := !sum2 + s
      end
      else if s >= k then sum3 := !sum3 + s
    done;
    let spare2 = (!n2 * c) - !sum2 in
    let extra = if !sum3 > spare2 then Ints.ceil_div (!sum3 - spare2) c else 0 in
    !n1 + !n2 + extra
  in
  List.fold_left (fun acc k -> max acc (value_at k)) 0 thresholds

let l2 sizes =
  let units = Array.map Load.to_units sizes in
  Array.sort (fun a b -> Int.compare b a) units;
  l2_desc units

let best_desc units =
  max (l1_total (Array.fold_left ( + ) 0 units)) (l2_desc units)

let best sizes = max (l1 sizes) (l2 sizes)
