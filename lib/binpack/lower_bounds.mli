(** Lower bounds on the optimal number of bins for a static item set.

    [l1] is the volume bound; [l2] is Martello & Toth's bound, which
    dominates [l1]. Used to prune the exact branch-and-bound solver and to
    certify heuristic solutions as optimal.

    The [_total]/[_desc] variants operate on raw size units so callers
    that already maintain a running unit total and a sorted expansion
    (the incremental OPT_R sweep) never re-extract or re-sort. *)

open Dbp_util

val l1 : Load.t array -> int
(** ceil of total size. 0 for an empty set. *)

val l1_total : int -> int
(** {!l1} from a pre-computed total of size units (O(1)). *)

val l2 : Load.t array -> int
(** Martello-Toth L2 bound: maximizes over thresholds [k <= capacity/2]
    the count of large items plus the volume of medium items that cannot
    share bins with them. Always [>= l1]. *)

val l2_desc : int array -> int
(** {!l2} on size units already sorted non-increasing (not copied, not
    re-sorted, never mutated). *)

val best : Load.t array -> int
(** [max (l1 sizes) (l2 sizes)]. *)

val best_desc : int array -> int
(** {!best} on size units already sorted non-increasing. *)
