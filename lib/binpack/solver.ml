open Dbp_util

module Key = struct
  type t = int array

  (* Monomorphic int-array loop: no polymorphic-compare dispatch per
     element. *)
  let equal (a : t) (b : t) =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec loop i =
      i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && loop (i + 1))
    in
    loop 0

  (* Splitmix-style rolling hash over the whole (short) count-vector key;
     the generic [Hashtbl.hash_param] walked the boxed representation and
     still had to be told to look 500 levels deep. *)
  let hash (k : t) =
    let h = ref (Array.length k) in
    for i = 0 to Array.length k - 1 do
      h := Ints.splitmix_mix (!h lxor Array.unsafe_get k i)
    done;
    !h land max_int
end

module Cache = Hashtbl.Make (Key)

type counters = {
  mutable segments : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable bracket_resolved : int;
  mutable warm_starts : int;
  mutable bb_searches : int;
  mutable bb_nodes : int;
}

(* Registry mirrors of the per-solver record: every bump below writes
   both, so the process-wide [Metrics] view needs no merge step and the
   per-solver accessors ([counters], [merged_counters]) stay exact.
   Only [segments] is jobs-invariant ([Det]): a parallel sweep splits
   its cache across per-worker solvers, so how a segment gets resolved
   (cache hit vs bracket vs search) — and hence the node total — depends
   on the worker count. *)
let m_segments = Metrics.counter "solver.segments"
let m_cache_hits = Metrics.counter ~stability:Metrics.Sched "solver.cache_hits"
let m_cache_misses = Metrics.counter ~stability:Metrics.Sched "solver.cache_misses"
let m_bracket = Metrics.counter ~stability:Metrics.Sched "solver.bracket_resolved"
let m_warm = Metrics.counter ~stability:Metrics.Sched "solver.warm_starts"
let m_bb_searches = Metrics.counter ~stability:Metrics.Sched "solver.bb_searches"
let m_bb_nodes = Metrics.counter ~stability:Metrics.Sched "solver.bb_nodes"

let bump_segments c = c.segments <- c.segments + 1; Metrics.incr m_segments
let bump_hit c = c.cache_hits <- c.cache_hits + 1; Metrics.incr m_cache_hits
let bump_miss c = c.cache_misses <- c.cache_misses + 1; Metrics.incr m_cache_misses

let bump_bracket c =
  c.bracket_resolved <- c.bracket_resolved + 1;
  Metrics.incr m_bracket

let bump_warm c = c.warm_starts <- c.warm_starts + 1; Metrics.incr m_warm

let zero_counters () =
  {
    segments = 0;
    cache_hits = 0;
    cache_misses = 0;
    bracket_resolved = 0;
    warm_starts = 0;
    bb_searches = 0;
    bb_nodes = 0;
  }

type t = {
  limit : int;
  cache : Exact.result Cache.t;
  c : counters;
}

let create ?(node_limit = 20_000) () =
  { limit = node_limit; cache = Cache.create 1024; c = zero_counters () }

let node_limit t = t.limit

(* Run-length encode a non-increasing unit array into the canonical
   ascending count-vector key — the same key {!Dbp_util.Multiset.key}
   produces, so both entry points share cache lines. *)
let key_of_desc units =
  let n = Array.length units in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || units.(i) <> units.(i - 1) then incr distinct
  done;
  let k = Array.make (2 * !distinct) 0 in
  let pos = ref (2 * !distinct) in
  let i = ref 0 in
  while !i < n do
    let v = units.(!i) in
    let j = ref !i in
    while !j < n && units.(!j) = v do
      incr j
    done;
    pos := !pos - 2;
    k.(!pos) <- v;
    k.(!pos + 1) <- !j - !i;
    i := !j
  done;
  k

let note_search c (r : Exact.result) =
  c.bb_nodes <- c.bb_nodes + r.nodes;
  Metrics.add m_bb_nodes r.nodes;
  if r.nodes > 0 then begin
    c.bb_searches <- c.bb_searches + 1;
    Metrics.incr m_bb_searches
  end

(* Only exact results enter the cache: they are canonical (the true BP
   of the multiset, whatever incumbent or session produced them), so
   sharing a cache across instances — or splitting it per worker —
   can never change a value. A budget-limited result depends on the
   session's warm incumbent and is recomputed instead. *)
let remember t key (r : Exact.result) = if r.exact then Cache.add t.cache key r

let min_bins t sizes =
  Array.iter
    (fun s ->
      if Load.to_units s > Load.capacity then
        invalid_arg "Exact.min_bins: item larger than a bin")
    sizes;
  let units = Array.map Load.to_units sizes in
  Array.sort (fun a b -> Int.compare b a) units;
  let key = key_of_desc units in
  match Cache.find_opt t.cache key with
  | Some r ->
      bump_hit t.c;
      r
  | None ->
      bump_miss t.c;
      let r, _ = Exact.solve_desc ~node_limit:t.limit units in
      note_search t.c r;
      remember t key r;
      r

let stats t = (t.c.cache_hits, t.c.cache_misses)

let counters t = { t.c with segments = t.c.segments }

let add_counters into c =
  into.segments <- into.segments + c.segments;
  into.cache_hits <- into.cache_hits + c.cache_hits;
  into.cache_misses <- into.cache_misses + c.cache_misses;
  into.bracket_resolved <- into.bracket_resolved + c.bracket_resolved;
  into.warm_starts <- into.warm_starts + c.warm_starts;
  into.bb_searches <- into.bb_searches + c.bb_searches;
  into.bb_nodes <- into.bb_nodes + c.bb_nodes

let merged_counters solvers =
  let acc = zero_counters () in
  List.iter (fun t -> add_counters acc t.c) solvers;
  acc

let merged_stats solvers =
  let c = merged_counters solvers in
  (c.cache_hits, c.cache_misses)

module Inc = struct
  type bin = { mutable space : int; mutable items : int list }

  type session = {
    solver : t;
    ms : Multiset.t;
    mutable bins : bin list;  (** bin-opening order, the first-fit scan order *)
    mutable nbins : int;
    mutable prev : Exact.result option;
    mutable pending_departures : int;
  }

  let start solver =
    {
      solver;
      ms = Multiset.create ();
      bins = [];
      nbins = 0;
      prev = None;
      pending_departures = 0;
    }

  let multiset sess = sess.ms

  let add sess u =
    Multiset.add sess.ms u;
    let rec place = function
      | [] ->
          sess.bins <- sess.bins @ [ { space = Load.capacity - u; items = [ u ] } ];
          sess.nbins <- sess.nbins + 1
      | b :: rest ->
          if b.space >= u then begin
            b.space <- b.space - u;
            b.items <- u :: b.items
          end
          else place rest
    in
    place sess.bins

  let rec remove_first u = function
    | [] -> invalid_arg "Solver.Inc.remove: packing out of sync"
    | x :: rest -> if x = u then rest else x :: remove_first u rest

  let remove sess u =
    Multiset.remove sess.ms u;
    let rec extract = function
      | [] -> invalid_arg "Solver.Inc.remove: packing out of sync"
      | b :: rest ->
          if List.mem u b.items then begin
            b.items <- remove_first u b.items;
            b.space <- b.space + u;
            if b.items = [] then begin
              sess.nbins <- sess.nbins - 1;
              rest
            end
            else b :: rest
          end
          else b :: extract rest
    in
    sess.bins <- extract sess.bins;
    sess.pending_departures <- sess.pending_departures + 1

  let bin_of_items items =
    let total = List.fold_left ( + ) 0 items in
    { space = Load.capacity - total; items }

  let set_packing sess (p : Exact.packing) =
    sess.bins <- Array.to_list (Array.map (fun b -> bin_of_items (Array.to_list b)) p);
    sess.nbins <- Array.length p

  (* Fresh first-fit over the (descending) expansion = FFD, producing a
     replacement packing when the patched one has drifted. *)
  let ffd_bins units =
    let bins = ref [] in
    let nbins = ref 0 in
    Array.iter
      (fun u ->
        let rec place = function
          | [] ->
              bins := !bins @ [ { space = Load.capacity - u; items = [ u ] } ];
              incr nbins
          | b :: rest ->
              if b.space >= u then begin
                b.space <- b.space - u;
                b.items <- u :: b.items
              end
              else place rest
        in
        place !bins)
      units;
    (!bins, !nbins)

  let adopt_ffd_if_tighter sess =
    let fresh, count = ffd_bins (Multiset.expansion sess.ms) in
    if count < sess.nbins then begin
      sess.bins <- fresh;
      sess.nbins <- count
    end

  let finish sess r =
    sess.prev <- Some r;
    sess.pending_departures <- 0;
    r

  let solve sess =
    let t = sess.solver in
    let c = t.c in
    bump_segments c;
    if Multiset.is_empty sess.ms then
      finish sess { Exact.bins = 0; exact = true; nodes = 0 }
    else begin
      let key = Multiset.key sess.ms in
      match Cache.find_opt t.cache key with
      | Some r ->
          bump_hit c;
          (* Keep the maintained packing honest: if repeated patches have
             grown it past the known optimum, a fresh FFD usually
             tightens it back for the next bracket. *)
          if sess.nbins > r.Exact.bins then adopt_ffd_if_tighter sess;
          finish sess r
      | None ->
          bump_miss c;
          let units = Multiset.expansion sess.ms in
          let lb =
            max
              (Lower_bounds.l1_total (Multiset.total_units sess.ms))
              (Lower_bounds.l2_desc units)
          in
          (* Perturbation bracket: removing d items lowers BP by at most
             d, so BP >= prev - pending_departures whenever the previous
             segment was solved to proof. *)
          let lower =
            match sess.prev with
            | Some p when p.Exact.exact ->
                max lb (p.Exact.bins - sess.pending_departures)
            | _ -> lb
          in
          let bracket () =
            bump_bracket c;
            let r = { Exact.bins = sess.nbins; exact = true; nodes = 0 } in
            remember t key r;
            finish sess r
          in
          if sess.nbins <= lower then bracket ()
          else begin
            (* Warm FFD over the cached expansion: often tighter than a
               patched packing that has drifted across many events. *)
            adopt_ffd_if_tighter sess;
            if sess.nbins <= lower then bracket ()
            else begin
              bump_warm c;
              let r, packing =
                Exact.solve_desc ~node_limit:t.limit ~lower
                  ~incumbent:sess.nbins ~want_packing:true units
              in
              note_search c r;
              (match packing with Some p -> set_packing sess p | None -> ());
              remember t key r;
              finish sess r
            end
          end
    end
end
