open Dbp_util

module Key = struct
  type t = int array

  let equal = ( = )

  (* The default [Hashtbl.hash] only inspects ~10 values; multisets here
     can be long and share prefixes, so hash deeply. *)
  let hash (k : t) = Hashtbl.hash_param 500 500 k
end

module Cache = Hashtbl.Make (Key)

type t = {
  node_limit : int;
  cache : Exact.result Cache.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(node_limit = 20_000) () =
  { node_limit; cache = Cache.create 1024; hits = 0; misses = 0 }

let min_bins t sizes =
  let key = Array.map Load.to_units sizes in
  Array.sort Int.compare key;
  match Cache.find_opt t.cache key with
  | Some r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      let r = Exact.min_bins ~node_limit:t.node_limit sizes in
      Cache.add t.cache key r;
      r

let stats t = (t.hits, t.misses)

let merged_stats solvers =
  List.fold_left
    (fun (h, m) t -> (h + t.hits, m + t.misses))
    (0, 0) solvers
