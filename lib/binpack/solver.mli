(** Memoizing front-end for momentary bin packing.

    The repacking optimum evaluates [BP(active items at t)] on every
    event interval; consecutive intervals usually share their size
    multiset, so results are cached keyed by the sorted size multiset. *)

open Dbp_util

type t

val create : ?node_limit:int -> unit -> t
(** Fresh solver with an empty cache. Default [node_limit] is 20_000 —
    deliberately lower than {!Exact.min_bins}'s default: the repacking
    optimum solves thousands of segments and a budget-limited segment
    only ever overestimates by the tail of the FFD gap. *)

val min_bins : t -> Load.t array -> Exact.result
(** Optimal (or budget-limited, see {!Exact.result.exact}) bin count for
    the multiset of sizes. *)

val stats : t -> int * int
(** [(hits, misses)] of the cache since creation. *)

val merged_stats : t list -> int * int
(** Summed {!stats} over a bank of solvers. A solver is not domain-safe
    (its cache is a plain hashtable), so parallel sweeps give each
    concurrent task a private solver from a {!Dbp_util.Pool.Bank} and
    merge the counters with this at join time. Caching never changes a
    result — {!Exact.min_bins} is deterministic for a given size multiset
    and node budget — so splitting one cache into per-worker caches
    affects speed only, never values. *)
