(** Memoizing front-end for momentary bin packing, with an incremental
    mode for event sweeps.

    The repacking optimum evaluates [BP(active items at t)] on every
    event interval; consecutive intervals differ by the handful of items
    that arrived or departed at one timestamp. Results are cached keyed
    by the count-vector of the size multiset, and the incremental
    {!Inc} session resolves most segments without ever entering
    branch-and-bound: the previous segment's value brackets the new one
    ([|BP(S +- x) - BP(S)| <= 1] per item), and the previous packing —
    patched by the delta items — is a ready-made warm incumbent.

    Only provably-exact results are cached. An exact value is canonical
    for its multiset — no incumbent, session history, or cache split can
    change it — so sharing one cache across instances, or giving each
    pool worker a private cache from a {!Dbp_util.Pool.Bank}, affects
    speed only, never values. Budget-limited (inexact) results DO depend
    on the session's warm incumbent; they are deliberately not cached,
    keeping every value a deterministic function of the instance alone,
    which is what makes parallel sweeps bit-identical across worker
    counts. *)

open Dbp_util

module Key : sig
  type t = int array

  val equal : t -> t -> bool
  (** Monomorphic int-array equality — no polymorphic compare. *)

  val hash : t -> int
  (** Splitmix-style rolling hash over every element of the (short)
      count-vector key. *)
end

type counters = {
  mutable segments : int;  (** {!Inc.solve} calls *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable bracket_resolved : int;
      (** segments pinned by lower bound = feasible incumbent, no search *)
  mutable warm_starts : int;  (** branch-and-bound calls seeded with a warm incumbent *)
  mutable bb_searches : int;  (** solves that actually explored nodes *)
  mutable bb_nodes : int;  (** total branch-and-bound nodes explored *)
}

type t

val create : ?node_limit:int -> unit -> t
(** Fresh solver with an empty cache. Default [node_limit] is 20_000 —
    deliberately lower than {!Exact.min_bins}'s default: the repacking
    optimum solves thousands of segments and a budget-limited segment
    only ever overestimates by the tail of the FFD gap. *)

val node_limit : t -> int

val min_bins : t -> Load.t array -> Exact.result
(** Optimal (or budget-limited, see {!Exact.result.exact}) bin count for
    the multiset of sizes. One sort, then a shared count-vector cache
    lookup; misses run a cold {!Exact.solve_desc} on the already-sorted
    units. *)

val stats : t -> int * int
(** [(cache hits, cache misses)] since creation. *)

val counters : t -> counters
(** Snapshot of all incremental-path counters since creation. Every
    increment is mirrored into the process-wide {!Dbp_util.Metrics}
    registry under [solver.*] names (all but [solver.segments] as
    scheduling-dependent, since parallel sweeps split the cache across
    per-worker solvers); this accessor reads the per-solver record. *)

val merged_stats : t list -> int * int
(** Summed {!stats} over a bank of solvers (see module doc on why
    per-worker caches are value-neutral). *)

val merged_counters : t list -> counters
(** Summed {!counters} over a bank of solvers. *)

(** One incremental sweep session: a multiset of active size units
    maintained under arrivals/departures, plus the previous segment's
    result and a feasible packing of the current multiset, patched per
    event. A session belongs to one instance sweep on one solver; the
    solver's cache outlives it. *)
module Inc : sig
  type session

  val start : t -> session

  val multiset : session -> Multiset.t
  (** The active size multiset. Read-only for callers. *)

  val add : session -> int -> unit
  (** An item of that many size units arrives: O(log k) multiset update
      plus a first-fit patch of the maintained packing. *)

  val remove : session -> int -> unit
  (** One active item of that many size units departs. Raises
      [Invalid_argument] if no such item is active. *)

  val solve : session -> Exact.result
  (** Bin count for the current multiset. Resolution order: cache hit;
      perturbation bracket (lower bound meets the patched packing, no
      search); warm FFD; branch-and-bound warm-started from the best
      feasible packing at hand with the bracket-strengthened lower
      bound. Values equal a from-scratch solve whenever [exact] (see
      module doc). *)
end
