open Dbp_util
open Dbp_instance
open Dbp_workloads

type injection = Cost_off_by_one | Move_over_budget

type finding = {
  case : int;
  family : string;
  mu : int;
  component : string;
  violations : Violation.t list;
  repro : Instance.t;
  replayed : bool;
}

type report = {
  cases : int;
  policy_runs : int;
  by_family : (string * int) list;
  findings : finding list;
}

let families =
  [
    "general"; "uniform"; "aligned"; "binary"; "pinning"; "cdkiller"; "cloud";
    "adversary"; "mutated"; "general2d"; "cloud2d"; "aligned3d"; "recourse1";
    "recourse2"; "recourse_waste"; "recourse2d";
  ]

(* Recourse families replay a base workload with every policy wrapped in
   a migration budget; the validator then gets the same budget declared
   so any over-move is a finding. One family per strategy, plus a
   vector one so multi-dimensional evacuation plans stay covered. *)
let recourse_of_family = function
  | "recourse1" -> Some (1, Dbp_sim.Recourse.Per_event, Dbp_sim.Recourse.Close_emptiest)
  | "recourse2" -> Some (2, Dbp_sim.Recourse.Per_event, Dbp_sim.Recourse.Consolidate)
  | "recourse_waste" ->
      Some (4, Dbp_sim.Recourse.Amortized, Dbp_sim.Recourse.Waste_threshold 1.25)
  | "recourse2d" ->
      Some (1, Dbp_sim.Recourse.Per_event, Dbp_sim.Recourse.Close_emptiest)
  | _ -> None

let mu_choices = [| 2; 4; 8; 16; 32; 64 |]

type case_desc = { index : int; cfamily : string; cmu : int; cseed : int }

(* Instances are kept deliberately small: every case also runs the
   from-scratch OPT_R reference (cold branch-and-bound per segment), so
   a fuzz run's budget goes into breadth of cases, not depth of any
   one instance. *)
let small_general ?(resource = Resource_shape.scalar) ~dist ~mu ~seed () =
  General_random.generate
    ~config:
      {
        General_random.default with
        horizon = 24;
        arrival_rate = 0.5;
        max_duration = mu;
        dist;
        resource;
      }
    ~seed ()

let small_aligned ?(resource = Resource_shape.scalar) ~mu ~seed () =
  Aligned_random.generate
    ~config:
      {
        Aligned_random.default with
        top_class = Ints.ceil_log2 mu;
        horizon = 32;
        resource;
      }
    ~seed ()

let small_cloud ?(resource = Resource_shape.scalar) ~seed () =
  Cloud_traces.generate
    ~config:{ Cloud_traces.default with days = 1; base_rate = 0.02; resource }
    ~seed ()

let instance_of_case c =
  let mu = c.cmu and seed = c.cseed in
  match c.cfamily with
  | "general" -> small_general ~dist:General_random.Dyadic_uniform ~mu ~seed ()
  | "uniform" -> small_general ~dist:General_random.Uniform ~mu ~seed ()
  | "aligned" -> small_aligned ~mu ~seed ()
  | "binary" -> Binary_input.generate ~mu
  | "pinning" ->
      let k = min mu 4 in
      Pinning.generate ~groups:2 ~k ~mu ()
  | "cdkiller" -> Cd_killer.generate ~mu ()
  | "cloud" -> small_cloud ~seed ()
  | "adversary" ->
      (* The adaptive adversary interrogates a live policy; replaying
         its released sequence against every policy is exactly the kind
         of adversarial-but-valid input the validator should digest. *)
      (Adversary.run ~mu Dbp_baselines.Any_fit.first_fit).instance
  | "mutated" ->
      let prng = Prng.create ~seed in
      let base =
        match Prng.choice prng [| `General; `Aligned; `Binary |] with
        | `General ->
            small_general ~dist:General_random.Dyadic_uniform ~mu ~seed ()
        | `Aligned -> small_aligned ~mu ~seed ()
        | `Binary -> Binary_input.generate ~mu
      in
      Mutate.mutate prng ~ops:12 base
  (* Vector families, one per resource shape: every policy runs the
     vector engine paths under the per-dimension validator, and any
     repro round-trips through the vector CSV columns. *)
  | "general2d" ->
      let resource =
        { Resource_shape.dims = 2; shape = Correlated 0.8; dim_mu = [||] }
      in
      small_general ~resource ~dist:General_random.Dyadic_uniform ~mu ~seed ()
  | "cloud2d" ->
      let resource =
        { Resource_shape.dims = 2; shape = Adversarial; dim_mu = [||] }
      in
      small_cloud ~resource ~seed ()
  | "aligned3d" ->
      let resource =
        { Resource_shape.dims = 3; shape = Independent; dim_mu = [| 0.6; 0.3 |] }
      in
      small_aligned ~resource ~mu ~seed ()
  | "recourse1" -> small_general ~dist:General_random.Dyadic_uniform ~mu ~seed ()
  | "recourse2" -> small_aligned ~mu ~seed ()
  | "recourse_waste" -> small_cloud ~seed ()
  | "recourse2d" ->
      let resource =
        { Resource_shape.dims = 2; shape = Correlated 0.8; dim_mu = [||] }
      in
      small_general ~resource ~dist:General_random.Dyadic_uniform ~mu ~seed ()
  | f -> invalid_arg ("Fuzz: unknown family " ^ f)

let policies ~mu_hint =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("BF", Dbp_baselines.Any_fit.best_fit);
    ("WF", Dbp_baselines.Any_fit.worst_fit);
    ("NF", Dbp_baselines.Any_fit.next_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
    ("RT", Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
  ]

let run_case ?inject ~solver c =
  let inst = instance_of_case c in
  let mu_hint = if Instance.is_empty inst then 1.0 else Instance.mu inst in
  (* Lemma oracles are stateful (shadow tables); build fresh ones per
     evaluation so the shrinker's re-runs start clean. *)
  (* The lemma oracles shadow the paper's scalar admission/fit rules;
     on vector instances the policies legitimately deviate (a join the
     scalar rule would take can violate an extra dimension), so they
     only attach at dims = 1. The packing validator and naive diff
     cover every dimensionality. *)
  let rc = recourse_of_family c.cfamily in
  (* The lemma oracles shadow the un-repacked admission state; under a
     migration budget the policies legitimately drift from it, so they
     attach only to zero-recourse scalar cases. *)
  let policy_oracles name =
    if Instance.is_empty inst || Instance.dims inst > 1 || rc <> None then []
    else
      match name with
      | "HA" -> [ Oracles.ha ~mu:mu_hint ]
      | "CDFF" -> [ Oracles.cdff () ]
      | _ -> []
  in
  let tamper_for name =
    match inject with
    | Some Cost_off_by_one when name = "FF" ->
        Some (fun (r : Dbp_sim.Engine.result) -> { r with cost = r.cost + 1 })
    | _ -> None
  in
  (* [Move_over_budget]: give FF a real budget of one move per event but
     declare zero to the validator — every executed move is then an
     over-move, proving the migration oracle detects, shrinks and
     replays. *)
  let recourse_for name =
    match (inject, rc) with
    | Some Move_over_budget, _ when name = "FF" ->
        let k, mode, strategy =
          Option.value rc
            ~default:(1, Dbp_sim.Recourse.Per_event, Dbp_sim.Recourse.Close_emptiest)
        in
        (Some (k, mode, strategy), Some (0, Dbp_sim.Recourse.Per_event))
    | _, Some (k, mode, strategy) -> (Some (k, mode, strategy), Some (k, mode))
    | _, None -> (None, None)
  in
  let eval_policy name factory candidate =
    let wrap_cfg, budget = recourse_for name in
    let factory =
      match wrap_cfg with
      | Some (k, mode, strategy) -> Dbp_sim.Recourse.wrap ~k ~mode ~strategy factory
      | None -> factory
    in
    let res, vs =
      Validator.run ~oracles:(policy_oracles name) ?tamper:(tamper_for name)
        ?budget factory candidate
    in
    vs @ Naive.diff res (Naive.run factory candidate)
  in
  let components =
    List.map
      (fun (name, factory) -> (name, fun candidate -> eval_policy name factory candidate))
      (policies ~mu_hint)
    @ [ ("OPT_R", fun candidate -> Oracles.opt_r ~solver candidate) ]
    @
    if c.cfamily = "binary" then
      [
        ( "corollary58",
          fun candidate ->
            let res = Dbp_sim.Engine.run (Dbp_core.Cdff.policy ()) candidate in
            Oracles.corollary58 ~mu:c.cmu res );
      ]
    else []
  in
  let findings =
    List.filter_map
      (fun (component, evalf) ->
        match evalf inst with
        | [] -> None
        | first :: _ as violations ->
            let target = first.Violation.oracle in
            let keep candidate =
              List.exists (fun v -> v.Violation.oracle = target) (evalf candidate)
            in
            let repro = Shrink.minimize ~keep inst in
            let replayed =
              match Io.of_string (Io.to_string repro) with
              | candidate -> keep candidate
              | exception _ -> false
            in
            Some
              {
                case = c.index;
                family = c.cfamily;
                mu = c.cmu;
                component;
                violations;
                repro;
                replayed;
              })
      components
  in
  (findings, List.length (policies ~mu_hint))

let run ?jobs ?inject ~n ~seed () =
  if n < 0 then invalid_arg "Fuzz.run: n must be non-negative";
  let master = Prng.create ~seed in
  let fam = Array.of_list families in
  let cases =
    List.init n (fun index ->
        let cfamily = fam.(index mod Array.length fam) in
        let mu0 = Prng.choice master mu_choices in
        (* The adaptive adversary grows quadratically in mu; cap it. *)
        let cmu = if cfamily = "adversary" then min mu0 32 else mu0 in
        let cseed = Int64.to_int (Prng.bits64 master) land max_int in
        { index; cfamily; cmu; cseed })
  in
  let bank = Pool.Bank.create (fun () -> Dbp_binpack.Solver.create ()) in
  let per_case =
    Pool.with_default ?jobs (fun pool ->
        Pool.map pool
          (fun c -> Pool.Bank.use bank (fun solver -> run_case ?inject ~solver c))
          cases)
  in
  {
    cases = n;
    policy_runs = List.fold_left (fun acc (_, k) -> acc + k) 0 per_case;
    by_family =
      List.map
        (fun f ->
          (f, List.length (List.filter (fun c -> c.cfamily = f) cases)))
        families;
    findings = List.concat_map fst per_case;
  }

let summary r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "fuzz: %d cases, %d policy runs, %d findings\n" r.cases
    r.policy_runs (List.length r.findings);
  Buffer.add_string buf "cases per family:";
  List.iter (fun (f, k) -> Printf.bprintf buf " %s=%d" f k) r.by_family;
  Buffer.add_char buf '\n';
  List.iter
    (fun f ->
      Printf.bprintf buf "FINDING case %d [%s mu=%d] %s\n" f.case f.family f.mu
        f.component;
      List.iter
        (fun v -> Printf.bprintf buf "  %s\n" (Violation.to_string v))
        f.violations;
      Printf.bprintf buf "  repro: %d items, io round-trip %s\n"
        (Instance.length f.repro)
        (if f.replayed then "replays" else "FAILED");
      List.iter
        (fun line -> if line <> "" then Printf.bprintf buf "    %s\n" line)
        (String.split_on_char '\n' (Io.to_string f.repro)))
    r.findings;
  Buffer.contents buf
