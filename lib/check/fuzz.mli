(** The deterministic differential fuzzer behind [dbp fuzz].

    Each case draws one instance from a rotating family of workload
    generators (the structured generators, the Theorem 4.3 adversary's
    released sequence, and {!Dbp_workloads.Mutate} neighbourhoods of the
    structured inputs), then runs {b every} online policy under the
    {!Validator} with its algorithm-specific {!Oracles}, cross-checks
    the engine against the {!Naive} reference, checks OPT_R's
    incremental sweep against the from-scratch solver, and — on binary
    inputs — CDFF's series against Corollary 5.8.

    Violating cases are handed to {!Shrink.minimize} with a predicate
    that re-runs exactly the component that fired (same oracle name);
    each finding carries the shrunk repro and whether the repro survives
    an {!Dbp_instance.Io} round-trip with the violation intact.

    Determinism: the case list is derived sequentially from the master
    seed, every per-case computation is a function of the case alone,
    and cases fan out via {!Dbp_util.Pool.map} (ordered submit/await)
    with per-worker {!Dbp_binpack.Solver} caches from a
    {!Dbp_util.Pool.Bank} — so the report is bit-identical for any
    [--jobs]. *)

open Dbp_instance

type injection = Cost_off_by_one | Move_over_budget
    (** Test-only faults, enabled from the CLI only via the
        [DBP_CHECK_INJECT] environment variable — never in normal runs.
        [Cost_off_by_one] adds 1 to the engine-reported cost of one
        policy per case before the validator's post-run audit, proving
        the ["cost-integral"] oracle and the shrinker actually fire.
        [Move_over_budget] gives one policy per case a real migration
        budget of one move per event while declaring zero to the
        validator, so every executed relocation is an over-move —
        proving the ["migration"] oracle detects, shrinks and
        replays. *)

type finding = {
  case : int;  (** case index, [0 .. n-1] *)
  family : string;
  mu : int;  (** the family's mu parameter *)
  component : string;  (** policy name, ["OPT_R"] or ["corollary58"] *)
  violations : Violation.t list;  (** as detected, pre-shrinking *)
  repro : Instance.t;  (** shrunk witness; same oracle still fires *)
  replayed : bool;  (** repro survives an Io round-trip *)
}

type report = {
  cases : int;
  policy_runs : int;
  by_family : (string * int) list;  (** cases per family, rotation order *)
  findings : finding list;
}

val families : string list

val run : ?jobs:int -> ?inject:injection -> n:int -> seed:int -> unit -> report
(** Fuzz [n] cases from master [seed]. [jobs] defaults to
    {!Dbp_util.Pool.default_jobs}. *)

val summary : report -> string
(** Human-readable report. Deliberately free of anything that varies
    with [jobs] or wall-clock, so outputs can be compared byte-for-byte
    across worker counts. *)
