open Dbp_instance
open Dbp_sim

type result = {
  cost : int;
  bins_opened : int;
  max_open : int;
  moves : int;
  series : (int * int) array;
  assignment : (int * Bin_store.bin_id) list;
}

type event = Depart of Item.t | Arrive of Item.t

let event_key = function
  | Depart r -> (r.Item.departure, 0, r.Item.id)
  | Arrive r -> (r.Item.arrival, 1, r.Item.id)

let run factory inst =
  let store = Bin_store.create ~dims:(Instance.dims inst) () in
  let policy = factory store in
  let events =
    Array.to_list (Instance.items inst)
    |> List.concat_map (fun r -> [ Depart r; Arrive r ])
    |> List.sort (fun a b -> compare (event_key a) (event_key b))
  in
  (* Own bookkeeping, independent of the store's accounting. *)
  let opened_at = Hashtbl.create 32 in
  let occupancy = Hashtbl.create 32 in
  let open_now = ref 0 and max_open = ref 0 and cost = ref 0 in
  let assignment = ref [] in
  let series = ref [] in
  let record t =
    match !series with
    | (t', _) :: rest when t' = t -> series := (t, !open_now) :: rest
    | _ -> series := (t, !open_now) :: !series
  in
  (* Recourse moves happen inside the policy callbacks (against the
     store); replay the log entries appended since the last drain into
     the naive tables. A move never opens a bin (destinations are
     already open), so only occupancy — and closes, when a source
     empties — need mirroring. *)
  let drained = ref 0 in
  let drain_moves () =
    let n = Bin_store.move_logged store in
    while !drained < n do
      let t, _, src, dst = Bin_store.move_entry store !drained in
      incr drained;
      let c = Option.value (Hashtbl.find_opt occupancy src) ~default:0 - 1 in
      Hashtbl.replace occupancy src c;
      if c <= 0 then begin
        decr open_now;
        cost := !cost + (t - Hashtbl.find opened_at src)
      end;
      Hashtbl.replace occupancy dst
        (1 + Option.value (Hashtbl.find_opt occupancy dst) ~default:0)
    done
  in
  List.iter
    (fun ev ->
      match ev with
      | Arrive r ->
          let now = r.Item.arrival in
          let bin = policy.Policy.on_arrival ~now r in
          if not (Hashtbl.mem opened_at bin) then begin
            Hashtbl.replace opened_at bin now;
            incr open_now;
            if !open_now > !max_open then max_open := !open_now
          end;
          Hashtbl.replace occupancy bin
            (1 + Option.value (Hashtbl.find_opt occupancy bin) ~default:0);
          assignment := (r.Item.id, bin) :: !assignment;
          drain_moves ();
          record now
      | Depart r ->
          let now = r.Item.departure in
          let bin, closed = Bin_store.remove store ~now ~item_id:r.Item.id in
          policy.Policy.on_departure ~now r ~bin ~closed;
          let n = Option.value (Hashtbl.find_opt occupancy bin) ~default:0 - 1 in
          Hashtbl.replace occupancy bin n;
          if n <= 0 then begin
            decr open_now;
            cost := !cost + (now - Hashtbl.find opened_at bin)
          end;
          drain_moves ();
          record now)
    events;
  {
    cost = !cost;
    bins_opened = Hashtbl.length opened_at;
    max_open = !max_open;
    moves = Bin_store.move_count store;
    series = Array.of_list (List.rev !series);
    assignment = List.rev !assignment;
  }

let diff (e : Engine.result) (n : result) =
  let vs = ref [] in
  let emit fmt = Printf.ksprintf (fun d -> vs := { Violation.oracle = "naive-diff"; time = -1; detail = d } :: !vs) fmt in
  if e.cost <> n.cost then emit "cost: engine %d, naive %d" e.cost n.cost;
  if e.bins_opened <> n.bins_opened then
    emit "bins_opened: engine %d, naive %d" e.bins_opened n.bins_opened;
  if e.max_open <> n.max_open then emit "max_open: engine %d, naive %d" e.max_open n.max_open;
  if e.moves <> n.moves then emit "moves: engine %d, naive %d" e.moves n.moves;
  if e.series <> n.series then
    emit "series: engine has %d samples, naive %d (first mismatch %s)"
      (Array.length e.series) (Array.length n.series)
      (let rec first i =
         if i >= Array.length e.series || i >= Array.length n.series then
           Printf.sprintf "at index %d (length)" (min (Array.length e.series) (Array.length n.series))
         else if e.series.(i) <> n.series.(i) then
           let t, a = e.series.(i) and t', b = n.series.(i) in
           Printf.sprintf "at index %d: engine (%d,%d), naive (%d,%d)" i t a t' b
         else first (i + 1)
       in
       first 0);
  if Bin_store.assignment e.store <> n.assignment then
    emit "assignment logs differ";
  List.rev !vs
