(** A deliberately naive reference engine for differential testing.

    {!Dbp_sim.Engine} earns its speed from a departure heap, growable
    vectors and the store's intrusive live-list — all machinery that can
    hide ordering bugs. This engine recomputes the same run with none of
    it: the full event list is materialized and sorted up front
    (departures before arrivals at equal ticks, ties by item id — the
    paper's [t^-] convention), bins are tracked in plain association
    tables, and the cost is accumulated directly from open/close ticks.
    Policies are deterministic functions of the store, so a correct
    engine pair must agree event for event. *)

open Dbp_instance
open Dbp_sim

type result = {
  cost : int;
  bins_opened : int;
  max_open : int;
  moves : int;  (** recourse relocations the policy executed *)
  series : (int * int) array;
      (** (tick, open bins after the tick's events), event ticks only. *)
  assignment : (int * Bin_store.bin_id) list;  (** placement order *)
}

val run : Policy.factory -> Instance.t -> result
(** Replay the instance on a fresh policy instance. *)

val diff : Engine.result -> result -> Violation.t list
(** Field-by-field comparison; one violation (oracle ["naive-diff"]) per
    mismatching field. *)
