open Dbp_util
open Dbp_instance
open Dbp_sim

(* ---- Hybrid Algorithm (Section 3) ---- *)

let parse_cd label = Scanf.sscanf_opt label "CD(%d,%d)%!" (fun i c -> (i, c))

let ha ~mu =
  (* Shadow per-type active load, maintained from the raw event stream —
     never read from the policy. *)
  let type_load : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let open_cd store ty ~except =
    List.exists
      (fun b -> b <> except && parse_cd (Bin_store.label store b) = Some ty)
      (Bin_store.open_bins store)
  in
  let on_arrival ~store ~now:_ (r : Item.t) bin =
    let ty = Item.ha_type r in
    let i = fst ty in
    let total =
      Option.value (Hashtbl.find_opt type_load ty) ~default:0 + Load.to_units r.size
    in
    Hashtbl.replace type_load ty total;
    let label = Bin_store.label store bin in
    let threshold = Dbp_core.Ha.threshold_units Dbp_core.Ha.default_threshold i in
    if label = "GN" then begin
      if total > threshold then
        Some
          (Printf.sprintf
             "item %d of type (%d,%d) admitted to GN with active type load %d units > \
              threshold %d units"
             r.id (fst ty) (snd ty) total threshold)
      else if open_cd store ty ~except:(-1) then
        Some
          (Printf.sprintf
             "item %d placed in GN while an open CD(%d,%d) bin of its type exists" r.id
             (fst ty) (snd ty))
      else begin
        let gn_open =
          List.length
            (List.filter
               (fun b -> Bin_store.label store b = "GN")
               (Bin_store.open_bins store))
        in
        let bound = Dbp_core.Theory.gn_bound mu in
        if float_of_int gn_open > bound +. 1e-9 then
          Some
            (Printf.sprintf
               "%d GN bins open, above the Lemma 3.3 bound 2+4*sqrt(log2 mu) = %.3f \
                (mu = %g)"
               gn_open bound mu)
        else None
      end
    end
    else
      match parse_cd label with
      | Some ty' when ty' <> ty ->
          Some
            (Printf.sprintf
               "item %d of type (%d,%d) placed in bin %d of type (%d,%d) — CD bins \
                must stay type-pure"
               r.id (fst ty) (snd ty) bin (fst ty') (snd ty'))
      | Some _ ->
          (* A fresh CD bin (this item is alone in it, and no other CD bin
             of the type is open) is only legal above the GN threshold. *)
          let fresh =
            (match Bin_store.contents store bin with [ only ] -> only.Item.id = r.id | _ -> false)
            && not (open_cd store ty ~except:bin)
          in
          if fresh && total <= threshold then
            Some
              (Printf.sprintf
                 "item %d opened a fresh CD(%d,%d) bin though its type load %d units \
                  is within the GN threshold %d units"
                 r.id (fst ty) (snd ty) total threshold)
          else None
      | None ->
          Some (Printf.sprintf "item %d placed in a bin labelled %S — HA only opens GN or CD(i,c) bins" r.id label)
  in
  let on_departure ~store:_ ~now:_ (r : Item.t) ~bin:_ ~closed:_ =
    let ty = Item.ha_type r in
    let remaining =
      Option.value (Hashtbl.find_opt type_load ty) ~default:0 - Load.to_units r.size
    in
    if remaining > 0 then Hashtbl.replace type_load ty remaining
    else Hashtbl.remove type_load ty;
    None
  in
  { Validator.oracle_name = "ha-lemma33"; on_arrival; on_departure }

(* ---- CDFF (Section 5) ---- *)

let cdff () =
  (* Re-derive the paper's segment partition from the arrival stream:
     a segment starting at s with top class n covers [s, s + 2^n); the
     top class is learned from arrivals at the segment's first tick; at
     any later tick t the working class is m_t = min n (ntz (t - s)). *)
  let seg = ref None in
  let on_arrival ~store ~now (r : Item.t) bin =
    let cls = Item.length_class r in
    let start, top =
      match !seg with
      | Some (start, top) when now < start + Ints.pow2 !top -> (start, top)
      | _ ->
          let top = ref cls in
          seg := Some (now, top);
          (now, top)
    in
    if now = start && cls > !top then top := cls;
    let m = if now = start then !top else min !top (Ints.ntz (now - start)) in
    let expected = Printf.sprintf "row%d" (max 0 (m - cls)) in
    let actual = Bin_store.label store bin in
    if actual <> expected then
      Some
        (Printf.sprintf
           "item %d (class %d) at t=%d landed in %S, Lemma 5.5 mandates %S (segment \
            start %d, top class %d, m_t = %d)"
           r.id cls now actual expected start !top m)
    else None
  in
  let on_departure ~store:_ ~now:_ _ ~bin:_ ~closed:_ = None in
  { Validator.oracle_name = "cdff-lemma55"; on_arrival; on_departure }

let corollary58 ~mu (result : Dbp_sim.Engine.result) =
  if not (Ints.is_pow2 mu) then invalid_arg "Oracles.corollary58: mu must be a power of two";
  let bits = Ints.floor_log2 mu in
  let vs = ref [] in
  Array.iter
    (fun (t, c) ->
      let expected =
        if t < mu then Some (Dbp_analysis.Binary_strings.max0 ~bits t + 1)
        else if t = mu then Some 0
        else None
      in
      match expected with
      | Some e when e <> c ->
          vs :=
            Violation.make ~oracle:"cdff-corollary58" ~time:t
              "CDFF keeps %d bins open after tick %d of sigma_%d, Corollary 5.8 says \
               max0(binary %d) + 1 = %d"
              c t mu t e
            :: !vs
      | Some _ -> ()
      | None ->
          vs :=
            Violation.make ~oracle:"cdff-corollary58" ~time:t
              "sigma_%d has no events after t = %d, yet the series samples t = %d" mu mu
              t
            :: !vs)
    result.series;
  List.rev !vs

(* ---- OPT_R (Sections 3 and 4 machinery) ---- *)

let opt_r ?solver inst =
  if Instance.is_empty inst then []
  else begin
    let vs = ref [] in
    let emit ~time fmt =
      Printf.ksprintf
        (fun detail -> vs := { Violation.oracle = "optr"; time; detail } :: !vs)
        fmt
    in
    let segs = Dbp_offline.Opt_repack.segments_exact ?solver inst in
    let inc_cost =
      List.fold_left (fun acc (t0, t1, b, _) -> acc + (b * (t1 - t0))) 0 segs
    in
    let inc_exact = List.for_all (fun (_, _, _, e) -> e) segs in
    (* Incremental sweep vs the from-scratch reference. *)
    let rres, rseries, _nodes = Dbp_offline.Opt_repack.reference inst in
    if inc_exact && rres.exact && inc_cost <> rres.cost then
      emit ~time:(-1) "incremental OPT_R = %d but the from-scratch reference finds %d"
        inc_cost rres.cost;
    if List.length segs <> List.length rseries then
      emit ~time:(-1)
        "incremental sweep produced %d segments, the reference %d — the event \
         partition must not depend on the solving path"
        (List.length segs) (List.length rseries)
    else
      List.iter2
        (fun (t0, t1, b, e) (t0', t1', b') ->
          if t0 <> t0' || t1 <> t1' then
            emit ~time:t0 "segment [%d,%d) in the incremental sweep is [%d,%d) in the reference"
              t0 t1 t0' t1'
          else if e && rres.exact && b <> b' then
            emit ~time:t0
              "segment [%d,%d): incremental packs into %d bins, reference into %d — \
               both claim proof"
              t0 t1 b b')
        segs rseries;
    (* Lemma 3.1: ceil(S_t) <= BP(S_t) <= 2 ceil(S_t) per segment, and the
       same sandwich for the integral. *)
    let profile = Profile.of_instance inst in
    List.iter
      (fun (t0, t1, b, e) ->
        let ceil_load = Ints.ceil_div (Profile.load_at profile t0) Load.capacity in
        if b < ceil_load then
          emit ~time:t0
            "segment [%d,%d) claims %d bins below the fractional floor ceil(S_t) = %d"
            t0 t1 b ceil_load;
        if e && b > 2 * ceil_load then
          emit ~time:t0
            "segment [%d,%d) solved to proof with %d bins, above the Lemma 3.1 cap \
             2 ceil(S_t) = %d"
            t0 t1 b (2 * ceil_load))
      segs;
    let b = Dbp_offline.Bounds.compute inst in
    if inc_cost < b.lower then
      emit ~time:(-1) "OPT_R = %d beats the Lemma 3.1 lower bound %d" inc_cost b.lower;
    if inc_exact && inc_cost > b.lemma31_upper then
      emit ~time:(-1) "exact OPT_R = %d exceeds the Lemma 3.1 upper bound %d" inc_cost
        b.lemma31_upper;
    (* Lipschitz monotonicity: |BP(S + x) - BP(S)| <= 1 per item, so across
       a boundary the bin count moves by at most the event counts there. *)
    let arrivals = Hashtbl.create 64 and departures = Hashtbl.create 64 in
    let bump tbl t = Hashtbl.replace tbl t (1 + Option.value (Hashtbl.find_opt tbl t) ~default:0) in
    Array.iter
      (fun (r : Item.t) ->
        bump arrivals r.arrival;
        bump departures r.departure)
      (Instance.items inst);
    let count tbl t = Option.value (Hashtbl.find_opt tbl t) ~default:0 in
    let rec pairs = function
      | (_, t1, b0, e0) :: ((t1', _, b1, e1) :: _ as rest) ->
          if e0 && e1 && t1 = t1' then begin
            if b1 > b0 + count arrivals t1 then
              emit ~time:t1
                "bin count jumps %d -> %d at t=%d with only %d arrivals — BP is \
                 1-Lipschitz per item"
                b0 b1 t1 (count arrivals t1);
            if b0 > b1 + count departures t1 then
              emit ~time:t1
                "bin count drops %d -> %d at t=%d with only %d departures — BP is \
                 1-Lipschitz per item"
                b0 b1 t1 (count departures t1)
          end;
          pairs rest
      | _ -> ()
    in
    pairs segs;
    List.rev !vs
  end
