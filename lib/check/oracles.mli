(** Algorithm-specific lemma oracles, re-derived from the paper's
    definitions independently of the implementations they check.

    Each oracle re-computes the quantity a lemma bounds (GN load, row
    index, momentary bin count) from first principles — its own type
    tables, its own segment partition — and compares against what the
    algorithm actually did, as observed through bin labels and the
    store. A disagreement is reported as a {!Violation.t}. *)

open Dbp_instance
open Dbp_binpack

val ha : mu:float -> Validator.event_oracle
(** The Hybrid Algorithm's structural invariants (Section 3):
    - {b Lemma 3.3}: at every event, at most [2 + 4 sqrt(log2 mu)] GN
      bins are open (bins labelled ["GN"]).
    - {b type purity}: a CD bin labelled ["CD(i,c)"] only ever receives
      items of HA type [(i, c)] (the interval-class membership that
      Lemma 3.5's volume argument rests on).
    - {b GN admission}: an item routed to a GN bin had total active
      type load at most the [1/(2 sqrt i)] threshold, and no open CD
      bin of its type existed (else HA must have used it).
    The oracle keeps its own per-type active-load table; [mu] is the
    instance's final duration ratio (the quantity Lemma 3.3 is phrased
    in). *)

val cdff : unit -> Validator.event_oracle
(** CDFF's row discipline (Section 5, Lemma 5.5): re-runs the paper's
    segment partition — a new segment when an arrival reaches the
    current segment's horizon, top class learned at the segment's first
    tick, [m_t] from the trailing zeros of [t - start] — and checks
    every arrival of class [i] lands in a bin labelled
    [row (m_t - i)] (clamped at 0 for non-aligned inputs). *)

val corollary58 : mu:int -> Dbp_sim.Engine.result -> Violation.t list
(** Corollary 5.8 on the binary input [sigma_mu]: CDFF's open-bin count
    after the events of tick [t < mu] is exactly
    [max_0(binary(t)) + 1], and 0 at [t = mu]. Checks every sample of
    the run's series. [mu] must be a power of two. *)

val opt_r : ?solver:Solver.t -> Instance.t -> Violation.t list
(** The repacking optimum's internal consistency on one instance:
    - {b incremental = reference}: the delta-driven sweep
      ({!Dbp_offline.Opt_repack.exact}) agrees with the from-scratch
      oracle ({!Dbp_offline.Opt_repack.reference}) on cost, exactness,
      segment count and every per-segment value both solve to proof;
    - {b Lemma 3.1 sandwich}: each exactly-solved segment's bin count
      lies in [[ceil(S_t), 2 ceil(S_t)]], and the total cost in
      [[int ceil(S_t) dt, 2 int ceil(S_t) dt]] when the whole sweep is
      exact (cost >= the lower integral even when inexact);
    - {b Lipschitz monotonicity}: across adjacent exact segments, the
      bin count drops by at most the departures and rises by at most
      the arrivals at the boundary ([|BP(S +- x) - BP(S)| <= 1] per
      item). *)
