open Dbp_util
open Dbp_instance

(* Rebuild one item with clamped fields; None if the edit is a no-op or
   would be invalid. *)
let remade (r : Item.t) ~arrival ~departure ~size_units =
  if
    arrival < 0 || departure <= arrival || size_units <= 0
    || size_units > Load.capacity
    || (arrival = r.arrival && departure = r.departure
       && size_units = Load.to_units r.size)
  then None
  else
    (* Extra dimensions ride along unchanged: shrinking must not change
       the dimensionality of a vector repro. *)
    Some
      (Item.make_vec ~extra:r.extra ~id:r.id ~arrival ~departure
         ~size:(Load.of_units size_units))

(* ddmin over the item list: try dropping each of [n] chunks; on success
   restart at coarse granularity, otherwise refine. *)
let ddmin ~keep items =
  let try_complement items n =
    let len = List.length items in
    let chunk = (len + n - 1) / n in
    let rec scan k =
      if k * chunk >= len then None
      else
        let complement =
          List.filteri (fun i _ -> i < k * chunk || i >= (k + 1) * chunk) items
        in
        if complement <> [] && keep (Instance.of_items complement) then
          Some complement
        else scan (k + 1)
    in
    scan 0
  in
  let rec go items n =
    let len = List.length items in
    if len <= 1 || n > len then items
    else
      match try_complement items n with
      | Some smaller -> go smaller (max 2 (n - 1))
      | None -> if n >= len then items else go items (min len (2 * n))
  in
  go items 2

(* Candidate single-item edits, most aggressive first. *)
let edits (r : Item.t) =
  let dur = Item.duration r and units = Load.to_units r.size in
  let cls = Item.length_class r in
  [
    (* duration *)
    remade r ~arrival:r.arrival ~departure:(r.arrival + 1) ~size_units:units;
    remade r ~arrival:r.arrival
      ~departure:(r.arrival + max 1 (dur / 2))
      ~size_units:units;
    remade r ~arrival:r.arrival ~departure:(r.arrival + max 1 (dur - 1)) ~size_units:units;
    (* size *)
    remade r ~arrival:r.arrival ~departure:r.departure ~size_units:1;
    remade r ~arrival:r.arrival ~departure:r.departure ~size_units:(max 1 (units / 2));
    (* arrival: toward 0 (duration preserved), then onto the class grid *)
    remade r ~arrival:0 ~departure:dur ~size_units:units;
    remade r ~arrival:(r.arrival / 2) ~departure:((r.arrival / 2) + dur) ~size_units:units;
    (let snapped = r.arrival - (r.arrival mod Ints.pow2 cls) in
     remade r ~arrival:snapped ~departure:(snapped + dur) ~size_units:units);
  ]
  |> List.filter_map Fun.id

(* One greedy pass: for each item position, retry edits until none
   sticks. Returns (items, changed). *)
let item_pass ~keep items =
  let arr = Array.of_list items in
  let changed = ref false in
  let rebuilt i candidate =
    Array.to_list (Array.mapi (fun j r -> if j = i then candidate else r) arr)
  in
  for i = 0 to Array.length arr - 1 do
    let rec improve () =
      let better =
        List.find_opt
          (fun candidate -> keep (Instance.of_items (rebuilt i candidate)))
          (edits arr.(i))
      in
      match better with
      | Some candidate ->
          arr.(i) <- candidate;
          changed := true;
          improve ()
      | None -> ()
    in
    improve ()
  done;
  (Array.to_list arr, !changed)

let minimize ?(max_rounds = 8) ~keep inst =
  if not (keep inst) then
    invalid_arg "Shrink.minimize: the predicate does not hold on the input";
  let rec rounds items n =
    if n = 0 then items
    else
      let items' = ddmin ~keep items in
      let items'', changed = item_pass ~keep items' in
      if changed || List.length items'' < List.length items then
        rounds items'' (n - 1)
      else items''
  in
  let items = rounds (Array.to_list (Instance.items inst)) max_rounds in
  Instance.of_items items
