(** Greedy instance minimization (delta debugging).

    Given an instance on which some predicate holds — in practice "this
    oracle still fires" — produce a smaller instance on which it still
    holds. The search is [ddmin] over the item list (drop chunks at
    doubling granularity) followed by per-item greedy passes: shorten
    durations (halve, then decrement), shrink sizes (to one unit, then
    halve), pull arrivals toward zero and snap them onto the item's
    class alignment. Passes repeat until a fixpoint or [max_rounds].

    The search is fully deterministic — same instance, same predicate,
    same minimum — and only ever evaluates [keep] on valid instances
    (positive durations, sizes in (0, 1], arrivals >= 0), so a
    predicate that replays the instance never sees malformed input. *)

open Dbp_instance

val minimize :
  ?max_rounds:int -> keep:(Instance.t -> bool) -> Instance.t -> Instance.t
(** [minimize ~keep inst] requires [keep inst = true] and returns a
    minimal-ish instance on which [keep] still holds. [max_rounds]
    bounds the outer fixpoint iterations (default 8). *)
