open Dbp_util
open Dbp_instance
open Dbp_sim

type event_oracle = {
  oracle_name : string;
  on_arrival :
    store:Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id -> string option;
  on_departure :
    store:Bin_store.t ->
    now:int ->
    Item.t ->
    bin:Bin_store.bin_id ->
    closed:bool ->
    string option;
}

let stateless_oracle ~name ?on_arrival ?on_departure () =
  {
    oracle_name = name;
    on_arrival =
      (match on_arrival with
      | Some f -> f
      | None -> fun ~store:_ ~now:_ _ _ -> None);
    on_departure =
      (match on_departure with
      | Some f -> f
      | None -> fun ~store:_ ~now:_ _ ~bin:_ ~closed:_ -> None);
  }

(* ---- per-event core invariants ---- *)

let recomputed_load store bin =
  List.fold_left
    (fun acc (r : Item.t) -> Load.add acc r.size)
    Load.zero
    (Bin_store.contents store bin)

let check_bin_load emit store ~now bin =
  let sum = recomputed_load store bin in
  if not Load.(sum <= Load.one) then
    emit
      (Violation.make ~oracle:"bin-load" ~time:now
         "bin %d holds %d units > capacity %d" bin (Load.to_units sum) Load.capacity);
  if not (Load.equal sum (Bin_store.load store bin)) then
    emit
      (Violation.make ~oracle:"bin-load" ~time:now
         "bin %d store load %d units <> recomputed %d units" bin
         (Load.to_units (Bin_store.load store bin))
         (Load.to_units sum));
  (* Vector stores: the same two invariants hold in every dimension. *)
  if Bin_store.dims store > 1 then begin
    let contents = Bin_store.contents store bin in
    for k = 1 to Bin_store.dims store - 1 do
      let sumk =
        List.fold_left (fun acc (r : Item.t) -> acc + r.extra.(k - 1)) 0 contents
      in
      if sumk > Load.capacity then
        emit
          (Violation.make ~oracle:"bin-load" ~time:now
             "bin %d holds %d units > capacity %d in dimension %d" bin sumk
             Load.capacity k);
      if sumk <> Bin_store.load_units_dim store bin k then
        emit
          (Violation.make ~oracle:"bin-load" ~time:now
             "bin %d store load %d units <> recomputed %d units in dimension %d" bin
             (Bin_store.load_units_dim store bin k)
             sumk k)
    done
  end

let check_arrival emit store ~now (r : Item.t) bin =
  if now <> r.arrival then
    emit
      (Violation.make ~oracle:"event-time" ~time:now
         "item %d packed at t=%d but arrives at t=%d" r.id now r.arrival);
  if not (Bin_store.is_open store bin) then
    emit
      (Violation.make ~oracle:"open-bin" ~time:now
         "item %d placed into closed bin %d" r.id bin)
  else if
    not (List.exists (fun (m : Item.t) -> m.id = r.id) (Bin_store.contents store bin))
  then
    emit
      (Violation.make ~oracle:"open-bin" ~time:now
         "item %d not found in the bin %d the policy returned" r.id bin);
  check_bin_load emit store ~now bin

let check_departure emit store ~now (r : Item.t) ~bin ~closed ~moved_from =
  if now <> r.departure then
    emit
      (Violation.make ~oracle:"event-time" ~time:now
         "item %d removed at t=%d but departs at t=%d (clairvoyant promise)" r.id now
         r.departure);
  let contents = Bin_store.contents store bin in
  if closed <> (contents = []) then
    (* [closed] reports the state at removal time; a recourse pass
       running inside the policy's departure hook may legitimately have
       drained (and closed) the bin afterwards — allowed exactly when a
       move out of this bin happened during this event. *)
    if
      (not closed) && contents = [] && moved_from bin
      && not (Bin_store.is_open store bin)
    then ()
    else
      emit
        (Violation.make ~oracle:"bin-close" ~time:now
           "bin %d closed=%b but holds %d items" bin closed (List.length contents));
  if closed then begin
    if Bin_store.is_open store bin then
      emit
        (Violation.make ~oracle:"bin-close" ~time:now
           "bin %d reported closed but still listed open" bin);
    match Bin_store.closed_at store bin with
    | Some t when t = now -> ()
    | Some t ->
        emit
          (Violation.make ~oracle:"bin-close" ~time:now
             "bin %d closing tick recorded as %d, expected %d" bin t now)
    | None ->
        emit
          (Violation.make ~oracle:"bin-close" ~time:now
             "bin %d reported closed but has no closing tick" bin)
  end;
  check_bin_load emit store ~now bin

(* ---- migration (recourse) checks ---- *)

(* Structural checks on the moves a policy executed during one event:
   the log entries [from, upto) appended around the inner callback.
   Returns [upto] so the wrapper can advance its drained prefix. *)
let check_event_moves emit store ~now ~from ~budget ~arrivals =
  let upto = Bin_store.move_logged store in
  for i = from to upto - 1 do
    let t, item, src, dst = Bin_store.move_entry store i in
    if t <> now then
      emit
        (Violation.make ~oracle:"migration" ~time:now
           "move of item %d stamped t=%d during the event at t=%d" item t now);
    (* The destination must still be open — unless a later move in the
       same event drained it too, in which case it closed at [now]. *)
    if Bin_store.is_open store dst then check_bin_load emit store ~now dst
    else if Bin_store.closed_at store dst <> Some now then
      emit
        (Violation.make ~oracle:"migration" ~time:now
           "item %d moved into bin %d which is not open" item dst);
    if Bin_store.is_open store src then check_bin_load emit store ~now src
    else if Bin_store.closed_at store src <> Some now then
      emit
        (Violation.make ~oracle:"migration" ~time:now
           "item %d moved out of bin %d which closed before this event" item src)
  done;
  (match budget with
  | None -> ()
  | Some (k, Recourse.Per_event) ->
      if upto - from > k then
        emit
          (Violation.make ~oracle:"migration" ~time:now
             "event performed %d moves, budget is %d per event" (upto - from) k)
  | Some (k, Recourse.Amortized) ->
      if upto > k * arrivals then
        emit
          (Violation.make ~oracle:"migration" ~time:now
             "%d moves after %d arrivals exceed the amortized budget %d per arrival"
             upto arrivals k));
  upto

(* ---- post-run audit ---- *)

let usage_integral store =
  let tl = Timeline.create () in
  let bounds = ref [] in
  List.iter
    (fun id ->
      match Bin_store.closed_at store id with
      | None -> ()
      | Some c ->
          let o = Bin_store.opened_at store id in
          if c > o then begin
            Timeline.add tl ~lo:o ~hi:c ~units:1;
            bounds := o :: c :: !bounds
          end)
    (Bin_store.all_bins store);
  let cuts = List.sort_uniq Int.compare !bounds in
  let rec integrate acc = function
    | a :: (b :: _ as rest) -> integrate (acc + (Timeline.value_at tl a * (b - a))) rest
    | _ -> acc
  in
  integrate 0 cuts

(* The gapless interval cover of one bin's stints — [(lo, hi, item_id)]
   residencies sorted by start must chain without a hole (a hole means
   the bin emptied and the store should have closed it). Items that were
   never relocated contribute their whole [arrival, departure) lifetime;
   moved items contribute one stint per bin they visited. Returns the
   cover end. *)
let cover_end emit ~bin intervals =
  let sorted =
    List.sort
      (fun (l1, _, i1) (l2, _, i2) -> compare (l1, i1) (l2, i2))
      intervals
  in
  match sorted with
  | [] -> None
  | (_, hi0, _) :: rest ->
      let stop =
        List.fold_left
          (fun stop (lo, hi, id) ->
            if lo > stop then begin
              emit
                (Violation.make ~oracle:"bin-reuse" ~time:lo
                   "bin %d was empty on [%d, %d) yet item %d was added later — emptied \
                    bins must close and never be reused"
                   bin stop lo id);
              hi
            end
            else max stop hi)
          hi0 rest
      in
      Some stop

let audit emit (result : Engine.result) inst =
  let store = result.store in
  (* Placement log vs instance: every item packed exactly once. The log
     records initial placements; relocations live in the move log. *)
  let placed = Hashtbl.create 64 in
  List.iter
    (fun (item_id, bin) ->
      if Hashtbl.mem placed item_id then
        emit
          (Violation.make ~oracle:"placement" ~time:(-1)
             "item %d placed more than once" item_id)
      else begin
        Hashtbl.replace placed item_id bin;
        match Instance.find inst item_id with
        | _ -> ()
        | exception Not_found ->
            emit
              (Violation.make ~oracle:"placement" ~time:(-1)
                 "placement log contains item %d which is not in the instance" item_id)
      end)
    (Bin_store.assignment store);
  Array.iter
    (fun (r : Item.t) ->
      if not (Hashtbl.mem placed r.id) then
        emit
          (Violation.make ~oracle:"placement" ~time:(-1) "item %d was never placed" r.id))
    (Instance.items inst);
  (* Move accounting: the result, the store counters and the log must
     agree, and the carried units must re-sum from the instance. *)
  let move_log = Bin_store.move_log store in
  if result.moves <> Bin_store.move_count store then
    emit
      (Violation.make ~oracle:"migration" ~time:(-1)
         "result reports %d moves but the store counted %d" result.moves
         (Bin_store.move_count store));
  if result.moves <> List.length move_log then
    emit
      (Violation.make ~oracle:"migration" ~time:(-1)
         "result reports %d moves but the store logged %d" result.moves
         (List.length move_log));
  let recomputed_moved_units =
    List.fold_left
      (fun acc (_, item_id, _, _) ->
        match Instance.find inst item_id with
        | r -> acc + Load.to_units r.Item.size
        | exception Not_found ->
            emit
              (Violation.make ~oracle:"migration" ~time:(-1)
                 "move log contains item %d which is not in the instance" item_id);
            acc)
      0 move_log
  in
  if result.moved_units <> recomputed_moved_units then
    emit
      (Violation.make ~oracle:"migration" ~time:(-1)
         "result reports %d moved units but the move log re-sums to %d"
         result.moved_units recomputed_moved_units);
  (* Per-item stints: start at the logged initial placement, split at
     each relocation, end at departure. Each stint lands in its bin's
     interval list for the gapless-cover check below. *)
  let moves_by_item : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (t, item_id, src, dst) ->
      Hashtbl.replace moves_by_item item_id
        ((t, src, dst)
        :: Option.value (Hashtbl.find_opt moves_by_item item_id) ~default:[]))
    move_log;
  let by_bin : (Bin_store.bin_id, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_stint bin ~lo ~hi item_id =
    Hashtbl.replace by_bin bin
      ((lo, hi, item_id) :: Option.value (Hashtbl.find_opt by_bin bin) ~default:[])
  in
  Array.iter
    (fun (r : Item.t) ->
      match Hashtbl.find_opt placed r.id with
      | None -> () (* already reported as never placed *)
      | Some first_bin ->
          let moves =
            List.rev (Option.value (Hashtbl.find_opt moves_by_item r.id) ~default:[])
          in
          let last_bin, last_lo =
            List.fold_left
              (fun (cur, lo) (t, src, dst) ->
                if t < r.arrival || t > r.departure then
                  emit
                    (Violation.make ~oracle:"migration" ~time:t
                       "item %d moved at t=%d outside its lifetime [%d, %d]" r.id t
                       r.arrival r.departure);
                if src <> cur then
                  emit
                    (Violation.make ~oracle:"migration" ~time:t
                       "move of item %d at t=%d leaves bin %d but the item was in \
                        bin %d"
                       r.id t src cur);
                add_stint cur ~lo ~hi:t r.id;
                (dst, t))
              (first_bin, r.arrival) moves
          in
          add_stint last_bin ~lo:last_lo ~hi:r.departure r.id)
    (Instance.items inst);
  (* Every bin must be closed once every item departed, must have opened
     with its first item and closed at the end of its gapless cover. *)
  if Bin_store.open_count store <> 0 then
    emit
      (Violation.make ~oracle:"bin-close" ~time:(-1)
         "%d bins still open after the last departure" (Bin_store.open_count store));
  let all = Bin_store.all_bins store in
  if result.bins_opened <> List.length all then
    emit
      (Violation.make ~oracle:"placement" ~time:(-1)
         "bins_opened=%d but the store logged %d bins" result.bins_opened
         (List.length all));
  List.iter
    (fun bin ->
      let intervals = Option.value (Hashtbl.find_opt by_bin bin) ~default:[] in
      match intervals with
      | [] ->
          emit
            (Violation.make ~oracle:"placement" ~time:(-1)
               "bin %d was opened but never held an item" bin)
      | intervals -> (
          (* A bin is always opened by an insert (moves only target open
             bins), so its earliest stint starts at its first item's
             arrival. *)
          let first_start =
            List.fold_left (fun acc (lo, _, _) -> min acc lo) max_int intervals
          in
          if Bin_store.opened_at store bin <> first_start then
            emit
              (Violation.make ~oracle:"bin-open" ~time:(-1)
                 "bin %d opened at %d but its first item arrives at %d" bin
                 (Bin_store.opened_at store bin) first_start);
          match (cover_end emit ~bin intervals, Bin_store.closed_at store bin) with
          | Some stop, Some closed when stop <> closed ->
              emit
                (Violation.make ~oracle:"bin-close" ~time:(-1)
                   "bin %d closed at %d but its items cover up to %d" bin closed stop)
          | _, None -> () (* already reported via open_count *)
          | _ -> ()))
    all;
  (* Cost: the store's accumulator, the result, and an independent
     Timeline integration must all agree. *)
  let integral = usage_integral store in
  if result.cost <> integral then
    emit
      (Violation.make ~oracle:"cost-integral" ~time:(-1)
         "reported cost %d <> usage integral %d recomputed via Timeline" result.cost
         integral);
  (* Series and high-water mark vs the same step function. *)
  let tl = Timeline.create () in
  List.iter
    (fun bin ->
      match Bin_store.closed_at store bin with
      | Some c when c > Bin_store.opened_at store bin ->
          Timeline.add tl ~lo:(Bin_store.opened_at store bin) ~hi:c ~units:1
      | _ -> ())
    all;
  let peak = ref 0 in
  Array.iter
    (fun (t, c) ->
      peak := max !peak c;
      let v = Timeline.value_at tl t in
      if v <> c then
        emit
          (Violation.make ~oracle:"series" ~time:t
             "series reports %d open bins but the open/close log yields %d" c v))
    result.series;
  (* Without moves, the open count within a tick is maximal after its
     last arrival, so the high-water is always attained at a sampled
     point. A recourse pass can open a bin and close another inside one
     event — a transient the end-of-tick series never sees — so with
     moves the high-water may legitimately exceed the sampled peak, but
     never fall below it. *)
  if result.moves = 0 then begin
    if result.max_open <> !peak then
      emit
        (Violation.make ~oracle:"series" ~time:(-1)
           "max_open=%d but the series peaks at %d" result.max_open !peak)
  end
  else if result.max_open < !peak then
    emit
      (Violation.make ~oracle:"series" ~time:(-1)
         "max_open=%d below the series peak %d" result.max_open !peak);
  (* Lemma 3.1 floor: no valid packing beats int ceil(S_t) dt. *)
  if not (Instance.is_empty inst) then begin
    let b = Dbp_offline.Bounds.compute inst in
    if result.cost < b.lower then
      emit
        (Violation.make ~oracle:"cost-lower-bound" ~time:(-1)
           "cost %d beats the Lemma 3.1 lower bound %d — the packing cannot be valid"
           result.cost b.lower)
  end

let run ?(oracles = []) ?tamper ?budget factory inst =
  let vs = ref [] in
  let emit v = vs := v :: !vs in
  (* The validator sits outside any recourse wrapper, so it never sees
     [on_move] calls directly; the store's move log is its observation
     channel. [drained] is the log prefix already checked — the entries
     appended across one inner callback are that event's moves. *)
  let drained = ref 0 in
  let arrivals = ref 0 in
  let wrapped store =
    let inner = factory store in
    {
      Policy.name = inner.Policy.name;
      on_arrival =
        (fun ~now r ->
          incr arrivals;
          let bin = inner.on_arrival ~now r in
          drained :=
            check_event_moves emit store ~now ~from:!drained ~budget
              ~arrivals:!arrivals;
          check_arrival emit store ~now r bin;
          List.iter
            (fun o ->
              match o.on_arrival ~store ~now r bin with
              | None -> ()
              | Some detail -> emit { Violation.oracle = o.oracle_name; time = now; detail })
            oracles;
          bin);
      on_departure =
        (fun ~now r ~bin ~closed ->
          inner.on_departure ~now r ~bin ~closed;
          let from = !drained in
          drained :=
            check_event_moves emit store ~now ~from ~budget ~arrivals:!arrivals;
          let moved_from b =
            let rec probe i =
              i < !drained
              &&
              let _, _, src, _ = Bin_store.move_entry store i in
              src = b || probe (i + 1)
            in
            probe from
          in
          check_departure emit store ~now r ~bin ~closed ~moved_from;
          List.iter
            (fun o ->
              match o.on_departure ~store ~now r ~bin ~closed with
              | None -> ()
              | Some detail -> emit { Violation.oracle = o.oracle_name; time = now; detail })
            oracles);
      on_move = inner.on_move;
    }
  in
  let result = Engine.run wrapped inst in
  let result = match tamper with None -> result | Some f -> f result in
  audit emit result inst;
  (result, List.rev !vs)
