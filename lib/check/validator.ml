open Dbp_util
open Dbp_instance
open Dbp_sim

type event_oracle = {
  oracle_name : string;
  on_arrival :
    store:Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id -> string option;
  on_departure :
    store:Bin_store.t ->
    now:int ->
    Item.t ->
    bin:Bin_store.bin_id ->
    closed:bool ->
    string option;
}

let stateless_oracle ~name ?on_arrival ?on_departure () =
  {
    oracle_name = name;
    on_arrival =
      (match on_arrival with
      | Some f -> f
      | None -> fun ~store:_ ~now:_ _ _ -> None);
    on_departure =
      (match on_departure with
      | Some f -> f
      | None -> fun ~store:_ ~now:_ _ ~bin:_ ~closed:_ -> None);
  }

(* ---- per-event core invariants ---- *)

let recomputed_load store bin =
  List.fold_left
    (fun acc (r : Item.t) -> Load.add acc r.size)
    Load.zero
    (Bin_store.contents store bin)

let check_bin_load emit store ~now bin =
  let sum = recomputed_load store bin in
  if not Load.(sum <= Load.one) then
    emit
      (Violation.make ~oracle:"bin-load" ~time:now
         "bin %d holds %d units > capacity %d" bin (Load.to_units sum) Load.capacity);
  if not (Load.equal sum (Bin_store.load store bin)) then
    emit
      (Violation.make ~oracle:"bin-load" ~time:now
         "bin %d store load %d units <> recomputed %d units" bin
         (Load.to_units (Bin_store.load store bin))
         (Load.to_units sum));
  (* Vector stores: the same two invariants hold in every dimension. *)
  if Bin_store.dims store > 1 then begin
    let contents = Bin_store.contents store bin in
    for k = 1 to Bin_store.dims store - 1 do
      let sumk =
        List.fold_left (fun acc (r : Item.t) -> acc + r.extra.(k - 1)) 0 contents
      in
      if sumk > Load.capacity then
        emit
          (Violation.make ~oracle:"bin-load" ~time:now
             "bin %d holds %d units > capacity %d in dimension %d" bin sumk
             Load.capacity k);
      if sumk <> Bin_store.load_units_dim store bin k then
        emit
          (Violation.make ~oracle:"bin-load" ~time:now
             "bin %d store load %d units <> recomputed %d units in dimension %d" bin
             (Bin_store.load_units_dim store bin k)
             sumk k)
    done
  end

let check_arrival emit store ~now (r : Item.t) bin =
  if now <> r.arrival then
    emit
      (Violation.make ~oracle:"event-time" ~time:now
         "item %d packed at t=%d but arrives at t=%d" r.id now r.arrival);
  if not (Bin_store.is_open store bin) then
    emit
      (Violation.make ~oracle:"open-bin" ~time:now
         "item %d placed into closed bin %d" r.id bin)
  else if
    not (List.exists (fun (m : Item.t) -> m.id = r.id) (Bin_store.contents store bin))
  then
    emit
      (Violation.make ~oracle:"open-bin" ~time:now
         "item %d not found in the bin %d the policy returned" r.id bin);
  check_bin_load emit store ~now bin

let check_departure emit store ~now (r : Item.t) ~bin ~closed =
  if now <> r.departure then
    emit
      (Violation.make ~oracle:"event-time" ~time:now
         "item %d removed at t=%d but departs at t=%d (clairvoyant promise)" r.id now
         r.departure);
  let contents = Bin_store.contents store bin in
  if closed <> (contents = []) then
    emit
      (Violation.make ~oracle:"bin-close" ~time:now
         "bin %d closed=%b but holds %d items" bin closed (List.length contents));
  if closed then begin
    if Bin_store.is_open store bin then
      emit
        (Violation.make ~oracle:"bin-close" ~time:now
           "bin %d reported closed but still listed open" bin);
    match Bin_store.closed_at store bin with
    | Some t when t = now -> ()
    | Some t ->
        emit
          (Violation.make ~oracle:"bin-close" ~time:now
             "bin %d closing tick recorded as %d, expected %d" bin t now)
    | None ->
        emit
          (Violation.make ~oracle:"bin-close" ~time:now
             "bin %d reported closed but has no closing tick" bin)
  end;
  check_bin_load emit store ~now bin

(* ---- post-run audit ---- *)

let usage_integral store =
  let tl = Timeline.create () in
  let bounds = ref [] in
  List.iter
    (fun id ->
      match Bin_store.closed_at store id with
      | None -> ()
      | Some c ->
          let o = Bin_store.opened_at store id in
          if c > o then begin
            Timeline.add tl ~lo:o ~hi:c ~units:1;
            bounds := o :: c :: !bounds
          end)
    (Bin_store.all_bins store);
  let cuts = List.sort_uniq Int.compare !bounds in
  let rec integrate acc = function
    | a :: (b :: _ as rest) -> integrate (acc + (Timeline.value_at tl a * (b - a))) rest
    | _ -> acc
  in
  integrate 0 cuts

(* The gapless interval cover of one bin's items: items sorted by
   arrival must chain without a hole (a hole means the bin emptied and
   the store should have closed it). Returns the cover end. *)
let cover_end emit ~bin (items : Item.t list) =
  let sorted =
    List.sort (fun (a : Item.t) (b : Item.t) -> compare (a.arrival, a.id) (b.arrival, b.id)) items
  in
  match sorted with
  | [] -> None
  | first :: rest ->
      let stop =
        List.fold_left
          (fun stop (r : Item.t) ->
            if r.arrival > stop then begin
              emit
                (Violation.make ~oracle:"bin-reuse" ~time:r.arrival
                   "bin %d was empty on [%d, %d) yet item %d was added later — emptied \
                    bins must close and never be reused"
                   bin stop r.arrival r.id);
              r.departure
            end
            else max stop r.departure)
          first.departure rest
      in
      Some stop

let audit emit (result : Engine.result) inst =
  let store = result.store in
  (* Placement log vs instance: every item packed exactly once. *)
  let placed = Hashtbl.create 64 in
  let by_bin = Hashtbl.create 64 in
  List.iter
    (fun (item_id, bin) ->
      if Hashtbl.mem placed item_id then
        emit
          (Violation.make ~oracle:"placement" ~time:(-1)
             "item %d placed more than once" item_id)
      else begin
        Hashtbl.replace placed item_id bin;
        match Instance.find inst item_id with
        | r -> Hashtbl.replace by_bin bin (r :: Option.value (Hashtbl.find_opt by_bin bin) ~default:[])
        | exception Not_found ->
            emit
              (Violation.make ~oracle:"placement" ~time:(-1)
                 "placement log contains item %d which is not in the instance" item_id)
      end)
    (Bin_store.assignment store);
  Array.iter
    (fun (r : Item.t) ->
      if not (Hashtbl.mem placed r.id) then
        emit
          (Violation.make ~oracle:"placement" ~time:(-1) "item %d was never placed" r.id))
    (Instance.items inst);
  (* Every bin must be closed once every item departed, must have opened
     with its first item and closed at the end of its gapless cover. *)
  if Bin_store.open_count store <> 0 then
    emit
      (Violation.make ~oracle:"bin-close" ~time:(-1)
         "%d bins still open after the last departure" (Bin_store.open_count store));
  let all = Bin_store.all_bins store in
  if result.bins_opened <> List.length all then
    emit
      (Violation.make ~oracle:"placement" ~time:(-1)
         "bins_opened=%d but the store logged %d bins" result.bins_opened
         (List.length all));
  List.iter
    (fun bin ->
      let items = Option.value (Hashtbl.find_opt by_bin bin) ~default:[] in
      match items with
      | [] ->
          emit
            (Violation.make ~oracle:"placement" ~time:(-1)
               "bin %d was opened but never held an item" bin)
      | items -> (
          let first_arrival =
            List.fold_left (fun acc (r : Item.t) -> min acc r.arrival) max_int items
          in
          if Bin_store.opened_at store bin <> first_arrival then
            emit
              (Violation.make ~oracle:"bin-open" ~time:(-1)
                 "bin %d opened at %d but its first item arrives at %d" bin
                 (Bin_store.opened_at store bin) first_arrival);
          match (cover_end emit ~bin items, Bin_store.closed_at store bin) with
          | Some stop, Some closed when stop <> closed ->
              emit
                (Violation.make ~oracle:"bin-close" ~time:(-1)
                   "bin %d closed at %d but its items cover up to %d" bin closed stop)
          | _, None -> () (* already reported via open_count *)
          | _ -> ()))
    all;
  (* Cost: the store's accumulator, the result, and an independent
     Timeline integration must all agree. *)
  let integral = usage_integral store in
  if result.cost <> integral then
    emit
      (Violation.make ~oracle:"cost-integral" ~time:(-1)
         "reported cost %d <> usage integral %d recomputed via Timeline" result.cost
         integral);
  (* Series and high-water mark vs the same step function. *)
  let tl = Timeline.create () in
  List.iter
    (fun bin ->
      match Bin_store.closed_at store bin with
      | Some c when c > Bin_store.opened_at store bin ->
          Timeline.add tl ~lo:(Bin_store.opened_at store bin) ~hi:c ~units:1
      | _ -> ())
    all;
  let peak = ref 0 in
  Array.iter
    (fun (t, c) ->
      peak := max !peak c;
      let v = Timeline.value_at tl t in
      if v <> c then
        emit
          (Violation.make ~oracle:"series" ~time:t
             "series reports %d open bins but the open/close log yields %d" c v))
    result.series;
  if result.max_open <> !peak then
    emit
      (Violation.make ~oracle:"series" ~time:(-1)
         "max_open=%d but the series peaks at %d" result.max_open !peak);
  (* Lemma 3.1 floor: no valid packing beats int ceil(S_t) dt. *)
  if not (Instance.is_empty inst) then begin
    let b = Dbp_offline.Bounds.compute inst in
    if result.cost < b.lower then
      emit
        (Violation.make ~oracle:"cost-lower-bound" ~time:(-1)
           "cost %d beats the Lemma 3.1 lower bound %d — the packing cannot be valid"
           result.cost b.lower)
  end

let run ?(oracles = []) ?tamper factory inst =
  let vs = ref [] in
  let emit v = vs := v :: !vs in
  let wrapped store =
    let inner = factory store in
    {
      Policy.name = inner.Policy.name;
      on_arrival =
        (fun ~now r ->
          let bin = inner.on_arrival ~now r in
          check_arrival emit store ~now r bin;
          List.iter
            (fun o ->
              match o.on_arrival ~store ~now r bin with
              | None -> ()
              | Some detail -> emit { Violation.oracle = o.oracle_name; time = now; detail })
            oracles;
          bin);
      on_departure =
        (fun ~now r ~bin ~closed ->
          inner.on_departure ~now r ~bin ~closed;
          check_departure emit store ~now r ~bin ~closed;
          List.iter
            (fun o ->
              match o.on_departure ~store ~now r ~bin ~closed with
              | None -> ()
              | Some detail -> emit { Violation.oracle = o.oracle_name; time = now; detail })
            oracles);
    }
  in
  let result = Engine.run wrapped inst in
  let result = match tamper with None -> result | Some f -> f result in
  audit emit result inst;
  (result, List.rev !vs)
