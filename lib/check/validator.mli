(** The shadow validator: run any {!Dbp_sim.Policy.factory} under a
    wrapper that re-checks the paper's structural packing invariants at
    every event, then audits the finished run against an independently
    recomputed cost integral.

    Per-event (after every arrival and departure):
    - the chosen bin is open and actually contains the arriving item;
    - the bin's load, re-summed from its contents in exact
      {!Dbp_util.Load} arithmetic, matches the store's accumulator and
      never exceeds capacity;
    - arrivals happen at the item's arrival tick, departures at its
      promised (clairvoyant) departure tick — the engine honours the
      paper's [t^-] convention;
    - a bin reported closed is empty, unlisted, and stamped with the
      closing tick.

    Migration (bounded recourse, {!Dbp_sim.Recourse}): every move a
    policy executes through {!Dbp_sim.Bin_store.move} is observed via
    the store's move log and checked per event — lands in an open bin
    whose re-summed load fits in every dimension, stamped with the
    event's tick, and within the declared budget ([budget]: at most [k]
    per event, or [k x arrivals] cumulatively in amortized mode).

    Post-run:
    - no bin is left open once every item departed;
    - every instance item was placed exactly once;
    - move accounting is consistent (result, store counters and move
      log agree; moved units re-sum from the instance), every logged
      move happens within its item's lifetime, and each move's source
      is the bin the item was actually in (the stint chain);
    - each bin opened at its first item's arrival, closed at the end of
      its stints' gapless interval cover (a gap would mean the store
      missed an emptying — Section 2's "an emptied bin closes and is
      never reused"; relocated items contribute one stint per bin they
      visited, so lifetimes stay gapless across repacks);
    - the reported cost equals the usage integral recomputed from the
      per-bin open/close log through an independent
      {!Dbp_util.Timeline}, and the open-bin series and [max_open]
      high-water match the same step function;
    - cost is at least the Lemma 3.1 lower bound [int ceil(S_t) dt]
      (no valid packing, repacking or not, can beat it).

    Event oracles (algorithm-specific lemma checks, see {!Oracles}) ride
    on the same wrapper. *)

open Dbp_instance
open Dbp_sim

type event_oracle = {
  oracle_name : string;
  on_arrival :
    store:Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id -> string option;
      (** Return [Some detail] to report a violation. Called after the
          policy placed the item. *)
  on_departure :
    store:Bin_store.t ->
    now:int ->
    Item.t ->
    bin:Bin_store.bin_id ->
    closed:bool ->
    string option;
      (** Called after the store removed the item. *)
}

val stateless_oracle :
  name:string ->
  ?on_arrival:
    (store:Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id -> string option) ->
  ?on_departure:
    (store:Bin_store.t ->
    now:int ->
    Item.t ->
    bin:Bin_store.bin_id ->
    closed:bool ->
    string option) ->
  unit ->
  event_oracle
(** Build an oracle from optional callbacks (missing ones never fire). *)

val usage_integral : Bin_store.t -> int
(** The MinUsageTime objective recomputed from scratch: one [+1] step
    per bin over its [[opened_at, closed_at)) interval on a fresh
    {!Dbp_util.Timeline}, integrated over the boundary partition. Only
    closed bins contribute (mirrors {!Bin_store.closed_usage}). *)

val run :
  ?oracles:event_oracle list ->
  ?tamper:(Engine.result -> Engine.result) ->
  ?budget:int * Recourse.mode ->
  Policy.factory ->
  Instance.t ->
  Engine.result * Violation.t list
(** Execute the instance under the wrapped policy and return the run
    result plus every violation found, in detection order (per-event
    first, post-run audits last). [tamper] is a test-only fault-
    injection hook applied to the engine result before the post-run
    audit — the fuzz gate uses it to prove the validator actually
    fires; production callers leave it unset. [budget] declares the
    move budget the factory is supposed to respect (a
    {!Dbp_sim.Recourse}-wrapped policy's [k] and mode); any event
    exceeding it is a ["migration"] violation. Without [budget], moves
    are still structurally checked but unbounded. *)
