type t = { oracle : string; time : int; detail : string }

let make ~oracle ~time fmt =
  Printf.ksprintf (fun detail -> { oracle; time; detail }) fmt

let to_string v =
  if v.time < 0 then Printf.sprintf "[%s] %s" v.oracle v.detail
  else Printf.sprintf "[%s@t=%d] %s" v.oracle v.time v.detail

let pp fmt v = Format.pp_print_string fmt (to_string v)
