(** A machine-checked invariant failure.

    Every oracle in {!Validator}, {!Naive} and {!Oracles} reports
    findings as values of this type rather than raising, so a fuzz run
    can keep going, collect everything, and hand each finding to the
    {!Shrink} delta-debugger. The [oracle] name is the stable identity a
    shrinker predicate matches on: a candidate instance reproduces a
    finding iff re-checking yields a violation with the same oracle
    name. *)

type t = {
  oracle : string;
      (** Stable oracle identifier, e.g. ["bin-load"], ["cost-integral"],
          ["ha-lemma33"], ["optr"]. *)
  time : int;  (** Event tick the oracle fired at; [-1] for post-run checks. *)
  detail : string;  (** Human-readable specifics (expected vs actual). *)
}

val make : oracle:string -> time:int -> ('a, unit, string, t) format4 -> 'a
(** [make ~oracle ~time fmt ...] builds a violation with a formatted
    detail string. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
