open Dbp_util
open Dbp_instance
open Dbp_sim

type gauge = {
  mutable rows_active : int;
  mutable max_row_bins : int;
  mutable segments : int;
}

type segment = { start : int; mutable top : int  (** n = log2 of the segment size *) }

let make ?(rule = Dbp_binpack.Heuristics.First_fit) gauge store =
  let rows : (int, Fit_group.t) Hashtbl.t = Hashtbl.create 16 in
  let owner : (Bin_store.bin_id, Fit_group.t) Hashtbl.t = Hashtbl.create 64 in
  let seg = ref None in
  let update () =
    match gauge with
    | None -> ()
    | Some g ->
        let active = ref 0 and biggest = ref 0 in
        Hashtbl.iter
          (fun _ grp ->
            let n = Fit_group.open_count grp in
            if n > 0 then incr active;
            if n > !biggest then biggest := n)
          rows;
        g.rows_active <- !active;
        g.max_row_bins <- max g.max_row_bins !biggest
  in
  let row_group r =
    match Hashtbl.find_opt rows r with
    | Some grp -> grp
    | None ->
        let grp = Fit_group.create ~rule ~label:(Printf.sprintf "row%d" r) () in
        Hashtbl.replace rows r grp;
        grp
  in
  (* Re-key every row by [shift] when the segment's top class grows
     mid-tick (the paper's "adapts as larger items arrive"): row indices
     are distances below the top, so a larger top pushes existing rows
     down. Bin labels follow so figures show the final row structure. *)
  let shift_rows shift =
    let entries = Hashtbl.fold (fun r grp acc -> (r, grp) :: acc) rows [] in
    Hashtbl.reset rows;
    List.iter
      (fun (r, grp) ->
        let r' = r + shift in
        Fit_group.relabel grp store (Printf.sprintf "row%d" r');
        Hashtbl.replace rows r' grp)
      entries
  in
  let on_arrival ~now (r : Item.t) =
    let cls = Item.length_class r in
    let s =
      match !seg with
      | Some s when now < s.start + Ints.pow2 s.top -> s
      | _ ->
          (* New segment: forget the previous segment's rows (for aligned
             inputs they are empty by now). *)
          Hashtbl.reset rows;
          let s = { start = now; top = cls } in
          seg := Some s;
          (match gauge with None -> () | Some g -> g.segments <- g.segments + 1);
          s
    in
    if now = s.start && cls > s.top then begin
      shift_rows (cls - s.top);
      s.top <- cls
    end;
    let m = if now = s.start then s.top else min s.top (Ints.ntz (now - s.start)) in
    let row = max 0 (m - cls) in
    let grp = row_group row in
    let bin = Fit_group.place grp store ~now r in
    Hashtbl.replace owner bin grp;
    update ();
    bin
  in
  let on_departure ~now:_ (_ : Item.t) ~bin ~closed =
    (match Hashtbl.find_opt owner bin with
    | Some grp -> Fit_group.note_depart grp store bin ~closed
    | None -> invalid_arg "Cdff.on_departure: unowned bin");
    if closed then Hashtbl.remove owner bin;
    update ()
  in
  (* [owner] survives [shift_rows] re-keying (it maps bins to groups,
     not row indices), so the move-side resync is the generic
     ownership-table pattern. *)
  let on_move ~now:_ (_ : Item.t) ~src ~dst ~closed =
    (match Hashtbl.find_opt owner src with
    | Some grp -> Fit_group.note_depart grp store src ~closed
    | None -> invalid_arg "Cdff.on_move: unowned bin");
    if closed then Hashtbl.remove owner src;
    (match Hashtbl.find_opt owner dst with
    | Some grp -> Fit_group.note_insert grp store dst
    | None -> invalid_arg "Cdff.on_move: unowned bin");
    update ()
  in
  { Policy.name = "CDFF"; on_arrival; on_departure; on_move = Some on_move }

let policy ?rule () store = make ?rule None store

let instrumented ?rule () =
  let gauge = { rows_active = 0; max_row_bins = 0; segments = 0 } in
  ((fun store -> make ?rule (Some gauge) store), gauge)
