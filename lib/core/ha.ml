open Dbp_util
open Dbp_instance
open Dbp_sim

type gauge = {
  mutable gn_open : int;
  mutable cd_open : int;
  mutable max_gn : int;
  mutable max_classes : int;
}

let default_threshold i = 1.0 /. (2.0 *. sqrt (float_of_int i))

(* Threshold in load units for duration class i. *)
let threshold_units threshold i =
  let f = threshold i in
  if f <= 0.0 then invalid_arg "Ha: non-positive threshold";
  int_of_float (f *. float_of_int Load.capacity)

(* A type (i, c) packed into one int: the duration class i is
   [ceil_log2 duration] clamped to >= 1, so it fits in 6 bits, and the
   arrival block c is a non-negative tick quotient. Packed keys keep
   the per-item classification tables on unboxed int maps / int-keyed
   hashing instead of allocating a tuple (and hashing it structurally)
   for every arrival and departure. *)
let pack_ty ~cls ~block = (block lsl 6) lor cls

let make ?(rule = Dbp_binpack.Heuristics.First_fit) ?(threshold = default_threshold) gauge
    store =
  let gn = Fit_group.create ~rule ~label:"GN" () in
  let cd : (int, Fit_group.t) Hashtbl.t = Hashtbl.create 32 in
  let type_load = Imap.create ~capacity:32 () in
  (* Vector stores: per-type accumulated load in dimensions 1..d-1; the
     admission gauge is then the max over dimensions, so a type whose
     load crosses the threshold in {e any} resource goes to CD bins.
     Empty (and never touched) at d = 1. *)
  let dims = Bin_store.dims store in
  let type_extra : (int, int array) Hashtbl.t = Hashtbl.create 32 in
  let owner : (Bin_store.bin_id, Fit_group.t) Hashtbl.t = Hashtbl.create 64 in
  let classes = Hashtbl.create 8 in
  let update () =
    match gauge with
    | None -> ()
    | Some g ->
        g.gn_open <- Fit_group.open_count gn;
        g.cd_open <- Hashtbl.fold (fun _ grp acc -> acc + Fit_group.open_count grp) cd 0;
        if g.gn_open > g.max_gn then g.max_gn <- g.gn_open;
        g.max_classes <- max g.max_classes (Hashtbl.length classes)
  in
  let cd_group_of ty ~cls ~block =
    match Hashtbl.find_opt cd ty with
    | Some grp -> grp
    | None ->
        let grp =
          Fit_group.create ~rule ~label:(Printf.sprintf "CD(%d,%d)" cls block) ()
        in
        Hashtbl.replace cd ty grp;
        grp
  in
  let on_arrival ~now (r : Item.t) =
    let cls = Item.ha_class r in
    let block = Item.arrival_block r in
    let ty = pack_ty ~cls ~block in
    Hashtbl.replace classes cls ();
    let total = Imap.find_default type_load ty 0 + Load.to_units r.size in
    Imap.set type_load ty total;
    let gauge_total =
      if dims = 1 then total
      else begin
        let ex =
          match Hashtbl.find_opt type_extra ty with
          | Some a -> a
          | None ->
              let a = Array.make (dims - 1) 0 in
              Hashtbl.replace type_extra ty a;
              a
        in
        let m = ref total in
        for k = 0 to dims - 2 do
          ex.(k) <- ex.(k) + r.extra.(k);
          if ex.(k) > !m then m := ex.(k)
        done;
        !m
      end
    in
    let place_cd fresh =
      let grp = cd_group_of ty ~cls ~block in
      let bin =
        if fresh then Fit_group.place_new grp store ~now r
        else Fit_group.place grp store ~now r
      in
      Hashtbl.replace owner bin grp;
      bin
    in
    let bin =
      match Hashtbl.find_opt cd ty with
      | Some grp when Fit_group.open_count grp > 0 -> place_cd false
      | _ ->
          if gauge_total <= threshold_units threshold cls then begin
            let bin = Fit_group.place gn store ~now r in
            Hashtbl.replace owner bin gn;
            bin
          end
          else place_cd true
    in
    update ();
    bin
  in
  let on_departure ~now:_ (r : Item.t) ~bin ~closed =
    let ty = pack_ty ~cls:(Item.ha_class r) ~block:(Item.arrival_block r) in
    let remaining = Imap.find_default type_load ty 0 - Load.to_units r.size in
    if remaining > 0 then Imap.set type_load ty remaining
    else Imap.remove type_load ty;
    if dims > 1 then begin
      match Hashtbl.find_opt type_extra ty with
      | Some ex ->
          let all0 = ref true in
          for k = 0 to dims - 2 do
            ex.(k) <- ex.(k) - r.extra.(k);
            if ex.(k) <> 0 then all0 := false
          done;
          if !all0 && remaining <= 0 then Hashtbl.remove type_extra ty
      | None -> ()
    end;
    let grp =
      match Hashtbl.find_opt owner bin with
      | Some grp -> grp
      | None -> invalid_arg "Ha.on_departure: unowned bin"
    in
    Fit_group.note_depart grp store bin ~closed;
    if closed then begin
      Hashtbl.remove owner bin;
      (* Drop exhausted CD groups so type tables stay small; a type's
         bins never come back once closed (its arrival block has
         passed). *)
      if grp != gn && Fit_group.open_count grp = 0 then Hashtbl.remove cd ty
    end;
    update ()
  in
  (* Relocations leave the type-load gauges alone (the item is still
     live, so its type's total is unchanged); only the two bins' fit
     groups need resyncing. The exhausted-CD-group pruning done on
     departure-close is skipped here: a bin may hold items of other
     types after earlier moves, so the moved item's type does not
     identify the group's type key — an empty group lingering in [cd]
     is only a size optimization, never a correctness issue. *)
  let on_move ~now:_ _ ~src ~dst ~closed =
    (match Hashtbl.find_opt owner src with
    | Some grp -> Fit_group.note_depart grp store src ~closed
    | None -> invalid_arg "Ha.on_move: unowned bin");
    if closed then Hashtbl.remove owner src;
    (match Hashtbl.find_opt owner dst with
    | Some grp -> Fit_group.note_insert grp store dst
    | None -> invalid_arg "Ha.on_move: unowned bin");
    update ()
  in
  { Policy.name = "HA"; on_arrival; on_departure; on_move = Some on_move }

let policy ?rule ?threshold () store = make ?rule ?threshold None store

let instrumented ?rule ?threshold () =
  let gauge = { gn_open = 0; cd_open = 0; max_gn = 0; max_classes = 0 } in
  let factory store = make ?rule ?threshold (Some gauge) store in
  (factory, gauge)
