(** The Hybrid Algorithm (Algorithm 1): [O(sqrt(log mu))]-competitive
    clairvoyant packing for general inputs (Theorem 3.2).

    HA classifies each item by its type [(i, c)] (duration class and
    arrival block, {!Dbp_instance.Item.ha_type}) and keeps two kinds of
    bins: GN (general) bins shared by all low-volume types, and CD
    (classify-by-duration) bins private to one type. An arriving item of
    type [T] goes

    - into the open CD bins of [T] (Any-Fit), if any exist;
    - else into the GN bins (Any-Fit), if the total active load of type
      [T] — including the item — is at most the threshold [1/(2 sqrt i)];
    - else into a freshly opened CD bin for [T].

    The threshold caps the total GN load at [sum_i 1/sqrt(i) =
    O(sqrt(log mu))] (Lemma 3.3) while ensuring each CD family carries
    enough load that the optimum must pay for it (Lemma 3.5). HA needs no
    advance knowledge of [mu]. *)

open Dbp_sim

val default_threshold : int -> float
(** The paper's GN admission cap [1 / (2 sqrt i)] for duration class
    [i >= 1], as a fraction of a bin. *)

val threshold_units : (int -> float) -> int -> int
(** [threshold_units threshold i] is the cap in {!Dbp_util.Load} units —
    the exact comparison HA performs. Raises [Invalid_argument] on a
    non-positive threshold. Exposed so external validators
    ({!Dbp_check.Oracles}) can re-check GN admissions independently. *)

val policy :
  ?rule:Dbp_binpack.Heuristics.rule ->
  ?threshold:(int -> float) ->
  unit ->
  Policy.factory
(** [rule] is the Any-Fit rule used inside both bin families (footnote 1
    of the paper: any Any-Fit works; default First-Fit — the paper's
    choice). [threshold i] is the GN admission cap for duration class [i]
    as a fraction of a bin; default [1 /. (2 sqrt i)]. Used by the
    ablation experiments E14/E16. *)

type gauge = {
  mutable gn_open : int;  (** currently open GN bins *)
  mutable cd_open : int;  (** currently open CD bins, all types *)
  mutable max_gn : int;  (** high-water mark of [gn_open] — Lemma 3.3 *)
  mutable max_classes : int;  (** distinct duration classes seen *)
}

val instrumented :
  ?rule:Dbp_binpack.Heuristics.rule ->
  ?threshold:(int -> float) ->
  unit ->
  Policy.factory * gauge
(** Like {!policy} but also returns a live gauge (updated as the run
    proceeds) so tests can check the Lemma 3.3 invariant
    [GN_t <= 2 + 4 sqrt(log mu)] on every prefix. The gauge observes the
    most recent policy instance the factory created. *)
