open Dbp_sim
open Dbp_analysis

let clairvoyant_roster ~mu_hint : (string * Policy.factory) list =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("BF", Dbp_baselines.Any_fit.best_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
    ("RT", Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
  ]

let core_roster ~mu_hint:_ : (string * Policy.factory) list =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
  ]

let quick_mus = [ 4; 16; 64; 256; 1024 ]
let full_mus = [ 4; 16; 64; 256; 1024; 4096; 16384 ]
let seeds ~quick = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let section title body =
  Printf.sprintf "%s\n%s\n%s\n" title (String.make (String.length title) '=') body

let fit_line name fitted = Format.asprintf "%-10s fits as %a" name Fit.pp fitted

let frontier_table (f : Frontier.t) =
  match f.curves with
  | [] -> "(no data)\n"
  | first :: _ ->
      let columns =
        "k"
        :: List.concat_map
             (fun (c : Frontier.curve) -> [ c.algorithm; c.algorithm ^ " moves" ])
             f.curves
      in
      let table = Dbp_report.Table.create ~columns in
      List.iteri
        (fun i (p : Frontier.point) ->
          let row =
            Dbp_report.Table.cell_int p.k
            :: List.concat_map
                 (fun (c : Frontier.curve) ->
                   let q = List.nth c.points i in
                   [
                     Dbp_report.Table.cell_ratio q.ratios.mean;
                     Dbp_report.Table.cell_float ~decimals:1 q.moves.mean;
                   ])
                 f.curves
          in
          Dbp_report.Table.add_row table row)
        first.points;
      let monotone =
        List.map
          (fun (c : Frontier.curve) ->
            Printf.sprintf "%s:%s" c.algorithm
              (if c.monotone then "monotone" else "NON-MONOTONE"))
          f.curves
      in
      Printf.sprintf
        "%s(ratios are vs OPT_R, mean over seeds; mean OPT_R = %.1f, exact on \
         %.0f%% of seeds)\nmode=%s strategy=%s   frontier %s\n"
        (Dbp_report.Table.render table)
        f.opt.Dbp_util.Stats.mean
        (100.0 *. f.opt_exact_fraction)
        (Dbp_sim.Recourse.mode_to_string f.mode)
        (Dbp_sim.Recourse.strategy_to_string f.strategy)
        (String.concat " " monotone)

let curve_table ?(extra = []) curves =
  match curves with
  | [] -> "(no data)\n"
  | first :: _ ->
      let columns =
        "mu"
        :: List.map (fun (c : Sweep.curve) -> c.algorithm) curves
        @ List.map fst extra
      in
      let table = Dbp_report.Table.create ~columns in
      List.iteri
        (fun i (p : Sweep.point) ->
          let row =
            Dbp_report.Table.cell_int (int_of_float p.mu)
            :: List.map
                 (fun (c : Sweep.curve) ->
                   let q = List.nth c.points i in
                   Dbp_report.Table.cell_ratio q.ratios.mean)
                 curves
            @ List.map (fun (_, f) -> f p) extra
          in
          Dbp_report.Table.add_row table row)
        first.points;
      Dbp_report.Table.render table
