(** Shared pieces of the experiment harness: the standard algorithm
    roster, sweep parameter sets, and report formatting helpers. *)

open Dbp_sim

val clairvoyant_roster : mu_hint:float -> (string * Policy.factory) list
(** HA and CDFF (the paper's algorithms) plus the baselines: First-Fit,
    Best-Fit, pure Classify-by-Duration, the Ren-Tang-style classifier
    (tuned for [mu_hint]) and the span-aware greedy. *)

val core_roster : mu_hint:float -> (string * Policy.factory) list
(** The four algorithms the paper's story revolves around: HA, CDFF,
    FF, CD. *)

val quick_mus : int list
(** Powers of two for fast (default) sweeps. *)

val full_mus : int list
(** Larger sweep for `--full` runs. *)

val seeds : quick:bool -> int list

val section : string -> string -> string
(** Title + body with an underline, for stitching reports together. *)

val fit_line : string -> Dbp_analysis.Fit.fitted -> string

val curve_table :
  ?extra:(string * (Dbp_analysis.Sweep.point -> string)) list ->
  Dbp_analysis.Sweep.curve list ->
  string
(** One row per [mu], one ratio column per algorithm; [extra] appends
    per-point columns computed from the first curve. *)

val frontier_table : Dbp_analysis.Frontier.t -> string
(** One row per recourse budget [k]; per algorithm, the mean ratio to
    OPT_R and the mean number of migrations executed. Footer states the
    budget mode/strategy and per-curve monotonicity. *)
