open Dbp_analysis
open Dbp_report

let run ~quick =
  let mu = if quick then 64 else 256 in
  let table =
    Table.create
      ~columns:
        [ "workload"; "algorithm"; "usage-time"; "momentary"; "max-bins" ]
  in
  let families =
    [
      ("pinning", Workload_defs.pinning ~mu ~seed:0);
      ("general", Workload_defs.general ~mu ~seed:1);
      ("binary", Workload_defs.binary ~mu ~seed:0);
    ]
  in
  let algorithms =
    [
      ("FF", Dbp_baselines.Any_fit.first_fit);
      ("HA", Dbp_core.Ha.policy ());
      ("CDFF", Dbp_core.Cdff.policy ());
    ]
  in
  let cells =
    List.concat_map
      (fun (wname, inst) ->
        List.map (fun (aname, factory) -> (wname, inst, aname, factory)) algorithms)
      families
  in
  let rows =
    Dbp_util.Pool.with_default @@ fun pool ->
    let bank =
      Dbp_util.Pool.Bank.create (fun () -> Dbp_binpack.Solver.create ())
    in
    Dbp_util.Pool.map pool
      (fun (wname, inst, aname, factory) ->
        let res = Dbp_sim.Engine.run factory inst in
        let m =
          Dbp_util.Pool.Bank.use bank (fun solver -> Momentary.measure ~solver res inst)
        in
        [
          wname;
          aname;
          Table.cell_ratio m.usage_ratio;
          Table.cell_ratio m.momentary_ratio;
          Table.cell_ratio m.max_bins_ratio;
        ])
      cells
  in
  List.iter (Table.add_row table) rows;
  Common.section
    (Printf.sprintf
       "E20 / goal functions compared (mu = %d): usage-time vs momentary vs max-bins"
       mu)
    (Table.render table
    ^ "\nThe introduction's point, quantified. The max-bins objective scores FF on\n\
       the pinning family at 1.00x — it never opens more bins than OPT's peak —\n\
       while FF actually wastes ~mu/2 of all server time; only the usage-time\n\
       objective sees the accumulated waste. Conversely, the momentary objective\n\
       over-penalizes harmless transients: CDFF's t=0 burst on the binary input\n\
       scores log mu + 1 momentarily although its total usage is within\n\
       2 log log mu + 1 of optimal.\n")
