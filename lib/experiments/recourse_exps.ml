open Dbp_analysis
open Dbp_sim

(* The frontier experiment fixes one general workload (mu = 64) and
   sweeps the migration budget: every zero-recourse heuristic sits at the
   k = 0 end, OPT_R is the k = infinity end, and the curves chart how far
   a handful of moves per event closes the gap. *)

let mu = 64

let frontier ~quick =
  let seeds = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ks = if quick then [ 0; 1; 2; 4 ] else [ 0; 1; 2; 4; 8 ] in
  let algorithms =
    [
      ("FF", Dbp_baselines.Any_fit.first_fit);
      ("BF", Dbp_baselines.Any_fit.best_fit);
      ("HA", Dbp_core.Ha.policy ());
      ("CDFF", Dbp_core.Cdff.policy ());
    ]
  in
  let workload ~seed = Workload_defs.general ~mu ~seed in
  let per_event =
    Frontier.run ~mode:Recourse.Per_event ~strategy:Recourse.Close_emptiest
      ~algorithms ~workload ~ks ~seeds ()
  in
  let strategies =
    [
      ("close-emptiest", Recourse.Close_emptiest);
      ("consolidate", Recourse.Consolidate);
      ("waste:1.25", Recourse.Waste_threshold 1.25);
    ]
  in
  (* Strategy shoot-out at a fixed budget: same seeds, FF only. *)
  let k_fixed = 2 in
  let strat_table =
    Dbp_report.Table.create
      ~columns:[ "strategy"; "FF ratio"; "moves"; "bin-capacities moved" ]
  in
  List.iter
    (fun (label, strategy) ->
      let f =
        Frontier.run ~mode:Recourse.Per_event ~strategy
          ~algorithms:[ ("FF", Dbp_baselines.Any_fit.first_fit) ]
          ~workload ~ks:[ k_fixed ] ~seeds ()
      in
      let c = List.hd f.Frontier.curves in
      let p = List.hd c.Frontier.points in
      Dbp_report.Table.add_row strat_table
        [
          label;
          Dbp_report.Table.cell_ratio p.Frontier.ratios.Dbp_util.Stats.mean;
          Dbp_report.Table.cell_float ~decimals:1 p.Frontier.moves.Dbp_util.Stats.mean;
          Dbp_report.Table.cell_float ~decimals:1
            (p.Frontier.moved_units.Dbp_util.Stats.mean
            /. float_of_int Dbp_util.Load.capacity);
        ])
    strategies;
  Common.section
    (Printf.sprintf
       "E21: cost-vs-migration frontier (general workload, mu = %d)" mu)
    (Common.frontier_table per_event
    ^ "\nExpected shape: every curve is monotone non-increasing in k and pinned\n\
       between its k = 0 value and ratio 1.0 (= OPT_R, the infinite-recourse\n\
       endpoint); the first unit of budget buys most of the improvement.\n\n"
    ^ Printf.sprintf "Strategy comparison at k = %d (FF, per-event budget):\n"
        k_fixed
    ^ Dbp_report.Table.render strat_table)
