(** E21: the cost-vs-migration frontier — zero-recourse heuristics at one
    end, OPT_R at the other, and {!Dbp_sim.Recourse}-wrapped policies in
    between, swept over the per-event budget [k]. *)

val frontier : quick:bool -> string
