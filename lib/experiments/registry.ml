type entry = {
  id : string;
  experiment : string;
  title : string;
  run : quick:bool -> string;
}

let all =
  [
    {
      id = "table1";
      experiment = "E1";
      title = "Table 1: bounds summary, measured";
      run = (fun ~quick -> Table1.run ~quick);
    };
    {
      id = "figure1";
      experiment = "E2";
      title = "Figure 1: CDFF bin rows snapshot";
      run = (fun ~quick -> Figures.figure1 ~quick);
    };
    {
      id = "figure2";
      experiment = "E3";
      title = "Figure 2: binary input sigma_8";
      run = (fun ~quick -> Figures.figure2 ~quick);
    };
    {
      id = "figure3";
      experiment = "E4";
      title = "Figure 3: CDFF packing of sigma_8";
      run = (fun ~quick -> Figures.figure3 ~quick);
    };
    {
      id = "lemma31";
      experiment = "E5";
      title = "Lemma 3.1: OPT_R sandwich bounds";
      run = (fun ~quick -> Lemma_exps.lemma31 ~quick);
    };
    {
      id = "lemma33";
      experiment = "E6";
      title = "Lemma 3.3: HA GN-bin bound";
      run = (fun ~quick -> Lemma_exps.lemma33 ~quick);
    };
    {
      id = "theorem32";
      experiment = "E7";
      title = "Theorem 3.2: HA ~ sqrt(log mu) on general inputs";
      run = (fun ~quick -> Theorem_exps.theorem32 ~quick);
    };
    {
      id = "theorem43";
      experiment = "E8";
      title = "Theorem 4.3: adversarial lower bound";
      run = (fun ~quick -> Theorem_exps.theorem43 ~quick);
    };
    {
      id = "corollary58";
      experiment = "E9";
      title = "Corollary 5.8: exact row-count identity";
      run = (fun ~quick -> Binary_exps.corollary58 ~quick);
    };
    {
      id = "lemma59";
      experiment = "E10";
      title = "Lemma 5.9 / Corollary 5.10: longest zero runs";
      run = (fun ~quick -> Binary_exps.lemma59 ~quick);
    };
    {
      id = "prop53";
      experiment = "E11";
      title = "Proposition 5.3: CDFF on sigma_mu";
      run = (fun ~quick -> Binary_exps.prop53 ~quick);
    };
    {
      id = "theorem51";
      experiment = "E12";
      title = "Theorem 5.1: CDFF ~ log log mu on aligned inputs";
      run = (fun ~quick -> Theorem_exps.theorem51 ~quick);
    };
    {
      id = "nonclairvoyant";
      experiment = "E13";
      title = "Table 1 row 3: pinning family, FF ~ mu";
      run = (fun ~quick -> Contrast_exps.nonclairvoyant ~quick);
    };
    {
      id = "ablation_ha";
      experiment = "E14";
      title = "Ablation: HA threshold profile";
      run = (fun ~quick -> Ablations.ha_threshold ~quick);
    };
    {
      id = "ablation_cdff";
      experiment = "E15";
      title = "Ablation: CDFF dynamic vs static rows";
      run = (fun ~quick -> Ablations.cdff_rows ~quick);
    };
    {
      id = "ablation_fit";
      experiment = "E16";
      title = "Ablation: Any-Fit rule inside HA";
      run = (fun ~quick -> Ablations.any_fit_rule ~quick);
    };
    {
      id = "cd_killer";
      experiment = "E17";
      title = "CD killer: Omega(log mu) for pure classify-by-duration";
      run = (fun ~quick -> Contrast_exps.cd_killer ~quick);
    };
    {
      id = "cloud";
      experiment = "E18";
      title = "Cloud-gaming trace scenario";
      run = (fun ~quick -> Contrast_exps.cloud ~quick);
    };
    {
      id = "open_problem";
      experiment = "E19";
      title = "Open problem: aligned lower-bound probes";
      run = (fun ~quick -> Open_problem.run ~quick);
    };
    {
      id = "objectives";
      experiment = "E20";
      title = "Goal functions: usage-time vs momentary vs max-bins";
      run = (fun ~quick -> Objectives.run ~quick);
    };
    {
      id = "frontier";
      experiment = "E21";
      title = "Cost-vs-migration frontier: bounded recourse";
      run = (fun ~quick -> Recourse_exps.frontier ~quick);
    };
  ]

let run_entries ?jobs ~quick entries =
  (* Independent experiments are themselves pool tasks; the sweeps they
     run inside nest their cell tasks onto the same shared pool (workers
     help while awaiting, so nesting cannot deadlock). Reports come back
     in registry order whatever finished first. *)
  Dbp_util.Pool.with_default ?jobs @@ fun pool ->
  Dbp_util.Pool.map pool
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let report = e.run ~quick in
      (e, report, Unix.gettimeofday () -. t0))
    entries

let find key =
  let key = String.lowercase_ascii key in
  List.find_opt
    (fun e -> String.lowercase_ascii e.id = key || String.lowercase_ascii e.experiment = key)
    all
