(** The experiment registry: stable ids (DESIGN.md's experiment index)
    mapped to runners. Used by both the bench harness (run everything)
    and the CLI (run one by id). *)

type entry = {
  id : string;  (** e.g. "table1", "theorem43" *)
  experiment : string;  (** DESIGN.md id, e.g. "E1" *)
  title : string;
  run : quick:bool -> string;
}

val all : entry list
(** In presentation order. *)

val find : string -> entry option
(** Look up by [id] or [experiment] (case-insensitive). *)

val run_entries :
  ?jobs:int -> quick:bool -> entry list -> (entry * string * float) list
(** Run independent experiments as pool tasks (see {!Dbp_util.Pool};
    [?jobs] as in {!Dbp_analysis.Sweep.run}) and return
    [(entry, report, seconds)] in input order. Reports are identical to
    sequential runs; with [jobs > 1] the per-entry seconds are wall
    clock of a possibly contended run. *)
