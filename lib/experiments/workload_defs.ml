open Dbp_workloads

let horizon_for mu = max 64 (min (4 * mu) 2048)

let general_vec ~resource ~mu ~seed =
  General_random.generate
    ~config:
      {
        General_random.default with
        horizon = horizon_for mu;
        max_duration = mu;
        dist = Dyadic_uniform;
        resource;
      }
    ~seed ()

let general ~mu ~seed = general_vec ~resource:Resource_shape.scalar ~mu ~seed

let general_uniform_vec ~resource ~mu ~seed =
  General_random.generate
    ~config:
      {
        General_random.default with
        horizon = horizon_for mu;
        max_duration = mu;
        dist = Uniform;
        resource;
      }
    ~seed ()

let general_uniform ~mu ~seed =
  general_uniform_vec ~resource:Resource_shape.scalar ~mu ~seed

let aligned_vec ~resource ~mu ~seed =
  Aligned_random.generate
    ~config:
      {
        Aligned_random.default with
        top_class = Dbp_util.Ints.ceil_log2 mu;
        horizon = horizon_for mu;
        resource;
      }
    ~seed ()

let aligned ~mu ~seed = aligned_vec ~resource:Resource_shape.scalar ~mu ~seed

let binary ~mu ~seed:_ = Binary_input.generate ~mu

let pinning ~mu ~seed:_ =
  let k = min mu 256 in
  Pinning.generate ~groups:k ~k ~mu ()

let cd_killer ~mu ~seed:_ = Cd_killer.generate ~mu ()
