(** Canonical workload builders used across experiments, parameterized
    by [mu] and [seed] so sweeps are reproducible. *)

open Dbp_instance
open Dbp_workloads

val general : mu:int -> seed:int -> Instance.t
(** General random clairvoyant workload with dyadic-uniform durations,
    [max_duration = mu], horizon scaled with (and capped by) [mu]. *)

val general_uniform : mu:int -> seed:int -> Instance.t
(** Same but uniform durations. *)

val aligned : mu:int -> seed:int -> Instance.t
(** Aligned random workload with top class [log2 mu]. [mu] must be a
    power of two. *)

val general_vec : resource:Resource_shape.spec -> mu:int -> seed:int -> Instance.t
val general_uniform_vec :
  resource:Resource_shape.spec -> mu:int -> seed:int -> Instance.t

val aligned_vec : resource:Resource_shape.spec -> mu:int -> seed:int -> Instance.t
(** Vector variants of the three random workloads: same parameters plus
    an explicit {!Dbp_workloads.Resource_shape.spec}. With
    [Resource_shape.scalar] they are the classic builders, draw for
    draw. *)

val binary : mu:int -> seed:int -> Instance.t
(** The deterministic binary input (seed ignored). *)

val pinning : mu:int -> seed:int -> Instance.t
(** The First-Fit pinning instance (seed ignored); group count capped so
    instance sizes stay manageable. *)

val cd_killer : mu:int -> seed:int -> Instance.t
(** One thin item per class at every legal arrival (seed ignored). *)
