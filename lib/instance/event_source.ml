type t = Item.t Seq.t

let empty : t = Seq.empty
let of_instance inst : t = Array.to_seq (Instance.items inst)
let of_items l : t = of_instance (Instance.of_items l)

(* Stable lazy two-way merge: on ties the left source wins, so
   [merge_list] emits equal-key items in source order. *)
let rec merge_by ~cmp (a : 'a Seq.t) (b : 'a Seq.t) : 'a Seq.t =
 fun () ->
  match a () with
  | Seq.Nil -> b ()
  | Seq.Cons (x, a') -> (
      match b () with
      | Seq.Nil -> Seq.Cons (x, a')
      | Seq.Cons (y, b') ->
          if cmp x y <= 0 then Seq.Cons (x, merge_by ~cmp a' (fun () -> Seq.Cons (y, b')))
          else Seq.Cons (y, merge_by ~cmp (fun () -> Seq.Cons (x, a')) b'))

let merge a b = merge_by ~cmp:Item.compare a b
let merge_list sources = List.fold_right merge sources Seq.empty
let to_instance (s : t) = Instance.of_items (List.of_seq s)
let length (s : t) = Seq.fold_left (fun n _ -> n + 1) 0 s

(* A cursor is just a resumable head of the sequence; [next_into] moves
   each forced item straight into an {!Item_block} slot so the consumer
   works with unboxed fields (the boxed item rides along in the block's
   mirror for the policy boundary). *)
type cursor = { mutable rest : t }

let cursor (s : t) = { rest = s }

let next_into cur block =
  match cur.rest () with
  | Seq.Nil -> -1
  | Seq.Cons (r, rest) ->
      cur.rest <- rest;
      Item_block.alloc block r

(* Batched pull: an emitter fills up to [Array.length slots] arena
   slots per call, so the engine pays the source boundary (a closure
   call and its spilled registers) once per chunk instead of once per
   item. The count contract — 0 iff exhausted — lets the drain loop
   test for termination without a sentinel slot; emitters absorb empty
   ticks internally rather than returning 0 mid-stream. *)
module Chunk = struct
  type chunk = { fill : Item_block.t -> int array -> int }
  type t = chunk

  let make fill = { fill }

  let next_chunk c block slots =
    let len = Array.length slots in
    if len < 1 then invalid_arg "Event_source.Chunk.next_chunk: empty slot buffer";
    let n = c.fill block slots in
    if n < 0 || n > len then
      invalid_arg "Event_source.Chunk.next_chunk: emitter returned a bad count";
    n

  let of_seq (s : Item.t Seq.t) =
    let cur = cursor s in
    make (fun block slots ->
        let len = Array.length slots in
        let n = ref 0 in
        let exhausted = ref false in
        while (not !exhausted) && !n < len do
          let slot = next_into cur block in
          if slot < 0 then exhausted := true
          else begin
            slots.(!n) <- slot;
            incr n
          end
        done;
        !n)
end

let is_ordered (s : t) =
  let ok = ref true and prev = ref None in
  Seq.iter
    (fun r ->
      (match !prev with
      | Some p when Item.compare p r > 0 -> ok := false
      | _ -> ());
      prev := Some r)
    s;
  !ok
