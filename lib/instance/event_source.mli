(** Lazy arrival-ordered item sources.

    An [Event_source.t] is the streaming counterpart of {!Instance.t}: a
    sequence of items in processing order — ascending [(arrival, id)],
    the order {!Instance.items} stores and the engine replays — produced
    on demand, so a multi-million-item trace is simulated without ever
    being materialized.

    Sources are expected to be {e persistent}: forcing the same sequence
    twice yields the same items (the streaming workload constructors
    guarantee this by carrying copied PRNG snapshots in their unfold
    state). That makes a source reusable for a verification double-run
    — once streamed, once materialized via {!to_instance}. *)

type t = Item.t Seq.t

val empty : t

val of_instance : Instance.t -> t
(** The instance's items as a source (already sorted, zero-copy). *)

val of_items : Item.t list -> t
(** Sorts into processing order; raises like {!Instance.of_items}. *)

val merge : t -> t -> t
(** Lazy stable merge by [(arrival, id)]; ties prefer the left source.
    O(1) memory per step. Both inputs must themselves be ordered. *)

val merge_list : t list -> t
(** Fold of {!merge}; earlier sources win ties. *)

val merge_by : cmp:('a -> 'a -> int) -> 'a Seq.t -> 'a Seq.t -> 'a Seq.t
(** The underlying generic stable merge, exposed for constructors that
    merge pre-item representations before ids are assigned. *)

(** {2 Streaming consumption}

    The streaming engine drains a source through a cursor that deposits
    each item directly into an {!Item_block} arena, so the hot loop
    addresses unboxed slots and the boxed item is only touched at the
    policy boundary. *)

type cursor

val cursor : t -> cursor
(** A resumable read head at the start of the source. *)

val next_into : cursor -> Item_block.t -> int
(** Force the next item, allocate it into the block and return its
    slot; [-1] when the source is exhausted. The caller owns the slot
    (and must eventually {!Item_block.free} it). *)

(** {2 Batched consumption}

    A {!Chunk.t} hands the consumer up to K items per call instead of
    one, so the source boundary — a closure call, its register spills
    and (on the Seq path) a [Seq.Cons] allocation per item — is paid
    once per chunk. Workload generators provide {e native} chunked
    emitters ([Cloud_traces.chunks] etc.) that advance a single PRNG
    in the exact draw order of their [stream] counterpart, making the
    chunked item sequence bit-identical to the Seq one while skipping
    the per-tick PRNG copies and list/Seq plumbing entirely. Native
    emitters are single-pass (not persistent): build a fresh one per
    run. *)

module Chunk : sig
  type source := t

  type t
  (** A chunked emitter: stateful, single-pass. *)

  val make : (Item_block.t -> int array -> int) -> t
  (** [make fill] wraps an emitter function. [fill block slots] must
      allocate the next [n <= Array.length slots] items of the source
      into [block] (in processing order), store their slot indices in
      [slots.(0) .. slots.(n-1)] and return [n]. It must return [0]
      exactly when the source is exhausted — an emitter whose current
      tick is empty keeps drawing subsequent ticks rather than
      returning a mid-stream [0]. *)

  val next_chunk : t -> Item_block.t -> int array -> int
  (** Pull the next chunk into [block] through [slots]. Returns the
      number of slots filled; [0] iff the source is exhausted. Raises
      [Invalid_argument] when [slots] is empty or the emitter reports
      an out-of-range count. The caller owns the returned slots. *)

  val of_seq : source -> t
  (** Compatibility shim: a chunked view of any Seq-backed source, one
      cursor step per slot. Same item sequence, none of the batching
      savings — the reference implementation the native emitters are
      tested against. *)
end

val to_instance : t -> Instance.t
(** Materialize (forces the whole source; O(n) memory). Raises on
    duplicate ids like {!Instance.of_items}. *)

val length : t -> int
(** Forces the whole source. *)

val is_ordered : t -> bool
(** Whether the source is in processing order (forces the source). All
    constructors in this library produce ordered sources; use this to
    validate an external one before streaming it. *)
