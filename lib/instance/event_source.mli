(** Lazy arrival-ordered item sources.

    An [Event_source.t] is the streaming counterpart of {!Instance.t}: a
    sequence of items in processing order — ascending [(arrival, id)],
    the order {!Instance.items} stores and the engine replays — produced
    on demand, so a multi-million-item trace is simulated without ever
    being materialized.

    Sources are expected to be {e persistent}: forcing the same sequence
    twice yields the same items (the streaming workload constructors
    guarantee this by carrying copied PRNG snapshots in their unfold
    state). That makes a source reusable for a verification double-run
    — once streamed, once materialized via {!to_instance}. *)

type t = Item.t Seq.t

val empty : t

val of_instance : Instance.t -> t
(** The instance's items as a source (already sorted, zero-copy). *)

val of_items : Item.t list -> t
(** Sorts into processing order; raises like {!Instance.of_items}. *)

val merge : t -> t -> t
(** Lazy stable merge by [(arrival, id)]; ties prefer the left source.
    O(1) memory per step. Both inputs must themselves be ordered. *)

val merge_list : t list -> t
(** Fold of {!merge}; earlier sources win ties. *)

val merge_by : cmp:('a -> 'a -> int) -> 'a Seq.t -> 'a Seq.t -> 'a Seq.t
(** The underlying generic stable merge, exposed for constructors that
    merge pre-item representations before ids are assigned. *)

(** {2 Streaming consumption}

    The streaming engine drains a source through a cursor that deposits
    each item directly into an {!Item_block} arena, so the hot loop
    addresses unboxed slots and the boxed item is only touched at the
    policy boundary. *)

type cursor

val cursor : t -> cursor
(** A resumable read head at the start of the source. *)

val next_into : cursor -> Item_block.t -> int
(** Force the next item, allocate it into the block and return its
    slot; [-1] when the source is exhausted. The caller owns the slot
    (and must eventually {!Item_block.free} it). *)

val to_instance : t -> Instance.t
(** Materialize (forces the whole source; O(n) memory). Raises on
    duplicate ids like {!Instance.of_items}. *)

val length : t -> int
(** Forces the whole source. *)

val is_ordered : t -> bool
(** Whether the source is in processing order (forces the source). All
    constructors in this library produce ordered sources; use this to
    validate an external one before streaming it. *)
