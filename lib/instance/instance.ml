open Dbp_util

type t = {
  items : Item.t array;
  mutable by_id : (int, Item.t) Hashtbl.t option;
      (** built on the first [find]; validators call [find] per event, so
          the O(n) scan this replaces was quadratic over a run *)
}

let of_items l =
  let items = Array.of_list l in
  Array.sort Item.compare items;
  let seen = Hashtbl.create (Array.length items) in
  Array.iter
    (fun (r : Item.t) ->
      if Hashtbl.mem seen r.id then invalid_arg "Instance.of_items: duplicate item id";
      Hashtbl.add seen r.id ())
    items;
  (* Mixed dimensionalities would make "fits" ill-defined mid-run. *)
  if Array.length items > 0 then begin
    let d = Item.dims items.(0) in
    Array.iter
      (fun r ->
        if Item.dims r <> d then
          invalid_arg "Instance.of_items: items of mixed dimensionality")
      items
  end;
  { items; by_id = None }

let items t = t.items
let length t = Array.length t.items
let is_empty t = length t = 0
let dims t = if is_empty t then 1 else Item.dims t.items.(0)

(* Racing domains would each build an identical table and one write
   would win — wasteful but sound, since [items] is immutable. *)
let index t =
  match t.by_id with
  | Some h -> h
  | None ->
      let h = Hashtbl.create (Array.length t.items) in
      Array.iter (fun (r : Item.t) -> Hashtbl.replace h r.id r) t.items;
      t.by_id <- Some h;
      h

let find t id =
  match Hashtbl.find_opt (index t) id with
  | Some r -> r
  | None -> raise Not_found

let nonempty t op = if is_empty t then invalid_arg ("Instance." ^ op ^ ": empty instance")

let fold_durations f init t =
  Array.fold_left (fun acc r -> f acc (Item.duration r)) init t.items

let min_duration t =
  nonempty t "min_duration";
  fold_durations min max_int t

let max_duration t =
  nonempty t "max_duration";
  fold_durations max 0 t

let mu t = float_of_int (max_duration t) /. float_of_int (min_duration t)
let log2_mu t = Float.log2 (mu t)

let start_time t =
  nonempty t "start_time";
  t.items.(0).arrival

let end_time t =
  nonempty t "end_time";
  Array.fold_left (fun acc (r : Item.t) -> max acc r.departure) 0 t.items

let demand_units t =
  Array.fold_left
    (fun acc (r : Item.t) -> acc + (Load.to_units r.size * Item.duration r))
    0 t.items

let demand t = float_of_int (demand_units t) /. float_of_int Load.capacity

(* Sweep the interval endpoints; count coverage. Items are sorted by
   arrival so a single pass with a running frontier suffices. *)
let span t =
  if is_empty t then 0
  else begin
    let total = ref 0 and frontier = ref t.items.(0).arrival in
    Array.iter
      (fun (r : Item.t) ->
        if r.arrival > !frontier then frontier := r.arrival;
        if r.departure > !frontier then begin
          total := !total + (r.departure - !frontier);
          frontier := r.departure
        end)
      t.items;
    !total
  end

let active_at t at =
  Array.to_list t.items |> List.filter (fun r -> Item.is_active r ~at)

let is_aligned t = Array.for_all Item.is_aligned t.items
let is_contiguous t = is_empty t || span t = end_time t - start_time t

let union a b = of_items (Array.to_list a.items @ Array.to_list b.items)

let shift t offset =
  of_items
    (Array.to_list t.items
    |> List.map (fun (r : Item.t) ->
           Item.make_vec ~extra:r.extra ~id:r.id ~arrival:(r.arrival + offset)
             ~departure:(r.departure + offset) ~size:r.size))

let pp ppf t =
  Format.fprintf ppf "@[<v>%d items:@,%a@]" (length t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut Item.pp)
    t.items
