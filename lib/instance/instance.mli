(** An input sequence [sigma]: a finite set of items with distinct ids,
    stored in arrival order (ties broken by id — the order the online
    algorithm must handle them in). *)

type t

val of_items : Item.t list -> t
(** Sorts by [(arrival, id)]. Raises [Invalid_argument] on duplicate
    ids or on items of mixed dimensionality. The empty instance is
    allowed. *)

val dims : t -> int
(** Resource dimensionality shared by every item (enforced by
    {!of_items}); 1 for the empty instance. *)

val items : t -> Item.t array
(** The items in processing order. Do not mutate. *)

val length : t -> int
val is_empty : t -> bool

val find : t -> int -> Item.t
(** Item by id; raises [Not_found]. Amortized O(1): the id index is a
    hashtable built lazily on the first lookup. *)

val min_duration : t -> int
(** Raises [Invalid_argument] when empty. *)

val max_duration : t -> int

val mu : t -> float
(** max/min duration ratio; 1.0 for instances with a single duration. *)

val log2_mu : t -> float
(** [log2 (mu t)], the quantity the paper's bounds are phrased in. *)

val start_time : t -> int
(** Earliest arrival. *)

val end_time : t -> int
(** Latest departure. *)

val demand_units : t -> int
(** d(sigma) in load-units x ticks: [sum size * duration]. *)

val demand : t -> float
(** d(sigma) in bin x ticks. *)

val span : t -> int
(** Measure (in ticks) of the union of the item intervals. *)

val active_at : t -> int -> Item.t list
(** Items whose interval contains the tick, in processing order. *)

val is_aligned : t -> bool
(** Definition 2.1 holds for every item. *)

val is_contiguous : t -> bool
(** The union of intervals is a single interval (the standing assumption
    of Section 3; [span = end_time - start_time]). Empty instances are
    contiguous. *)

val union : t -> t -> t
(** Merge two instances; ids must remain distinct. *)

val shift : t -> int -> t
(** Translate every item in time by a (possibly negative) offset; arrival
    times must remain non-negative. *)

val pp : Format.formatter -> t -> unit
