open Dbp_util

let header = "id,arrival,departure,size"

(* Vector instances carry one extra column per extra dimension:
   "id,arrival,departure,size,size2,...,sized". Scalar instances keep
   the historical 4-column form byte for byte. *)
let header_for dims =
  if dims <= 1 then header
  else begin
    let b = Buffer.create 48 in
    Buffer.add_string b header;
    for k = 2 to dims do
      Buffer.add_string b (Printf.sprintf ",size%d" k)
    done;
    Buffer.contents b
  end

let row (r : Item.t) =
  let b = Buffer.create 48 in
  Buffer.add_string b
    (Printf.sprintf "%d,%d,%d,%.9f" r.id r.arrival r.departure
       (Load.to_float r.size));
  Array.iter
    (fun u ->
      Buffer.add_string b (Printf.sprintf ",%.9f" (Load.to_float (Load.of_units u))))
    r.extra;
  Buffer.contents b

let to_channel oc inst =
  output_string oc (header_for (Instance.dims inst));
  output_char oc '\n';
  Array.iter
    (fun r ->
      output_string oc (row r);
      output_char oc '\n')
    (Instance.items inst)

let to_file ~path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc inst)

let to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_for (Instance.dims inst));
  Buffer.add_char buf '\n';
  Array.iter
    (fun r ->
      Buffer.add_string buf (row r);
      Buffer.add_char buf '\n')
    (Instance.items inst);
  Buffer.contents buf

(* [seen] maps item id -> line it was first defined on, so duplicates are
   rejected at parse time with both positions (Instance.of_items would
   catch them too, but without line numbers). Size and duration are
   validated here as well: Load.of_float clamps silently, and a clamped
   size of 0 or a non-positive duration is always an input mistake, not
   something to pack. Fields beyond the fourth are sizes in resource
   dimensions 2..d (which may be 0 — only dimension 0 must carry
   load). *)
let parse_line ~seen ~lineno line =
  let error fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" lineno m)) fmt in
  match String.split_on_char ',' line with
  | id :: arrival :: departure :: size :: extras -> (
      let int_field what s =
        match int_of_string (String.trim s) with
        | n -> n
        | exception Failure _ -> error "malformed %s %S" what (String.trim s)
      in
      let id = int_field "id" id in
      (match Hashtbl.find_opt seen id with
      | Some first -> error "duplicate item id %d (first defined at line %d)" id first
      | None -> Hashtbl.replace seen id lineno);
      let arrival = int_field "arrival" arrival in
      let departure = int_field "departure" departure in
      let float_field what s =
        match float_of_string (String.trim s) with
        | f -> f
        | exception Failure _ -> error "malformed %s %S" what (String.trim s)
      in
      let size_f = float_field "size" size in
      if departure <= arrival then
        error "item %d has non-positive duration (arrival %d, departure %d)" id
          arrival departure;
      if size_f <= 0.0 then error "item %d has non-positive size %g" id size_f;
      if size_f > 1.0 then error "item %d has size %g > 1 (a full bin)" id size_f;
      let extra =
        match extras with
        | [] -> Item.no_extra
        | _ ->
            extras
            |> List.mapi (fun k s ->
                   let f = float_field (Printf.sprintf "size%d" (k + 2)) s in
                   if f < 0.0 then
                     error "item %d has negative size %g in dimension %d" id f (k + 1);
                   if f > 1.0 then
                     error "item %d has size %g > 1 (a full bin) in dimension %d" id f
                       (k + 1);
                   Load.to_units (Load.of_float f))
            |> Array.of_list
      in
      try Item.make_vec ~extra ~id ~arrival ~departure ~size:(Load.of_float size_f)
      with Invalid_argument msg -> error "%s" msg)
  | _ -> failwith (Printf.sprintf "line %d: expected at least 4 comma-separated fields" lineno)

(* A header is recognized after dropping spaces/tabs and lowercasing, so
   "Id, Arrival, Departure, Size" (and CRLF variants — [String.trim]
   eats the '\r') is skipped, not parsed as a malformed item. Vector
   headers extend the scalar one with ",size2..." columns, so a prefix
   match covers every dimensionality (data lines start with a digit,
   never "id"). *)
let is_header line =
  let b = Buffer.create (String.length line) in
  String.iter
    (fun c ->
      match c with ' ' | '\t' -> () | c -> Buffer.add_char b (Char.lowercase_ascii c))
    line;
  let s = Buffer.contents b in
  String.length s >= String.length header && String.sub s 0 (String.length header) = header

let consume_line ~seen ~lineno items line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' || is_header line then items
  else parse_line ~seen ~lineno line :: items

let finish items =
  try Instance.of_items items with Invalid_argument msg -> failwith msg

let of_string s =
  let items = ref [] in
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' s
  |> List.iteri (fun i line -> items := consume_line ~seen ~lineno:(i + 1) !items line);
  finish !items

(* Chunked byte reader, so non-seekable inputs (/dev/stdin, pipes,
   process substitution) work: [in_channel_length] is meaningless
   there. Unlike [input_line], the framing is explicit: a final line
   that the writer never terminated — a truncated upload, a producer
   killed mid-record — is an error with its line number, not a record
   silently parsed from half the bytes. (A missing newline after the
   very last complete record would be indistinguishable from a record
   cut mid-field; both are rejected.) *)
let of_channel ic =
  let items = ref [] in
  let seen = Hashtbl.create 64 in
  let lineno = ref 0 in
  let pending = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let flush_line () =
    incr lineno;
    let line = Buffer.contents pending in
    Buffer.clear pending;
    items := consume_line ~seen ~lineno:!lineno !items line
  in
  let eof = ref false in
  while not !eof do
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n = 0 then eof := true
    else
      for i = 0 to n - 1 do
        let c = Bytes.unsafe_get chunk i in
        if c = '\n' then flush_line () else Buffer.add_char pending c
      done
  done;
  if String.trim (Buffer.contents pending) <> "" then begin
    let tail = Buffer.contents pending in
    let shown =
      if String.length tail > 40 then String.sub tail 0 40 ^ "..." else tail
    in
    failwith
      (Printf.sprintf "line %d: truncated final line (no trailing newline): %S"
         (!lineno + 1) shown)
  end;
  finish !items

let of_file ~path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
