open Dbp_util

let header = "id,arrival,departure,size"

let to_channel oc inst =
  output_string oc header;
  output_char oc '\n';
  Array.iter
    (fun (r : Item.t) ->
      Printf.fprintf oc "%d,%d,%d,%.9f\n" r.id r.arrival r.departure
        (Load.to_float r.size))
    (Instance.items inst)

let to_file ~path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc inst)

let to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (r : Item.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.9f\n" r.id r.arrival r.departure
           (Load.to_float r.size)))
    (Instance.items inst);
  Buffer.contents buf

let parse_line ~lineno line =
  match String.split_on_char ',' line with
  | [ id; arrival; departure; size ] -> (
      try
        Item.make ~id:(int_of_string (String.trim id))
          ~arrival:(int_of_string (String.trim arrival))
          ~departure:(int_of_string (String.trim departure))
          ~size:(Load.of_float (float_of_string (String.trim size)))
      with
      | Failure _ -> failwith (Printf.sprintf "line %d: malformed number" lineno)
      | Invalid_argument msg -> failwith (Printf.sprintf "line %d: %s" lineno msg))
  | _ -> failwith (Printf.sprintf "line %d: expected 4 comma-separated fields" lineno)

(* A header is recognized after dropping spaces/tabs and lowercasing, so
   "Id, Arrival, Departure, Size" (and CRLF variants — [String.trim]
   eats the '\r') is skipped, not parsed as a malformed item. *)
let is_header line =
  let b = Buffer.create (String.length line) in
  String.iter
    (fun c ->
      match c with ' ' | '\t' -> () | c -> Buffer.add_char b (Char.lowercase_ascii c))
    line;
  Buffer.contents b = header

let consume_line ~lineno items line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' || is_header line then items
  else parse_line ~lineno line :: items

let finish items =
  try Instance.of_items items with Invalid_argument msg -> failwith msg

let of_string s =
  let items = ref [] in
  String.split_on_char '\n' s
  |> List.iteri (fun i line -> items := consume_line ~lineno:(i + 1) !items line);
  finish !items

(* Line-by-line, so non-seekable inputs (/dev/stdin, pipes, process
   substitution) work: [in_channel_length] is meaningless there. *)
let of_channel ic =
  let items = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       items := consume_line ~lineno:!lineno !items line
     done
   with End_of_file -> ());
  finish !items

let of_file ~path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
