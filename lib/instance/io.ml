open Dbp_util

let header = "id,arrival,departure,size"

let to_channel oc inst =
  output_string oc header;
  output_char oc '\n';
  Array.iter
    (fun (r : Item.t) ->
      Printf.fprintf oc "%d,%d,%d,%.9f\n" r.id r.arrival r.departure
        (Load.to_float r.size))
    (Instance.items inst)

let to_file ~path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc inst)

let to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (r : Item.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.9f\n" r.id r.arrival r.departure
           (Load.to_float r.size)))
    (Instance.items inst);
  Buffer.contents buf

(* [seen] maps item id -> line it was first defined on, so duplicates are
   rejected at parse time with both positions (Instance.of_items would
   catch them too, but without line numbers). Size and duration are
   validated here as well: Load.of_float clamps silently, and a clamped
   size of 0 or a non-positive duration is always an input mistake, not
   something to pack. *)
let parse_line ~seen ~lineno line =
  let error fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" lineno m)) fmt in
  match String.split_on_char ',' line with
  | [ id; arrival; departure; size ] -> (
      let int_field what s =
        match int_of_string (String.trim s) with
        | n -> n
        | exception Failure _ -> error "malformed %s %S" what (String.trim s)
      in
      let id = int_field "id" id in
      (match Hashtbl.find_opt seen id with
      | Some first -> error "duplicate item id %d (first defined at line %d)" id first
      | None -> Hashtbl.replace seen id lineno);
      let arrival = int_field "arrival" arrival in
      let departure = int_field "departure" departure in
      let size_f =
        match float_of_string (String.trim size) with
        | f -> f
        | exception Failure _ -> error "malformed size %S" (String.trim size)
      in
      if departure <= arrival then
        error "item %d has non-positive duration (arrival %d, departure %d)" id
          arrival departure;
      if size_f <= 0.0 then error "item %d has non-positive size %g" id size_f;
      if size_f > 1.0 then error "item %d has size %g > 1 (a full bin)" id size_f;
      try Item.make ~id ~arrival ~departure ~size:(Load.of_float size_f)
      with Invalid_argument msg -> error "%s" msg)
  | _ -> failwith (Printf.sprintf "line %d: expected 4 comma-separated fields" lineno)

(* A header is recognized after dropping spaces/tabs and lowercasing, so
   "Id, Arrival, Departure, Size" (and CRLF variants — [String.trim]
   eats the '\r') is skipped, not parsed as a malformed item. *)
let is_header line =
  let b = Buffer.create (String.length line) in
  String.iter
    (fun c ->
      match c with ' ' | '\t' -> () | c -> Buffer.add_char b (Char.lowercase_ascii c))
    line;
  Buffer.contents b = header

let consume_line ~seen ~lineno items line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' || is_header line then items
  else parse_line ~seen ~lineno line :: items

let finish items =
  try Instance.of_items items with Invalid_argument msg -> failwith msg

let of_string s =
  let items = ref [] in
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' s
  |> List.iteri (fun i line -> items := consume_line ~seen ~lineno:(i + 1) !items line);
  finish !items

(* Line-by-line, so non-seekable inputs (/dev/stdin, pipes, process
   substitution) work: [in_channel_length] is meaningless there. *)
let of_channel ic =
  let items = ref [] in
  let seen = Hashtbl.create 64 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       items := consume_line ~seen ~lineno:!lineno !items line
     done
   with End_of_file -> ());
  finish !items

let of_file ~path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
