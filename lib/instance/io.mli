(** Plain-text instance exchange, so external traces can be packed and
    instances can be archived with experiment results.

    Format: one item per line, [id,arrival,departure,size], where [size]
    is a decimal fraction of a bin in [0, 1]. Vector (d-dimensional)
    items append one column per extra dimension —
    [id,arrival,departure,size,size2,...,sized] — each again a fraction
    in [0, 1] (extra dimensions may be 0; only dimension 0 must carry
    load). Lines starting with ['#'] and blank lines are ignored. A
    header line [id,arrival,...] is tolerated on input (matched case-
    and whitespace-insensitively, CRLF included; vector headers match
    by prefix) and written on output. All items of one file must share
    a dimensionality ({!Instance.of_items} enforces this). *)

val to_channel : out_channel -> Instance.t -> unit
val to_file : path:string -> Instance.t -> unit
val to_string : Instance.t -> string

val of_string : string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input;
    item validation errors ([Invalid_argument]) are converted too.
    Rejected at parse time, each with the offending line number:
    duplicate item ids (the message also names the line of the first
    definition), non-positive durations ([departure <= arrival]),
    non-positive sizes, and sizes above 1 — the latter two would
    otherwise be clamped silently by {!Dbp_util.Load.of_float}. *)

val of_channel : in_channel -> Instance.t
(** Reads line-by-line to end of input, so non-seekable channels
    (pipes, [/dev/stdin], process substitution) work. Framing is
    strict: a non-blank final line with no trailing newline — a
    truncated transfer or a producer killed mid-record — raises
    [Failure] with the line number rather than parsing the partial
    record ({!of_string} stays lenient for in-memory literals). *)

val of_file : path:string -> Instance.t
