open Dbp_util

type t = {
  id : int;
  arrival : int;
  departure : int;
  size : Load.t;
  extra : int array;
}

let no_extra : int array = [||]

let make_vec ~extra ~id ~arrival ~departure ~size =
  if arrival < 0 then invalid_arg "Item.make: negative arrival";
  if departure <= arrival then invalid_arg "Item.make: departure <= arrival";
  if Load.to_units size > Load.capacity then invalid_arg "Item.make: size > 1 bin";
  Array.iter
    (fun u ->
      if u < 0 || u > Load.capacity then
        invalid_arg "Item.make: extra dimension out of [0, capacity]")
    extra;
  { id; arrival; departure; size; extra }

let make ~id ~arrival ~departure ~size =
  make_vec ~extra:no_extra ~id ~arrival ~departure ~size

let dims r = 1 + Array.length r.extra

let size_units r k =
  if k = 0 then Load.to_units r.size else r.extra.(k - 1)

let duration r = r.departure - r.arrival
let is_active r ~at = r.arrival <= at && at < r.departure
let length_class r = Ints.ceil_log2 (duration r)
let ha_class r = max 1 (length_class r)
let arrival_block r = Ints.ceil_div r.arrival (Ints.pow2 (ha_class r))
let ha_type r = (ha_class r, arrival_block r)
let is_aligned r = r.arrival mod Ints.pow2 (length_class r) = 0

let compare a b =
  match Int.compare a.arrival b.arrival with 0 -> Int.compare a.id b.id | c -> c

let pp ppf r =
  Format.fprintf ppf "#%d[%d,%d)x%a" r.id r.arrival r.departure Load.pp r.size;
  Array.iter (fun u -> Format.fprintf ppf "x%a" Load.pp (Load.of_units u)) r.extra
