(** Items (requests) of the dynamic bin packing problem.

    An item occupies [size] of a bin during the half-open tick interval
    [[arrival, departure)). The paper's closed intervals [[t_r, f_r]] have
    the same measure; half-open intervals make "departures happen before
    arrivals at the same instant" (the paper's [t^-]/[t^+] convention)
    unambiguous. *)

open Dbp_util

type t = private {
  id : int;
  arrival : int;
  departure : int;
  size : Load.t;
  extra : int array;
      (** Sizes in resource dimensions 1..d-1, in {!Load.capacity}
          units; [[||]] for scalar (d = 1) items, so the classic path
          allocates nothing. Dimension 0 is [size]. Treat as
          immutable. *)
}

val no_extra : int array
(** The shared empty extras array every scalar item carries. *)

val make : id:int -> arrival:int -> departure:int -> size:Load.t -> t
(** Requires [0 <= arrival < departure] and [size <= Load.one]. The
    item is 1-dimensional ([extra = no_extra]). *)

val make_vec :
  extra:int array -> id:int -> arrival:int -> departure:int -> size:Load.t -> t
(** {!make} for d-dimensional items: [size] is dimension 0, [extra]
    holds dimensions 1..d-1 in units, each in [[0, Load.capacity]].
    [extra] is {e not} copied — the caller hands over ownership. Pass
    {!no_extra} (or call {!make}) for scalar items so they share the
    one empty array. *)

val dims : t -> int
(** [1 + Array.length extra]. *)

val size_units : t -> int -> int
(** Size in dimension [k] (0-based), in units. [size_units r 0] is
    [Load.to_units r.size]. *)

val duration : t -> int
(** [departure - arrival], always >= 1. *)

val is_active : t -> at:int -> bool
(** Whether [at] lies in [[arrival, departure)). *)

val length_class : t -> int
(** The index [i >= 0] with [duration] in [(2^(i-1), 2^i]]; class 0 is
    duration 1. This is the classification CDFF and aligned inputs use. *)

val ha_class : t -> int
(** [max 1 (length_class r)]: the paper's HA assumes classes start at 1
    (so the [1/(2 sqrt i)] threshold is defined); duration-1 items join
    class 1. *)

val arrival_block : t -> int
(** The index [c >= 0] with [arrival] in [((c-1)*2^i, c*2^i]] for
    [i = ha_class]; [arrival = 0] gives [c = 0]. *)

val ha_type : t -> int * int
(** The HA type [(i, c)] = [(ha_class, arrival_block)]. *)

val is_aligned : t -> bool
(** Whether the item respects Definition 2.1: arrival is a multiple of
    [2^length_class]. *)

val compare : t -> t -> int
(** Orders by [(arrival, id)] — the order the online algorithm must
    process simultaneous arrivals in. *)

val pp : Format.formatter -> t -> unit
