open Dbp_util

(* Struct-of-arrays item arena. Four parallel int arrays hold the fields
   of every live item; slots are recycled through a free list so the
   arrays stay sized to the peak concurrency of the run, not its length.

   Encoding invariants:
   - [sizes.(s) >= 0] iff slot [s] is live; a free slot has
     [sizes.(s) = -1] and [arrivals.(s)] holds the next free slot
     (-1 = end of list).
   - [boxed.(s)] mirrors the live slot's {!Item.t} (the value passed to
     {!alloc}), so handing an item across the policy boundary is a plain
     array read, not an allocation. Free slots hold [dummy].

   The nested {!Heap} orders slots by [(departure, id)] reading these
   arrays directly — the comparison the boxed engine heap performed
   through a closure over [Item.t] records, now two unboxed loads. That
   order is total (ids are unique), so any correct heap implementation
   pops the same sequence: swapping the boxed heap for this one is
   observationally identical. *)

type t = {
  mutable ids : int array;
  mutable arrivals : int array;
  mutable departures : int array;
  mutable sizes : int array;  (** size in Load units; -1 marks a free slot *)
  mutable boxed : Item.t array;
  mutable cap : int;
  mutable free_head : int;  (** head of the free list, -1 = none *)
  mutable next_fresh : int;  (** first never-used slot *)
  mutable live : int;
}

let dummy = Item.make ~id:0 ~arrival:0 ~departure:1 ~size:Load.zero

let create ?(capacity = 64) () =
  let cap = max 8 capacity in
  {
    ids = Array.make cap 0;
    arrivals = Array.make cap 0;
    departures = Array.make cap 0;
    sizes = Array.make cap (-1);
    boxed = Array.make cap dummy;
    cap;
    free_head = -1;
    next_fresh = 0;
    live = 0;
  }

let live t = t.live
let capacity t = t.cap

let grow t =
  let cap' = 2 * t.cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.ids <- extend t.ids 0;
  t.arrivals <- extend t.arrivals 0;
  t.departures <- extend t.departures 0;
  t.sizes <- extend t.sizes (-1);
  t.boxed <- extend t.boxed dummy;
  t.cap <- cap'

let alloc t (r : Item.t) =
  let slot =
    if t.free_head >= 0 then begin
      let s = t.free_head in
      t.free_head <- t.arrivals.(s);
      s
    end
    else begin
      if t.next_fresh = t.cap then grow t;
      let s = t.next_fresh in
      t.next_fresh <- s + 1;
      s
    end
  in
  t.ids.(slot) <- r.id;
  t.arrivals.(slot) <- r.arrival;
  t.departures.(slot) <- r.departure;
  t.sizes.(slot) <- Load.to_units r.size;
  t.boxed.(slot) <- r;
  t.live <- t.live + 1;
  slot

let check t slot op =
  if slot < 0 || slot >= t.cap || t.sizes.(slot) < 0 then
    invalid_arg ("Item_block." ^ op ^ ": dead slot")

let free t slot =
  check t slot "free";
  t.sizes.(slot) <- -1;
  t.boxed.(slot) <- dummy;
  t.arrivals.(slot) <- t.free_head;
  t.free_head <- slot;
  t.live <- t.live - 1

let id t slot = check t slot "id"; t.ids.(slot)
let arrival t slot = check t slot "arrival"; t.arrivals.(slot)
let departure t slot = check t slot "departure"; t.departures.(slot)
let size_units t slot = check t slot "size_units"; t.sizes.(slot)
let item t slot = check t slot "item"; t.boxed.(slot)

module Heap = struct
  type block = t

  (* The heap keeps its own copy of each element's ordering key
     (departure, id) in parallel arrays indexed by heap position. Sift
     comparisons then read adjacent heap words — the two children share
     a cache line — instead of chasing slot indirections into the
     block's arrays, two scattered loads per level on what profiling
     shows is a cache-bound path. The key order is unchanged, and it is
     total (ids are unique), so the pop sequence is identical to the
     slot-indirect comparison this replaces. *)
  type t = {
    mutable slots : int array;
    mutable deps : int array;
    mutable ids : int array;
    mutable n : int;
  }

  let create ?(capacity = 64) () =
    let cap = max 4 capacity in
    { slots = Array.make cap 0; deps = Array.make cap 0; ids = Array.make cap 0; n = 0 }

  let length h = h.n
  let clear h = h.n <- 0

  let grow h =
    let cap' = 2 * Array.length h.slots in
    let extend a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 h.n;
      a'
    in
    h.slots <- extend h.slots;
    h.deps <- extend h.deps;
    h.ids <- extend h.ids

  let add (b : block) h slot =
    check b slot "Heap.add";
    if h.n = Array.length h.slots then grow h;
    let dep = Array.unsafe_get b.departures slot
    and id = Array.unsafe_get b.ids slot in
    let deps = h.deps and ids = h.ids and slots = h.slots in
    (* Sift up, holding the new element in registers. *)
    let i = ref h.n in
    h.n <- h.n + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      let pd = Array.unsafe_get deps p in
      if dep < pd || (dep = pd && id < Array.unsafe_get ids p) then begin
        Array.unsafe_set deps !i pd;
        Array.unsafe_set ids !i (Array.unsafe_get ids p);
        Array.unsafe_set slots !i (Array.unsafe_get slots p);
        i := p
      end
      else continue := false
    done;
    Array.unsafe_set deps !i dep;
    Array.unsafe_set ids !i id;
    Array.unsafe_set slots !i slot

  let top h =
    if h.n = 0 then invalid_arg "Item_block.Heap.top: empty";
    Array.unsafe_get h.slots 0

  let min_departure h = if h.n = 0 then max_int else Array.unsafe_get h.deps 0

  let pop h =
    if h.n = 0 then invalid_arg "Item_block.Heap.pop: empty";
    let slots = h.slots and deps = h.deps and ids = h.ids in
    let root = Array.unsafe_get slots 0 in
    h.n <- h.n - 1;
    let n = h.n in
    if n > 0 then begin
      (* Sift the displaced last element down from the root. *)
      let ld = Array.unsafe_get deps n
      and li = Array.unsafe_get ids n
      and ls = Array.unsafe_get slots n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= n then continue := false
        else begin
          let r = l + 1 in
          let c =
            if r < n then begin
              let dl = Array.unsafe_get deps l and dr = Array.unsafe_get deps r in
              if dr < dl || (dr = dl && Array.unsafe_get ids r < Array.unsafe_get ids l)
              then r
              else l
            end
            else l
          in
          let cd = Array.unsafe_get deps c in
          if cd < ld || (cd = ld && Array.unsafe_get ids c < li) then begin
            Array.unsafe_set deps !i cd;
            Array.unsafe_set ids !i (Array.unsafe_get ids c);
            Array.unsafe_set slots !i (Array.unsafe_get slots c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set deps !i ld;
      Array.unsafe_set ids !i li;
      Array.unsafe_set slots !i ls
    end;
    root
end
