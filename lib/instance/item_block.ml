open Dbp_util

(* Struct-of-arrays item arena. Four parallel int arrays hold the fields
   of every live item; slots are recycled through a free list so the
   arrays stay sized to the peak concurrency of the run, not its length.

   Encoding invariants:
   - [sizes.(s) >= 0] iff slot [s] is live; a free slot has
     [sizes.(s) = -1] and [arrivals.(s)] holds the next free slot
     (-1 = end of list).
   - [boxed.(s)] mirrors the live slot's {!Item.t} (the value passed to
     {!alloc}), so handing an item across the policy boundary is a plain
     array read, not an allocation. Free slots hold [dummy].

   The nested {!Heap} orders slots by [(departure, id)] reading these
   arrays directly — the comparison the boxed engine heap performed
   through a closure over [Item.t] records, now two unboxed loads. That
   order is total (ids are unique), so any correct heap implementation
   pops the same sequence: swapping the boxed heap for this one is
   observationally identical. *)

type t = {
  mutable ids : int array;
  mutable arrivals : int array;
  mutable departures : int array;
  mutable sizes : int array;  (** size in Load units; -1 marks a free slot *)
  mutable extras : int array array;
      (** per-dimension size columns for dimensions 1..d-1, parallel to
          [sizes]; [[||]] until the first multi-dimensional item is
          allocated, so scalar runs never touch (or pay for) them *)
  mutable boxed : Item.t array;
  mutable cap : int;
  mutable free_head : int;  (** head of the free list, -1 = none *)
  mutable next_fresh : int;  (** first never-used slot *)
  mutable live : int;
}

let dummy = Item.make ~id:0 ~arrival:0 ~departure:1 ~size:Load.zero

let create ?(capacity = 64) () =
  let cap = max 8 capacity in
  {
    ids = Array.make cap 0;
    arrivals = Array.make cap 0;
    departures = Array.make cap 0;
    sizes = Array.make cap (-1);
    extras = [||];
    boxed = Array.make cap dummy;
    cap;
    free_head = -1;
    next_fresh = 0;
    live = 0;
  }

let live t = t.live
let capacity t = t.cap

let grow t =
  let cap' = 2 * t.cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.ids <- extend t.ids 0;
  t.arrivals <- extend t.arrivals 0;
  t.departures <- extend t.departures 0;
  t.sizes <- extend t.sizes (-1);
  t.extras <- Array.map (fun col -> extend col 0) t.extras;
  t.boxed <- extend t.boxed dummy;
  t.cap <- cap'

(* Lazily bring the extras columns up to [d - 1]; only multi-dimensional
   allocations reach this. *)
let ensure_extras t d =
  let have = Array.length t.extras in
  if d - 1 > have then begin
    let cols = Array.init (d - 1) (fun k ->
        if k < have then t.extras.(k) else Array.make t.cap 0)
    in
    t.extras <- cols
  end

let alloc t (r : Item.t) =
  let slot =
    if t.free_head >= 0 then begin
      let s = t.free_head in
      t.free_head <- t.arrivals.(s);
      s
    end
    else begin
      if t.next_fresh = t.cap then grow t;
      let s = t.next_fresh in
      t.next_fresh <- s + 1;
      s
    end
  in
  t.ids.(slot) <- r.id;
  t.arrivals.(slot) <- r.arrival;
  t.departures.(slot) <- r.departure;
  t.sizes.(slot) <- Load.to_units r.size;
  let d = Item.dims r in
  if d > 1 then begin
    ensure_extras t d;
    for k = 0 to d - 2 do
      t.extras.(k).(slot) <- r.extra.(k)
    done
  end;
  t.boxed.(slot) <- r;
  t.live <- t.live + 1;
  slot

let check t slot op =
  if slot < 0 || slot >= t.cap || t.sizes.(slot) < 0 then
    invalid_arg ("Item_block." ^ op ^ ": dead slot")

let free t slot =
  check t slot "free";
  t.sizes.(slot) <- -1;
  t.boxed.(slot) <- dummy;
  t.arrivals.(slot) <- t.free_head;
  t.free_head <- slot;
  t.live <- t.live - 1

let id t slot = check t slot "id"; t.ids.(slot)
let arrival t slot = check t slot "arrival"; t.arrivals.(slot)
let departure t slot = check t slot "departure"; t.departures.(slot)
let size_units t slot = check t slot "size_units"; t.sizes.(slot)

let extra_units t slot k =
  check t slot "extra_units";
  if k < 0 || k >= Array.length t.extras then
    invalid_arg "Item_block.extra_units: dimension out of range";
  t.extras.(k).(slot)

let item t slot = check t slot "item"; t.boxed.(slot)

(* Slot-order walk over the live slots; [sizes.(s) >= 0] is the liveness
   mark. O(capacity), for cold paths (snapshots), not the event loop. *)
let iter_live f t =
  for s = 0 to t.next_fresh - 1 do
    if t.sizes.(s) >= 0 then f s
  done

module Heap = struct
  type block = t

  (* The heap keeps each element's ordering key (departure, id) packed
     into one word — [(departure lsl id_bits) lor id] — in an array
     indexed by heap position, with the slot number alongside. A sift
     comparison is then a single int compare on one array, instead of a
     two-field compare across two (the packing is order-preserving
     because both fields are non-negative and bounded below [2^31], a
     bound [add] enforces). The heap is 4-ary: half the levels of a
     binary heap, and the four children of a node sit in adjacent words
     — one cache line — which is what the sift-down path, the hot half
     of every departure, is bound by. The key order is total (ids are
     unique), so the pop sequence is identical to any other correct
     [(departure, id)] heap. *)
  type t = {
    mutable keys : int array;
    mutable slots : int array;
    mutable n : int;
  }

  let id_bits = 31
  let field_bound = 1 lsl id_bits

  let create ?(capacity = 64) () =
    let cap = max 4 capacity in
    { keys = Array.make cap 0; slots = Array.make cap 0; n = 0 }

  let length h = h.n
  let clear h = h.n <- 0

  let grow h =
    let cap' = 2 * Array.length h.slots in
    let extend a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 h.n;
      a'
    in
    h.keys <- extend h.keys;
    h.slots <- extend h.slots

  let add (b : block) h slot =
    check b slot "Heap.add";
    if h.n = Array.length h.slots then grow h;
    let dep = Array.unsafe_get b.departures slot
    and id = Array.unsafe_get b.ids slot in
    if dep >= field_bound || id >= field_bound then
      invalid_arg "Item_block.Heap.add: departure or id >= 2^31";
    let key = (dep lsl id_bits) lor id in
    let keys = h.keys and slots = h.slots in
    (* Sift up, holding the new element in registers. *)
    let i = ref h.n in
    h.n <- h.n + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 4 in
      let pk = Array.unsafe_get keys p in
      if key < pk then begin
        Array.unsafe_set keys !i pk;
        Array.unsafe_set slots !i (Array.unsafe_get slots p);
        i := p
      end
      else continue := false
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set slots !i slot

  let top h =
    if h.n = 0 then invalid_arg "Item_block.Heap.top: empty";
    Array.unsafe_get h.slots 0

  let min_departure h =
    if h.n = 0 then max_int else Array.unsafe_get h.keys 0 lsr id_bits

  let pop h =
    if h.n = 0 then invalid_arg "Item_block.Heap.pop: empty";
    let keys = h.keys and slots = h.slots in
    let root = Array.unsafe_get slots 0 in
    h.n <- h.n - 1;
    let n = h.n in
    if n > 0 then begin
      (* Sift the displaced last element down from the root. *)
      let lk = Array.unsafe_get keys n and ls = Array.unsafe_get slots n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let c0 = (4 * !i) + 1 in
        if c0 >= n then continue := false
        else begin
          (* Least of the (up to four) children. *)
          let last = if c0 + 3 < n - 1 then c0 + 3 else n - 1 in
          let c = ref c0 in
          let ck = ref (Array.unsafe_get keys c0) in
          for j = c0 + 1 to last do
            let k = Array.unsafe_get keys j in
            if k < !ck then begin
              ck := k;
              c := j
            end
          done;
          if !ck < lk then begin
            Array.unsafe_set keys !i !ck;
            Array.unsafe_set slots !i (Array.unsafe_get slots !c);
            i := !c
          end
          else continue := false
        end
      done;
      Array.unsafe_set keys !i lk;
      Array.unsafe_set slots !i ls
    end;
    root

  (* The drain loop's three-call idiom (length, min_departure, pop)
     fused: one root-key compare decides, and only a due element pays
     the sift-down. *)
  let pop_due h ~upto =
    if h.n = 0 || Array.unsafe_get h.keys 0 lsr id_bits > upto then -1
    else pop h
end
