(** Struct-of-arrays arena for the items in flight.

    The streaming engine holds every active item from arrival to
    departure. Boxed {!Item.t} records work, but the hot loop then
    chases a pointer (and a [Load.t] box) for every departure-time
    comparison, millions of times per run. This arena stores the four
    fields of each live item in parallel [int array]s instead — id,
    arrival, departure, size in {!Dbp_util.Load} units — addressed by a
    dense {e slot}. Slots are recycled through an internal free list, so
    the arrays are sized by peak concurrency, not trace length: the
    constant-memory contract of {!Engine.Stream} is preserved.

    Each live slot also mirrors the boxed [Item.t] it was allocated
    from, so crossing the policy boundary (which speaks [Item.t]) is an
    array read — no re-boxing on either side.

    Accessors raise [Invalid_argument] on a freed or out-of-range slot;
    a slot is valid from {!alloc} until {!free}. Not thread-safe. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial slot capacity (default 64, minimum 8); grows by doubling. *)

val alloc : t -> Item.t -> int
(** Copy the item's fields into a fresh (or recycled) slot; returns the
    slot. *)

val free : t -> int -> unit
(** Release the slot for reuse. The slot (and any aliases of it) must
    not be used afterwards. *)

val live : t -> int
(** Currently allocated slots. *)

val capacity : t -> int

val id : t -> int -> int
val arrival : t -> int -> int
val departure : t -> int -> int

val size_units : t -> int -> int
(** Size in load units (the [Load.to_units] of the item's size) —
    dimension 0 of a vector item. *)

val extra_units : t -> int -> int -> int
(** [extra_units t slot k] is the slot's size in resource dimension
    [k + 1], in load units. The per-dimension columns exist lazily:
    they are created the first time a multi-dimensional item is
    allocated, so the dimension range reflects the widest item seen so
    far ([Invalid_argument] beyond it — in particular for any [k] on a
    purely scalar arena). *)

val item : t -> int -> Item.t
(** The boxed item the slot was allocated from (no allocation). *)

val iter_live : (int -> unit) -> t -> unit
(** Apply the function to every live slot, in slot order. O(capacity) —
    a cold-path (snapshot) walk, not an event-loop primitive. *)

(** Min-heap of live slots ordered by [(departure, id)] — the departure
    queue of the event loop. The heap snapshots each element's key into
    one packed word ([(departure lsl 31) lor id]) at {!add} time, so a
    sift comparison is a single int compare on one array rather than a
    two-field compare chasing slot indirections into the arena; the
    heap is 4-ary, halving the levels of the cache-bound sift-down. The
    order is total (ids are unique), so the pop sequence is identical
    to any other correct [(departure, id)] heap: replacing the boxed
    heap with this one cannot change a simulation.

    [add] takes the block to read the slot's key; a slot must stay live
    from {!add} until it is popped (its key is fixed at add time — item
    fields never mutate while live). Packing requires [departure] and
    [id] below [2^31] (two-billion-tick horizons and ids; {!add} raises
    [Invalid_argument] beyond). *)
module Heap : sig
  type block := t
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val clear : t -> unit

  val add : block -> t -> int -> unit
  (** Push a live slot. *)

  val top : t -> int
  (** Slot with the least [(departure, id)]; raises [Invalid_argument]
      when empty. *)

  val min_departure : t -> int
  (** Departure of {!top}, or [max_int] when empty — the idiom the
      drain loop guards on. *)

  val pop : t -> int
  (** Remove and return {!top}; raises [Invalid_argument] when empty. *)

  val pop_due : t -> upto:int -> int
  (** {!pop} if the heap is non-empty and {!top}'s departure is
      [<= upto], else [-1] — the drain loop's guard and pop in one
      call. *)
end
