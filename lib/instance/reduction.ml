open Dbp_util

let reduced_departure (r : Item.t) =
  let i, c = Item.ha_type r in
  (c + 1) * Ints.pow2 i

let apply inst =
  Instance.of_items
    (Array.to_list (Instance.items inst)
    |> List.map (fun (r : Item.t) ->
           Item.make_vec ~extra:r.extra ~id:r.id ~arrival:r.arrival
             ~departure:(reduced_departure r) ~size:r.size))
