open Dbp_util
open Dbp_instance
open Dbp_binpack

type result = { cost : int; exact : bool; segments : int; max_active : int }

(* The event timeline grouped by timestamp: (t, departures, arrivals)
   in time order, departures applied first (the online convention).
   Within a timestamp the units are sorted — departures ascending,
   arrivals descending (so the packing patch is FFD-flavoured) — making
   the whole sweep a function of the instance's item multiset alone:
   item ids and input order cannot influence it. *)
let grouped_events inst =
  let events =
    Array.to_list (Instance.items inst)
    |> List.concat_map (fun (r : Item.t) ->
           let u = Load.to_units r.size in
           [ (r.arrival, `Arrive, u); (r.departure, `Depart, u) ])
    |> List.sort (fun (t1, _, _) (t2, _, _) -> Int.compare t1 t2)
  in
  let rec take t deps arrs = function
    | (t', kind, u) :: rest when t' = t -> (
        match kind with
        | `Depart -> take t (u :: deps) arrs rest
        | `Arrive -> take t deps (u :: arrs) rest)
    | rest ->
        ( (t, List.sort Int.compare deps, List.sort (fun a b -> Int.compare b a) arrs),
          rest )
  in
  let rec groups = function
    | [] -> []
    | (t, _, _) :: _ as l ->
        let g, rest = take t [] [] l in
        g :: groups rest
  in
  groups events

let m_sweeps = Metrics.counter "opt_repack.sweeps"
let m_events = Metrics.counter "opt_repack.events"

(* Sweep the grouped timeline; the caller supplies the active-multiset
   maintenance ([add]/[remove]/[active]) and the per-segment solve. *)
let sweep inst ~add ~remove ~active ~solve =
  Metrics.incr m_sweeps;
  Trace.with_span "opt_repack.sweep"
    ~args:[ ("items", string_of_int (Instance.length inst)) ]
  @@ fun () ->
  let cost = ref 0 and all_exact = ref true in
  let segments = ref 0 and max_active = ref 0 in
  let series = ref [] in
  let flush t0 t1 =
    if t1 > t0 && active () > 0 then begin
      let bins, exact = solve () in
      if not exact then all_exact := false;
      cost := !cost + (bins * (t1 - t0));
      incr segments;
      max_active := max !max_active (active ());
      series := (t0, t1, bins, exact) :: !series
    end
  in
  let rec walk prev = function
    | [] -> ()
    | (t, deps, arrs) :: rest ->
        (match prev with Some p when t > p -> flush p t | _ -> ());
        List.iter remove deps;
        List.iter add arrs;
        walk (Some t) rest
  in
  let groups = grouped_events inst in
  Metrics.add m_events (List.length groups);
  walk None groups;
  ( {
      cost = !cost;
      exact = !all_exact;
      segments = !segments;
      max_active = !max_active;
    },
    List.rev !series )

let run_incremental solver inst =
  let sess = Solver.Inc.start solver in
  sweep inst
    ~add:(Solver.Inc.add sess)
    ~remove:(Solver.Inc.remove sess)
    ~active:(fun () -> Multiset.cardinality (Solver.Inc.multiset sess))
    ~solve:(fun () ->
      let r = Solver.Inc.solve sess in
      (r.Exact.bins, r.Exact.exact))

let exact ?solver inst =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  fst (run_incremental solver inst)

let segments_exact ?solver inst =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  snd (run_incremental solver inst)

let series ?solver inst =
  List.map (fun (t0, t1, bins, _) -> (t0, t1, bins)) (segments_exact ?solver inst)

let ffd_proxy inst =
  let ms = Multiset.create () in
  fst
    (sweep inst ~add:(Multiset.add ms) ~remove:(Multiset.remove ms)
       ~active:(fun () -> Multiset.cardinality ms)
       ~solve:(fun () ->
         (* the expansion is non-increasing, so plain first-fit is FFD *)
         let sizes = Array.map Load.of_units (Multiset.expansion ms) in
         (Heuristics.count Heuristics.First_fit sizes, false)))

let reference ?node_limit inst =
  let ms = Multiset.create () in
  let total_nodes = ref 0 in
  let res, series =
    sweep inst ~add:(Multiset.add ms) ~remove:(Multiset.remove ms)
      ~active:(fun () -> Multiset.cardinality ms)
      ~solve:(fun () ->
        let sizes = Array.map Load.of_units (Multiset.expansion ms) in
        let r = Exact.min_bins ?node_limit sizes in
        total_nodes := !total_nodes + r.nodes;
        (r.bins, r.exact))
  in
  (res, List.map (fun (t0, t1, bins, _) -> (t0, t1, bins)) series, !total_nodes)
