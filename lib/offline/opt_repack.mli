(** The repacking optimum [OPT_R].

    An optimal algorithm allowed to repack at any moment packs, at every
    instant, the currently active items optimally; hence
    [OPT_R(sigma) = int BP(active(t)) dt] where [BP] is the optimal
    static bin packing number. Time is partitioned at item events; the
    active size multiset is maintained incrementally (a
    {!Dbp_util.Multiset} under arrivals/departures, never re-extracted
    or re-sorted) and each constant-active-set segment is resolved by a
    {!Dbp_binpack.Solver.Inc} session: count-vector cache, perturbation
    bracket, warm-started branch-and-bound, in that order. The sweep is
    a function of the instance's item multiset alone — item ids and
    input order cannot change any value (events are grouped per
    timestamp and applied in a canonical size order).

    If a segment exhausts the solver's node budget, that segment's value
    is the best feasible packing found (an upper bound) and the result is
    flagged inexact — competitive ratios measured against it are then
    conservative (under-estimates). *)

open Dbp_binpack

type result = {
  cost : int;  (** OPT_R in bin x ticks *)
  exact : bool;  (** every segment solved to optimality *)
  segments : int;
  max_active : int;  (** peak number of simultaneously active items *)
}

val exact : ?solver:Solver.t -> Dbp_instance.Instance.t -> result
(** The repacking optimum. The solver (and its cache) may be shared
    across calls of a sweep; each call runs its own incremental
    session. *)

val ffd_proxy : Dbp_instance.Instance.t -> result
(** Upper-bound proxy: FFD instead of exact packing per segment
    ([exact = false]). By the FFD structure this is at most
    [int 2 ceil(S_t) dt], i.e. within 2x of OPT_R (Lemma 3.1); it is fast
    enough for instances whose segments are too wide for the exact
    solver. *)

val series :
  ?solver:Solver.t -> Dbp_instance.Instance.t -> (int * int * int) list
(** [(start, stop, bins)] per segment: OPT_R's momentary bin count, for
    figures and for the momentary-ratio experiments. *)

val segments_exact :
  ?solver:Solver.t -> Dbp_instance.Instance.t -> (int * int * int * bool) list
(** Like {!series} with a per-segment exactness flag: [(start, stop,
    bins, exact)]. Validators ({!Dbp_check.Oracles}) need the flag to
    restrict cross-segment monotonicity checks to segments solved to
    proof — a budget-limited segment's value is only an upper bound. *)

val reference :
  ?node_limit:int ->
  Dbp_instance.Instance.t ->
  result * (int * int * int) list * int
(** From-scratch oracle: every segment solved cold by
    {!Dbp_binpack.Exact.min_bins} — no cache, no bracket, no warm start.
    Returns the result, the segment series, and the total
    branch-and-bound nodes explored. Agrees with {!exact}/{!series} on
    every segment both solve to proof (exact values are canonical); used
    by the test suite as the equivalence baseline and by the bench
    harness to measure the incremental path's node savings. Default
    [node_limit] is {!Dbp_binpack.Exact.min_bins}'s. *)
