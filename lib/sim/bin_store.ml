open Dbp_util
open Dbp_instance

type bin_id = int

type bin = {
  id : bin_id;
  mutable blabel : string;
  bopened_at : int;
  mutable bclosed_at : int option;
  mutable bload : Load.t;
  mutable items : Item.t list;  (** reverse insertion order *)
  mutable bprev : bin_id;  (** previous open bin in opening order, -1 = none *)
  mutable bnext : bin_id;  (** next open bin in opening order, -1 = none *)
}

(* The live set is an intrusive doubly-linked list threaded through the
   bin records, kept in opening order so [open_bins] — the First-Fit
   scan order — is a plain traversal and closing a bin unlinks it in
   O(1).

   Two retention modes share this structure. [`Retain] (the default)
   keeps every bin ever opened in [bins] (slot = id) plus the permanent
   [history]/[ever] logs — what reports, figures and the validators
   need. [`Retire] keeps only the currently open bins, in [live]: when a
   bin closes, its usage, count and lifetime fold into the running
   aggregates and the record is dropped, so memory is O(open bins), not
   O(bins ever) — the contract the streaming engine's million-item runs
   rely on. *)
type t = {
  retire : bool;
  bins : bin Vec.t;  (** retain mode: every bin, slot = id *)
  live : (bin_id, bin) Hashtbl.t;  (** retire mode: open bins only *)
  mutable next_id : int;
  mutable live_head : bin_id;  (** oldest open bin, -1 when none *)
  mutable live_tail : bin_id;  (** newest open bin, -1 when none *)
  current : (int, bin) Hashtbl.t;  (** active item id -> its bin *)
  history : (int * bin_id) Vec.t;  (** retain mode only *)
  ever : (int, bin_id) Hashtbl.t;  (** retain mode only *)
  mutable n_open : int;
  mutable hw_open : int;
  mutable hw_items : int;
  mutable done_usage : int;
  mutable closed_count : int;
  lifetime_counts : int array;
  mutable lifetime_sum : int;
}

let m_opens = Metrics.counter "bin_store.opens"
let m_closes = Metrics.counter "bin_store.closes"
let m_usage = Metrics.counter "bin_store.usage"
let m_max_open = Metrics.gauge "bin_store.max_open"
let m_live_items = Metrics.gauge "bin_store.live_items"
let lifetime_buckets = [| 1; 4; 16; 64; 256; 1024; 4096; 16384 |]
let m_lifetime = Metrics.histogram ~buckets:lifetime_buckets "bin_store.lifetime"

let create ?(retire = false) () =
  {
    retire;
    bins = Vec.create ();
    live = Hashtbl.create 64;
    next_id = 0;
    live_head = -1;
    live_tail = -1;
    current = Hashtbl.create 64;
    history = Vec.create ();
    ever = Hashtbl.create 64;
    n_open = 0;
    hw_open = 0;
    hw_items = 0;
    done_usage = 0;
    closed_count = 0;
    lifetime_counts = Array.make (Array.length lifetime_buckets + 1) 0;
    lifetime_sum = 0;
  }

let retire_mode t = t.retire

let bin t id =
  if id < 0 || id >= t.next_id then invalid_arg "Bin_store: unknown bin id";
  if t.retire then
    match Hashtbl.find_opt t.live id with
    | Some b -> b
    | None -> invalid_arg "Bin_store: bin retired (store is in retire mode)"
  else Vec.get t.bins id

let open_bin t ~now ~label =
  let id = t.next_id in
  t.next_id <- id + 1;
  let b =
    {
      id;
      blabel = label;
      bopened_at = now;
      bclosed_at = None;
      bload = Load.zero;
      items = [];
      bprev = t.live_tail;
      bnext = -1;
    }
  in
  if t.retire then Hashtbl.replace t.live id b else Vec.push t.bins b;
  if t.live_tail >= 0 then (bin t t.live_tail).bnext <- id else t.live_head <- id;
  t.live_tail <- id;
  t.n_open <- t.n_open + 1;
  if t.n_open > t.hw_open then t.hw_open <- t.n_open;
  Metrics.incr m_opens;
  Metrics.set_max m_max_open t.n_open;
  id

let unlink_live t (b : bin) =
  let p = b.bprev and n = b.bnext in
  if p >= 0 then (bin t p).bnext <- n else t.live_head <- n;
  if n >= 0 then (bin t n).bprev <- p else t.live_tail <- p;
  b.bprev <- -1;
  b.bnext <- -1

let insert t id (r : Item.t) =
  let b = bin t id in
  if b.bclosed_at <> None then invalid_arg "Bin_store.insert: bin is closed";
  if Hashtbl.mem t.current r.id then invalid_arg "Bin_store.insert: item already packed";
  if not (Load.fits r.size ~into:b.bload) then invalid_arg "Bin_store.insert: does not fit";
  b.bload <- Load.add b.bload r.size;
  b.items <- r :: b.items;
  Hashtbl.replace t.current r.id b;
  let live = Hashtbl.length t.current in
  if live > t.hw_items then t.hw_items <- live;
  Metrics.set_max m_live_items live;
  if not t.retire then begin
    Hashtbl.replace t.ever r.id id;
    Vec.push t.history (r.id, id)
  end

(* One pass instead of find + filter; the relative order of the
   remaining items is preserved. *)
let rec extract_item item_id prefix = function
  | [] -> assert false
  | (r : Item.t) :: rest ->
      if r.id = item_id then (r, List.rev_append prefix rest)
      else extract_item item_id (r :: prefix) rest

let observe_lifetime t life =
  t.lifetime_sum <- t.lifetime_sum + life;
  let n = Array.length lifetime_buckets in
  let rec slot i = if i = n || life <= lifetime_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  t.lifetime_counts.(i) <- t.lifetime_counts.(i) + 1

let remove t ~now ~item_id =
  match Hashtbl.find_opt t.current item_id with
  | None -> raise Not_found
  | Some b ->
      Hashtbl.remove t.current item_id;
      let r, rest = extract_item item_id [] b.items in
      b.items <- rest;
      b.bload <- Load.sub b.bload r.size;
      let closed = b.items = [] in
      if closed then begin
        b.bclosed_at <- Some now;
        unlink_live t b;
        t.n_open <- t.n_open - 1;
        let life = now - b.bopened_at in
        t.done_usage <- t.done_usage + life;
        t.closed_count <- t.closed_count + 1;
        observe_lifetime t life;
        (* Retire: the aggregates above are all that survives; dropping
           the record is what keeps a streamed run's memory bounded. *)
        if t.retire then Hashtbl.remove t.live b.id;
        Metrics.incr m_closes;
        Metrics.add m_usage life;
        Metrics.observe m_lifetime life
      end;
      (b.id, closed)

let load t id = (bin t id).bload
let residual t id = Load.residual (bin t id).bload
let is_open t id = (bin t id).bclosed_at = None
let label t id = (bin t id).blabel
let relabel t id label = (bin t id).blabel <- label
let opened_at t id = (bin t id).bopened_at
let closed_at t id = (bin t id).bclosed_at
let contents t id = List.rev (bin t id).items

let fold_live f acc t =
  let rec loop acc id = if id < 0 then acc else loop (f acc id) (bin t id).bnext in
  loop acc t.live_head

let open_bins t = List.rev (fold_live (fun acc id -> id :: acc) [] t)
let all_bins t = if t.retire then open_bins t else List.init t.next_id Fun.id
let open_count t = t.n_open
let bins_opened t = t.next_id
let max_open t = t.hw_open
let closed_count t = t.closed_count
let live_items t = Hashtbl.length t.current
let max_live_items t = t.hw_items

let lifetime_histogram t =
  (Array.copy lifetime_buckets, Array.copy t.lifetime_counts, t.lifetime_sum)

let usage t ~now =
  fold_live (fun acc id -> acc + (now - (bin t id).bopened_at)) t.done_usage t

let closed_usage t = t.done_usage
let assignment t = Vec.to_list t.history

let bin_of_item t item_id =
  match Hashtbl.find_opt t.current item_id with
  | Some b -> b.id
  | None -> (
      match Hashtbl.find_opt t.ever item_id with
      | Some id -> id
      | None -> raise Not_found)
