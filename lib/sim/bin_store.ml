open Dbp_util
open Dbp_instance

type bin_id = int

type bin = {
  id : bin_id;
  mutable blabel : string;
  bopened_at : int;
  mutable bclosed_at : int option;
  mutable bload : Load.t;
  mutable items : Item.t list;  (** reverse insertion order *)
}

(* The live set is an intrusive doubly-linked list threaded through two
   int vectors parallel to [bins] ([-1] = none), kept in opening order
   so [open_bins] — the First-Fit scan order — is a plain traversal and
   closing a bin unlinks it in O(1) instead of filtering a list. *)
type t = {
  bins : bin Vec.t;
  live_prev : int Vec.t;
  live_next : int Vec.t;
  mutable live_head : bin_id;  (** oldest open bin, -1 when none *)
  mutable live_tail : bin_id;  (** newest open bin, -1 when none *)
  current : (int, bin_id) Hashtbl.t;  (** active item id -> bin *)
  history : (int * bin_id) Vec.t;
  ever : (int, bin_id) Hashtbl.t;
  mutable n_open : int;
  mutable hw_open : int;
  mutable done_usage : int;
}

let m_opens = Metrics.counter "bin_store.opens"
let m_closes = Metrics.counter "bin_store.closes"
let m_usage = Metrics.counter "bin_store.usage"
let m_max_open = Metrics.gauge "bin_store.max_open"

let m_lifetime =
  Metrics.histogram ~buckets:[| 1; 4; 16; 64; 256; 1024; 4096; 16384 |]
    "bin_store.lifetime"

let create () =
  {
    bins = Vec.create ();
    live_prev = Vec.create ();
    live_next = Vec.create ();
    live_head = -1;
    live_tail = -1;
    current = Hashtbl.create 64;
    history = Vec.create ();
    ever = Hashtbl.create 64;
    n_open = 0;
    hw_open = 0;
    done_usage = 0;
  }

let bin t id =
  if id < 0 || id >= Vec.length t.bins then invalid_arg "Bin_store: unknown bin id";
  Vec.get t.bins id

let open_bin t ~now ~label =
  let id = Vec.length t.bins in
  Vec.push t.bins
    { id; blabel = label; bopened_at = now; bclosed_at = None; bload = Load.zero; items = [] };
  Vec.push t.live_prev t.live_tail;
  Vec.push t.live_next (-1);
  if t.live_tail >= 0 then Vec.set t.live_next t.live_tail id else t.live_head <- id;
  t.live_tail <- id;
  t.n_open <- t.n_open + 1;
  if t.n_open > t.hw_open then t.hw_open <- t.n_open;
  Metrics.incr m_opens;
  Metrics.set_max m_max_open t.n_open;
  id

let unlink_live t id =
  let p = Vec.get t.live_prev id and n = Vec.get t.live_next id in
  if p >= 0 then Vec.set t.live_next p n else t.live_head <- n;
  if n >= 0 then Vec.set t.live_prev n p else t.live_tail <- p;
  Vec.set t.live_prev id (-1);
  Vec.set t.live_next id (-1)

let insert t id (r : Item.t) =
  let b = bin t id in
  if b.bclosed_at <> None then invalid_arg "Bin_store.insert: bin is closed";
  if Hashtbl.mem t.current r.id then invalid_arg "Bin_store.insert: item already packed";
  if not (Load.fits r.size ~into:b.bload) then invalid_arg "Bin_store.insert: does not fit";
  b.bload <- Load.add b.bload r.size;
  b.items <- r :: b.items;
  Hashtbl.replace t.current r.id id;
  Hashtbl.replace t.ever r.id id;
  Vec.push t.history (r.id, id)

(* One pass instead of find + filter; the relative order of the
   remaining items is preserved. *)
let rec extract_item item_id prefix = function
  | [] -> assert false
  | (r : Item.t) :: rest ->
      if r.id = item_id then (r, List.rev_append prefix rest)
      else extract_item item_id (r :: prefix) rest

let remove t ~now ~item_id =
  match Hashtbl.find_opt t.current item_id with
  | None -> raise Not_found
  | Some id ->
      Hashtbl.remove t.current item_id;
      let b = bin t id in
      let r, rest = extract_item item_id [] b.items in
      b.items <- rest;
      b.bload <- Load.sub b.bload r.size;
      let closed = b.items = [] in
      if closed then begin
        b.bclosed_at <- Some now;
        unlink_live t id;
        t.n_open <- t.n_open - 1;
        t.done_usage <- t.done_usage + (now - b.bopened_at);
        Metrics.incr m_closes;
        Metrics.add m_usage (now - b.bopened_at);
        Metrics.observe m_lifetime (now - b.bopened_at)
      end;
      (id, closed)

let load t id = (bin t id).bload
let residual t id = Load.residual (bin t id).bload
let is_open t id = (bin t id).bclosed_at = None
let label t id = (bin t id).blabel
let relabel t id label = (bin t id).blabel <- label
let opened_at t id = (bin t id).bopened_at
let closed_at t id = (bin t id).bclosed_at
let contents t id = List.rev (bin t id).items

let fold_live f acc t =
  let rec loop acc id =
    if id < 0 then acc else loop (f acc id) (Vec.get t.live_next id)
  in
  loop acc t.live_head

let open_bins t = List.rev (fold_live (fun acc id -> id :: acc) [] t)
let all_bins t = List.init (Vec.length t.bins) Fun.id
let open_count t = t.n_open
let bins_opened t = Vec.length t.bins
let max_open t = t.hw_open

let usage t ~now =
  fold_live (fun acc id -> acc + (now - (bin t id).bopened_at)) t.done_usage t

let closed_usage t = t.done_usage
let assignment t = Vec.to_list t.history

let bin_of_item t item_id =
  match Hashtbl.find_opt t.ever item_id with Some id -> id | None -> raise Not_found
