open Dbp_util
open Dbp_instance

type bin_id = int

(* Packed [current] values: (bin lsl size_bits) lor size_units. A size
   is at most Load.capacity = 1e9 < 2^30 units, so 30 low bits hold it
   exactly and the bin id gets the rest (open_bin guards the ceiling).
   One Imap probe then yields both facts [remove] needs — which bin, and
   how much load to give back — with no record or Item.t lookup. *)
let size_bits = 30
let size_mask = (1 lsl size_bits) - 1
let () = assert (Load.capacity <= size_mask)
let max_slot = 1 lsl 32

(* [b_closed] state encoding. *)
let open_mark = -1
let freed_mark = -2

(* Bin records as parallel int arrays indexed by bin id. The live set is
   an intrusive doubly-linked list threaded through [b_prev]/[b_next] in
   opening order, so [open_bins] — the First-Fit scan order — is a plain
   traversal and closing a bin unlinks it in O(1).

   Two retention modes share the arena. [`Retain] (the default) never
   reuses a slot: ids are dense and monotonic, closed bins keep their
   record, item lists, and the permanent [history]/[ever] logs — what
   reports, figures and the validators need. [`Retire] recycles the slot
   of a closed bin through a free list (threaded through [b_next]): when
   a bin closes, its usage, count and lifetime fold into the running
   aggregates and the slot is handed to the next [open_bin], so memory
   is O(open bins), not O(bins ever) — the contract the streaming
   engine's million-item runs rely on. Retired ids may therefore be
   reassigned; nothing observable depends on id values (policies drop
   closed ids from their tables, and costs count ticks, not ids). *)
type t = {
  retire : bool;
  track : bool;  (** maintain [current] (item id -> packed bin, units) *)
  dims : int;  (** resource dimensions per bin; 1 = the scalar engine *)
  mutable b_load : int array;  (** load in units *)
  mutable b_extra : int array array;
      (** per-dimension load columns for dimensions 1..dims-1, parallel
          to [b_load]; [[||]] when [dims = 1], so the scalar path never
          touches them *)
  extra_current : (int, int array) Hashtbl.t;
      (** tracking stores with [dims > 1]: live item id -> extra units
          (the item's own array, never mutated) — what lets the id-only
          {!remove} give every dimension back *)
  mutable b_opened : int array;
  mutable b_closed : int array;  (** closing tick, or open/freed mark *)
  mutable b_count : int array;  (** items currently in the bin *)
  mutable b_prev : int array;  (** previous open bin in opening order, -1 = none *)
  mutable b_next : int array;  (** next open bin / free-list link *)
  mutable b_label : string array;
  mutable b_items : Item.t list array;  (** retain mode only; reverse order *)
  mutable cap : int;
  mutable next_fresh : int;  (** first never-used slot *)
  mutable free_head : int;  (** retire mode: head of the slot free list *)
  mutable opened : int;  (** bins ever opened (identity-independent) *)
  mutable live_head : int;  (** oldest open bin, -1 when none *)
  mutable live_tail : int;  (** newest open bin, -1 when none *)
  current : Imap.t;  (** active item id -> packed (bin, units) *)
  history : (int * bin_id) Vec.t;  (** retain mode only *)
  ever : Imap.t;  (** retain mode only: item id -> bin *)
  mutable n_open : int;
  mutable hw_open : int;
  mutable hw_items : int;
  mutable done_usage : int;
  mutable closed_count : int;
  lifetime_counts : int array;
  mutable lifetime_sum : int;
  mutable last_item : int;  (** item id of the most recent {!insert}, -1 = none *)
  mutable last_bin : bin_id;  (** bin of the most recent {!insert} *)
  mutable b_cookie : int array;  (** caller-owned stash per bin, -1 when unset *)
  moves_log : (int * int * bin_id * bin_id) Vec.t;
      (** retain mode only: (tick, item, src, dst) per {!move}, in
          execution order — what the validators replay to reconstruct
          per-item stints *)
  mutable moves_n : int;  (** moves ever (both modes) *)
  mutable moved_units_sum : int;  (** dimension-0 units carried by moves *)
}

let m_opens = Metrics.counter "bin_store.opens"
let m_closes = Metrics.counter "bin_store.closes"
let m_usage = Metrics.counter "bin_store.usage"
let m_max_open = Metrics.gauge "bin_store.max_open"
let m_live_items = Metrics.gauge "bin_store.live_items"
let lifetime_buckets = [| 1; 4; 16; 64; 256; 1024; 4096; 16384 |]
let m_lifetime = Metrics.histogram ~buckets:lifetime_buckets "bin_store.lifetime"
let m_moves = Metrics.counter "bin_store.moves"
let m_moved_units = Metrics.counter "bin_store.moved_units"

let initial_cap = 16

let create ?(retire = false) ?(track_items = true) ?(dims = 1) () =
  if (not track_items) && not retire then
    invalid_arg "Bin_store.create: track_items:false requires retire mode";
  if dims < 1 then invalid_arg "Bin_store.create: dims < 1";
  {
    retire;
    track = track_items;
    dims;
    b_load = Array.make initial_cap 0;
    b_extra = Array.init (dims - 1) (fun _ -> Array.make initial_cap 0);
    extra_current = Hashtbl.create (if dims > 1 then 64 else 1);
    b_opened = Array.make initial_cap 0;
    b_closed = Array.make initial_cap freed_mark;
    b_count = Array.make initial_cap 0;
    b_prev = Array.make initial_cap (-1);
    b_next = Array.make initial_cap (-1);
    b_label = Array.make initial_cap "";
    b_items = (if retire then [||] else Array.make initial_cap []);
    cap = initial_cap;
    next_fresh = 0;
    free_head = -1;
    opened = 0;
    live_head = -1;
    live_tail = -1;
    current = Imap.create ~capacity:64 ();
    history = Vec.create ();
    ever = Imap.create ~capacity:64 ();
    n_open = 0;
    hw_open = 0;
    hw_items = 0;
    done_usage = 0;
    closed_count = 0;
    lifetime_counts = Array.make (Array.length lifetime_buckets + 1) 0;
    lifetime_sum = 0;
    last_item = -1;
    last_bin = -1;
    b_cookie = Array.make initial_cap (-1);
    moves_log = Vec.create ();
    moves_n = 0;
    moved_units_sum = 0;
  }

let retire_mode t = t.retire
let dims t = t.dims

(* Existence check shared by the public per-bin accessors. A freed slot
   (retire mode) raises exactly like the dropped record used to. *)
let check_bin t id =
  if id < 0 || id >= t.next_fresh then invalid_arg "Bin_store: unknown bin id";
  if Array.unsafe_get t.b_closed id = freed_mark then
    invalid_arg "Bin_store: bin retired (store is in retire mode)"

let grow t =
  let cap' = 2 * t.cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.b_load <- extend t.b_load 0;
  t.b_extra <- Array.map (fun col -> extend col 0) t.b_extra;
  t.b_opened <- extend t.b_opened 0;
  t.b_closed <- extend t.b_closed freed_mark;
  t.b_count <- extend t.b_count 0;
  t.b_prev <- extend t.b_prev (-1);
  t.b_next <- extend t.b_next (-1);
  t.b_label <- extend t.b_label "";
  t.b_cookie <- extend t.b_cookie (-1);
  if not t.retire then t.b_items <- extend t.b_items [];
  t.cap <- cap'

let open_bin t ~now ~label =
  let id =
    if t.free_head >= 0 then begin
      let id = t.free_head in
      t.free_head <- t.b_next.(id);
      id
    end
    else begin
      if t.next_fresh = t.cap then grow t;
      let id = t.next_fresh in
      t.next_fresh <- id + 1;
      id
    end
  in
  if id >= max_slot then invalid_arg "Bin_store.open_bin: too many concurrent bins";
  t.b_load.(id) <- 0;
  for k = 0 to t.dims - 2 do
    t.b_extra.(k).(id) <- 0
  done;
  t.b_opened.(id) <- now;
  t.b_closed.(id) <- open_mark;
  t.b_count.(id) <- 0;
  t.b_label.(id) <- label;
  t.b_cookie.(id) <- -1;
  if not t.retire then t.b_items.(id) <- [];
  t.b_prev.(id) <- t.live_tail;
  t.b_next.(id) <- -1;
  if t.live_tail >= 0 then t.b_next.(t.live_tail) <- id else t.live_head <- id;
  t.live_tail <- id;
  t.opened <- t.opened + 1;
  t.n_open <- t.n_open + 1;
  (* The gauge keeps a max, so publishing only on a new local peak
     leaves its final value unchanged and skips the metric call on
     every non-record open. *)
  if t.n_open > t.hw_open then begin
    t.hw_open <- t.n_open;
    Metrics.set_max m_max_open t.n_open
  end;
  Metrics.incr m_opens;
  id

let unlink_live t id =
  let p = t.b_prev.(id) and n = t.b_next.(id) in
  if p >= 0 then t.b_next.(p) <- n else t.live_head <- n;
  if n >= 0 then t.b_prev.(n) <- p else t.live_tail <- p;
  t.b_prev.(id) <- -1;
  t.b_next.(id) <- -1

let insert_residual t id (r : Item.t) =
  check_bin t id;
  if t.b_closed.(id) <> open_mark then invalid_arg "Bin_store.insert: bin is closed";
  if Item.dims r <> t.dims then
    invalid_arg "Bin_store.insert: item/store dimensionality mismatch";
  let u = Load.to_units r.size in
  let load = t.b_load.(id) in
  if load + u > Load.capacity then invalid_arg "Bin_store.insert: does not fit";
  for k = 0 to t.dims - 2 do
    if t.b_extra.(k).(id) + r.extra.(k) > Load.capacity then
      invalid_arg "Bin_store.insert: does not fit"
  done;
  if t.track then begin
    if not (Imap.add_new t.current r.id ((id lsl size_bits) lor u)) then
      invalid_arg "Bin_store.insert: item already packed";
    let live = Imap.length t.current in
    if live > t.hw_items then begin
      t.hw_items <- live;
      Metrics.set_max m_live_items live
    end
  end;
  if t.track && t.dims > 1 then Hashtbl.replace t.extra_current r.id r.extra;
  t.last_item <- r.id;
  t.last_bin <- id;
  t.b_load.(id) <- load + u;
  for k = 0 to t.dims - 2 do
    t.b_extra.(k).(id) <- t.b_extra.(k).(id) + r.extra.(k)
  done;
  t.b_count.(id) <- t.b_count.(id) + 1;
  if not t.retire then begin
    t.b_items.(id) <- r :: t.b_items.(id);
    Imap.set t.ever r.id id;
    Vec.push t.history (r.id, id)
  end;
  Load.capacity - (load + u)

let insert t id r = ignore (insert_residual t id r)

(* One pass; the relative order of the remaining items is preserved. *)
let rec remove_item item_id prefix = function
  | [] -> assert false
  | (r : Item.t) :: rest ->
      if r.id = item_id then List.rev_append prefix rest
      else remove_item item_id (r :: prefix) rest

let observe_lifetime t life =
  t.lifetime_sum <- t.lifetime_sum + life;
  let n = Array.length lifetime_buckets in
  let rec slot i = if i = n || life <= lifetime_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  t.lifetime_counts.(i) <- t.lifetime_counts.(i) + 1

(* Close an emptied bin: fold its lifetime into the aggregates and
   either retire the slot or stamp the closing tick. Shared by item
   departures ([release]) and by [move] draining a source bin. *)
let close_empty t ~now id =
  unlink_live t id;
  t.n_open <- t.n_open - 1;
  let life = now - t.b_opened.(id) in
  t.done_usage <- t.done_usage + life;
  t.closed_count <- t.closed_count + 1;
  observe_lifetime t life;
  (* Retire: the aggregates above are all that survives; recycling the
     slot is what keeps a streamed run's memory bounded. The caller's
     [on_departure] may still read nothing of this bin — the next
     [open_bin] would repurpose it. *)
  if t.retire then begin
    t.b_closed.(id) <- freed_mark;
    t.b_next.(id) <- t.free_head;
    t.free_head <- id
  end
  else t.b_closed.(id) <- now;
  Metrics.incr m_closes;
  Metrics.add m_usage life;
  Metrics.observe m_lifetime life

(* Give back [u] units of [item_id]'s load to bin [id]; close the bin if
   it emptied. The packing record is the caller's business: [remove]
   resolves it through [current], [remove_at] is handed it by a caller
   that tracked the placement itself. *)
let release t ~now ~item_id ~extra id u =
  t.b_load.(id) <- t.b_load.(id) - u;
  for k = 0 to t.dims - 2 do
    t.b_extra.(k).(id) <- t.b_extra.(k).(id) - extra.(k)
  done;
  let count = t.b_count.(id) - 1 in
  t.b_count.(id) <- count;
  if not t.retire then t.b_items.(id) <- remove_item item_id [] t.b_items.(id);
  let closed = count = 0 in
  if closed then close_empty t ~now id;
  closed

(* Resolve a tracked item's extra dimensions (only a [dims > 1] store
   has entries; the shared empty array serves everyone else). *)
let take_extra t item_id =
  if t.dims = 1 then Item.no_extra
  else begin
    match Hashtbl.find_opt t.extra_current item_id with
    | Some e ->
        Hashtbl.remove t.extra_current item_id;
        e
    | None -> raise Not_found
  end

let remove_packed t ~now ~item_id =
  let packed = Imap.take t.current item_id in
  (* raises Not_found *)
  let id = packed lsr size_bits in
  let u = packed land size_mask in
  let extra = take_extra t item_id in
  let closed = release t ~now ~item_id ~extra id u in
  (id lsl 1) lor Bool.to_int closed

let remove t ~now ~item_id =
  let p = remove_packed t ~now ~item_id in
  (p lsr 1, p land 1 = 1)

let remove_at ?(extra = Item.no_extra) t ~now ~item_id ~bin ~units =
  if Array.length extra <> t.dims - 1 then
    invalid_arg "Bin_store.remove_at: extra/store dimensionality mismatch";
  if t.track then begin
    let packed = Imap.take t.current item_id in
    if packed <> (bin lsl size_bits) lor units then
      invalid_arg "Bin_store.remove_at: bin/units disagree with the packing record";
    if t.dims > 1 then Hashtbl.remove t.extra_current item_id
  end;
  release t ~now ~item_id ~extra bin units

(* Relocate a live item into another open bin. The arrival logs
   ([history]/[ever]) record *initial* placements only; moves are logged
   separately, so the two streams together reconstruct per-item stints.
   [last_item]/[last_bin] are deliberately untouched: a move performed
   inside [on_arrival] must not disturb the engine's "did the policy
   pack where it said?" check, which keys on the arrival insert. *)
let move t ~now ~item_id ~dst =
  if not t.track then
    invalid_arg "Bin_store.move: store does not track items (track_items:false)";
  check_bin t dst;
  if t.b_closed.(dst) <> open_mark then
    invalid_arg "Bin_store.move: destination bin is closed";
  let packed =
    match Imap.find_opt t.current item_id with
    | Some p -> p
    | None -> invalid_arg "Bin_store.move: item is not live"
  in
  let src = packed lsr size_bits in
  let u = packed land size_mask in
  if src = dst then invalid_arg "Bin_store.move: item already in that bin";
  if t.b_load.(dst) + u > Load.capacity then
    invalid_arg "Bin_store.move: does not fit";
  let extra =
    if t.dims = 1 then Item.no_extra else Hashtbl.find t.extra_current item_id
  in
  for k = 0 to t.dims - 2 do
    if t.b_extra.(k).(dst) + extra.(k) > Load.capacity then
      invalid_arg "Bin_store.move: does not fit"
  done;
  Imap.set t.current item_id ((dst lsl size_bits) lor u);
  t.b_load.(dst) <- t.b_load.(dst) + u;
  t.b_load.(src) <- t.b_load.(src) - u;
  for k = 0 to t.dims - 2 do
    t.b_extra.(k).(dst) <- t.b_extra.(k).(dst) + extra.(k);
    t.b_extra.(k).(src) <- t.b_extra.(k).(src) - extra.(k)
  done;
  t.b_count.(dst) <- t.b_count.(dst) + 1;
  let count = t.b_count.(src) - 1 in
  t.b_count.(src) <- count;
  if not t.retire then begin
    (* Retain mode keeps per-bin contents and the full move log; retire
       mode drops both so streaming memory stays O(live items) — the
       counters below still aggregate every move. *)
    let r = List.find (fun (r : Item.t) -> r.id = item_id) t.b_items.(src) in
    t.b_items.(src) <- remove_item item_id [] t.b_items.(src);
    t.b_items.(dst) <- r :: t.b_items.(dst);
    Vec.push t.moves_log (now, item_id, src, dst)
  end;
  t.moves_n <- t.moves_n + 1;
  t.moved_units_sum <- t.moved_units_sum + u;
  Metrics.incr m_moves;
  Metrics.add m_moved_units u;
  let closed = count = 0 in
  if closed then close_empty t ~now src;
  closed

let move_count t = t.moves_n
let moved_units t = t.moved_units_sum
let move_logged t = Vec.length t.moves_log
let move_entry t i = Vec.get t.moves_log i
let move_log t = Vec.to_list t.moves_log
let load t id = check_bin t id; Load.of_units t.b_load.(id)
let residual t id = check_bin t id; Load.of_units (Load.capacity - t.b_load.(id))
let residual_units t id = check_bin t id; Load.capacity - t.b_load.(id)

let check_dim t k op =
  if k < 0 || k >= t.dims then invalid_arg ("Bin_store." ^ op ^ ": bad dimension")

let load_units_dim t id k =
  check_bin t id;
  check_dim t k "load_units_dim";
  if k = 0 then t.b_load.(id) else t.b_extra.(k - 1).(id)

let residual_units_dim t id k = Load.capacity - load_units_dim t id k

(* The vector fit predicate the placement scan uses: dimension 0 is
   pre-filtered by the caller's index, so only dimensions 1.. are
   checked here. *)
let fits_extra t id (extra : int array) =
  let ok = ref true in
  for k = 0 to t.dims - 2 do
    if t.b_extra.(k).(id) + extra.(k) > Load.capacity then ok := false
  done;
  !ok
let is_open t id = check_bin t id; t.b_closed.(id) = open_mark
let label t id = check_bin t id; t.b_label.(id)
let relabel t id label = check_bin t id; t.b_label.(id) <- label
let opened_at t id = check_bin t id; t.b_opened.(id)

let closed_at t id =
  check_bin t id;
  let c = t.b_closed.(id) in
  if c = open_mark then None else Some c

let contents t id =
  check_bin t id;
  if t.retire then
    invalid_arg "Bin_store.contents: no per-item records in retire mode";
  List.rev t.b_items.(id)

let fold_live f acc t =
  let rec loop acc id = if id < 0 then acc else loop (f acc id) t.b_next.(id) in
  loop acc t.live_head

let fold_open f acc t = fold_live f acc t
let item_count t id = check_bin t id; t.b_count.(id)
let open_bins t = List.rev (fold_live (fun acc id -> id :: acc) [] t)
let all_bins t = if t.retire then open_bins t else List.init t.next_fresh Fun.id
let open_count t = t.n_open
let bins_opened t = t.opened
let max_open t = t.hw_open
let closed_count t = t.closed_count
let live_items t = Imap.length t.current
let max_live_items t = t.hw_items

let lifetime_histogram t =
  (Array.copy lifetime_buckets, Array.copy t.lifetime_counts, t.lifetime_sum)

let usage t ~now =
  fold_live (fun acc id -> acc + (now - t.b_opened.(id))) t.done_usage t

let closed_usage t = t.done_usage
let assignment t = Vec.to_list t.history

let bin_of_item t item_id =
  match Imap.find_opt t.current item_id with
  | Some packed -> packed lsr size_bits
  | None -> if t.retire then raise Not_found else Imap.find t.ever item_id

(* Packed values are non-negative, so -1 is a safe absent marker. *)
let live_bin_of_item t item_id =
  let packed = Imap.find_default t.current item_id (-1) in
  if packed < 0 then -1 else packed lsr size_bits

let last_inserted_into t ~item_id ~bin = t.last_item = item_id && t.last_bin = bin

let set_cookie t id v = check_bin t id; t.b_cookie.(id) <- v
let cookie t id = check_bin t id; t.b_cookie.(id)

(* --- snapshot codec (retire-mode stores) ---

   Serialize everything a restarted process needs to continue with
   bit-identical observable behavior: the per-bin arrays up to
   [next_fresh] (including the free list threaded through [b_next] —
   the *order* of recycled slots decides which ids future [open_bin]
   calls hand out, and ids are visible to serve clients), the live-list
   links, and every aggregate that feeds costs and reports. Cookies are
   deliberately not serialized: they hold fit-index slot stamps keyed
   by a process-unique group id, stale by construction in a new
   process; restored bins start unstamped (-1) and the index rebuild
   re-stamps them.

   Retain-mode stores are not snapshottable — they hold boxed item
   lists, the full history and move logs; long-lived processes run
   retire mode, which is exactly the state that fits in O(open bins). *)

let json_ints a n = Json.List (List.init n (fun i -> Json.Int a.(i)))

let to_json t =
  if not t.retire then
    invalid_arg "Bin_store.to_json: only retire-mode stores are snapshottable";
  let n = t.next_fresh in
  let current =
    if not t.track then Json.Null
    else begin
      let pairs = Imap.fold (fun k v acc -> (k, v) :: acc) t.current [] in
      let pairs = List.sort compare pairs in
      Json.List
        (List.concat_map (fun (k, v) -> [ Json.Int k; Json.Int v ]) pairs)
    end
  in
  let extra_current =
    if not (t.track && t.dims > 1) then Json.Null
    else begin
      let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.extra_current [] in
      let entries = List.sort compare entries in
      Json.List
        (List.map
           (fun (k, e) ->
             Json.List (Json.Int k :: Array.to_list (Array.map (fun u -> Json.Int u) e)))
           entries)
    end
  in
  Json.Obj
    [
      ("track", Json.Bool t.track);
      ("dims", Json.Int t.dims);
      ("next_fresh", Json.Int n);
      ("free_head", Json.Int t.free_head);
      ("b_load", json_ints t.b_load n);
      ( "b_extra",
        Json.List (Array.to_list (Array.map (fun col -> json_ints col n) t.b_extra)) );
      ("b_opened", json_ints t.b_opened n);
      ("b_closed", json_ints t.b_closed n);
      ("b_count", json_ints t.b_count n);
      ("b_prev", json_ints t.b_prev n);
      ("b_next", json_ints t.b_next n);
      ( "b_label",
        Json.List (List.init n (fun i -> Json.String t.b_label.(i))) );
      ("live_head", Json.Int t.live_head);
      ("live_tail", Json.Int t.live_tail);
      ("opened", Json.Int t.opened);
      ("n_open", Json.Int t.n_open);
      ("hw_open", Json.Int t.hw_open);
      ("hw_items", Json.Int t.hw_items);
      ("done_usage", Json.Int t.done_usage);
      ("closed_count", Json.Int t.closed_count);
      ("lifetime_counts", json_ints t.lifetime_counts (Array.length t.lifetime_counts));
      ("lifetime_sum", Json.Int t.lifetime_sum);
      ("moves_n", Json.Int t.moves_n);
      ("moved_units_sum", Json.Int t.moved_units_sum);
      ("current", current);
      ("extra_current", extra_current);
    ]

let of_json j =
  let fail msg = failwith ("Bin_store.of_json: " ^ msg) in
  let field name =
    match Json.member name j with Some v -> v | None -> fail ("missing " ^ name)
  in
  let int name = match field name with Json.Int i -> i | _ -> fail (name ^ ": expected int") in
  let bool name = match field name with Json.Bool b -> b | _ -> fail (name ^ ": expected bool") in
  let int_list = function
    | Json.List l -> List.map (function Json.Int i -> i | _ -> fail "expected int") l
    | _ -> fail "expected int list"
  in
  let track = bool "track" and dims = int "dims" in
  if dims < 1 then fail "dims < 1";
  let n = int "next_fresh" in
  if n < 0 then fail "negative next_fresh";
  let cap = max initial_cap (Ints.pow2 (Ints.ceil_log2 (max 1 n))) in
  let t = { (create ~retire:true ~track_items:track ~dims ()) with cap } in
  let fill name arr of_field tail =
    let l = of_field (field name) in
    if List.length l <> n then fail (name ^ ": wrong length");
    let a = Array.make cap tail in
    List.iteri (fun i v -> a.(i) <- v) l;
    arr a
  in
  fill "b_load" (fun a -> t.b_load <- a) int_list 0;
  fill "b_opened" (fun a -> t.b_opened <- a) int_list 0;
  fill "b_closed" (fun a -> t.b_closed <- a) int_list freed_mark;
  fill "b_count" (fun a -> t.b_count <- a) int_list 0;
  fill "b_prev" (fun a -> t.b_prev <- a) int_list (-1);
  fill "b_next" (fun a -> t.b_next <- a) int_list (-1);
  fill "b_label"
    (fun a -> t.b_label <- a)
    (function
      | Json.List l -> List.map (function Json.String s -> s | _ -> fail "expected string") l
      | _ -> fail "expected string list")
    "";
  t.b_cookie <- Array.make cap (-1);
  (match field "b_extra" with
  | Json.List cols ->
      if List.length cols <> dims - 1 then fail "b_extra: wrong dimension count";
      t.b_extra <-
        Array.of_list
          (List.map
             (fun col ->
               let l = int_list col in
               if List.length l <> n then fail "b_extra: wrong length";
               let a = Array.make cap 0 in
               List.iteri (fun i v -> a.(i) <- v) l;
               a)
             cols)
  | _ -> fail "b_extra: expected list");
  t.next_fresh <- n;
  t.free_head <- int "free_head";
  t.live_head <- int "live_head";
  t.live_tail <- int "live_tail";
  t.opened <- int "opened";
  t.n_open <- int "n_open";
  t.hw_open <- int "hw_open";
  t.hw_items <- int "hw_items";
  t.done_usage <- int "done_usage";
  t.closed_count <- int "closed_count";
  (let l = int_list (field "lifetime_counts") in
   if List.length l <> Array.length t.lifetime_counts then
     fail "lifetime_counts: wrong length";
   List.iteri (fun i v -> t.lifetime_counts.(i) <- v) l);
  t.lifetime_sum <- int "lifetime_sum";
  t.moves_n <- int "moves_n";
  t.moved_units_sum <- int "moved_units_sum";
  (match field "current" with
  | Json.Null -> if track then fail "current: missing for a tracking store"
  | js ->
      if not track then fail "current: present for a non-tracking store";
      let rec pairs = function
        | [] -> ()
        | k :: v :: rest ->
            if not (Imap.add_new t.current k v) then fail "current: duplicate id";
            pairs rest
        | _ -> fail "current: odd pair list"
      in
      pairs (int_list js));
  (match field "extra_current" with
  | Json.Null -> ()
  | Json.List entries ->
      List.iter
        (function
          | Json.List (Json.Int k :: e) ->
              Hashtbl.replace t.extra_current k
                (Array.of_list
                   (List.map (function Json.Int u -> u | _ -> fail "extra_current") e))
          | _ -> fail "extra_current: malformed entry")
        entries
  | _ -> fail "extra_current: expected list");
  (* Sanity: the live list must link exactly [n_open] open bins. *)
  let rec walk acc id =
    if id < 0 then acc
    else if acc > n then fail "live list cycle"
    else begin
      if t.b_closed.(id) <> open_mark then fail "live list links a closed bin";
      walk (acc + 1) t.b_next.(id)
    end
  in
  if walk 0 t.live_head <> t.n_open then fail "live list length <> n_open";
  t
