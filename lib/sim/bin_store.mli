(** The shared bin substrate all online algorithms pack into.

    The store is the single source of truth for bin contents, loads and —
    crucially — the MinUsageTime objective: every bin accrues usage from
    its opening tick to the tick its last item departs (the paper's
    convention that an emptied bin closes and is never reused). Algorithms
    decide *which* bin receives an item; the store enforces capacity and
    does the accounting, so all algorithms are costed identically. *)

open Dbp_util
open Dbp_instance

type bin_id = int
type t

val create : unit -> t

val open_bin : t -> now:int -> label:string -> bin_id
(** Open a fresh bin at tick [now]. [label] is free-form metadata used by
    traces and figures (e.g. ["GN"], ["CD(3,7)"], ["row2"]). *)

val insert : t -> bin_id -> Item.t -> unit
(** Raises [Invalid_argument] if the bin is closed, the item does not
    fit, or the item id is already packed. *)

val remove : t -> now:int -> item_id:int -> bin_id * bool
(** Remove a departed item. Returns its bin and whether that bin became
    empty and was therefore closed at [now]. Raises [Not_found] for an
    unknown item id. One pass over the bin's items; closing a bin
    unlinks it from the live set in O(1). *)

val load : t -> bin_id -> Load.t
val residual : t -> bin_id -> Load.t
val is_open : t -> bin_id -> bool
val label : t -> bin_id -> string

val relabel : t -> bin_id -> string -> unit
(** Rename a bin (CDFF re-anchors its row indices when it learns a larger
    top class at a segment start; row labels must follow). *)

val opened_at : t -> bin_id -> int

val closed_at : t -> bin_id -> int option
(** Closing tick, or [None] while open. *)

val contents : t -> bin_id -> Item.t list
(** Items currently in the bin, in insertion order. *)

val open_bins : t -> bin_id list
(** Open bins in opening order (the First-Fit scan order). *)

val all_bins : t -> bin_id list
(** Every bin ever opened (open or closed), in opening order — the
    enumeration validators use to recompute the usage integral from the
    per-bin [opened_at]/[closed_at] log. *)

val open_count : t -> int
val bins_opened : t -> int
(** Total bins ever opened. *)

val max_open : t -> int
(** High-water mark of simultaneously open bins. *)

val usage : t -> now:int -> int
(** Accumulated usage time (bin x ticks) counting open bins up to
    [now]. This is the MinUsageTime objective. *)

val closed_usage : t -> int
(** Usage of closed bins only; equals [usage ~now] once every item has
    departed. *)

val assignment : t -> (int * bin_id) list
(** Permanent log of [(item_id, bin)] placements, including departed
    items, in placement order. *)

val bin_of_item : t -> int -> bin_id
(** Bin that ever held the item (including after departure); raises
    [Not_found]. *)
