(** The shared bin substrate all online algorithms pack into.

    The store is the single source of truth for bin contents, loads and —
    crucially — the MinUsageTime objective: every bin accrues usage from
    its opening tick to the tick its last item departs (the paper's
    convention that an emptied bin closes and is never reused). Algorithms
    decide *which* bin receives an item; the store enforces capacity and
    does the accounting, so all algorithms are costed identically. *)

open Dbp_util
open Dbp_instance

type bin_id = int
type t

val create : ?retire:bool -> ?track_items:bool -> ?dims:int -> unit -> t
(** With [~retire:false] (the default) every bin ever opened is
    retained, with the permanent placement logs — full-fidelity state
    for reports, figures and the validators.

    [dims] (default 1) is the store's resource dimensionality: every
    bin keeps one load column per dimension and {!insert} enforces
    capacity in all of them. Items must match ([Item.dims r = dims],
    [Invalid_argument] otherwise). The scalar store ([dims = 1]) has no
    extra columns and its code paths are untouched.

    With [~retire:true] the store runs in {e retire/compact} mode: a bin
    that closes folds its usage, count and lifetime into running
    aggregates ({!closed_usage}, {!closed_count}, {!lifetime_histogram})
    and its arena slot is recycled, so memory is O(currently open bins) —
    the streaming engine's contract. In this mode per-bin accessors
    ({!load}, {!closed_at}, ...) work only while the bin is open (a
    retired id raises [Invalid_argument]), {!contents} is unavailable
    (no per-item records are kept), {!all_bins} lists open bins only,
    {!assignment} is empty, and {!bin_of_item} resolves active items
    only. Because slots are recycled, a retired [bin_id] may later
    denote a different, newly opened bin; ids are only meaningful while
    their bin is open. No simulation observable depends on id values.

    With [~track_items:false] (retire mode only) the store also skips
    the per-item packing map: {!remove}/{!bin_of_item}/{!live_items}
    have nothing to resolve items against, so departures must go
    through {!remove_at} with the placement remembered by the caller —
    the streaming engine keeps a bin per arena slot and hands it back,
    trading the map's per-item hash traffic for one array word.
    Costing, capacity enforcement and every per-bin observable are
    unchanged. *)

val retire_mode : t -> bool

val dims : t -> int
(** Resource dimensions per bin (1 = the scalar engine). *)

val open_bin : t -> now:int -> label:string -> bin_id
(** Open a fresh bin at tick [now]. [label] is free-form metadata used by
    traces and figures (e.g. ["GN"], ["CD(3,7)"], ["row2"]). *)

val insert : t -> bin_id -> Item.t -> unit
(** Raises [Invalid_argument] if the bin is closed, the item does not
    fit, or the item id is already packed. *)

val insert_residual : t -> bin_id -> Item.t -> int
(** {!insert}, returning the bin's residual capacity in load units after
    the insertion — the value a placement index stores for the bin, read
    here for free instead of by a second per-bin lookup. *)

val remove : t -> now:int -> item_id:int -> bin_id * bool
(** Remove a departed item. Returns its bin and whether that bin became
    empty and was therefore closed at [now]. Raises [Not_found] for an
    unknown item id. In retire mode this is O(1) — one hash probe yields
    the bin and the load to release; retain mode additionally walks the
    bin's item list. Closing a bin unlinks it from the live set in
    O(1). *)

val remove_packed : t -> now:int -> item_id:int -> int
(** {!remove} without the result tuple: returns
    [(bin lsl 1) lor (if closed then 1 else 0)]. Bin ids stay below
    [2^32] ({!open_bin}'s ceiling), so the packing is exact — the
    packed form keeps a drain loop allocation-free. *)

val remove_at :
  ?extra:int array ->
  t ->
  now:int ->
  item_id:int ->
  bin:bin_id ->
  units:int ->
  bool
(** Remove a departed item whose placement the caller remembered:
    give [units] of load back to [bin], closing it if it emptied
    (the return value). With item tracking on, the packing record is
    still consumed and must agree with [bin]/[units]
    ([Invalid_argument] otherwise); with [~track_items:false] this is
    the only removal entry point. On a [dims > 1] store, [extra] must
    be the item's extra-dimension units (length [dims - 1] — usually
    the item's own [extra] field); it defaults to the empty array,
    which only a scalar store accepts. *)

val move : t -> now:int -> item_id:int -> dst:bin_id -> bool
(** Relocate a live item into another open bin, in O(1) unlink/relink on
    the packing record (retain mode additionally rewrites the two bins'
    item lists). Returns whether the source bin emptied and was closed
    at [now] — closed by a move exactly as it would be by a departure
    (lifetime, aggregates, live-list unlink, retire-mode slot
    recycling). Capacity is enforced in every dimension. The arrival
    logs ({!assignment}, {!bin_of_item} after departure) keep recording
    {e initial} placements; moves are logged separately ({!move_log}),
    and {!last_inserted_into} is unaffected, so a move performed inside
    a policy's arrival hook does not disturb the engine's placement
    check. Requires item tracking ([Invalid_argument] with
    [~track_items:false]); raises [Invalid_argument] if the item is not
    live, the destination is closed, equals the current bin, or lacks
    capacity. *)

val move_count : t -> int
(** Moves ever executed (both retention modes). *)

val moved_units : t -> int
(** Total dimension-0 load units carried by moves. *)

val move_log : t -> (int * int * bin_id * bin_id) list
(** Permanent [(tick, item_id, src, dst)] log of moves in execution
    order. Retain mode only — empty in retire mode (the same unbounded
    retention {!assignment} avoids there). *)

val move_logged : t -> int
(** Length of {!move_log} — lets an incremental consumer (the shadow
    validator) drain only the entries appended since its last look. *)

val move_entry : t -> int -> int * int * bin_id * bin_id
(** Random access into {!move_log} without materializing the list. *)

val load : t -> bin_id -> Load.t
val residual : t -> bin_id -> Load.t

val residual_units : t -> bin_id -> int
(** {!residual} in raw load units — what a placement index stores; one
    call instead of a [Load.t] round-trip on the per-departure resync. *)

val load_units_dim : t -> bin_id -> int -> int
(** Load in the given dimension (0-based; dimension 0 equals
    [Load.to_units (load t id)]), in units. *)

val residual_units_dim : t -> bin_id -> int -> int
(** Free space in the given dimension, in units. *)

val fits_extra : t -> bin_id -> int array -> bool
(** Whether the bin can accept an item whose extra-dimension sizes are
    the given array (length [dims - 1]) — dimensions 1.. only; the
    caller has already checked dimension 0 against its fit index.
    Vacuously true on a scalar store. No bounds or liveness checks:
    this is the inner loop of the vector placement scan. *)

val is_open : t -> bin_id -> bool
val label : t -> bin_id -> string

val relabel : t -> bin_id -> string -> unit
(** Rename a bin (CDFF re-anchors its row indices when it learns a larger
    top class at a segment start; row labels must follow). *)

val opened_at : t -> bin_id -> int

val closed_at : t -> bin_id -> int option
(** Closing tick, or [None] while open. *)

val contents : t -> bin_id -> Item.t list
(** Items currently in the bin, in insertion order. Retain mode only:
    in retire mode the store keeps no per-item records and this raises
    [Invalid_argument]. *)

val open_bins : t -> bin_id list
(** Open bins in opening order (the First-Fit scan order). *)

val fold_open : ('a -> bin_id -> 'a) -> 'a -> t -> 'a
(** Fold over the open bins in opening order without materializing the
    list — the deterministic enumeration the recourse strategies scan on
    every event. *)

val item_count : t -> bin_id -> int
(** Items currently in the bin (both retention modes — unlike
    {!contents}, this is a plain counter read). *)

val all_bins : t -> bin_id list
(** Every bin ever opened (open or closed), in opening order — the
    enumeration validators use to recompute the usage integral from the
    per-bin [opened_at]/[closed_at] log. In retire mode only the open
    bins still exist, so this equals {!open_bins}. *)

val open_count : t -> int
val bins_opened : t -> int
(** Total bins ever opened. *)

val max_open : t -> int
(** High-water mark of simultaneously open bins. *)

val closed_count : t -> int
(** Bins closed so far; [bins_opened - open_count]. *)

val live_items : t -> int
(** Items currently packed (arrived, not yet departed). *)

val max_live_items : t -> int
(** High-water mark of {!live_items} — in retire mode, the store's item
    retention never exceeds this, whatever the trace length. *)

val lifetime_histogram : t -> int array * int array * int
(** [(bounds, counts, sum)] of closed-bin lifetimes: [counts] has one
    cell per inclusive upper bound in [bounds] plus a final overflow
    cell, and [sum] is the total closed lifetime ([= closed_usage]).
    Accumulated in both modes; in retire mode it is the surviving record
    of the dropped bins. *)

val usage : t -> now:int -> int
(** Accumulated usage time (bin x ticks) counting open bins up to
    [now]. This is the MinUsageTime objective. *)

val closed_usage : t -> int
(** Usage of closed bins only; equals [usage ~now] once every item has
    departed. *)

val assignment : t -> (int * bin_id) list
(** Permanent log of [(item_id, bin)] placements, including departed
    items, in placement order. Empty in retire mode (the log is exactly
    the unbounded retention retire mode exists to avoid). *)

val bin_of_item : t -> int -> bin_id
(** Bin that ever held the item (including after departure); raises
    [Not_found]. In retire mode, only active items resolve. *)

val live_bin_of_item : t -> int -> bin_id
(** Bin currently holding the {e live} item, or [-1] when the item is
    not active — one probe, no allocation, no exception. *)

val last_inserted_into : t -> item_id:int -> bin:bin_id -> bool
(** Whether the most recent {!insert} into this store was exactly
    [item_id] into [bin] — two field reads, no probe. The engine's
    per-arrival sanity check ("did the policy pack where it said?")
    lives on this: a policy's [on_arrival] performs exactly one insert
    (its own item), so checking the last insert is as strong as a
    table lookup. *)

val set_cookie : t -> bin_id -> int -> unit
(** Stash a caller-owned word on the bin. The store never interprets it;
    it is reset to [-1] when a (recycled) slot is reopened. A bin
    belongs to exactly one {!Fit_group}, which stashes its tagged index
    slot here — turning the per-departure bin-to-slot lookup into one
    array read. *)

val cookie : t -> bin_id -> int
(** The stashed word, or [-1] if never set since the bin opened. *)

val to_json : t -> Dbp_util.Json.t
(** Snapshot a retire-mode store: per-bin arrays up to the high-water
    slot (including the free list threaded through the next links —
    recycled-slot order decides which ids future {!open_bin} calls hand
    out), the live-list links, the id->placement table when item
    tracking is on, and every cost/report aggregate. Fit-index cookies
    are {e not} serialized: they are stamps keyed by a process-unique
    group id, meaningless after restart; restored bins read as unstamped
    until an index re-registers them. Raises [Invalid_argument] on a
    retain-mode store (unbounded history; long-lived processes run
    retire mode). *)

val of_json : Dbp_util.Json.t -> t
(** Rebuild a store from {!to_json} output. The result is
    observationally identical to the snapshotted store: same open bins,
    loads, ids, aggregates, and — via the restored free list — the same
    future id assignments. Raises [Failure] on malformed input. *)
