(* Calendar queue over item departures, replacing the binary-heap drain.

   The engine's event clock is monotone: every pop is for a tick >= the
   last one, and an item is only added with a departure strictly after
   the current arrival. Under that discipline a heap's O(log n) sift per
   operation buys generality nobody uses — a ring of per-tick buckets
   gives O(1) add and O(1) amortized pop, with the scan over empty
   buckets costing one compare per simulated tick, not per item.

   Each bucket is an intrusive FIFO threaded through [next] (indexed by
   the caller's slot number, as handed to {!add}). The engine must pop
   in (departure, id) order — the total order every queue implementation
   here has honored, pinned by the conformance tests — so an add whose
   id is not larger than the bucket's tail walks the bucket to its
   sorted position. On the streaming path ids are assigned in arrival
   order, so the tail append always wins and the walk never runs; it
   exists for interactive callers that craft ids out of order.

   The ring always spans every pending departure: [cur .. hi] brackets
   the pending ticks ([cur], the scan cursor, is a lower bound; [hi] the
   maximum), and {!add} grows the ring whenever the bracket would reach
   [size] ticks wide. An add below the cursor — an early departure
   arriving after a far-future one — simply lowers the cursor; the scan
   resumes from there. Buckets therefore never alias two ticks, which is
   what lets a grow relink whole buckets without inspecting their
   elements.

   The bracket is re-based, not absolute: the cursor is tightened to the
   first pending bucket before a grow is paid for, and once the pending
   span collapses to an eighth of the ring the ring shrinks back toward
   the span's scale. A long-lived server whose tick values increase
   without bound therefore keeps the ring at the size of its
   *concurrent* departure window, not of one historical flash crowd. *)

type t = {
  mutable head : int array;  (** ring: first slot of the tick's bucket, -1 = empty *)
  mutable tail : int array;  (** ring: last slot of the tick's bucket *)
  mutable next : int array;  (** per-slot: next slot in its bucket, -1 = end *)
  mutable ids : int array;  (** per-slot: id, for the (departure, id) order *)
  mutable size : int;  (** ring capacity, a power of two *)
  mutable cur : int;  (** scan cursor; no pending departure is below it *)
  mutable hi : int;  (** maximum pending departure (valid when [n > 0]) *)
  mutable n : int;  (** pending items *)
  base : int;  (** creation-time ring size; shrinks never go below it *)
}

let create ?(capacity = 256) () =
  let size = Dbp_util.Ints.pow2 (Dbp_util.Ints.ceil_log2 (max 16 capacity)) in
  {
    head = Array.make size (-1);
    tail = Array.make size (-1);
    next = Array.make 64 (-1);
    ids = Array.make 64 0;
    size;
    cur = 0;
    hi = 0;
    n = 0;
    base = size;
  }

let length t = t.n
let ring_size t = t.size

let clear t =
  if t.size > t.base then begin
    t.head <- Array.make t.base (-1);
    t.tail <- Array.make t.base (-1);
    t.size <- t.base
  end
  else begin
    Array.fill t.head 0 t.size (-1);
    Array.fill t.tail 0 t.size (-1)
  end;
  t.cur <- 0;
  t.hi <- 0;
  t.n <- 0

(* Double the ring until [lo .. hi] fits within one window. The relink
   enumerates the old window [t.cur, t.cur + size) — which spanned every
   pending tick before this add. Bucket lists survive untouched: a
   bucket holds exactly one tick's items, so its head/tail just move to
   the tick's position in the wider ring. *)
let grow_ring t ~lo ~hi =
  let size' =
    let s = ref t.size in
    while hi - lo >= !s do
      s := 2 * !s
    done;
    !s
  in
  let head' = Array.make size' (-1) and tail' = Array.make size' (-1) in
  let mask = t.size - 1 and mask' = size' - 1 in
  for j = 0 to t.size - 1 do
    let tick = t.cur + j in
    let b = tick land mask in
    if t.head.(b) >= 0 then begin
      head'.(tick land mask') <- t.head.(b);
      tail'.(tick land mask') <- t.tail.(b)
    end
  done;
  t.head <- head';
  t.tail <- tail';
  t.size <- size'

(* Advance a stale cursor to the first pending bucket. Pops leave [cur]
   at [upto + 1], which can lag the earliest pending departure by an
   arbitrary idle gap; before that gap is allowed to force a wider ring
   (or block a shrink) the bracket is re-based on what is actually
   pending. Requires [n > 0]; terminates within [size] steps because
   every pending tick lies in [cur, cur + size). *)
let tighten t =
  let mask = t.size - 1 in
  while Array.unsafe_get t.head (t.cur land mask) < 0 do
    t.cur <- t.cur + 1
  done

(* Rebuild the ring at the scale of the pending bracket. Only ticks in
   [lo .. hi] can hold items (lo a lower bound, hi the max), so the
   relink walks just the bracket — O(span), amortized against the adds
   that widened it. The target leaves 2x headroom over the span and
   never drops below the creation size, and the trigger (span <= size/8)
   leaves a 4x hysteresis band so an oscillating span cannot thrash
   grow/shrink. *)
let shrink_ring t ~lo ~hi =
  let want = max t.base (2 * (hi - lo + 1)) in
  let size' = Dbp_util.Ints.pow2 (Dbp_util.Ints.ceil_log2 want) in
  if size' < t.size then begin
    let head' = Array.make size' (-1) and tail' = Array.make size' (-1) in
    let mask = t.size - 1 and mask' = size' - 1 in
    for tick = lo to hi do
      let b = tick land mask in
      if t.head.(b) >= 0 then begin
        head'.(tick land mask') <- t.head.(b);
        tail'.(tick land mask') <- t.tail.(b)
      end
    done;
    t.head <- head';
    t.tail <- tail';
    t.size <- size'
  end

let grow_slots t slot =
  let cap = Array.length t.next in
  let cap' = max (2 * cap) (slot + 1) in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.next <- extend t.next (-1);
  t.ids <- extend t.ids 0

let add t ~dep ~id slot =
  if slot < 0 then invalid_arg "Depart_queue.add: negative slot";
  if t.n = 0 then begin
    (* Ring is empty: re-base the window on [dep] and, if a past crowd
       left an oversized ring behind, drop it back to the base size
       (every bucket is already empty, so no relink is needed). *)
    if t.size > t.base then begin
      t.head <- Array.make t.base (-1);
      t.tail <- Array.make t.base (-1);
      t.size <- t.base
    end;
    t.cur <- dep;
    t.hi <- dep
  end
  else begin
    let lo = if dep < t.cur then dep else t.cur in
    let hi = if dep > t.hi then dep else t.hi in
    if hi - lo >= t.size then begin
      (* Before paying for a wider ring, re-base: the cursor may lag the
         earliest pending departure, making the bracket look wider than
         the items it actually holds. *)
      tighten t;
      let lo = if dep < t.cur then dep else t.cur in
      if hi - lo >= t.size then grow_ring t ~lo ~hi;
      t.cur <- lo;
      t.hi <- hi
    end
    else begin
      t.cur <- lo;
      t.hi <- hi;
      if t.size > t.base && 8 * (hi - lo + 1) <= t.size then begin
        (* Tighten first so the shrink lands as low as the pending set
           allows; clamp back to [dep], whose bucket is not linked yet
           and must stay inside the window. *)
        tighten t;
        if dep < t.cur then t.cur <- dep;
        shrink_ring t ~lo:t.cur ~hi
      end
    end
  end;
  if slot >= Array.length t.next then grow_slots t slot;
  t.ids.(slot) <- id;
  t.next.(slot) <- -1;
  let b = dep land (t.size - 1) in
  let tl = Array.unsafe_get t.tail b in
  if tl < 0 then begin
    t.head.(b) <- slot;
    t.tail.(b) <- slot
  end
  else if Array.unsafe_get t.ids tl < id then begin
    (* The streaming fast path: ids arrive in increasing order. *)
    Array.unsafe_set t.next tl slot;
    t.tail.(b) <- slot
  end
  else begin
    (* Out-of-order id (interactive callers): sorted insert. *)
    let hd = t.head.(b) in
    if id < t.ids.(hd) then begin
      t.next.(slot) <- hd;
      t.head.(b) <- slot
    end
    else begin
      let p = ref hd in
      while t.next.(!p) >= 0 && t.ids.(t.next.(!p)) < id do
        p := t.next.(!p)
      done;
      t.next.(slot) <- t.next.(!p);
      t.next.(!p) <- slot;
      if t.next.(slot) < 0 then t.tail.(b) <- slot
    end
  end;
  t.n <- t.n + 1

(* Advance the cursor to the next non-empty bucket, but never beyond
   [upto + 1]: the caller will go on adding departures later than its
   current event tick, and the cursor must stay a lower bound for
   those. The cursor never retreats, so the total scan cost is one
   compare per simulated tick. Termination: either a pending bucket
   (pending items all live in [cur, cur + size)) or the [upto] bound
   stops the walk. *)
let seek_until t upto =
  let mask = t.size - 1 in
  while t.cur <= upto && Array.unsafe_get t.head (t.cur land mask) < 0 do
    t.cur <- t.cur + 1
  done

let pop_due t ~upto =
  if t.n = 0 then -1
  else begin
    seek_until t upto;
    let b = t.cur land (t.size - 1) in
    let slot = Array.unsafe_get t.head b in
    if t.cur > upto || slot < 0 then -1
    else begin
      let nx = Array.unsafe_get t.next slot in
      t.head.(b) <- nx;
      if nx < 0 then t.tail.(b) <- -1;
      t.n <- t.n - 1;
      slot
    end
  end
