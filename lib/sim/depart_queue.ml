(* Calendar queue over item departures, replacing the binary-heap drain.

   The engine's event clock is monotone: every pop is for a tick >= the
   last one, and an item is only added with a departure strictly after
   the current arrival. Under that discipline a heap's O(log n) sift per
   operation buys generality nobody uses — a ring of per-tick buckets
   gives O(1) add and O(1) amortized pop, with the scan over empty
   buckets costing one compare per simulated tick, not per item.

   Each bucket is an intrusive FIFO threaded through [next] (indexed by
   the caller's slot number, as handed to {!add}). The engine must pop
   in (departure, id) order — the total order every queue implementation
   here has honored, pinned by the conformance tests — so an add whose
   id is not larger than the bucket's tail walks the bucket to its
   sorted position. On the streaming path ids are assigned in arrival
   order, so the tail append always wins and the walk never runs; it
   exists for interactive callers that craft ids out of order.

   The ring always spans every pending departure: [cur .. hi] brackets
   the pending ticks ([cur], the scan cursor, is a lower bound; [hi] the
   maximum), and {!add} grows the ring whenever the bracket would reach
   [size] ticks wide. An add below the cursor — an early departure
   arriving after a far-future one — simply lowers the cursor; the scan
   resumes from there. Buckets therefore never alias two ticks, which is
   what lets a grow relink whole buckets without inspecting their
   elements. *)

type t = {
  mutable head : int array;  (** ring: first slot of the tick's bucket, -1 = empty *)
  mutable tail : int array;  (** ring: last slot of the tick's bucket *)
  mutable next : int array;  (** per-slot: next slot in its bucket, -1 = end *)
  mutable ids : int array;  (** per-slot: id, for the (departure, id) order *)
  mutable size : int;  (** ring capacity, a power of two *)
  mutable cur : int;  (** scan cursor; no pending departure is below it *)
  mutable hi : int;  (** maximum pending departure (valid when [n > 0]) *)
  mutable n : int;  (** pending items *)
}

let create ?(capacity = 256) () =
  let size = Dbp_util.Ints.pow2 (Dbp_util.Ints.ceil_log2 (max 16 capacity)) in
  {
    head = Array.make size (-1);
    tail = Array.make size (-1);
    next = Array.make 64 (-1);
    ids = Array.make 64 0;
    size;
    cur = 0;
    hi = 0;
    n = 0;
  }

let length t = t.n

let clear t =
  Array.fill t.head 0 t.size (-1);
  Array.fill t.tail 0 t.size (-1);
  t.n <- 0

(* Double the ring until [lo .. hi] fits within one window. The relink
   enumerates the old window [t.cur, t.cur + size) — which spanned every
   pending tick before this add. Bucket lists survive untouched: a
   bucket holds exactly one tick's items, so its head/tail just move to
   the tick's position in the wider ring. *)
let grow_ring t ~lo ~hi =
  let size' =
    let s = ref t.size in
    while hi - lo >= !s do
      s := 2 * !s
    done;
    !s
  in
  let head' = Array.make size' (-1) and tail' = Array.make size' (-1) in
  let mask = t.size - 1 and mask' = size' - 1 in
  for j = 0 to t.size - 1 do
    let tick = t.cur + j in
    let b = tick land mask in
    if t.head.(b) >= 0 then begin
      head'.(tick land mask') <- t.head.(b);
      tail'.(tick land mask') <- t.tail.(b)
    end
  done;
  t.head <- head';
  t.tail <- tail';
  t.size <- size'

let grow_slots t slot =
  let cap = Array.length t.next in
  let cap' = max (2 * cap) (slot + 1) in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.next <- extend t.next (-1);
  t.ids <- extend t.ids 0

let add t ~dep ~id slot =
  if slot < 0 then invalid_arg "Depart_queue.add: negative slot";
  if t.n = 0 then begin
    t.cur <- dep;
    t.hi <- dep
  end
  else begin
    let lo = if dep < t.cur then dep else t.cur in
    let hi = if dep > t.hi then dep else t.hi in
    if hi - lo >= t.size then grow_ring t ~lo ~hi;
    t.cur <- lo;
    t.hi <- hi
  end;
  if slot >= Array.length t.next then grow_slots t slot;
  t.ids.(slot) <- id;
  t.next.(slot) <- -1;
  let b = dep land (t.size - 1) in
  let tl = Array.unsafe_get t.tail b in
  if tl < 0 then begin
    t.head.(b) <- slot;
    t.tail.(b) <- slot
  end
  else if Array.unsafe_get t.ids tl < id then begin
    (* The streaming fast path: ids arrive in increasing order. *)
    Array.unsafe_set t.next tl slot;
    t.tail.(b) <- slot
  end
  else begin
    (* Out-of-order id (interactive callers): sorted insert. *)
    let hd = t.head.(b) in
    if id < t.ids.(hd) then begin
      t.next.(slot) <- hd;
      t.head.(b) <- slot
    end
    else begin
      let p = ref hd in
      while t.next.(!p) >= 0 && t.ids.(t.next.(!p)) < id do
        p := t.next.(!p)
      done;
      t.next.(slot) <- t.next.(!p);
      t.next.(!p) <- slot;
      if t.next.(slot) < 0 then t.tail.(b) <- slot
    end
  end;
  t.n <- t.n + 1

(* Advance the cursor to the next non-empty bucket, but never beyond
   [upto + 1]: the caller will go on adding departures later than its
   current event tick, and the cursor must stay a lower bound for
   those. The cursor never retreats, so the total scan cost is one
   compare per simulated tick. Termination: either a pending bucket
   (pending items all live in [cur, cur + size)) or the [upto] bound
   stops the walk. *)
let seek_until t upto =
  let mask = t.size - 1 in
  while t.cur <= upto && Array.unsafe_get t.head (t.cur land mask) < 0 do
    t.cur <- t.cur + 1
  done

let pop_due t ~upto =
  if t.n = 0 then -1
  else begin
    seek_until t upto;
    let b = t.cur land (t.size - 1) in
    let slot = Array.unsafe_get t.head b in
    if t.cur > upto || slot < 0 then -1
    else begin
      let nx = Array.unsafe_get t.next slot in
      t.head.(b) <- nx;
      if nx < 0 then t.tail.(b) <- -1;
      t.n <- t.n - 1;
      slot
    end
  end
