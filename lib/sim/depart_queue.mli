(** Calendar queue over pending departures — the engine's event queue.

    A ring of per-tick buckets, each an intrusive FIFO of caller slot
    numbers kept in id order, popped in [(departure, id)] order — the
    same total order as a heap, at O(1) per add and pop instead of a
    cache-bound O(log n) sift. The price is a discipline the simulation
    clock satisfies by construction: pops are monotone in time
    ({!pop_due} with nondecreasing [upto]), and {!add} only ever takes a
    departure after the last pop's [upto] (the engine adds at an item's
    arrival, which events before its departure). Adds that violate the
    discipline are popped late, not detected.

    Memory is O(pending departure span + live slots): the ring spans
    the window from the earliest to the latest pending departure
    (growing by doubling) and is re-based on the pending bracket — the
    cursor is tightened before a grow, and the ring shrinks (with 4x
    hysteresis, never below its creation size) when the concurrent span
    collapses, so a long-lived process with ever-increasing ticks keeps
    the ring at its concurrent-departure scale. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] sizes the initial tick ring (default 256, rounded up to
    a power of two); both the ring and the slot tables grow on
    demand. *)

val length : t -> int
(** Pending items. *)

val add : t -> dep:int -> id:int -> int -> unit
(** [add t ~dep ~id slot] enqueues [slot] to depart at tick [dep].
    [id] orders simultaneous departures ([(dep, id)] lexicographic).
    Ids added in increasing order append in O(1) — the streaming path,
    where ids are assigned in arrival order; an out-of-order id pays a
    walk of its tick's bucket. *)

val pop_due : t -> upto:int -> int
(** The pending slot with the least [(departure, id)] if its departure
    is [<= upto], else [-1]. Successive calls must not decrease [upto]
    below an earlier pop's tick (the clock only moves forward). *)

val ring_size : t -> int
(** Current tick-ring capacity (a power of two). Exposed so tests and
    gauges can assert the ring tracks the concurrent-departure span
    rather than the absolute tick magnitude. *)

val clear : t -> unit
(** Drop every pending departure, reset the window to tick 0, and
    return an oversized ring to its creation size. *)
