open Dbp_instance
open Dbp_util

type result = {
  name : string;
  cost : int;
  bins_opened : int;
  max_open : int;
  series : (int * int) array;
  store : Bin_store.t;
}

let m_runs = Metrics.counter "engine.runs"
let m_arrivals = Metrics.counter "engine.arrivals"
let m_departures = Metrics.counter "engine.departures"
let m_live_items = Metrics.gauge "engine.live_items"
let m_retained_items = Metrics.gauge "engine.retained_items"

module Interactive = struct
  (* Items in flight live in a struct-of-arrays {!Item_block}; the
     departure queue is a heap of block slots ordered by
     [(departure, id)]. That order is total (ids are unique), so the pop
     sequence — and hence every simulation observable — is identical to
     the boxed [Item.t Heap.t] this replaces. *)
  type t = {
    store : Bin_store.t;
    policy : Policy.t;
    block : Item_block.t;
    departures : Item_block.Heap.t;  (** pending slots, by (departure, id) *)
    released : Item.t Vec.t;
    retain_released : bool;
    series : Lttb.t;
    mutable clock : int;
    mutable arrived : int;
    mutable hw_live : int;  (** peak simultaneously active items *)
    mutable hw_retained : int;  (** peak item records held by the core *)
  }

  let start ?(retire = false) ?(retain_released = true) ?max_series factory =
    let store = Bin_store.create ~retire () in
    {
      store;
      policy = factory store;
      block = Item_block.create ();
      departures = Item_block.Heap.create ();
      released = Vec.create ();
      retain_released;
      series = Lttb.create ?cap:max_series ();
      clock = 0;
      arrived = 0;
      hw_live = 0;
      hw_retained = 0;
    }

  let item_block t = t.block

  let record t tick =
    (* One sample per event tick: overwrite the sample if the tick
       repeats (multiple events at one tick). *)
    let value = Bin_store.open_count t.store in
    if (not (Lttb.is_empty t.series)) && Lttb.last_tick t.series = tick then
      Lttb.set_last_s t.series ~tick ~value
    else Lttb.push_s t.series ~tick ~value

  (* Process all departures due at ticks <= [upto]. *)
  let drain_until t upto =
    let blk = t.block in
    let rec loop () =
      if
        Item_block.Heap.length t.departures > 0
        && Item_block.Heap.min_departure t.departures <= upto
      then begin
        let dep = Item_block.Heap.min_departure t.departures in
        let slot = Item_block.Heap.pop t.departures in
        Metrics.incr m_departures;
        if dep > t.clock then t.clock <- dep;
        let bin, closed =
          Bin_store.remove t.store ~now:dep ~item_id:(Item_block.id blk slot)
        in
        t.policy.on_departure ~now:dep (Item_block.item blk slot) ~bin ~closed;
        Item_block.free blk slot;
        record t dep;
        loop ()
      end
    in
    loop ()

  let advance_to t upto =
    if upto < t.clock then invalid_arg "Engine.advance_to: time in the past";
    drain_until t upto;
    t.clock <- upto

  let open_count t = Bin_store.open_count t.store
  let now t = t.clock

  (* The slot must already be allocated in [t.block] (the streaming path
     fills it straight from the source cursor). *)
  let arrive_slot t slot =
    let r = Item_block.item t.block slot in
    if r.arrival < t.clock then begin
      Item_block.free t.block slot;
      invalid_arg "Engine.arrive: arrival in the past"
    end;
    Metrics.incr m_arrivals;
    drain_until t r.arrival;
    t.clock <- r.arrival;
    let bin = t.policy.on_arrival ~now:r.arrival r in
    if Bin_store.bin_of_item t.store r.id <> bin then
      invalid_arg "Engine.arrive: policy returned a bin it did not pack into";
    Item_block.Heap.add t.block t.departures slot;
    t.arrived <- t.arrived + 1;
    if t.retain_released then Vec.push t.released r;
    (* Live = active items (the departure heap); retained additionally
       counts the released log, which is what a full-retention run keeps
       and a streamed run does not. *)
    let live = Item_block.Heap.length t.departures in
    let retained = live + Vec.length t.released in
    (* The gauges keep a max, so publishing only on a new local peak
       leaves their final value unchanged while skipping two metric
       calls on almost every arrival. *)
    if live > t.hw_live then begin
      t.hw_live <- live;
      Metrics.set_max m_live_items live
    end;
    if retained > t.hw_retained then begin
      t.hw_retained <- retained;
      Metrics.set_max m_retained_items retained
    end;
    record t r.arrival;
    bin

  let arrive t (r : Item.t) = arrive_slot t (Item_block.alloc t.block r)

  let items_arrived t = t.arrived
  let peak_live_items t = t.hw_live
  let peak_retained_items t = t.hw_retained

  let finish t =
    drain_until t max_int;
    let result =
      {
        name = t.policy.name;
        cost = Bin_store.closed_usage t.store;
        bins_opened = Bin_store.bins_opened t.store;
        max_open = Bin_store.max_open t.store;
        series = Lttb.to_array t.series;
        store = t.store;
      }
    in
    (result, Instance.of_items (Vec.to_list t.released))
end

let run factory inst =
  Metrics.incr m_runs;
  let t = Interactive.start factory in
  Trace.with_span "engine.run"
    ~args:
      [
        ("algorithm", t.Interactive.policy.Policy.name);
        ("items", string_of_int (Instance.length inst));
      ]
    (fun () ->
      Array.iter (fun r -> ignore (Interactive.arrive t r)) (Instance.items inst);
      let result, _ = Interactive.finish t in
      result)

module Stream = struct
  type stats = {
    result : result;
    items : int;
    peak_live_items : int;
    peak_retained_items : int;
  }

  let m_stream_runs = Metrics.counter "engine.stream.runs"

  let run ?(retire = true) ?max_series factory source =
    Metrics.incr m_stream_runs;
    let t = Interactive.start ~retire ~retain_released:false ?max_series factory in
    Trace.with_span "engine.stream"
      ~args:[ ("algorithm", t.Interactive.policy.Policy.name) ]
      (fun () ->
        (* Cursor consumption: each item is forced straight into the
           engine's item block and addressed by slot from then on. *)
        let cur = Event_source.cursor source in
        let blk = Interactive.item_block t in
        let rec loop () =
          let slot = Event_source.next_into cur blk in
          if slot >= 0 then begin
            ignore (Interactive.arrive_slot t slot);
            loop ()
          end
        in
        loop ();
        let result, _ = Interactive.finish t in
        {
          result;
          items = Interactive.items_arrived t;
          peak_live_items = Interactive.peak_live_items t;
          peak_retained_items = Interactive.peak_retained_items t;
        })
end
