open Dbp_instance
open Dbp_util

type result = {
  name : string;
  cost : int;
  bins_opened : int;
  max_open : int;
  series : (int * int) array;
  store : Bin_store.t;
}

let m_runs = Metrics.counter "engine.runs"
let m_arrivals = Metrics.counter "engine.arrivals"
let m_departures = Metrics.counter "engine.departures"

module Interactive = struct
  type t = {
    store : Bin_store.t;
    policy : Policy.t;
    departures : Item.t Heap.t;  (** pending, ordered by (departure, id) *)
    released : Item.t Vec.t;
    series : (int * int) Vec.t;
    mutable clock : int;
  }

  let cmp_departure (a : Item.t) (b : Item.t) =
    match Int.compare a.departure b.departure with
    | 0 -> Int.compare a.id b.id
    | c -> c

  let start factory =
    let store = Bin_store.create () in
    {
      store;
      policy = factory store;
      departures = Heap.create ~cmp:cmp_departure;
      released = Vec.create ();
      series = Vec.create ();
      clock = 0;
    }

  let record t tick =
    (* One sample per event tick: overwrite the sample if the tick
       repeats (multiple events at one tick). *)
    let n = Vec.length t.series in
    let sample = (tick, Bin_store.open_count t.store) in
    if n > 0 && fst (Vec.last t.series) = tick then Vec.set t.series (n - 1) sample
    else Vec.push t.series sample

  (* Process all departures due at ticks <= [upto]. *)
  let drain_until t upto =
    let rec loop () =
      match Heap.peek t.departures with
      | Some (r : Item.t) when r.departure <= upto ->
          let r = Heap.pop_exn t.departures in
          Metrics.incr m_departures;
          t.clock <- max t.clock r.departure;
          let bin, closed = Bin_store.remove t.store ~now:r.departure ~item_id:r.id in
          t.policy.on_departure ~now:r.departure r ~bin ~closed;
          record t r.departure;
          loop ()
      | _ -> ()
    in
    loop ()

  let advance_to t upto =
    if upto < t.clock then invalid_arg "Engine.advance_to: time in the past";
    drain_until t upto;
    t.clock <- upto

  let open_count t = Bin_store.open_count t.store
  let now t = t.clock

  let arrive t (r : Item.t) =
    if r.arrival < t.clock then invalid_arg "Engine.arrive: arrival in the past";
    Metrics.incr m_arrivals;
    drain_until t r.arrival;
    t.clock <- r.arrival;
    let bin = t.policy.on_arrival ~now:r.arrival r in
    if Bin_store.bin_of_item t.store r.id <> bin then
      invalid_arg "Engine.arrive: policy returned a bin it did not pack into";
    Heap.add t.departures r;
    Vec.push t.released r;
    record t r.arrival;
    bin

  let finish t =
    drain_until t max_int;
    let result =
      {
        name = t.policy.name;
        cost = Bin_store.closed_usage t.store;
        bins_opened = Bin_store.bins_opened t.store;
        max_open = Bin_store.max_open t.store;
        series = Vec.to_array t.series;
        store = t.store;
      }
    in
    (result, Instance.of_items (Vec.to_list t.released))
end

let run factory inst =
  Metrics.incr m_runs;
  let t = Interactive.start factory in
  Trace.with_span "engine.run"
    ~args:
      [
        ("algorithm", t.Interactive.policy.Policy.name);
        ("items", string_of_int (Instance.length inst));
      ]
    (fun () ->
      Array.iter (fun r -> ignore (Interactive.arrive t r)) (Instance.items inst);
      let result, _ = Interactive.finish t in
      result)
