open Dbp_instance
open Dbp_util

type result = {
  name : string;
  cost : int;
  bins_opened : int;
  max_open : int;
  moves : int;
  moved_units : int;
  series : (int * int) array;
  store : Bin_store.t;
}

let m_runs = Metrics.counter "engine.runs"
let m_arrivals = Metrics.counter "engine.arrivals"
let m_departures = Metrics.counter "engine.departures"
let m_live_items = Metrics.gauge "engine.live_items"
let m_retained_items = Metrics.gauge "engine.retained_items"

module Interactive = struct
  (* Items in flight live in a struct-of-arrays {!Item_block}; the
     departure queue is a calendar of block slots ordered by
     [(departure, id)]. That order is total (ids are unique), so the pop
     sequence — and hence every simulation observable — is identical to
     the heaps this replaces. *)
  type t = {
    store : Bin_store.t;
    policy : Policy.t;
    block : Item_block.t;
    mutable slot_bin : int array;  (** bin holding each live arena slot *)
    departures : Depart_queue.t;  (** pending slots, by (departure, id) *)
    released : Item.t Vec.t;
    retain_released : bool;
    series : Lttb.t;
    mutable clock : int;
    mutable arrived : int;
    mutable hw_live : int;  (** peak simultaneously active items *)
    mutable hw_retained : int;  (** peak item records held by the core *)
    mutable rec_tick : int;  (** tick of the pending series sample; [min_int] = none *)
    mutable rec_value : int;  (** open-bin count at the last event of [rec_tick] *)
    mutable pend_departures : int;  (** departures not yet published to metrics *)
    mutable pub_arrivals : int;  (** prefix of [arrived] already published *)
  }

  let start ?(retire = false) ?track_items ?(retain_released = true) ?max_series
      ?(dims = 1) factory =
    (* The engine remembers each item's bin itself (see [slot_bin]), so
       a streaming store can drop the per-item packing map; a retained
       store keeps it — the full-fidelity record reports query. *)
    let track_items =
      match track_items with Some b -> b | None -> not retire
    in
    let store = Bin_store.create ~retire ~track_items ~dims () in
    {
      store;
      policy = factory store;
      block = Item_block.create ();
      slot_bin = Array.make 64 (-1);
      departures = Depart_queue.create ();
      released = Vec.create ();
      retain_released;
      series = Lttb.create ?cap:max_series ();
      clock = 0;
      arrived = 0;
      hw_live = 0;
      hw_retained = 0;
      rec_tick = min_int;
      rec_value = 0;
      pend_departures = 0;
      pub_arrivals = 0;
    }

  let item_block t = t.block

  (* One sample per event tick: the open-bin count after the tick's last
     event. The sample is held pending and pushed to the series only
     when the tick changes (or at {!finish}), so repeated events at one
     tick cost an int compare and two stores instead of an LTTB
     overwrite each — the series that comes out is identical. *)
  let record t tick =
    if tick <> t.rec_tick then begin
      if t.rec_tick <> min_int then
        Lttb.push_s t.series ~tick:t.rec_tick ~value:t.rec_value;
      t.rec_tick <- tick
    end;
    t.rec_value <- Bin_store.open_count t.store

  (* Metric traffic is batched: the departure counter accumulates in a
     plain field (flushed at {!flush_metrics}), and the live/retained
     gauges — max-merged anyway — are published once from the local
     high-water marks. Every published value is identical to the
     per-event publication this replaces; only the call count drops. *)
  let flush_metrics t =
    if t.pend_departures > 0 then begin
      Metrics.add m_departures t.pend_departures;
      t.pend_departures <- 0
    end;
    if t.arrived > t.pub_arrivals then begin
      Metrics.add m_arrivals (t.arrived - t.pub_arrivals);
      t.pub_arrivals <- t.arrived
    end;
    Metrics.set_max m_live_items t.hw_live;
    Metrics.set_max m_retained_items t.hw_retained

  (* Process all departures due at ticks <= [upto]. *)
  let drain_until t upto =
    let blk = t.block in
    let rec loop () =
      let slot = Depart_queue.pop_due t.departures ~upto in
      if slot >= 0 then begin
        let r = Item_block.item blk slot in
        let dep = r.Item.departure in
        t.pend_departures <- t.pend_departures + 1;
        if dep > t.clock then t.clock <- dep;
        (* [slot_bin] caches the arrival placement; once any move has
           happened it can be stale, so the (slower, id-keyed) tracked
           removal resolves the item's current bin instead. Move-free
           runs — every k = 0 path — never take that branch. *)
        let bin, closed =
          if Bin_store.move_count t.store = 0 then begin
            let bin = Array.unsafe_get t.slot_bin slot in
            ( bin,
              Bin_store.remove_at ~extra:r.extra t.store ~now:dep ~item_id:r.id
                ~bin
                ~units:(Load.to_units r.size) )
          end
          else Bin_store.remove t.store ~now:dep ~item_id:r.id
        in
        t.policy.on_departure ~now:dep r ~bin ~closed;
        Item_block.free blk slot;
        record t dep;
        loop ()
      end
    in
    loop ()

  let advance_to t upto =
    if upto < t.clock then invalid_arg "Engine.advance_to: time in the past";
    drain_until t upto;
    t.clock <- upto

  let open_count t = Bin_store.open_count t.store
  let now t = t.clock

  (* The slot must already be allocated in [t.block] (the streaming path
     fills it straight from the source cursor). *)
  let arrive_slot t slot =
    let r = Item_block.item t.block slot in
    if r.arrival < t.clock then begin
      Item_block.free t.block slot;
      invalid_arg "Engine.arrive: arrival in the past"
    end;
    drain_until t r.arrival;
    t.clock <- r.arrival;
    let bin = t.policy.on_arrival ~now:r.arrival r in
    if not (Bin_store.last_inserted_into t.store ~item_id:r.id ~bin) then
      invalid_arg "Engine.arrive: policy returned a bin it did not pack into";
    if slot >= Array.length t.slot_bin then begin
      let a = Array.make (max (2 * Array.length t.slot_bin) (slot + 1)) (-1) in
      Array.blit t.slot_bin 0 a 0 (Array.length t.slot_bin);
      t.slot_bin <- a
    end;
    Array.unsafe_set t.slot_bin slot bin;
    Depart_queue.add t.departures ~dep:r.departure ~id:r.id slot;
    t.arrived <- t.arrived + 1;
    if t.retain_released then Vec.push t.released r;
    (* Live = active items (the departure heap); retained additionally
       counts the released log, which is what a full-retention run keeps
       and a streamed run does not. The high-water marks are plain
       fields here; {!flush_metrics} publishes them. *)
    let live = Depart_queue.length t.departures in
    let retained = live + Vec.length t.released in
    if live > t.hw_live then t.hw_live <- live;
    if retained > t.hw_retained then t.hw_retained <- retained;
    record t r.arrival;
    bin

  let arrive t (r : Item.t) = arrive_slot t (Item_block.alloc t.block r)

  let items_arrived t = t.arrived
  let peak_live_items t = t.hw_live
  let peak_retained_items t = t.hw_retained
  let store t = t.store

  (* --- snapshot codec ---

     A snapshot is everything needed to continue the event sequence
     with bit-identical observables in another process: the store
     (which carries bins, the free list, and every aggregate), the live
     items with their bins, the series buffer, and the engine scalars.
     Live items are written ordered by [(departure, id)] — the one
     order with meaning here — and re-allocated densely in that order
     on restore: arena slot numbers are private to the process (every
     tie-break that matters reads ids, never slots), so renumbering is
     unobservable.

     The policy is *not* serialized here; the caller owns it (it knows
     the policy's concrete state — e.g. a {!Fit_group} snapshot) and
     rebuilds it via the factory passed to {!of_snapshot}, which runs
     against the already-restored store. *)

  let snapshot t =
    if t.retain_released then
      invalid_arg
        "Engine.Interactive.snapshot: retained-instance engines are not \
         snapshottable (start with ~retain_released:false)";
    if Bin_store.move_count t.store > 0 then
      invalid_arg
        "Engine.Interactive.snapshot: engines that performed migrations are \
         not snapshottable";
    flush_metrics t;
    let blk = t.block in
    let live = ref [] in
    Item_block.iter_live
      (fun slot ->
        let r = Item_block.item blk slot in
        live := (r, Array.unsafe_get t.slot_bin slot) :: !live)
      blk;
    let live =
      List.sort
        (fun ((a : Item.t), _) ((b : Item.t), _) ->
          compare (a.departure, a.id) (b.departure, b.id))
        !live
    in
    let item_row ((r : Item.t), bin) =
      Json.List
        (Json.Int r.id :: Json.Int r.arrival :: Json.Int r.departure
        :: Json.Int (Load.to_units r.size)
        :: (Array.to_list (Array.map (fun u -> Json.Int u) r.extra)
           @ [ Json.Int bin ]))
    in
    Json.Obj
      [
        ("clock", Json.Int t.clock);
        ("arrived", Json.Int t.arrived);
        ("hw_live", Json.Int t.hw_live);
        ("hw_retained", Json.Int t.hw_retained);
        ("rec_tick", Json.Int t.rec_tick);
        ("rec_value", Json.Int t.rec_value);
        ("store", Bin_store.to_json t.store);
        ("items", Json.List (List.map item_row live));
        ("series", Lttb.to_json t.series);
      ]

  let of_snapshot factory j =
    let fail msg = failwith ("Engine.of_snapshot: " ^ msg) in
    let field name =
      match Json.member name j with
      | Some v -> v
      | None -> fail ("missing " ^ name)
    in
    let int name =
      match field name with Json.Int i -> i | _ -> fail (name ^ ": expected int")
    in
    let store = Bin_store.of_json (field "store") in
    let arrived = int "arrived" in
    let t =
      {
        store;
        policy = factory store;
        block = Item_block.create ();
        slot_bin = Array.make 64 (-1);
        departures = Depart_queue.create ();
        released = Vec.create ();
        retain_released = false;
        series = Lttb.of_json (field "series");
        clock = int "clock";
        arrived;
        hw_live = int "hw_live";
        hw_retained = int "hw_retained";
        rec_tick = int "rec_tick";
        rec_value = int "rec_value";
        pend_departures = 0;
        (* The snapshot was taken after a metrics flush; the restored
           process publishes only what happens from here on. *)
        pub_arrivals = arrived;
      }
    in
    (match field "items" with
    | Json.List rows ->
        List.iter
          (fun row ->
            let ints =
              match row with
              | Json.List l ->
                  List.map
                    (function Json.Int i -> i | _ -> fail "items: expected int")
                    l
              | _ -> fail "items: expected row list"
            in
            match ints with
            | id :: arrival :: departure :: size_units :: rest ->
                let rec split acc = function
                  | [ bin ] -> (Array.of_list (List.rev acc), bin)
                  | u :: rest -> split (u :: acc) rest
                  | [] -> fail "items: row missing bin"
                in
                let extra, bin = split [] rest in
                if not (Bin_store.is_open store bin) then
                  fail
                    (Printf.sprintf "item %d placed in bin %d, which is not open"
                       id bin);
                let r =
                  try
                    Item.make_vec ~extra ~id ~arrival ~departure
                      ~size:(Load.of_units size_units)
                  with Invalid_argument msg -> fail msg
                in
                let slot = Item_block.alloc t.block r in
                if slot >= Array.length t.slot_bin then begin
                  let a =
                    Array.make (max (2 * Array.length t.slot_bin) (slot + 1)) (-1)
                  in
                  Array.blit t.slot_bin 0 a 0 (Array.length t.slot_bin);
                  t.slot_bin <- a
                end;
                t.slot_bin.(slot) <- bin;
                Depart_queue.add t.departures ~dep:departure ~id slot
            | _ -> fail "items: short row")
          rows
    | _ -> fail "items: expected list");
    t

  let finish t =
    drain_until t max_int;
    if t.rec_tick <> min_int then begin
      Lttb.push_s t.series ~tick:t.rec_tick ~value:t.rec_value;
      t.rec_tick <- min_int
    end;
    flush_metrics t;
    let result =
      {
        name = t.policy.name;
        cost = Bin_store.closed_usage t.store;
        bins_opened = Bin_store.bins_opened t.store;
        max_open = Bin_store.max_open t.store;
        moves = Bin_store.move_count t.store;
        moved_units = Bin_store.moved_units t.store;
        series = Lttb.to_array t.series;
        store = t.store;
      }
    in
    (result, Instance.of_items (Vec.to_list t.released))
end

let run factory inst =
  Metrics.incr m_runs;
  let t = Interactive.start ~dims:(Instance.dims inst) factory in
  Trace.with_span "engine.run"
    ~args:
      [
        ("algorithm", t.Interactive.policy.Policy.name);
        ("items", string_of_int (Instance.length inst));
      ]
    (fun () ->
      Array.iter (fun r -> ignore (Interactive.arrive t r)) (Instance.items inst);
      let result, _ = Interactive.finish t in
      result)

module Stream = struct
  type stats = {
    result : result;
    items : int;
    peak_live_items : int;
    peak_retained_items : int;
  }

  let m_stream_runs = Metrics.counter "engine.stream.runs"
  let default_chunk_size = 256

  let run_chunks ?(retire = true) ?track_items ?max_series
      ?(chunk_size = default_chunk_size) ?(dims = 1) factory chunk =
    if chunk_size < 1 then invalid_arg "Engine.Stream.run_chunks: chunk_size < 1";
    Metrics.incr m_stream_runs;
    let t =
      Interactive.start ~retire ?track_items ~retain_released:false ?max_series
        ~dims factory
    in
    Trace.with_span "engine.stream"
      ~args:[ ("algorithm", t.Interactive.policy.Policy.name) ]
      (fun () ->
        (* Batch consumption: the emitter deposits up to [chunk_size]
           items straight into the engine's arena per call, and the
           drain loop walks the slot buffer — the source boundary is
           crossed once per chunk, not once per item. Event order (all
           due departures before each arrival) is untouched: it is
           enforced per slot inside [arrive_slot]. *)
        let blk = Interactive.item_block t in
        let slots = Array.make chunk_size (-1) in
        let rec loop () =
          let n = Event_source.Chunk.next_chunk chunk blk slots in
          if n > 0 then begin
            for i = 0 to n - 1 do
              ignore (Interactive.arrive_slot t slots.(i))
            done;
            loop ()
          end
        in
        loop ();
        let result, _ = Interactive.finish t in
        {
          result;
          items = Interactive.items_arrived t;
          peak_live_items = Interactive.peak_live_items t;
          peak_retained_items = Interactive.peak_retained_items t;
        })

  (* The Seq path is the chunked path behind the [of_seq] shim, so both
     entry points exercise one drain loop (and the conformance tests
     pin them against each other). *)
  let run ?retire ?track_items ?max_series ?dims factory source =
    run_chunks ?retire ?track_items ?max_series ?dims factory
      (Event_source.Chunk.of_seq source)
end
