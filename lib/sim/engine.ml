open Dbp_instance
open Dbp_util

type result = {
  name : string;
  cost : int;
  bins_opened : int;
  max_open : int;
  series : (int * int) array;
  store : Bin_store.t;
}

let m_runs = Metrics.counter "engine.runs"
let m_arrivals = Metrics.counter "engine.arrivals"
let m_departures = Metrics.counter "engine.departures"
let m_live_items = Metrics.gauge "engine.live_items"
let m_retained_items = Metrics.gauge "engine.retained_items"

module Interactive = struct
  type t = {
    store : Bin_store.t;
    policy : Policy.t;
    departures : Item.t Heap.t;  (** pending, ordered by (departure, id) *)
    released : Item.t Vec.t;
    retain_released : bool;
    series : Lttb.t;
    mutable clock : int;
    mutable arrived : int;
    mutable hw_live : int;  (** peak simultaneously active items *)
    mutable hw_retained : int;  (** peak item records held by the core *)
  }

  let cmp_departure (a : Item.t) (b : Item.t) =
    match Int.compare a.departure b.departure with
    | 0 -> Int.compare a.id b.id
    | c -> c

  let start ?(retire = false) ?(retain_released = true) ?max_series factory =
    let store = Bin_store.create ~retire () in
    {
      store;
      policy = factory store;
      departures = Heap.create ~cmp:cmp_departure;
      released = Vec.create ();
      retain_released;
      series = Lttb.create ?cap:max_series ();
      clock = 0;
      arrived = 0;
      hw_live = 0;
      hw_retained = 0;
    }

  let record t tick =
    (* One sample per event tick: overwrite the sample if the tick
       repeats (multiple events at one tick). *)
    let sample = (tick, Bin_store.open_count t.store) in
    if (not (Lttb.is_empty t.series)) && fst (Lttb.last t.series) = tick then
      Lttb.set_last t.series sample
    else Lttb.push t.series sample

  (* Process all departures due at ticks <= [upto]. *)
  let drain_until t upto =
    let rec loop () =
      match Heap.peek t.departures with
      | Some (r : Item.t) when r.departure <= upto ->
          let r = Heap.pop_exn t.departures in
          Metrics.incr m_departures;
          t.clock <- max t.clock r.departure;
          let bin, closed = Bin_store.remove t.store ~now:r.departure ~item_id:r.id in
          t.policy.on_departure ~now:r.departure r ~bin ~closed;
          record t r.departure;
          loop ()
      | _ -> ()
    in
    loop ()

  let advance_to t upto =
    if upto < t.clock then invalid_arg "Engine.advance_to: time in the past";
    drain_until t upto;
    t.clock <- upto

  let open_count t = Bin_store.open_count t.store
  let now t = t.clock

  let arrive t (r : Item.t) =
    if r.arrival < t.clock then invalid_arg "Engine.arrive: arrival in the past";
    Metrics.incr m_arrivals;
    drain_until t r.arrival;
    t.clock <- r.arrival;
    let bin = t.policy.on_arrival ~now:r.arrival r in
    if Bin_store.bin_of_item t.store r.id <> bin then
      invalid_arg "Engine.arrive: policy returned a bin it did not pack into";
    Heap.add t.departures r;
    t.arrived <- t.arrived + 1;
    if t.retain_released then Vec.push t.released r;
    (* Live = active items (the departure heap); retained additionally
       counts the released log, which is what a full-retention run keeps
       and a streamed run does not. *)
    let live = Heap.length t.departures in
    let retained = live + Vec.length t.released in
    if live > t.hw_live then t.hw_live <- live;
    if retained > t.hw_retained then t.hw_retained <- retained;
    Metrics.set_max m_live_items live;
    Metrics.set_max m_retained_items retained;
    record t r.arrival;
    bin

  let items_arrived t = t.arrived
  let peak_live_items t = t.hw_live
  let peak_retained_items t = t.hw_retained

  let finish t =
    drain_until t max_int;
    let result =
      {
        name = t.policy.name;
        cost = Bin_store.closed_usage t.store;
        bins_opened = Bin_store.bins_opened t.store;
        max_open = Bin_store.max_open t.store;
        series = Lttb.to_array t.series;
        store = t.store;
      }
    in
    (result, Instance.of_items (Vec.to_list t.released))
end

let run factory inst =
  Metrics.incr m_runs;
  let t = Interactive.start factory in
  Trace.with_span "engine.run"
    ~args:
      [
        ("algorithm", t.Interactive.policy.Policy.name);
        ("items", string_of_int (Instance.length inst));
      ]
    (fun () ->
      Array.iter (fun r -> ignore (Interactive.arrive t r)) (Instance.items inst);
      let result, _ = Interactive.finish t in
      result)

module Stream = struct
  type stats = {
    result : result;
    items : int;
    peak_live_items : int;
    peak_retained_items : int;
  }

  let m_stream_runs = Metrics.counter "engine.stream.runs"

  let run ?(retire = true) ?max_series factory source =
    Metrics.incr m_stream_runs;
    let t = Interactive.start ~retire ~retain_released:false ?max_series factory in
    Trace.with_span "engine.stream"
      ~args:[ ("algorithm", t.Interactive.policy.Policy.name) ]
      (fun () ->
        Seq.iter (fun r -> ignore (Interactive.arrive t r)) source;
        let result, _ = Interactive.finish t in
        {
          result;
          items = Interactive.items_arrived t;
          peak_live_items = Interactive.peak_live_items t;
          peak_retained_items = Interactive.peak_retained_items t;
        })
end
