(** Discrete-event execution of an online algorithm.

    Three entry points share the event core (at each tick, all due
    departures are processed before any arrival): {!run} replays a fixed
    {!Dbp_instance.Instance.t}; {!Stream.run} consumes a lazy
    {!Dbp_instance.Event_source.t} in O(max concurrent items) memory;
    and the {!Interactive} interface lets an *adaptive adversary*
    release items one at a time while observing the algorithm's open-bin
    count (Theorem 4.3's lower-bound construction needs this). *)

open Dbp_instance

type result = {
  name : string;  (** algorithm name *)
  cost : int;  (** MinUsageTime objective, in bin x ticks *)
  bins_opened : int;
  max_open : int;  (** peak simultaneously-open bins *)
  moves : int;
      (** recourse relocations executed through {!Bin_store.move} — 0
          for every unwrapped (zero-recourse) policy *)
  moved_units : int;  (** dimension-0 load units carried by those moves *)
  series : (int * int) array;
      (** (tick, open bins after all events of that tick), at every event
          tick, in time order — or an LTTB-decimated subsequence of that
          series when the run was started with [max_series] *)
  store : Bin_store.t;  (** post-run store, for traces and figures *)
}

val run : Policy.factory -> Instance.t -> result
(** Simulate the full instance. Raises whatever the policy raises;
    [Invalid_argument] if the policy returns a bin the item was not
    inserted into. The store's dimensionality follows the instance's
    ({!Instance.dims}). *)

module Interactive : sig
  type t

  val start :
    ?retire:bool ->
    ?track_items:bool ->
    ?retain_released:bool ->
    ?max_series:int ->
    ?dims:int ->
    Policy.factory ->
    t
  (** Defaults reproduce the historical behavior: a full-retention
      {!Bin_store} ([retire:false]), every released item kept
      ([retain_released:true] — {!finish} needs it to rebuild the
      instance), and an exact, unbounded series. [max_series] (>= 3)
      bounds the series buffer by LTTB decimation instead.
      [track_items] sets the store's per-item packing map (see
      {!Bin_store.create}); it defaults to [not retire] — the engine
      remembers each item's bin itself, so a streaming store skips the
      map's per-item hash traffic. Observables are identical either
      way. [dims] (default 1) is the store's resource dimensionality;
      released items must match it. *)

  val arrive : t -> Item.t -> Bin_store.bin_id
  (** Release one item. Its arrival must be >= the latest event time so
      far; due departures are processed first. *)

  val item_block : t -> Dbp_instance.Item_block.t
  (** The arena holding the items in flight. Streaming callers fill
      slots here (via {!Event_source.next_into}) and hand them to
      {!arrive_slot}; the engine frees each slot when its item
      departs. *)

  val arrive_slot : t -> int -> Bin_store.bin_id
  (** {!arrive}, taking an already-allocated slot of {!item_block}
      instead of a boxed item. Ownership of the slot passes to the
      engine (it is freed on departure, or immediately if the arrival
      is rejected as being in the past). *)

  val advance_to : t -> int -> unit
  (** Process all departures due at ticks <= the given tick (the [t^-]
      state) without releasing anything. Adversaries must call this
      before observing {!open_count} at a new tick — otherwise they see
      stale bins that have already emptied. *)

  val open_count : t -> int
  (** The adversary's observable: currently open bins. *)

  val now : t -> int
  (** Latest event tick processed. *)

  val items_arrived : t -> int

  val peak_live_items : t -> int
  (** High-water mark of simultaneously active items (the departure
      heap). *)

  val peak_retained_items : t -> int
  (** High-water mark of item records the core held: active items plus
      the released log. With [retain_released:false] this equals
      {!peak_live_items} — the streamed-memory contract the
      [scripts/check.sh] gate asserts. *)

  val finish : t -> result * Instance.t
  (** Drain the remaining departures; returns the run result and the
      instance that was released (for offline OPT evaluation — empty
      when started with [retain_released:false]). *)

  val store : t -> Bin_store.t
  (** The engine's bin store (live aggregates: open bins, closed usage —
      the serve daemon's stats read them without finishing the run). *)

  val snapshot : t -> Dbp_util.Json.t
  (** Serialize the full engine state — store (bins, free list,
      aggregates), live items with their bins ordered by
      [(departure, id)], series buffer, clock and counters — such that
      {!of_snapshot} in a fresh process continues with bit-identical
      observables. The policy's own state is the caller's to serialize
      alongside. Raises [Invalid_argument] on an engine started with
      [retain_released:true] (the released log is unbounded) or one
      that performed migrations (the snapshot encodes arrival
      placements only). *)

  val of_snapshot : Policy.factory -> Dbp_util.Json.t -> t
  (** Rebuild an engine from {!snapshot} output. The factory is applied
      to the {e restored} store — the caller's chance to rebuild the
      policy's state against the restored bins (e.g.
      {!Fit_group.of_json}). Live items are re-allocated densely in
      [(departure, id)] order; arena slot numbers differ from the
      snapshotting process but are unobservable. Raises [Failure] on
      malformed input. *)
end

(** Constant-memory streaming execution over a lazy event source. *)
module Stream : sig
  type stats = {
    result : result;
    items : int;  (** items consumed from the source *)
    peak_live_items : int;
    peak_retained_items : int;
  }

  val run :
    ?retire:bool ->
    ?track_items:bool ->
    ?max_series:int ->
    ?dims:int ->
    Policy.factory ->
    Event_source.t ->
    stats
  (** Run the policy over the source without retaining released items.
      [retire] (default [true]) runs the {!Bin_store} in retire/compact
      mode — closed bins fold into aggregates and are dropped; pass
      [~retire:false] when the post-run [result.store] must keep full
      per-bin history for reports or validators. [track_items] (default
      [not retire], see {!Interactive.start}) must be forced [true] for
      a {!Recourse}-wrapped policy: relocation resolves items through
      the store's packing map. Memory stays O(live items). [max_series]
      (default unbounded) caps the recorded series via LTTB
      decimation.

      [result.cost], [result.bins_opened] and [result.max_open] are
      bit-identical to {!run} on [Event_source.to_instance source]: the
      source's order {e is} the replay order. (Implemented as
      {!run_chunks} over {!Event_source.Chunk.of_seq}.) *)

  val default_chunk_size : int
  (** Default batch size for {!run_chunks} (256). *)

  val run_chunks :
    ?retire:bool ->
    ?track_items:bool ->
    ?max_series:int ->
    ?chunk_size:int ->
    ?dims:int ->
    Policy.factory ->
    Event_source.Chunk.t ->
    stats
  (** {!run} over a batched emitter: up to [chunk_size] (default 256,
      >= 1) items are deposited into the engine's arena per emitter
      call before the drain loop walks them, so the source boundary is
      paid per chunk rather than per item. Every observable — cost,
      bins opened, max open, series, peaks — is bit-identical to
      {!run} on the equivalent Seq source: chunking batches {e
      allocation}, never event order. The emitter is consumed (native
      emitters are single-pass). *)
end
