open Dbp_util

type t = {
  mutable cap : int;  (** leaf count, a power of two (>= 1) *)
  mutable tree : int array;  (** 1-based heap layout; tree.(1) is the root *)
  mutable base : int;  (** public slot number of leaf 0 *)
  mutable n : int;  (** public slots ever pushed *)
}

let inactive = -1

(* Structural invariants all the unsafe accesses below rely on:
   [Array.length tree = 2 * cap] with [cap] a power of two >= 1, leaves
   at indices [cap, 2*cap), internal nodes at [1, cap) (none when
   cap = 1, where tree.(1) is the lone leaf and the root at once).
   Every internal node i therefore has both children 2i and 2i+1 in
   bounds — no per-step child guard is needed.

   Public slot [s] lives at leaf [s - base]; slots below [base] were
   compacted away while inactive and stay retired forever. Leaves in
   [n - base, cap) were never pushed and hold [inactive], as do
   deactivated leaves — so the leaf window tracks the span between the
   oldest still-active slot and the newest, not the slots ever pushed.
   A group that opens and closes bins at a steady rate keeps a small,
   cache-resident tree for the whole run instead of growing one leaf
   per bin ever opened. *)
let create ?(initial_cap = 8) () =
  if initial_cap < 1 then invalid_arg "Ff_index.create: initial_cap < 1";
  let cap = Ints.pow2 (Ints.ceil_log2 initial_cap) in
  { cap; tree = Array.make (2 * cap) inactive; base = 0; n = 0 }

(* Recompute ancestors after a leaf write, stopping as soon as a node's
   value is unchanged (its ancestors then cannot change either). Called
   with the leaf's parent, which is 0 exactly when cap = 1 — the leaf is
   the root and there is nothing to do. An earlier version guarded each
   child read with [2*i < 2*cap], a condition that is vacuously true for
   every internal node and silently skipped the whole update at the
   degenerate cap = 1 geometry instead of never being called there. *)
let rec update_path t i =
  if i >= 1 then begin
    let tree = t.tree in
    (* An explicit int comparison: [Stdlib.max] is polymorphic and
       costs a C call per node on this per-placement path. *)
    let l = Array.unsafe_get tree (2 * i)
    and r = Array.unsafe_get tree ((2 * i) + 1) in
    let v = if l >= r then l else r in
    if Array.unsafe_get tree i <> v then begin
      Array.unsafe_set tree i v;
      update_path t (i / 2)
    end
  end

let rebuild_internal tree cap =
  for i = cap - 1 downto 1 do
    let l = tree.(2 * i) and r = tree.((2 * i) + 1) in
    tree.(i) <- (if l >= r then l else r)
  done

let grow t =
  let cap' = 2 * t.cap in
  let tree' = Array.make (2 * cap') inactive in
  (* Copy leaves, then rebuild internal nodes bottom-up. *)
  Array.blit t.tree t.cap tree' cap' t.cap;
  rebuild_internal tree' cap';
  t.cap <- cap';
  t.tree <- tree'

(* Slide the leaf window left by half a tree: legal when every leaf of
   the left half is inactive (tree.(2), the root's left child, spans
   exactly those leaves). Public slot numbers are unchanged — only their
   leaf positions move — so the leftmost-fit order is untouched. *)
let slide t =
  let cap = t.cap in
  let half = cap / 2 in
  Array.blit t.tree (cap + half) t.tree cap half;
  Array.fill t.tree (cap + half) half inactive;
  rebuild_internal t.tree cap;
  t.base <- t.base + half

let push t ~residual =
  if t.n - t.base = t.cap then begin
    if t.cap >= 2 && t.tree.(2) = inactive then slide t else grow t
  end;
  let slot = t.n in
  t.n <- t.n + 1;
  let i = t.cap + (slot - t.base) in
  t.tree.(i) <- residual;
  update_path t (i / 2);
  slot

let check t slot op =
  if slot < 0 || slot >= t.n then invalid_arg ("Ff_index." ^ op ^ ": bad slot");
  if slot < t.base then
    invalid_arg ("Ff_index." ^ op ^ ": slot compacted away (was inactive)")

let set_leaf t slot v =
  let i = t.cap + (slot - t.base) in
  t.tree.(i) <- v;
  update_path t (i / 2)

let set t slot residual =
  check t slot "set";
  set_leaf t slot residual

let deactivate t slot =
  check t slot "deactivate";
  set_leaf t slot inactive

let residual t slot =
  check t slot "residual";
  t.tree.(t.cap + (slot - t.base))

let length t = t.n
let compacted_below t = t.base

(* The -1 sentinel spelling of the query, for the per-item path: no
   option cell. If the root admits [need], the left-first descent lands
   on the leftmost adequate leaf; that leaf is necessarily a pushed,
   active slot — unpushed and deactivated leaves hold -1 < need (need is
   >= 0), so they can never terminate the descent. *)
let first_fit_idx t need =
  if need < 0 then invalid_arg "Ff_index.first_fit_idx: negative need";
  let tree = t.tree and cap = t.cap in
  if Array.unsafe_get tree 1 < need then -1
  else begin
    let i = ref 1 in
    while !i < cap do
      let l = 2 * !i in
      i := if Array.unsafe_get tree l >= need then l else l + 1
    done;
    !i - cap + t.base
  end

let first_fit t need =
  match first_fit_idx t need with -1 -> None | slot -> Some slot

(* Allocation-free left-to-right fold over active slots; Best/Worst-Fit
   scan through this instead of materializing [active]. Bounded by the
   leaf window, not by slots ever pushed. *)
let fold_active t ~init ~f =
  let tree = t.tree and cap = t.cap and base = t.base in
  let acc = ref init in
  for leaf = 0 to t.n - base - 1 do
    let r = Array.unsafe_get tree (cap + leaf) in
    if r >= 0 then acc := f !acc (base + leaf) r
  done;
  !acc

let active t = List.rev (fold_active t ~init:[] ~f:(fun acc slot _ -> slot :: acc))
