open Dbp_util

type t = {
  mutable cap : int;  (** leaf count, a power of four (>= 4) *)
  mutable off : int;  (** internal node count [(cap - 1) / 3]; leaf 0's index *)
  mutable tree : int array;  (** 4-ary Eytzinger layout, root at 0 *)
  mutable base : int;  (** public slot number of leaf 0 *)
  mutable n : int;  (** public slots ever pushed *)
}

let inactive = -1

(* Structural invariants all the unsafe accesses below rely on: the tree
   is a complete 4-ary max-tree in Eytzinger layout — root at index 0,
   children of node [i] at [4i+1 .. 4i+4], parent at [(i-1)/4]. With
   [cap] leaves ([cap] a power of four >= 4) the internal nodes occupy
   [0, off) where [off = (cap-1)/3], the leaves [off, off+cap); every
   internal node has all four children in bounds, so no per-step child
   guard is needed. The 4-ary shape is for the two per-item walks: half
   the levels of a binary tree, and the four children of a node sit in
   adjacent words — one cache line per level on the descent and the
   update ascent alike.

   Public slot [s] lives at leaf [s - base]; slots below [base] were
   compacted away while inactive and stay retired forever. Leaves in
   [n - base, cap) were never pushed and hold [inactive], as do
   deactivated leaves — so the leaf window tracks the span between the
   oldest still-active slot and the newest, not the slots ever pushed.
   A group that opens and closes bins at a steady rate keeps a small,
   cache-resident tree for the whole run instead of growing one leaf
   per bin ever opened. *)
let create ?(initial_cap = 8) () =
  if initial_cap < 1 then invalid_arg "Ff_index.create: initial_cap < 1";
  let l = Ints.ceil_log2 (max 4 initial_cap) in
  let l = if l land 1 = 1 then l + 1 else l in
  let cap = Ints.pow2 l in
  let off = (cap - 1) / 3 in
  { cap; off; tree = Array.make (off + cap) inactive; base = 0; n = 0 }

(* Recompute ancestors after a leaf write, stopping as soon as a node's
   value is unchanged (its ancestors then cannot change either).
   Explicit int comparisons: [Stdlib.max] is polymorphic and costs a C
   call per node on this per-placement path. *)
let rec update_path t i =
  if i > 0 then begin
    let p = (i - 1) lsr 2 in
    let tree = t.tree in
    let c = 4 * p in
    let v0 = Array.unsafe_get tree (c + 1) and v1 = Array.unsafe_get tree (c + 2) in
    let v2 = Array.unsafe_get tree (c + 3) and v3 = Array.unsafe_get tree (c + 4) in
    let v = if v0 >= v1 then v0 else v1 in
    let v = if v >= v2 then v else v2 in
    let v = if v >= v3 then v else v3 in
    if Array.unsafe_get tree p <> v then begin
      Array.unsafe_set tree p v;
      update_path t p
    end
  end

let rebuild_internal tree off =
  for i = off - 1 downto 0 do
    let c = 4 * i in
    let v0 = tree.(c + 1) and v1 = tree.(c + 2) in
    let v2 = tree.(c + 3) and v3 = tree.(c + 4) in
    let v = if v0 >= v1 then v0 else v1 in
    let v = if v >= v2 then v else v2 in
    let v = if v >= v3 then v else v3 in
    tree.(i) <- v
  done

let grow t =
  let cap' = 4 * t.cap in
  let off' = (cap' - 1) / 3 in
  let tree' = Array.make (off' + cap') inactive in
  (* Copy leaves, then rebuild internal nodes bottom-up. *)
  Array.blit t.tree t.off tree' off' t.cap;
  rebuild_internal tree' off';
  t.cap <- cap';
  t.off <- off';
  t.tree <- tree'

(* Slide the leaf window left by half a tree: legal when every leaf of
   the left half is inactive (the root's first two children span exactly
   those leaves). Public slot numbers are unchanged — only their leaf
   positions move — so the leftmost-fit order is untouched. *)
let slide t =
  let half = t.cap / 2 in
  Array.blit t.tree (t.off + half) t.tree t.off half;
  Array.fill t.tree (t.off + half) half inactive;
  rebuild_internal t.tree t.off;
  t.base <- t.base + half

let push t ~residual =
  if t.n - t.base = t.cap then begin
    if t.tree.(1) = inactive && t.tree.(2) = inactive then slide t else grow t
  end;
  let slot = t.n in
  t.n <- t.n + 1;
  let i = t.off + (slot - t.base) in
  t.tree.(i) <- residual;
  update_path t i;
  slot

let check t slot op =
  if slot < 0 || slot >= t.n then invalid_arg ("Ff_index." ^ op ^ ": bad slot");
  if slot < t.base then
    invalid_arg ("Ff_index." ^ op ^ ": slot compacted away (was inactive)")

let set_leaf t slot v =
  let i = t.off + (slot - t.base) in
  t.tree.(i) <- v;
  update_path t i

let set t slot residual =
  check t slot "set";
  set_leaf t slot residual

let deactivate t slot =
  check t slot "deactivate";
  set_leaf t slot inactive

let residual t slot =
  check t slot "residual";
  t.tree.(t.off + (slot - t.base))

let length t = t.n
let compacted_below t = t.base

(* The -1 sentinel spelling of the query, for the per-item path: no
   option cell. If the root admits [need], the left-first descent lands
   on the leftmost adequate leaf; that leaf is necessarily a pushed,
   active slot — unpushed and deactivated leaves hold -1 < need (need is
   >= 0), so they can never terminate the descent. The last-child arm is
   unconditional: the parent's aggregate guarantees some child fits, so
   if the first three do not, the fourth does. *)
let first_fit_idx t need =
  if need < 0 then invalid_arg "Ff_index.first_fit_idx: negative need";
  let tree = t.tree and off = t.off in
  if Array.unsafe_get tree 0 < need then -1
  else begin
    let i = ref 0 in
    while !i < off do
      let c = 4 * !i in
      i :=
        (if Array.unsafe_get tree (c + 1) >= need then c + 1
         else if Array.unsafe_get tree (c + 2) >= need then c + 2
         else if Array.unsafe_get tree (c + 3) >= need then c + 3
         else c + 4)
    done;
    !i - off + t.base
  end

let first_fit t need =
  match first_fit_idx t need with -1 -> None | slot -> Some slot

(* [first_fit_idx] with a left bound: the leftmost active slot >= [from]
   whose residual admits [need]. The descent prunes subtrees entirely
   left of [from] and subtrees whose max residual is short; unpushed and
   deactivated leaves hold -1 < need, so they never terminate it. This
   is the resume step of the vector placement scan — dimension 0 acts
   as the filter, and the caller re-queries from [slot + 1] when the
   other dimensions reject a candidate. *)
let first_fit_idx_from t ~need ~from =
  if need < 0 then invalid_arg "Ff_index.first_fit_idx_from: negative need";
  let from_leaf = if from <= t.base then 0 else from - t.base in
  let tree = t.tree in
  let rec descend i lo span =
    if lo + span <= from_leaf || Array.unsafe_get tree i < need then -1
    else if span = 1 then lo
    else begin
      let q = span lsr 2 in
      let c = 4 * i in
      let rec child k =
        if k > 4 then -1
        else
          match descend (c + k) (lo + ((k - 1) * q)) q with
          | -1 -> child (k + 1)
          | leaf -> leaf
      in
      child 1
    end
  in
  match descend 0 0 t.cap with -1 -> -1 | leaf -> leaf + t.base

(* Allocation-free left-to-right fold over active slots; Best/Worst-Fit
   scan through this instead of materializing [active]. Bounded by the
   leaf window, not by slots ever pushed. *)
let fold_active t ~init ~f =
  let tree = t.tree and off = t.off and base = t.base in
  let acc = ref init in
  for leaf = 0 to t.n - base - 1 do
    let r = Array.unsafe_get tree (off + leaf) in
    if r >= 0 then acc := f !acc (base + leaf) r
  done;
  !acc

let active t = List.rev (fold_active t ~init:[] ~f:(fun acc slot _ -> slot :: acc))
