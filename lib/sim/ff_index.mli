(** Leftmost-fit index: a max segment tree over bin residuals.

    First-Fit must find the *earliest-opened* bin whose residual capacity
    admits an item. A linear scan is O(open bins) per placement; this
    index answers the query in O(log n) by storing, per tree node, the
    maximum residual in its span and descending left-first. Slots are
    assigned in bin-opening order, so "leftmost slot" = "earliest bin".
    The tree is 4-ary: half the levels of a binary tree, with each
    node's four children in adjacent words — one cache line per level on
    the per-item descent and update ascent. *)

type t

val create : ?initial_cap:int -> unit -> t
(** [initial_cap] (default 8, minimum 1) is rounded up to a power of
    four; the tree quadruples on demand.

    The tree additionally {e compacts}: when its leaves fill up and the
    older half are all inactive, the leaf window slides instead of
    growing, and those slots are retired for good. Slot numbers (and
    therefore the leftmost-fit order) never change — only the memory
    footprint, which tracks the span of still-active slots rather than
    the slots ever pushed. Touching a retired slot ({!set},
    {!deactivate}, {!residual}) raises [Invalid_argument]; slots are
    only retired while inactive, so a caller that never revives a
    deactivated slot can never observe the difference. *)

val push : t -> residual:int -> int
(** Append a slot with the given residual; returns the slot index. *)

val set : t -> int -> int -> unit
(** [set t slot residual] updates a slot (e.g. after an insertion). *)

val deactivate : t -> int -> unit
(** Mark a slot unusable (its bin closed). Equivalent to residual -1. *)

val residual : t -> int -> int
(** Current residual of a slot (-1 when deactivated). *)

val length : t -> int
(** Number of slots ever pushed. *)

val compacted_below : t -> int
(** Slots below this bound have been retired by compaction (all were
    inactive when the window slid). 0 until a compaction happens. *)

val first_fit_idx : t -> int -> int
(** [first_fit_idx t need] is the smallest slot index with residual >=
    [need], or [-1] when no active slot fits — the allocation-free query
    the per-item placement path uses. [need] must be non-negative. *)

val first_fit : t -> int -> int option
(** {!first_fit_idx} with an option, for callers off the hot path. *)

val first_fit_idx_from : t -> need:int -> from:int -> int
(** [first_fit_idx_from t ~need ~from] is the smallest active slot
    index [>= from] with residual >= [need], or [-1]. [first_fit_idx t
    need = first_fit_idx_from t ~need ~from:0]. This is the resume
    query of the vector placement scan: dimension 0 filters through the
    tree, and the caller re-queries from the rejected candidate + 1
    when the remaining dimensions do not fit. *)

val fold_active : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_active t ~init ~f] folds [f acc slot residual] over active
    slots in increasing slot order, without allocating. Best/Worst-Fit
    scan through this. *)

val active : t -> int list
(** Active slots in increasing order (used by tests and traversals). *)
