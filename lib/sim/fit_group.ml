open Dbp_util
open Dbp_instance
module H = Dbp_binpack.Heuristics

type t = {
  rule : H.rule;
  mutable glabel : string;
  index : Ff_index.t;
  bin_of_slot : Bin_store.bin_id Vec.t;
  slot_of_bin : Imap.t;
  mutable n_open : int;
  mutable last_slot : int;  (** most recent slot, for Next-Fit *)
}

let create ?(rule = H.First_fit) ~label () =
  {
    rule;
    glabel = label;
    index = Ff_index.create ();
    bin_of_slot = Vec.create ();
    slot_of_bin = Imap.create ~capacity:16 ();
    n_open = 0;
    last_slot = -1;
  }

let label t = t.glabel
let open_count t = t.n_open

let relabel t store label =
  t.glabel <- label;
  Imap.iter (fun bin _slot -> Bin_store.relabel store bin label) t.slot_of_bin

let owns t bin = Imap.mem t.slot_of_bin bin

let open_bins t =
  Ff_index.active t.index |> List.map (fun slot -> Vec.get t.bin_of_slot slot)

(* Slot selection per rule, -1 when nothing fits. First-Fit uses the
   segment tree; the other rules fold over active slots (they have no
   leftmost structure to exploit) without materializing a list. *)
let choose_slot t need =
  match t.rule with
  | H.First_fit -> Ff_index.first_fit_idx t.index need
  | H.Next_fit ->
      if t.last_slot >= 0 && Ff_index.residual t.index t.last_slot >= need then
        t.last_slot
      else -1
  | H.Best_fit ->
      (* Tightest adequate residual; ties keep the earliest slot. *)
      fst
        (Ff_index.fold_active t.index ~init:(-1, -1)
           ~f:(fun ((_, br) as best) slot r ->
             if r >= need && (br < 0 || r < br) then (slot, r) else best))
  | H.Worst_fit ->
      (* Roomiest adequate residual; ties keep the earliest slot. *)
      fst
        (Ff_index.fold_active t.index ~init:(-1, -1)
           ~f:(fun ((_, br) as best) slot r ->
             if r >= need && r > br then (slot, r) else best))

let register t store bin =
  let slot = Ff_index.push t.index ~residual:(Load.to_units (Bin_store.residual store bin)) in
  Vec.push t.bin_of_slot bin;
  assert (Vec.length t.bin_of_slot = Ff_index.length t.index);
  Imap.set t.slot_of_bin bin slot;
  t.n_open <- t.n_open + 1;
  t.last_slot <- slot;
  slot

let resync t store bin slot =
  Ff_index.set t.index slot (Load.to_units (Bin_store.residual store bin))

let place_new t store ~now (r : Item.t) =
  let bin = Bin_store.open_bin store ~now ~label:t.glabel in
  Bin_store.insert store bin r;
  let slot = register t store bin in
  resync t store bin slot;
  bin

let place t store ~now (r : Item.t) =
  let slot = choose_slot t (Load.to_units r.size) in
  if slot < 0 then place_new t store ~now r
  else begin
    let bin = Vec.get t.bin_of_slot slot in
    Bin_store.insert store bin r;
    resync t store bin slot;
    t.last_slot <- slot;
    bin
  end

let slot_exn t bin op =
  match Imap.find_opt t.slot_of_bin bin with
  | Some slot -> slot
  | None -> invalid_arg ("Fit_group." ^ op ^ ": bin not in group")

let note_insert t store bin = resync t store bin (slot_exn t bin "note_insert")

let note_close t bin =
  let slot = slot_exn t bin "note_close" in
  Ff_index.deactivate t.index slot;
  Imap.remove t.slot_of_bin bin;
  t.n_open <- t.n_open - 1;
  if t.last_slot = slot then t.last_slot <- -1

let note_depart t store bin ~closed =
  if closed then note_close t bin
  else resync t store bin (slot_exn t bin "note_depart")
