open Dbp_util
open Dbp_instance
module H = Dbp_binpack.Heuristics

(* First-Fit and Next-Fit only ever need the leftmost-fit query, which
   the single-aggregate segment tree answers with one descent; Best-Fit
   and Worst-Fit need min/max-residual queries, which live in the
   three-aggregate tournament tree. Splitting by rule keeps the FF hot
   path on the leaner structure. *)
type index = Ff of Ff_index.t | Tree of Fit_tree.t

type t = {
  rule : H.rule;
  mutable glabel : string;
  index : index;
  gid : int;  (** process-unique group id, tags the bin cookies below *)
  bin_of_slot : Bin_store.bin_id Vec.t;
  slot_of_bin : Imap.t;
  mutable n_open : int;
  mutable last_slot : int;  (** most recent slot, for Next-Fit *)
}

(* Each open member bin carries its index slot in the store's per-bin
   cookie, tagged with the owning group's id:
   [(gid lsl 32) lor slot]. The per-departure bin-to-slot lookup is
   then one array read plus a tag compare — the ownership check the
   [slot_of_bin] map used to answer with a hash probe. The map stays as
   the membership record for the cold queries ([owns], [relabel],
   [note_close]); only the hot paths bypass it. Group ids are
   process-unique (simulations are single-domain). *)
let next_gid = ref 0
let cookie_slot_bits = 32
let cookie_slot_mask = (1 lsl cookie_slot_bits) - 1

let create ?(rule = H.First_fit) ~label () =
  let index =
    match rule with
    (* Best-Fit pays for the successor array (one binary search per
       placement); Worst-Fit's query is an exact tree descent and
       skips it. *)
    | H.Best_fit -> Tree (Fit_tree.create ~successor:true ())
    | H.Worst_fit -> Tree (Fit_tree.create ())
    | H.First_fit | H.Next_fit -> Ff (Ff_index.create ())
  in
  incr next_gid;
  {
    rule;
    glabel = label;
    index;
    gid = !next_gid;
    bin_of_slot = Vec.create ();
    slot_of_bin = Imap.create ~capacity:16 ();
    n_open = 0;
    last_slot = -1;
  }

let idx_push index ~residual =
  match index with
  | Ff i -> Ff_index.push i ~residual
  | Tree i -> Fit_tree.push i ~residual ~score:0

let idx_set index slot residual =
  match index with
  | Ff i -> Ff_index.set i slot residual
  | Tree i -> Fit_tree.set i slot ~residual ~score:0

let idx_deactivate index slot =
  match index with
  | Ff i -> Ff_index.deactivate i slot
  | Tree i -> Fit_tree.deactivate i slot

let idx_length index =
  match index with Ff i -> Ff_index.length i | Tree i -> Fit_tree.length i

let idx_active index =
  match index with Ff i -> Ff_index.active i | Tree i -> Fit_tree.active i

let label t = t.glabel
let open_count t = t.n_open

let relabel t store label =
  t.glabel <- label;
  Imap.iter (fun bin _slot -> Bin_store.relabel store bin label) t.slot_of_bin

let owns t bin = Imap.mem t.slot_of_bin bin

let open_bins t =
  idx_active t.index |> List.map (fun slot -> Vec.get t.bin_of_slot slot)

(* Slot selection per rule, -1 when nothing fits. Every rule is a
   single index descent; ties break toward the smallest slot = the
   earliest-opened bin (the tree contract, pinned by tests). *)
let choose_slot t need =
  match t.index, t.rule with
  | Ff i, H.First_fit -> Ff_index.first_fit_idx i need
  | Ff i, H.Next_fit ->
      if t.last_slot >= 0 && Ff_index.residual i t.last_slot >= need then
        t.last_slot
      else -1
  | Tree i, H.Best_fit -> Fit_tree.best_fit_idx i need
  | Tree i, H.Worst_fit -> Fit_tree.worst_fit_idx i need
  | Ff _, (H.Best_fit | H.Worst_fit) | Tree _, (H.First_fit | H.Next_fit) ->
      assert false (* create pairs each rule with its index *)

let register t store bin ~residual =
  let slot = idx_push t.index ~residual in
  Vec.push t.bin_of_slot bin;
  assert (Vec.length t.bin_of_slot = idx_length t.index);
  assert (slot <= cookie_slot_mask);
  Imap.set t.slot_of_bin bin slot;
  Bin_store.set_cookie store bin ((t.gid lsl cookie_slot_bits) lor slot);
  t.n_open <- t.n_open + 1;
  t.last_slot <- slot;
  slot

let place_new t store ~now (r : Item.t) =
  let bin = Bin_store.open_bin store ~now ~label:t.glabel in
  let residual = Bin_store.insert_residual store bin r in
  ignore (register t store bin ~residual);
  bin

(* Vector slot selection: the index still answers dimension 0 (its
   residuals are dimension-0 residuals), and the store verifies
   dimensions 1.. per candidate. First-Fit resumes the tree query past
   each rejected candidate; Best/Worst-Fit score fitting bins by the L1
   norm of the whole residual vector (min for BF, max for WF; ties
   toward the smallest slot), which collapses to the scalar min/max
   residual — and hence the scalar semantics — at one dimension. These
   scans are O(open bins) in the worst case; the vector path is not
   throughput-gated (DESIGN.md, "Vector loads"). *)
let choose_slot_vec t store (r : Item.t) need =
  match t.index, t.rule with
  | Ff i, H.First_fit ->
      let rec scan from =
        match Ff_index.first_fit_idx_from i ~need ~from with
        | -1 -> -1
        | slot ->
            if Bin_store.fits_extra store (Vec.get t.bin_of_slot slot) r.extra
            then slot
            else scan (slot + 1)
      in
      scan 0
  | Ff i, H.Next_fit ->
      if
        t.last_slot >= 0
        && Ff_index.residual i t.last_slot >= need
        && Bin_store.fits_extra store (Vec.get t.bin_of_slot t.last_slot) r.extra
      then t.last_slot
      else -1
  | Tree i, ((H.Best_fit | H.Worst_fit) as rule) ->
      let dims = Bin_store.dims store in
      let best, _ =
        Fit_tree.fold_active i ~init:(-1, 0) ~f:(fun (bs, bscore) slot res _ ->
            if res < need then (bs, bscore)
            else begin
              let bin = Vec.get t.bin_of_slot slot in
              if not (Bin_store.fits_extra store bin r.extra) then (bs, bscore)
              else begin
                let score = ref res in
                for k = 1 to dims - 1 do
                  score := !score + Bin_store.residual_units_dim store bin k
                done;
                let better =
                  bs < 0
                  ||
                  match rule with
                  | H.Best_fit -> !score < bscore
                  | _ -> !score > bscore
                in
                if better then (slot, !score) else (bs, bscore)
              end
            end)
      in
      best
  | Ff _, (H.Best_fit | H.Worst_fit) | Tree _, (H.First_fit | H.Next_fit) ->
      assert false

let place t store ~now (r : Item.t) =
  let need = Load.to_units r.size in
  let slot =
    if Bin_store.dims store = 1 then choose_slot t need
    else choose_slot_vec t store r need
  in
  if slot < 0 then place_new t store ~now r
  else begin
    let bin = Vec.get t.bin_of_slot slot in
    idx_set t.index slot (Bin_store.insert_residual store bin r);
    t.last_slot <- slot;
    bin
  end

(* Hot lookup: the cookie stashed at [register]. A wrong or stale tag
   (unset cookie, another group's bin) fails the compare and raises,
   matching the map-based check this replaces. *)
let slot_hot t store bin op =
  let c = Bin_store.cookie store bin in
  if c lsr cookie_slot_bits <> t.gid then
    invalid_arg ("Fit_group." ^ op ^ ": bin not in group");
  c land cookie_slot_mask

let slot_exn t bin op =
  let slot = Imap.find_default t.slot_of_bin bin (-1) in
  if slot < 0 then invalid_arg ("Fit_group." ^ op ^ ": bin not in group");
  slot

let note_insert t store bin =
  idx_set t.index
    (slot_hot t store bin "note_insert")
    (Bin_store.residual_units store bin)

let note_close t bin =
  let slot = slot_exn t bin "note_close" in
  idx_deactivate t.index slot;
  Imap.remove t.slot_of_bin bin;
  t.n_open <- t.n_open - 1;
  if t.last_slot = slot then t.last_slot <- -1

let note_depart t store bin ~closed =
  if closed then begin
    note_close t bin;
    (* A retained bin record outlives its close; clearing the stash
       makes a later misdirected notification raise instead of silently
       reactivating the slot. (A retired slot is already unreadable.) *)
    if not (Bin_store.retire_mode store) then Bin_store.set_cookie store bin (-1)
  end
  else
    idx_set t.index
      (slot_hot t store bin "note_depart")
      (Bin_store.residual_units store bin)

(* --- policy wrapper ---

   The standard wiring of one group over the whole store: every Any-Fit
   baseline is this, and the serve daemon builds its per-shard policies
   here rather than in dbp_baselines (which sits above dbp_sim in the
   library order). Exposing it from the group module also lets a caller
   keep the group handle — the serve snapshot path needs it. *)

let rule_code = function
  | H.First_fit -> "FF"
  | H.Best_fit -> "BF"
  | H.Worst_fit -> "WF"
  | H.Next_fit -> "NF"

let rule_of_code = function
  | "FF" -> Some H.First_fit
  | "BF" -> Some H.Best_fit
  | "WF" -> Some H.Worst_fit
  | "NF" -> Some H.Next_fit
  | _ -> None

let policy_of t store =
  {
    Policy.name = t.glabel;
    on_arrival = (fun ~now r -> place t store ~now r);
    on_departure = (fun ~now:_ _ ~bin ~closed -> note_depart t store bin ~closed);
    (* Every bin belongs to the one group, so a relocation is a
       departure-side resync at the source plus an insert-side one at
       the destination. *)
    on_move =
      Some
        (fun ~now:_ _ ~src ~dst ~closed ->
          note_depart t store src ~closed;
          note_insert t store dst);
  }

let policy ?name rule store =
  let name = Option.value name ~default:(rule_code rule) in
  policy_of (create ~rule ~label:name ()) store

(* --- snapshot codec ---

   A group serializes as its rule, label, member bins in slot order, and
   the Next-Fit anchor bin. Nothing else: residuals are re-read from the
   (already restored) store, the index is rebuilt by re-registering each
   bin — which compacts slots to 0..n-1 and re-stamps every cookie under
   the new process's group id. Slot numbers are unobservable (all the
   rules' tie-breaks use relative slot order, which registration
   preserves), so the compaction is behavior-neutral. *)

let to_json t =
  let bins = open_bins t in
  let last_bin =
    if t.last_slot < 0 then -1 else Vec.get t.bin_of_slot t.last_slot
  in
  Json.Obj
    [
      ("rule", Json.String (rule_code t.rule));
      ("label", Json.String t.glabel);
      ("bins", Json.List (List.map (fun b -> Json.Int b) bins));
      ("last_bin", Json.Int last_bin);
    ]

let of_json ~store j =
  let fail msg = failwith ("Fit_group.of_json: " ^ msg) in
  let field name =
    match Json.member name j with Some v -> v | None -> fail ("missing " ^ name)
  in
  let rule =
    match field "rule" with
    | Json.String s -> (
        match rule_of_code s with
        | Some r -> r
        | None -> fail ("unknown rule " ^ s))
    | _ -> fail "rule: expected string"
  in
  let label =
    match field "label" with Json.String s -> s | _ -> fail "label: expected string"
  in
  let last_bin =
    match field "last_bin" with Json.Int b -> b | _ -> fail "last_bin: expected int"
  in
  let t = create ~rule ~label () in
  (match field "bins" with
  | Json.List bins ->
      List.iter
        (function
          | Json.Int bin ->
              if not (Bin_store.is_open store bin) then
                fail (Printf.sprintf "bin %d is not open in the store" bin);
              if Imap.mem t.slot_of_bin bin then
                fail (Printf.sprintf "bin %d registered twice" bin);
              ignore
                (register t store bin
                   ~residual:(Bin_store.residual_units store bin))
          | _ -> fail "bins: expected int list")
        bins
  | _ -> fail "bins: expected list");
  t.last_slot <-
    (if last_bin < 0 then -1
     else
       match Imap.find_default t.slot_of_bin last_bin (-1) with
       | -1 -> fail (Printf.sprintf "last_bin %d is not a member" last_bin)
       | slot -> slot);
  t
