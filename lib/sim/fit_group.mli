(** An ordered family of bins packed with an Any-Fit rule.

    Every algorithm in the paper reduces to Any-Fit placement within some
    family of bins — First-Fit uses one group, pure Classify-by-Duration
    one group per duration class, HA one GN group plus one group per CD
    type, CDFF one group per row. This module owns the family's placement
    logic: pick a bin by the rule, open a new bin when none fits, and
    keep the first-fit index in sync with the store.

    A bin belongs to exactly one group; the owning algorithm must call
    {!note_close} when the engine reports that a departure closed the
    bin. *)

open Dbp_instance

type t

val create : ?rule:Dbp_binpack.Heuristics.rule -> label:string -> unit -> t
(** A fresh empty group. [rule] defaults to [First_fit]. [label] prefixes
    the labels of bins the group opens. *)

val place : t -> Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id
(** Pack the item into the group, opening a new bin when no open bin of
    the group fits. On a vector ([dims > 1]) store, "fits" means fits
    in every dimension: the index filters on dimension 0 and the store
    checks the rest per candidate; Best/Worst-Fit then score fitting
    bins by the L1 norm of the residual vector (see DESIGN.md, "Vector
    loads"). *)

val place_new : t -> Bin_store.t -> now:int -> Item.t -> Bin_store.bin_id
(** Force-open a new bin for the item (HA opens a fresh CD bin when a
    type's load first crosses its threshold). *)

val note_insert : t -> Bin_store.t -> Bin_store.bin_id -> unit
(** Resync one bin's residual after an out-of-band insertion. Normally
    unnecessary ({!place} resyncs itself). *)

val note_close : t -> Bin_store.bin_id -> unit
(** Mark a member bin closed. Unknown bins raise [Invalid_argument]. *)

val note_depart : t -> Bin_store.t -> Bin_store.bin_id -> closed:bool -> unit
(** Handle a departure from a member bin: {!note_close} when the bin
    emptied, otherwise resync its residual (departures free capacity the
    placement index must see). Policies must call this on every
    departure. *)

val owns : t -> Bin_store.bin_id -> bool
val open_count : t -> int
val open_bins : t -> Bin_store.bin_id list
(** Open member bins in opening order. *)

val label : t -> string

val relabel : t -> Bin_store.t -> string -> unit
(** Rename the group and its open member bins (future bins use the new
    label too). *)

val policy_of : t -> Bin_store.t -> Policy.t
(** Wire an existing group over the whole store as a policy: arrivals
    place into the group, departures resync it, moves resync both ends.
    The caller keeps the group handle — this is the serve daemon's
    snapshot hook. *)

val policy : ?name:string -> Dbp_binpack.Heuristics.rule -> Policy.factory
(** One-group Any-Fit policy over the whole store ([policy_of] over a
    fresh group). [name] defaults to the rule's short code (FF/BF/WF/NF)
    and doubles as the group label. *)

val rule_code : Dbp_binpack.Heuristics.rule -> string
val rule_of_code : string -> Dbp_binpack.Heuristics.rule option
(** Short codes FF/BF/WF/NF, the serve protocol's policy names. *)

val to_json : t -> Dbp_util.Json.t
(** Snapshot the group: rule, label, member bins in slot order, Next-Fit
    anchor. Residuals and loads live in the store's own snapshot. *)

val of_json : store:Bin_store.t -> Dbp_util.Json.t -> t
(** Rebuild a group against an already-restored [store]: each member bin
    is re-registered in slot order (slots compact to [0..n-1]; relative
    order — all any-fit tie-breaks need — is preserved) and its cookie
    re-stamped under the new process's group id. Raises [Failure] on
    malformed input or bins the store does not consider open. *)
