open Dbp_util

type t = {
  mutable cap : int;  (** leaf count, a power of two (>= 1) *)
  mutable maxr : int array;  (** 1-based heap of max residual per subtree *)
  mutable minr : int array;  (** min residual over *active* leaves per subtree *)
  mutable maxs : int array;  (** max score over active leaves per subtree *)
  mutable base : int;  (** public slot number of leaf 0 *)
  mutable n : int;  (** public slots ever pushed *)
  succ : bool;  (** maintain the chunked successor list below *)
  mutable dirty : bool;  (** successor mode: internal aggregates stale *)
  mutable schunks : int array array;  (** sorted packed keys, chunked *)
  mutable scount : int array;  (** live keys in each chunk *)
  mutable smins : int array;  (** first key of each chunk, flat copy *)
  mutable snchunks : int;
}

(* Inactive leaves are absorbing for every aggregate: -1 never wins a
   max-residual race against need >= 0, max_int never wins a
   min-residual race, min_int never wins a max-score race. *)
let no_residual = -1
let no_min = max_int
let no_score = min_int

(* Same structural invariants as [Ff_index] (see ff_index.ml): arrays
   of length [2 * cap] with [cap] a power of two, leaves at
   [cap, 2*cap), internal nodes at [1, cap), public slot [s] at leaf
   [s - base], slots below [base] retired forever. The only difference
   is that each node carries three aggregates instead of one, so the
   tree answers best-fit (min adequate residual), worst-fit (max
   residual) and score-threshold queries in one descent each. *)
let create ?(initial_cap = 8) ?(successor = false) () =
  if initial_cap < 1 then invalid_arg "Fit_tree.create: initial_cap < 1";
  let cap = Ints.pow2 (Ints.ceil_log2 initial_cap) in
  {
    cap;
    maxr = Array.make (2 * cap) no_residual;
    minr = Array.make (2 * cap) no_min;
    maxs = Array.make (2 * cap) no_score;
    base = 0;
    n = 0;
    succ = successor;
    dirty = false;
    schunks = [||];
    scount = [||];
    smins = [||];
    snchunks = 0;
  }

(* --- Chunked successor list (opt-in) ------------------------------

   The positional aggregates above cannot answer best-fit in
   guaranteed sub-linear time: a subtree mixing too-small and
   too-large residuals passes both the [maxr >= need] and
   [minr < best] prunes while containing nothing in [need, best), so
   the DFS degenerates to visiting every such node (measured ~n/2
   nodes per query under churn). When [successor] is set at creation,
   the tree additionally keeps the active slots as packed
   (residual, slot) keys in sorted order: best-fit is then a successor
   lookup — the first key >= (need, slot 0) is the minimum adequate
   residual, and within equal residuals the smallest slot, exactly the
   BF tie-break.

   The keys live in an unrolled sorted list: fixed-capacity chunks,
   each sorted, with a directory array searched by chunk minimum. One
   flat sorted array was measured slower than the pruned DFS it was
   meant to replace (every update memmoves O(active) keys); chunking
   caps the shift at 64 words while keeping lookups two binary
   searches. Chunks split when full and are dropped when empty —
   under-full chunks are tolerated, which in the worst case degrades
   toward one key per chunk: lookups stay O(log active) through the
   directory, memory stays O(active bins). *)

(* Key layout: residual in the high bits, slot in the low 32. Residuals
   reach Load.capacity = 1e9 < 2^30, so the largest key is
   1e9 * 2^32 + (2^32 - 1) < 2^62 — still a positive OCaml int (a
   33-bit slot field would overflow the sign bit at full capacity). *)
let slot_bits = 32
let skey ~residual ~slot = (residual lsl slot_bits) lor slot
let skey_slot k = k land ((1 lsl slot_bits) - 1)
let chunk_cap = 64

(* Last chunk whose minimum is <= k, or -1 when k precedes every
   chunk. Chunk minimums are mirrored in the flat [smins] so the
   directory search stays inside one or two cache lines instead of
   chasing a chunk pointer per probe. *)
let sc_find t k =
  let mins = t.smins in
  let lo = ref 0 and hi = ref t.snchunks in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get mins mid <= k then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* First index in chunk [a] (live prefix [n]) holding a key >= k. *)
let sc_lower a n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get a mid < k then lo := mid + 1 else hi := mid
  done;
  !lo

(* Make room in the directory at position [c]. *)
let sc_open_slot t c =
  let cap = Array.length t.scount in
  if t.snchunks = cap then begin
    let cap' = max 8 (2 * cap) in
    let chunks' = Array.make cap' [||] in
    let count' = Array.make cap' 0 in
    let mins' = Array.make cap' max_int in
    Array.blit t.schunks 0 chunks' 0 t.snchunks;
    Array.blit t.scount 0 count' 0 t.snchunks;
    Array.blit t.smins 0 mins' 0 t.snchunks;
    t.schunks <- chunks';
    t.scount <- count';
    t.smins <- mins'
  end;
  Array.blit t.schunks c t.schunks (c + 1) (t.snchunks - c);
  Array.blit t.scount c t.scount (c + 1) (t.snchunks - c);
  Array.blit t.smins c t.smins (c + 1) (t.snchunks - c);
  t.snchunks <- t.snchunks + 1

let s_add t ~residual ~slot =
  let k = skey ~residual ~slot in
  if t.snchunks = 0 then begin
    sc_open_slot t 0;
    t.schunks.(0) <- Array.make chunk_cap 0;
    t.schunks.(0).(0) <- k;
    t.scount.(0) <- 1;
    t.smins.(0) <- k
  end
  else begin
    let c = ref (sc_find t k) in
    if !c < 0 then c := 0;
    if t.scount.(!c) = chunk_cap then begin
      (* Split in half; then aim at whichever half covers k. *)
      let a = t.schunks.(!c) in
      let half = chunk_cap / 2 in
      let b = Array.make chunk_cap 0 in
      Array.blit a half b 0 half;
      sc_open_slot t (!c + 1);
      t.schunks.(!c + 1) <- b;
      t.scount.(!c) <- half;
      t.scount.(!c + 1) <- half;
      t.smins.(!c + 1) <- b.(0);
      if k >= b.(0) then incr c
    end;
    let a = t.schunks.(!c) in
    let n = t.scount.(!c) in
    let i = sc_lower a n k in
    Array.blit a i a (i + 1) (n - i);
    a.(i) <- k;
    t.scount.(!c) <- n + 1;
    if i = 0 then t.smins.(!c) <- k
  end

let s_remove t ~residual ~slot =
  let k = skey ~residual ~slot in
  let c = sc_find t k in
  assert (c >= 0);
  let a = t.schunks.(c) in
  let n = t.scount.(c) in
  let i = sc_lower a n k in
  assert (i < n && a.(i) = k);
  Array.blit a (i + 1) a i (n - i - 1);
  t.scount.(c) <- n - 1;
  if n = 1 then begin
    Array.blit t.schunks (c + 1) t.schunks c (t.snchunks - c - 1);
    Array.blit t.scount (c + 1) t.scount c (t.snchunks - c - 1);
    Array.blit t.smins (c + 1) t.smins c (t.snchunks - c - 1);
    t.snchunks <- t.snchunks - 1;
    t.schunks.(t.snchunks) <- [||]
  end
  else if i = 0 then t.smins.(c) <- a.(0)

(* Smallest key >= k, or -1 (keys are non-negative). *)
let s_succ t k =
  if t.snchunks = 0 then -1
  else begin
    let c = sc_find t k in
    if c < 0 then t.schunks.(0).(0)
    else begin
      let a = t.schunks.(c) in
      let n = t.scount.(c) in
      let i = sc_lower a n k in
      if i < n then a.(i)
      else if c + 1 < t.snchunks then t.schunks.(c + 1).(0)
      else -1
    end
  end

(* Recompute ancestors after a leaf write, stopping once none of the
   three aggregates changes (their ancestors then cannot change
   either). *)
let rec update_path t i =
  if i >= 1 then begin
    let maxr = t.maxr and minr = t.minr and maxs = t.maxs in
    let l = 2 * i in
    let r = l + 1 in
    let rl = Array.unsafe_get maxr l and rr = Array.unsafe_get maxr r in
    let vmaxr = if rl >= rr then rl else rr in
    let ml = Array.unsafe_get minr l and mr = Array.unsafe_get minr r in
    let vminr = if ml <= mr then ml else mr in
    let sl = Array.unsafe_get maxs l and sr = Array.unsafe_get maxs r in
    let vmaxs = if sl >= sr then sl else sr in
    if
      Array.unsafe_get maxr i <> vmaxr
      || Array.unsafe_get minr i <> vminr
      || Array.unsafe_get maxs i <> vmaxs
    then begin
      Array.unsafe_set maxr i vmaxr;
      Array.unsafe_set minr i vminr;
      Array.unsafe_set maxs i vmaxs;
      update_path t (i / 2)
    end
  end

let rebuild_internal t =
  let maxr = t.maxr and minr = t.minr and maxs = t.maxs in
  for i = t.cap - 1 downto 1 do
    let l = 2 * i in
    let r = l + 1 in
    maxr.(i) <- (if maxr.(l) >= maxr.(r) then maxr.(l) else maxr.(r));
    minr.(i) <- (if minr.(l) <= minr.(r) then minr.(l) else minr.(r));
    maxs.(i) <- (if maxs.(l) >= maxs.(r) then maxs.(l) else maxs.(r))
  done;
  t.dirty <- false

(* In successor mode the hot queries (best-fit, residual reads) never
   touch the internal aggregates, so leaf writes skip the three-way
   ancestor recomputation and just flag the internals stale; any
   positional query rebuilds them first. Without the successor list the
   aggregates ARE the index, and every write maintains them eagerly. *)
let ensure_aggregates t = if t.dirty then rebuild_internal t

let grow t =
  let cap' = 2 * t.cap in
  let maxr' = Array.make (2 * cap') no_residual in
  let minr' = Array.make (2 * cap') no_min in
  let maxs' = Array.make (2 * cap') no_score in
  Array.blit t.maxr t.cap maxr' cap' t.cap;
  Array.blit t.minr t.cap minr' cap' t.cap;
  Array.blit t.maxs t.cap maxs' cap' t.cap;
  t.cap <- cap';
  t.maxr <- maxr';
  t.minr <- minr';
  t.maxs <- maxs';
  rebuild_internal t

(* Slide the leaf window left by half a tree when every leaf of the
   left half is inactive; public slot numbers are unchanged. *)
let slide t =
  let cap = t.cap in
  let half = cap / 2 in
  Array.blit t.maxr (cap + half) t.maxr cap half;
  Array.fill t.maxr (cap + half) half no_residual;
  Array.blit t.minr (cap + half) t.minr cap half;
  Array.fill t.minr (cap + half) half no_min;
  Array.blit t.maxs (cap + half) t.maxs cap half;
  Array.fill t.maxs (cap + half) half no_score;
  rebuild_internal t;
  t.base <- t.base + half

let set_leaf t slot ~residual ~score =
  let i = t.cap + (slot - t.base) in
  t.maxr.(i) <- residual;
  t.minr.(i) <- (if residual = no_residual then no_min else residual);
  t.maxs.(i) <- score;
  if t.succ then t.dirty <- true else update_path t (i / 2)

(* The slide precondition — every leaf of the left half inactive — is
   read off [maxr.(2)] when the aggregates are fresh, or by a direct
   leaf scan when they are stale (rebuilding just to ask would cost the
   same pass). *)
let left_half_inactive t =
  t.cap >= 2
  &&
  if not t.dirty then t.maxr.(2) = no_residual
  else begin
    let half = t.cap / 2 in
    let ok = ref true in
    let i = ref t.cap in
    while !ok && !i < t.cap + half do
      if Array.unsafe_get t.maxr !i <> no_residual then ok := false;
      incr i
    done;
    !ok
  end

let push t ~residual ~score =
  if residual < 0 then invalid_arg "Fit_tree.push: negative residual";
  if t.n - t.base = t.cap then begin
    if left_half_inactive t then slide t else grow t
  end;
  let slot = t.n in
  t.n <- t.n + 1;
  set_leaf t slot ~residual ~score;
  if t.succ then s_add t ~residual ~slot;
  slot

let check t slot op =
  if slot < 0 || slot >= t.n then invalid_arg ("Fit_tree." ^ op ^ ": bad slot");
  if slot < t.base then
    invalid_arg ("Fit_tree." ^ op ^ ": slot compacted away (was inactive)")

let set t slot ~residual ~score =
  check t slot "set";
  if residual < 0 then invalid_arg "Fit_tree.set: negative residual";
  if t.succ then begin
    let old = t.maxr.(t.cap + (slot - t.base)) in
    if old >= 0 then s_remove t ~residual:old ~slot;
    s_add t ~residual ~slot
  end;
  set_leaf t slot ~residual ~score

let deactivate t slot =
  check t slot "deactivate";
  if t.succ then begin
    let old = t.maxr.(t.cap + (slot - t.base)) in
    if old >= 0 then s_remove t ~residual:old ~slot
  end;
  set_leaf t slot ~residual:no_residual ~score:no_score

let residual t slot =
  check t slot "residual";
  t.maxr.(t.cap + (slot - t.base))

let score t slot =
  check t slot "score";
  t.maxs.(t.cap + (slot - t.base))

let length t = t.n
let compacted_below t = t.base

(* Leftmost leaf with residual >= need: identical descent to
   [Ff_index.first_fit_idx], on the max-residual aggregate. *)
let first_fit_idx t need =
  if need < 0 then invalid_arg "Fit_tree.first_fit_idx: negative need";
  ensure_aggregates t;
  let maxr = t.maxr and cap = t.cap in
  if Array.unsafe_get maxr 1 < need then -1
  else begin
    let i = ref 1 in
    while !i < cap do
      let l = 2 * !i in
      i := if Array.unsafe_get maxr l >= need then l else l + 1
    done;
    !i - cap + t.base
  end

(* Best fit: the minimum residual >= need, leftmost leaf on ties. With
   the successor array it is one binary search; without it, a
   left-first DFS pruned on two fronts — a subtree is skipped unless
   its max residual admits [need] AND its min active residual could
   beat the best found so far. Once a subtree's min residual is itself
   >= need, that min IS its best candidate — descend straight to the
   leftmost leaf attaining it instead of recursing. The strict
   [v < best] update plus left-first order makes the leftmost minimal
   leaf win. The DFS is worst-case O(leaves) (subtrees mixing
   too-small and too-large residuals defeat both prunes), which is why
   the hot Best-Fit group opts into the successor array. *)
let best_fit_idx t need =
  if need < 0 then invalid_arg "Fit_tree.best_fit_idx: negative need";
  if t.succ then begin
    (* Successor of (need, slot 0): the minimum residual >= need,
       smallest slot within equal residuals. *)
    let k = s_succ t (need lsl slot_bits) in
    if k < 0 then -1 else skey_slot k
  end
  else begin
  ensure_aggregates t;
  let maxr = t.maxr and minr = t.minr and cap = t.cap in
  if Array.unsafe_get maxr 1 < need then -1
  else begin
    let best_r = ref max_int and best_i = ref (-1) in
    let rec go i =
      if Array.unsafe_get maxr i >= need && Array.unsafe_get minr i < !best_r
      then begin
        let m = Array.unsafe_get minr i in
        if m >= need then begin
          (* Every active leaf below fits; the subtree minimum is the
             candidate. A leaf always lands here (its min = its max). *)
          let j = ref i in
          while !j < cap do
            let l = 2 * !j in
            j := if Array.unsafe_get minr l = m then l else l + 1
          done;
          best_r := m;
          best_i := !j
        end
        else begin
          (* Internal node mixing too-small and adequate leaves. *)
          go (2 * i);
          go ((2 * i) + 1)
        end
      end
    in
    go 1;
    if !best_i < 0 then -1 else !best_i - cap + t.base
  end
  end

(* Worst fit: the maximum residual overall (it is >= need iff the root
   admits need), leftmost leaf on ties — one exact descent. *)
let worst_fit_idx t need =
  if need < 0 then invalid_arg "Fit_tree.worst_fit_idx: negative need";
  ensure_aggregates t;
  let maxr = t.maxr and cap = t.cap in
  let v = Array.unsafe_get maxr 1 in
  if v < need then -1
  else begin
    let i = ref 1 in
    while !i < cap do
      let l = 2 * !i in
      i := if Array.unsafe_get maxr l = v then l else l + 1
    done;
    !i - cap + t.base
  end

(* Leftmost leaf with residual >= need and score >= min_score. The two
   aggregates prune independently; only a leaf certifies the
   conjunction, so the descent backtracks. Inactive leaves fail the
   residual test (need >= 0 > -1), so they never terminate it. *)
let first_fit_by t ~need ~min_score =
  if need < 0 then invalid_arg "Fit_tree.first_fit_by: negative need";
  ensure_aggregates t;
  let maxr = t.maxr and maxs = t.maxs and cap = t.cap in
  let rec go i =
    if Array.unsafe_get maxr i >= need && Array.unsafe_get maxs i >= min_score
    then
      if i >= cap then i
      else begin
        let l = go (2 * i) in
        if l >= 0 then l else go ((2 * i) + 1)
      end
    else -1
  in
  let i = go 1 in
  if i < 0 then -1 else i - cap + t.base

(* Maximum score among leaves with residual >= need, leftmost on ties
   (strict [>] update under left-first DFS). Prunes subtrees whose max
   score cannot beat the best found or whose max residual is too
   small. *)
let best_score_idx t ~need =
  if need < 0 then invalid_arg "Fit_tree.best_score_idx: negative need";
  ensure_aggregates t;
  let maxr = t.maxr and maxs = t.maxs and cap = t.cap in
  let best_s = ref no_score and best_i = ref (-1) in
  let rec go i =
    if Array.unsafe_get maxr i >= need && Array.unsafe_get maxs i > !best_s
    then
      if i >= cap then begin
        best_s := Array.unsafe_get maxs i;
        best_i := i
      end
      else begin
        go (2 * i);
        go ((2 * i) + 1)
      end
  in
  go 1;
  if !best_i < 0 then -1 else !best_i - cap + t.base

(* Allocation-free left-to-right fold over active slots, bounded by the
   leaf window. *)
let fold_active t ~init ~f =
  let maxr = t.maxr and maxs = t.maxs and cap = t.cap and base = t.base in
  let acc = ref init in
  for leaf = 0 to t.n - base - 1 do
    let r = Array.unsafe_get maxr (cap + leaf) in
    if r >= 0 then acc := f !acc (base + leaf) r (Array.unsafe_get maxs (cap + leaf))
  done;
  !acc

let active t =
  List.rev (fold_active t ~init:[] ~f:(fun acc slot _ _ -> slot :: acc))
