(** Fit tree: a tournament tree over bin residuals answering best-fit,
    worst-fit and score-threshold queries in (amortized) log time.

    Sibling of {!Ff_index} — same slot discipline and window
    compaction, in a flat 1-based binary layout (Ff_index went 4-ary;
    here each node carries three aggregates, so the fan-out buys less)
    — with, per node, three aggregates over its leaf span: max
    residual, min {e active} residual, and max score. Best-Fit (tightest adequate bin), Worst-Fit
    (roomiest adequate bin) and SpanGreedy's horizon queries all resolve
    by short descents instead of an O(open bins) scan per placement.
    Slots are assigned in bin-opening order, so every tie-break below is
    "earliest-opened bin wins".

    The [score] is an arbitrary caller-owned integer per active slot
    (SpanGreedy stores the bin horizon there; Best/Worst-Fit leave it
    0). Scores must be greater than [min_int], which is the inactive
    sentinel. *)

type t

val create : ?initial_cap:int -> ?successor:bool -> unit -> t
(** [initial_cap] (default 8, minimum 1) is rounded up to a power of
    two; the tree doubles on demand and compacts exactly like
    {!Ff_index}: when the leaves fill and the older half are all
    inactive, the window slides and those slots are retired for good.
    Touching a retired slot raises [Invalid_argument].

    [successor] (default false) additionally maintains the active
    slots as sorted (residual, slot) keys in an unrolled (chunked)
    list, making {!best_fit_idx} a successor lookup — two binary
    searches — instead of a pruned DFS (which degrades to O(active) on
    residual populations mixing too-small and too-large values).
    Updates then cost O(log active) search plus a bounded 64-word
    shift per {!set}/{!deactivate}, so only the Best-Fit placement
    group opts in. *)

val push : t -> residual:int -> score:int -> int
(** Append an active slot; returns the slot index. The residual must be
    non-negative. *)

val set : t -> int -> residual:int -> score:int -> unit
(** [set t slot ~residual ~score] updates an active slot in place
    (e.g. after an insertion). The residual must be non-negative. *)

val deactivate : t -> int -> unit
(** Mark a slot unusable (its bin closed). *)

val residual : t -> int -> int
(** Current residual of a slot (-1 when deactivated). *)

val score : t -> int -> int
(** Current score of a slot ([min_int] when deactivated). *)

val length : t -> int
(** Number of slots ever pushed. *)

val compacted_below : t -> int
(** Slots below this bound have been retired by compaction. *)

val first_fit_idx : t -> int -> int
(** [first_fit_idx t need] is the smallest slot with residual >=
    [need], or [-1]. Identical contract to {!Ff_index.first_fit_idx}. *)

val best_fit_idx : t -> int -> int
(** [best_fit_idx t need] is the slot holding the {e minimum} residual
    >= [need] — the tightest adequate bin — smallest slot on ties, or
    [-1] when no active slot fits. *)

val worst_fit_idx : t -> int -> int
(** [worst_fit_idx t need] is the slot holding the {e maximum} residual,
    provided it is >= [need] — the roomiest adequate bin — smallest slot
    on ties, or [-1]. *)

val first_fit_by : t -> need:int -> min_score:int -> int
(** [first_fit_by t ~need ~min_score] is the smallest slot with
    residual >= [need] {e and} score >= [min_score], or [-1]. *)

val best_score_idx : t -> need:int -> int
(** [best_score_idx t ~need] is the slot holding the maximum score among
    slots with residual >= [need], smallest slot on ties, or [-1]. *)

val fold_active : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a
(** [fold_active t ~init ~f] folds [f acc slot residual score] over
    active slots in increasing slot order, without allocating. *)

val active : t -> int list
(** Active slots in increasing order (tests and traversals). *)
