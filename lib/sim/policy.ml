open Dbp_instance

type t = {
  name : string;
  on_arrival : now:int -> Item.t -> Bin_store.bin_id;
  on_departure : now:int -> Item.t -> bin:Bin_store.bin_id -> closed:bool -> unit;
}

type factory = Bin_store.t -> t

let non_clairvoyant factory store =
  let inner = factory store in
  let mask (r : Item.t) =
    Item.make_vec ~extra:r.extra ~id:r.id ~arrival:r.arrival
      ~departure:(r.arrival + 1) ~size:r.size
  in
  {
    name = inner.name ^ "-nc";
    on_arrival = (fun ~now r -> inner.on_arrival ~now (mask r));
    on_departure = (fun ~now r ~bin ~closed -> inner.on_departure ~now (mask r) ~bin ~closed);
  }
