open Dbp_instance

type move_hook =
  now:int ->
  Item.t ->
  src:Bin_store.bin_id ->
  dst:Bin_store.bin_id ->
  closed:bool ->
  unit

type t = {
  name : string;
  on_arrival : now:int -> Item.t -> Bin_store.bin_id;
  on_departure : now:int -> Item.t -> bin:Bin_store.bin_id -> closed:bool -> unit;
  on_move : move_hook option;
}

type factory = Bin_store.t -> t

let non_clairvoyant factory store =
  let inner = factory store in
  let mask (r : Item.t) =
    Item.make_vec ~extra:r.extra ~id:r.id ~arrival:r.arrival
      ~departure:(r.arrival + 1) ~size:r.size
  in
  {
    name = inner.name ^ "-nc";
    on_arrival = (fun ~now r -> inner.on_arrival ~now (mask r));
    on_departure = (fun ~now r ~bin ~closed -> inner.on_departure ~now (mask r) ~bin ~closed);
    on_move =
      Option.map
        (fun f ~now r ~src ~dst ~closed -> f ~now (mask r) ~src ~dst ~closed)
        inner.on_move;
  }
