(** The online-algorithm interface.

    A policy reacts to arrivals and departures; the engine owns the clock
    and the event order (departures strictly before arrivals at the same
    tick — the paper's [t^-] convention). Policies must pack each arrival
    immediately and never repack on their own: the only mutation available
    is placing the arriving item into a {!Bin_store} bin. Repacking is the
    {!Recourse} wrapper's privilege — a policy that also implements
    {!field:t.on_move} can be wrapped with a migration budget and have
    items relocated under it. *)

open Dbp_instance

type move_hook =
  now:int ->
  Item.t ->
  src:Bin_store.bin_id ->
  dst:Bin_store.bin_id ->
  closed:bool ->
  unit
(** Notification that the given live item was just relocated from [src]
    to [dst] through {!Bin_store.move} (the store is already updated).
    [closed] reports whether [src] emptied and was closed — exactly the
    contract of [on_departure]'s flag. The hook must bring the policy's
    own structures (fit indexes, ownership tables) back in sync with the
    store; it must not place, move or remove anything itself. *)

type t = {
  name : string;
  on_arrival : now:int -> Item.t -> Bin_store.bin_id;
      (** Pack the item (clairvoyantly: the item carries its departure
          time) and return the chosen bin. *)
  on_departure : now:int -> Item.t -> bin:Bin_store.bin_id -> closed:bool -> unit;
      (** Called after the store removed the item. [closed] reports
          whether the bin emptied (algorithms drop it from their own
          structures). *)
  on_move : move_hook option;
      (** [None] means the policy cannot keep its structures consistent
          across relocations and must not be wrapped with recourse. *)
}

type factory = Bin_store.t -> t
(** Algorithms are created per-run around the engine's store. *)

val non_clairvoyant : factory -> factory
(** Wrap a policy so it sees every arriving item with a masked departure
    time (set to [arrival + 1]). Duration-oblivious baselines (plain
    First-Fit in the non-clairvoyant setting) are expressed this way; the
    engine still departs items at their true times. *)
