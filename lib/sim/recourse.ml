open Dbp_util
open Dbp_instance

type mode = Per_event | Amortized

type strategy =
  | Close_emptiest
  | Consolidate
  | Waste_threshold of float

let mode_to_string = function
  | Per_event -> "per-event"
  | Amortized -> "amortized"

let strategy_to_string = function
  | Close_emptiest -> "close-emptiest"
  | Consolidate -> "consolidate"
  | Waste_threshold f -> Printf.sprintf "waste:%g" f

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "close-emptiest" | "emptiest" -> Some Close_emptiest
  | "consolidate" -> Some Consolidate
  | "waste" -> Some (Waste_threshold 1.5)
  | s ->
      let prefix = "waste:" in
      let n = String.length prefix in
      if String.length s > n && String.sub s 0 n = prefix then
        match float_of_string_opt (String.sub s n (String.length s - n)) with
        | Some f when f >= 1.0 -> Some (Waste_threshold f)
        | _ -> None
      else None

let m_moves = Metrics.counter "recourse.moves"
let m_moved_units = Metrics.counter "recourse.moved_units"
let m_closes = Metrics.counter "recourse.bins_closed"
let m_plans_rejected = Metrics.counter "recourse.plans_rejected"

let units (r : Item.t) = Load.to_units r.size

(* The wrapper shadows the store with its own bin -> live items table.
   Retain-mode stores could answer [contents] directly, but retire-mode
   (streaming) stores keep no per-item records at all — the shadow table
   is O(live items) in both modes and keeps the strategies
   mode-agnostic. *)
let wrap ~k ?(mode = Per_event) ?(strategy = Close_emptiest) factory =
  if k < 0 then invalid_arg "Recourse.wrap: negative move budget";
  (match strategy with
  | Waste_threshold f when not (f >= 1.0) ->
      invalid_arg "Recourse.wrap: waste factor must be >= 1"
  | _ -> ());
  if k = 0 then factory
    (* k = 0 is the zero-recourse policy itself: returning the factory
       unchanged makes bit-identity (and zero overhead) structural. *)
  else fun store ->
    let inner = factory store in
    let on_move =
      match inner.Policy.on_move with
      | Some f -> f
      | None ->
          invalid_arg
            (Printf.sprintf
               "Recourse.wrap: policy %s does not support migration (no on_move \
                hook)"
               inner.Policy.name)
    in
    let bin_items : (Bin_store.bin_id, Item.t list) Hashtbl.t =
      Hashtbl.create 64
    in
    let items_of bin = Option.value (Hashtbl.find_opt bin_items bin) ~default:[] in
    let live_units = ref 0 in
    let credit = ref 0 in
    let exec_move ~now (r : Item.t) ~src ~dst =
      let closed = Bin_store.move store ~now ~item_id:r.id ~dst in
      on_move ~now r ~src ~dst ~closed;
      (match List.filter (fun (x : Item.t) -> x.id <> r.id) (items_of src) with
      | [] -> Hashtbl.remove bin_items src
      | rest -> Hashtbl.replace bin_items src rest);
      Hashtbl.replace bin_items dst (r :: items_of dst);
      decr credit;
      Metrics.incr m_moves;
      Metrics.add m_moved_units (units r);
      if closed then Metrics.incr m_closes;
      closed
    in
    (* Plan the full evacuation of [victim] before touching anything:
       items descending by size (FFD order, ties by id) each best-fit
       into an open bin with room left after the moves already planned —
       in every dimension. All-or-nothing: a partial evacuation spends
       budget without closing anything, so an infeasible plan is
       discarded whole.

       A feasible plan must also *pay*: the schedule is clairvoyant, so
       the usage-time saved by closing the victim now — its longest
       remaining item lifetime — is known exactly, as is the cost of
       parking evacuees in bins they would outlive (every such bin stays
       open until the evacuee departs). Greedy space-only evacuation
       ignored that second term, and at k = 8 the larger plans it could
       afford would shuffle long-lived items into short-lived bins,
       extending their lifetimes by more than the close saved — the
       sporadic cost *increase* with budget the monotonicity suite used
       to carve out. Rejecting plans whose summed destination extension
       reaches the saving restores a net-gain invariant per executed
       plan. *)
    let dims = Bin_store.dims store in
    let close_tick bin =
      (* When every live item of [bin] is gone the bin closes: the max
         pending departure over the shadow table. Open bins the wrapper
         has seen always have live items; [min_int] covers the
         (unreachable) empty case conservatively. *)
      List.fold_left
        (fun acc (r : Item.t) -> max acc r.departure)
        min_int (items_of bin)
    in
    let plan_close ~now victim vs =
      let planned : (Bin_store.bin_id, int array) Hashtbl.t = Hashtbl.create 8 in
      let planned_for b =
        match Hashtbl.find_opt planned b with
        | Some a -> a
        | None ->
            let a = Array.make dims 0 in
            Hashtbl.replace planned b a;
            a
      in
      let sorted =
        List.sort
          (fun (a : Item.t) (b : Item.t) ->
            match compare (units b) (units a) with 0 -> compare a.id b.id | c -> c)
          vs
      in
      let target (r : Item.t) =
        let u = units r in
        Bin_store.fold_open
          (fun best b ->
            if b = victim then best
            else begin
              let pl = Hashtbl.find_opt planned b in
              let extra_planned j =
                match pl with Some a -> a.(j) | None -> 0
              in
              let res = Bin_store.residual_units store b - extra_planned 0 in
              let fits =
                res >= u
                &&
                let ok = ref true in
                for j = 1 to dims - 1 do
                  if
                    Bin_store.residual_units_dim store b j - extra_planned j
                    < r.extra.(j - 1)
                  then ok := false
                done;
                !ok
              in
              if not fits then best
              else
                (* Best-fit: tightest post-move residual, earliest bin
                   (fold order) on ties. *)
                match best with
                | Some (_, r0) when r0 <= res - u -> best
                | _ -> Some (b, res - u)
            end)
          None store
      in
      let rec assign acc = function
        | [] -> Some (List.rev acc)
        | r :: rest -> (
            match target r with
            | None -> None
            | Some (b, _) ->
                let pl = planned_for b in
                pl.(0) <- pl.(0) + units r;
                for j = 1 to dims - 1 do
                  pl.(j) <- pl.(j) + r.Item.extra.(j - 1)
                done;
                assign ((r, b) :: acc) rest)
      in
      match assign [] sorted with
      | None -> None
      | Some moves ->
          (* The clairvoyant benefit check: closing the victim saves its
             remaining lifetime; every destination that an evacuee
             outlives is extended to that evacuee's departure. Strict
             inequality — an even trade spends moves for nothing. *)
          let saving = close_tick victim - now in
          let ext : (Bin_store.bin_id, int) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun ((r : Item.t), dst) ->
              let c =
                match Hashtbl.find_opt ext dst with
                | Some c -> c
                | None -> close_tick dst
              in
              Hashtbl.replace ext dst (max c r.departure))
            moves;
          let extension =
            Hashtbl.fold
              (fun dst c acc -> acc + max 0 (c - close_tick dst))
              ext 0
          in
          if extension >= saving then None else Some moves
    in
    let try_close ~now victim =
      match Hashtbl.find_opt bin_items victim with
      | None -> false
      | Some vs ->
          if List.length vs > !credit then false
          else (
            match plan_close ~now victim vs with
            | None ->
                Metrics.incr m_plans_rejected;
                false
            | Some moves ->
                List.iter (fun (r, dst) -> ignore (exec_move ~now r ~src:victim ~dst)) moves;
                true)
    in
    (* Lightest open bin whose full evacuation fits the remaining
       budget. [exclude] is the bin holding the item whose arrival we
       are handling: the arriving item must stay put until the event
       ends (the engine and validator check the policy's placement after
       the hook returns), so its bin is never a victim. Opening-order
       fold makes ties deterministic. *)
    let emptiest ~exclude =
      Bin_store.fold_open
        (fun best b ->
          if b = exclude then best
          else begin
            let c = Bin_store.item_count store b in
            if c = 0 || c > !credit then best
            else
              let l = Bin_store.load_units_dim store b 0 in
              match best with Some (_, l0) when l0 <= l -> best | _ -> Some (b, l)
          end)
        None store
    in
    let close_emptiest ~now ~exclude =
      match emptiest ~exclude with
      | Some (v, _) -> ignore (try_close ~now v)
      | None -> ()
    in
    (* L1 lower bound on the bins any packing needs right now; the
       waste trigger fires when the open-bin count exceeds it by the
       configured factor. *)
    let waste_fires f =
      let floor = max 1 (Ints.ceil_div !live_units Load.capacity) in
      float_of_int (Bin_store.open_count store) > f *. float_of_int floor
    in
    let repack ~now ~exclude ~departed_bin =
      match strategy with
      | Close_emptiest -> if !credit > 0 then close_emptiest ~now ~exclude
      | Consolidate ->
          (* Local consolidation: only the bin a departure just drained
             is a candidate — the one place waste just appeared. *)
          (match departed_bin with
          | Some b when !credit > 0 && Bin_store.is_open store b ->
              ignore (try_close ~now b)
          | _ -> ())
      | Waste_threshold f ->
          let rec loop () =
            if !credit > 0 && waste_fires f then
              match emptiest ~exclude with
              | Some (v, _) -> if try_close ~now v then loop ()
              | None -> ()
          in
          loop ()
    in
    {
      Policy.name = Printf.sprintf "%s+r%d" inner.Policy.name k;
      on_arrival =
        (fun ~now r ->
          let bin = inner.Policy.on_arrival ~now r in
          Hashtbl.replace bin_items bin (r :: items_of bin);
          live_units := !live_units + units r;
          (match mode with
          | Per_event -> credit := k
          | Amortized -> credit := !credit + k);
          repack ~now ~exclude:bin ~departed_bin:None;
          bin);
      on_departure =
        (fun ~now r ~bin ~closed ->
          inner.Policy.on_departure ~now r ~bin ~closed;
          (match List.filter (fun (x : Item.t) -> x.id <> r.id) (items_of bin) with
          | [] -> Hashtbl.remove bin_items bin
          | rest -> Hashtbl.replace bin_items bin rest);
          live_units := !live_units - units r;
          (match mode with Per_event -> credit := k | Amortized -> ());
          repack ~now ~exclude:(-1)
            ~departed_bin:(if closed then None else Some bin));
      (* The wrapper is the only mover; stacking another recourse layer
         on top would double-spend the budget. *)
      on_move = None;
    }
