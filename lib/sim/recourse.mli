(** Bounded-recourse repacking: wrap any policy with a migration budget.

    The paper's bounds sandwich every online policy between zero-recourse
    heuristics and the infinite-recourse optimum OPT_R; this wrapper
    explores the regime in between, in the spirit of Gupta et al.
    ("Fully-Dynamic Bin Packing with Limited Repacking") and Berndt et
    al. ("Fully Dynamic Bin Packing Revisited"): after the wrapped
    policy handles an event, the wrapper may relocate up to [k] live
    items through {!Bin_store.move}, notifying the policy via its
    {!Policy.move_hook} so fit indexes and ownership tables stay
    consistent.

    Invariants the wrapper maintains:
    - at most [k] moves per event ({!Per_event}), or at most
      [k x arrivals-so-far] moves in total ({!Amortized});
    - the item arriving in the current event is never relocated during
      that event (the engine and validator check the policy's placement
      after the hook returns);
    - every move lands in an already-open bin with capacity in every
      dimension — repacking never opens bins;
    - bins emptied by moves close exactly as if a departure emptied
      them (lifetime accounting, retire-mode slot recycling).

    [k = 0] returns the factory {e physically unchanged} — zero-recourse
    runs are bit-identical to, and exactly as allocation-free as, the
    unwrapped policy by construction. Vector ([dims > 1]) stores are
    supported: plans check capacity in every dimension.

    The wrapper needs the store's item-tracking map
    ({!Bin_store.create}[ ~track_items:true], the default); streaming
    runs with recourse must keep tracking on. *)

type mode =
  | Per_event  (** budget resets to [k] at every event *)
  | Amortized
      (** each arrival grants [k] credits; unused credits accumulate,
          departures spend but never grant *)

type strategy =
  | Close_emptiest
      (** on every event: evacuate the lightest open bin whose items
          all fit elsewhere within the remaining budget *)
  | Consolidate
      (** on departures only: try to evacuate the bin the departure
          just drained — local best-fit consolidation *)
  | Waste_threshold of float
      (** evacuate emptiest bins (repeatedly, budget permitting) only
        while [open bins > factor x max 1 (ceil (S_t))] — the L1
        lower-bound waste trigger; the factor must be [>= 1] *)

val mode_to_string : mode -> string
val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Accepts ["close-emptiest"] (or ["emptiest"]), ["consolidate"],
    ["waste"] (factor 1.5) and ["waste:F"] with [F >= 1]. *)

val wrap :
  k:int -> ?mode:mode -> ?strategy:strategy -> Policy.factory -> Policy.factory
(** [wrap ~k factory] bounds repacking to [k] item-moves per event
    (default {!Per_event} budget, {!Close_emptiest} strategy). Raises
    [Invalid_argument] for [k < 0] or a waste factor [< 1]; wrapping a
    policy whose [on_move] is [None] raises at construction time
    (fail-fast, per store). The wrapped policy's name is
    ["<name>+r<k>"]; its own [on_move] is [None] — recourse layers do
    not stack. *)
