open Dbp_util
open Dbp_instance
module H = Dbp_binpack.Heuristics

(* Long-lived placement daemon core.

   One [t] is a set of independent shards, each a retire-mode
   {!Engine.Interactive} driven by a single {!Fit_group} policy.
   Arrivals are routed to shards by a salted hash of the item id, so a
   tenant's placements never migrate between shards and the mapping
   survives restarts (the salt is part of the snapshot). Everything
   here is transport-agnostic — the [conn] record is the daemon's whole
   view of the outside world, so the CLI can serve stdin or a Unix
   socket with the same loop and the test suite can drive a daemon
   in-process with no file descriptors at all.

   Determinism contract: responses are a pure function of the command
   sequence (batch boundaries and [--jobs] fan-out never change them),
   and a daemon restored from a snapshot answers the remaining commands
   byte-identically to one that never stopped. *)

let m_commands = Metrics.counter "serve.commands"
let m_places = Metrics.counter "serve.places"
let m_errors = Metrics.counter "serve.errors"
let m_snapshots = Metrics.counter "serve.snapshots"

(* Batch sizes depend on client timing (how many lines were readable
   when the loop drained the connection), not on the work requested —
   scheduling-stability, like the pool metrics. *)
let m_batches = Metrics.counter ~stability:Sched "serve.batches"

let m_batch_fill =
  Metrics.histogram ~stability:Sched
    ~buckets:[| 1; 4; 16; 64; 256; 1024 |]
    "serve.batch_fill"

type shard = { eng : Engine.Interactive.t; group : Fit_group.t }

type t = {
  rule : H.rule;
  dims : int;
  salt : int;
  prng : Prng.t;
  mutable shards : shard array;
  live : (int, int) Hashtbl.t;
      (** live item id -> departure; rejects duplicate live ids and is
          swept lazily so it stays O(live items), not O(ids ever) *)
  max_batch : int;
  mutable stopped : bool;
}

let shard_count t = Array.length t.shards
let stopped t = t.stopped

(* SplitMix-style finalizer on the 63-bit int; routing only needs a
   stable, well-spread salt+id -> shard map, not cryptography. The two
   multipliers fit in 62 bits so the literals parse on 64-bit OCaml. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x9E3779B97F4A7C1 in
  x lxor (x lsr 32)

let shard_of_id t id =
  let n = Array.length t.shards in
  if n = 1 then 0 else mix (t.salt lxor id) land max_int mod n

let shard_label rule ~shards i =
  if shards = 1 then Fit_group.rule_code rule
  else Printf.sprintf "%s@%d" (Fit_group.rule_code rule) i

(* Shard engines run the streaming configuration — retire-mode store,
   no released log, LTTB-bounded series — because a daemon's memory
   must track its *live* items, not its uptime. *)
let serve_max_series = 512

let make_shard rule ~dims ~label =
  let gref = ref None in
  let factory store =
    let g = Fit_group.create ~rule ~label () in
    gref := Some g;
    Fit_group.policy_of g store
  in
  let eng =
    Engine.Interactive.start ~retire:true ~retain_released:false
      ~max_series:serve_max_series ~dims factory
  in
  { eng; group = Option.get !gref }

let create ?(shards = 1) ?(dims = 1) ?(seed = 0) ?(max_batch = 512) rule =
  if shards < 1 then invalid_arg "Serve.create: shards must be >= 1";
  if dims < 1 then invalid_arg "Serve.create: dims must be >= 1";
  if max_batch < 1 then invalid_arg "Serve.create: max_batch must be >= 1";
  let prng = Prng.create ~seed in
  let salt = Int64.to_int (Prng.bits64 prng) land max_int in
  {
    rule;
    dims;
    salt;
    prng;
    shards =
      Array.init shards (fun i ->
          make_shard rule ~dims ~label:(shard_label rule ~shards i));
    live = Hashtbl.create 256;
    max_batch;
    stopped = false;
  }

(* --- snapshot --- *)

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("rule", Json.String (Fit_group.rule_code t.rule));
      ("dims", Json.Int t.dims);
      ("salt", Json.Int t.salt);
      ("prng", Prng.to_json t.prng);
      ( "shards",
        Json.List
          (Array.to_list
             (Array.map
                (fun s ->
                  Json.Obj
                    [
                      ("engine", Engine.Interactive.snapshot s.eng);
                      ("group", Fit_group.to_json s.group);
                    ])
                t.shards)) );
    ]

let of_json ?(max_batch = 512) j =
  let fail msg = failwith ("Serve.of_json: " ^ msg) in
  let field name =
    match Json.member name j with Some v -> v | None -> fail ("missing " ^ name)
  in
  (match field "version" with
  | Json.Int 1 -> ()
  | Json.Int v -> fail (Printf.sprintf "unsupported snapshot version %d" v)
  | _ -> fail "version: expected int");
  let rule =
    match field "rule" with
    | Json.String s -> (
        match Fit_group.rule_of_code s with
        | Some r -> r
        | None -> fail ("unknown rule " ^ s))
    | _ -> fail "rule: expected string"
  in
  let int name =
    match field name with Json.Int i -> i | _ -> fail (name ^ ": expected int")
  in
  let dims = int "dims" in
  let restore_shard sj =
    let member name =
      match Json.member name sj with
      | Some v -> v
      | None -> fail ("shard: missing " ^ name)
    in
    let gref = ref None in
    let factory store =
      let g = Fit_group.of_json ~store (member "group") in
      gref := Some g;
      Fit_group.policy_of g store
    in
    let eng = Engine.Interactive.of_snapshot factory (member "engine") in
    { eng; group = Option.get !gref }
  in
  let shards =
    match field "shards" with
    | Json.List (_ :: _ as l) -> Array.of_list (List.map restore_shard l)
    | _ -> fail "shards: expected non-empty list"
  in
  let t =
    {
      rule;
      dims;
      salt = int "salt";
      prng = Prng.of_json (field "prng");
      shards;
      live = Hashtbl.create 256;
      max_batch;
      stopped = false;
    }
  in
  (* The live-id table is derivable state: rebuild it from the shards'
     arenas rather than trusting (or storing) a second copy. *)
  Array.iter
    (fun s ->
      let blk = Engine.Interactive.item_block s.eng in
      Item_block.iter_live
        (fun slot ->
          Hashtbl.replace t.live (Item_block.id blk slot)
            (Item_block.departure blk slot))
        blk)
    t.shards;
  t

let snapshot_to_file t path =
  (* Write-then-rename so a crash mid-write never leaves a torn
     snapshot where a good one (or nothing) should be. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n');
  Sys.rename tmp path;
  Metrics.incr m_snapshots

let restore_from_file ?max_batch path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json ?max_batch (Json.parse_exn s)

(* --- command parsing --- *)

type cmd =
  | Place of Item.t
  | Depart of int
  | Stats
  | Snapshot of string
  | Quit
  | Bad of string

exception Parse of string

let perr fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let int_field what s =
  match int_of_string s with
  | n -> n
  | exception Failure _ -> perr "malformed %s %S" what s

let float_field what s =
  match float_of_string s with
  | f -> f
  | exception Failure _ -> perr "malformed %s %S" what s

let parse_place t = function
  | id :: arrival :: departure :: size :: extras ->
      let id = int_field "id" id in
      let arrival = int_field "arrival" arrival in
      let departure = int_field "departure" departure in
      let size_f = float_field "size" size in
      if departure <= arrival then
        perr "item %d has non-positive duration (arrival %d, departure %d)" id
          arrival departure;
      if size_f <= 0.0 then perr "item %d has non-positive size %g" id size_f;
      if size_f > 1.0 then perr "item %d has size %g > 1 (a full bin)" id size_f;
      if List.length extras <> t.dims - 1 then
        perr "item %d carries %d size fields; this daemon packs %d dimension%s"
          id
          (1 + List.length extras)
          t.dims
          (if t.dims = 1 then "" else "s");
      let extra =
        match extras with
        | [] -> Item.no_extra
        | _ ->
            extras
            |> List.mapi (fun k s ->
                   let f = float_field (Printf.sprintf "size%d" (k + 2)) s in
                   if f < 0.0 then
                     perr "item %d has negative size %g in dimension %d" id f
                       (k + 1);
                   if f > 1.0 then
                     perr "item %d has size %g > 1 (a full bin) in dimension %d"
                       id f (k + 1);
                   Load.to_units (Load.of_float f))
            |> Array.of_list
      in
      (try Item.make_vec ~extra ~id ~arrival ~departure ~size:(Load.of_float size_f)
       with Invalid_argument msg -> perr "%s" msg)
  | _ -> perr "place: expected <id> <arrival> <departure> <size> [sizes...]"

let parse_cmd t line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  try
    match words with
    | [] -> Bad "empty command"
    | verb :: rest -> (
        match (String.lowercase_ascii verb, rest) with
        | "place", rest -> Place (parse_place t rest)
        | "depart", [ tick ] -> Depart (int_field "tick" tick)
        | "depart", _ -> Bad "depart: expected one tick argument"
        | "stats", [] -> Stats
        | "snapshot", [ path ] -> Snapshot path
        | "snapshot", _ -> Bad "snapshot: expected one path argument"
        | "quit", [] -> Quit
        | verb, _ -> Bad (Printf.sprintf "unknown command %S" verb))
  with Parse m -> Bad m

(* --- execution --- *)

let stats_line t =
  let cost = ref 0
  and opened = ref 0
  and open_now = ref 0
  and max_open = ref 0
  and items = ref 0
  and clock = ref 0 in
  Array.iter
    (fun s ->
      let store = Engine.Interactive.store s.eng in
      cost := !cost + Bin_store.closed_usage store;
      opened := !opened + Bin_store.bins_opened store;
      open_now := !open_now + Bin_store.open_count store;
      max_open := !max_open + Bin_store.max_open store;
      items := !items + Engine.Interactive.items_arrived s.eng;
      clock := max !clock (Engine.Interactive.now s.eng))
    t.shards;
  Printf.sprintf "ok cost=%d open=%d opened=%d max=%d items=%d clock=%d shards=%d"
    !cost !open_now !opened !max_open !items !clock (Array.length t.shards)

(* Amortized sweep of the live-id table: once it holds more than twice
   the items actually in flight (plus slack), walk it and drop every id
   whose departure its shard has already processed. Each entry is
   inserted once and swept at most once per crossing of the threshold,
   so the daemon's footprint tracks live items even across years of
   churn — the table cannot become the slow leak it exists to prevent. *)
let sweep_live t =
  let in_flight =
    Array.fold_left
      (fun acc s ->
        acc + Item_block.live (Engine.Interactive.item_block s.eng))
      0 t.shards
  in
  if Hashtbl.length t.live > 64 + (2 * in_flight) then begin
    let stale =
      Hashtbl.fold
        (fun id dep acc ->
          if dep <= Engine.Interactive.now t.shards.(shard_of_id t id).eng then
            id :: acc
          else acc)
        t.live []
    in
    List.iter (Hashtbl.remove t.live) stale
  end

let place_one t s (r : Item.t) =
  match Engine.Interactive.arrive t.shards.(s).eng r with
  | bin -> Printf.sprintf "ok %d:%d" s bin
  | exception Invalid_argument msg -> "err " ^ msg

(* A run of consecutive [place] commands fans out across shards: the
   routing (and every response) is a function of the command sequence
   alone, so the per-shard sub-batches can execute on any domain in any
   order — [Pool.map]'s ordered gather puts the responses back in
   arrival positions. Everything else is a barrier handled inline. *)
let exec_places t cmds resp lo hi =
  let nshards = Array.length t.shards in
  let routed = Array.make (hi - lo) (-1) in
  let seen = Hashtbl.create 16 in
  for k = lo to hi - 1 do
    match cmds.(k) with
    | Place r ->
        let s = shard_of_id t r.id in
        if Hashtbl.mem seen r.id then
          resp.(k) <-
            Printf.sprintf "err item id %d already placed in this batch" r.id
        else begin
          match Hashtbl.find_opt t.live r.id with
          | Some dep when dep > Engine.Interactive.now t.shards.(s).eng ->
              resp.(k) <-
                Printf.sprintf "err item id %d is still live (departs at %d)"
                  r.id dep
          | _ ->
              Hashtbl.add seen r.id ();
              routed.(k - lo) <- s
        end
    | _ -> assert false
  done;
  if nshards = 1 then
    for k = lo to hi - 1 do
      if routed.(k - lo) >= 0 then
        match cmds.(k) with
        | Place r -> resp.(k) <- place_one t 0 r
        | _ -> assert false
    done
  else begin
    let work = Array.make nshards [] in
    for k = hi - 1 downto lo do
      let s = routed.(k - lo) in
      if s >= 0 then
        match cmds.(k) with
        | Place r -> work.(s) <- (k, r) :: work.(s)
        | _ -> assert false
    done;
    Pool.with_default (fun pool ->
        Pool.map pool
          (fun s ->
            List.map (fun (k, r) -> (k, place_one t s r)) work.(s))
          (List.init nshards Fun.id))
    |> List.iter (List.iter (fun (k, line) -> resp.(k) <- line))
  end;
  (* Only a placement that actually happened marks its id live; a
     rejected one (arrival in the past) must not poison later reuse of
     the id. *)
  for k = lo to hi - 1 do
    if
      routed.(k - lo) >= 0
      && String.length resp.(k) >= 2
      && String.sub resp.(k) 0 2 = "ok"
    then
      match cmds.(k) with
      | Place r -> Hashtbl.replace t.live r.id r.departure
      | _ -> assert false
  done

let exec_one t = function
  | Place _ -> assert false (* runs of places go through exec_places *)
  | Depart tick ->
      Array.iter
        (fun s ->
          let now = Engine.Interactive.now s.eng in
          if tick > now then Engine.Interactive.advance_to s.eng tick)
        t.shards;
      let open_now =
        Array.fold_left
          (fun acc s -> acc + Engine.Interactive.open_count s.eng)
          0 t.shards
      in
      Printf.sprintf "ok open=%d" open_now
  | Stats -> stats_line t
  | Snapshot path -> (
      match snapshot_to_file t path with
      | () -> Printf.sprintf "ok snapshot %s" path
      | exception Sys_error msg -> "err snapshot: " ^ msg
      | exception Invalid_argument msg -> "err snapshot: " ^ msg)
  | Quit ->
      t.stopped <- true;
      "ok bye"
  | Bad msg -> "err " ^ msg

let exec_batch t lines =
  let n = Array.length lines in
  let cmds = Array.map (fun l -> parse_cmd t l) lines in
  let resp = Array.make n "" in
  let i = ref 0 in
  while !i < n do
    if t.stopped then begin
      resp.(!i) <- "err daemon is shutting down";
      incr i
    end
    else
      match cmds.(!i) with
      | Place _ ->
          let j = ref !i in
          while
            !j < n && match cmds.(!j) with Place _ -> true | _ -> false
          do
            incr j
          done;
          exec_places t cmds resp !i !j;
          Metrics.add m_places (!j - !i);
          i := !j
      | c ->
          resp.(!i) <- exec_one t c;
          incr i
  done;
  Metrics.add m_commands n;
  Array.iter (fun r -> if String.length r >= 3 && String.sub r 0 3 = "err" then Metrics.incr m_errors) resp;
  sweep_live t;
  resp

(* --- the serving loop --- *)

type conn = {
  recv : bytes -> int -> int -> int;
      (** blocking read into the byte range; 0 means end of input *)
  ready : unit -> bool;
      (** input available right now without blocking? *)
  send : string -> unit;  (** queue one response line *)
  flush : unit -> unit;  (** push queued responses to the client *)
}

let run t conn =
  let chunk = Bytes.create 65536 in
  let partial = Buffer.create 256 in
  let lines : string Vec.t = Vec.create () in
  let eof = ref false in
  let pull () =
    let n = conn.recv chunk 0 (Bytes.length chunk) in
    if n = 0 then eof := true
    else
      for i = 0 to n - 1 do
        let c = Bytes.unsafe_get chunk i in
        if c = '\n' then begin
          let line = String.trim (Buffer.contents partial) in
          Buffer.clear partial;
          (* Blank lines and # comments are protocol chaff, not
             commands: dropped without a response, matching the CSV
             reader's tolerance. *)
          if line <> "" && line.[0] <> '#' then Vec.push lines line
        end
        else Buffer.add_char partial c
      done
  in
  while not (t.stopped || (!eof && Vec.length lines = 0)) do
    (* Drain whatever the client has already written (batching), but
       never block while holding unanswered commands. *)
    while
      (not !eof)
      && Vec.length lines < t.max_batch
      && (Vec.length lines = 0 || conn.ready ())
    do
      pull ()
    done;
    if !eof && String.trim (Buffer.contents partial) <> "" then begin
      (* Same framing rule as Io.of_channel: a final line the client
         never terminated is an error, not a command parsed from half
         the bytes. *)
      Buffer.clear partial;
      conn.send "err truncated final line (no trailing newline)";
      conn.flush ()
    end;
    if Vec.length lines > 0 then begin
      let batch = Vec.to_array lines in
      Vec.clear_shrink lines;
      Metrics.incr m_batches;
      Metrics.observe m_batch_fill (Array.length batch);
      let resp = exec_batch t batch in
      Array.iter conn.send resp;
      conn.flush ()
    end
  done
