(** Long-lived sharded placement daemon: the core behind [dbp serve].

    A daemon is a set of independent shards, each a retire-mode
    {!Engine.Interactive} packing with one Any-Fit {!Fit_group} (rules
    FF/BF/WF/NF — the policies with exact snapshot codecs). Item ids
    route to shards by a salted hash, so a client's placements are
    sticky across the daemon's whole life, including restarts: the salt
    travels in the snapshot.

    {2 Protocol}

    Line-oriented, one response line per command line (blank lines and
    [#] comments are dropped without a response):

    {v
    place <id> <arrival> <departure> <size> [<size2> ...]
                       -> ok <shard>:<bin> | err <reason>
    depart <tick>      -> ok open=<n>        (process departures <= tick)
    stats              -> ok cost=... open=... opened=... max=...
                             items=... clock=... shards=...
    snapshot <path>    -> ok snapshot <path> (atomic: write tmp, rename)
    quit               -> ok bye
    v}

    Sizes are floats in (0, 1] as in the CSV format; a vector daemon
    ([dims > 1]) requires exactly [dims] size fields per place. Item
    ids must be unique among {e live} items; an id may be reused once
    its departure tick has been processed. [stats] reads the live
    store aggregates — [cost] counts {e closed} bins' usage, so after
    [depart <horizon>] past every departure it equals the offline
    {!Engine.run} cost of the same sequence (the [dbp drive] check).

    {2 Determinism}

    Responses are a pure function of the command sequence: batch
    boundaries (client timing) and the [--jobs] fan-out never change a
    byte. A daemon restored from a snapshot answers the remaining
    commands byte-identically to one that never stopped. *)


type t

val create :
  ?shards:int ->
  ?dims:int ->
  ?seed:int ->
  ?max_batch:int ->
  Dbp_binpack.Heuristics.rule ->
  t
(** Fresh daemon: [shards] (default 1) engines of [dims] (default 1)
    dimensions, routing salt drawn from a PRNG seeded with [seed]
    (default 0), batches capped at [max_batch] (default 512) commands.
    Raises [Invalid_argument] on non-positive values. *)

val shard_count : t -> int

val stopped : t -> bool
(** Set once a [quit] command was executed. *)

val exec_batch : t -> string array -> string array
(** Execute command lines, one response per line (same order).
    Consecutive [place] commands fan out across shards through the
    default {!Dbp_util.Pool}; everything else is a barrier. How a
    command sequence is cut into batches is unobservable. *)

val stats_line : t -> string
(** The [stats] response, without issuing a command. *)

val to_json : t -> Dbp_util.Json.t
(** Full-state snapshot: rule, dims, routing salt, PRNG state, and per
    shard the engine snapshot ({!Engine.Interactive.snapshot}) plus the
    fit-group snapshot ({!Fit_group.to_json}). *)

val of_json : ?max_batch:int -> Dbp_util.Json.t -> t
(** Rebuild a daemon from {!to_json} output; the live-id table is
    rederived from the restored arenas. Raises [Failure] on malformed
    input. *)

val snapshot_to_file : t -> string -> unit
(** {!to_json} to a file, atomically (write [<path>.tmp], rename). *)

val restore_from_file : ?max_batch:int -> string -> t

(** The daemon's whole view of its client. [recv] must block until
    input is available (returning 0 at end of input); [ready] must
    answer "is input available right now?" without blocking — the
    batching signal. *)
type conn = {
  recv : bytes -> int -> int -> int;
  ready : unit -> bool;
  send : string -> unit;
  flush : unit -> unit;
}

val run : t -> conn -> unit
(** Serve the connection until [quit] or end of input: repeatedly drain
    every line the client has already written (up to [max_batch]),
    execute the batch, send the responses, flush. Never blocks while
    holding unanswered commands. An unterminated final line is answered
    with an error, mirroring {!Io.of_channel}'s framing rule. *)
