(* Steady-state GC settings for the streaming event loop.

   The loop allocates a bounded working set (short-lived Seq cells and
   PRNG floats from the source, mostly) at a high rate while the
   simulator's own structures are preallocated arenas. The knobs barely
   matter at that profile — and that is the measured finding, not a
   failure to measure: sweeping minor heaps from 512k to 32M words on
   the pinned 1M-item cloud trace (see DESIGN.md "Hot-path
   representation"), a 2M-word minor heap with 200% space overhead was
   the consistent best at ~3-5% over stock, while big minor heaps
   (16M-32M words) ran *slower* than stock — the nursery outgrows cache
   and every allocation touches cold lines. The default below is the
   measured optimum; `--gc` / DBP_GC exist precisely so a different box
   can re-measure and override. *)

let stream_default = "minor=2M,space=200"

let parse_words s op =
  let fail () = invalid_arg ("Gc_tune." ^ op ^ ": bad size " ^ String.escaped s) in
  if s = "" then fail ();
  let n = String.length s in
  let num, scale =
    match s.[n - 1] with
    | 'k' | 'K' -> (String.sub s 0 (n - 1), 1024)
    | 'm' | 'M' -> (String.sub s 0 (n - 1), 1024 * 1024)
    | '0' .. '9' -> (s, 1)
    | _ -> fail ()
  in
  match int_of_string_opt num with
  | Some v when v > 0 && v <= max_int / scale -> v * scale
  | _ -> fail ()

(* "minor=32M,space=200" -> settings; unknown keys, empty fields and
   malformed numbers all raise so a typo in DBP_GC is loud, not a silent
   run at stock settings. *)
let parse spec =
  let fields =
    String.split_on_char ',' spec
    |> List.filter_map (fun f ->
           match String.trim f with "" -> None | f -> Some f)
  in
  if fields = [] then invalid_arg "Gc_tune.parse: empty spec";
  List.map
    (fun field ->
      match String.index_opt field '=' with
      | None -> invalid_arg ("Gc_tune.parse: expected key=value in " ^ String.escaped field)
      | Some i ->
          let key = String.trim (String.sub field 0 i) in
          let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
          (match key with
          | "minor" -> `Minor (parse_words v "parse")
          | "space" -> (
              match int_of_string_opt v with
              | Some p when p >= 1 -> `Space p
              | _ -> invalid_arg ("Gc_tune.parse: bad space_overhead " ^ String.escaped v))
          | _ -> invalid_arg ("Gc_tune.parse: unknown key " ^ String.escaped key)))
    fields

let apply spec =
  let settings = parse spec in
  let c = Gc.get () in
  let c =
    List.fold_left
      (fun (c : Gc.control) -> function
        | `Minor words -> { c with minor_heap_size = words }
        | `Space pct -> { c with space_overhead = pct })
      c settings
  in
  Gc.set c

let describe spec =
  parse spec
  |> List.map (function
       | `Minor words -> Printf.sprintf "minor_heap_size=%d words" words
       | `Space pct -> Printf.sprintf "space_overhead=%d%%" pct)
  |> String.concat ", "
