(** Runtime GC tuning for long steady-state runs.

    The streaming simulator has a flat allocation profile: a bounded
    per-item working set that dies young, for millions of items. A spec
    string such as ["minor=2M"] or ["minor=2M,space=200"] names the two
    knobs that matter:

    - [minor=<n>[K|M]] — minor heap size in {e words} (so [2M] is
      16 MiB on 64-bit). A moderately larger nursery spreads minor
      collections out; past cache size it backfires (measured: 16M+
      words is slower than stock).
    - [space=<pct>] — [Gc.space_overhead] percentage; higher defers
      major slices.

    Unknown keys or malformed values raise [Invalid_argument] — a typo
    in [DBP_GC] should fail loudly, not silently run at stock
    settings. *)

val stream_default : string
(** The spec `dbp stream` applies when neither [--gc] nor the [DBP_GC]
    environment variable overrides it; chosen by measurement on the
    pinned 1M-item cloud trace (see DESIGN.md). *)

val apply : string -> unit
(** Parse the spec and [Gc.set] the named knobs, leaving every other
    field of the current [Gc.control] untouched. *)

val describe : string -> string
(** Human-readable rendering of a spec ("minor_heap_size=… words,
    space_overhead=…%") for [--explain]-style logging. Raises on the
    same inputs [apply] rejects. *)
