type 'a t = { cmp : 'a -> 'a -> int; v : 'a Vec.t }

let create ~cmp = { cmp; v = Vec.create () }
let length h = Vec.length h.v
let is_empty h = Vec.is_empty h.v

let swap h i j =
  let x = Vec.get h.v i in
  Vec.set h.v i (Vec.get h.v j);
  Vec.set h.v j x

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.v i) (Vec.get h.v parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.v in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < n && h.cmp (Vec.get h.v l) (Vec.get h.v i) < 0 then l else i in
  let smallest =
    if r < n && h.cmp (Vec.get h.v r) (Vec.get h.v smallest) < 0 then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let add h x =
  Vec.push h.v x;
  sift_up h (Vec.length h.v - 1)

let peek h = if is_empty h then None else Some (Vec.get h.v 0)

let pop h =
  let n = Vec.length h.v in
  if n = 0 then None
  else begin
    let top = Vec.get h.v 0 in
    let last = Vec.pop h.v in
    if n > 1 then begin
      Vec.set h.v 0 last;
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty"

(* Floyd's bottom-up heapify: sift each internal node down, deepest
   first — O(n) total instead of n sequential [add]s' O(n log n). *)
let of_list ~cmp l =
  let h = { cmp; v = Vec.of_list l } in
  let n = Vec.length h.v in
  for i = (n / 2) - 1 downto 0 do
    sift_down h i
  done;
  h

let drain h =
  let rec loop acc = match pop h with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []
