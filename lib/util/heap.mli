(** Binary min-heaps over an arbitrary ordering.

    Used for the simulator event queue and for best-first search in the
    exact packers. Not stable: ties are popped in unspecified order, so
    callers needing determinism must break ties inside [cmp]. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element popped first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}; raises [Invalid_argument] when empty. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Build in O(n) via Floyd's bottom-up heapify (vs O(n log n) for
    repeated {!add}). *)

val drain : 'a t -> 'a list
(** Pop everything; the result is sorted by [cmp]. Empties the heap. *)
