(* Open-addressing int -> int hash map with linear probing and
   backward-shift deletion. See the .mli for the contract; the points
   that matter for correctness:

   - [keys] uses [empty_key] (min_int) as the vacant marker, so min_int
     itself is rejected as a key.
   - Capacity is a power of two and the live count is kept at or below
     half of it, so every probe sequence terminates at a vacant cell.
   - Deletion back-shifts the cluster instead of leaving tombstones: an
     element is moved one step towards its home slot whenever its probe
     distance allows it, which keeps lookups O(cluster) forever — the
     streaming engine adds and removes an entry per item, millions of
     times, and must not degrade. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable len : int;
}

let empty_key = min_int

let check_key k op =
  if k = empty_key then invalid_arg ("Imap." ^ op ^ ": min_int is not a valid key")

let make_arrays cap = (Array.make cap empty_key, Array.make cap 0)

let create ?(capacity = 16) () =
  let cap = max 8 (Ints.pow2 (Ints.ceil_log2 (max 1 capacity))) in
  let keys, vals = make_arrays cap in
  { keys; vals; mask = cap - 1; len = 0 }

let length t = t.len
let hash k = Ints.splitmix_mix k land max_int

(* Slot of [k], or the vacant slot its probe ended at ([keys.(i)] tells
   which). Termination: load factor <= 1/2 guarantees a vacant cell. *)
let probe t k =
  let mask = t.mask in
  let keys = t.keys in
  let rec scan i =
    let cur = Array.unsafe_get keys i in
    if cur = k || cur = empty_key then i else scan ((i + 1) land mask)
  in
  scan (hash k land mask)

let rec insert_fresh t k v =
  (* Grow before the load factor crosses 1/2. *)
  if 2 * (t.len + 1) > t.mask + 1 then begin
    let cap' = 2 * (t.mask + 1) in
    let keys, vals = (t.keys, t.vals) in
    let keys', vals' = make_arrays cap' in
    let old = { keys; vals; mask = t.mask; len = t.len } in
    t.keys <- keys';
    t.vals <- vals';
    t.mask <- cap' - 1;
    t.len <- 0;
    for i = 0 to old.mask do
      let k = old.keys.(i) in
      if k <> empty_key then insert_fresh t k old.vals.(i)
    done
  end;
  let i = probe t k in
  if t.keys.(i) = empty_key then t.len <- t.len + 1;
  t.keys.(i) <- k;
  t.vals.(i) <- v

let set t k v =
  check_key k "set";
  insert_fresh t k v

let add_new t k v =
  check_key k "add_new";
  let i = probe t k in
  if t.keys.(i) = k then false
  else begin
    insert_fresh t k v;
    true
  end

let mem t k =
  check_key k "mem";
  t.keys.(probe t k) = k

let find t k =
  check_key k "find";
  let i = probe t k in
  if t.keys.(i) = k then t.vals.(i) else raise Not_found

let find_opt t k =
  check_key k "find_opt";
  let i = probe t k in
  if t.keys.(i) = k then Some t.vals.(i) else None

let find_default t k default =
  check_key k "find_default";
  let i = probe t k in
  if t.keys.(i) = k then t.vals.(i) else default

(* Close the hole at [i]: walk the cluster to its right, moving back any
   element whose home slot is not in (i, j] — i.e. whose probe path runs
   through [i]. An element sitting at its home slot never moves. *)
let backshift t i =
  let mask = t.mask in
  let rec loop i j =
    let j = (j + 1) land mask in
    let k = t.keys.(j) in
    if k = empty_key then t.keys.(i) <- empty_key
    else begin
      let home = hash k land mask in
      (* [k] may move into the hole iff the hole lies on its probe path:
         distance home->i <= distance home->j (cyclically). *)
      if (i - home) land mask <= (j - home) land mask then begin
        t.keys.(i) <- k;
        t.vals.(i) <- t.vals.(j);
        loop j j
      end
      else loop i j
    end
  in
  loop i i

let take t k =
  check_key k "take";
  let i = probe t k in
  if t.keys.(i) <> k then raise Not_found;
  let v = t.vals.(i) in
  t.len <- t.len - 1;
  backshift t i;
  v

let remove t k = match take t k with _ -> () | exception Not_found -> ()

let iter f t =
  for i = 0 to t.mask do
    let k = t.keys.(i) in
    if k <> empty_key then f k t.vals.(i)
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (t.mask + 1) empty_key;
  t.len <- 0
