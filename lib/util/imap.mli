(** Unboxed [int -> int] hash map for the simulator's hot paths.

    [Hashtbl] allocates a bucket cell per binding and hashes through a C
    call; this map is two parallel [int array]s with open addressing
    (linear probing, {!Ints.splitmix_mix} as the hash, backward-shift
    deletion instead of tombstones), so the add-lookup-remove cycle the
    event loop performs once per item allocates nothing and stays
    cache-local. The streaming engine's item -> bin table lives here.

    Keys are arbitrary ints except [min_int] (the internal vacant
    marker); passing [min_int] raises [Invalid_argument]. Not
    thread-safe; confine a map to one domain. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity is rounded up to a power of two (>= 8). The map
    grows by doubling; the load factor never exceeds 1/2. *)

val length : t -> int

val set : t -> int -> int -> unit
(** Bind, replacing any existing binding. *)

val add_new : t -> int -> int -> bool
(** Bind only if absent: returns [false] (and leaves the map unchanged)
    when the key is already bound — the one-probe "insert unless
    duplicate" the bin store's packed-item check needs. *)

val mem : t -> int -> bool

val find : t -> int -> int
(** Raises [Not_found]. *)

val find_opt : t -> int -> int option

val find_default : t -> int -> int -> int
(** [find_default t k d] is the binding of [k], or [d] when absent —
    one probe, no option cell. *)

val take : t -> int -> int
(** Remove the binding and return its value in one probe sequence.
    Raises [Not_found] if absent. *)

val remove : t -> int -> unit
(** Remove if present. *)

val iter : (int -> int -> unit) -> t -> unit
(** Unspecified order. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit
(** Drop every binding, keeping the backing arrays. *)
