let is_pow2 n =
  if n <= 0 then invalid_arg "Ints.is_pow2: non-positive argument";
  n land (n - 1) = 0

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Ints.pow2: exponent out of [0, 61]";
  1 lsl k

let floor_log2 n =
  if n <= 0 then invalid_arg "Ints.floor_log2: non-positive argument";
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n <= 0 then invalid_arg "Ints.ceil_log2: non-positive argument";
  let k = floor_log2 n in
  if n = 1 lsl k then k else k + 1

let ntz n =
  if n <= 0 then invalid_arg "Ints.ntz: non-positive argument";
  floor_log2 (n land (-n))

let popcount n =
  if n < 0 then invalid_arg "Ints.popcount: negative argument";
  let rec loop acc n = if n = 0 then acc else loop (acc + (n land 1)) (n lsr 1) in
  loop 0 n

(* Finalizer of splitmix64, truncated to OCaml's 63-bit ints. This is
   the one hash the hot paths share: the solver's count-vector keys and
   [Imap]'s open-addressing probe both mix through it. Constants are
   62-bit truncations of the usual 64-bit mixers; the result may be
   negative (callers mask with [land max_int] when they need a
   non-negative value). *)
let splitmix_mix z =
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 29) in
  let z = z * 0x1B03738712FAD5C9 in
  z lxor (z lsr 32)

let ceil_div a b =
  if a < 0 then invalid_arg "Ints.ceil_div: negative numerator";
  if b <= 0 then invalid_arg "Ints.ceil_div: non-positive denominator";
  (* Not (a + b - 1) / b: that wraps when a + b - 1 > max_int (e.g.
     ceil_div max_int max_int returned 0). The decrement form is equal
     on every non-overflowing input and total on the whole domain. *)
  if a = 0 then 0 else ((a - 1) / b) + 1

let ceil_to_multiple a b = ceil_div a b * b
