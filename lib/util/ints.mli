(** Bit-level integer utilities used throughout the packing simulator.

    All functions operate on non-negative [int] values (the simulator
    timeline and load arithmetic are integer-based); arguments outside the
    documented domain raise [Invalid_argument]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a power of two. [n] must be positive. *)

val pow2 : int -> int
(** [pow2 k] is [2^k]. [k] must be in [0, 61]. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the largest [k] with [2^k <= n]. [n] must be positive. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [n <= 2^k]. [n] must be
    positive. [ceil_log2 1 = 0]. *)

val ntz : int -> int
(** [ntz n] is the number of trailing zero bits of [n]; the largest [k]
    such that [2^k] divides [n]. [n] must be positive. *)

val popcount : int -> int
(** [popcount n] is the number of set bits in [n]. [n] must be
    non-negative. *)

val splitmix_mix : int -> int
(** Splitmix64-style avalanche mixer over the full [int] range: every
    input bit affects every output bit. Deterministic and total — any
    [int] is a valid argument, including 0, negatives and [max_int]; the
    result may be negative (mask with [land max_int] for a hash).
    [splitmix_mix 0 = 0] is the one fixed point callers must not feed
    back blindly (hash users xor in a length or salt first). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] over the integers. [a] must be
    non-negative, [b] positive. *)

val ceil_to_multiple : int -> int -> int
(** [ceil_to_multiple a b] is the smallest multiple of [b] that is [>= a].
    [a] must be non-negative, [b] positive. *)
