type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- writer ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A float must stay a valid JSON number: NaN/inf become null. An
   integral value prints via %.12g without '.' or exponent (e.g. 3) and
   would be read back as an Int, so force a fraction part — the
   Float/Int distinction must survive a print/parse roundtrip. *)
let float_to buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec write ~indent ~level buf v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c = Buffer.add_char buf c; if indent then Buffer.add_char buf '\n' in
  let sep_close c =
    if indent then begin
      Buffer.add_char buf '\n';
      pad level
    end;
    Buffer.add_char buf c
  in
  let items f l =
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          if indent then Buffer.add_char buf '\n'
        end;
        pad (level + 1);
        f x)
      l
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List l ->
      sep_open '[';
      items (write ~indent ~level:(level + 1) buf) l;
      sep_close ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      sep_open '{';
      items
        (fun (k, x) ->
          escape_to buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write ~indent ~level:(level + 1) buf x)
        fields;
      sep_close '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_hum v = render ~indent:true v

(* ---- parser ---- *)

exception Fail of int * string

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    let got = next () in
    if got <> c then fail (Printf.sprintf "expected %C, got %C" c got)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* combine a surrogate pair when one follows *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "invalid low surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | _ -> fail "invalid escape");
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then incr pos;
    let digits () =
      let seen = ref false in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos;
        seen := true
      done;
      if not !seen then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_int := false;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_int := false;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match next () with
            | ',' -> fields (f :: acc)
            | '}' -> Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
