(** Minimal JSON tree, writer, and parser.

    The observability layer ([Metrics], [Trace]) and the bench harness
    emit machine-readable dumps; the test suite parses them back. No
    external JSON dependency is available in the toolchain, so this
    module provides the small subset needed: a value tree, a
    deterministic writer (object fields are emitted in the order given),
    and a strict recursive-descent parser sufficient to round-trip
    anything the writer produces (and ordinary JSON from other tools).

    Not supported: streaming, duplicate-key detection, numbers outside
    the OCaml [int]/[float] ranges. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Non-finite floats are written as
    [null] so the output is always valid JSON. *)

val to_string_hum : t -> string
(** Multi-line rendering with two-space indentation, for files meant to
    be read by people (metrics dumps). *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed).
    Numbers without a fraction or exponent that fit in an OCaml [int]
    parse as [Int], everything else as [Float]. [\uXXXX] escapes are
    decoded to UTF-8 (surrogate pairs supported). The error string
    includes the byte offset. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] on
    missing keys and non-objects. *)
