type t = int

let capacity = 1_000_000_000
let zero = 0
let one = capacity

let of_units u =
  if u < 0 then invalid_arg "Load.of_units: negative";
  u

let to_units l = l

let of_fraction ~num ~den =
  if num < 0 then invalid_arg "Load.of_fraction: negative numerator";
  if den <= 0 then invalid_arg "Load.of_fraction: non-positive denominator";
  (* [num * capacity] silently wraps past [max_int / capacity]; reject
     instead of returning a garbage (possibly negative) load. *)
  if num > max_int / capacity then invalid_arg "Load.of_fraction: numerator overflows";
  num * capacity / den

let of_float f =
  (* NaN slides through the clamp ([Float.max 0.0 nan] is [nan]) and
     [int_of_float nan] is unspecified; reject it before clamping. The
     clamp still absorbs +/-infinity and negatives. *)
  if Float.is_nan f then invalid_arg "Load.of_float: nan";
  let f = Float.min 1.0 (Float.max 0.0 f) in
  int_of_float (Float.round (f *. float_of_int capacity))

let to_float l = float_of_int l /. float_of_int capacity

let add a b =
  (* Both operands are non-negative, so overflow is exactly
     [a + b > max_int], tested without wrapping. *)
  if a > max_int - b then invalid_arg "Load.add: overflow";
  a + b

let add_sat a b = if a > max_int - b then max_int else a + b

let sub a b =
  if b > a then invalid_arg "Load.sub: negative result";
  a - b

let scale l k =
  if k < 0 then invalid_arg "Load.scale: negative factor";
  (* [l * k] silently wraps past [max_int / l]; reject instead of
     returning a garbage (possibly negative) load — same decrement-form
     guard as [of_fraction]. *)
  if l > 0 && k > max_int / l then invalid_arg "Load.scale: overflow";
  l * k

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : int) (b : int) = a <= b
let ( < ) (a : int) (b : int) = a < b
let fits l ~into = into + l <= one

let residual used =
  if used > one then invalid_arg "Load.residual: over capacity";
  one - used

let pp ppf l = Format.fprintf ppf "%.6g" (to_float l)
