(** Fixed-point item sizes (bin loads).

    A bin has capacity 1; item sizes live in [0, 1]. Floating-point sizes
    would make "fits in this bin" and "total load strictly exceeds 1"
    depend on rounding noise — e.g. [log mu] items of size [1 /. log mu]
    can sum to just above 1.0 and spuriously open a bin, breaking the
    exact CDFF row-count identity of Corollary 5.8. Sizes are therefore
    integers out of {!capacity}.

    Values are non-negative but deliberately not capped at {!one}: sums of
    loads (e.g. HA's per-type gauges, [S_t] profiles) reuse the type. *)

type t = private int

val capacity : int
(** Integer units per unit of bin capacity (10^9). *)

val zero : t
val one : t
(** A full bin. *)

val of_units : int -> t
(** Raw constructor; [units] must be non-negative. *)

val to_units : t -> int

val of_fraction : num:int -> den:int -> t
(** [of_fraction ~num ~den] is [num/den] of a bin, rounded down so that
    [den] items of size [of_fraction ~num:1 ~den] always fit in one bin.
    Requires [num >= 0], [den > 0], and [num <= max_int / capacity]
    (anything larger would overflow the intermediate product and is
    rejected with [Invalid_argument]). *)

val of_float : float -> t
(** Nearest fixed-point value; clamps to [0, 1]. NaN is rejected with
    [Invalid_argument] (it would otherwise slide through the clamp and
    hit the unspecified [int_of_float nan]); infinities and negatives
    clamp like any other out-of-range float. *)

val to_float : t -> float

val add : t -> t -> t
(** Raises [Invalid_argument] if the sum exceeds [max_int] (long
    accumulations, e.g. HA per-type gauges over huge instances, would
    otherwise wrap silently negative). *)

val add_sat : t -> t -> t
(** Saturating variant of {!add} for accumulation paths ([S_t]
    profiles, running totals) where a pinned ceiling beats an
    exception: clips at [max_int] instead of raising. *)

val sub : t -> t -> t
(** [sub a b] requires [b <= a]. *)

val scale : t -> int -> t
(** [scale l k] is [k] copies of [l]; [k] must be non-negative and
    [l * k] must not exceed [max_int] ([Invalid_argument] otherwise,
    same decrement-form guard as {!of_fraction}). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val fits : t -> into:t -> bool
(** [fits l ~into:used] iff a bin already holding [used] can accept [l],
    i.e. [used + l <= one]. *)

val residual : t -> t
(** [residual used] is the free space [one - used] of a bin holding
    [used]; requires [used <= one]. *)

val pp : Format.formatter -> t -> unit
(** Prints as a decimal fraction of a bin, e.g. [0.25]. *)
