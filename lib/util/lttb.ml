(* Largest-Triangle-Three-Buckets downsampling (Steinarsson, 2013) over
   (tick, value) samples, plus the bounded streaming buffer the
   simulation engine records its open-bins series through. *)

let area (ax, ay) (bx, by) (cx, cy) =
  (* Twice the triangle area; only compared, never reported, so floats
     are fine even for multi-million-tick x coordinates. *)
  Float.abs
    (((ax -. cx) *. (by -. ay)) -. ((ax -. bx) *. (cy -. ay)))

let downsample samples ~cap =
  if cap < 3 then invalid_arg "Lttb.downsample: cap < 3";
  let n = Array.length samples in
  if n <= cap then Array.copy samples
  else begin
    let fx i = float_of_int (fst samples.(i))
    and fy i = float_of_int (snd samples.(i)) in
    let out = Array.make cap samples.(0) in
    (* cap-2 equal buckets over the n-2 interior points; the first and
       last samples are always kept. *)
    let every = float_of_int (n - 2) /. float_of_int (cap - 2) in
    let bucket_start i = 1 + int_of_float (float_of_int i *. every) in
    let a = ref 0 in
    for i = 0 to cap - 3 do
      let lo = bucket_start i and hi = min (bucket_start (i + 1)) (n - 1) in
      (* Anchor the triangle's third corner on the next bucket's
         centroid (the last point when this is the final bucket). *)
      let nlo = hi and nhi = if i = cap - 3 then n else min (bucket_start (i + 2)) (n - 1) in
      let nhi = max nhi (nlo + 1) in
      let cx = ref 0.0 and cy = ref 0.0 in
      for j = nlo to nhi - 1 do
        cx := !cx +. fx j;
        cy := !cy +. fy j
      done;
      let m = float_of_int (nhi - nlo) in
      let c = (!cx /. m, !cy /. m) in
      let p = (fx !a, fy !a) in
      let best = ref lo and best_area = ref (-1.0) in
      for j = lo to max lo (hi - 1) do
        let ar = area p (fx j, fy j) c in
        if ar > !best_area then begin
          best := j;
          best_area := ar
        end
      done;
      out.(i + 1) <- samples.(!best);
      a := !best
    done;
    out.(cap - 1) <- samples.(n - 1);
    out
  end

type t = { cap : int option; buf : (int * int) Vec.t }

let create ?cap () =
  (match cap with
  | Some c when c < 3 -> invalid_arg "Lttb.create: cap < 3"
  | _ -> ());
  { cap; buf = Vec.create () }

let length t = Vec.length t.buf
let is_empty t = Vec.is_empty t.buf
let last t = Vec.last t.buf
let set_last t s = Vec.set t.buf (Vec.length t.buf - 1) s

let push t s =
  Vec.push t.buf s;
  match t.cap with
  | Some cap when Vec.length t.buf >= 2 * cap ->
      (* Amortized O(1): each decimation halves the buffer, so it runs
         once per [cap] pushes. [Vec.clear] keeps the backing array. *)
      let d = downsample (Vec.to_array t.buf) ~cap in
      Vec.clear t.buf;
      Array.iter (Vec.push t.buf) d
  | _ -> ()

let to_array t =
  match t.cap with
  | Some cap when Vec.length t.buf > cap -> downsample (Vec.to_array t.buf) ~cap
  | _ -> Vec.to_array t.buf
