(* Largest-Triangle-Three-Buckets downsampling (Steinarsson, 2013) over
   (tick, value) samples, plus the bounded streaming buffer the
   simulation engine records its open-bins series through.

   The streaming buffer stores ticks and values in two parallel int
   vectors rather than one [(int * int) Vec.t]: the engine pushes two
   samples per simulated item, and a tuple per push is the single
   largest allocation source left on the hot path. The decimation core
   below therefore works in terms of kept {e indices}, so both the
   boxed one-shot API and the unboxed buffer share it. *)

(* Indices of the samples LTTB keeps: strictly increasing, starts at 0,
   ends at n-1, length exactly [cap]. Samples are two parallel int
   arrays — passing arrays (not accessor closures) keeps every float
   here a local the compiler leaves unboxed; with a closure, each
   coordinate read would box its float result, and decimation runs
   amortized on every capped push. The [fbuf] cells carry the two
   accumulators that must survive a loop (float-array storage is
   unboxed; a [float ref] would box on every update). Triangle areas
   are compared, never reported, so float precision is fine even for
   multi-million-tick x coordinates. Requires n > cap >= 3. *)
let select ~xs ~ys ~n ~cap =
  let out = Array.make cap 0 in
  (* cap-2 equal buckets over the n-2 interior points; the first and
     last samples are always kept. *)
  let every = float_of_int (n - 2) /. float_of_int (cap - 2) in
  let bucket_start i = 1 + int_of_float (float_of_int i *. every) in
  let imin (a : int) b = if a <= b then a else b in
  let imax (a : int) b = if a >= b then a else b in
  let fbuf = Array.make 2 0.0 in
  let a = ref 0 in
  for i = 0 to cap - 3 do
    let lo = bucket_start i and hi = imin (bucket_start (i + 1)) (n - 1) in
    (* Anchor the triangle's third corner on the next bucket's centroid
       (the last point when this is the final bucket). *)
    let nlo = hi
    and nhi = if i = cap - 3 then n else imin (bucket_start (i + 2)) (n - 1) in
    let nhi = imax nhi (nlo + 1) in
    fbuf.(0) <- 0.0;
    fbuf.(1) <- 0.0;
    for j = nlo to nhi - 1 do
      fbuf.(0) <- fbuf.(0) +. float_of_int xs.(j);
      fbuf.(1) <- fbuf.(1) +. float_of_int ys.(j)
    done;
    let m = float_of_int (nhi - nlo) in
    let cx = fbuf.(0) /. m and cy = fbuf.(1) /. m in
    let px = float_of_int xs.(!a) and py = float_of_int ys.(!a) in
    let best = ref lo in
    fbuf.(0) <- -1.0 (* best area so far *);
    for j = lo to imax lo (hi - 1) do
      let bx = float_of_int xs.(j) and by = float_of_int ys.(j) in
      let ar = Float.abs (((px -. cx) *. (by -. py)) -. ((px -. bx) *. (cy -. py))) in
      if ar > fbuf.(0) then begin
        best := j;
        fbuf.(0) <- ar
      end
    done;
    out.(i + 1) <- !best;
    a := !best
  done;
  out.(cap - 1) <- n - 1;
  out

let downsample samples ~cap =
  if cap < 3 then invalid_arg "Lttb.downsample: cap < 3";
  let n = Array.length samples in
  if n <= cap then Array.copy samples
  else
    let xs = Array.map fst samples and ys = Array.map snd samples in
    let idx = select ~xs ~ys ~n ~cap in
    Array.map (fun i -> samples.(i)) idx

type t = { cap : int option; ticks : int Vec.t; vals : int Vec.t }

let create ?cap () =
  (match cap with
  | Some c when c < 3 -> invalid_arg "Lttb.create: cap < 3"
  | _ -> ());
  { cap; ticks = Vec.create (); vals = Vec.create () }

let length t = Vec.length t.ticks
let is_empty t = Vec.is_empty t.ticks
let last t = (Vec.last t.ticks, Vec.last t.vals)
let last_tick t = Vec.last t.ticks

let set_last_s t ~tick ~value =
  let i = Vec.length t.ticks - 1 in
  Vec.set t.ticks i tick;
  Vec.set t.vals i value

let set_last t (tick, value) = set_last_s t ~tick ~value

(* Decimate the buffer in place: the kept indices are strictly
   increasing, so compacting left-to-right never overwrites a sample
   still to be read. *)
let decimate t cap =
  let n = Vec.length t.ticks in
  let xs = Vec.to_array t.ticks and ys = Vec.to_array t.vals in
  let idx = select ~xs ~ys ~n ~cap in
  Array.iteri
    (fun k i ->
      Vec.set t.ticks k xs.(i);
      Vec.set t.vals k ys.(i))
    idx;
  Vec.truncate t.ticks cap;
  Vec.truncate t.vals cap

let push_s t ~tick ~value =
  Vec.push t.ticks tick;
  Vec.push t.vals value;
  match t.cap with
  | Some cap when Vec.length t.ticks >= 2 * cap ->
      (* Amortized O(1): each decimation halves the buffer, so it runs
         once per [cap] pushes. *)
      decimate t cap
  | _ -> ()

let push t (tick, value) = push_s t ~tick ~value

let to_array t =
  match t.cap with
  | Some cap when Vec.length t.ticks > cap ->
      let xs = Vec.to_array t.ticks and ys = Vec.to_array t.vals in
      let idx = select ~xs ~ys ~n:(length t) ~cap in
      Array.map (fun i -> (xs.(i), ys.(i))) idx
  | _ -> Array.init (length t) (fun i -> (Vec.get t.ticks i, Vec.get t.vals i))

(* Exact buffer codec, for daemon snapshots. [to_array] decimates a
   capped buffer down to [cap], so it cannot serve as a snapshot: the
   restored recorder would decimate future pushes against a different
   resident set than the uninterrupted one. This codec copies the raw
   buffer instead — a restart is invisible to the final series. *)
let to_json t =
  let ints v = Json.List (List.map (fun i -> Json.Int i) (Vec.to_list v)) in
  Json.Obj
    [
      ("cap", match t.cap with None -> Json.Null | Some c -> Json.Int c);
      ("ticks", ints t.ticks);
      ("vals", ints t.vals);
    ]

let of_json j =
  let fail () = failwith "Lttb.of_json: malformed series" in
  let ints = function
    | Json.List l ->
        Vec.of_list
          (List.map (function Json.Int i -> i | _ -> fail ()) l)
    | _ -> fail ()
  in
  match (Json.member "cap" j, Json.member "ticks" j, Json.member "vals" j) with
  | Some cap, Some ticks, Some vals ->
      let cap =
        match cap with
        | Json.Null -> None
        | Json.Int c when c >= 3 -> Some c
        | _ -> fail ()
      in
      let ticks = ints ticks and vals = ints vals in
      if Vec.length ticks <> Vec.length vals then fail ();
      { cap; ticks; vals }
  | _ -> fail ()
