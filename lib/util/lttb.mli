(** Bounded series recording via Largest-Triangle-Three-Buckets
    decimation (Steinarsson, 2013).

    A streamed multi-million-event run cannot retain one open-bins
    sample per event tick; this buffer keeps at most [2 * cap] samples
    live and yields at most [cap], chosen by the LTTB criterion so the
    visual shape of the series survives. Every retained sample is one of
    the pushed samples (never an average), the first and last pushed
    samples are always retained, and time order is preserved — the
    decimated series is a subsequence of the exact one. *)

type t

val create : ?cap:int -> unit -> t
(** Without [cap], an unbounded recorder ({!to_array} returns every
    sample — today's exact-series behavior). With [cap] (>= 3, else
    [Invalid_argument]), memory is bounded by [2 * cap] samples. *)

val push : t -> int * int -> unit
(** Append a [(tick, value)] sample; ticks must be non-decreasing.
    Amortized O(1): when a capped buffer reaches [2 * cap] samples it is
    decimated back to [cap] in place. *)

val push_s : t -> tick:int -> value:int -> unit
(** {!push} without the tuple — samples live in two parallel int
    vectors internally, so the per-event recording path allocates
    nothing. *)

val length : t -> int
(** Samples currently buffered (may exceed [cap], never [2 * cap]). *)

val is_empty : t -> bool

val last : t -> int * int
(** Most recent sample; raises [Invalid_argument] when empty. *)

val last_tick : t -> int
(** Tick of {!last}, without boxing a pair. *)

val set_last : t -> int * int -> unit
(** Overwrite the most recent sample (the engine folds multiple events
    at one tick into one sample). Raises [Invalid_argument] when
    empty. *)

val set_last_s : t -> tick:int -> value:int -> unit
(** {!set_last} without the tuple. *)

val to_array : t -> (int * int) array
(** The recorded series, decimated to at most [cap] samples when capped. *)

val downsample : (int * int) array -> cap:int -> (int * int) array
(** Pure one-shot LTTB: at most [cap] (>= 3) samples, a subsequence of
    the input, endpoints preserved. Returns a copy when the input
    already fits. *)

val to_json : t -> Json.t
(** Exact recorder state (cap and the raw, undecimated buffer), for
    daemon snapshots: a recorder restored with {!of_json} produces the
    same final series as one that was never interrupted. *)

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises [Failure] on malformed input. *)
