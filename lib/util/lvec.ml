type t = int array

let dims v = Array.length v

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let of_units u =
  if Array.length u = 0 then invalid_arg "Lvec.of_units: empty";
  Array.iter (fun x -> if x < 0 then invalid_arg "Lvec.of_units: negative") u;
  Array.copy u

let to_units v = Array.copy v
let get v k = v.(k)

let of_floats f =
  if Array.length f = 0 then invalid_arg "Lvec.of_floats: empty";
  Array.map (fun x -> Load.to_units (Load.of_float x)) f

let to_floats v = Array.map (fun u -> Load.to_float (Load.of_units u)) v
let zero ~dims = if dims < 1 then invalid_arg "Lvec.zero: dims < 1" else Array.make dims 0

let of_load l ~dims =
  if dims < 1 then invalid_arg "Lvec.of_load: dims < 1";
  let v = Array.make dims 0 in
  v.(0) <- Load.to_units l;
  v

let add a b =
  check_dims "Lvec.add" a b;
  Array.mapi
    (fun k x ->
      let y = b.(k) in
      if x > max_int - y then invalid_arg "Lvec.add: overflow";
      x + y)
    a

let sub a b =
  check_dims "Lvec.sub" a b;
  Array.mapi
    (fun k x ->
      if b.(k) > x then invalid_arg "Lvec.sub: negative result";
      x - b.(k))
    a

let fits v ~into =
  check_dims "Lvec.fits" v into;
  let ok = ref true in
  for k = 0 to Array.length v - 1 do
    if into.(k) + v.(k) > Load.capacity then ok := false
  done;
  !ok

let residual used =
  Array.map
    (fun u ->
      if u > Load.capacity then invalid_arg "Lvec.residual: over capacity";
      Load.capacity - u)
    used

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let compare a b =
  match Int.compare (Array.length a) (Array.length b) with
  | 0 ->
      let rec go k =
        if k = Array.length a then 0
        else match Int.compare a.(k) b.(k) with 0 -> go (k + 1) | c -> c
      in
      go 0
  | c -> c

let pp ppf v =
  Format.fprintf ppf "(";
  Array.iteri
    (fun k u ->
      if k > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "%.6g" (Load.to_float (Load.of_units u)))
    v;
  Format.fprintf ppf ")"
