(** d-dimensional resource vectors (vector bin packing loads).

    The vector analogue of {!Load}: one fixed-point value out of
    {!Load.capacity} per resource dimension (CPU, memory, network...).
    A bin is the unit hypercube; an item fits iff it fits in {e every}
    dimension. The simulator's hot path never builds these — items
    carry dimension 0 as a scalar {!Load.t} plus a raw extra-units
    array, and the bin store keeps per-dimension int columns — so this
    module serves the validator, the tests, and any caller off the hot
    path that wants whole-vector arithmetic with the same guards as
    {!Load}.

    Values are immutable: every constructor and operation returns a
    fresh array, and accessors copy. *)

type t = private int array
(** Invariant: length >= 1, every component >= 0. Component 0 is the
    primary dimension (the scalar engine's only one). *)

val dims : t -> int

val of_units : int array -> t
(** Copies; every component must be non-negative, length >= 1. *)

val to_units : t -> int array
(** A fresh copy of the component units. *)

val get : t -> int -> int
(** Component [k], in units. *)

val of_floats : float array -> t
(** Per-component {!Load.of_float}: clamps to [0, 1], rejects NaN. *)

val to_floats : t -> float array

val zero : dims:int -> t

val of_load : Load.t -> dims:int -> t
(** The scalar load in dimension 0, zero elsewhere. *)

val add : t -> t -> t
(** Component-wise; dimensions must agree, overflow past [max_int] is
    rejected like {!Load.add}. *)

val sub : t -> t -> t
(** Component-wise; requires [b <= a] in every dimension. *)

val fits : t -> into:t -> bool
(** [fits v ~into:used] iff a bin holding [used] accepts [v] in every
    dimension: [used.(k) + v.(k) <= Load.capacity] for all [k]. *)

val residual : t -> t
(** Per-dimension free space; every component must be <= capacity. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic, shorter vectors first. *)

val pp : Format.formatter -> t -> unit
(** Prints as a tuple of bin fractions, e.g. [(0.25,0.5)]. *)
