type stability = Det | Sched

type kind =
  | Kcounter
  | Kgauge
  | Khist of int array  (** ascending inclusive bucket upper bounds *)

type spec = {
  id : int;  (** dense index into every shard's cell arrays *)
  name : string;
  kind : kind;
  stability : stability;
}

type counter = spec
type gauge = spec
type histogram = spec

(* ---- registry (mutex-protected; registration is rare) ---- *)

let reg_mutex = Mutex.create ()
let specs : spec Vec.t = Vec.create ()
let by_name : (string, spec) Hashtbl.t = Hashtbl.create 64

(* One shard per domain. [cells.(id)] carries a counter's sum or a
   gauge's high-water mark; [hists.(id)] carries a histogram's state:
   one count per bucket (incl. overflow) plus the value sum in the last
   slot. Cells are written only by the owning domain — no lock. *)
type shard = {
  mutable cells : int array;
  mutable hists : int array option array;
}

let shards : shard Vec.t = Vec.create ()  (* guarded by reg_mutex *)

let new_shard () =
  let s = { cells = Array.make 64 0; hists = Array.make 64 None } in
  Mutex.lock reg_mutex;
  Vec.push shards s;
  Mutex.unlock reg_mutex;
  s

let dls_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard
let shard () = Domain.DLS.get dls_key

let same_kind a b =
  match (a, b) with
  | Kcounter, Kcounter | Kgauge, Kgauge -> true
  | Khist x, Khist y -> x = y
  | _ -> false

let register ~kind ~stability name =
  Mutex.lock reg_mutex;
  let spec =
    match Hashtbl.find_opt by_name name with
    | Some s ->
        Mutex.unlock reg_mutex;
        if not (same_kind s.kind kind) then
          invalid_arg (Printf.sprintf "Metrics: %S re-registered with a different kind" name);
        if s.stability <> stability then
          invalid_arg
            (Printf.sprintf "Metrics: %S re-registered with a different stability" name);
        s
    | None ->
        let s = { id = Vec.length specs; name; kind; stability } in
        Vec.push specs s;
        Hashtbl.replace by_name name s;
        Mutex.unlock reg_mutex;
        s
  in
  spec

let counter ?(stability = Det) name = register ~kind:Kcounter ~stability name
let gauge ?(stability = Det) name = register ~kind:Kgauge ~stability name

let histogram ?(stability = Det) ~buckets name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly ascending")
    buckets;
  register ~kind:(Khist (Array.copy buckets)) ~stability name

(* ---- hot path ---- *)

let ensure_cells s id =
  if Array.length s.cells <= id then begin
    let n = Array.length s.cells in
    let bigger = Array.make (max (2 * n) (id + 1)) 0 in
    Array.blit s.cells 0 bigger 0 n;
    s.cells <- bigger
  end

let ensure_hists s id =
  if Array.length s.hists <= id then begin
    let n = Array.length s.hists in
    let bigger = Array.make (max (2 * n) (id + 1)) None in
    Array.blit s.hists 0 bigger 0 n;
    s.hists <- bigger
  end

let add (c : counter) n =
  let s = shard () in
  ensure_cells s c.id;
  s.cells.(c.id) <- s.cells.(c.id) + n

let incr c = add c 1

let set_max (g : gauge) v =
  let s = shard () in
  ensure_cells s g.id;
  if v > s.cells.(g.id) then s.cells.(g.id) <- v

let hist_state s (h : histogram) nb =
  ensure_hists s h.id;
  match s.hists.(h.id) with
  | Some a -> a
  | None ->
      (* nb bucket counts + overflow + running sum *)
      let a = Array.make (nb + 2) 0 in
      s.hists.(h.id) <- Some a;
      a

let observe (h : histogram) v =
  match h.kind with
  | Khist bounds ->
      let nb = Array.length bounds in
      let a = hist_state (shard ()) h nb in
      let rec bucket i = if i >= nb || v <= bounds.(i) then i else bucket (i + 1) in
      let i = bucket 0 in
      a.(i) <- a.(i) + 1;
      a.(nb + 1) <- a.(nb + 1) + v
  | _ -> assert false

(* ---- merge and export ---- *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int }

type entry = {
  name : string;
  stability : stability;
  value : value;
  per_shard : int list;
}

let snapshot () =
  Mutex.lock reg_mutex;
  let shard_list = Vec.to_list shards in
  let entries =
    Vec.fold_left
      (fun acc spec ->
        let cell s = if Array.length s.cells > spec.id then s.cells.(spec.id) else 0 in
        let entry =
          match spec.kind with
          | Kcounter ->
              let per = List.map cell shard_list in
              {
                name = spec.name;
                stability = spec.stability;
                value = Counter (List.fold_left ( + ) 0 per);
                per_shard = per;
              }
          | Kgauge ->
              let per = List.map cell shard_list in
              {
                name = spec.name;
                stability = spec.stability;
                value = Gauge (List.fold_left max 0 per);
                per_shard = per;
              }
          | Khist bounds ->
              let nb = Array.length bounds in
              let counts = Array.make (nb + 1) 0 in
              let sum = ref 0 in
              List.iter
                (fun s ->
                  if Array.length s.hists > spec.id then
                    match s.hists.(spec.id) with
                    | None -> ()
                    | Some a ->
                        for i = 0 to nb do
                          counts.(i) <- counts.(i) + a.(i)
                        done;
                        sum := !sum + a.(nb + 1))
                shard_list;
              {
                name = spec.name;
                stability = spec.stability;
                value = Histogram { bounds = Array.copy bounds; counts; sum = !sum };
                per_shard = [];
              }
        in
        entry :: acc)
      [] specs
  in
  Mutex.unlock reg_mutex;
  List.sort (fun a b -> String.compare a.name b.name) entries

let deterministic () =
  List.filter_map
    (fun e -> if e.stability = Det then Some (e.name, e.value) else None)
    (snapshot ())

let reset () =
  Mutex.lock reg_mutex;
  Vec.iter
    (fun s ->
      Array.fill s.cells 0 (Array.length s.cells) 0;
      Array.iter (function Some a -> Array.fill a 0 (Array.length a) 0 | None -> ()) s.hists)
    shards;
  Mutex.unlock reg_mutex

let hist_total counts = Array.fold_left ( + ) 0 counts

let to_table () =
  let entries = snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-32s %-10s %s\n" "metric" "type" "value");
  List.iter
    (fun e ->
      let star = if e.stability = Sched then "*" else "" in
      let nonzero = List.filter (fun v -> v <> 0) e.per_shard in
      let breakdown =
        if e.stability = Sched && List.length nonzero > 1 then
          Printf.sprintf " (per-shard: %s)"
            (String.concat "/" (List.map string_of_int e.per_shard))
        else ""
      in
      match e.value with
      | Counter v ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %-10s %d%s\n" (e.name ^ star) "counter" v breakdown)
      | Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%-32s %-10s %d%s\n" (e.name ^ star) "gauge" v breakdown)
      | Histogram { bounds; counts; sum } ->
          let nb = Array.length bounds in
          let cells =
            List.init (nb + 1) (fun i ->
                if i < nb then Printf.sprintf "<=%d:%d" bounds.(i) counts.(i)
                else Printf.sprintf ">%d:%d" bounds.(nb - 1) counts.(nb))
          in
          Buffer.add_string buf
            (Printf.sprintf "%-32s %-10s n=%d sum=%d | %s\n" (e.name ^ star) "histogram"
               (hist_total counts) sum (String.concat " " cells)))
    entries;
  if List.exists (fun e -> e.stability = Sched) entries then
    Buffer.add_string buf
      "(* = scheduling-dependent: excluded from the --jobs bit-identity contract)\n";
  Buffer.contents buf

let value_json = function
  | Counter v | Gauge v -> Json.Int v
  | Histogram { bounds; counts; sum } ->
      Json.Obj
        [
          ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) bounds)));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)));
          ("sum", Json.Int sum);
        ]

let to_json () =
  let entries = snapshot () in
  let det =
    List.filter_map
      (fun e -> if e.stability = Det then Some (e.name, value_json e.value) else None)
      entries
  in
  let sched =
    List.filter_map
      (fun e ->
        if e.stability = Sched then
          Some
            ( e.name,
              Json.Obj
                [
                  ("total", value_json e.value);
                  ( "per_shard",
                    Json.List (List.map (fun v -> Json.Int v) e.per_shard) );
                ] )
        else None)
      entries
  in
  Json.Obj [ ("metrics", Json.Obj det); ("scheduling", Json.Obj sched) ]
