(** Process-wide, domain-sharded metrics registry: named counters,
    high-water gauges, and fixed-bucket histograms.

    Every instrumented subsystem registers its metrics once (at module
    initialisation, on the main domain) and bumps them from whatever
    domain happens to run the work. Each domain writes to a private
    shard ([Domain.DLS]), so the hot path takes no lock and never
    contends: an increment is a domain-local array store. Reading
    ({!snapshot} and the exporters) merges all shards.

    {b Determinism.} Merging must not reintroduce scheduling
    nondeterminism, so every merge operator is commutative and
    associative over the multiset of recorded values: counters sum,
    gauges take the max (which is why gauges here are high-water marks,
    not last-write-wins cells), histogram buckets sum. A metric whose
    {e recorded values themselves} depend on scheduling — work stolen by
    helping, per-worker busy time, cache hits against a per-worker cache
    — is registered as [Sched] and reported separately; everything
    registered [Det] is bit-identical across [--jobs 1/2/4] runs of the
    same work (enforced by the test suite and [scripts/check.sh]).
    Wall-clock timestamps never enter the registry at all; they live
    exclusively in the {!Trace} stream.

    {b Safety.} Registration is mutex-protected and idempotent
    (re-registering a name returns the existing metric; a kind or
    stability mismatch raises). {!snapshot}, {!reset}, and the exporters
    are meant to run while no other domain is mutating — i.e. after the
    parallel section has joined, which is when the CLI exporters run. *)

type counter
type gauge
type histogram

type stability =
  | Det  (** value is a function of the work done; jobs-invariant *)
  | Sched  (** value depends on scheduling (worker count, cache splits) *)

val counter : ?stability:stability -> string -> counter
(** Register (or look up) a counter. Default stability is [Det]. *)

val gauge : ?stability:stability -> string -> gauge
(** Register (or look up) a high-water gauge (starts at 0). *)

val histogram : ?stability:stability -> buckets:int array -> string -> histogram
(** Register (or look up) a histogram with the given ascending,
    inclusive bucket upper bounds; one implicit overflow bucket is
    appended. Raises [Invalid_argument] on an empty or non-ascending
    bounds array. *)

val incr : counter -> unit
val add : counter -> int -> unit

val set_max : gauge -> int -> unit
(** Record [v]; the gauge keeps the maximum ever recorded (per shard,
    and max-merged across shards). *)

val observe : histogram -> int -> unit
(** Count [v] into its bucket and into the running sum. *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { bounds : int array; counts : int array; sum : int }
      (** [counts] has [Array.length bounds + 1] cells; the last is the
          overflow bucket. [sum] is the sum of observed values. *)

type entry = {
  name : string;
  stability : stability;
  value : value;  (** merged over all shards *)
  per_shard : int list;
      (** per-shard contributions in shard-creation order (counters and
          gauges only; [[]] for histograms). Shard attribution is
          scheduling-dependent; only the merged value is deterministic. *)
}

val snapshot : unit -> entry list
(** All registered metrics, sorted by name. *)

val deterministic : unit -> (string * value) list
(** The [Det] subset of {!snapshot} as (name, merged value) pairs — the
    part of the registry the [--jobs] bit-identity contract covers. *)

val reset : unit -> unit
(** Zero every shard of every metric. Call only while no other domain is
    recording. *)

val to_table : unit -> string
(** Text table of the whole registry ([Sched] metrics marked with [*]
    and, when more than one shard recorded, a per-shard breakdown). *)

val to_json : unit -> Json.t
(** [{"metrics": {...}, "scheduling": {...}}]: the [Det] section maps
    name to value (counters and gauges as numbers, histograms as
    objects) and is byte-identical across worker counts; the
    [scheduling] section additionally carries per-shard values. *)
