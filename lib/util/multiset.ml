(* Sorted counted multiset of non-negative ints (size units). The two
   derived views are cached and rebuilt lazily: mutation replaces the
   cached arrays rather than editing them in place, so a caller that has
   stored a previous [key] (e.g. as a hashtable key) is never affected
   by later mutation. *)

module IMap = Map.Make (Int)

type t = {
  mutable counts : int IMap.t;
  mutable card : int;
  mutable total : int;
  mutable key_cache : int array option;
  mutable exp_cache : int array option;
}

let create () =
  { counts = IMap.empty; card = 0; total = 0; key_cache = None; exp_cache = None }

let invalidate t =
  t.key_cache <- None;
  t.exp_cache <- None

let add t u =
  if u < 0 then invalid_arg "Multiset.add: negative value";
  t.counts <-
    IMap.update u (function None -> Some 1 | Some c -> Some (c + 1)) t.counts;
  t.card <- t.card + 1;
  t.total <- t.total + u;
  invalidate t

let remove t u =
  match IMap.find_opt u t.counts with
  | None -> invalid_arg "Multiset.remove: value not present"
  | Some c ->
      t.counts <-
        (if c = 1 then IMap.remove u t.counts else IMap.add u (c - 1) t.counts);
      t.card <- t.card - 1;
      t.total <- t.total - u;
      invalidate t

let cardinality t = t.card
let total_units t = t.total
let is_empty t = t.card = 0
let distinct t = IMap.cardinal t.counts
let count t u = Option.value (IMap.find_opt u t.counts) ~default:0
let iter f t = IMap.iter f t.counts

let key t =
  match t.key_cache with
  | Some k -> k
  | None ->
      let k = Array.make (2 * distinct t) 0 in
      let i = ref 0 in
      IMap.iter
        (fun u c ->
          k.(!i) <- u;
          k.(!i + 1) <- c;
          i := !i + 2)
        t.counts;
      t.key_cache <- Some k;
      k

let expansion t =
  match t.exp_cache with
  | Some e -> e
  | None ->
      let e = Array.make t.card 0 in
      (* ascending iteration filling from the back = descending array *)
      let i = ref t.card in
      IMap.iter
        (fun u c ->
          for _ = 1 to c do
            decr i;
            e.(!i) <- u
          done)
        t.counts;
      t.exp_cache <- Some e;
      e
