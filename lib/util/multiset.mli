(** A sorted counted multiset of non-negative ints (size units).

    Backed by a balanced map from value to count: [add]/[remove] are
    O(log k) in the number k of distinct values, far below the O(n log n)
    re-extract-and-sort this replaces in the repacking-optimum sweep
    (consecutive event segments differ by a handful of items). Two
    derived views are cached between mutations:

    - {!key}: the count-vector snapshot, the canonical cache key for a
      solver memo table — length 2k, much shorter than the n-item
      expansion when sizes repeat;
    - {!expansion}: the non-increasing item-size array the exact solver
      and FFD consume, already sorted by construction.

    Both returned arrays are owned by the multiset and MUST be treated
    as read-only; they stay valid (and are never mutated in place) after
    further [add]/[remove], which build fresh arrays instead. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Insert one occurrence. Raises [Invalid_argument] on a negative
    value. *)

val remove : t -> int -> unit
(** Delete one occurrence. Raises [Invalid_argument] if the value is not
    present. *)

val cardinality : t -> int
(** Number of elements, with multiplicity. *)

val distinct : t -> int
(** Number of distinct values. *)

val total_units : t -> int
(** Running sum of all elements — the L1 volume-bound numerator,
    maintained in O(1). *)

val is_empty : t -> bool

val count : t -> int -> int
(** Multiplicity of a value (0 if absent). *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] calls [f value count] in ascending value order. *)

val key : t -> int array
(** Count-vector snapshot [[|v1; c1; v2; c2; ...|]] in ascending value
    order; O(k) on first call after a mutation, O(1) while unchanged.
    Read-only (see module doc). *)

val expansion : t -> int array
(** All elements, with multiplicity, in non-increasing order; O(n) on
    first call after a mutation, O(1) while unchanged. Read-only (see
    module doc). *)
