type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable state : 'a state }

type task = Task : (unit -> 'a) * 'a future -> task

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;  (** signalled per submit, broadcast at shutdown *)
  finished : Condition.t;  (** broadcast per task completion *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let env_jobs () =
  match Sys.getenv_opt "DBP_JOBS" with
  | None -> None
  | Some raw -> (
      let s = String.trim raw in
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some n
      | Some 0 -> Some (recommended_jobs ())
      | Some _ -> None
      | None ->
          if String.lowercase_ascii s = "auto" then Some (recommended_jobs ())
          else None)

let default = ref None

let default_jobs () =
  match !default with
  | Some n -> n
  | None ->
      let n = Option.value (env_jobs ()) ~default:1 in
      default := Some n;
      n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default := Some n

let jobs t = t.pool_jobs

(* Every submitted task runs exactly once whatever the worker count, so
   queued/run are deterministic; which tasks get helped and how long a
   worker stays busy are pure scheduling artifacts. *)
let m_queued = Metrics.counter "pool.tasks_queued"
let m_run = Metrics.counter "pool.tasks_run"
let m_helped = Metrics.counter ~stability:Metrics.Sched "pool.tasks_helped"
let m_busy = Metrics.counter ~stability:Metrics.Sched "pool.busy_ns"

(* Run a task body on the calling domain, recording run count, busy
   time, and (when tracing) a per-task span. Shared by workers, helping
   awaiters, and the inline jobs=1 path. *)
let run_thunk f =
  Metrics.incr m_run;
  let t0 = Unix.gettimeofday () in
  let result =
    Trace.with_span "pool.task" (fun () ->
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ()))
  in
  Metrics.add m_busy (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
  result

(* Runs outside the pool lock; only the state store and wake-up are
   locked. *)
let run_task t (Task (f, fut)) =
  let result = run_thunk f in
  Mutex.lock t.mutex;
  fut.state <- result;
  Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stop then None
      else begin
        Condition.wait t.has_work t.mutex;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        run_task t task;
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some n -> n | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t f =
  let fut = { state = Pending } in
  if t.pool_jobs = 1 then begin
    if t.stop then invalid_arg "Pool.submit: pool is shut down";
    Metrics.incr m_queued;
    fut.state <- run_thunk f
  end
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Metrics.incr m_queued;
    Queue.push (Task (f, fut)) t.queue;
    Condition.signal t.has_work;
    Mutex.unlock t.mutex
  end;
  fut

let finished_value = function
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await t fut =
  if t.pool_jobs = 1 then finished_value fut.state
  else begin
    Mutex.lock t.mutex;
    let rec loop () =
      match fut.state with
      | Done _ | Failed _ ->
          let s = fut.state in
          Mutex.unlock t.mutex;
          finished_value s
      | Pending ->
          if not (Queue.is_empty t.queue) then begin
            (* Help: never park while there is queued work — this is
               what makes nested submit-and-await deadlock-free. *)
            let task = Queue.pop t.queue in
            Mutex.unlock t.mutex;
            Metrics.incr m_helped;
            run_task t task;
            Mutex.lock t.mutex;
            loop ()
          end
          else begin
            Condition.wait t.finished t.mutex;
            loop ()
          end
    in
    loop ()
  end

let map t f items =
  let futures = List.map (fun x -> submit t (fun () -> f x)) items in
  List.map (await t) futures

let shutdown t =
  if t.pool_jobs = 1 then t.stop <- true
  else begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    let workers = t.workers in
    t.workers <- [];
    List.iter Domain.join workers
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let shared = ref None

let global () =
  let jobs = default_jobs () in
  match !shared with
  | Some t when t.pool_jobs = jobs && not t.stop -> t
  | prev ->
      (match prev with Some t -> shutdown t | None -> ());
      let t = create ~jobs () in
      shared := Some t;
      t

let with_default ?jobs f =
  match jobs with Some n -> with_pool ~jobs:n f | None -> f (global ())

module Bank = struct
  type 'r t = {
    make : unit -> 'r;
    mutex : Mutex.t;
    mutable free : 'r list;
    mutable created : 'r list;  (** reverse creation order *)
  }

  let create make = { make; mutex = Mutex.create (); free = []; created = [] }

  let acquire b =
    Mutex.lock b.mutex;
    match b.free with
    | r :: rest ->
        b.free <- rest;
        Mutex.unlock b.mutex;
        r
    | [] ->
        Mutex.unlock b.mutex;
        let r = b.make () in
        Mutex.lock b.mutex;
        b.created <- r :: b.created;
        Mutex.unlock b.mutex;
        r

  let release b r =
    Mutex.lock b.mutex;
    b.free <- r :: b.free;
    Mutex.unlock b.mutex

  let use b f =
    let r = acquire b in
    Fun.protect ~finally:(fun () -> release b r) (fun () -> f r)

  let all b =
    Mutex.lock b.mutex;
    let l = b.created in
    Mutex.unlock b.mutex;
    List.rev l
end
