(** Fixed-size work pool over raw [Domain.spawn] (OCaml 5 domains; no
    external dependency) used to fan experiment grids out across cores.

    The pool owns a mutex+condition task queue and [jobs] worker
    domains. [jobs = 1] spawns no domains at all: [submit] runs the
    thunk inline, so single-core runs behave exactly like the code the
    pool replaced and debugging stays simple.

    Determinism contract: [map] submits tasks in list order and awaits
    their futures in list order, so the result list is always in input
    order regardless of which domain ran what — callers that keep each
    task free of shared mutable state (fresh PRNGs, per-task or banked
    accumulators) get output bit-identical to a sequential run.

    Nested submission is supported: a task running on a worker may
    itself [submit] to the same pool and [await] the results. [await]
    never parks while the queue is non-empty — it pops and runs queued
    tasks itself ("helping"), so the pool cannot deadlock on
    tasks-waiting-for-tasks even when every worker is blocked in a
    nested [await]. *)

type t
(** A pool handle. Values of type [t] are safe to share across
    domains. *)

type 'a future
(** The pending result of a [submit]ted task. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** The process-wide default worker count: the last value passed to
    {!set_default_jobs}, else the [DBP_JOBS] environment variable
    ([0] or ["auto"] meaning {!recommended_jobs}), else [1]. *)

val set_default_jobs : int -> unit
(** Override the default (e.g. from a [--jobs] CLI flag). Takes
    precedence over [DBP_JOBS]. Raises [Invalid_argument] on [n < 1]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs = 1] creates an inline pool with no domains. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. On an inline pool the task runs before [submit]
    returns. Raises [Invalid_argument] on a pool that was shut down. *)

val await : t -> 'a future -> 'a
(** Block until the task finished, helping to drain the queue while
    waiting. Re-raises (with its original backtrace) any exception the
    task raised. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered fan-out: submit [f x] for every element, await in order.
    If a task raised, the exception surfaces at that position (later
    tasks still run to completion in the background). *)

val shutdown : t -> unit
(** Finish every queued task, then join the workers. Idempotent.
    Subsequent [submit]s raise. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

val with_default : ?jobs:int -> (t -> 'a) -> 'a
(** With [~jobs:n]: a temporary [n]-worker pool, shut down afterwards.
    Without: the process-shared pool sized by {!default_jobs} (kept
    alive for reuse) — the form the experiment layer uses, so nested
    parallel code all lands on one pool instead of multiplying
    domains. *)

(** A bank of reusable per-worker resources (e.g. solver caches): each
    concurrent task borrows one exclusively for the duration of a
    [use], so at most [concurrency]-many are ever created and none is
    shared between two domains at once. [all] lists every resource the
    bank created, for merging once the parallel section has joined. *)
module Bank : sig
  type 'r t

  val create : (unit -> 'r) -> 'r t
  (** No resource is created until first [use]. *)

  val use : 'r t -> ('r -> 'a) -> 'a
  (** Borrow a free resource (creating one if none is free), run, and
      return it to the bank even on exception. *)

  val all : 'r t -> 'r list
  (** Every resource created so far, in creation order. Only meaningful
      once no [use] is in flight. *)
end
