type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: stateless stream used only to expand seeds into xoshiro
   state, per the xoshiro authors' recommendation. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_state64 st =
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro's state must not be all zero; splitmix output makes this
     astronomically unlikely but guard anyway. *)
  if Int64.(equal (logor (logor s0 s1) (logor s2 s3)) 0L) then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create ~seed = of_state64 (ref (Int64.of_int seed))

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_state64 (ref (bits64 t))
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Non-negative 61-bit value: 2^61 is still representable in OCaml's
   63-bit ints, so the rejection limit below cannot overflow. *)
let bits61 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 3)

let int_below t n =
  if n <= 0 then invalid_arg "Prng.int_below: non-positive bound";
  (* Rejection sampling over the largest multiple of n below 2^61. *)
  let limit = (1 lsl 61) - ((1 lsl 61) mod n) in
  let rec loop () =
    let x = bits61 t in
    if x < limit then x mod n else loop ()
  in
  loop ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int_below t (hi - lo + 1)

let float_unit t =
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int x *. 0x1p-53

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p = float_unit t < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: non-positive mean";
  let u = 1.0 -. float_unit t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float_unit t in
  let u2 = float_unit t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let log_normal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~alpha ~x_min =
  if alpha <= 0.0 || x_min <= 0.0 then invalid_arg "Prng.pareto: non-positive parameter";
  let u = 1.0 -. float_unit t in
  x_min /. (u ** (1.0 /. alpha))

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Prng.poisson: negative lambda";
  if lambda = 0.0 then 0
  else begin
    (* Poisson(a + b) = Poisson(a) + Poisson(b): halve until Knuth's
       product method is numerically safe, then draw the 2^k independent
       summands in a flat loop. Halving by 2 is exact in binary floating
       point, so the per-summand lambda — and therefore the consumed
       uniform sequence and every seeded output — is identical to the
       recursive halving this replaces, without its call tree. *)
    let lam = ref lambda and n = ref 1 in
    while !lam > 30.0 do
      lam := !lam /. 2.0;
      n := 2 * !n
    done;
    let threshold = exp (-. !lam) in
    let total = ref 0 in
    for _ = 1 to !n do
      let p = ref (float_unit t) in
      while !p > threshold do
        incr total;
        p := !p *. float_unit t
      done
    done;
    !total
  end

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int_below t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

(* State codec for daemon snapshots. Each 64-bit word is written as a
   decimal string: OCaml ints are 63-bit, so [Json.Int] cannot carry a
   full xoshiro word. *)
let to_json t =
  Json.List
    [
      Json.String (Int64.to_string t.s0);
      Json.String (Int64.to_string t.s1);
      Json.String (Int64.to_string t.s2);
      Json.String (Int64.to_string t.s3);
    ]

let of_json j =
  let word = function
    | Json.String s -> (
        match Int64.of_string_opt s with
        | Some w -> w
        | None -> failwith "Prng.of_json: malformed state word")
    | _ -> failwith "Prng.of_json: expected a string state word"
  in
  match j with
  | Json.List [ a; b; c; d ] ->
      let t = { s0 = word a; s1 = word b; s2 = word c; s3 = word d } in
      if Int64.(equal (logor (logor t.s0 t.s1) (logor t.s2 t.s3)) 0L) then
        failwith "Prng.of_json: all-zero state";
      t
  | _ -> failwith "Prng.of_json: expected a list of four state words"
