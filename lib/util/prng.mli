(** Deterministic, splittable pseudo-random number generation.

    Workload generators must be reproducible across runs and machines, so
    the simulator never uses [Stdlib.Random]. The core generator is
    xoshiro256** seeded through splitmix64; [split] derives statistically
    independent child streams so parallel sweeps can share one master
    seed. *)

type t

val create : seed:int -> t
(** Generator deterministically derived from [seed]. *)

val split : t -> t
(** A child generator independent of the parent's future output. Advances
    the parent. *)

val copy : t -> t
(** Snapshot with identical future output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [0, n-1] (rejection sampling, unbiased).
    [n] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi]. Requires [lo <= hi]. *)

val float_unit : t -> float
(** Uniform on [0, 1) with 53-bit resolution. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [true] with probability [p] (clamped to [0, 1]). *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean. [mean] must be positive. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian variate (Box-Muller). *)

val log_normal : t -> mu:float -> sigma:float -> float
(** exp of a Gaussian — heavy-tailed durations for cloud traces. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto variate with shape [alpha] and scale [x_min]; both positive. *)

val poisson : t -> lambda:float -> int
(** Poisson variate. Exact (Knuth) for small [lambda]; for [lambda > 30]
    uses the split property Poisson(a+b) = Poisson(a) + Poisson(b) to stay
    exact without floating-point underflow, summing the split iteratively
    so arbitrarily large [lambda] costs O(lambda) uniforms and O(1) stack.
    [lambda] must be non-negative. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val to_json : t -> Json.t
(** Exact generator state, for daemon snapshots: a restored generator
    continues the identical output stream. *)

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises [Failure] on malformed input or an
    all-zero state. *)
