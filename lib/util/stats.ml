type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0, 1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    median = quantile xs 0.5;
  }

(* Two-sided Student-t critical values t_{0.975, df} for df = 1..30;
   beyond 30 degrees of freedom the normal approximation is within half
   a percent and we use z = 1.96. *)
let t975 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t95_critical ~df =
  if df < 1 then invalid_arg "Stats.t95_critical: df must be >= 1"
  else if df <= 30 then t975.(df - 1)
  else 1.96

let ci95_half_width xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else t95_critical ~df:(n - 1) *. stddev xs /. sqrt (float_of_int n)

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let mx = mean x and my = mean y in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: constant x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy = 0.0 then 1.0 (* constant y fitted exactly by slope 0 *)
    else begin
      let ss_res = ref 0.0 in
      for i = 0 to n - 1 do
        let e = y.(i) -. ((slope *. x.(i)) +. intercept) in
        ss_res := !ss_res +. (e *. e)
      done;
      1.0 -. (!ss_res /. !syy)
    end
  in
  { slope; intercept; r2 }

let pearson ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least 2 points";
  let mx = mean x and my = mean y in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  !sxy /. sqrt (!sxx *. !syy)
