(** Descriptive statistics and least-squares fitting.

    Used by the experiment harness to summarize competitive-ratio samples
    and to fit the paper's growth models ([a*sqrt(log mu) + b], etc.) to
    measured sweeps. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator). *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float
val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [0, 1]; linear interpolation between order
    statistics. *)

val t95_critical : df:int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of freedom
    (table lookup for [df <= 30], the normal [1.96] beyond). Raises
    [Invalid_argument] on [df < 1]. *)

val ci95_half_width : float array -> float
(** Half-width of the 95% confidence interval of the mean,
    [t * stddev / sqrt n] with the Student-t critical value for [n - 1]
    degrees of freedom (the normal 1.96 would understate the interval at
    the small seed counts sweeps use); 0 for fewer than 2 samples. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination; 1 for a perfect fit. *)
}

val linear_fit : x:float array -> y:float array -> fit
(** Ordinary least squares [y ~ slope * x + intercept]. Arrays must have
    equal length >= 2 and [x] must not be constant. *)

val pearson : x:float array -> y:float array -> float
(** Correlation coefficient; NaN if either side is constant. *)
