module IntMap = Map.Make (Int)

(* Keys are segment starts; the value is the function's value on
   [key, next_key). An absent prefix (before the first key) is 0; the
   map always ends with a segment whose value returns to 0 once touched
   ranges end (we insert boundaries at both ends of every [add]). *)
type t = { mutable m : int IntMap.t }

let create () = { m = IntMap.empty }

let value_at t at =
  match IntMap.find_last_opt (fun k -> k <= at) t.m with
  | Some (_, v) -> v
  | None -> 0

let ensure_boundary t at =
  if not (IntMap.mem at t.m) then t.m <- IntMap.add at (value_at t at) t.m

(* A boundary whose value equals its predecessor's (or 0 with no
   predecessor) is redundant: dropping it leaves the step function
   unchanged. The map is kept minimal — every adjacent pair of
   boundaries has distinct values — so its size is exactly the number of
   value transitions, not the number of [add] calls (long workloads
   would otherwise grow it without bound). *)
let coalesce_at t at =
  match IntMap.find_opt at t.m with
  | None -> ()
  | Some v ->
      let pred =
        match IntMap.find_last_opt (fun k -> k < at) t.m with
        | Some (_, pv) -> pv
        | None -> 0
      in
      if pred = v then t.m <- IntMap.remove at t.m

(* Both operations walk only the boundaries inside [lo, hi) (plus the
   O(log n) seek), so cost is proportional to the touched range. *)
let add t ~lo ~hi ~units =
  if lo >= hi then invalid_arg "Timeline.add: empty range";
  ensure_boundary t lo;
  ensure_boundary t hi;
  let rec bump seq =
    match Seq.uncons seq with
    | Some ((k, v), rest) when k < hi ->
        t.m <- IntMap.add k (v + units) t.m;
        bump rest
    | _ -> ()
  in
  bump (IntMap.to_seq_from lo t.m);
  (* Every boundary in [lo, hi) shifted by the same [units], so adjacent
     pairs strictly inside stay distinct; only the seams at [lo] (against
     its unshifted predecessor) and [hi] (unshifted, against its shifted
     predecessor) can have become redundant. *)
  coalesce_at t hi;
  coalesce_at t lo

let boundaries t = IntMap.cardinal t.m

let max_on t ~lo ~hi =
  if lo >= hi then invalid_arg "Timeline.max_on: empty range";
  let best = ref (value_at t lo) in
  let rec scan seq =
    match Seq.uncons seq with
    | Some ((k, v), rest) when k < hi ->
        if v > !best then best := v;
        scan rest
    | _ -> ()
  in
  scan (IntMap.to_seq_from lo t.m);
  !best
