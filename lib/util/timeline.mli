(** A step function over integer time supporting range-add and
    range-max — the load profile of one bin.

    Used by offline packers to answer "does this item fit in this bin
    for its whole interval" in O(log n + k) where [k] is the number of
    existing boundaries inside the queried range, instead of rescanning
    every member item. *)

type t

val create : unit -> t
(** The zero function. *)

val add : t -> lo:int -> hi:int -> units:int -> unit
(** Add [units] on [[lo, hi)). [units] may be negative; requires
    [lo < hi]. *)

val max_on : t -> lo:int -> hi:int -> int
(** Maximum value on [[lo, hi)); 0 for ranges the function never
    touched. Requires [lo < hi]. *)

val value_at : t -> int -> int
(** The value at one tick. *)

val boundaries : t -> int
(** Number of stored segment boundaries. Adjacent segments with equal
    values are coalesced on [add], so this is exactly the number of
    value transitions of the step function (including the final return
    to 0), independent of how many [add]s produced it. *)
