type completed = {
  sname : string;
  sargs : (string * string) list;
  ts : float;  (** microseconds since [epoch] *)
  dur : float;
}

type buf = {
  pid : int;  (** the domain id, used as the Chrome trace pid *)
  events : completed Vec.t;
  mutable stack : (string * (string * string) list * float) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let mutex = Mutex.create ()
let bufs : buf Vec.t = Vec.create ()  (* guarded by [mutex] *)

let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let dls_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { pid = (Domain.self () :> int); events = Vec.create (); stack = [] }
      in
      Mutex.lock mutex;
      Vec.push bufs b;
      Mutex.unlock mutex;
      b)

let buf () = Domain.DLS.get dls_key

let begin_span ?(args = []) name =
  if enabled () then begin
    let b = buf () in
    b.stack <- (name, args, now_us ()) :: b.stack
  end

let end_span () =
  if enabled () then begin
    let b = buf () in
    match b.stack with
    | [] -> invalid_arg "Trace.end_span: no open span"
    | (sname, sargs, t0) :: rest ->
        b.stack <- rest;
        Vec.push b.events { sname; sargs; ts = t0; dur = now_us () -. t0 }
  end

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    begin_span ?args name;
    Fun.protect ~finally:end_span f
  end

let depth () = List.length (buf ()).stack

let clear () =
  Mutex.lock mutex;
  (* A clear here means "drop the recording", not "reuse the buffer":
     release the storage so retired spans (and their argument strings)
     do not linger. *)
  Vec.iter (fun b -> Vec.reset b.events) bufs;
  Mutex.unlock mutex

let to_json () =
  Mutex.lock mutex;
  let per_domain =
    Vec.fold_left (fun acc b -> (b.pid, Vec.to_list b.events) :: acc) [] bufs
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Mutex.unlock mutex;
  let metadata =
    List.map
      (fun (pid, _) ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain-%d" pid)) ]);
          ])
      per_domain
  in
  let spans =
    List.concat_map
      (fun (pid, events) ->
        List.map
          (fun e ->
            let base =
              [
                ("name", Json.String e.sname);
                ("ph", Json.String "X");
                ("ts", Json.Float e.ts);
                ("dur", Json.Float e.dur);
                ("pid", Json.Int pid);
                ("tid", Json.Int 0);
              ]
            in
            let args =
              if e.sargs = [] then []
              else
                [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.sargs)) ]
            in
            Json.Obj (base @ args))
          events)
      per_domain
    |> List.sort (fun a b ->
           match (Json.member "ts" a, Json.member "ts" b) with
           | Some (Json.Float x), Some (Json.Float y) -> Float.compare x y
           | _ -> 0)
  in
  Json.List (metadata @ spans)

let write ~path =
  let events = match to_json () with Json.List l -> l | _ -> assert false in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i e ->
          Printf.fprintf oc " %s%s\n" (Json.to_string e)
            (if i = List.length events - 1 then "" else ","))
        events;
      output_string oc "]\n")
