(** Span-based tracing with Chrome trace-event output.

    Spans nest per domain: {!begin_span} pushes onto the current
    domain's span stack, {!end_span} pops (LIFO — ending out of order is
    a programming error and raises). Completed spans are buffered in a
    per-domain vector, lock-free on the hot path; {!write} merges every
    domain's buffer into one Chrome trace-event JSON array (one [pid]
    per domain, plus [process_name] metadata) loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Tracing is {e off} by default: every entry point is a cheap no-op
    until {!set_enabled}[ true] (the CLI flips it when [--trace FILE] is
    given). Timestamps come from [Unix.gettimeofday] relative to process
    start — they are wall-clock and therefore nondeterministic, which is
    exactly why spans live here and never in the {!Metrics} registry:
    the trace stream is excluded from the [--jobs] bit-identity
    contract. *)

val set_enabled : bool -> unit
(** Turn recording on or off. Flip only while no span is open (in
    practice: once, at CLI startup). *)

val enabled : unit -> bool

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span (closed even on
    exception). When tracing is disabled this is just [f ()]. *)

val begin_span : ?args:(string * string) list -> string -> unit

val end_span : unit -> unit
(** Close the innermost open span of the calling domain. Raises
    [Invalid_argument] if tracing is enabled and no span is open. No-op
    when disabled. *)

val depth : unit -> int
(** Open-span depth of the calling domain. *)

val to_json : unit -> Json.t
(** All completed spans of all domains (plus per-domain [process_name]
    metadata), as a Chrome trace-event array sorted by timestamp.
    Unclosed spans are not included. *)

val write : path:string -> unit
(** {!to_json} to a file, one event per line. *)

val clear : unit -> unit
(** Drop all buffered spans (open span stacks are untouched). *)
