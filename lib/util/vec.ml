type 'a t = { mutable data : 'a array; mutable len : int; mutable hw : int }

let create () = { data = [||]; len = 0; hw = 0 }
let length v = v.len
let is_empty v = v.len = 0

let check_index v i op =
  if i < 0 || i >= v.len then invalid_arg ("Vec." ^ op ^ ": index out of bounds")

let get v i =
  check_index v i "get";
  v.data.(i)

let set v i x =
  check_index v i "set";
  v.data.(i) <- x

(* Doubling growth; the first push allocates a small block seeded with the
   pushed element so no dummy value is ever needed. *)
let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

(* Keeps the backing array so per-tick reuse does not reallocate;
   elements beyond [len] stay reachable until overwritten. *)
let clear v = v.len <- 0

(* Clear for long-lived reuse loops: track a decaying high-water mark of
   recent fill levels and drop the backing array once its capacity
   exceeds 4x that mark, so one flash-crowd tick cannot pin a huge block
   for the rest of the process's life. The 1/8 decay per call gives the
   mark a half-life of ~5 clears; the floor of 8 matches the smallest
   block [grow] allocates, so small vectors never thrash. *)
let clear_shrink v =
  v.hw <- max v.len (v.hw - (v.hw asr 3));
  if Array.length v.data > 4 * max 8 v.hw then v.data <- [||];
  v.len <- 0

let reset v =
  v.data <- [||];
  v.len <- 0;
  v.hw <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate: bad length";
  v.len <- n

let capacity v = Array.length v.data

let swap_remove v i =
  check_index v i "swap_remove";
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let find_index p v =
  let rec loop i =
    if i >= v.len then None else if p v.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let v = create () in
  Array.iter (push v) a;
  v
