(** Growable arrays.

    OCaml 5.1 predates [Stdlib.Dynarray]; this module provides the subset
    the simulator needs, with amortized O(1) [push] and O(1) random
    access. Indices are 0-based; out-of-range accesses raise
    [Invalid_argument]. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty vector. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append an element at the end. *)

val pop : 'a t -> 'a
(** Remove and return the last element; raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
(** The last element; raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Remove every element but keep the backing array, so a vector reused
    in a per-tick loop never reallocates. Cleared slots still reference
    their old elements until overwritten; use {!reset} when that
    retention matters. *)

val clear_shrink : 'a t -> unit
(** Like {!clear}, but bound the retained capacity: a decaying
    high-water mark of recent lengths is maintained, and when the
    backing array exceeds 4x that mark it is released (next push
    reallocates at the small default size). Use in long-lived reuse
    loops — e.g. a daemon's per-batch buffers — where {!clear}'s
    keep-forever policy would pin the largest batch ever seen. *)

val reset : 'a t -> unit
(** Remove every element and release the storage (capacity drops to 0). *)

val truncate : 'a t -> int -> unit
(** [truncate v n] keeps the first [n] elements (capacity unchanged).
    Raises [Invalid_argument] unless [0 <= n <= length v]. *)

val capacity : 'a t -> int
(** Current backing-array size; [length v <= capacity v]. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes and returns element [i] in O(1) by moving
    the last element into slot [i]; element order is not preserved. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val find_index : ('a -> bool) -> 'a t -> int option
(** Index of the first element satisfying the predicate. *)

val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
(** [of_array a] copies [a]; later mutation of [a] does not affect the
    vector. *)
