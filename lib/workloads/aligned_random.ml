open Dbp_util
open Dbp_instance

type config = {
  top_class : int;
  horizon : int;
  rate : float;
  min_size : float;
  max_size : float;
  seed_anchor : bool;
  resource : Resource_shape.spec;
}

let default =
  {
    top_class = 8;
    horizon = 256;
    rate = 0.4;
    min_size = 0.05;
    max_size = 0.4;
    seed_anchor = true;
    resource = Resource_shape.scalar;
  }

let validate config =
  if config.top_class < 0 then invalid_arg "Aligned_random: negative top_class";
  if config.horizon < 1 then invalid_arg "Aligned_random: empty horizon";
  if config.min_size <= 0.0 || config.max_size > 1.0 || config.min_size > config.max_size
  then invalid_arg "Aligned_random: bad size range";
  Resource_shape.validate config.resource

let sample_size rng config =
  Load.of_float
    (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))

(* Size draw plus (vector configs only) one draw per extra dimension —
   drawn together at proto-build time on the proto's own PRNG, so
   stream and chunks keep identical schedules per source. *)
let sample_vec rng config =
  let size = sample_size rng config in
  let extra =
    Resource_shape.draw_extra config.resource rng ~base:(Load.to_float size)
  in
  (size, extra)

(* Pre-id items of one class, lazily, slots ascending — so each class
   sub-stream is arrival-ordered and the merged stream only ever holds
   one pending slot per class. The per-node PRNG snapshot makes the
   sequence persistent. *)
let class_protos config rng ~cls =
  let step = Ints.pow2 cls in
  let hi = step and lo = (step / 2) + 1 in
  Seq.concat_map List.to_seq
    (Seq.unfold
       (fun (slot, rng) ->
         if slot * step >= config.horizon then None
         else begin
           let rng = Prng.copy rng in
           let k = Prng.poisson rng ~lambda:config.rate in
           let rec build i acc =
             if i = k then List.rev acc
             else begin
               let duration = Prng.int_in_range rng ~lo ~hi in
               let size, extra = sample_vec rng config in
               build (i + 1) ((slot * step, duration, size, extra) :: acc)
             end
           in
           Some (build 0 [], (slot + 1, rng))
         end)
       (0, rng))

let anchor_proto config rng =
  let hi = Ints.pow2 config.top_class in
  let lo = (hi / 2) + 1 in
  let duration = Prng.int_in_range rng ~lo ~hi in
  let size, extra = sample_vec rng config in
  Seq.return (0, duration, size, extra)

let stream ?(config = default) ~seed () : Event_source.t =
  validate config;
  (* One independent PRNG per sub-stream (anchor, then class 0 up),
     derived from a master in a fixed split order: deterministic in
     [seed], but a different draw schedule from [generate]'s shared
     sequential PRNG — the two constructors define distinct (equally
     valid, equally aligned) instance families for the same seed. *)
  let master = Prng.create ~seed in
  let anchor_rng = Prng.split master in
  let rec class_sources cls acc =
    if cls > config.top_class then List.rev acc
    else begin
      let rng = Prng.split master in
      class_sources (cls + 1) (class_protos config rng ~cls :: acc)
    end
  in
  let sources =
    (if config.seed_anchor then [ anchor_proto config anchor_rng ] else [])
    @ class_sources 0 []
  in
  (* Stable arrival-order merge: ties go to the earlier source (anchor
     first, then lower classes), fixing the id assignment below. *)
  let cmp (a, _, _, _) (b, _, _, _) = Int.compare a b in
  let protos =
    List.fold_right (fun s acc -> Event_source.merge_by ~cmp s acc) sources Seq.empty
  in
  (* Ids are assigned in emission order, so the sorted materialization
     of this source replays in exactly the streamed order. *)
  let rec with_ids id protos () =
    match protos () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((arrival, duration, size, extra), rest) ->
        Seq.Cons
          ( Item.make_vec ~extra ~id ~arrival ~departure:(arrival + duration) ~size,
            with_ids (id + 1) rest )
  in
  with_ids 0 protos

(* Chunked-emitter state for one sub-stream: its own split PRNG (so
   draw timing is independent of the other sources), the next slot to
   draw, and the (duration, size) protos still owed at [arrival]. *)
type src_state = {
  s_rng : Prng.t;
  s_step : int;
  s_lo : int;
  s_hi : int;
  mutable s_slot : int;
  mutable s_arrival : int;  (** arrival of [s_buf]; [max_int] = exhausted *)
  mutable s_buf : (int * Load.t * int array) list;
      (** (duration, size, extra dims), draw order *)
}

(* Advance [s] past empty slots to its next non-empty batch (draws are
   per slot: poisson, then duration + size per item — exactly
   [class_protos]' order on this source's own PRNG). *)
let rec src_refill config s =
  if s.s_buf <> [] then ()
  else if s.s_slot * s.s_step >= config.horizon then s.s_arrival <- max_int
  else begin
    let k = Prng.poisson s.s_rng ~lambda:config.rate in
    let rec build i acc =
      if i = k then List.rev acc
      else begin
        let duration = Prng.int_in_range s.s_rng ~lo:s.s_lo ~hi:s.s_hi in
        let size, extra = sample_vec s.s_rng config in
        build (i + 1) ((duration, size, extra) :: acc)
      end
    in
    s.s_arrival <- s.s_slot * s.s_step;
    s.s_buf <- build 0 [];
    s.s_slot <- s.s_slot + 1;
    if s.s_buf = [] then src_refill config s
  end

let chunks ?(config = default) ~seed () =
  validate config;
  (* Same split order as [stream]: anchor PRNG first (drawn whether or
     not the anchor is enabled), then one split per class — so the two
     constructors describe the same instance family per seed. The lazy
     merge is replaced by an O(sources) min-arrival scan per item;
     lowest source index wins ties (anchor, then class 0 up), matching
     [merge_by]'s left-wins fold, and ids are assigned in emission
     order. *)
  let master = Prng.create ~seed in
  let anchor_rng = Prng.split master in
  let class_src cls =
    let step = Ints.pow2 cls in
    let s =
      {
        s_rng = Prng.split master;
        s_step = step;
        s_lo = (step / 2) + 1;
        s_hi = step;
        s_slot = 0;
        s_arrival = max_int;
        s_buf = [];
      }
    in
    src_refill config s;
    s
  in
  let anchor_src () =
    let hi = Ints.pow2 config.top_class in
    let lo = (hi / 2) + 1 in
    let duration = Prng.int_in_range anchor_rng ~lo ~hi in
    let size, extra = sample_vec anchor_rng config in
    {
      s_rng = anchor_rng;
      (* Exhaust on refill: the one anchor proto is pre-drawn. *)
      s_step = config.horizon;
      s_lo = lo;
      s_hi = hi;
      s_slot = 1;
      s_arrival = 0;
      s_buf = [ (duration, size, extra) ];
    }
  in
  (* Explicit recursion: each [class_src] splits [master], so the
     classes must be built in ascending order ([List.init]'s
     application order is unspecified). *)
  let rec class_srcs cls acc =
    if cls > config.top_class then List.rev acc
    else class_srcs (cls + 1) (class_src cls :: acc)
  in
  let sources =
    Array.of_list
      ((if config.seed_anchor then [ anchor_src () ] else []) @ class_srcs 0 [])
  in
  let id = ref 0 in
  Event_source.Chunk.make (fun block slots ->
      let len = Array.length slots in
      let n = ref 0 in
      let running = ref true in
      while !running && !n < len do
        let best = ref (-1) in
        let best_a = ref max_int in
        for i = 0 to Array.length sources - 1 do
          let a = sources.(i).s_arrival in
          if a < !best_a then begin
            best_a := a;
            best := i
          end
        done;
        if !best < 0 then running := false
        else begin
          let s = sources.(!best) in
          match s.s_buf with
          | [] -> assert false (* [s_arrival < max_int] implies a proto *)
          | (duration, size, extra) :: rest ->
              let r =
                Item.make_vec ~extra ~id:!id ~arrival:s.s_arrival
                  ~departure:(s.s_arrival + duration) ~size
              in
              slots.(!n) <- Item_block.alloc block r;
              incr n;
              incr id;
              s.s_buf <- rest;
              if rest = [] then src_refill config s
        end
      done;
      !n)

let generate ?(config = default) ~seed () =
  validate config;
  let rng = Prng.create ~seed in
  let items = ref [] in
  let id = ref 0 in
  let add ~arrival ~cls =
    (* duration in (2^(cls-1), 2^cls]: the dyadic range of the class *)
    let hi = Ints.pow2 cls in
    let lo = (hi / 2) + 1 in
    let duration = Prng.int_in_range rng ~lo ~hi in
    let size, extra = sample_vec rng config in
    items :=
      Item.make_vec ~extra ~id:!id ~arrival ~departure:(arrival + duration) ~size
      :: !items;
    incr id
  in
  if config.seed_anchor then add ~arrival:0 ~cls:config.top_class;
  for cls = 0 to config.top_class do
    let step = Ints.pow2 cls in
    let slot = ref 0 in
    while !slot * step < config.horizon do
      let k = Prng.poisson rng ~lambda:config.rate in
      for _ = 1 to k do
        add ~arrival:(!slot * step) ~cls
      done;
      incr slot
    done
  done;
  Instance.of_items !items
