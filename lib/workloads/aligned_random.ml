open Dbp_util
open Dbp_instance

type config = {
  top_class : int;
  horizon : int;
  rate : float;
  min_size : float;
  max_size : float;
  seed_anchor : bool;
}

let default =
  {
    top_class = 8;
    horizon = 256;
    rate = 0.4;
    min_size = 0.05;
    max_size = 0.4;
    seed_anchor = true;
  }

let validate config =
  if config.top_class < 0 then invalid_arg "Aligned_random: negative top_class";
  if config.horizon < 1 then invalid_arg "Aligned_random: empty horizon";
  if config.min_size <= 0.0 || config.max_size > 1.0 || config.min_size > config.max_size
  then invalid_arg "Aligned_random: bad size range"

let sample_size rng config =
  Load.of_float
    (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))

(* Pre-id items of one class, lazily, slots ascending — so each class
   sub-stream is arrival-ordered and the merged stream only ever holds
   one pending slot per class. The per-node PRNG snapshot makes the
   sequence persistent. *)
let class_protos config rng ~cls =
  let step = Ints.pow2 cls in
  let hi = step and lo = (step / 2) + 1 in
  Seq.concat_map List.to_seq
    (Seq.unfold
       (fun (slot, rng) ->
         if slot * step >= config.horizon then None
         else begin
           let rng = Prng.copy rng in
           let k = Prng.poisson rng ~lambda:config.rate in
           let rec build i acc =
             if i = k then List.rev acc
             else begin
               let duration = Prng.int_in_range rng ~lo ~hi in
               let size = sample_size rng config in
               build (i + 1) ((slot * step, duration, size) :: acc)
             end
           in
           Some (build 0 [], (slot + 1, rng))
         end)
       (0, rng))

let anchor_proto config rng =
  let hi = Ints.pow2 config.top_class in
  let lo = (hi / 2) + 1 in
  let duration = Prng.int_in_range rng ~lo ~hi in
  let size = sample_size rng config in
  Seq.return (0, duration, size)

let stream ?(config = default) ~seed () : Event_source.t =
  validate config;
  (* One independent PRNG per sub-stream (anchor, then class 0 up),
     derived from a master in a fixed split order: deterministic in
     [seed], but a different draw schedule from [generate]'s shared
     sequential PRNG — the two constructors define distinct (equally
     valid, equally aligned) instance families for the same seed. *)
  let master = Prng.create ~seed in
  let anchor_rng = Prng.split master in
  let rec class_sources cls acc =
    if cls > config.top_class then List.rev acc
    else begin
      let rng = Prng.split master in
      class_sources (cls + 1) (class_protos config rng ~cls :: acc)
    end
  in
  let sources =
    (if config.seed_anchor then [ anchor_proto config anchor_rng ] else [])
    @ class_sources 0 []
  in
  (* Stable arrival-order merge: ties go to the earlier source (anchor
     first, then lower classes), fixing the id assignment below. *)
  let cmp (a, _, _) (b, _, _) = Int.compare a b in
  let protos =
    List.fold_right (fun s acc -> Event_source.merge_by ~cmp s acc) sources Seq.empty
  in
  (* Ids are assigned in emission order, so the sorted materialization
     of this source replays in exactly the streamed order. *)
  let rec with_ids id protos () =
    match protos () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((arrival, duration, size), rest) ->
        Seq.Cons
          ( Item.make ~id ~arrival ~departure:(arrival + duration) ~size,
            with_ids (id + 1) rest )
  in
  with_ids 0 protos

let generate ?(config = default) ~seed () =
  validate config;
  let rng = Prng.create ~seed in
  let items = ref [] in
  let id = ref 0 in
  let size () =
    Load.of_float
      (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))
  in
  let add ~arrival ~cls =
    (* duration in (2^(cls-1), 2^cls]: the dyadic range of the class *)
    let hi = Ints.pow2 cls in
    let lo = (hi / 2) + 1 in
    let duration = Prng.int_in_range rng ~lo ~hi in
    items :=
      Item.make ~id:!id ~arrival ~departure:(arrival + duration) ~size:(size ())
      :: !items;
    incr id
  in
  if config.seed_anchor then add ~arrival:0 ~cls:config.top_class;
  for cls = 0 to config.top_class do
    let step = Ints.pow2 cls in
    let slot = ref 0 in
    while !slot * step < config.horizon do
      let k = Prng.poisson rng ~lambda:config.rate in
      for _ = 1 to k do
        add ~arrival:(!slot * step) ~cls
      done;
      incr slot
    done
  done;
  Instance.of_items !items
