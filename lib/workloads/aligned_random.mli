(** Random aligned inputs (Definition 2.1): items of duration class [i]
    arrive only at multiples of [2^i].

    Used to evaluate CDFF beyond the structured binary input (experiment
    E12): arrivals per slot are Poisson, durations are uniform within the
    class's dyadic range, classes are weighted towards an expected load
    per tick. *)

type config = {
  top_class : int;  (** largest class; [mu <= 2^top_class] *)
  horizon : int;  (** arrivals occur in [[0, horizon)) *)
  rate : float;  (** expected items per (slot, class) pair *)
  min_size : float;  (** item sizes uniform in [[min_size, max_size]] *)
  max_size : float;
  seed_anchor : bool;
      (** when true (default), force one item of the top class at t = 0
          so the instance realizes [mu = 2^top_class] and starts a
          single CDFF segment. *)
  resource : Resource_shape.spec;
      (** dimensionality and shape of extra resource dimensions
          (default {!Resource_shape.scalar}); the uniform size draw is
          dimension 0, and extra draws ride on each sub-stream's own
          PRNG. Scalar configs keep the historical PRNG schedule bit
          for bit. *)
}

val default : config

val generate : ?config:config -> seed:int -> unit -> Dbp_instance.Instance.t
(** Deterministic in [seed]. The result always satisfies
    [Instance.is_aligned]. *)

val stream : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.t
(** A lazy aligned source: one arrival-ordered sub-stream per class
    (each with an independent PRNG split from [seed]), merged with
    {!Dbp_instance.Event_source.merge_by} so memory is O(top_class)
    rather than O(items). Deterministic and persistent, and always
    aligned — but a {e different} instance family from {!generate} for
    the same seed, whose single shared PRNG cannot be replayed without
    materializing. *)

val chunks : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.Chunk.t
(** The same instance as {!stream} — item-for-item identical, same
    split order and ids — as a native chunked emitter: the lazy merge
    becomes an O(classes) min-arrival scan per item with per-source
    proto buffers, no PRNG copies and no Seq allocation. Single-pass
    (build a fresh emitter per run). *)
