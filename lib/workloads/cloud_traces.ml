open Dbp_util
open Dbp_instance

type config = {
  days : int;
  base_rate : float;
  diurnal_depth : float;
  duration_mu : float;
  duration_sigma : float;
  min_duration : int;
  max_duration : int;
  tiers : float array;
}

let default =
  {
    days = 3;
    base_rate = 2.0;
    diurnal_depth = 0.8;
    duration_mu = log 45.0;
    duration_sigma = 0.9;
    min_duration = 5;
    max_duration = 480;
    tiers = [| 0.125; 0.1875; 0.25; 0.5 |];
  }

let validate config =
  if config.days < 1 then invalid_arg "Cloud_traces: days < 1";
  if config.min_duration < 1 || config.min_duration > config.max_duration then
    invalid_arg "Cloud_traces: bad duration truncation";
  if Array.length config.tiers = 0 then invalid_arg "Cloud_traces: no tiers";
  Array.iter
    (fun tier ->
      if tier <= 0.0 || tier > 1.0 then invalid_arg "Cloud_traces: tier out of (0, 1]")
    config.tiers

(* One tick's worth of arrivals, in draw order (= id order). *)
let tick_items config rng ~t ~first_id =
  (* Diurnal modulation: peak at 20:00, trough 12 hours away. *)
  let phase = float_of_int (t mod 1440) /. 1440.0 in
  let wave = 0.5 *. (1.0 +. cos (2.0 *. Float.pi *. (phase -. (20.0 /. 24.0)))) in
  let rate = config.base_rate *. (1.0 -. (config.diurnal_depth *. (1.0 -. wave))) in
  let arrivals = Prng.poisson rng ~lambda:rate in
  (* Explicit loop: the per-item draws must happen in id order
     ([List.init]'s application order is unspecified). *)
  let rec build k acc =
    if k = arrivals then List.rev acc
    else begin
      let d =
        Prng.log_normal rng ~mu:config.duration_mu ~sigma:config.duration_sigma
      in
      let duration =
        (* Int clamp without polymorphic min/max (a C call per draw). *)
        let d = int_of_float d in
        let d = if d > config.max_duration then config.max_duration else d in
        if d < config.min_duration then config.min_duration else d
      in
      let size = Load.of_float (Prng.choice rng config.tiers) in
      build (k + 1)
        (Item.make ~id:(first_id + k) ~arrival:t ~departure:(t + duration) ~size :: acc)
    end
  in
  build 0 []

let stream ?(config = default) ~seed () : Event_source.t =
  validate config;
  let horizon = config.days * 1440 in
  (* The PRNG in the unfold state is copied before every draw, so
     re-forcing any node replays the same items: the source is
     persistent even though Prng.t is mutable. *)
  Seq.concat_map List.to_seq
    (Seq.unfold
       (fun (t, id, rng) ->
         if t >= horizon then None
         else begin
           let rng = Prng.copy rng in
           let items = tick_items config rng ~t ~first_id:id in
           Some (items, (t + 1, id + List.length items, rng))
         end)
       (0, 0, Prng.create ~seed))

let generate ?(config = default) ~seed () =
  validate config;
  let rng = Prng.create ~seed in
  let horizon = config.days * 1440 in
  let items = ref [] in
  let id = ref 0 in
  for t = 0 to horizon - 1 do
    let batch = tick_items config rng ~t ~first_id:!id in
    items := List.rev_append batch !items;
    id := !id + List.length batch
  done;
  Instance.of_items !items
