open Dbp_util
open Dbp_instance

type config = {
  days : int;
  base_rate : float;
  diurnal_depth : float;
  duration_mu : float;
  duration_sigma : float;
  min_duration : int;
  max_duration : int;
  tiers : float array;
  resource : Resource_shape.spec;
}

let default =
  {
    days = 3;
    base_rate = 2.0;
    diurnal_depth = 0.8;
    duration_mu = log 45.0;
    duration_sigma = 0.9;
    min_duration = 5;
    max_duration = 480;
    tiers = [| 0.125; 0.1875; 0.25; 0.5 |];
    resource = Resource_shape.scalar;
  }

let validate config =
  if config.days < 1 then invalid_arg "Cloud_traces: days < 1";
  if config.min_duration < 1 || config.min_duration > config.max_duration then
    invalid_arg "Cloud_traces: bad duration truncation";
  if Array.length config.tiers = 0 then invalid_arg "Cloud_traces: no tiers";
  Array.iter
    (fun tier ->
      if tier <= 0.0 || tier > 1.0 then invalid_arg "Cloud_traces: tier out of (0, 1]")
    config.tiers;
  Resource_shape.validate config.resource

(* Diurnal modulation: peak at 20:00, trough 12 hours away. *)
let tick_rate config ~t =
  let phase = float_of_int (t mod 1440) /. 1440.0 in
  let wave = 0.5 *. (1.0 +. cos (2.0 *. Float.pi *. (phase -. (20.0 /. 24.0)))) in
  config.base_rate *. (1.0 -. (config.diurnal_depth *. (1.0 -. wave)))

(* One item's draws, in order: log-normal duration, then tier choice,
   then (vector configs only) one draw per extra dimension. Every
   constructor goes through here, so stream/chunks/generate share one
   schedule at any dimensionality. *)
let draw_item config rng ~id ~arrival =
  let d = Prng.log_normal rng ~mu:config.duration_mu ~sigma:config.duration_sigma in
  let duration =
    (* Int clamp without polymorphic min/max (a C call per draw). *)
    let d = int_of_float d in
    let d = if d > config.max_duration then config.max_duration else d in
    if d < config.min_duration then config.min_duration else d
  in
  let size = Load.of_float (Prng.choice rng config.tiers) in
  let extra =
    Resource_shape.draw_extra config.resource rng ~base:(Load.to_float size)
  in
  Item.make_vec ~extra ~id ~arrival ~departure:(arrival + duration) ~size

(* One tick's worth of arrivals, in draw order (= id order). *)
let tick_items config rng ~t ~first_id =
  let arrivals = Prng.poisson rng ~lambda:(tick_rate config ~t) in
  (* Explicit loop: the per-item draws must happen in id order
     ([List.init]'s application order is unspecified). *)
  let rec build k acc =
    if k = arrivals then List.rev acc
    else build (k + 1) (draw_item config rng ~id:(first_id + k) ~arrival:t :: acc)
  in
  build 0 []

let stream ?(config = default) ~seed () : Event_source.t =
  validate config;
  let horizon = config.days * 1440 in
  (* The PRNG in the unfold state is copied before every draw, so
     re-forcing any node replays the same items: the source is
     persistent even though Prng.t is mutable. *)
  Seq.concat_map List.to_seq
    (Seq.unfold
       (fun (t, id, rng) ->
         if t >= horizon then None
         else begin
           let rng = Prng.copy rng in
           let items = tick_items config rng ~t ~first_id:id in
           Some (items, (t + 1, id + List.length items, rng))
         end)
       (0, 0, Prng.create ~seed))

let chunks ?(config = default) ~seed () =
  validate config;
  let horizon = config.days * 1440 in
  (* Single-pass emitter: one PRNG advanced in exactly [tick_items]'
     draw order (poisson per tick, then duration + tier per item), so
     the item sequence is bit-identical to [stream ~seed] — but with no
     per-tick PRNG copy, no per-tick list and no Seq nodes. [left]
     counts the arrivals still owed by the current tick, letting a
     chunk boundary fall mid-tick without disturbing the schedule. *)
  let rng = Prng.create ~seed in
  let t = ref 0 in
  let id = ref 0 in
  let left = ref 0 in
  Event_source.Chunk.make (fun block slots ->
      let len = Array.length slots in
      let n = ref 0 in
      let running = ref true in
      while !running && !n < len do
        if !left > 0 then begin
          let r = draw_item config rng ~id:!id ~arrival:!t in
          slots.(!n) <- Item_block.alloc block r;
          incr n;
          incr id;
          decr left;
          if !left = 0 then incr t
        end
        else if !t >= horizon then running := false
        else begin
          left := Prng.poisson rng ~lambda:(tick_rate config ~t:!t);
          if !left = 0 then incr t
        end
      done;
      !n)

let generate ?(config = default) ~seed () =
  validate config;
  let rng = Prng.create ~seed in
  let horizon = config.days * 1440 in
  let items = ref [] in
  let id = ref 0 in
  for t = 0 to horizon - 1 do
    let batch = tick_items config rng ~t ~first_id:!id in
    items := List.rev_append batch !items;
    id := !id + List.length batch
  done;
  Instance.of_items !items
