(** Synthetic cloud-gaming session traces — the paper's motivating
    application (Section 1; Li et al. [8] show session lengths are
    predictable at request time, which is what makes the clairvoyant
    model realistic).

    Real traces are proprietary, so this generator produces the same
    *statistical shape* (DESIGN.md, Substitutions): a diurnal
    (sinusoidal) Poisson arrival process over several simulated days,
    log-normal session durations truncated into a configurable [mu], and
    bandwidth demands drawn from a small set of service tiers. Time unit:
    one tick = one minute. *)

type config = {
  days : int;  (** horizon = days * 1440 ticks *)
  base_rate : float;  (** mean arrivals per minute at the diurnal peak *)
  diurnal_depth : float;
      (** 0 = flat arrivals, 1 = night rate drops to zero *)
  duration_mu : float;  (** log-normal location (log minutes) *)
  duration_sigma : float;  (** log-normal scale *)
  min_duration : int;  (** truncation (ticks); >= 1 *)
  max_duration : int;
  tiers : float array;  (** bandwidth fractions, e.g. 1/8 .. 1/2 *)
  resource : Resource_shape.spec;
      (** dimensionality and shape of extra resource dimensions
          (default {!Resource_shape.scalar}); the tier draw is
          dimension 0 and the [base] of correlated/adversarial
          shapes. Scalar configs keep the historical PRNG schedule
          bit for bit. *)
}

val default : config
(** 3 days, peak 2 sessions/min, durations ~ log-normal(median 45 min)
    truncated to [5, 480] minutes, four service tiers. *)

val generate : ?config:config -> seed:int -> unit -> Dbp_instance.Instance.t

val stream : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.t
(** The same trace as {!generate} — identical PRNG schedule, items and
    ids — produced lazily in arrival order, in O(1) memory per tick.
    The source is persistent (it may be forced repeatedly). *)

val chunks : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.Chunk.t
(** The same trace as {!stream} — item-for-item identical — as a native
    chunked emitter: one PRNG advanced straight through the schedule,
    no per-tick copies, no list or Seq allocation per item. Single-pass
    (build a fresh emitter per run). *)
