open Dbp_util
open Dbp_instance

type duration_dist = Uniform | Dyadic_uniform | Pareto of float | Bimodal of float

type config = {
  horizon : int;
  arrival_rate : float;
  max_duration : int;
  dist : duration_dist;
  min_size : float;
  max_size : float;
  anchor_mu : bool;
  resource : Resource_shape.spec;
}

let default =
  {
    horizon = 256;
    arrival_rate = 0.8;
    max_duration = 64;
    dist = Dyadic_uniform;
    min_size = 0.05;
    max_size = 0.4;
    anchor_mu = true;
    resource = Resource_shape.scalar;
  }

let sample_duration rng config =
  let d =
    match config.dist with
    | Uniform -> Prng.int_in_range rng ~lo:1 ~hi:config.max_duration
    | Dyadic_uniform ->
        let top = Ints.ceil_log2 config.max_duration in
        let cls = Prng.int_below rng (top + 1) in
        let hi = Ints.pow2 cls in
        let lo = (hi / 2) + 1 in
        Prng.int_in_range rng ~lo ~hi
    | Pareto alpha -> int_of_float (Prng.pareto rng ~alpha ~x_min:1.0)
    | Bimodal p_short ->
        if Prng.bernoulli rng ~p:p_short then 1
        else config.max_duration - Prng.int_below rng (max 1 (config.max_duration / 8))
  in
  max 1 (min config.max_duration d)

let validate config =
  if config.horizon < 1 then invalid_arg "General_random: empty horizon";
  if config.max_duration < 1 then invalid_arg "General_random: max_duration < 1";
  if config.min_size <= 0.0 || config.max_size > 1.0 || config.min_size > config.max_size
  then invalid_arg "General_random: bad size range";
  Resource_shape.validate config.resource

let sample_size rng config =
  Load.of_float
    (config.min_size +. (Prng.float_unit rng *. (config.max_size -. config.min_size)))

(* Shared by all three constructors: size draw, then (vector configs
   only) one draw per extra dimension — one schedule everywhere. *)
let make_item rng config ~id ~arrival ~duration =
  let size = sample_size rng config in
  let extra =
    Resource_shape.draw_extra config.resource rng ~base:(Load.to_float size)
  in
  Item.make_vec ~extra ~id ~arrival ~departure:(arrival + duration) ~size

(* Anchor items (drawn before any tick so mu is pinned first). *)
let anchor_items config rng =
  if not config.anchor_mu then []
  else begin
    let a = make_item rng config ~id:0 ~arrival:0 ~duration:config.max_duration in
    let b = make_item rng config ~id:1 ~arrival:0 ~duration:1 in
    [ a; b ]
  end

(* One tick's arrivals in draw order (= id order): per item, the
   duration draw precedes the size draw, as [generate] always did. *)
let tick_items config rng ~t ~first_id =
  let k = Prng.poisson rng ~lambda:config.arrival_rate in
  let rec build i acc =
    if i = k then List.rev acc
    else begin
      let duration = sample_duration rng config in
      build (i + 1) (make_item rng config ~id:(first_id + i) ~arrival:t ~duration :: acc)
    end
  in
  build 0 []

let stream ?(config = default) ~seed () : Event_source.t =
  validate config;
  (* Tick -1 emits the anchors; the PRNG snapshot in each unfold state
     is copied before drawing, so the source is persistent. *)
  Seq.concat_map List.to_seq
    (Seq.unfold
       (fun (t, id, rng) ->
         if t >= config.horizon then None
         else begin
           let rng = Prng.copy rng in
           let items =
             if t < 0 then anchor_items config rng
             else tick_items config rng ~t ~first_id:id
           in
           Some (items, (t + 1, id + List.length items, rng))
         end)
       ((if config.anchor_mu then -1 else 0), 0, Prng.create ~seed))

let chunks ?(config = default) ~seed () =
  validate config;
  (* Single-pass emitter mirroring [stream]'s draw schedule without the
     per-tick PRNG copies: tick -1 owes the two anchors (durations
     pinned, only the size is drawn — exactly [anchor_items]), every
     real tick owes a poisson batch with duration-then-size draws per
     item. [left] carries the balance of the current tick across chunk
     boundaries. *)
  let rng = Prng.create ~seed in
  let t = ref (if config.anchor_mu then -1 else 0) in
  let id = ref 0 in
  let left = ref 0 in
  Event_source.Chunk.make (fun block slots ->
      let len = Array.length slots in
      let n = ref 0 in
      let running = ref true in
      while !running && !n < len do
        if !left > 0 then begin
          let r =
            if !t < 0 then
              (* Anchors at arrival 0: max-duration first, then 1. *)
              let duration = if !left = 2 then config.max_duration else 1 in
              make_item rng config ~id:!id ~arrival:0 ~duration
            else
              let duration = sample_duration rng config in
              make_item rng config ~id:!id ~arrival:!t ~duration
          in
          slots.(!n) <- Item_block.alloc block r;
          incr n;
          incr id;
          decr left;
          if !left = 0 then incr t
        end
        else if !t >= config.horizon then running := false
        else if !t < 0 then left := 2
        else begin
          left := Prng.poisson rng ~lambda:config.arrival_rate;
          if !left = 0 then incr t
        end
      done;
      !n)

let generate ?(config = default) ~seed () =
  validate config;
  let rng = Prng.create ~seed in
  let items = ref (List.rev (anchor_items config rng)) in
  let id = ref (List.length !items) in
  for t = 0 to config.horizon - 1 do
    let batch = tick_items config rng ~t ~first_id:!id in
    items := List.rev_append batch !items;
    id := !id + List.length batch
  done;
  Instance.of_items !items
