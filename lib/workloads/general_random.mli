(** General stochastic clairvoyant workloads (no alignment).

    Poisson arrivals over a horizon; durations from a configurable family
    bounded into [[1, max_duration]] so [mu] is controlled. Used by the
    HA sweeps (E7) and the all-algorithms comparison (E1/E13). *)

type duration_dist =
  | Uniform  (** uniform on [[1, max_duration]] *)
  | Dyadic_uniform
      (** pick a duration class uniformly, then a duration inside it —
          equal mass per order of magnitude, the regime the paper's
          classify-by-duration analysis targets *)
  | Pareto of float  (** heavy tail with the given shape, truncated *)
  | Bimodal of float
      (** short jobs of duration 1 with the given probability, otherwise
          long jobs near [max_duration] — the cloud-burst caricature *)

type config = {
  horizon : int;
  arrival_rate : float;  (** expected arrivals per tick *)
  max_duration : int;  (** so mu <= max_duration *)
  dist : duration_dist;
  min_size : float;
  max_size : float;
  anchor_mu : bool;
      (** force one duration-1 and one duration-max item so the
          realized mu equals max_duration exactly (default true). *)
  resource : Resource_shape.spec;
      (** dimensionality and shape of extra resource dimensions
          (default {!Resource_shape.scalar}); the uniform size draw is
          dimension 0. Scalar configs keep the historical PRNG
          schedule bit for bit. *)
}

val default : config

val generate : ?config:config -> seed:int -> unit -> Dbp_instance.Instance.t

val stream : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.t
(** The same instance as {!generate} — identical PRNG schedule, items
    and ids — produced lazily in arrival order, in O(1) memory per
    tick. The source is persistent (it may be forced repeatedly). *)

val chunks : ?config:config -> seed:int -> unit -> Dbp_instance.Event_source.Chunk.t
(** The same instance as {!stream} — item-for-item identical — as a
    native chunked emitter: one PRNG advanced straight through the
    schedule (anchors included), no per-tick copies, no list or Seq
    allocation per item. Single-pass (build a fresh emitter per
    run). *)
