open Dbp_util
open Dbp_instance

(* Rebuild an item with clamped fields; the single funnel every
   mutation goes through, so validity is enforced in one place. *)
let remake ~extra ~id ~arrival ~departure ~size_units =
  let arrival = max 0 arrival in
  let departure = max (arrival + 1) departure in
  let size_units = min Load.capacity (max 1 size_units) in
  Item.make_vec ~extra ~id ~arrival ~departure ~size:(Load.of_units size_units)

let fresh_id items = 1 + List.fold_left (fun acc (r : Item.t) -> max acc r.id) (-1) items

(* One random edit on the item list. Each branch is total: if the edit
   cannot apply (e.g. dropping from a singleton would empty the
   instance), it returns the list unchanged. *)
let edit rng items =
  let n = List.length items in
  if n = 0 then items
  else
    let pick () = Prng.int_below rng n in
    let nth k = List.nth items k in
    let replace k r' = List.mapi (fun i r -> if i = k then r' else r) items in
    match Prng.int_below rng 7 with
    | 0 when n > 1 ->
        (* drop one item *)
        let k = pick () in
        List.filteri (fun i _ -> i <> k) items
    | 1 ->
        (* duplicate with a fresh id, shifted by up to one duration *)
        let (r : Item.t) = nth (pick ()) in
        let shift = Prng.int_in_range rng ~lo:0 ~hi:(Item.duration r) in
        remake ~extra:r.extra ~id:(fresh_id items) ~arrival:(r.arrival + shift)
          ~departure:(r.departure + shift) ~size_units:(Load.to_units r.size)
        :: items
    | 2 ->
        (* resize: halve, double, or nudge by one unit *)
        let k = pick () in
        let (r : Item.t) = nth k in
        let u = Load.to_units r.size in
        let u' =
          match Prng.int_below rng 4 with
          | 0 -> u / 2
          | 1 -> u * 2
          | 2 -> u + 1
          | _ -> u - 1
        in
        replace k (remake ~extra:r.extra ~id:r.id ~arrival:r.arrival ~departure:r.departure ~size_units:u')
    | 3 ->
        (* stretch or shorten the duration around a class boundary *)
        let k = pick () in
        let (r : Item.t) = nth k in
        let d = Item.duration r in
        let d' =
          match Prng.int_below rng 4 with
          | 0 -> d * 2
          | 1 -> d / 2
          | 2 -> d + 1
          | _ -> d - 1
        in
        replace k
          (remake ~extra:r.extra ~id:r.id ~arrival:r.arrival ~departure:(r.arrival + max 1 d')
             ~size_units:(Load.to_units r.size))
    | 4 ->
        (* translate in time (possibly past other items) *)
        let k = pick () in
        let (r : Item.t) = nth k in
        let shift = Prng.int_in_range rng ~lo:(-r.arrival) ~hi:(Item.duration r) in
        replace k
          (remake ~extra:r.extra ~id:r.id ~arrival:(r.arrival + shift) ~departure:(r.departure + shift)
             ~size_units:(Load.to_units r.size))
    | 5 ->
        (* snap to aligned (Definition 2.1): arrival down to a multiple
           of 2^class — turns near-aligned noise into legal CDFF input *)
        let k = pick () in
        let (r : Item.t) = nth k in
        let block = Ints.pow2 (Item.length_class r) in
        let a' = r.arrival / block * block in
        replace k
          (remake ~extra:r.extra ~id:r.id ~arrival:a' ~departure:(a' + Item.duration r)
             ~size_units:(Load.to_units r.size))
    | _ ->
        (* split: replace one item by two half-duration halves *)
        let k = pick () in
        let (r : Item.t) = nth k in
        let d = Item.duration r in
        if d < 2 then items
        else
          let mid = r.arrival + (d / 2) in
          let u = Load.to_units r.size in
          remake ~extra:r.extra ~id:(fresh_id items) ~arrival:mid ~departure:r.departure ~size_units:u
          :: replace k (remake ~extra:r.extra ~id:r.id ~arrival:r.arrival ~departure:mid ~size_units:u)

let mutate rng ?(ops = 8) inst =
  let items = ref (Array.to_list (Instance.items inst)) in
  for _ = 1 to ops do
    items := edit rng !items
  done;
  Instance.of_items !items
