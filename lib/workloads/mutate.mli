(** Mutation-based instance generation for the differential fuzzer.

    Starting from a seed instance produced by any structured generator,
    apply a burst of small random edits — drop, duplicate-and-shift,
    resize, stretch/shorten, translate, snap-to-aligned — so the fuzz
    corpus covers the *neighbourhood* of the structured inputs: almost-
    aligned instances, almost-binary instances, instances whose duration
    classes straddle a boundary. Structured generators alone never
    produce these, yet they are exactly where off-by-one bugs in class
    and row arithmetic hide.

    All mutations preserve instance validity: ids stay distinct,
    durations stay >= 1, arrivals stay >= 0, sizes stay in
    (0, {!Dbp_util.Load.one}]. Deterministic in the PRNG state. *)

open Dbp_instance

val mutate : Dbp_util.Prng.t -> ?ops:int -> Instance.t -> Instance.t
(** Apply [ops] random edits (default 8). The empty instance is
    returned unchanged except that duplicate-style mutations cannot
    apply; mutating never yields an invalid instance. *)
