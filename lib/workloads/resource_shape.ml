open Dbp_util
open Dbp_instance

type t = Independent | Correlated of float | Adversarial

type spec = { dims : int; shape : t; dim_mu : float array }

let scalar = { dims = 1; shape = Independent; dim_mu = [||] }

let validate spec =
  if spec.dims < 1 then invalid_arg "Resource_shape: dims < 1";
  (match spec.shape with
  | Correlated rho when rho < 0.0 || rho > 1.0 || Float.is_nan rho ->
      invalid_arg "Resource_shape: correlation out of [0, 1]"
  | _ -> ());
  let n = Array.length spec.dim_mu in
  if n <> 0 && n <> spec.dims - 1 then
    invalid_arg "Resource_shape: dim_mu must be empty or have dims - 1 entries";
  Array.iter
    (fun m ->
      if not (m > 0.0 && m <= 1.0) then
        invalid_arg "Resource_shape: dim_mu entry out of (0, 1]")
    spec.dim_mu

let shape_to_string = function
  | Independent -> "independent"
  | Correlated rho -> Printf.sprintf "correlated:%g" rho
  | Adversarial -> "adversarial"

let shape_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "independent" -> Some Independent
  | "adversarial" -> Some Adversarial
  | "correlated" -> Some (Correlated 0.8)
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "correlated" -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt arg with
          | Some rho when rho >= 0.0 && rho <= 1.0 -> Some (Correlated rho)
          | _ -> None)
      | _ -> None)

(* Extra-dimension sizes for one item whose dimension-0 size is [base]
   (a bin fraction). The draws advance the PRNG once per extra
   dimension for Independent/Correlated and not at all for Adversarial
   — an explicit loop in dimension order, so every constructor of a
   workload (generate, stream, chunks) advances an identical schedule.
   With [dims = 1] this returns the shared empty array and touches
   nothing: the scalar schedule is bit-identical to the pre-vector
   code. *)
let draw_extra spec rng ~base =
  if spec.dims = 1 then Item.no_extra
  else begin
    let n = spec.dims - 1 in
    let out = Array.make n 0 in
    for k = 0 to n - 1 do
      let m = if Array.length spec.dim_mu = 0 then 1.0 else spec.dim_mu.(k) in
      let v =
        match spec.shape with
        | Independent -> Prng.float_unit rng *. m
        | Correlated rho ->
            ((rho *. base) +. ((1.0 -. rho) *. Prng.float_unit rng)) *. m
        | Adversarial -> (1.0 -. base) *. m
      in
      out.(k) <- Load.to_units (Load.of_float v)
    done;
    out
  end
