(** How extra resource dimensions of generated items relate to the
    dimension-0 size — the knob every workload generator shares for
    vector (d-dimensional) instances. *)

open Dbp_util

type t =
  | Independent  (** Each extra dimension is a fresh uniform draw. *)
  | Correlated of float
      (** [Correlated rho] blends the dimension-0 size with a fresh
          uniform draw: [rho * base + (1 - rho) * u]. [rho = 1] makes
          every dimension equal to dimension 0, [rho = 0] degenerates
          to {!Independent}. *)
  | Adversarial
      (** Each extra dimension mirrors dimension 0 as [1 - base] — no
          PRNG draw. Small items in one dimension are large in the
          others, the shape that separates vector packing from running
          d independent scalar instances. *)

type spec = {
  dims : int;  (** Total dimensions, >= 1. [1] = scalar, no extras. *)
  shape : t;
  dim_mu : float array;
      (** Per-extra-dimension mean scale in (0, 1], applied as a
          multiplier after the shape draw. Empty = all 1.0; otherwise
          must hold [dims - 1] entries. *)
}

val scalar : spec
(** [{ dims = 1; shape = Independent; dim_mu = [||] }] — the default
    embedded in every workload config. *)

val validate : spec -> unit
(** Raises [Invalid_argument] on [dims < 1], a correlation outside
    [0, 1], or a [dim_mu] of the wrong length or with entries outside
    (0, 1]. *)

val shape_to_string : t -> string
val shape_of_string : string -> t option
(** ["independent"], ["adversarial"], ["correlated"] (rho 0.8) or
    ["correlated:RHO"]; case-insensitive. [None] on anything else. *)

val draw_extra : spec -> Prng.t -> base:float -> int array
(** Sizes (in {!Load} units) for dimensions [1 .. dims - 1] of one item
    whose dimension-0 size is [base] (a bin fraction). Advances [rng]
    once per extra dimension for [Independent]/[Correlated], not at all
    for [Adversarial]. At [dims = 1] returns {!Dbp_instance.Item.no_extra}
    without touching [rng] — scalar PRNG schedules are untouched.
    Results are clamped to [0, capacity] via {!Load.of_float}, and the
    returned array is fresh: callers may hand it to
    {!Dbp_instance.Item.make_vec} directly. *)
