#!/bin/sh
# Tier-1 gate plus a parallel-path smoke test: build, run the test
# suite, then run one sweep-heavy experiment with --jobs 2 and require
# its report to be byte-identical to the inline (--jobs 1) run, so the
# domain-pool path is exercised on every change. Usage: make check
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

smoke=theorem32
echo "smoke: experiment $smoke with --jobs 1 vs --jobs 2"
dune exec bin/main.exe -- experiment "$smoke" --jobs 1 \
  --metrics-json "$tmpdir/smoke1.json" > "$tmpdir/j1.txt"
dune exec bin/main.exe -- experiment "$smoke" --jobs 2 \
  --metrics-json "$tmpdir/smoke2.json" > "$tmpdir/j2.txt"
if ! cmp -s "$tmpdir/j1.txt" "$tmpdir/j2.txt"; then
  echo "FAIL: $smoke output differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/j1.txt" "$tmpdir/j2.txt" >&2 || true
  exit 1
fi
echo "smoke: parallel run bit-identical to inline run"

# Incremental OPT_R perf gate: the E5 reference family must keep at
# least half its segments out of branch-and-bound, and the node total
# must not regress past the seed's from-scratch sweep (102557 nodes,
# recorded when the incremental solver landed).
echo "optr: incremental solver counters on the E5 reference family"
dune exec bench/main.exe -- --skip-exps --skip-micro --json "$tmpdir/bench.json" \
  > /dev/null
e5_baseline_nodes=102557
e5=$(grep '"OPT_R/E5' "$tmpdir/bench.json")
field() { printf '%s\n' "$e5" | sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p"; }
segments=$(field segments)
bb_searches=$(field bb_searches)
bb_nodes=$(field bb_nodes)
if [ -z "$segments" ] || [ -z "$bb_searches" ] || [ -z "$bb_nodes" ]; then
  echo "FAIL: could not parse OPT_R/E5 counters from bench --json" >&2
  exit 1
fi
if [ "$bb_nodes" -gt "$e5_baseline_nodes" ]; then
  echo "FAIL: E5 bb_nodes=$bb_nodes exceeds seed baseline $e5_baseline_nodes" >&2
  exit 1
fi
if [ $((2 * (segments - bb_searches))) -lt "$segments" ]; then
  echo "FAIL: fewer than half of E5 segments resolved without search" \
    "(segments=$segments bb_searches=$bb_searches)" >&2
  exit 1
fi
echo "optr: E5 bb_nodes=$bb_nodes <= $e5_baseline_nodes," \
  "$((segments - bb_searches))/$segments segments without search"

# Observability gate: one E5 run with --trace and --metrics-json must
# produce non-empty valid JSON in both files, and the deterministic
# "metrics" section must be identical between --jobs 1 and --jobs 2.
echo "obs: experiment E5 with --metrics-json and --trace"
json_ok() {
  [ -s "$1" ] || return 1
  if command -v jq > /dev/null 2>&1; then jq -e . "$1" > /dev/null
  else python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$1"
  fi
}
metrics_section() {
  if command -v jq > /dev/null 2>&1; then jq -S .metrics "$1" > "$2"
  else
    python3 -c 'import json,sys
json.dump(json.load(open(sys.argv[1]))["metrics"], open(sys.argv[2], "w"),
          sort_keys=True, indent=1)' "$1" "$2"
  fi
}
dune exec bin/main.exe -- experiment E5 --jobs 2 \
  --metrics-json "$tmpdir/m2.json" --trace "$tmpdir/t2.json" > /dev/null
dune exec bin/main.exe -- experiment E5 --jobs 1 \
  --metrics-json "$tmpdir/m1.json" > /dev/null
for f in m1.json m2.json t2.json; do
  if ! json_ok "$tmpdir/$f"; then
    echo "FAIL: $f is empty or not valid JSON" >&2
    exit 1
  fi
done
for pair in "m1 m2" "smoke1 smoke2"; do
  set -- $pair
  metrics_section "$tmpdir/$1.json" "$tmpdir/$1.det"
  metrics_section "$tmpdir/$2.json" "$tmpdir/$2.det"
  if ! cmp -s "$tmpdir/$1.det" "$tmpdir/$2.det"; then
    echo "FAIL: deterministic metrics differ between --jobs 1 and --jobs 2 ($1 vs $2)" >&2
    diff "$tmpdir/$1.det" "$tmpdir/$2.det" >&2 || true
    exit 1
  fi
done
echo "obs: trace + metrics JSON valid, metrics jobs-invariant"
echo "check OK"
