#!/bin/sh
# Tier-1 gate plus a parallel-path smoke test: build, run the test
# suite, then run one sweep-heavy experiment with --jobs 2 and require
# its report to be byte-identical to the inline (--jobs 1) run, so the
# domain-pool path is exercised on every change. Usage: make check
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

smoke=theorem32
echo "smoke: experiment $smoke with --jobs 1 vs --jobs 2"
dune exec bin/main.exe -- experiment "$smoke" --jobs 1 \
  --metrics-json "$tmpdir/smoke1.json" > "$tmpdir/j1.txt"
dune exec bin/main.exe -- experiment "$smoke" --jobs 2 \
  --metrics-json "$tmpdir/smoke2.json" > "$tmpdir/j2.txt"
if ! cmp -s "$tmpdir/j1.txt" "$tmpdir/j2.txt"; then
  echo "FAIL: $smoke output differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/j1.txt" "$tmpdir/j2.txt" >&2 || true
  exit 1
fi
echo "smoke: parallel run bit-identical to inline run"

# Incremental OPT_R perf gate: the E5 reference family must keep at
# least half its segments out of branch-and-bound, and the node total
# must not regress past the seed's from-scratch sweep (102557 nodes,
# recorded when the incremental solver landed).
echo "optr: incremental solver counters on the E5 reference family"
dune exec bench/main.exe -- --skip-exps --skip-micro --json "$tmpdir/bench.json" \
  > /dev/null
e5_baseline_nodes=102557
e5=$(grep '"OPT_R/E5' "$tmpdir/bench.json")
field() { printf '%s\n' "$e5" | sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p"; }
segments=$(field segments)
bb_searches=$(field bb_searches)
bb_nodes=$(field bb_nodes)
if [ -z "$segments" ] || [ -z "$bb_searches" ] || [ -z "$bb_nodes" ]; then
  echo "FAIL: could not parse OPT_R/E5 counters from bench --json" >&2
  exit 1
fi
if [ "$bb_nodes" -gt "$e5_baseline_nodes" ]; then
  echo "FAIL: E5 bb_nodes=$bb_nodes exceeds seed baseline $e5_baseline_nodes" >&2
  exit 1
fi
if [ $((2 * (segments - bb_searches))) -lt "$segments" ]; then
  echo "FAIL: fewer than half of E5 segments resolved without search" \
    "(segments=$segments bb_searches=$bb_searches)" >&2
  exit 1
fi
echo "optr: E5 bb_nodes=$bb_nodes <= $e5_baseline_nodes," \
  "$((segments - bb_searches))/$segments segments without search"

# Observability gate: one E5 run with --trace and --metrics-json must
# produce non-empty valid JSON in both files, and the deterministic
# "metrics" section must be identical between --jobs 1 and --jobs 2.
echo "obs: experiment E5 with --metrics-json and --trace"
json_ok() {
  [ -s "$1" ] || return 1
  if command -v jq > /dev/null 2>&1; then jq -e . "$1" > /dev/null
  else python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$1"
  fi
}
metrics_section() {
  if command -v jq > /dev/null 2>&1; then jq -S .metrics "$1" > "$2"
  else
    python3 -c 'import json,sys
json.dump(json.load(open(sys.argv[1]))["metrics"], open(sys.argv[2], "w"),
          sort_keys=True, indent=1)' "$1" "$2"
  fi
}
dune exec bin/main.exe -- experiment E5 --jobs 2 \
  --metrics-json "$tmpdir/m2.json" --trace "$tmpdir/t2.json" > /dev/null
dune exec bin/main.exe -- experiment E5 --jobs 1 \
  --metrics-json "$tmpdir/m1.json" > /dev/null
for f in m1.json m2.json t2.json; do
  if ! json_ok "$tmpdir/$f"; then
    echo "FAIL: $f is empty or not valid JSON" >&2
    exit 1
  fi
done
for pair in "m1 m2" "smoke1 smoke2"; do
  set -- $pair
  metrics_section "$tmpdir/$1.json" "$tmpdir/$1.det"
  metrics_section "$tmpdir/$2.json" "$tmpdir/$2.det"
  if ! cmp -s "$tmpdir/$1.det" "$tmpdir/$2.det"; then
    echo "FAIL: deterministic metrics differ between --jobs 1 and --jobs 2 ($1 vs $2)" >&2
    diff "$tmpdir/$1.det" "$tmpdir/$2.det" >&2 || true
    exit 1
  fi
done
echo "obs: trace + metrics JSON valid, metrics jobs-invariant"

# Fuzz gate: 500 fuzzed instances through every policy under the
# invariant validator, the naive reference engine and the OPT_R
# cross-check, at --jobs 2. Zero violations required, and the report
# must be byte-identical to the inline run (the fuzz path is the
# broadest consumer of the determinism contract).
echo "fuzz: 500 cases across all policies with --jobs 2"
dune exec bin/main.exe -- fuzz --n 500 --seed 1 --jobs 2 > "$tmpdir/fuzz2.txt" || {
  echo "FAIL: fuzz found violations:" >&2
  cat "$tmpdir/fuzz2.txt" >&2
  exit 1
}
dune exec bin/main.exe -- fuzz --n 500 --seed 1 --jobs 1 > "$tmpdir/fuzz1.txt"
if ! cmp -s "$tmpdir/fuzz1.txt" "$tmpdir/fuzz2.txt"; then
  echo "FAIL: fuzz report differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/fuzz1.txt" "$tmpdir/fuzz2.txt" >&2 || true
  exit 1
fi
echo "fuzz: 0 violations, report jobs-invariant"

# Injected-fault gate: with DBP_CHECK_INJECT=cost the validator must
# catch the planted off-by-one, exit non-zero, and the shrinker must
# write minimal repro instances that parse back.
echo "fuzz: injected fault must be caught and shrunk"
if DBP_CHECK_INJECT=cost dune exec bin/main.exe -- fuzz --n 9 --seed 1 --jobs 2 \
  --out "$tmpdir/repro" > "$tmpdir/fuzzinj.txt"; then
  echo "FAIL: injected fault went undetected (exit 0)" >&2
  exit 1
fi
grep -q "cost-integral" "$tmpdir/fuzzinj.txt" || {
  echo "FAIL: injected fault not attributed to the cost-integral oracle" >&2
  exit 1
}
grep -q "io round-trip replays" "$tmpdir/fuzzinj.txt" || {
  echo "FAIL: no shrunk repro replayed the violation" >&2
  exit 1
}
repros=$(ls "$tmpdir/repro"/repro_case*.csv 2> /dev/null | wc -l)
if [ "$repros" -lt 1 ]; then
  echo "FAIL: shrinker wrote no repro files" >&2
  exit 1
fi
echo "fuzz: injected fault caught, $repros shrunk repro(s) written"

# Streaming gate: a million-item cloud trace must stream through FF
# with bounded live state — the retained-items high-water gauge may not
# exceed the peak-concurrent-items gauge (no released-item log, closed
# bins retired) — and on a smaller trace every policy's streamed run
# must be bit-identical to the materializing Engine.run.
echo "stream: 1M-item cloud trace through FF with bounded retention"
dune exec bin/main.exe -- stream --workload cloud --days 60 --rate 20 \
  --seed 1 --policy FF --metrics-json "$tmpdir/stream.json" > "$tmpdir/stream.txt"
sed -n '2,3p' "$tmpdir/stream.txt"
items=$(sed -n 's/^items=\([0-9][0-9]*\) .*/\1/p' "$tmpdir/stream.txt")
gauge() {
  if command -v jq > /dev/null 2>&1; then jq -e ".metrics[\"$2\"]" "$1"
  else python3 -c 'import json,sys
print(json.load(open(sys.argv[1]))["metrics"][sys.argv[2]])' "$1" "$2"
  fi
}
live=$(gauge "$tmpdir/stream.json" engine.live_items)
retained=$(gauge "$tmpdir/stream.json" engine.retained_items)
if [ -z "$items" ] || [ -z "$live" ] || [ -z "$retained" ]; then
  echo "FAIL: could not parse stream output / metrics gauges" >&2
  exit 1
fi
if [ "$items" -lt 1000000 ]; then
  echo "FAIL: streamed only $items items (< 1000000)" >&2
  exit 1
fi
if [ "$retained" -gt $((live + 8)) ]; then
  echo "FAIL: retained-items high-water $retained exceeds peak live $live" >&2
  exit 1
fi
echo "stream: $items items, retained high-water $retained <= peak live $live"

# Throughput gate: the pinned 1M-item FF trace must stream at >=
# 1.6M items/s — the batched-pipeline floor (chunked emitters, 4-ary
# fit index, calendar departure queue), up from the 1045000 floor the
# representation overhaul set and the 418k items/s before that. Best
# of 3 runs, so one unlucky scheduler quantum can't fail the gate;
# single runs measure 1.5-2.3M items/s on this shared box (quiet runs
# sit at 1.9-2.3M), so the floor keeps ~15% headroom under the worst
# observed best-of-3. The first (retention-gate) run above counts as
# run one.
echo "stream: throughput floor on the pinned 1M-item FF trace (best of 3)"
throughput_floor=1600000
best=$(sed -n 's/^throughput=\([0-9][0-9]*\) .*/\1/p' "$tmpdir/stream.txt")
if [ -z "$best" ]; then
  echo "FAIL: could not parse throughput= from stream output" >&2
  exit 1
fi
for run in 2 3; do
  if [ "$best" -ge "$throughput_floor" ]; then break; fi
  dune exec bin/main.exe -- stream --workload cloud --days 60 --rate 20 \
    --seed 1 --policy FF > "$tmpdir/stream$run.txt"
  t=$(sed -n 's/^throughput=\([0-9][0-9]*\) .*/\1/p' "$tmpdir/stream$run.txt")
  if [ -n "$t" ] && [ "$t" -gt "$best" ]; then best=$t; fi
done
if [ "$best" -lt "$throughput_floor" ]; then
  echo "FAIL: best throughput $best items/s below floor $throughput_floor" >&2
  exit 1
fi
echo "stream: $best items/s >= $throughput_floor"

# Best-Fit rides its own gate: BF pays a successor lookup per
# placement (the Fit_tree sorted-key mode) instead of FF's pure
# descent, so a regression there is invisible to the FF gate. ~100k
# items keeps the three runs cheap; single runs measure 0.77-1.08M
# items/s, so the 800k floor still sits ~2.5x above the pre-Fit_tree
# BF (~0.3M) while tolerating a noisy box.
echo "stream: BF throughput floor on the 100k-item cloud trace (best of 3)"
bf_floor=800000
bf_best=0
for run in 1 2 3; do
  if [ "$bf_best" -ge "$bf_floor" ]; then break; fi
  dune exec bin/main.exe -- stream --workload cloud --days 6 --rate 20 \
    --seed 1 --policy BF > "$tmpdir/bf$run.txt"
  t=$(sed -n 's/^throughput=\([0-9][0-9]*\) .*/\1/p' "$tmpdir/bf$run.txt")
  if [ -n "$t" ] && [ "$t" -gt "$bf_best" ]; then bf_best=$t; fi
done
if [ "$bf_best" -lt "$bf_floor" ]; then
  echo "FAIL: best BF throughput $bf_best items/s below floor $bf_floor" >&2
  exit 1
fi
echo "stream: BF $bf_best items/s >= $bf_floor"

echo "stream: per-policy bit-identity vs Engine.run"
for p in HA CDFF FF BF WF NF CD RT SpanGreedy; do
  dune exec bin/main.exe -- stream --workload cloud --days 2 --rate 3 \
    --seed 2 --policy "$p" --verify > "$tmpdir/sv.txt" 2>&1 || {
    echo "FAIL: streamed $p run differs from Engine.run" >&2
    cat "$tmpdir/sv.txt" >&2
    exit 1
  }
done
echo "stream: all 9 policies bit-identical to Engine.run"

# Vector (d-dimensional) smoke: a d=2 cloud trace streamed through FF
# must verify bit-identical against the materializing Engine.run, for
# each resource shape. The per-dimension packing validator itself runs
# inside the 500-case fuzz gate above (families general2d, cloud2d,
# aligned3d) and in the test suite; this exercises the CLI surface and
# the chunked emitters' vector draw schedule end to end. The scalar
# throughput floors above are unaffected: d=1 runs never touch the
# vector paths.
echo "stream: d=2 cloud-trace FF vector smoke (--dims 2, all shapes)"
for shape in independent correlated:0.8 adversarial; do
  dune exec bin/main.exe -- stream --workload cloud --days 2 --rate 3 \
    --seed 2 --dims 2 --shape "$shape" --policy FF --verify \
    > "$tmpdir/vec.txt" 2>&1 || {
    echo "FAIL: d=2 FF stream ($shape) differs from Engine.run" >&2
    cat "$tmpdir/vec.txt" >&2
    exit 1
  }
done
echo "stream: d=2 FF verified bit-identical for all three shapes"

# Recourse gate. Four properties of the bounded-recourse wrapper:
# (1) --recourse 0 is bit-identical to not passing the flag at all (the
#     wrapper returns the factory unchanged, so the zero-budget path
#     cannot perturb any observable);
# (2) the cost-vs-migration frontier sweep is jobs-invariant and every
#     curve on the pinned seeds is monotone non-increasing in k;
# (3) a recourse-wrapped policy streams bit-identically to Engine.run;
# (4) DBP_CHECK_INJECT=moves (a policy moving items while declaring a
#     zero budget) is caught by the migration oracle and shrunk.
# The throughput floors above run without recourse and are unaffected.
echo "recourse: k=0 bit-identity on dbp run"
dune exec bin/main.exe -- run -a FF -w general --mu 64 --seed 3 \
  > "$tmpdir/r_plain.txt"
dune exec bin/main.exe -- run -a FF -w general --mu 64 --seed 3 \
  --recourse 0 > "$tmpdir/r_k0.txt"
if ! cmp -s "$tmpdir/r_plain.txt" "$tmpdir/r_k0.txt"; then
  echo "FAIL: --recourse 0 output differs from the unwrapped run" >&2
  diff "$tmpdir/r_plain.txt" "$tmpdir/r_k0.txt" >&2 || true
  exit 1
fi
echo "recourse: frontier sweep jobs-invariant and monotone (pinned seeds)"
dune exec bin/main.exe -- sweep -w general -a FF,BF --mus 64 \
  --seeds 1,2,3 --recourse 0,1,2,4 --jobs 1 > "$tmpdir/front1.txt"
dune exec bin/main.exe -- sweep -w general -a FF,BF --mus 64 \
  --seeds 1,2,3 --recourse 0,1,2,4 --jobs 2 > "$tmpdir/front2.txt"
if ! cmp -s "$tmpdir/front1.txt" "$tmpdir/front2.txt"; then
  echo "FAIL: frontier sweep differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/front1.txt" "$tmpdir/front2.txt" >&2 || true
  exit 1
fi
if grep -q "NON-MONOTONE" "$tmpdir/front1.txt"; then
  echo "FAIL: frontier curve not monotone on the pinned seeds" >&2
  cat "$tmpdir/front1.txt" >&2
  exit 1
fi
grep -q "frontier FF:monotone BF:monotone" "$tmpdir/front1.txt" || {
  echo "FAIL: frontier monotonicity line missing from sweep output" >&2
  exit 1
}
echo "recourse: streamed BF+r2 bit-identical to Engine.run"
dune exec bin/main.exe -- stream --workload cloud --days 2 --rate 3 \
  --seed 2 --policy BF --recourse 2 --verify > "$tmpdir/rsv.txt" 2>&1 || {
  echo "FAIL: streamed BF+r2 run differs from Engine.run" >&2
  cat "$tmpdir/rsv.txt" >&2
  exit 1
}
echo "recourse: injected over-budget moves must be caught and shrunk"
if DBP_CHECK_INJECT=moves dune exec bin/main.exe -- fuzz --n 9 --seed 1 \
  --jobs 2 > "$tmpdir/rinj.txt"; then
  echo "FAIL: over-budget moves went undetected (exit 0)" >&2
  exit 1
fi
grep -q "migration" "$tmpdir/rinj.txt" || {
  echo "FAIL: injected over-moves not attributed to the migration oracle" >&2
  exit 1
}
grep -q "io round-trip replays" "$tmpdir/rinj.txt" || {
  echo "FAIL: no shrunk repro replayed the migration violation" >&2
  exit 1
}
echo "recourse: k=0 identity, monotone frontier, stream identity, oracle armed"

# Serve gate. The placement daemon must (1) answer a driven cloud trace
# with final cost/bins/max bit-identical to the in-process Engine.run
# of the same items (dbp drive --verify exits 1 otherwise), and
# (2) survive a kill-restart: drive half the trace into one daemon
# process, snapshot, quit, spawn a fresh process restored from the
# snapshot, drive the rest, and verify the combined run is still
# bit-identical to the uninterrupted offline replay. The same
# invariance is asserted for a sharded daemon against its own
# uninterrupted run (no offline analogue at shards > 1).
echo "serve: driven FF daemon bit-identical to Engine.run"
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy FF --verify > "$tmpdir/drive.txt" 2>&1 || {
  echo "FAIL: driven daemon differs from Engine.run" >&2
  cat "$tmpdir/drive.txt" >&2
  exit 1
}
echo "serve: snapshot at arrival 900, restart in a fresh process, finish"
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy FF --stop-after 900 --snapshot "$tmpdir/serve_snap.json" \
  > /dev/null 2>&1
json_ok "$tmpdir/serve_snap.json" || {
  echo "FAIL: daemon snapshot is empty or not valid JSON" >&2
  exit 1
}
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy FF --skip 900 --restore "$tmpdir/serve_snap.json" --verify \
  > "$tmpdir/drive2.txt" 2>&1 || {
  echo "FAIL: restored daemon's completed run differs from Engine.run" >&2
  cat "$tmpdir/drive2.txt" >&2
  exit 1
}
echo "serve: sharded daemon resume identical to its uninterrupted run"
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy BF --shards 4 > "$tmpdir/shard_full.txt" 2>&1
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy BF --shards 4 --stop-after 700 \
  --snapshot "$tmpdir/shard_snap.json" > /dev/null 2>&1
dune exec bin/main.exe -- drive --workload cloud --days 1 --rate 2 --seed 3 \
  --policy BF --shards 4 --skip 700 --restore "$tmpdir/shard_snap.json" \
  > "$tmpdir/shard_resumed.txt" 2>&1
full_stats=$(sed -n 's/.*daemon \(ok .*\)/\1/p' "$tmpdir/shard_full.txt")
resumed_stats=$(sed -n 's/.*daemon \(ok .*\)/\1/p' "$tmpdir/shard_resumed.txt")
if [ -z "$full_stats" ] || [ "$full_stats" != "$resumed_stats" ]; then
  echo "FAIL: sharded resume stats differ from the uninterrupted daemon" >&2
  echo "  full:    $full_stats" >&2
  echo "  resumed: $resumed_stats" >&2
  exit 1
fi
echo "serve: drive verified, kill-restart-replay verified, shards sticky"

echo "check OK"
