#!/bin/sh
# Tier-1 gate plus a parallel-path smoke test: build, run the test
# suite, then run one sweep-heavy experiment with --jobs 2 and require
# its report to be byte-identical to the inline (--jobs 1) run, so the
# domain-pool path is exercised on every change. Usage: make check
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

smoke=theorem32
echo "smoke: experiment $smoke with --jobs 1 vs --jobs 2"
dune exec bin/main.exe -- experiment "$smoke" --jobs 1 > "$tmpdir/j1.txt"
dune exec bin/main.exe -- experiment "$smoke" --jobs 2 > "$tmpdir/j2.txt"
if ! cmp -s "$tmpdir/j1.txt" "$tmpdir/j2.txt"; then
  echo "FAIL: $smoke output differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/j1.txt" "$tmpdir/j2.txt" >&2 || true
  exit 1
fi
echo "smoke: parallel run bit-identical to inline run"

# Incremental OPT_R perf gate: the E5 reference family must keep at
# least half its segments out of branch-and-bound, and the node total
# must not regress past the seed's from-scratch sweep (102557 nodes,
# recorded when the incremental solver landed).
echo "optr: incremental solver counters on the E5 reference family"
dune exec bench/main.exe -- --skip-exps --skip-micro --json "$tmpdir/bench.json" \
  > /dev/null
e5_baseline_nodes=102557
e5=$(grep '"OPT_R/E5' "$tmpdir/bench.json")
field() { printf '%s\n' "$e5" | sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p"; }
segments=$(field segments)
bb_searches=$(field bb_searches)
bb_nodes=$(field bb_nodes)
if [ -z "$segments" ] || [ -z "$bb_searches" ] || [ -z "$bb_nodes" ]; then
  echo "FAIL: could not parse OPT_R/E5 counters from bench --json" >&2
  exit 1
fi
if [ "$bb_nodes" -gt "$e5_baseline_nodes" ]; then
  echo "FAIL: E5 bb_nodes=$bb_nodes exceeds seed baseline $e5_baseline_nodes" >&2
  exit 1
fi
if [ $((2 * (segments - bb_searches))) -lt "$segments" ]; then
  echo "FAIL: fewer than half of E5 segments resolved without search" \
    "(segments=$segments bb_searches=$bb_searches)" >&2
  exit 1
fi
echo "optr: E5 bb_nodes=$bb_nodes <= $e5_baseline_nodes," \
  "$((segments - bb_searches))/$segments segments without search"
echo "check OK"
