#!/bin/sh
# Tier-1 gate plus a parallel-path smoke test: build, run the test
# suite, then run one sweep-heavy experiment with --jobs 2 and require
# its report to be byte-identical to the inline (--jobs 1) run, so the
# domain-pool path is exercised on every change. Usage: make check
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

smoke=theorem32
echo "smoke: experiment $smoke with --jobs 1 vs --jobs 2"
dune exec bin/main.exe -- experiment "$smoke" --jobs 1 > "$tmpdir/j1.txt"
dune exec bin/main.exe -- experiment "$smoke" --jobs 2 > "$tmpdir/j2.txt"
if ! cmp -s "$tmpdir/j1.txt" "$tmpdir/j2.txt"; then
  echo "FAIL: $smoke output differs between --jobs 1 and --jobs 2" >&2
  diff "$tmpdir/j1.txt" "$tmpdir/j2.txt" >&2 || true
  exit 1
fi
echo "smoke: parallel run bit-identical to inline run"
echo "check OK"
