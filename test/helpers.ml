(* Shared helpers for the test suites. *)

open Dbp_util
open Dbp_instance

let item ~id ~a ~d ~s = Item.make ~id ~arrival:a ~departure:d ~size:(Load.of_float s)

let item_frac ~id ~a ~d ~num ~den =
  Item.make ~id ~arrival:a ~departure:d ~size:(Load.of_fraction ~num ~den)

let instance specs =
  Instance.of_items
    (List.mapi (fun id (a, d, s) -> item ~id ~a ~d ~s) specs)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
let qcase ?(count = 200) ~name prop gen = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float ~eps = Alcotest.(check (float eps))

let check_raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  scan 0

(* Longest run of zeros in the [bits]-bit binary representation of [t]
   (Definition 5.7 applied to binary(t), which the paper takes to be
   [log mu] bits wide — leading zeros count). Independent reference
   implementation used to cross-check Dbp_analysis.Binary_strings and
   Corollary 5.8. *)
let max0_bits ~bits t =
  let best = ref 0 and run = ref 0 in
  for k = 0 to bits - 1 do
    if (t lsr k) land 1 = 0 then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 0
  done;
  !best

(* Binary input sigma_mu per Definition 5.2, built independently of
   Dbp_workloads for cross-checking. Loads are 1/(log mu + 1), not the
   paper's 1/log mu: exactly log mu + 1 items (classes 0..log mu) are
   active at every moment, so 1/log mu would overflow the row-0 bin and
   break the paper's own Lemma 5.5 (see DESIGN.md, Errata). *)
let binary_input mu =
  let n = Ints.floor_log2 mu in
  assert (Ints.is_pow2 mu);
  let items = ref [] in
  let id = ref 0 in
  for i = 0 to n do
    let len = Ints.pow2 i in
    let k = ref 0 in
    while !k * len < mu do
      items :=
        Item.make ~id:!id ~arrival:(!k * len) ~departure:((!k + 1) * len)
          ~size:(Load.of_fraction ~num:1 ~den:(n + 1))
        :: !items;
      incr id;
      incr k
    done
  done;
  Instance.of_items !items

(* A small deterministic random instance generator for property tests. *)
let random_instance rng ~n ~max_time ~max_duration =
  let items = ref [] in
  for id = 0 to n - 1 do
    let a = Prng.int_below rng max_time in
    let d = a + 1 + Prng.int_below rng max_duration in
    let size = 1 + Prng.int_below rng Load.capacity in
    items := Item.make ~id ~arrival:a ~departure:d ~size:(Load.of_units size) :: !items
  done;
  Instance.of_items !items
