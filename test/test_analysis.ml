open Dbp_analysis
open Helpers

(* --- binary strings --- *)

let test_max0_examples () =
  check_int "zero" 4 (Binary_strings.max0 ~bits:4 0);
  check_int "all ones" 0 (Binary_strings.max0 ~bits:4 15);
  check_int "0b0101 in 4 bits" 1 (Binary_strings.max0 ~bits:4 0b0101);
  check_int "0b1000 in 4 bits" 3 (Binary_strings.max0 ~bits:4 0b1000);
  check_int "leading zeros count" 2 (Binary_strings.max0 ~bits:4 0b0100)

let test_max0_string () =
  check_int "literal" 3 (Binary_strings.max0_string "1000101");
  check_int "empty" 0 (Binary_strings.max0_string "");
  check_raises_invalid "bad char" (fun () -> ignore (Binary_strings.max0_string "10x"))

let prop_max0_matches_reference =
  qcase ~name:"max0 matches the independent reference"
    (fun (bits, t) ->
      let t = t land ((1 lsl bits) - 1) in
      Binary_strings.max0 ~bits t = max0_bits ~bits t)
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 (1 lsl 30)))

let test_count_recurrence_small () =
  (* strings of 3 bits with no zero-run > 1: 000,001,100,010 are out for
     runs > 1? runs: 000(3) 001(2) 100(2) 010(1)... count <=1:
     010,101,011,110,111,  also 101... enumerate: allowed = no "00":
     010,011,101,110,111 -> 5 *)
  check_int "3 bits k=1" 5 (Binary_strings.count_with_max0_at_most ~bits:3 1);
  check_int "k >= bits" 8 (Binary_strings.count_with_max0_at_most ~bits:3 3);
  check_int "k = 0" 1 (Binary_strings.count_with_max0_at_most ~bits:3 0);
  check_int "negative k" 0 (Binary_strings.count_with_max0_at_most ~bits:3 (-1))

let prop_count_matches_enumeration =
  qcase ~count:50 ~name:"count recurrence matches brute enumeration"
    (fun (bits, k) ->
      let bits = (bits mod 12) + 1 in
      let k = k mod (bits + 1) in
      let brute = ref 0 in
      for t = 0 to (1 lsl bits) - 1 do
        if Binary_strings.max0 ~bits t <= k then incr brute
      done;
      Binary_strings.count_with_max0_at_most ~bits k = !brute)
    QCheck2.Gen.(pair (int_range 1 100) (int_range 0 100))

let test_expectation_small () =
  (* bits=2: values 0,1,2 for 11 / 01,10 / 00 -> E = (0+1+1+2)/4 = 1 *)
  check_float ~eps:1e-9 "bits=2" 1.0 (Binary_strings.expectation ~bits:2);
  (* bits=1: 0 and 1 -> E = 1/2 *)
  check_float ~eps:1e-9 "bits=1" 0.5 (Binary_strings.expectation ~bits:1)

let prop_expectation_bound =
  qcase ~count:20 ~name:"Lemma 5.9: E[max_0] <= 2 log2 n for n >= 2"
    (fun bits ->
      Binary_strings.expectation ~bits
      <= Dbp_core.Theory.max0_expectation_bound bits +. 1e-9)
    QCheck2.Gen.(int_range 2 30)

let test_sum_over_range () =
  (* must equal direct enumeration *)
  List.iter
    (fun bits ->
      let brute = ref 0 in
      for t = 0 to (1 lsl bits) - 1 do
        brute := !brute + Binary_strings.max0 ~bits t
      done;
      check_int (Printf.sprintf "bits=%d" bits) !brute
        (Binary_strings.sum_over_range ~bits))
    [ 1; 2; 5; 10 ]

let test_histogram_sums_to_one () =
  let h = Binary_strings.histogram ~bits:10 in
  check_float ~eps:1e-9 "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 h)

(* --- fit --- *)

let test_fit_recovers_models () =
  let mus = Array.of_list (List.map float_of_int [ 4; 16; 64; 256; 1024; 4096 ]) in
  let check_model model =
    let ys = Array.map (fun mu -> (2.0 *. Fit.transform model mu) +. 1.0) mus in
    let best = Fit.best ~mus ~ys () in
    Alcotest.(check string)
      (Fit.name model ^ " recovered")
      (Fit.name model) (Fit.name best.model);
    check_float ~eps:1e-6 "slope" 2.0 best.slope;
    check_float ~eps:1e-6 "r2" 1.0 best.r2
  in
  List.iter check_model [ Fit.Sqrt_log; Fit.Log_log; Fit.Log; Fit.Linear_mu ]

let test_fit_constant () =
  let mus = [| 4.0; 16.0; 64.0 |] in
  let ys = [| 3.0; 3.0; 3.0 |] in
  let best = Fit.best ~mus ~ys () in
  check_float ~eps:1e-9 "flat data has r2 1 under constant" 1.0 best.r2

let test_transform_values () =
  check_float ~eps:1e-9 "sqrt log 16" 2.0 (Fit.transform Fit.Sqrt_log 16.0);
  check_float ~eps:1e-9 "loglog 16" 2.0 (Fit.transform Fit.Log_log 16.0);
  check_float ~eps:1e-9 "log 16" 4.0 (Fit.transform Fit.Log 16.0);
  check_float ~eps:1e-9 "mu" 16.0 (Fit.transform Fit.Linear_mu 16.0);
  check_raises_invalid "mu < 1" (fun () -> ignore (Fit.transform Fit.Log 0.5))

(* --- ratio --- *)

let test_measure () =
  let inst = instance [ (0, 4, 0.7); (2, 6, 0.7) ] in
  let m = Ratio.measure ~name:"FF" Dbp_baselines.Any_fit.first_fit inst in
  Alcotest.(check string) "name" "FF" m.algorithm;
  check_int "cost" 8 m.cost;
  check_int "opt" 8 m.opt;
  check_float ~eps:1e-9 "ratio" 1.0 m.ratio;
  check_bool "exact" true (m.opt_kind = Ratio.Opt_r_exact)

let test_measure_empty () =
  let m =
    Ratio.measure ~name:"FF" Dbp_baselines.Any_fit.first_fit
      (Dbp_instance.Instance.of_items [])
  in
  check_float ~eps:1e-9 "ratio 1" 1.0 m.ratio

let test_compare_algorithms () =
  let inst = instance [ (0, 8, 0.6); (0, 2, 0.6); (4, 6, 0.6) ] in
  let ms =
    Ratio.compare_algorithms
      [ ("FF", Dbp_baselines.Any_fit.first_fit); ("HA", Dbp_core.Ha.policy ()) ]
      inst
  in
  check_int "two measurements" 2 (List.length ms);
  List.iter
    (fun (m : Ratio.measurement) ->
      check_bool "shared opt" true (m.opt = (List.hd ms).opt);
      check_bool "ratio >= 1" true (m.ratio >= 1.0))
    ms

(* --- sweep --- *)

let test_sweep_shapes () =
  let curves =
    Sweep.run
      ~algorithms:[ ("FF", Dbp_baselines.Any_fit.first_fit) ]
      ~workload:(fun ~mu ~seed ->
        random_instance (Dbp_util.Prng.create ~seed) ~n:30 ~max_time:40
          ~max_duration:mu)
      ~mus:[ 4; 8 ] ~seeds:[ 1; 2; 3 ] ()
  in
  match curves with
  | [ c ] ->
      Alcotest.(check string) "name" "FF" c.algorithm;
      check_int "points" 2 (List.length c.points);
      List.iter
        (fun (p : Sweep.point) -> check_int "seeds" 3 p.ratios.n)
        c.points
  | _ -> Alcotest.fail "expected one curve"

let test_sweep_adversarial () =
  let curves =
    Sweep.adversarial
      ~algorithms:[ ("FF", Dbp_baselines.Any_fit.first_fit) ]
      ~mus:[ 16; 64 ] ()
  in
  match curves with
  | [ c ] ->
      check_int "points" 2 (List.length c.points);
      List.iter
        (fun (p : Sweep.point) -> check_bool "ratio > 1" true (p.ratios.mean > 1.0))
        c.points
  | _ -> Alcotest.fail "expected one curve"

(* The determinism contract of the parallel sweep: identical curves —
   same ratios, costs, and opt_exact_fraction, compared structurally,
   floats and all — for any worker count. *)
let test_sweep_jobs_deterministic () =
  let sweep jobs =
    let solver_stats = ref (0, 0) in
    let curves =
      Sweep.run ~jobs ~solver_stats
        ~algorithms:
          [ ("FF", Dbp_baselines.Any_fit.first_fit); ("HA", Dbp_core.Ha.policy ()) ]
        ~workload:(fun ~mu ~seed ->
          random_instance (Dbp_util.Prng.create ~seed) ~n:25 ~max_time:30
            ~max_duration:mu)
        ~mus:[ 4; 8; 16 ] ~seeds:[ 1; 2; 3 ] ()
    in
    (curves, !solver_stats)
  in
  let reference, (hits, misses) = sweep 1 in
  check_bool "solver cache exercised" true (hits + misses > 0);
  List.iter
    (fun jobs ->
      let curves, (h, m) = sweep jobs in
      check_bool
        (Printf.sprintf "curves bit-identical at jobs=%d" jobs)
        true
        (curves = reference);
      check_bool "merged stats cover the same solves" true (h + m > 0))
    [ 2; 4 ]

let test_adversarial_jobs_deterministic () =
  let sweep jobs =
    Sweep.adversarial ~jobs
      ~algorithms:
        [ ("FF", Dbp_baselines.Any_fit.first_fit); ("HA", Dbp_core.Ha.policy ()) ]
      ~mus:[ 16; 64 ] ()
  in
  let reference = sweep 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "adversarial curves bit-identical at jobs=%d" jobs)
        true
        (sweep jobs = reference))
    [ 2; 4 ]

let suite =
  [
    case "max0 examples" test_max0_examples;
    case "max0 string" test_max0_string;
    prop_max0_matches_reference;
    case "count recurrence" test_count_recurrence_small;
    prop_count_matches_enumeration;
    case "expectation small" test_expectation_small;
    prop_expectation_bound;
    case "sum over range" test_sum_over_range;
    case "histogram" test_histogram_sums_to_one;
    case "fit recovers models" test_fit_recovers_models;
    case "fit constant" test_fit_constant;
    case "transforms" test_transform_values;
    case "measure" test_measure;
    case "measure empty" test_measure_empty;
    case "compare algorithms" test_compare_algorithms;
    case "sweep shapes" test_sweep_shapes;
    case "sweep adversarial" test_sweep_adversarial;
    case "sweep jobs determinism" test_sweep_jobs_deterministic;
    case "adversarial jobs determinism" test_adversarial_jobs_deterministic;
  ]
