open Dbp_util
open Dbp_instance
open Dbp_sim
open Dbp_baselines
open Helpers

let lb inst = Profile.ceil_integral (Profile.of_instance inst)

let test_ff_behaviour () =
  (* Two 0.6 items overlap -> 2 bins; a later 0.3 joins the earliest. *)
  let inst = instance [ (0, 9, 0.6); (0, 9, 0.6); (1, 5, 0.3) ] in
  let res = Engine.run Any_fit.first_fit inst in
  check_int "bins" 2 res.bins_opened;
  let b0 = Bin_store.bin_of_item res.store 0 in
  check_int "third item joins earliest" b0 (Bin_store.bin_of_item res.store 2)

let test_bf_behaviour () =
  let inst = instance [ (0, 9, 0.7); (0, 9, 0.5); (1, 5, 0.3) ] in
  let res = Engine.run Any_fit.best_fit inst in
  check_int "joins fullest" (Bin_store.bin_of_item res.store 0)
    (Bin_store.bin_of_item res.store 2)

let test_wf_behaviour () =
  let inst = instance [ (0, 9, 0.7); (0, 9, 0.5); (1, 5, 0.3) ] in
  let res = Engine.run Any_fit.worst_fit inst in
  check_int "joins emptiest" (Bin_store.bin_of_item res.store 1)
    (Bin_store.bin_of_item res.store 2)

(* The tie-break contract DESIGN.md pins: among equally-tight (BF) or
   equally-roomy (WF) bins, the earliest-opened bin wins — the behavior
   a naive left-to-right scan had, preserved by the Fit_tree rewiring. *)
let test_bf_wf_tie_break () =
  List.iter
    (fun (name, factory) ->
      let inst = instance [ (0, 9, 0.6); (0, 9, 0.6); (1, 5, 0.3) ] in
      let res = Engine.run factory inst in
      check_int "two bins open at the tie" 2 res.bins_opened;
      check_int
        (name ^ " tie joins the earliest-opened bin")
        (Bin_store.bin_of_item res.store 0)
        (Bin_store.bin_of_item res.store 2))
    [ ("BF", Any_fit.best_fit); ("WF", Any_fit.worst_fit) ]

let test_nf_behaviour () =
  let inst = instance [ (0, 9, 0.4); (0, 9, 0.7); (0, 9, 0.5) ] in
  let res = Engine.run Any_fit.next_fit inst in
  check_int "next fit never looks back" 3 res.bins_opened

let test_cd_separates_classes () =
  (* Same sizes, different duration classes -> different bins under CD,
     one bin under FF. *)
  let inst = instance [ (0, 2, 0.2); (0, 8, 0.2) ] in
  let cd = Engine.run (Classify_duration.policy ()) inst in
  check_int "cd bins" 2 cd.bins_opened;
  let ff = Engine.run Any_fit.first_fit inst in
  check_int "ff bins" 1 ff.bins_opened

let test_cd_killer_shape () =
  (* On the cd-killer family CD pays ~ (log mu + 1) * mu while FF pays
     ~ mu. *)
  let inst = Dbp_workloads.Cd_killer.generate ~mu:64 () in
  let cd = Engine.run (Classify_duration.policy ()) inst in
  let ff = Engine.run Any_fit.first_fit inst in
  check_bool "cd pays log mu more" true (cd.cost >= 5 * ff.cost);
  check_int "ff is optimal here" 64 ff.cost

let test_rt_class_bounds () =
  let inst = instance [ (0, 1, 0.3); (0, 4, 0.3); (0, 64, 0.3) ] in
  let res = Engine.run (Rt_classify.policy ~classes:3 ~mu_hint:64.0 ()) inst in
  (* three durations spread across three geometric classes *)
  check_int "bins" 3 res.bins_opened

let test_rt_single_class_is_ff () =
  let rng = Prng.create ~seed:5 in
  let inst = random_instance rng ~n:60 ~max_time:50 ~max_duration:30 in
  let rt = Engine.run (Rt_classify.policy ~classes:1 ~mu_hint:30.0 ()) inst in
  let ff = Engine.run Any_fit.first_fit inst in
  check_int "identical cost" ff.cost rt.cost;
  check_int "identical bins" ff.bins_opened rt.bins_opened

let test_rt_optimal_classes () =
  check_int "mu=2 -> 1 class" 1 (Rt_classify.optimal_classes ~mu:2.0);
  let n = Rt_classify.optimal_classes ~mu:65536.0 in
  (* minimizing mu^(1/n) + n + 3 over n: 23.0, 17.2, 15.3, 14.9, 15.0 for
     n = 4..8, so n* = 7 (the asymptotic log mu / log log mu = 4 only
     kicks in at much larger mu) *)
  check_int "n* for mu = 2^16" 7 n

let test_span_greedy_prefers_covered_bin () =
  (* Two 0.6 items force two bins; the 0.3 newcomer fits both. First-Fit
     would take the earlier bin (horizon 4, extension 6); SpanGreedy
     takes the later bin whose horizon already covers it (extension
     0). *)
  let inst = instance [ (0, 4, 0.6); (0, 20, 0.6); (2, 10, 0.3) ] in
  let res = Engine.run Span_greedy.policy inst in
  check_bool "two bins for the big items" true
    (Bin_store.bin_of_item res.store 0 <> Bin_store.bin_of_item res.store 1);
  check_int "span-aware choice" (Bin_store.bin_of_item res.store 1)
    (Bin_store.bin_of_item res.store 2);
  let ff = Engine.run Any_fit.first_fit inst in
  check_int "FF would pick the earlier bin" (Bin_store.bin_of_item ff.store 0)
    (Bin_store.bin_of_item ff.store 2)

let test_span_greedy_opens_when_cheaper () =
  (* Extending any open bin would cost the full duration; a new bin is
     no worse, and SpanGreedy prefers it at equality. *)
  let inst = instance [ (0, 2, 0.4); (2, 10, 0.4) ] in
  let res = Engine.run Span_greedy.policy inst in
  check_int "two bins" 2 res.bins_opened

let test_non_clairvoyant_wrapper () =
  (* The wrapper masks departure times: SpanGreedy degenerates because
     every horizon looks like now+1. Check it still packs validly and is
     named distinctly. *)
  let rng = Prng.create ~seed:11 in
  let inst = random_instance rng ~n:50 ~max_time:40 ~max_duration:20 in
  let res = Engine.run (Policy.non_clairvoyant Span_greedy.policy) inst in
  check_bool "valid" true (res.cost >= lb inst);
  Alcotest.(check string) "name" "SpanGreedy-nc" res.name

let prop_ff_ignores_durations =
  qcase ~count:40 ~name:"FF = non-clairvoyant FF (duration-oblivious by construction)"
    (fun seed ->
      let rng = Prng.create ~seed in
      let inst = random_instance rng ~n:60 ~max_time:60 ~max_duration:32 in
      let a = Engine.run Any_fit.first_fit inst in
      let b = Engine.run (Policy.non_clairvoyant Any_fit.first_fit) inst in
      a.cost = b.cost && a.bins_opened = b.bins_opened)
    QCheck2.Gen.(int_range 0 1_000_000)

let all_policies =
  [
    ("FF", Any_fit.first_fit);
    ("BF", Any_fit.best_fit);
    ("WF", Any_fit.worst_fit);
    ("NF", Any_fit.next_fit);
    ("CD", Classify_duration.policy ());
    ("RT", Rt_classify.auto ~mu_hint:32.0);
    ("SG", Span_greedy.policy);
  ]

let prop_all_above_lower_bound =
  qcase ~count:60 ~name:"every baseline is valid and above the lower bound"
    (fun seed ->
      let rng = Prng.create ~seed in
      let inst = random_instance rng ~n:60 ~max_time:60 ~max_duration:32 in
      let bound = lb inst in
      List.for_all (fun (_, p) -> (Engine.run p inst).cost >= bound) all_policies)
    QCheck2.Gen.(int_range 0 1_000_000)

let prop_pinning_ff_closed_form =
  qcase ~count:20 ~name:"FF pays the closed-form cost on the pinning family"
    (fun mu ->
      let inst = Dbp_workloads.Pinning.generate ~groups:mu ~k:mu ~mu () in
      let res = Engine.run Any_fit.first_fit inst in
      res.cost = Dbp_workloads.Pinning.ff_cost_closed_form ~groups:mu ~mu)
    QCheck2.Gen.(int_range 2 24)

let suite =
  [
    case "first fit" test_ff_behaviour;
    case "best fit" test_bf_behaviour;
    case "worst fit" test_wf_behaviour;
    case "bf/wf ties prefer earliest bin" test_bf_wf_tie_break;
    case "next fit" test_nf_behaviour;
    case "cd separates classes" test_cd_separates_classes;
    case "cd killer shape" test_cd_killer_shape;
    case "rt class spread" test_rt_class_bounds;
    case "rt single class = ff" test_rt_single_class_is_ff;
    case "rt optimal classes" test_rt_optimal_classes;
    case "span greedy covered bin" test_span_greedy_prefers_covered_bin;
    case "span greedy opens" test_span_greedy_opens_when_cheaper;
    case "non-clairvoyant wrapper" test_non_clairvoyant_wrapper;
    prop_all_above_lower_bound;
    prop_ff_ignores_durations;
    prop_pinning_ff_closed_form;
  ]
