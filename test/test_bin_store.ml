open Dbp_util
open Dbp_sim
open Helpers

let test_lifecycle () =
  let s = Bin_store.create () in
  let b = Bin_store.open_bin s ~now:0 ~label:"GN" in
  check_bool "open" true (Bin_store.is_open s b);
  check_int "opened_at" 0 (Bin_store.opened_at s b);
  Alcotest.(check string) "label" "GN" (Bin_store.label s b);
  let r1 = item ~id:1 ~a:0 ~d:5 ~s:0.5 in
  let r2 = item ~id:2 ~a:0 ~d:3 ~s:0.25 in
  Bin_store.insert s b r1;
  Bin_store.insert s b r2;
  check_int "load" (Load.capacity * 3 / 4) (Load.to_units (Bin_store.load s b));
  check_int "residual" (Load.capacity / 4) (Load.to_units (Bin_store.residual s b));
  check_int "contents" 2 (List.length (Bin_store.contents s b));
  let bin, closed = Bin_store.remove s ~now:3 ~item_id:2 in
  check_int "removed from" b bin;
  check_bool "still open" false closed;
  let _, closed = Bin_store.remove s ~now:5 ~item_id:1 in
  check_bool "closed" true closed;
  Alcotest.(check (option int)) "closed_at" (Some 5) (Bin_store.closed_at s b);
  check_int "usage 5 ticks" 5 (Bin_store.closed_usage s)

let test_usage_accounting () =
  let s = Bin_store.create () in
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:2 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:10 ~s:0.5);
  Bin_store.insert s b2 (item ~id:2 ~a:2 ~d:4 ~s:0.5);
  check_int "open usage at 4" 6 (Bin_store.usage s ~now:4);
  ignore (Bin_store.remove s ~now:4 ~item_id:2);
  check_int "after b2 closes" 6 (Bin_store.usage s ~now:4);
  ignore (Bin_store.remove s ~now:10 ~item_id:1);
  check_int "final" 12 (Bin_store.usage s ~now:10);
  check_int "closed = final" 12 (Bin_store.closed_usage s)

let test_counters () =
  let s = Bin_store.create () in
  let b1 = Bin_store.open_bin s ~now:0 ~label:"x" in
  let b2 = Bin_store.open_bin s ~now:0 ~label:"x" in
  let b3 = Bin_store.open_bin s ~now:1 ~label:"x" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:2 ~s:0.5);
  Bin_store.insert s b2 (item ~id:2 ~a:0 ~d:2 ~s:0.5);
  Bin_store.insert s b3 (item ~id:3 ~a:1 ~d:4 ~s:0.5);
  check_int "open_count" 3 (Bin_store.open_count s);
  check_int "max_open" 3 (Bin_store.max_open s);
  Alcotest.(check (list int)) "opening order" [ b1; b2; b3 ] (Bin_store.open_bins s);
  ignore (Bin_store.remove s ~now:2 ~item_id:1);
  ignore (Bin_store.remove s ~now:2 ~item_id:2);
  check_int "open_count after closes" 1 (Bin_store.open_count s);
  check_int "max_open sticky" 3 (Bin_store.max_open s);
  check_int "bins_opened" 3 (Bin_store.bins_opened s)

let test_errors () =
  let s = Bin_store.create () in
  let b = Bin_store.open_bin s ~now:0 ~label:"x" in
  Bin_store.insert s b (item ~id:1 ~a:0 ~d:2 ~s:0.8);
  check_raises_invalid "overflow" (fun () ->
      Bin_store.insert s b (item ~id:2 ~a:0 ~d:2 ~s:0.3));
  check_raises_invalid "duplicate item" (fun () ->
      Bin_store.insert s b (item ~id:1 ~a:0 ~d:2 ~s:0.1));
  (match Bin_store.remove s ~now:1 ~item_id:99 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  ignore (Bin_store.remove s ~now:2 ~item_id:1);
  check_raises_invalid "insert into closed" (fun () ->
      Bin_store.insert s b (item ~id:3 ~a:2 ~d:3 ~s:0.1))

let test_assignment_log () =
  let s = Bin_store.create () in
  let b = Bin_store.open_bin s ~now:0 ~label:"x" in
  Bin_store.insert s b (item ~id:7 ~a:0 ~d:2 ~s:0.5);
  ignore (Bin_store.remove s ~now:2 ~item_id:7);
  Alcotest.(check (list (pair int int))) "log survives departure" [ (7, b) ]
    (Bin_store.assignment s);
  check_int "bin_of_item after departure" b (Bin_store.bin_of_item s 7)

(* Drive the same placement script through a retain-mode and a
   retire-mode store; every aggregate must agree — retiring only drops
   the per-bin records. *)
let run_script s =
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:1 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:4 ~s:0.5);
  Bin_store.insert s b1 (item ~id:2 ~a:0 ~d:2 ~s:0.25);
  Bin_store.insert s b2 (item ~id:3 ~a:1 ~d:7 ~s:0.5);
  ignore (Bin_store.remove s ~now:2 ~item_id:2);
  ignore (Bin_store.remove s ~now:4 ~item_id:1);
  let b3 = Bin_store.open_bin s ~now:5 ~label:"c" in
  Bin_store.insert s b3 (item ~id:4 ~a:5 ~d:6 ~s:0.1);
  ignore (Bin_store.remove s ~now:6 ~item_id:4);
  ignore (Bin_store.remove s ~now:7 ~item_id:3);
  (b1, b2, b3)

let test_retire_aggregates_match_retain () =
  let retain = Bin_store.create () and retire = Bin_store.create ~retire:true () in
  ignore (run_script retain);
  ignore (run_script retire);
  check_bool "mode flags" true
    (Bin_store.retire_mode retire && not (Bin_store.retire_mode retain));
  List.iter
    (fun (name, f) -> check_int name (f retain) (f retire))
    [
      ("closed_usage", Bin_store.closed_usage);
      ("bins_opened", Bin_store.bins_opened);
      ("max_open", Bin_store.max_open);
      ("open_count", Bin_store.open_count);
      ("closed_count", Bin_store.closed_count);
      ("live_items", Bin_store.live_items);
      ("max_live_items", Bin_store.max_live_items);
      ("usage at 9", fun s -> Bin_store.usage s ~now:9);
    ];
  let _, c1, s1 = Bin_store.lifetime_histogram retain in
  let _, c2, s2 = Bin_store.lifetime_histogram retire in
  check_bool "lifetime histogram" true (c1 = c2);
  check_int "lifetime sum" s1 s2

let test_retire_drops_records () =
  let s = Bin_store.create ~retire:true () in
  let b1, b2, _ = run_script s in
  (* All bins closed: nothing live, records gone. *)
  check_int "no open bins" 0 (Bin_store.open_count s);
  Alcotest.(check (list int)) "all_bins = open bins" [] (Bin_store.all_bins s);
  Alcotest.(check (list (pair int int))) "assignment empty" [] (Bin_store.assignment s);
  check_raises_invalid "retired bin access" (fun () -> Bin_store.load s b1);
  check_raises_invalid "retired closed_at" (fun () -> Bin_store.closed_at s b2);
  check_raises_invalid "unknown id still invalid" (fun () -> Bin_store.load s 99);
  (match Bin_store.bin_of_item s 1 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "departed item must not resolve in retire mode")

let test_retire_open_bins_accessible () =
  let s = Bin_store.create ~retire:true () in
  let b = Bin_store.open_bin s ~now:0 ~label:"live" in
  Bin_store.insert s b (item ~id:1 ~a:0 ~d:9 ~s:0.5);
  check_bool "open" true (Bin_store.is_open s b);
  Alcotest.(check string) "label" "live" (Bin_store.label s b);
  check_int "bin_of_item while active" b (Bin_store.bin_of_item s 1);
  Alcotest.(check (list int)) "listed" [ b ] (Bin_store.open_bins s);
  ignore (Bin_store.remove s ~now:9 ~item_id:1);
  check_raises_invalid "gone after close" (fun () -> Bin_store.is_open s b)

let test_move_basic () =
  let s = Bin_store.create () in
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:0 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:9 ~s:0.25);
  Bin_store.insert s b1 (item ~id:2 ~a:0 ~d:9 ~s:0.25);
  Bin_store.insert s b2 (item ~id:3 ~a:0 ~d:9 ~s:0.5);
  let closed = Bin_store.move s ~now:3 ~item_id:1 ~dst:b2 in
  check_bool "source kept open" false closed;
  check_int "src load" (Load.capacity / 4) (Load.to_units (Bin_store.load s b1));
  check_int "dst load" (Load.capacity * 3 / 4) (Load.to_units (Bin_store.load s b2));
  check_int "src contents" 1 (List.length (Bin_store.contents s b1));
  check_int "dst contents" 2 (List.length (Bin_store.contents s b2));
  check_int "item resolves to dst" b2 (Bin_store.bin_of_item s 1);
  check_int "move_count" 1 (Bin_store.move_count s);
  check_int "moved_units" (Load.capacity / 4) (Bin_store.moved_units s);
  Alcotest.(check (list (pair int int)))
    "assignment log keeps initial placements" [ (1, b1); (2, b1); (3, b2) ]
    (List.sort compare (Bin_store.assignment s));
  check_int "move logged" 1 (Bin_store.move_logged s);
  check_bool "log entry" true (Bin_store.move_entry s 0 = (3, 1, b1, b2))

let test_move_closes_emptied_source () =
  let s = Bin_store.create () in
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:1 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:9 ~s:0.5);
  Bin_store.insert s b2 (item ~id:2 ~a:1 ~d:9 ~s:0.25);
  let closed = Bin_store.move s ~now:4 ~item_id:1 ~dst:b2 in
  check_bool "source closed" true closed;
  check_bool "no longer open" false (Bin_store.is_open s b1);
  Alcotest.(check (option int)) "closed_at is the move tick" (Some 4)
    (Bin_store.closed_at s b1);
  check_int "usage covers [0,4)" 4 (Bin_store.closed_usage s);
  check_int "open_count" 1 (Bin_store.open_count s)

let test_move_errors () =
  let s = Bin_store.create () in
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:0 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:9 ~s:0.6);
  Bin_store.insert s b2 (item ~id:2 ~a:0 ~d:9 ~s:0.6);
  check_raises_invalid "does not fit" (fun () ->
      Bin_store.move s ~now:1 ~item_id:1 ~dst:b2);
  check_raises_invalid "already there" (fun () ->
      Bin_store.move s ~now:1 ~item_id:1 ~dst:b1);
  check_raises_invalid "not live" (fun () ->
      Bin_store.move s ~now:1 ~item_id:99 ~dst:b2);
  ignore (Bin_store.remove s ~now:2 ~item_id:2);
  check_raises_invalid "closed destination" (fun () ->
      Bin_store.move s ~now:3 ~item_id:1 ~dst:b2);
  let untracked = Bin_store.create ~retire:true ~track_items:false () in
  let b = Bin_store.open_bin untracked ~now:0 ~label:"x" in
  Bin_store.insert untracked b (item ~id:1 ~a:0 ~d:2 ~s:0.1);
  check_raises_invalid "untracked store" (fun () ->
      Bin_store.move untracked ~now:1 ~item_id:1 ~dst:b)

(* Same placement-and-move script through retain and retire stores:
   the usage/lifetime aggregates must agree even when a move (not a
   departure) is what empties and closes a bin — the retire path
   recycles the slot through the same close_empty bookkeeping. *)
let run_move_script s =
  let b1 = Bin_store.open_bin s ~now:0 ~label:"a" in
  let b2 = Bin_store.open_bin s ~now:1 ~label:"b" in
  Bin_store.insert s b1 (item ~id:1 ~a:0 ~d:6 ~s:0.5);
  Bin_store.insert s b2 (item ~id:2 ~a:1 ~d:8 ~s:0.25);
  ignore (Bin_store.move s ~now:3 ~item_id:1 ~dst:b2);
  let b3 = Bin_store.open_bin s ~now:4 ~label:"c" in
  Bin_store.insert s b3 (item ~id:3 ~a:4 ~d:5 ~s:0.9);
  ignore (Bin_store.remove s ~now:5 ~item_id:3);
  ignore (Bin_store.remove s ~now:6 ~item_id:1);
  ignore (Bin_store.remove s ~now:8 ~item_id:2)

let test_move_retire_aggregates_match_retain () =
  let retain = Bin_store.create ()
  and retire = Bin_store.create ~retire:true () in
  run_move_script retain;
  run_move_script retire;
  List.iter
    (fun (name, f) -> check_int name (f retain) (f retire))
    [
      ("closed_usage", Bin_store.closed_usage);
      ("bins_opened", Bin_store.bins_opened);
      ("max_open", Bin_store.max_open);
      ("open_count", Bin_store.open_count);
      ("closed_count", Bin_store.closed_count);
      ("move_count", Bin_store.move_count);
      ("moved_units", Bin_store.moved_units);
      ("usage at 9", fun s -> Bin_store.usage s ~now:9);
    ];
  let _, c1, s1 = Bin_store.lifetime_histogram retain in
  let _, c2, s2 = Bin_store.lifetime_histogram retire in
  check_bool "lifetime histogram" true (c1 = c2);
  check_int "lifetime sum" s1 s2;
  (* Retire mode aggregates moves but drops the per-move log. *)
  check_int "retain logs moves" 1 (Bin_store.move_logged retain);
  check_int "retire drops the log" 0 (Bin_store.move_logged retire)

let suite =
  [
    case "lifecycle" test_lifecycle;
    case "usage accounting" test_usage_accounting;
    case "counters" test_counters;
    case "errors" test_errors;
    case "assignment log" test_assignment_log;
    case "retire: aggregates match retain" test_retire_aggregates_match_retain;
    case "retire: records dropped" test_retire_drops_records;
    case "retire: open bins accessible" test_retire_open_bins_accessible;
    case "move: loads, contents, log" test_move_basic;
    case "move: emptied source closes" test_move_closes_emptied_source;
    case "move: errors" test_move_errors;
    case "move: retire aggregates match retain" test_move_retire_aggregates_match_retain;
  ]
