open Dbp_util
open Dbp_binpack
open Helpers

let sizes l = Array.of_list (List.map Load.of_float l)

let test_first_fit_example () =
  (* 0.6 opens bin0; 0.5 opens bin1; 0.4 joins bin0; 0.3 joins bin1;
     0.2 joins bin1. *)
  let a = Heuristics.pack First_fit (sizes [ 0.6; 0.5; 0.4; 0.3; 0.2 ]) in
  Alcotest.(check (array int)) "assignment" [| 0; 1; 0; 1; 1 |] a

let test_next_fit_example () =
  let c = Heuristics.count Next_fit (sizes [ 0.5; 0.6; 0.5; 0.6 ]) in
  check_int "next fit never looks back" 4 c

let test_best_fit_example () =
  (* bins: 0.7 and 0.5 open; 0.3 best-fits into the 0.7 bin. *)
  let a = Heuristics.pack Best_fit (sizes [ 0.7; 0.5; 0.3 ]) in
  Alcotest.(check (array int)) "assignment" [| 0; 1; 0 |] a

let test_worst_fit_example () =
  (* 0.3 worst-fits into the emptier (0.5) bin. *)
  let a = Heuristics.pack Worst_fit (sizes [ 0.7; 0.5; 0.3 ]) in
  Alcotest.(check (array int)) "assignment" [| 0; 1; 1 |] a

let test_ffd_example () =
  check_int "ffd" 2 (Heuristics.ffd (sizes [ 0.2; 0.5; 0.4; 0.3; 0.6 ]));
  check_int "ffd empty" 0 (Heuristics.ffd [||])

let test_oversize_rejected () =
  check_raises_invalid "oversize" (fun () ->
      Heuristics.pack First_fit [| Load.of_units (Load.capacity + 1) |])

let test_lower_bounds () =
  check_int "l1 empty" 0 (Lower_bounds.l1 [||]);
  check_int "l1" 2 (Lower_bounds.l1 (sizes [ 0.9; 0.9 ]));
  (* three items > 1/2 are pairwise incompatible: l2 = 3, l1 = 2 *)
  let s = sizes [ 0.6; 0.6; 0.6 ] in
  check_int "l1 volume" 2 (Lower_bounds.l1 s);
  check_int "l2 pairwise" 3 (Lower_bounds.l2 s);
  check_int "best" 3 (Lower_bounds.best s)

let test_exact_known () =
  let check_opt name expected l =
    let r = Exact.min_bins (sizes l) in
    check_bool (name ^ " exact") true r.exact;
    check_int name expected r.bins
  in
  check_opt "empty" 0 [];
  check_opt "single" 1 [ 0.4 ];
  check_opt "pairable" 2 [ 0.6; 0.5; 0.4; 0.3; 0.2 ];
  check_opt "three large" 3 [ 0.6; 0.6; 0.6 ];
  check_opt "perfect halves" 2 [ 0.5; 0.5; 0.5; 0.5 ];
  check_opt "tricky" 3 [ 0.55; 0.45; 0.5; 0.5; 0.45; 0.55 ]

let test_exact_all_equal () =
  let r = Exact.min_bins (Array.make 10 (Load.of_fraction ~num:1 ~den:3)) in
  check_bool "exact" true r.exact;
  check_int "ceil(10/3)" 4 r.bins

let brute_force sizes =
  (* Reference optimum by exhaustive assignment, for tiny inputs. *)
  let n = Array.length sizes in
  let best = ref n in
  let bins = Array.make n 0 in
  let rec go i used =
    if used >= !best then ()
    else if i = n then best := used
    else begin
      for b = 0 to used - 1 do
        let s = Load.to_units sizes.(i) in
        if bins.(b) + s <= Load.capacity then begin
          bins.(b) <- bins.(b) + s;
          go (i + 1) used;
          bins.(b) <- bins.(b) - s
        end
      done;
      bins.(used) <- Load.to_units sizes.(i);
      go (i + 1) (used + 1);
      bins.(used) <- 0
    end
  in
  if n = 0 then 0
  else begin
    go 0 0;
    !best
  end

let gen_sizes =
  QCheck2.Gen.(
    list_size (int_range 0 9) (int_range 1 Load.capacity)
    |> map (fun l -> Array.of_list (List.map Load.of_units l)))

let prop_exact_matches_brute_force =
  qcase ~count:100 ~name:"exact = brute force on tiny instances"
    (fun s -> (Exact.min_bins s).bins = brute_force s)
    gen_sizes

let prop_bounds_sandwich =
  qcase ~name:"l1 <= l2 <= exact <= ffd"
    (fun s ->
      let l1 = Lower_bounds.l1 s and l2 = Lower_bounds.l2 s in
      let opt = (Exact.min_bins s).bins in
      let ffd = Heuristics.ffd s in
      l1 <= l2 && l2 <= opt && opt <= ffd)
    gen_sizes

let prop_pack_valid =
  qcase ~name:"every heuristic packing respects capacity"
    (fun (rule_ix, l) ->
      let rule =
        match rule_ix mod 4 with
        | 0 -> Heuristics.First_fit
        | 1 -> Heuristics.Best_fit
        | 2 -> Heuristics.Worst_fit
        | _ -> Heuristics.Next_fit
      in
      let s = Array.of_list (List.map Load.of_units l) in
      let a = Heuristics.pack rule s in
      let loads = Hashtbl.create 8 in
      Array.iteri
        (fun i b ->
          let cur = Option.value (Hashtbl.find_opt loads b) ~default:0 in
          Hashtbl.replace loads b (cur + Load.to_units s.(i)))
        a;
      Hashtbl.fold (fun _ load ok -> ok && load <= Load.capacity) loads true)
    QCheck2.Gen.(pair (int_range 0 3) (list_size (int_range 0 40) (int_range 1 Load.capacity)))

let desc_units_of l =
  let u = Array.of_list l in
  Array.sort (fun a b -> Int.compare b a) u;
  u

let prop_solve_desc_packing_valid =
  qcase ~count:150 ~name:"solve_desc packing: right count, capacity, same multiset"
    (fun l ->
      let units = desc_units_of l in
      let r, packing = Exact.solve_desc ~want_packing:true units in
      match packing with
      | None -> false
      | Some bins ->
          Array.length bins = r.bins
          && Array.for_all
               (fun b -> Array.fold_left ( + ) 0 b <= Load.capacity)
               bins
          && List.sort Int.compare (Array.to_list (Array.concat (Array.to_list bins)))
             = List.sort Int.compare l)
    QCheck2.Gen.(list_size (int_range 0 12) (int_range 1 Load.capacity))

let prop_warm_start_value_identity =
  qcase ~count:150 ~name:"warm incumbent and external lower never change the value"
    (fun l ->
      let units = desc_units_of l in
      let cold = Exact.min_bins (Array.map Load.of_units units) in
      let ffd = Heuristics.ffd (Array.map Load.of_units units) in
      let lower = Lower_bounds.best_desc units in
      let warm, _ = Exact.solve_desc ~lower ~incumbent:ffd units in
      (* Tiny instances always solve to proof, so values must agree
         exactly; the warm search may only explore fewer nodes. *)
      cold.exact && warm.exact && warm.bins = cold.bins
      && warm.nodes <= cold.nodes)
    QCheck2.Gen.(list_size (int_range 0 10) (int_range 1 Load.capacity))

let test_key_hash () =
  let a = [| 3; 1; 5; 2 |] in
  let b = [| 3; 1; 5; 2 |] in
  check_bool "equal" true (Solver.Key.equal a b);
  check_int "equal hash" (Solver.Key.hash a) (Solver.Key.hash b);
  check_bool "length mismatch" false (Solver.Key.equal a [| 3; 1 |]);
  check_bool "content mismatch" false (Solver.Key.equal a [| 3; 1; 5; 3 |]);
  check_bool "hash non-negative" true (Solver.Key.hash a >= 0);
  (* Not a collision guarantee, just a smoke test that the mixer
     actually distinguishes near-identical keys. *)
  check_bool "mixes" true (Solver.Key.hash a <> Solver.Key.hash [| 3; 1; 5; 3 |])

let test_inc_session () =
  let solver = Solver.create () in
  let sess = Solver.Inc.start solver in
  let half = Load.capacity / 2 in
  let r0 = Solver.Inc.solve sess in
  check_int "empty" 0 r0.bins;
  Solver.Inc.add sess (half + 1);
  Solver.Inc.add sess (half + 1);
  let r1 = Solver.Inc.solve sess in
  check_bool "exact" true r1.exact;
  check_int "two large items" 2 r1.bins;
  Solver.Inc.remove sess (half + 1);
  Solver.Inc.add sess (half - 1);
  let r2 = Solver.Inc.solve sess in
  check_int "one large one small" 1 r2.bins;
  let c = Solver.counters solver in
  check_int "segments counted" 3 c.segments;
  check_raises_invalid "remove absent" (fun () -> Solver.Inc.remove sess 17)

let test_solver_cache () =
  let solver = Solver.create () in
  let s = sizes [ 0.6; 0.5; 0.4 ] in
  let r1 = Solver.min_bins solver s in
  (* Same multiset in a different order must hit the cache. *)
  let r2 = Solver.min_bins solver (sizes [ 0.4; 0.6; 0.5 ]) in
  check_int "same result" r1.bins r2.bins;
  let hits, misses = Solver.stats solver in
  check_int "hits" 1 hits;
  check_int "misses" 1 misses

let suite =
  [
    case "first fit example" test_first_fit_example;
    case "next fit example" test_next_fit_example;
    case "best fit example" test_best_fit_example;
    case "worst fit example" test_worst_fit_example;
    case "ffd example" test_ffd_example;
    case "oversize rejected" test_oversize_rejected;
    case "lower bounds" test_lower_bounds;
    case "exact known instances" test_exact_known;
    case "exact all-equal shortcut" test_exact_all_equal;
    prop_exact_matches_brute_force;
    prop_bounds_sandwich;
    prop_pack_valid;
    prop_solve_desc_packing_valid;
    prop_warm_start_value_identity;
    case "key equality and hash" test_key_hash;
    case "incremental session" test_inc_session;
    case "solver cache" test_solver_cache;
  ]
