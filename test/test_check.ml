(* The validation layer validating itself: the validator passes on every
   real policy, catches seeded faults, the naive engine agrees with the
   real one, oracles re-derive the lemmas, the shrinker minimizes, and
   the fuzzer is deterministic across worker counts. *)

open Dbp_util
open Dbp_instance
open Dbp_check
open Helpers

let all_policies ~mu_hint =
  [
    ("HA", Dbp_core.Ha.policy ());
    ("CDFF", Dbp_core.Cdff.policy ());
    ("FF", Dbp_baselines.Any_fit.first_fit);
    ("BF", Dbp_baselines.Any_fit.best_fit);
    ("WF", Dbp_baselines.Any_fit.worst_fit);
    ("NF", Dbp_baselines.Any_fit.next_fit);
    ("CD", Dbp_baselines.Classify_duration.policy ());
    ("RT", Dbp_baselines.Rt_classify.auto ~mu_hint);
    ("SpanGreedy", Dbp_baselines.Span_greedy.policy);
  ]

let check_clean name (vs : Violation.t list) =
  match vs with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: unexpected violation %s (%d total)" name
        (Violation.to_string v) (List.length vs)

(* --- validator on real policies --- *)

let test_validator_clean_on_all_policies () =
  let inst = binary_input 16 in
  List.iter
    (fun (name, factory) ->
      let _, vs = Validator.run factory inst in
      check_clean name vs)
    (all_policies ~mu_hint:16.0)

let test_usage_integral_matches_engine () =
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.7); (3, 9, 0.25) ] in
  let res = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
  check_int "integral = engine cost" res.cost (Validator.usage_integral res.store)

let test_validator_catches_tampered_cost () =
  let inst = instance [ (0, 4, 0.5); (2, 6, 0.7) ] in
  let _, vs =
    Validator.run
      ~tamper:(fun r -> { r with cost = r.cost + 1 })
      Dbp_baselines.Any_fit.first_fit inst
  in
  check_bool "cost-integral fires" true
    (List.exists (fun (v : Violation.t) -> v.oracle = "cost-integral") vs)

let test_validator_catches_bad_policy () =
  (* A policy that violates the paper's bin-closing discipline: it
     reuses a bin it knows has emptied (places into a fresh bin only
     when the store refuses). The store raises on insertion into a
     closed bin, so build the misbehaviour the validator can see:
     report max_open too low via tamper on another field. *)
  let inst = instance [ (0, 4, 0.5); (1, 5, 0.5) ] in
  let _, vs =
    Validator.run
      ~tamper:(fun r -> { r with max_open = r.max_open + 1 })
      Dbp_baselines.Any_fit.first_fit inst
  in
  check_bool "series oracle fires" true
    (List.exists (fun (v : Violation.t) -> v.oracle = "series") vs)

(* --- naive reference engine --- *)

let prop_naive_agrees =
  qcase ~count:40 ~name:"naive engine agrees with Engine on random instances"
    (fun seed ->
      let inst =
        random_instance (Prng.create ~seed) ~n:40 ~max_time:60 ~max_duration:30
      in
      List.for_all
        (fun (_, factory) ->
          let res = Dbp_sim.Engine.run factory inst in
          Naive.diff res (Naive.run factory inst) = [])
        (all_policies ~mu_hint:30.0))
    QCheck2.Gen.(int_range 0 1_000_000)

(* --- qcheck differential: cost = usage integral, every policy, the
   three input regimes the paper distinguishes --- *)

let integral_inputs seed =
  let rng = Prng.create ~seed in
  let general =
    random_instance rng ~n:30 ~max_time:40 ~max_duration:20
  in
  let aligned =
    Dbp_workloads.Aligned_random.generate
      ~config:
        {
          Dbp_workloads.Aligned_random.default with
          top_class = 4;
          horizon = 32;
        }
      ~seed ()
  in
  let adversarial =
    (Dbp_workloads.Adversary.run ~mu:16 Dbp_baselines.Any_fit.first_fit).instance
  in
  [ ("general", general); ("aligned", aligned); ("adversarial", adversarial) ]

let prop_cost_is_timeline_integral =
  qcase ~count:25
    ~name:"every policy's cost equals the Timeline usage integral"
    (fun seed ->
      List.for_all
        (fun (_, inst) ->
          List.for_all
            (fun (_, factory) ->
              let res = Dbp_sim.Engine.run factory inst in
              res.cost = Validator.usage_integral res.store)
            (all_policies ~mu_hint:16.0))
        (integral_inputs seed))
    QCheck2.Gen.(int_range 0 1_000_000)

(* --- lemma oracles --- *)

let test_ha_oracle_clean () =
  let inst = binary_input 32 in
  let _, vs =
    Validator.run ~oracles:[ Oracles.ha ~mu:(Instance.mu inst) ]
      (Dbp_core.Ha.policy ()) inst
  in
  check_clean "HA under its oracle" vs

let test_ha_oracle_rejects_other_policy () =
  (* First-Fit mixes types into shared unlabelled bins, which is exactly
     what the HA oracle must flag. *)
  let inst = binary_input 8 in
  let _, vs =
    Validator.run ~oracles:[ Oracles.ha ~mu:8.0 ]
      Dbp_baselines.Any_fit.first_fit inst
  in
  check_bool "flags non-HA labels" true
    (List.exists (fun (v : Violation.t) -> v.oracle = "ha-lemma33") vs)

let test_cdff_oracle_clean () =
  List.iter
    (fun mu ->
      let inst = binary_input mu in
      let _, vs =
        Validator.run ~oracles:[ Oracles.cdff () ] (Dbp_core.Cdff.policy ()) inst
      in
      check_clean (Printf.sprintf "CDFF rows on sigma_%d" mu) vs)
    [ 2; 8; 32 ]

let prop_cdff_oracle_on_aligned =
  qcase ~count:30 ~name:"CDFF row oracle clean on random aligned inputs"
    (fun seed ->
      let inst =
        Dbp_workloads.Aligned_random.generate
          ~config:
            {
              Dbp_workloads.Aligned_random.default with
              top_class = 5;
              horizon = 64;
            }
          ~seed ()
      in
      let _, vs =
        Validator.run ~oracles:[ Oracles.cdff () ] (Dbp_core.Cdff.policy ()) inst
      in
      vs = [])
    QCheck2.Gen.(int_range 0 1_000_000)

let test_corollary58_oracle () =
  List.iter
    (fun mu ->
      let inst = Dbp_workloads.Binary_input.generate ~mu in
      let res = Dbp_sim.Engine.run (Dbp_core.Cdff.policy ()) inst in
      check_clean
        (Printf.sprintf "corollary 5.8 at mu=%d" mu)
        (Oracles.corollary58 ~mu res);
      (* and it is not vacuous: FF packs sigma_mu differently *)
      if mu >= 8 then begin
        let ff = Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit inst in
        check_bool "FF violates the CDFF identity" true
          (Oracles.corollary58 ~mu ff <> [])
      end)
    [ 2; 8; 16 ]

let test_optr_oracle_clean () =
  List.iter
    (fun inst -> check_clean "opt_r" (Oracles.opt_r inst))
    [
      instance [ (0, 4, 0.5); (2, 6, 0.7); (3, 9, 0.25) ];
      binary_input 16;
      (Dbp_workloads.Pinning.generate ~groups:3 ~k:3 ~mu:4 ()
      : Instance.t);
    ]

let prop_optr_oracle_random =
  qcase ~count:20 ~name:"opt_r oracle clean on random instances"
    (fun seed ->
      let inst =
        random_instance (Prng.create ~seed) ~n:20 ~max_time:30 ~max_duration:15
      in
      Oracles.opt_r inst = [])
    QCheck2.Gen.(int_range 0 1_000_000)

(* --- shrinker --- *)

let test_shrink_to_single_item () =
  (* Predicate: instance contains an item of size > 1/2. Minimal witness
     is that one item, shrunk to duration 1 at t=0. *)
  let inst =
    instance [ (0, 9, 0.25); (1, 4, 0.75); (3, 12, 0.1); (5, 6, 0.3) ]
  in
  let keep i =
    Array.exists
      (fun (r : Item.t) -> Load.to_float r.size > 0.5)
      (Instance.items i)
  in
  let small = Shrink.minimize ~keep inst in
  check_int "one item" 1 (Instance.length small);
  let r = (Instance.items small).(0) in
  check_bool "kept the heavy item" true (Load.to_float r.size > 0.5);
  check_int "arrival pulled to 0" 0 r.arrival;
  check_int "duration shrunk to 1" 1 (Item.duration r)

let test_shrink_requires_holding_predicate () =
  check_raises_invalid "predicate must hold initially" (fun () ->
      ignore (Shrink.minimize ~keep:(fun _ -> false) (binary_input 4)))

let test_shrink_deterministic () =
  let inst = binary_input 16 in
  let keep i = Instance.length i >= 3 in
  let a = Shrink.minimize ~keep inst and b = Shrink.minimize ~keep inst in
  Alcotest.(check string)
    "same minimum" (Io.to_string a) (Io.to_string b);
  check_int "minimal size" 3 (Instance.length a)

(* --- mutation generator --- *)

let prop_mutate_valid =
  qcase ~count:60 ~name:"mutated instances stay valid"
    (fun seed ->
      let rng = Prng.create ~seed in
      let base = binary_input 8 in
      let m = Dbp_workloads.Mutate.mutate rng ~ops:16 base in
      let ids = Hashtbl.create 32 in
      Array.for_all
        (fun (r : Item.t) ->
          let fresh = not (Hashtbl.mem ids r.id) in
          Hashtbl.replace ids r.id ();
          fresh && r.arrival >= 0
          && r.departure > r.arrival
          && Load.to_units r.size >= 1
          && Load.(r.size <= Load.one))
        (Instance.items m))
    QCheck2.Gen.(int_range 0 1_000_000)

(* --- fuzzer --- *)

let test_fuzz_clean_and_jobs_invariant () =
  let r1 = Fuzz.run ~jobs:1 ~n:45 ~seed:7 () in
  check_int "no findings" 0 (List.length r1.findings);
  check_int "all policies ran" (45 * 9) r1.policy_runs;
  let r2 = Fuzz.run ~jobs:2 ~n:45 ~seed:7 () in
  let r4 = Fuzz.run ~jobs:4 ~n:45 ~seed:7 () in
  Alcotest.(check string) "jobs 1 = jobs 2" (Fuzz.summary r1) (Fuzz.summary r2);
  Alcotest.(check string) "jobs 2 = jobs 4" (Fuzz.summary r2) (Fuzz.summary r4)

let test_fuzz_injected_fault_shrinks () =
  (* The acceptance gate: an injected off-by-one in one policy's
     reported cost must be caught by the validator, shrunk to a tiny
     repro, and the repro must replay to the same violation after an Io
     round-trip. *)
  let r = Fuzz.run ~jobs:2 ~inject:Fuzz.Cost_off_by_one ~n:9 ~seed:3 () in
  check_bool "findings exist" true (r.findings <> []);
  List.iter
    (fun (f : Fuzz.finding) ->
      check_bool "minimal repro (<= 6 items)" true (Instance.length f.repro <= 6);
      check_bool "repro replays after round-trip" true f.replayed;
      check_bool "cost-integral is among the oracles" true
        (List.exists
           (fun (v : Violation.t) -> v.oracle = "cost-integral")
           f.violations))
    r.findings

let suite =
  [
    case "validator clean on all policies" test_validator_clean_on_all_policies;
    case "usage integral" test_usage_integral_matches_engine;
    case "validator catches tampered cost" test_validator_catches_tampered_cost;
    case "validator checks the series" test_validator_catches_bad_policy;
    prop_naive_agrees;
    prop_cost_is_timeline_integral;
    case "ha oracle clean" test_ha_oracle_clean;
    case "ha oracle rejects FF" test_ha_oracle_rejects_other_policy;
    case "cdff oracle clean" test_cdff_oracle_clean;
    prop_cdff_oracle_on_aligned;
    case "corollary 5.8 oracle" test_corollary58_oracle;
    case "opt_r oracle clean" test_optr_oracle_clean;
    prop_optr_oracle_random;
    case "shrink to single item" test_shrink_to_single_item;
    case "shrink rejects false predicate" test_shrink_requires_holding_predicate;
    case "shrink deterministic" test_shrink_deterministic;
    prop_mutate_valid;
    slow_case "fuzz clean and jobs-invariant" test_fuzz_clean_and_jobs_invariant;
    case "fuzz injected fault shrinks" test_fuzz_injected_fault_shrinks;
  ]
