open Dbp_sim
open Helpers

(* The calendar queue must pop in exactly (departure, id) order — the
   total order the engine's observables depend on. The reference here
   is a naive list scanned for its minimum key, which is also what the
   binary heap it replaced computed. *)

let test_fifo_order () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:5 ~id:3 0;
  Depart_queue.add q ~dep:5 ~id:1 1;
  Depart_queue.add q ~dep:5 ~id:2 2;
  Depart_queue.add q ~dep:4 ~id:9 3;
  check_int "earlier tick first" 3 (Depart_queue.pop_due q ~upto:9);
  (* Same tick: id order, not insertion order. *)
  check_int "id 1" 1 (Depart_queue.pop_due q ~upto:9);
  check_int "id 2" 2 (Depart_queue.pop_due q ~upto:9);
  check_int "id 3" 0 (Depart_queue.pop_due q ~upto:9);
  check_int "drained" (-1) (Depart_queue.pop_due q ~upto:max_int);
  check_int "length" 0 (Depart_queue.length q)

let test_upto_bound () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:10 ~id:0 0;
  check_int "not due yet" (-1) (Depart_queue.pop_due q ~upto:9);
  check_int "still pending" 1 (Depart_queue.length q);
  check_int "due at its tick" 0 (Depart_queue.pop_due q ~upto:10)

(* The regression that motivated the [cur .. hi] bracket: a far-future
   departure arrives first (the cursor jumps to it), then a nearer one
   — the cursor must come back down, and the pops stay ordered. *)
let test_add_below_cursor () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:100 ~id:0 0;
  check_int "far future not due" (-1) (Depart_queue.pop_due q ~upto:50);
  Depart_queue.add q ~dep:60 ~id:1 1;
  Depart_queue.add q ~dep:5 ~id:2 2;
  check_int "nearest first" 2 (Depart_queue.pop_due q ~upto:200);
  check_int "then middle" 1 (Depart_queue.pop_due q ~upto:200);
  check_int "then far" 0 (Depart_queue.pop_due q ~upto:200)

let test_growth () =
  let q = Depart_queue.create ~capacity:16 () in
  (* Ring growth: departures spanning far more ticks than the initial
     ring; slot growth: slot numbers far past the initial tables. *)
  for i = 0 to 99 do
    Depart_queue.add q ~dep:(i * 977) ~id:i (i * 13)
  done;
  check_int "all pending" 100 (Depart_queue.length q);
  for i = 0 to 99 do
    check_int (Printf.sprintf "pop %d" i) (i * 13)
      (Depart_queue.pop_due q ~upto:max_int)
  done;
  check_int "empty" (-1) (Depart_queue.pop_due q ~upto:max_int)

(* Random engine-shaped schedule: nondecreasing arrivals, every arrival
   drains due departures first (exactly the engine's discipline), ids
   deliberately shuffled so same-tick buckets exercise the sorted
   insert, not just the streaming tail-append. *)
let prop_matches_naive =
  qcase ~count:120 ~name:"pop order = (departure, id), engine discipline"
    (fun steps ->
      let n = List.length steps in
      (* Unique shuffled ids: rank of (jitter, index). *)
      let keyed =
        List.mapi (fun i (_, _, jitter) -> (jitter, i)) steps |> List.sort compare
      in
      let ids = Array.make n 0 in
      List.iteri (fun rank (_, i) -> ids.(i) <- rank) keyed;
      let q = Depart_queue.create ~capacity:16 () in
      let pending = ref [] in
      let ok = ref true in
      let naive_pop upto =
        match
          List.fold_left
            (fun best (dep, id, slot) ->
              if dep > upto then best
              else
                match best with
                | Some (bd, bi, _) when (bd, bi) <= (dep, id) -> best
                | _ -> Some (dep, id, slot))
            None !pending
        with
        | None -> -1
        | Some (dep, id, slot) ->
            pending := List.filter (fun (d, i, _) -> (d, i) <> (dep, id)) !pending;
            slot
      in
      let drain upto =
        let continue = ref true in
        while !continue do
          let got = Depart_queue.pop_due q ~upto in
          let want = naive_pop upto in
          if got <> want then ok := false;
          if got < 0 || want < 0 then continue := false
        done
      in
      let clock = ref 0 in
      List.iteri
        (fun i (dt, dur, _) ->
          let arrival = !clock + dt in
          drain arrival;
          clock := arrival;
          let dep = arrival + 1 + dur in
          Depart_queue.add q ~dep ~id:ids.(i) i;
          pending := (dep, ids.(i), i) :: !pending)
        steps;
      drain max_int;
      !ok && Depart_queue.length q = 0 && !pending = [])
    QCheck2.Gen.(
      list_size (int_range 1 120)
        (triple (int_range 0 5) (int_range 0 40) (int_range 0 1_000_000)))

let suite =
  [
    case "same-tick pops follow id order" test_fifo_order;
    case "upto bounds the pop" test_upto_bound;
    case "add below the cursor" test_add_below_cursor;
    case "ring and slot growth" test_growth;
    prop_matches_naive;
  ]
