open Dbp_sim
open Helpers

(* The calendar queue must pop in exactly (departure, id) order — the
   total order the engine's observables depend on. The reference here
   is a naive list scanned for its minimum key, which is also what the
   binary heap it replaced computed. *)

let test_fifo_order () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:5 ~id:3 0;
  Depart_queue.add q ~dep:5 ~id:1 1;
  Depart_queue.add q ~dep:5 ~id:2 2;
  Depart_queue.add q ~dep:4 ~id:9 3;
  check_int "earlier tick first" 3 (Depart_queue.pop_due q ~upto:9);
  (* Same tick: id order, not insertion order. *)
  check_int "id 1" 1 (Depart_queue.pop_due q ~upto:9);
  check_int "id 2" 2 (Depart_queue.pop_due q ~upto:9);
  check_int "id 3" 0 (Depart_queue.pop_due q ~upto:9);
  check_int "drained" (-1) (Depart_queue.pop_due q ~upto:max_int);
  check_int "length" 0 (Depart_queue.length q)

let test_upto_bound () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:10 ~id:0 0;
  check_int "not due yet" (-1) (Depart_queue.pop_due q ~upto:9);
  check_int "still pending" 1 (Depart_queue.length q);
  check_int "due at its tick" 0 (Depart_queue.pop_due q ~upto:10)

(* The regression that motivated the [cur .. hi] bracket: a far-future
   departure arrives first (the cursor jumps to it), then a nearer one
   — the cursor must come back down, and the pops stay ordered. *)
let test_add_below_cursor () =
  let q = Depart_queue.create () in
  Depart_queue.add q ~dep:100 ~id:0 0;
  check_int "far future not due" (-1) (Depart_queue.pop_due q ~upto:50);
  Depart_queue.add q ~dep:60 ~id:1 1;
  Depart_queue.add q ~dep:5 ~id:2 2;
  check_int "nearest first" 2 (Depart_queue.pop_due q ~upto:200);
  check_int "then middle" 1 (Depart_queue.pop_due q ~upto:200);
  check_int "then far" 0 (Depart_queue.pop_due q ~upto:200)

let test_growth () =
  let q = Depart_queue.create ~capacity:16 () in
  (* Ring growth: departures spanning far more ticks than the initial
     ring; slot growth: slot numbers far past the initial tables. *)
  for i = 0 to 99 do
    Depart_queue.add q ~dep:(i * 977) ~id:i (i * 13)
  done;
  check_int "all pending" 100 (Depart_queue.length q);
  for i = 0 to 99 do
    check_int (Printf.sprintf "pop %d" i) (i * 13)
      (Depart_queue.pop_due q ~upto:max_int)
  done;
  check_int "empty" (-1) (Depart_queue.pop_due q ~upto:max_int)

(* The longevity property: an always-on server's tick values increase
   without bound, but the ring must track the *concurrent* departure
   span, not the absolute span since process start. *)
let test_ring_rebases_on_advancing_clock () =
  let q = Depart_queue.create ~capacity:16 () in
  let base = Depart_queue.ring_size q in
  (* Steady state: every stride the clock jumps 1000 ticks, everything
     due departs, and a burst of items departing 1..8 ticks out
     arrives. The clock reaches 10M ticks but the concurrent span never
     exceeds 8, so the ring must stay at base the whole run. *)
  let clock = ref 0 in
  let id = ref 0 in
  for _ = 1 to 10_000 do
    clock := !clock + 1_000;
    while Depart_queue.pop_due q ~upto:!clock >= 0 do
      ()
    done;
    for j = 1 to 8 do
      Depart_queue.add q ~dep:(!clock + j) ~id:!id j;
      incr id
    done;
    check_int "ring stays at base" base (Depart_queue.ring_size q)
  done

let test_ring_shrinks_after_flash_crowd () =
  let q = Depart_queue.create ~capacity:16 () in
  let base = Depart_queue.ring_size q in
  (* Flash crowd: departures spread over ~100k ticks force a wide ring. *)
  for i = 0 to 199 do
    Depart_queue.add q ~dep:(500 * i) ~id:i i
  done;
  let crowd = Depart_queue.ring_size q in
  check_bool "crowd widened the ring" true (crowd > base);
  (* Drain the crowd only up to tick 97500 — four stragglers keep the
     queue nonempty, so the shrink below must happen on the live add
     path, not the empty-queue reset. *)
  for i = 0 to 195 do
    check_int (Printf.sprintf "crowd pop %d" i) i
      (Depart_queue.pop_due q ~upto:97_500)
  done;
  check_int "stragglers not due" (-1) (Depart_queue.pop_due q ~upto:97_500);
  (* Narrow steady phase: new departures land within a 100-tick span.
     The ring must re-base toward the concurrent bracket. *)
  for j = 0 to 99 do
    Depart_queue.add q ~dep:(100_000 + j) ~id:(200 + j) (200 + j)
  done;
  check_bool
    (Printf.sprintf "ring shrank (crowd %d -> %d)" crowd
       (Depart_queue.ring_size q))
    true
    (Depart_queue.ring_size q < crowd && Depart_queue.ring_size q <= 4096);
  (* Pop order stays exact across the shrink: stragglers first, then
     the steady phase in id order. *)
  for i = 196 to 199 do
    check_int (Printf.sprintf "straggler %d" i) i
      (Depart_queue.pop_due q ~upto:max_int)
  done;
  for j = 0 to 99 do
    check_int (Printf.sprintf "steady pop %d" j) (200 + j)
      (Depart_queue.pop_due q ~upto:max_int)
  done;
  check_int "drained" 0 (Depart_queue.length q)

let test_clear_resets_window () =
  let q = Depart_queue.create ~capacity:16 () in
  let base = Depart_queue.ring_size q in
  for i = 0 to 99 do
    Depart_queue.add q ~dep:(1_000_000 + (977 * i)) ~id:i i
  done;
  check_bool "grew" true (Depart_queue.ring_size q > base);
  Depart_queue.clear q;
  check_int "emptied" 0 (Depart_queue.length q);
  check_int "ring back to base" base (Depart_queue.ring_size q);
  (* Reusable from tick 0 again after the window reset. *)
  Depart_queue.add q ~dep:3 ~id:0 7;
  check_int "pops after clear" 7 (Depart_queue.pop_due q ~upto:5)

(* Random engine-shaped schedule: nondecreasing arrivals, every arrival
   drains due departures first (exactly the engine's discipline), ids
   deliberately shuffled so same-tick buckets exercise the sorted
   insert, not just the streaming tail-append. *)
let engine_discipline_matches_naive steps =
      let n = List.length steps in
      (* Unique shuffled ids: rank of (jitter, index). *)
      let keyed =
        List.mapi (fun i (_, _, jitter) -> (jitter, i)) steps |> List.sort compare
      in
      let ids = Array.make n 0 in
      List.iteri (fun rank (_, i) -> ids.(i) <- rank) keyed;
      let q = Depart_queue.create ~capacity:16 () in
      let pending = ref [] in
      let ok = ref true in
      let naive_pop upto =
        match
          List.fold_left
            (fun best (dep, id, slot) ->
              if dep > upto then best
              else
                match best with
                | Some (bd, bi, _) when (bd, bi) <= (dep, id) -> best
                | _ -> Some (dep, id, slot))
            None !pending
        with
        | None -> -1
        | Some (dep, id, slot) ->
            pending := List.filter (fun (d, i, _) -> (d, i) <> (dep, id)) !pending;
            slot
      in
      let drain upto =
        let continue = ref true in
        while !continue do
          let got = Depart_queue.pop_due q ~upto in
          let want = naive_pop upto in
          if got <> want then ok := false;
          if got < 0 || want < 0 then continue := false
        done
      in
      let clock = ref 0 in
      List.iteri
        (fun i (dt, dur, _) ->
          let arrival = !clock + dt in
          drain arrival;
          clock := arrival;
          let dep = arrival + 1 + dur in
          Depart_queue.add q ~dep ~id:ids.(i) i;
          pending := (dep, ids.(i), i) :: !pending)
        steps;
      drain max_int;
      !ok && Depart_queue.length q = 0 && !pending = []

let prop_matches_naive =
  qcase ~count:120 ~name:"pop order = (departure, id), engine discipline"
    engine_discipline_matches_naive
    QCheck2.Gen.(
      list_size (int_range 1 120)
        (triple (int_range 0 5) (int_range 0 40) (int_range 0 1_000_000)))

(* Same model, re-based horizons: occasional huge clock jumps and a
   mix of tiny and very long durations, so runs repeatedly widen the
   bracket (grow), go idle (stale cursor to tighten), and collapse back
   to a narrow span (shrink). The pop order must survive every ring
   transition. *)
let prop_matches_naive_rebased =
  qcase ~count:80 ~name:"pop order survives ring re-basing (wide horizons)"
    engine_discipline_matches_naive
    QCheck2.Gen.(
      let dt =
        frequency
          [ (6, int_range 0 3); (1, int_range 5_000 100_000) ]
      in
      let dur =
        frequency
          [ (5, int_range 0 20); (2, int_range 2_000 50_000) ]
      in
      list_size (int_range 1 120) (triple dt dur (int_range 0 1_000_000)))

let suite =
  [
    case "same-tick pops follow id order" test_fifo_order;
    case "upto bounds the pop" test_upto_bound;
    case "add below the cursor" test_add_below_cursor;
    case "ring and slot growth" test_growth;
    case "ring stays at base under an advancing clock" test_ring_rebases_on_advancing_clock;
    case "ring shrinks after a flash crowd" test_ring_shrinks_after_flash_crowd;
    case "clear resets the window and ring" test_clear_resets_window;
    prop_matches_naive;
    prop_matches_naive_rebased;
  ]
