open Dbp_instance
open Dbp_sim
open Helpers

(* Minimal First-Fit policy, defined directly on the sim primitives so
   the engine tests do not depend on the baselines library. *)
let ff store =
  let g = Fit_group.create ~label:"FF" () in
  {
    Policy.name = "FF";
    on_arrival = (fun ~now r -> Fit_group.place g store ~now r);
    on_departure =
      (fun ~now:_ _ ~bin ~closed -> Fit_group.note_depart g store bin ~closed);
    on_move =
      Some
        (fun ~now:_ _ ~src ~dst ~closed ->
          Fit_group.note_depart g store src ~closed;
          Fit_group.note_insert g store dst);
  }

let test_single_item () =
  let res = Engine.run ff (instance [ (0, 5, 0.5) ]) in
  check_int "cost" 5 res.cost;
  check_int "bins" 1 res.bins_opened;
  check_int "max_open" 1 res.max_open

let test_sequential_no_reuse () =
  (* Bin closes at t=2; the t=2 arrival must open a new bin (closed bins
     are never reused). *)
  let res = Engine.run ff (instance [ (0, 2, 1.0); (2, 4, 1.0) ]) in
  check_int "cost" 4 res.cost;
  check_int "bins" 2 res.bins_opened;
  check_int "max_open" 1 res.max_open

let test_departure_before_arrival () =
  (* Items of load 0.6: the t=2 arrival does not fit while the first item
     is active, but the first departs exactly at 2, so open bins at t=2
     is 1 throughout. *)
  let res = Engine.run ff (instance [ (0, 2, 0.6); (2, 4, 0.6) ]) in
  check_int "max_open" 1 res.max_open;
  check_int "bins" 2 res.bins_opened

let test_overlap_cost () =
  (* [0,4) 0.7 and [1,3) 0.7 cannot share: two bins, usage 4 + 2. *)
  let res = Engine.run ff (instance [ (0, 4, 0.7); (1, 3, 0.7) ]) in
  check_int "cost" 6 res.cost;
  check_int "bins" 2 res.bins_opened;
  check_int "max_open" 2 res.max_open

let test_series () =
  let res = Engine.run ff (instance [ (0, 4, 0.7); (1, 3, 0.7) ]) in
  Alcotest.(check (list (pair int int)))
    "open-bin series" [ (0, 1); (1, 2); (3, 1); (4, 0) ]
    (Array.to_list res.series)

let test_ff_reuses_open_bin () =
  let res = Engine.run ff (instance [ (0, 10, 0.5); (2, 5, 0.3); (6, 9, 0.3) ]) in
  check_int "single bin" 1 res.bins_opened;
  check_int "cost = span" 10 res.cost

let test_interactive_adversary () =
  let t = Engine.Interactive.start ff in
  ignore (Engine.Interactive.arrive t (item ~id:0 ~a:0 ~d:4 ~s:0.9));
  check_int "one open" 1 (Engine.Interactive.open_count t);
  ignore (Engine.Interactive.arrive t (item ~id:1 ~a:0 ~d:4 ~s:0.9));
  check_int "two open" 2 (Engine.Interactive.open_count t);
  (* React to the observation: release a third item only because two
     bins are open. *)
  if Engine.Interactive.open_count t = 2 then
    ignore (Engine.Interactive.arrive t (item ~id:2 ~a:1 ~d:2 ~s:0.05));
  check_int "clock" 1 (Engine.Interactive.now t);
  let res, inst = Engine.Interactive.finish t in
  check_int "released instance" 3 (Instance.length inst);
  (* Bins: [0,4) holding ids 0 and 2, and [0,4) holding id 1: cost 8. *)
  check_int "cost" 8 res.cost

let test_interactive_past_arrival_rejected () =
  let t = Engine.Interactive.start ff in
  ignore (Engine.Interactive.arrive t (item ~id:0 ~a:5 ~d:6 ~s:0.5));
  check_raises_invalid "past arrival" (fun () ->
      Engine.Interactive.arrive t (item ~id:1 ~a:3 ~d:6 ~s:0.5))

let test_lying_policy_rejected () =
  let lying store =
    let inner = ff store in
    {
      inner with
      Policy.on_arrival =
        (fun ~now r ->
          ignore (inner.Policy.on_arrival ~now r);
          Bin_store.open_bin store ~now ~label:"bogus");
    }
  in
  check_raises_invalid "wrong bin reported" (fun () ->
      Engine.run lying (instance [ (0, 1, 0.5) ]))

let test_empty_instance () =
  let res = Engine.run ff (Instance.of_items []) in
  check_int "cost" 0 res.cost;
  check_int "bins" 0 res.bins_opened

let prop_cost_at_least_lower_bound =
  qcase ~count:100 ~name:"FF cost >= ceil-integral lower bound"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:40 ~max_time:60 ~max_duration:30
      in
      let res = Engine.run ff inst in
      res.cost >= Profile.ceil_integral (Profile.of_instance inst))
    QCheck2.Gen.(int_range 0 1_000_000)

let prop_cost_at_most_span_times_bins =
  qcase ~count:100 ~name:"cost <= span * bins_opened"
    (fun seed ->
      let inst =
        random_instance (Dbp_util.Prng.create ~seed) ~n:30 ~max_time:50 ~max_duration:20
      in
      let res = Engine.run ff inst in
      res.cost <= Instance.span inst * res.bins_opened)
    QCheck2.Gen.(int_range 0 1_000_000)

let test_stream_matches_run () =
  let inst =
    instance [ (0, 5, 0.5); (1, 3, 0.4); (2, 8, 0.3); (5, 9, 0.6); (6, 7, 0.2) ]
  in
  let r = Engine.run ff inst in
  let s = Engine.Stream.run ff (Event_source.of_instance inst) in
  check_int "cost" r.cost s.result.cost;
  check_int "bins_opened" r.bins_opened s.result.bins_opened;
  check_int "max_open" r.max_open s.result.max_open;
  check_bool "series" true (r.series = s.result.series);
  check_int "items" (Instance.length inst) s.items;
  (* The streamed run keeps no released-item log: retention = live. *)
  check_int "retained = live" s.peak_live_items s.peak_retained_items;
  check_bool "retire mode by default" true (Bin_store.retire_mode s.result.store);
  (* Opt-out: full retention preserves the per-bin history. *)
  let f = Engine.Stream.run ~retire:false ff (Event_source.of_instance inst) in
  check_int "full store keeps all bins" r.bins_opened
    (List.length (Bin_store.all_bins f.result.store))

let test_stream_bounded_series () =
  let specs = List.init 200 (fun i -> (i, i + 2, 0.9)) in
  let src = Event_source.of_instance (instance specs) in
  let s = Engine.Stream.run ~max_series:8 ff src in
  check_bool "series within cap" true (Array.length s.result.series <= 8);
  check_int "peak live small" 2 s.peak_live_items

let test_interactive_retention_modes () =
  (* retain_released:false trades finish's instance for O(live) memory. *)
  let t = Engine.Interactive.start ~retain_released:false ff in
  ignore (Engine.Interactive.arrive t (item ~id:1 ~a:0 ~d:3 ~s:0.5));
  ignore (Engine.Interactive.arrive t (item ~id:2 ~a:1 ~d:2 ~s:0.5));
  check_int "items_arrived" 2 (Engine.Interactive.items_arrived t);
  check_int "peak live" 2 (Engine.Interactive.peak_live_items t);
  check_int "peak retained" 2 (Engine.Interactive.peak_retained_items t);
  let result, inst = Engine.Interactive.finish t in
  check_int "cost still computed" 3 result.cost;
  check_bool "instance empty without the log" true (Instance.is_empty inst)

let suite =
  [
    case "single item" test_single_item;
    case "sequential no reuse" test_sequential_no_reuse;
    case "departure before arrival" test_departure_before_arrival;
    case "overlap cost" test_overlap_cost;
    case "series" test_series;
    case "ff reuses open bin" test_ff_reuses_open_bin;
    case "interactive adversary" test_interactive_adversary;
    case "interactive rejects past" test_interactive_past_arrival_rejected;
    case "lying policy rejected" test_lying_policy_rejected;
    case "empty instance" test_empty_instance;
    case "stream matches run" test_stream_matches_run;
    case "stream bounded series" test_stream_bounded_series;
    case "interactive retention modes" test_interactive_retention_modes;
    prop_cost_at_least_lower_bound;
    prop_cost_at_most_span_times_bins;
  ]
