open Dbp_instance
open Dbp_workloads
open Helpers

(* ---- source combinators ---- *)

let items_of src = List.of_seq (Seq.map (fun (r : Item.t) -> r.id) src)

let test_of_instance_roundtrip () =
  let inst = instance [ (5, 6, 0.1); (1, 3, 0.2); (1, 2, 0.3) ] in
  let src = Event_source.of_instance inst in
  check_bool "ordered" true (Event_source.is_ordered src);
  check_int "length" 3 (Event_source.length src);
  let back = Event_source.to_instance src in
  check_bool "same items" true (Instance.items back = Instance.items inst)

let test_of_items_sorts () =
  let a = item ~id:7 ~a:4 ~d:5 ~s:0.1
  and b = item ~id:2 ~a:4 ~d:9 ~s:0.1
  and c = item ~id:1 ~a:0 ~d:2 ~s:0.1 in
  Alcotest.(check (list int))
    "sorted by (arrival, id)" [ 1; 2; 7 ]
    (items_of (Event_source.of_items [ a; b; c ]));
  check_raises_invalid "duplicate ids" (fun () ->
      ignore (Event_source.length (Event_source.of_items [ a; a ])))

let test_merge_order_and_stability () =
  let left = Event_source.of_items [ item ~id:1 ~a:0 ~d:1 ~s:0.1; item ~id:4 ~a:5 ~d:6 ~s:0.1 ]
  and right = Event_source.of_items [ item ~id:2 ~a:3 ~d:4 ~s:0.1; item ~id:9 ~a:5 ~d:7 ~s:0.1 ] in
  Alcotest.(check (list int)) "interleaved" [ 1; 2; 4; 9 ]
    (items_of (Event_source.merge left right));
  (* Equal (arrival, id) keys cannot occur across real sources; use the
     generic merge to observe tie stability directly. *)
  let l = List.to_seq [ (0, "l") ] and r = List.to_seq [ (0, "r") ] in
  let merged =
    List.of_seq (Event_source.merge_by ~cmp:(fun (a, _) (b, _) -> Int.compare a b) l r)
  in
  Alcotest.(check (list (pair int string))) "left wins ties" [ (0, "l"); (0, "r") ] merged;
  check_int "merge_list" 4
    (Event_source.length (Event_source.merge_list [ left; right; Event_source.empty ]))

let test_merge_is_lazy () =
  (* Pulling one element from a merge may force both heads (to compare)
     but must not force either tail. *)
  let forced = ref 0 in
  let src a id () =
    Seq.Cons
      ( item ~id ~a ~d:(a + 1) ~s:0.1,
        fun () ->
          incr forced;
          Seq.Nil )
  in
  (match Event_source.merge (src 0 1) (src 1 2) () with
  | Seq.Cons (r, _) -> check_int "head" 1 r.Item.id
  | Seq.Nil -> Alcotest.fail "empty merge");
  check_int "tails not forced" 0 !forced

(* ---- streaming workload constructors ---- *)

let same_instance name a b =
  check_bool (name ^ ": identical items") true (Instance.items a = Instance.items b)

let test_cloud_stream_matches_generate () =
  List.iter
    (fun seed ->
      let src = Cloud_traces.stream ~seed () in
      same_instance "cloud"
        (Event_source.to_instance src)
        (Cloud_traces.generate ~seed ());
      check_bool "ordered" true (Event_source.is_ordered src))
    [ 1; 7; 42 ]

let test_general_stream_matches_generate () =
  List.iter
    (fun seed ->
      let src = General_random.stream ~seed () in
      same_instance "general"
        (Event_source.to_instance src)
        (General_random.generate ~seed ()))
    [ 1; 7; 42 ]

let test_aligned_stream_properties () =
  let config = { Aligned_random.default with horizon = 256; rate = 0.15 } in
  let src = Aligned_random.stream ~config ~seed:5 () in
  let inst = Event_source.to_instance src in
  check_bool "ordered" true (Event_source.is_ordered src);
  check_bool "aligned" true (Instance.is_aligned inst);
  check_bool "non-trivial" true (Instance.length inst > 0);
  (* Ids are assigned in emission order, so the source order is exactly
     the instance's processing order — the equivalence contract. *)
  let ids = items_of src in
  Alcotest.(check (list int)) "ids dense in emission order"
    (List.init (List.length ids) Fun.id)
    ids;
  (* Persistence: a second forcing replays the same items. *)
  same_instance "refetch" inst (Event_source.to_instance src)

let test_stream_persistence () =
  let src = Cloud_traces.stream ~seed:11 () in
  same_instance "cloud refetch" (Event_source.to_instance src)
    (Event_source.to_instance src)

(* ---- Engine.Stream = Engine.run equivalence ---- *)

let policies =
  [
    ("HA", fun () -> Dbp_core.Ha.policy ());
    ("CDFF", fun () -> Dbp_core.Cdff.policy ());
    ("FF", fun () -> Dbp_baselines.Any_fit.first_fit);
    ("BF", fun () -> Dbp_baselines.Any_fit.best_fit);
    ("WF", fun () -> Dbp_baselines.Any_fit.worst_fit);
    ("NF", fun () -> Dbp_baselines.Any_fit.next_fit);
    ("CD", fun () -> Dbp_baselines.Classify_duration.policy ());
    ("RT", fun () -> Dbp_baselines.Rt_classify.auto ~mu_hint:96.0);
    ("SpanGreedy", fun () -> Dbp_baselines.Span_greedy.policy);
  ]

let sources ~seed =
  [
    ( "cloud",
      Cloud_traces.stream
        ~config:{ Cloud_traces.default with days = 1; base_rate = 0.5 }
        ~seed () );
    ( "general",
      General_random.stream
        ~config:{ General_random.default with horizon = 400; arrival_rate = 0.5 }
        ~seed () );
    ( "aligned",
      Aligned_random.stream
        ~config:{ Aligned_random.default with horizon = 256; rate = 0.1 }
        ~seed () );
  ]

let stream_equals_run ~policy_name factory src =
  let s = Dbp_sim.Engine.Stream.run (factory ()) src in
  let inst = Event_source.to_instance src in
  let r = Dbp_sim.Engine.run (factory ()) inst in
  s.result.cost = r.cost
  && s.result.bins_opened = r.bins_opened
  && s.result.max_open = r.max_open
  && s.result.series = r.series
  && s.items = Instance.length inst
  && s.peak_retained_items = s.peak_live_items
  ||
  (Printf.eprintf "mismatch: %s stream (%d,%d,%d) vs run (%d,%d,%d)\n" policy_name
     s.result.cost s.result.bins_opened s.result.max_open r.cost r.bins_opened
     r.max_open;
   false)

let test_stream_equals_run_all () =
  List.iter
    (fun (wname, src) ->
      List.iter
        (fun (pname, factory) ->
          check_bool
            (Printf.sprintf "%s on %s" pname wname)
            true
            (stream_equals_run ~policy_name:pname factory src))
        policies)
    (sources ~seed:3)

let prop_stream_equals_run =
  qcase ~count:15 ~name:"stream = run (random seed, policy, workload)"
    (fun (seed, p, w) ->
      let pname, factory = List.nth policies (p mod List.length policies) in
      let _, src = List.nth (sources ~seed) (w mod 3) in
      stream_equals_run ~policy_name:pname factory src)
    QCheck2.Gen.(triple (int_range 1 10_000) (int_range 0 8) (int_range 0 2))

(* ---- chunked emitters ---- *)

(* Pull every item out of a chunked emitter through an [Item_block],
   boxing each back into an [Item.t] — the reference decoding the
   conformance checks compare against the Seq source. *)
let drain_chunks ~chunk_size emitter =
  let block = Item_block.create () in
  let slots = Array.make chunk_size (-1) in
  let acc = ref [] in
  let rec loop () =
    let n = Event_source.Chunk.next_chunk emitter block slots in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let s = slots.(i) in
        acc := Item_block.item block s :: !acc;
        Item_block.free block s
      done;
      loop ()
    end
  in
  loop ();
  List.rev !acc

(* The native chunked emitters, one per streaming workload, paired with
   the Seq source they must reproduce item-for-item. Fresh emitter per
   pull: native emitters are single-pass. *)
let chunk_sources ~seed =
  let cloud = { Cloud_traces.default with days = 1; base_rate = 0.5 }
  and general = { General_random.default with horizon = 400; arrival_rate = 0.5 }
  and aligned = { Aligned_random.default with horizon = 256; rate = 0.1 } in
  [
    ( "cloud",
      (fun () -> Cloud_traces.chunks ~config:cloud ~seed ()),
      Cloud_traces.stream ~config:cloud ~seed () );
    ( "general",
      (fun () -> General_random.chunks ~config:general ~seed ()),
      General_random.stream ~config:general ~seed () );
    ( "aligned",
      (fun () -> Aligned_random.chunks ~config:aligned ~seed ()),
      Aligned_random.stream ~config:aligned ~seed () );
  ]

let test_chunk_conformance () =
  List.iter
    (fun seed ->
      List.iter
        (fun (name, make_chunk, src) ->
          let expect = List.of_seq src in
          let total = List.length expect in
          check_bool (name ^ ": non-trivial") true (total > 0);
          (* Chunk sizes bracketing every boundary case: singleton
             chunks, a size that straddles tick boundaries, the engine
             default, and one larger than the whole stream. *)
          List.iter
            (fun chunk_size ->
              let got = drain_chunks ~chunk_size (make_chunk ()) in
              check_bool
                (Printf.sprintf "%s seed=%d chunk=%d: native = seq" name seed
                   chunk_size)
                true (got = expect))
            [ 1; 7; 256; total + 1 ];
          let shimmed =
            drain_chunks ~chunk_size:7 (Event_source.Chunk.of_seq src)
          in
          check_bool
            (Printf.sprintf "%s seed=%d: of_seq shim = seq" name seed)
            true (shimmed = expect))
        (chunk_sources ~seed))
    [ 1; 7 ]

let test_run_chunks_equals_run () =
  List.iter
    (fun (name, make_chunk, src) ->
      let inst = Event_source.to_instance src in
      let r = Dbp_sim.Engine.run Dbp_baselines.Any_fit.best_fit inst in
      List.iter
        (fun chunk_size ->
          let s =
            Dbp_sim.Engine.Stream.run_chunks ~chunk_size
              Dbp_baselines.Any_fit.best_fit (make_chunk ())
          in
          let ok =
            s.result.cost = r.cost
            && s.result.bins_opened = r.bins_opened
            && s.result.max_open = r.max_open
            && s.result.series = r.series
            && s.items = Instance.length inst
          in
          check_bool
            (Printf.sprintf "%s chunk=%d: run_chunks = run" name chunk_size)
            true ok)
        [ 1; 7; 256 ])
    (chunk_sources ~seed:5)

let test_decimated_series_brackets_exact () =
  let src =
    Cloud_traces.stream ~config:{ Cloud_traces.default with days = 1 } ~seed:9 ()
  in
  let cap = 16 in
  let s = Dbp_sim.Engine.Stream.run ~max_series:cap Dbp_baselines.Any_fit.first_fit src in
  let exact =
    (Dbp_sim.Engine.run Dbp_baselines.Any_fit.first_fit (Event_source.to_instance src))
      .series
  in
  let d = s.result.series in
  check_bool "within cap" true (Array.length d <= cap);
  check_bool "endpoints kept" true
    (d.(0) = exact.(0) && d.(Array.length d - 1) = exact.(Array.length exact - 1));
  (* Every retained sample is an exact (tick, open-bins) sample, in
     order: the decimated series never invents or averages points. *)
  let j = ref 0 in
  Array.iter
    (fun sample ->
      while !j < Array.length exact && exact.(!j) <> sample do
        incr j
      done;
      if !j = Array.length exact then
        Alcotest.failf "sample (%d, %d) not in the exact series" (fst sample)
          (snd sample))
    d

let suite =
  [
    case "of_instance round-trip" test_of_instance_roundtrip;
    case "of_items sorts" test_of_items_sorts;
    case "merge order and stability" test_merge_order_and_stability;
    case "merge is lazy" test_merge_is_lazy;
    case "cloud stream = generate" test_cloud_stream_matches_generate;
    case "general stream = generate" test_general_stream_matches_generate;
    case "aligned stream properties" test_aligned_stream_properties;
    case "sources are persistent" test_stream_persistence;
    slow_case "stream = run, 9 policies x 3 workloads" test_stream_equals_run_all;
    prop_stream_equals_run;
    case "chunked emitters = seq, all sizes" test_chunk_conformance;
    case "run_chunks = run, all chunk sizes" test_run_chunks_equals_run;
    case "decimated series brackets exact" test_decimated_series_brackets_exact;
  ]
