open Dbp_experiments
open Helpers

let test_registry_complete () =
  (* Every DESIGN.md experiment id E1..E18 is present exactly once. *)
  let ids = List.map (fun (e : Registry.entry) -> e.experiment) Registry.all in
  check_int "21 experiments" 21 (List.length ids);
  check_int "unique" 21 (List.length (List.sort_uniq compare ids));
  List.iteri
    (fun i id -> check_bool id true (List.mem (Printf.sprintf "E%d" (i + 1)) ids))
    ids

let test_registry_find () =
  (match Registry.find "table1" with
  | Some e -> Alcotest.(check string) "by id" "E1" e.experiment
  | None -> Alcotest.fail "table1 not found");
  (match Registry.find "e8" with
  | Some e -> Alcotest.(check string) "by experiment, case-insensitive" "theorem43" e.id
  | None -> Alcotest.fail "E8 not found");
  check_bool "unknown" true (Registry.find "nope" = None)

let test_workload_defs () =
  let open Dbp_instance in
  let g = Dbp_experiments.Workload_defs.general ~mu:32 ~seed:1 in
  check_int "general realizes mu" 32 (Instance.max_duration g);
  let a = Dbp_experiments.Workload_defs.aligned ~mu:32 ~seed:1 in
  check_bool "aligned" true (Instance.is_aligned a);
  let b = Dbp_experiments.Workload_defs.binary ~mu:32 ~seed:1 in
  check_int "binary items" 63 (Instance.length b)

(* Smoke-run the cheap experiments end to end; the expensive ones are
   exercised by the bench harness. *)
let test_figures_run () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e ->
          let out = e.run ~quick:true in
          check_bool (id ^ " nonempty") true (String.length out > 100)
      | None -> Alcotest.failf "%s missing" id)
    [ "figure1"; "figure2"; "figure3"; "corollary58"; "lemma59"; "prop53" ]

let test_common_roster () =
  check_int "core roster" 4 (List.length (Common.core_roster ~mu_hint:64.0));
  check_int "full roster" 7 (List.length (Common.clairvoyant_roster ~mu_hint:64.0))

let suite =
  [
    case "registry complete" test_registry_complete;
    case "registry find" test_registry_find;
    case "workload defs" test_workload_defs;
    slow_case "figure experiments run" test_figures_run;
    case "rosters" test_common_roster;
  ]
